// Command sppd runs the simulator as a long-lived service: submit
// experiment jobs over HTTP, poll their status, fetch rendered results.
// Every job is content-addressed by the canonical hash of its full
// configuration, so identical submissions are served from the result
// cache (or coalesced onto one in-flight run) instead of re-simulating.
//
// Usage:
//
//	sppd                          # listen on :8177
//	sppd -addr :9000 -queue 128   # custom port, deeper queue
//	sppd -jobs 2 -par 4           # 2 concurrent jobs, 4 host workers each
//	sppd -store /var/lib/sppd     # durable results: survive restarts
//	sppd -job-timeout 10m         # default per-job execution deadline
//	sppd -join http://gw:8178     # register as a sppgw cluster backend
//
// Endpoints: POST/GET /v1/jobs, GET /v1/jobs/{id}[/result],
// DELETE /v1/jobs/{id}, GET /metrics, GET /healthz. See docs/SERVICE.md.
// Drive it with cmd/sppctl. SIGINT/SIGTERM drain gracefully: running
// jobs finish (up to -drain), new submissions get 503.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spp1000/internal/runner"
	"spp1000/internal/service"
	"spp1000/internal/store"
)

func main() {
	addr := flag.String("addr", ":8177", "listen address")
	queue := flag.Int("queue", 64, "job queue depth (submissions beyond it get 503)")
	jobs := flag.Int("jobs", 1, "jobs executed concurrently")
	par := flag.Int("par", 0, "host workers per job for independent simulations (0 = all cores)")
	cacheCap := flag.Int("cache", 256, "completed results kept for reuse (<0 = unbounded)")
	storeDir := flag.String("store", "", "durable result store directory (empty = memory only; results then die with the process)")
	storeCap := flag.Int("store-cap", 4096, "durable store entries kept, oldest evicted (<=0 = unbounded)")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job execution deadline (0 = none; submissions may override)")
	drain := flag.Duration("drain", 5*time.Minute, "max time to drain jobs on shutdown")
	join := flag.String("join", "", "sppgw gateway URL to join as a cluster backend (empty = standalone)")
	advertise := flag.String("advertise", "", "base URL this backend advertises to the gateway (default http://127.0.0.1<port of -addr>)")
	id := flag.String("id", "", "backend identity in the cluster (default: the advertise address without its scheme)")
	heartbeat := flag.Duration("heartbeat", time.Second, "registration heartbeat interval when joined")
	flag.Parse()

	if *par < 0 {
		fmt.Fprintf(os.Stderr, "sppd: -par must be >= 0 (got %d)\n", *par)
		os.Exit(2)
	}
	if *jobTimeout < 0 {
		fmt.Fprintf(os.Stderr, "sppd: -job-timeout must be >= 0 (got %v)\n", *jobTimeout)
		os.Exit(2)
	}
	runner.SetWorkers(*par)

	cfg := service.Config{
		QueueDepth:    *queue,
		Workers:       *jobs,
		CacheCapacity: *cacheCap,
		JobTimeout:    *jobTimeout,
	}
	if *join != "" {
		if *advertise == "" {
			*advertise = defaultAdvertise(*addr)
		}
		if *id == "" {
			*id = strings.TrimPrefix(strings.TrimPrefix(*advertise, "https://"), "http://")
		}
		cfg.ID = *id
		// Warm-miss path: a key re-hashed onto this backend is first
		// sought on its previous ring owner (via the gateway) before
		// being recomputed.
		cfg.PeerFetch = service.PeerFetchVia(*join, *id)
	}
	if *storeDir != "" {
		st, err := store.Open(*storeDir, *storeCap)
		if err != nil {
			log.Fatalf("sppd: %v", err)
		}
		log.Printf("sppd: durable store %s (%d prior results)", st.Dir(), st.Len())
		cfg.Store = st
	}
	srv := service.New(cfg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("sppd: listening on %s (queue %d, %d concurrent jobs, %d host workers)",
			*addr, *queue, *jobs, runner.Workers())
		errc <- httpSrv.ListenAndServe()
	}()

	var joiner *service.Joiner
	if *join != "" {
		log.Printf("sppd: joining cluster at %s as %q (advertising %s, heartbeat %v)", *join, *id, *advertise, *heartbeat)
		joiner = service.StartJoiner(*join, *id, *advertise, *heartbeat)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("sppd: %v, draining (max %v)", sig, *drain)
	case err := <-errc:
		log.Fatalf("sppd: %v", err)
	}

	if joiner != nil {
		// Leave the ring first so the gateway re-hashes this backend's
		// keys immediately instead of routing into the drain.
		joiner.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop accepting connections first, then drain the job queue.
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("sppd: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("sppd: drain incomplete: %v", err)
	}
	log.Printf("sppd: drained cleanly")
}

// defaultAdvertise derives the URL a backend advertises from its
// listen address: a bare ":8177" becomes http://127.0.0.1:8177, an
// explicit host:port is used as given.
func defaultAdvertise(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}
