// Command sppgw fronts a cluster of sppd backends with one HTTP
// endpoint: jobs are content-addressed (the job id is the SHA-256 of
// the spec's canonical encoding), so the gateway consistent-hashes
// every key onto its owning backend, fans list out, and serves a
// merged /metrics view with exact cluster totals. Backends join with
// `sppd -join http://<gateway>` and are evicted when their heartbeats
// stop or a proxied request fails to connect; evicted keys re-hash
// onto the survivors, where the peer-fetch path turns them into warm
// hits instead of recomputes.
//
// Usage:
//
//	sppgw                      # listen on :8178
//	sppgw -addr :9000          # custom port
//	sppgw -vnodes 128 -ttl 10s # smoother ring, laxer heartbeat deadline
//
// The client-facing API is identical to a single sppd, so sppctl works
// unchanged: `sppctl -addr http://127.0.0.1:8178 submit ...`. See
// docs/SERVICE.md for the cluster topology and protocols.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spp1000/internal/gateway"
	"spp1000/internal/service"
)

func main() {
	addr := flag.String("addr", ":8178", "listen address")
	vnodes := flag.Int("vnodes", gateway.DefaultVNodes, "virtual nodes per backend on the consistent-hash ring")
	ttl := flag.Duration("ttl", 5*time.Second, "heartbeat TTL: a backend silent this long is evicted and its keys re-hash")
	flag.Parse()

	g := gateway.New(gateway.Config{
		VNodes:       *vnodes,
		HeartbeatTTL: *ttl,
		// The one piece of spec knowledge the gateway needs: how a
		// submit body hashes. Injected so internal/gateway stays free
		// of sim-core imports while agreeing with every backend.
		SubmitKey: service.SubmitKey,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: g.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("sppgw: listening on %s (vnodes %d, heartbeat ttl %v); waiting for `sppd -join` backends", *addr, *vnodes, *ttl)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("sppgw: %v, shutting down", sig)
	case err := <-errc:
		log.Fatalf("sppgw: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("sppgw: http shutdown: %v", err)
	}
	log.Printf("sppgw: stopped")
}
