package main

// The fixture suite runs the gate over the repository's real committed
// artifact history (../../BENCH_*.json) — the acceptance bar is that
// every real transition passes, with the BENCH_3→BENCH_4 Fig6PIC swing
// classified as host noise, while synthetically injected regressions
// on the same data fail.

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spp1000/internal/load"
)

// realHistory loads the committed BENCH artifacts from the repo root.
func realHistory(t *testing.T) []benchPoint {
	t.Helper()
	benches, _, err := discover("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) < 4 {
		t.Fatalf("expected the committed BENCH_1/3/4/6 history, found %d artifacts", len(benches))
	}
	return benches
}

func failures(fs []finding) []finding {
	var out []finding
	for _, f := range fs {
		if f.Level == "fail" {
			out = append(out, f)
		}
	}
	return out
}

// The committed history must pass clean, and the documented Fig6PIC
// ~78→128 ms/op swing must be classified as host noise: its pair's
// suite median moved beyond the stability tolerance, so nothing in
// that pair may fail.
func TestRealHistoryPassesWithFig6PICAsHostNoise(t *testing.T) {
	benches := realHistory(t)
	fs := analyze(benches, nil, defaultTrendConfig())
	if bad := failures(fs); len(bad) != 0 {
		t.Fatalf("real history failed the gate: %v", bad)
	}
	hostShift := false
	for _, f := range fs {
		if f.Kind == "host-shift" && f.Where == "BENCH_3→BENCH_4" && strings.Contains(f.Detail, "host noise") {
			hostShift = true
		}
	}
	if !hostShift {
		t.Fatalf("BENCH_3→BENCH_4 not classified as a host shift: %v", fs)
	}
	crossHost := false
	for _, f := range fs {
		if f.Kind == "incomparable-host" && f.Where == "BENCH_4→BENCH_6" {
			crossHost = true
		}
	}
	if !crossHost {
		t.Fatalf("BENCH_4→BENCH_6 CPU change not flagged incomparable: %v", fs)
	}
}

// clone deep-copies a benchPoint so fixtures can mutate it.
func clone(t *testing.T, p benchPoint) benchPoint {
	t.Helper()
	data, err := json.Marshal(p.Doc)
	if err != nil {
		t.Fatal(err)
	}
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	return benchPoint{Label: p.Label, N: p.N, Doc: doc}
}

// nextPoint fabricates a same-host successor of the last real artifact
// and lets the caller inject a defect into it.
func nextPoint(t *testing.T, benches []benchPoint, mutate func(*benchDoc)) []benchPoint {
	t.Helper()
	last := benches[len(benches)-1]
	injected := clone(t, last)
	injected.Label = "BENCH_99"
	injected.N = 99
	mutate(&injected.Doc)
	return append(append([]benchPoint{}, benches...), injected)
}

// A single benchmark 3x slower on an otherwise byte-identical (and
// therefore perfectly stable) suite must fail the gate — this is the
// synthetic injected regression of the acceptance criteria.
func TestSyntheticNsRegressionFails(t *testing.T) {
	benches := realHistory(t)
	history := nextPoint(t, benches, func(doc *benchDoc) {
		for i := range doc.Benchmarks {
			if doc.Benchmarks[i].Name == "Fig6PIC" {
				doc.Benchmarks[i].NsPerOp *= 3
				// A genuinely slower benchmark also computes fewer
				// events/sec-per-core; scale it coherently so the ns
				// family is what trips.
				if v, ok := doc.Benchmarks[i].Metrics["events/sec-per-core"]; ok {
					doc.Benchmarks[i].Metrics["events/sec-per-core"] = v / 3
				}
			}
		}
	})
	bad := failures(analyze(history, nil, defaultTrendConfig()))
	if len(bad) == 0 {
		t.Fatal("injected 3x Fig6PIC regression passed the gate")
	}
	found := false
	for _, f := range bad {
		if f.Kind == "ns-regression" && strings.Contains(f.Bench, "Fig6PIC") && f.Where == "BENCH_6→BENCH_99" {
			found = true
		}
	}
	if !found {
		t.Fatalf("regression misattributed: %v", bad)
	}
}

// A drifted sim-* metric is a semantic change and must fail even when
// timings are identical — and even across a CPU change.
func TestSyntheticSimChangeFails(t *testing.T) {
	benches := realHistory(t)
	history := nextPoint(t, benches, func(doc *benchDoc) {
		doc.CPU = "Some Other CPU @ 1.00GHz" // sim equality must not hide behind incomparable hosts
		for i := range doc.Benchmarks {
			for name := range doc.Benchmarks[i].Metrics {
				if strings.HasPrefix(name, "sim-") {
					doc.Benchmarks[i].Metrics[name] *= 1.01
				}
			}
		}
	})
	bad := failures(analyze(history, nil, defaultTrendConfig()))
	found := false
	for _, f := range bad {
		if f.Kind == "sim-change" {
			found = true
		}
	}
	if !found {
		t.Fatalf("sim-metric drift passed the gate: %v", bad)
	}
}

// Doubled allocs/op must fail regardless of host comparability;
// allocation counts are deterministic per build.
func TestSyntheticAllocRegressionFails(t *testing.T) {
	benches := realHistory(t)
	history := nextPoint(t, benches, func(doc *benchDoc) {
		for i := range doc.Benchmarks {
			if doc.Benchmarks[i].AllocsPerOp != nil {
				doubled := *doc.Benchmarks[i].AllocsPerOp*2 + 20
				doc.Benchmarks[i].AllocsPerOp = &doubled
			}
		}
	})
	bad := failures(analyze(history, nil, defaultTrendConfig()))
	found := false
	for _, f := range bad {
		if f.Kind == "allocs-regression" {
			found = true
		}
	}
	if !found {
		t.Fatalf("doubled allocs/op passed the gate: %v", bad)
	}
}

// A whole-suite uniform slowdown (every benchmark x1.2) is a host
// shift, not nineteen regressions: the suite-stability gate must
// classify it as noise.
func TestUniformSlowdownIsHostShift(t *testing.T) {
	benches := realHistory(t)
	history := nextPoint(t, benches, func(doc *benchDoc) {
		for i := range doc.Benchmarks {
			doc.Benchmarks[i].NsPerOp *= 1.2
		}
	})
	fs := analyze(history, nil, defaultTrendConfig())
	if bad := failures(fs); len(bad) != 0 {
		t.Fatalf("uniform slowdown produced failures: %v", bad)
	}
	found := false
	for _, f := range fs {
		if f.Kind == "host-shift" && f.Where == "BENCH_6→BENCH_99" {
			found = true
		}
	}
	if !found {
		t.Fatalf("uniform slowdown not classified as host shift: %v", fs)
	}
}

// LOAD artifacts gate on their internal invariants.
func TestLoadInvariantGate(t *testing.T) {
	ok := loadPoint{Label: "LOAD_8", N: 8, Doc: load.Result{
		Reconcile: load.Reconciliation{OK: true},
	}}
	if bad := failures(analyze(nil, []loadPoint{ok}, defaultTrendConfig())); len(bad) != 0 {
		t.Fatalf("clean load artifact failed: %v", bad)
	}

	broken := ok
	broken.Doc.Reconcile.OK = false
	broken.Doc.Tally.Unexpected = 3
	bad := failures(analyze(nil, []loadPoint{broken}, defaultTrendConfig()))
	if len(bad) != 2 {
		t.Fatalf("broken load artifact produced %v, want reconcile + unexpected failures", bad)
	}
}

// The variance-widened band: a benchmark with noisy history earns a
// band wider than the default; a quiet one keeps the default.
func TestBandWidensWithHistory(t *testing.T) {
	cfg := defaultTrendConfig()
	if b := bandFor(cfg, nil); b != cfg.Band {
		t.Fatalf("no history: band %v, want default %v", b, cfg.Band)
	}
	quiet := []float64{0.01, -0.01, 0.02}
	if b := bandFor(cfg, quiet); b != cfg.Band {
		t.Fatalf("quiet history: band %v, want default %v", b, cfg.Band)
	}
	noisy := []float64{0.3, -0.25, 0.28, -0.3}
	b := bandFor(cfg, noisy)
	if b <= cfg.Band {
		t.Fatalf("noisy history: band %v did not widen past %v", b, cfg.Band)
	}
	if math.IsNaN(b) || b > 4 {
		t.Fatalf("widened band %v out of sane range", b)
	}
}

// discover must order artifacts numerically (BENCH_10 after BENCH_9,
// not between _1 and _2) and ignore non-artifact files.
func TestDiscoverOrdersNumerically(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_9.json", "BENCH_10.json", "BENCH_2.json", "LOAD_8.json", "notes.txt"} {
		var body string
		if strings.HasPrefix(name, "BENCH") {
			body = `{"benchmarks":[]}`
		} else {
			body = `{"target":"x","prefix":"sppd_","mix":{},"stages":[],"classes":[],"tally":{},"reconcile":{"ok":true},"serverDelta":{}}`
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	benches, loads, err := discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for _, b := range benches {
		order = append(order, b.N)
	}
	if len(order) != 3 || order[0] != 2 || order[1] != 9 || order[2] != 10 {
		t.Fatalf("bench order %v, want [2 9 10]", order)
	}
	if len(loads) != 1 || loads[0].N != 8 || !loads[0].Doc.Reconcile.OK {
		t.Fatalf("loads %+v", loads)
	}
}
