package main

import (
	"fmt"
	"math"
	"sort"

	"spp1000/internal/load"
)

// trendConfig tunes the gate. The defaults are calibrated against the
// repo's own committed history (see docs/BENCHMARKS.md): loose enough
// that every real BENCH_1→3→4→6 transition passes, tight enough that a
// 3x single-benchmark regression on a stable suite fails.
type trendConfig struct {
	// Band is the default allowed factor on suite-normalized ns/op (and
	// rate-cost) ratios.
	Band float64
	// StabilityLogTol bounds |ln(suite median ratio)| for a pair to
	// count as same-host-condition; beyond it the whole suite shifted
	// (CPU frequency scaling, co-tenancy) and per-benchmark swings are
	// classified host-noise rather than regressions.
	StabilityLogTol float64
	// AllocBandFrac and AllocSlack bound allocs/op growth:
	// new <= old*(1+frac) + slack. Allocation counts are deterministic
	// per build, so the band is tight; the absolute slack keeps tiny
	// benchmarks (3 -> 4 allocs) out of the noise.
	AllocBandFrac float64
	AllocSlack    float64
	// VarWidenK widens a benchmark's band to exp(K * stddev) of its
	// historical normalized log-ratios once >= MinHistory same-host
	// pairs exist — benchmarks that have proven noisy earn more room.
	VarWidenK  float64
	MinHistory int
	// SimTol is the relative tolerance on sim-* metric equality. Sim
	// metrics are pure functions of the simulated machine, byte-stable
	// across hosts; any drift is a semantic change, never noise.
	SimTol float64
}

func defaultTrendConfig() trendConfig {
	return trendConfig{
		Band:            1.25,
		StabilityLogTol: 0.05,
		AllocBandFrac:   0.05,
		AllocSlack:      8,
		VarWidenK:       2.0,
		MinHistory:      2,
		SimTol:          1e-9,
	}
}

// finding is one classified observation. Level "fail" findings make
// benchtrend exit nonzero; "note" findings are informational.
type finding struct {
	Level  string // "fail" or "note"
	Where  string // "BENCH_3→BENCH_4", "LOAD_8", ...
	Bench  string // benchmark or metric the finding is about ("" = suite)
	Kind   string // sim-change, allocs-regression, ns-regression, rate-regression, host-shift, incomparable-host, load-invariant, saturation-trend
	Detail string
}

func (f finding) String() string {
	b := f.Bench
	if b != "" {
		b = " " + b
	}
	return fmt.Sprintf("%-4s %s%s [%s]: %s", f.Level, f.Where, b, f.Kind, f.Detail)
}

// benchPoint is one artifact in the BENCH_n.json sequence.
type benchPoint struct {
	Label string // "BENCH_4"
	N     int
	Doc   benchDoc
}

// loadPoint is one LOAD_n.json artifact.
type loadPoint struct {
	Label string
	N     int
	Doc   load.Result
}

// analyze runs the whole gate over the artifact history (both slices
// already sorted ascending by N) and returns the findings.
func analyze(benches []benchPoint, loads []loadPoint, cfg trendConfig) []finding {
	var out []finding
	history := map[string][]float64{} // bench key -> normalized log-ratios from stable same-host pairs
	for i := 1; i < len(benches); i++ {
		out = append(out, analyzePair(benches[i-1], benches[i], cfg, history)...)
	}
	for _, lp := range loads {
		out = append(out, analyzeLoad(lp)...)
	}
	if len(loads) >= 2 {
		first, last := loads[0], loads[len(loads)-1]
		out = append(out, finding{
			Level: "note", Where: first.Label + "→" + last.Label, Kind: "saturation-trend",
			Detail: fmt.Sprintf("saturation throughput %.1f → %.1f ops/sec (reported, not gated: wall-clock throughput is host-bound)",
				first.Doc.SaturationOpsPerSec, last.Doc.SaturationOpsPerSec),
		})
	}
	return out
}

// analyzePair classifies one consecutive BENCH transition.
func analyzePair(prev, cur benchPoint, cfg trendConfig, history map[string][]float64) []finding {
	var out []finding
	pair := prev.Label + "→" + cur.Label
	prevBy := byKey(prev.Doc.Benchmarks)

	// Sim-metric equality and the allocs/op band hold regardless of
	// host: both are deterministic properties of the build, not timings.
	type nsRatio struct {
		key   string
		ratio float64
	}
	var nsRatios, costRatios []nsRatio
	for _, b := range cur.Doc.Benchmarks {
		p, ok := prevBy[key(b)]
		if !ok {
			continue
		}
		for name, v := range b.Metrics {
			if len(name) < 4 || name[:4] != "sim-" {
				continue
			}
			pv, ok := p.Metrics[name]
			if !ok {
				continue
			}
			if math.Abs(v-pv) > cfg.SimTol*math.Max(1, math.Abs(pv)) {
				out = append(out, finding{
					Level: "fail", Where: pair, Bench: key(b), Kind: "sim-change",
					Detail: fmt.Sprintf("%s %g → %g: sim metrics are host-invariant, this is a semantic change", name, pv, v),
				})
			}
		}
		if b.AllocsPerOp != nil && p.AllocsPerOp != nil {
			limit := *p.AllocsPerOp*(1+cfg.AllocBandFrac) + cfg.AllocSlack
			if *b.AllocsPerOp > limit {
				out = append(out, finding{
					Level: "fail", Where: pair, Bench: key(b), Kind: "allocs-regression",
					Detail: fmt.Sprintf("allocs/op %g → %g exceeds band %.1f", *p.AllocsPerOp, *b.AllocsPerOp, limit),
				})
			}
		}
		if p.NsPerOp > 0 && b.NsPerOp > 0 {
			nsRatios = append(nsRatios, nsRatio{key(b), b.NsPerOp / p.NsPerOp})
		}
		if pv, cv := p.Metrics["events/sec-per-core"], b.Metrics["events/sec-per-core"]; pv > 0 && cv > 0 {
			costRatios = append(costRatios, nsRatio{key(b), pv / cv}) // cost ratio: >1 means fewer events/sec now
		}
	}

	if prev.Doc.CPU != cur.Doc.CPU {
		out = append(out, finding{
			Level: "note", Where: pair, Kind: "incomparable-host",
			Detail: fmt.Sprintf("cpu %q → %q: wall-time comparisons skipped (sim metrics and allocs/op still gated)", prev.Doc.CPU, cur.Doc.CPU),
		})
		return out
	}

	for _, fam := range []struct {
		kind   string
		unit   string
		ratios []nsRatio
	}{
		{"ns-regression", "ns/op", nsRatios},
		{"rate-regression", "events/sec-per-core cost", costRatios},
	} {
		if len(fam.ratios) == 0 {
			continue
		}
		vals := make([]float64, len(fam.ratios))
		for i, r := range fam.ratios {
			vals[i] = r.ratio
		}
		med := median(vals)
		if med <= 0 {
			continue
		}
		if math.Abs(math.Log(med)) > cfg.StabilityLogTol {
			// The whole suite moved together: host conditions changed
			// between runs, so no per-benchmark deviation is attributable
			// to code. Report the spread but fail nothing.
			worst := fam.ratios[0]
			for _, r := range fam.ratios {
				if math.Abs(math.Log(r.ratio/med)) > math.Abs(math.Log(worst.ratio/med)) {
					worst = r
				}
			}
			out = append(out, finding{
				Level: "note", Where: pair, Kind: "host-shift",
				Detail: fmt.Sprintf("suite median %s ratio %.3f exceeds stability tolerance — classifying all %d swings as host noise (largest: %s, normalized ×%.2f)",
					fam.unit, med, len(fam.ratios), worst.key, worst.ratio/med),
			})
			continue
		}
		for _, r := range fam.ratios {
			norm := r.ratio / med
			band := bandFor(cfg, history[fam.kind+"|"+r.key])
			if norm > band {
				out = append(out, finding{
					Level: "fail", Where: pair, Bench: r.key, Kind: fam.kind,
					Detail: fmt.Sprintf("%s ratio ×%.2f (suite-normalized ×%.2f) exceeds noise band ×%.2f on a stable suite (median %.3f)",
						fam.unit, r.ratio, norm, band, med),
				})
			}
			history[fam.kind+"|"+r.key] = append(history[fam.kind+"|"+r.key], math.Log(norm))
		}
	}
	return out
}

// bandFor is the per-benchmark noise band: the default, widened by the
// benchmark's own demonstrated variance once enough stable same-host
// history exists.
func bandFor(cfg trendConfig, logNorms []float64) float64 {
	if len(logNorms) < cfg.MinHistory {
		return cfg.Band
	}
	mean := 0.0
	for _, v := range logNorms {
		mean += v
	}
	mean /= float64(len(logNorms))
	ss := 0.0
	for _, v := range logNorms {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / float64(len(logNorms)-1))
	return math.Max(cfg.Band, math.Exp(cfg.VarWidenK*sd))
}

// analyzeLoad gates one LOAD artifact on its internal invariants: the
// reconciliation must have balanced and nothing unexpected may have
// been observed. Throughput is never gated — it is reported by the
// saturation-trend note.
func analyzeLoad(lp loadPoint) []finding {
	var out []finding
	if !lp.Doc.Reconcile.OK {
		out = append(out, finding{
			Level: "fail", Where: lp.Label, Kind: "load-invariant",
			Detail: "reconciliation failed: client tallies did not equal the server's books",
		})
	}
	if lp.Doc.Tally.Unexpected != 0 {
		out = append(out, finding{
			Level: "fail", Where: lp.Label, Kind: "load-invariant",
			Detail: fmt.Sprintf("%d unexpected client-side observations", lp.Doc.Tally.Unexpected),
		})
	}
	return out
}

// byKey indexes benchmarks by package+name.
func byKey(bs []benchmark) map[string]benchmark {
	m := make(map[string]benchmark, len(bs))
	for _, b := range bs {
		m[key(b)] = b
	}
	return m
}

func key(b benchmark) string {
	if b.Package == "" {
		return b.Name
	}
	return b.Package + "." + b.Name
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
