// Command benchtrend is the performance-regression gate: it ingests
// the repository's whole committed BENCH_*.json and LOAD_*.json
// history and exits nonzero on regressions that survive host-noise
// normalization. The classification rules — sim-metric exact equality,
// tight allocs/op bands, suite-median-normalized wall-time ratios
// gated only when the suite itself was stable, per-benchmark noise
// bands widened by demonstrated variance — are documented with worked
// examples in docs/BENCHMARKS.md. `make loadcheck` runs it in CI.
//
// Usage:
//
//	benchtrend            # analyze ./BENCH_*.json + ./LOAD_*.json
//	benchtrend -dir path  # analyze another artifact directory
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"

	"spp1000/internal/load"
)

// benchmark and benchDoc mirror cmd/benchjson's artifact schema (v1
// and v2 — the provenance fields added in v2 simply read as zero from
// v1 files). The two commands cannot share the type: both are package
// main.
type benchmark struct {
	Package     string             `json:"package"`
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp *float64           `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics"`
}

// benchDoc is the artifact envelope; only the fields the gate reads.
type benchDoc struct {
	SchemaVersion int         `json:"schema_version"`
	GitCommit     string      `json:"git_commit"`
	CPU           string      `json:"cpu"`
	Benchmarks    []benchmark `json:"benchmarks"`
}

var artifactRe = regexp.MustCompile(`^(BENCH|LOAD)_(\d+)\.json$`)

func main() {
	dir := flag.String("dir", ".", "directory holding the BENCH_*.json / LOAD_*.json history")
	band := flag.Float64("band", 0, "override the default noise band factor (0 keeps the calibrated default)")
	quiet := flag.Bool("q", false, "print failures only")
	flag.Parse()

	cfg := defaultTrendConfig()
	if *band > 0 {
		cfg.Band = *band
	}

	benches, loads, err := discover(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtrend: %v\n", err)
		os.Exit(1)
	}
	if len(benches)+len(loads) == 0 {
		fmt.Fprintf(os.Stderr, "benchtrend: no BENCH_*.json or LOAD_*.json under %s\n", *dir)
		os.Exit(1)
	}

	findings := analyze(benches, loads, cfg)
	failed := 0
	for _, f := range findings {
		if f.Level == "fail" {
			failed++
		}
		if f.Level == "fail" || !*quiet {
			fmt.Println(f)
		}
	}
	fmt.Printf("benchtrend: %d bench artifacts, %d load artifacts, %d findings, %d failures\n",
		len(benches), len(loads), len(findings), failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// discover loads every artifact in dir, sorted ascending by its PR
// number suffix.
func discover(dir string) ([]benchPoint, []loadPoint, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var benches []benchPoint
	var loads []loadPoint
	for _, e := range entries {
		m := artifactRe.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[2])
		label := m[1] + "_" + m[2]
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, nil, err
		}
		switch m[1] {
		case "BENCH":
			var doc benchDoc
			if err := json.Unmarshal(data, &doc); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", e.Name(), err)
			}
			benches = append(benches, benchPoint{Label: label, N: n, Doc: doc})
		case "LOAD":
			var doc load.Result
			if err := json.Unmarshal(data, &doc); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", e.Name(), err)
			}
			loads = append(loads, loadPoint{Label: label, N: n, Doc: doc})
		}
	}
	sort.Slice(benches, func(i, j int) bool { return benches[i].N < benches[j].N })
	sort.Slice(loads, func(i, j int) bool { return loads[i].N < loads[j].N })
	return benches, loads, nil
}
