// Command doccheck fails the build when an exported symbol of the
// core packages lacks a doc comment — the `make doc` gate that keeps
// the public simulator API documented as it grows.
//
// Usage:
//
//	doccheck [package-dir ...]
//
// With no arguments it checks the packages whose exported APIs the
// repository documents as stable: internal/sim, internal/trace,
// internal/runner, internal/counters. Every undocumented exported
// function, method (on an exported type), type, var, or const prints
// as file:line: symbol, and the exit status is 1. A doc comment on a
// parenthesized var/const/type block covers every symbol in the block.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// defaultPackages are the documented-API packages checked when no
// arguments are given (see docs/OBSERVABILITY.md).
var defaultPackages = []string{
	"internal/sim",
	"internal/trace",
	"internal/runner",
	"internal/counters",
	"internal/lint",
	"internal/lint/linttest",
	"internal/store",
	"internal/faultinject",
	"internal/parsim",
	"internal/gateway",
	"internal/load",
	"internal/snapshot",
}

// requiredDocs maps packages to the narrative docs file that must
// exist and mention them by import path — so the methodology docs
// cannot silently rot away from the code they describe. Checked only
// in the no-argument (full-gate) mode.
var requiredDocs = map[string]string{
	"internal/load":     "docs/BENCHMARKS.md",
	"internal/gateway":  "docs/SERVICE.md",
	"internal/lint":     "docs/LINT.md",
	"internal/snapshot": "DESIGN.md",
}

// requiredMentions maps a docs file to terms it must contain — the
// analyzer names and driver modes whose contracts live in that file.
// A term disappearing from the doc means the surface was renamed or
// the doc rotted; either way the gate fails until they agree again.
// Checked only in the no-argument (full-gate) mode.
var requiredMentions = map[string][]string{
	"docs/LINT.md": {
		"allocfree", "lockorder", "ledger",
		"//simlint:hotpath", "//simlint:metrics-writer",
		"-json", "-annotate",
	},
	"docs/SERVICE.md": {
		"checkpointed", "sppd_jobs_checkpointed_total",
		"sppgw_peer_probe_retries_total", "-checkpoint", "-resume",
	},
}

func main() {
	dirs := os.Args[1:]
	fullGate := len(dirs) == 0
	if fullGate {
		dirs = defaultPackages
	}
	var missing []string
	for _, dir := range dirs {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		missing = append(missing, m...)
	}
	if fullGate {
		missing = append(missing, checkDocs()...)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		for _, m := range missing {
			fmt.Println(m)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d exported symbol(s) missing doc comments\n", len(missing))
		os.Exit(1)
	}
}

// checkDocs verifies every requiredDocs entry — the docs file exists
// and names the package it is on the hook for — and every
// requiredMentions term.
func checkDocs() []string {
	var missing []string
	for pkg, doc := range requiredDocs {
		data, err := os.ReadFile(doc)
		if err != nil {
			missing = append(missing, fmt.Sprintf("%s: required by %s but unreadable: %v", doc, pkg, err))
			continue
		}
		if !strings.Contains(string(data), pkg) {
			missing = append(missing, fmt.Sprintf("%s: must mention %s (it documents that package)", doc, pkg))
		}
	}
	for doc, terms := range requiredMentions {
		data, err := os.ReadFile(doc)
		if err != nil {
			missing = append(missing, fmt.Sprintf("%s: required but unreadable: %v", doc, err))
			continue
		}
		for _, term := range terms {
			if !strings.Contains(string(data), term) {
				missing = append(missing, fmt.Sprintf("%s: must mention %q (documented surface)", doc, term))
			}
		}
	}
	return missing
}

// checkDir parses every non-test Go file of one package directory and
// returns "file:line: symbol" for each undocumented exported symbol.
func checkDir(dir string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var missing []string
	for _, path := range files {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		missing = append(missing, checkFile(fset, f)...)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return missing, nil
}

func checkFile(fset *token.FileSet, f *ast.File) []string {
	var missing []string
	report := func(pos token.Pos, symbol string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, symbol))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if recv, ok := receiverType(d); ok {
				report(d.Pos(), recv+"."+d.Name.Name)
			} else if d.Recv == nil {
				report(d.Pos(), d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
						report(sp.Pos(), sp.Name.Name)
					}
				case *ast.ValueSpec:
					// The block doc or the spec's own doc/trailing
					// comment documents every name it declares.
					if d.Doc != nil || sp.Doc != nil || sp.Comment != nil {
						continue
					}
					for _, name := range sp.Names {
						if name.IsExported() {
							report(name.Pos(), name.Name)
						}
					}
				}
			}
		}
	}
	return missing
}

// receiverType reports the method receiver's base type name and whether
// the method should be checked (receiver type exported).
func receiverType(d *ast.FuncDecl) (string, bool) {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "", false
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name, tt.IsExported()
		default:
			return "", false
		}
	}
}
