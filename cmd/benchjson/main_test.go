package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkFig4Message-8   \t  12\t  95104310 ns/op\t  1204 B/op\t  17 allocs/op\t  3.1 sim-us/global-RT")
	if !ok {
		t.Fatal("parseLine failed")
	}
	if b.Name != "Fig4Message" || b.Iterations != 12 || b.NsPerOp != 95104310 {
		t.Fatalf("parsed %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 1204 || b.AllocsPerOp == nil || *b.AllocsPerOp != 17 {
		t.Fatalf("mem stats: %+v", b)
	}
	if b.Metrics["sim-us/global-RT"] != 3.1 {
		t.Fatalf("custom metric: %+v", b.Metrics)
	}
}

func TestParseLineNoSuffix(t *testing.T) {
	b, ok := parseLine("BenchmarkKernelEventThroughput 	158551778	         7.526 ns/op	       0 B/op	       0 allocs/op")
	if !ok || b.Name != "KernelEventThroughput" || b.NsPerOp != 7.526 {
		t.Fatalf("parsed %+v ok=%v", b, ok)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	if _, ok := parseLine("Benchmarks are listed below:"); ok {
		t.Fatal("should reject non-result lines")
	}
}
