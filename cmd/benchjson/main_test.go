package main

import (
	"encoding/json"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkFig4Message-8   \t  12\t  95104310 ns/op\t  1204 B/op\t  17 allocs/op\t  3.1 sim-us/global-RT")
	if !ok {
		t.Fatal("parseLine failed")
	}
	if b.Name != "Fig4Message" || b.Iterations != 12 || b.NsPerOp != 95104310 {
		t.Fatalf("parsed %+v", b)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 1204 || b.AllocsPerOp == nil || *b.AllocsPerOp != 17 {
		t.Fatalf("mem stats: %+v", b)
	}
	if b.Metrics["sim-us/global-RT"] != 3.1 {
		t.Fatalf("custom metric: %+v", b.Metrics)
	}
	if b.Gomaxprocs != 8 {
		t.Fatalf("gomaxprocs %d, want 8 from the -8 suffix", b.Gomaxprocs)
	}
}

func TestParseLineEventRate(t *testing.T) {
	b, ok := parseLine("BenchmarkFig6PIC128PDES2-8   \t  18\t  61705991 ns/op\t  1096219 events/sec-per-core\t  1748 sim-Mflops-128cpu\t  102915361 B/op\t  80488 allocs/op")
	if !ok {
		t.Fatal("parseLine failed")
	}
	if b.Name != "Fig6PIC128PDES2" || b.Iterations != 18 {
		t.Fatalf("parsed %+v", b)
	}
	if b.Metrics["events/sec-per-core"] != 1096219 {
		t.Fatalf("events/sec-per-core missing: %+v", b.Metrics)
	}
	if b.Metrics["sim-Mflops-128cpu"] != 1748 {
		t.Fatalf("sim metric missing: %+v", b.Metrics)
	}
}

func TestParseLineNoSuffix(t *testing.T) {
	b, ok := parseLine("BenchmarkKernelEventThroughput 	158551778	         7.526 ns/op	       0 B/op	       0 allocs/op")
	if !ok || b.Name != "KernelEventThroughput" || b.NsPerOp != 7.526 {
		t.Fatalf("parsed %+v ok=%v", b, ok)
	}
	if b.Gomaxprocs != 0 {
		t.Fatalf("gomaxprocs %d for a suffix-free line, want 0", b.Gomaxprocs)
	}
}

// A v1 artifact (no schema_version, no provenance) must round-trip
// through the v2 Output struct unchanged in meaning — benchtrend reads
// both generations with this one type.
func TestOutputReadsV1Artifacts(t *testing.T) {
	v1 := `{"goos":"linux","goarch":"amd64","cpu":"Intel(R) Xeon(R)",
	  "benchmarks":[{"name":"Fig6PIC","iterations":14,"ns_per_op":78e6,
	    "allocs_per_op":120,"metrics":{"sim-Mflops-16cpu":55.4}}]}`
	var out Output
	if err := json.Unmarshal([]byte(v1), &out); err != nil {
		t.Fatal(err)
	}
	if out.SchemaVersion != 0 || out.GitCommit != "" {
		t.Fatalf("v1 artifact grew provenance from nowhere: %+v", out)
	}
	if len(out.Benchmarks) != 1 || out.Benchmarks[0].NsPerOp != 78e6 ||
		*out.Benchmarks[0].AllocsPerOp != 120 {
		t.Fatalf("v1 benchmarks misread: %+v", out.Benchmarks)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	if _, ok := parseLine("Benchmarks are listed below:"); ok {
		t.Fatal("should reject non-result lines")
	}
}
