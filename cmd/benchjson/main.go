// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so the performance
// trajectory (ns/op, allocs/op, and the simulators' custom sim-*
// metrics) can be recorded per PR and diffed across them.
//
// Usage:
//
//	go test -bench=. -benchmem -run=NONE ./... | benchjson > BENCH_1.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Package     string             `json:"package,omitempty"`
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Output is the whole document.
type Output struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := Output{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				b.Package = pkg
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseLine parses one result line, e.g.
//
//	BenchmarkFig3Barrier-8  12  95104310 ns/op  1204 B/op  17 allocs/op  3.1 sim-us/global-RT
//
// Fields come in (value, unit) pairs after the name and iteration count.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the -GOMAXPROCS suffix go test appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
