// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so the performance
// trajectory (ns/op, allocs/op, and the simulators' custom sim-*
// metrics) can be recorded per PR and diffed across them — today by
// cmd/benchtrend, which gates on these artifacts.
//
// Usage:
//
//	go test -bench=. -benchmem -run=NONE ./... | benchjson > BENCH_1.json
//
// Schema version 2 (see docs/BENCHMARKS.md) stamps provenance — git
// commit, run timestamp, Go version, and the -par/-simpar settings the
// run used — so every trend point is attributable to the code and
// configuration that produced it. Version-1 files (BENCH_1..BENCH_6)
// lack these fields; readers must treat a missing schema_version as 1.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Package    string `json:"package,omitempty"`
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Gomaxprocs is the -N suffix go test appended to the name (the
	// procs the benchmark ran with); 0 when the line carried none.
	Gomaxprocs  int                `json:"gomaxprocs,omitempty"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Output is the whole document.
type Output struct {
	// SchemaVersion identifies the field layout; absent in the v1
	// artifacts that predate provenance stamping.
	SchemaVersion int `json:"schema_version,omitempty"`
	// GitCommit, RunTimestamp (RFC 3339 UTC), and GoVersion attribute
	// the run; Par and SimPar record the host-parallelism and
	// PDES-partition settings in effect, when the caller passed them.
	GitCommit    string      `json:"git_commit,omitempty"`
	RunTimestamp string      `json:"run_timestamp,omitempty"`
	GoVersion    string      `json:"go_version,omitempty"`
	Par          int         `json:"par,omitempty"`
	SimPar       int         `json:"simpar,omitempty"`
	GOOS         string      `json:"goos,omitempty"`
	GOARCH       string      `json:"goarch,omitempty"`
	CPU          string      `json:"cpu,omitempty"`
	Benchmarks   []Benchmark `json:"benchmarks"`
}

// schemaVersion is the layout this binary writes.
const schemaVersion = 2

func main() {
	par := flag.Int("par", 0, "host-parallelism setting the benchmarks ran with (stamped into the artifact; 0 omits)")
	simpar := flag.Int("simpar", 0, "PDES partition count the benchmarks ran with (stamped into the artifact; 0 omits)")
	commit := flag.String("commit", "", "git commit to stamp (default: git rev-parse HEAD, omitted if that fails)")
	flag.Parse()

	out := Output{
		SchemaVersion: schemaVersion,
		GitCommit:     *commit,
		RunTimestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		Par:           *par,
		SimPar:        *simpar,
		Benchmarks:    []Benchmark{},
	}
	if out.GitCommit == "" {
		out.GitCommit = headCommit()
	}

	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				b.Package = pkg
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// headCommit resolves the working tree's HEAD, or "" when not in a git
// checkout (the stamp is best-effort provenance, not a requirement).
func headCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// parseLine parses one result line, e.g.
//
//	BenchmarkFig3Barrier-8  12  95104310 ns/op  1204 B/op  17 allocs/op  3.1 sim-us/global-RT
//
// Fields come in (value, unit) pairs after the name and iteration count.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	// Strip the -GOMAXPROCS suffix go test appends, preserving it as
	// the benchmark's recorded parallelism.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if n, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
			procs = n
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Gomaxprocs: procs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = &v
		case "allocs/op":
			b.AllocsPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}
