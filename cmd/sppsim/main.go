// Command sppsim inspects a simulated SPP-1000 configuration: it dumps
// the topology and runs a probe sweep over the memory-access latency
// ladder (cache hit → local memory → crossbar → SCI ring → global
// buffer).
//
// Usage:
//
//	sppsim -hypernodes 2
package main

import (
	"flag"
	"fmt"
	"os"

	"spp1000/internal/microbench"
	"spp1000/internal/topology"
)

func main() {
	hn := flag.Int("hypernodes", 2, "hypernode count (1-16)")
	flag.Parse()

	topo, err := topology.New(*hn)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sppsim: %v\n", err)
		os.Exit(1)
	}
	p := topology.DefaultParams()
	fmt.Printf("Convex SPP-1000 simulated configuration\n")
	fmt.Printf("  hypernodes:        %d\n", topo.Hypernodes)
	fmt.Printf("  functional units:  %d (2 CPUs each)\n", topo.Hypernodes*topology.FUsPerNode)
	fmt.Printf("  processors:        %d x HP PA-RISC 7100 @ 100 MHz\n", topo.NumCPUs())
	fmt.Printf("  caches:            1 MB I + 1 MB D per CPU, %d B lines, direct mapped\n", topology.CacheLineBytes)
	fmt.Printf("  rings:             %d SCI rings (FU i on ring i)\n", topology.NumRings)
	fmt.Printf("  page size:         %d B\n\n", topology.PageBytes)

	tb, err := microbench.LatencyProbe(*hn)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sppsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(tb.Render())
	if *hn > 1 {
		ratio := float64(p.GlobalMissCycles(1)) / float64(p.HypernodeMiss)
		fmt.Printf("modeled global/local miss ratio (1 hop): %.1f (paper: ~8)\n", ratio)
	}
}
