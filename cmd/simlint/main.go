// Command simlint runs the repo's invariant analyzers (internal/lint)
// over the module: determinism, simtime, counterhandle, ctxflow, and
// deps.
// It is the multichecker `make lint` and `make verify` invoke after
// `go vet`.
//
// Usage:
//
//	simlint [-C dir] [package-pattern ...]
//
// With no patterns it checks ./... of the module at -C (default the
// current directory). Every finding prints as
//
//	file:line:col: message (analyzer)
//
// and the exit status is 1 when any finding survives the
// //simlint:allow suppressions, 2 on load failure, 0 on a clean tree.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"spp1000/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module directory to lint")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-C dir] [package-pattern ...]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	pkgs, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	wd, _ := os.Getwd()
	for _, d := range diags {
		if wd != "" {
			if rel, err := filepath.Rel(wd, d.Pos.Filename); err == nil && len(rel) < len(d.Pos.Filename) {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
