// Command simlint runs the repo's invariant analyzers (internal/lint)
// over the module: determinism, simtime, counterhandle, ctxflow, deps,
// allocfree, lockorder, and ledger.
// It is the multichecker `make lint` and `make verify` invoke after
// `go vet`.
//
// Usage:
//
//	simlint [-C dir] [-json] [package-pattern ...]
//	simlint -annotate < findings.json
//
// With no patterns it checks ./... of the module at -C (default the
// current directory). Every finding prints as
//
//	file:line:col: message (analyzer)
//
// or, with -json, as an array of {"file","line","col","analyzer",
// "message"} objects (see docs/LINT.md for the schema). The exit status
// is 1 when any finding survives the //simlint:allow suppressions, 2 on
// load failure, 0 on a clean tree.
//
// -annotate is the CI half of the pipeline: it reads a -json array on
// stdin, re-emits each finding as a GitHub Actions workflow command
// (::error file=...,line=...), and exits 1 if the array was non-empty.
// Splitting the run from the annotation keeps the pipeline exit status
// honest without depending on the shell's pipefail semantics.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spp1000/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "module directory to lint")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	annotate := flag.Bool("annotate", false, "read a -json array on stdin and emit GitHub annotations; exit 1 if non-empty")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-C dir] [-json] [package-pattern ...]\n       simlint -annotate < findings.json\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *annotate {
		os.Exit(runAnnotate())
	}

	pkgs, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	wd, _ := os.Getwd()
	for i := range diags {
		diags[i].Pos.Filename = shorten(wd, diags[i].Pos.Filename)
	}
	if *jsonOut {
		if err := lint.EncodeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// shorten rewrites an absolute filename relative to the working
// directory when that makes it shorter — friendlier text output and
// repo-relative paths for annotations.
func shorten(wd, filename string) string {
	if wd == "" {
		return filename
	}
	if rel, err := filepath.Rel(wd, filename); err == nil && len(rel) < len(filename) {
		return rel
	}
	return filename
}

// runAnnotate converts a -json findings array on stdin into GitHub
// Actions error annotations on stdout, returning the process exit code.
func runAnnotate() int {
	diags, err := lint.DecodeJSON(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Printf("::error file=%s,line=%d,col=%d,title=simlint(%s)::%s\n",
			d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, escapeAnnotation(d.Message))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// escapeAnnotation applies the workflow-command data escapes (%, CR, LF)
// so multi-line or percent-bearing messages survive the ::error syntax.
func escapeAnnotation(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}
