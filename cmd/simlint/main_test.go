package main

import (
	"os/exec"
	"strings"
	"testing"
)

// TestFixtureModuleFails asserts the driver's contract end to end: run
// against the violation-laden fixture module, simlint must exit 1 and
// name the analyzers — the acceptance demonstration that seeding a
// time.Now (or a Cycles/Duration mix) into a sim-core package fails the
// build.
func TestFixtureModuleFails(t *testing.T) {
	out, err := exec.Command("go", "run", ".",
		"-C", "../../internal/lint/testdata/fixmod").CombinedOutput()
	if err == nil {
		t.Fatalf("simlint on the fixture module succeeded, want exit 1\n%s", out)
	}
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	if code := exitErr.ExitCode(); code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out)
	}
	for _, marker := range []string{
		"(determinism)", "(simtime)", "(counterhandle)", "(ctxflow)",
		"time.Now", "sim.Cycles",
	} {
		if !strings.Contains(string(out), marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}
}
