package main

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"strings"
	"testing"
)

// TestFixtureModuleFails asserts the driver's contract end to end: run
// against the violation-laden fixture module, simlint must exit 1 and
// name the analyzers — the acceptance demonstration that seeding a
// time.Now (or a Cycles/Duration mix) into a sim-core package fails the
// build.
func TestFixtureModuleFails(t *testing.T) {
	out, err := exec.Command("go", "run", ".",
		"-C", "../../internal/lint/testdata/fixmod").CombinedOutput()
	if err == nil {
		t.Fatalf("simlint on the fixture module succeeded, want exit 1\n%s", out)
	}
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go run: %v\n%s", err, out)
	}
	if code := exitErr.ExitCode(); code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out)
	}
	for _, marker := range []string{
		"(determinism)", "(simtime)", "(counterhandle)", "(ctxflow)",
		"(allocfree)", "(lockorder)", "(ledger)",
		"time.Now", "sim.Cycles",
		"heap escape in hot path", "lock-order cycle", "metrics-writer",
	} {
		if !strings.Contains(string(out), marker) {
			t.Errorf("output missing %q:\n%s", marker, out)
		}
	}
}

// TestJSONAndAnnotate runs the CI pipeline end to end: -json on the
// fixture module yields a well-formed array, and feeding that array to
// -annotate yields GitHub workflow commands and exit 1.
func TestJSONAndAnnotate(t *testing.T) {
	cmd := exec.Command("go", "run", ".",
		"-C", "../../internal/lint/testdata/fixmod", "-json")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	if exitErr, ok := err.(*exec.ExitError); !ok || exitErr.ExitCode() != 1 {
		t.Fatalf("-json on fixture module: err=%v, want exit 1\n%s", err, stderr.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json produced an empty array on the fixture module")
	}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Fatalf("incomplete finding in -json output: %+v", f)
		}
	}

	ann := exec.Command("go", "run", ".", "-annotate")
	ann.Stdin = bytes.NewReader(stdout.Bytes())
	out, err := ann.Output()
	if exitErr, ok := err.(*exec.ExitError); !ok || exitErr.ExitCode() != 1 {
		t.Fatalf("-annotate on findings: err=%v, want exit 1\n%s", err, out)
	}
	if got := strings.Count(string(out), "::error file="); got != len(findings) {
		t.Errorf("-annotate emitted %d annotations for %d findings:\n%s", got, len(findings), out)
	}

	// A clean (empty) array annotates to nothing and exit 0.
	clean := exec.Command("go", "run", ".", "-annotate")
	clean.Stdin = strings.NewReader("[]\n")
	if out, err := clean.Output(); err != nil || len(out) != 0 {
		t.Errorf("-annotate on []: out=%q err=%v, want empty and exit 0", out, err)
	}
}
