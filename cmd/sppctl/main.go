// Command sppctl drives a running sppd daemon.
//
// Usage:
//
//	sppctl submit -exp fig6,tab2 [-quick] [-seed 7] [-timeout 5m] [-wait]
//	sppctl status <job-id>
//	sppctl result <job-id>
//	sppctl watch  <job-id>          # poll until finished, print result
//	sppctl cancel <job-id>
//	sppctl list
//	sppctl metrics
//
// The daemon address comes from -addr or the SPPD_ADDR environment
// variable (default http://127.0.0.1:8177). Identical submissions are
// deduplicated server-side: submit prints the job's content-address id,
// and a repeat submit of the same configuration returns instantly with
// the cached result available.
//
// Requests that fail to connect or are answered 503 (queue full,
// daemon draining) are retried with exponential backoff plus jitter,
// up to -retries attempts — every operation is safe to repeat because
// jobs are content-addressed: resubmitting a spec can only rejoin the
// same job, never start a second run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"spp1000/internal/experiments"
	"spp1000/internal/service"
)

func defaultAddr() string {
	if a := os.Getenv("SPPD_ADDR"); a != "" {
		return a
	}
	return "http://127.0.0.1:8177"
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: sppctl [-addr URL] {submit|status|result|watch|cancel|list|metrics} ...\n")
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", defaultAddr(), "sppd base URL (or $SPPD_ADDR)")
	retries := flag.Int("retries", 4, "retries after a connection error or 503, with exponential backoff + jitter (0 = fail fast)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	if *retries < 0 {
		*retries = 0
	}
	c := &client{base: strings.TrimRight(*addr, "/"), retries: *retries}

	var err error
	switch cmd, rest := args[0], args[1:]; cmd {
	case "submit":
		err = c.submit(rest)
	case "status":
		err = c.status(rest)
	case "result":
		err = c.result(rest)
	case "watch":
		err = c.watch(rest)
	case "cancel":
		err = c.cancel(rest)
	case "list":
		err = c.list()
	case "metrics":
		err = c.metrics()
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sppctl: %v\n", err)
		os.Exit(1)
	}
}

type client struct {
	base    string
	retries int
}

// retryBase is the first backoff delay; each retry doubles it (capped
// at retryMax) and jitters the result by ±50% so a fleet of clients
// retrying against an overloaded daemon spreads out instead of
// stampeding in lockstep.
const (
	retryBase = 200 * time.Millisecond
	retryMax  = 5 * time.Second
)

// do issues one API request, retrying connection errors and 503s (the
// daemon's overload/draining answer, or the gateway's no-backends
// answer) with exponential backoff + jitter. A 503 carrying a
// Retry-After header — sppgw always sets one — overrides the backoff
// schedule: the server knows better than the client's fixed curve when
// capacity returns. body is bytes, not a Reader, so every attempt
// resends the same payload; retrying a submit is safe because jobs are
// content-addressed (a repeat can only rejoin the same job).
func (c *client) do(method, path string, body []byte) (*http.Response, []byte, error) {
	for attempt := 0; ; attempt++ {
		resp, data, err := c.doOnce(method, path, body)
		retryable := err != nil || resp.StatusCode == http.StatusServiceUnavailable
		if !retryable || attempt >= c.retries {
			return resp, data, err
		}
		delay := backoff(attempt)
		if err == nil {
			if ra := retryAfter(resp); ra > 0 {
				delay = ra
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "sppctl: %v; retrying in %v (%d/%d)\n", err, delay, attempt+1, c.retries)
		} else {
			fmt.Fprintf(os.Stderr, "sppctl: %s (%s); retrying in %v (%d/%d)\n",
				resp.Status, strings.TrimSpace(string(data)), delay, attempt+1, c.retries)
		}
		time.Sleep(delay)
	}
}

// backoff computes the jittered exponential delay for one retry.
func backoff(attempt int) time.Duration {
	d := retryBase << attempt
	if d > retryMax {
		d = retryMax
	}
	// ±50% jitter: [d/2, 3d/2).
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// retryAfter parses a delay-seconds Retry-After header (the form sppgw
// and proxies send), capped at retryMax; 0 means absent or not a plain
// second count (the HTTP-date form is not worth supporting here).
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0
	}
	d := time.Duration(n) * time.Second
	if d > retryMax {
		d = retryMax
	}
	return d
}

func (c *client) doOnce(method, path string, body []byte) (*http.Response, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("%s %s: %w (is sppd running? try `make serve`)", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp, data, err
}

// apiErr turns an error-shaped JSON response into a readable error.
func apiErr(resp *http.Response, data []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
}

func printView(v service.JobView) {
	fmt.Printf("job:    %s\n", v.ID)
	fmt.Printf("exp:    %s\n", strings.Join(v.Experiments, ","))
	fmt.Printf("status: %s", v.Status)
	if v.Cached {
		fmt.Printf(" (cached)")
	}
	fmt.Println()
	if v.Error != "" {
		fmt.Printf("error:  %s\n", v.Error)
	}
}

func (c *client) submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	exp := fs.String("exp", "all", "experiment ids (all, extra, everything, or comma-separated)")
	quick := fs.Bool("quick", false, "reduced problem sizes")
	seed := fs.Uint64("seed", 0, "override the workload seed (0 = option default)")
	picSteps := fs.Int("picsteps", 0, "override PIC steps (0 = option default)")
	appSteps := fs.Int("appsteps", 0, "override app steps (0 = option default)")
	nbodySample := fs.Int("nbodysample", 0, "override N-body sample (0 = option default)")
	nbodySizes := fs.String("nbodysizes", "", "override N-body sizes, comma-separated")
	timeout := fs.Duration("timeout", 0, "per-job execution deadline (0 = daemon default); expired jobs report status timeout")
	wait := fs.Bool("wait", false, "block until the job finishes and print the result")
	fs.Parse(args)

	if *timeout < 0 {
		return fmt.Errorf("-timeout must be >= 0 (got %v)", *timeout)
	}

	names, err := experiments.ResolveNames(*exp)
	if err != nil {
		return err
	}
	opts := experiments.Defaults()
	if *quick {
		opts = experiments.Quick()
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	if *picSteps != 0 {
		opts.PICSteps = *picSteps
	}
	if *appSteps != 0 {
		opts.AppSteps = *appSteps
	}
	if *nbodySample != 0 {
		opts.NBodySample = *nbodySample
	}
	if *nbodySizes != "" {
		var sizes []int
		for _, s := range strings.Split(*nbodySizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("bad -nbodysizes element %q: %w", s, err)
			}
			sizes = append(sizes, n)
		}
		opts.NBodySizes = sizes
	}

	req := map[string]any{"experiments": names, "options": opts}
	if *timeout > 0 {
		req["timeout"] = timeout.String()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, data, err := c.do(http.MethodPost, "/v1/jobs", body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return apiErr(resp, data)
	}
	var v service.JobView
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	printView(v)
	if *wait {
		return c.watch([]string{v.ID})
	}
	return nil
}

func oneID(args []string, cmd string) (string, error) {
	if len(args) != 1 {
		return "", fmt.Errorf("usage: sppctl %s <job-id>", cmd)
	}
	return args[0], nil
}

func (c *client) fetchView(id string) (service.JobView, error) {
	resp, data, err := c.do(http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return service.JobView{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return service.JobView{}, apiErr(resp, data)
	}
	var v service.JobView
	return v, json.Unmarshal(data, &v)
}

func (c *client) status(args []string) error {
	id, err := oneID(args, "status")
	if err != nil {
		return err
	}
	v, err := c.fetchView(id)
	if err != nil {
		return err
	}
	printView(v)
	return nil
}

func (c *client) result(args []string) error {
	id, err := oneID(args, "result")
	if err != nil {
		return err
	}
	resp, data, err := c.do(http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		fmt.Print(string(data))
		return nil
	case http.StatusAccepted:
		var v service.JobView
		if json.Unmarshal(data, &v) == nil {
			return fmt.Errorf("job is still %s (try `sppctl watch %s`)", v.Status, id)
		}
		return fmt.Errorf("job not finished")
	default:
		return apiErr(resp, data)
	}
}

func (c *client) watch(args []string) error {
	id, err := oneID(args, "watch")
	if err != nil {
		return err
	}
	last := ""
	for {
		v, err := c.fetchView(id)
		if err != nil {
			return err
		}
		if v.Status != last {
			fmt.Fprintf(os.Stderr, "sppctl: job %.12s… %s\n", id, v.Status)
			last = v.Status
		}
		if service.Status(v.Status).Terminal() {
			if service.Status(v.Status) != service.StatusDone {
				return fmt.Errorf("job %s: %s", v.Status, v.Error)
			}
			return c.result([]string{id})
		}
		time.Sleep(250 * time.Millisecond)
	}
}

func (c *client) cancel(args []string) error {
	id, err := oneID(args, "cancel")
	if err != nil {
		return err
	}
	resp, data, err := c.do(http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return apiErr(resp, data)
	}
	var v service.JobView
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	printView(v)
	return nil
}

func (c *client) list() error {
	resp, data, err := c.do(http.MethodGet, "/v1/jobs", nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp, data)
	}
	var views []service.JobView
	if err := json.Unmarshal(data, &views); err != nil {
		return err
	}
	if len(views) == 0 {
		fmt.Println("no jobs")
		return nil
	}
	for _, v := range views {
		cached := ""
		if v.Cached {
			cached = " cached"
		}
		fmt.Printf("%.12s…  %-8s%s  %s\n", v.ID, v.Status, cached, strings.Join(v.Experiments, ","))
	}
	return nil
}

func (c *client) metrics() error {
	resp, data, err := c.do(http.MethodGet, "/metrics", nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp, data)
	}
	fmt.Print(string(data))
	return nil
}
