package main

import (
	"net/http"
	"testing"
	"time"
)

func respWithRetryAfter(v string) *http.Response {
	h := http.Header{}
	if v != "" {
		h.Set("Retry-After", v)
	}
	return &http.Response{StatusCode: http.StatusServiceUnavailable, Header: h}
}

func TestRetryAfterParsing(t *testing.T) {
	cases := []struct {
		header string
		want   time.Duration
	}{
		{"", 0},                 // absent: fall back to backoff
		{"1", time.Second},      // sppgw's no-backends answer
		{"30", 5 * time.Second}, // capped at retryMax
		{"0", 0},                // zero is not a delay
		{"-3", 0},               // negative rejected
		{"soon", 0},             // HTTP-date / garbage ignored
		{"2", 2 * time.Second},  // plain seconds honored
	}
	for _, c := range cases {
		if got := retryAfter(respWithRetryAfter(c.header)); got != c.want {
			t.Errorf("retryAfter(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}
