// Command sppload drives a live sppd daemon (or sppgw gateway) with a
// closed-loop workload mix — hot-key zipfian resubmits, cold sweep
// submissions, cancels, deadline-doomed jobs, malformed requests — and
// writes the run's report as a LOAD_n.json artifact: per-class latency
// percentiles, a concurrency-ladder speedup/efficiency table,
// saturation throughput, and the exact reconciliation of the client's
// tallies against the daemon's own /metrics deltas. A run whose books
// do not balance exits nonzero; `make loadcheck` runs the bounded CI
// profile. See docs/BENCHMARKS.md for the methodology and the artifact
// schema.
//
// Usage:
//
//	sppload -addr http://127.0.0.1:8177 -o LOAD_8.json
//	sppload -mix hot=80,cold=20 -ladder 1,2,4,8 -ops 400 -workers 16
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"spp1000/internal/experiments"
	"spp1000/internal/load"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8177", "base URL of the sppd daemon or sppgw gateway under load")
		out       = flag.String("o", "", "path for the LOAD_n.json artifact (default stdout)")
		mixStr    = flag.String("mix", "hot=40,cold=30,cancel=10,timeout=10,malformed=10", "workload mix weights")
		ladder    = flag.String("ladder", "1,2,4", "comma-separated worker counts for the concurrency-ladder rungs")
		ladderOps = flag.Int("ladder-ops", 40, "operations per ladder rung")
		workers   = flag.Int("workers", 8, "worker count of the main stage")
		ops       = flag.Int("ops", 120, "operations in the main stage")
		hotKeys   = flag.Int("hot-keys", 8, "size of the hot spec set")
		zipf      = flag.Float64("zipf", 1.1, "zipf exponent of the hot-key popularity skew (0 = uniform)")
		seed      = flag.Uint64("seed", 1, "generator seed; equal seeds replay identical op sequences")
		exp       = flag.String("exp", "tab1", "experiment id the generated jobs run (quick scale)")
		wait      = flag.Duration("wait", 0, "wait up to this long for the daemon's /healthz before starting")
		quiet     = flag.Bool("q", false, "suppress the progress and summary lines on stderr")
	)
	flag.Parse()

	mix, err := load.ParseMix(*mixStr)
	if err != nil {
		fatal(err)
	}
	stages, err := parseLadder(*ladder, *ladderOps)
	if err != nil {
		fatal(err)
	}
	stages = append(stages, load.Stage{Workers: *workers, Ops: *ops})
	if _, err := experiments.ResolveNames(*exp); err != nil {
		fatal(fmt.Errorf("-exp %s: %w", *exp, err))
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "sppload: "+format+"\n", args...)
	}
	if *quiet {
		logf = func(string, ...any) {}
	}

	if *wait > 0 {
		if err := load.WaitHealthy(nil, *addr, int(*wait/(50*time.Millisecond))+1, 50*time.Millisecond, nil); err != nil {
			fatal(err)
		}
	}

	res, err := load.Run(load.Config{
		BaseURL: *addr,
		Mix:     mix,
		Stages:  stages,
		HotKeys: *hotKeys,
		ZipfS:   *zipf,
		Seed:    *seed,
		Body:    bodyFunc(*exp),
		Logf:    logf,
	})
	if err != nil {
		fatal(err)
	}
	res.Provenance = &load.Provenance{
		GitCommit:    headCommit(),
		RunTimestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := res.WriteJSON(w); err != nil {
		fatal(err)
	}
	if !*quiet {
		summarize(res)
	}
	if !res.Reconcile.OK {
		fmt.Fprintf(os.Stderr, "sppload: RECONCILE FAILED — client tallies do not equal server books:\n%s", res.Reconcile.Failures())
		os.Exit(1)
	}
	logf("reconcile OK: every client tally equals the server's books exactly")
}

// bodyFunc renders generated ops into submit bodies: quick-scale specs
// of one experiment, content-addressed apart by a class-namespaced
// seed, with the impossible 1ns execution deadline on timeout-class
// jobs. This is the one place sppload speaks the experiment
// vocabulary — internal/load never does.
func bodyFunc(exp string) func(load.Op) []byte {
	return func(op load.Op) []byte {
		opts := experiments.Quick()
		opts.Seed = seedFor(op)
		req := map[string]any{
			"experiments": []string{exp},
			"options":     opts,
		}
		if op.Class == load.OpTimeout {
			req["timeout"] = "1ns"
		}
		b, err := json.Marshal(req)
		if err != nil {
			panic(err) // a map of marshalable values cannot fail
		}
		return b
	}
}

// seedFor namespaces the content-addressing seed per class: hot keys
// share a small stable set (so resubmits coalesce) while cold, cancel,
// and timeout jobs each get addresses no other class can collide with.
func seedFor(op load.Op) uint64 {
	switch op.Class {
	case load.OpHot:
		return 1 + uint64(op.Key)
	case load.OpCold:
		return 1_000_000 + uint64(op.Key)
	case load.OpCancel:
		return 2_000_000 + uint64(op.Key)
	case load.OpTimeout:
		return 3_000_000 + uint64(op.Key)
	}
	return 0
}

// parseLadder turns "1,2,4" into ladder rungs of opsEach operations.
func parseLadder(s string, opsEach int) ([]load.Stage, error) {
	var stages []load.Stage
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.Atoi(part)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-ladder: %q is not a positive worker count", part)
		}
		stages = append(stages, load.Stage{Workers: w, Ops: opsEach})
	}
	return stages, nil
}

// summarize prints the human-readable run digest on stderr.
func summarize(res *load.Result) {
	fmt.Fprintf(os.Stderr, "\nsppload: %s (metrics %s*)\n", res.Target, res.Prefix)
	fmt.Fprintf(os.Stderr, "  %-8s %6s %10s %10s %8s %10s\n", "stage", "ops", "wall(s)", "ops/sec", "speedup", "efficiency")
	for _, st := range res.Stages {
		fmt.Fprintf(os.Stderr, "  %-8s %6d %10.3f %10.1f %8.2f %10.2f\n",
			fmt.Sprintf("w=%d", st.Workers), st.Ops, st.WallSeconds, st.OpsPerSec, st.Speedup, st.Efficiency)
	}
	fmt.Fprintf(os.Stderr, "  saturation: %.1f ops/sec\n\n", res.SaturationOpsPerSec)
	fmt.Fprintf(os.Stderr, "  %-10s %6s %9s %9s %9s %9s %9s\n", "class", "ops", "p50(ms)", "p90(ms)", "p99(ms)", "p999(ms)", "max(ms)")
	for _, cs := range res.Classes {
		fmt.Fprintf(os.Stderr, "  %-10s %6d %9.3f %9.3f %9.3f %9.3f %9.3f  %v\n",
			cs.Class, cs.Ops, cs.P50MS, cs.P90MS, cs.P99MS, cs.P999MS, cs.MaxMS, cs.Outcomes)
	}
	fmt.Fprintln(os.Stderr)
}

// headCommit resolves HEAD for the provenance stamp, best-effort.
func headCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sppload: %v\n", err)
	os.Exit(1)
}
