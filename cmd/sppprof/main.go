// Command sppprof runs a parameterized workload on the simulated
// SPP-1000 and prints its CXpa-style profile and execution timeline —
// the observability tooling the paper credits for its optimization work
// (§6).
//
// Usage:
//
//	sppprof -threads 16 -phases 4 -imbalance 0.5 -remote
//	sppprof -threads 8 -width 120
//	sppprof -counters                 # append the PMU counter breakdown
//	sppprof -chrome trace.json        # Chrome trace-event export
//	sppprof -chrome - > trace.json    # ... to stdout (suppresses text)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"spp1000/internal/cxpa"
	"spp1000/internal/machine"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
	"spp1000/internal/trace"
)

func main() {
	nThreads := flag.Int("threads", 16, "team size (1-128)")
	phases := flag.Int("phases", 4, "barrier-bounded phases")
	imbalance := flag.Float64("imbalance", 0.5, "work skew: thread i carries (1 + i*imbalance/threads) units")
	remote := flag.Bool("remote", true, "walk a shared table hosted on hypernode 0")
	width := flag.Int("width", 96, "timeline width in characters")
	uniform := flag.Bool("uniform", false, "uniform thread placement instead of high locality")
	withCounters := flag.Bool("counters", false, "append the machine's PMU counter breakdown")
	chrome := flag.String("chrome", "", "write the timeline as Chrome trace-event JSON to this file (- for stdout); counters ride along in otherData")
	flag.Parse()

	hn := (*nThreads + topology.CPUsPerNode - 1) / topology.CPUsPerNode
	if hn < 1 {
		hn = 1
	}
	if hn > topology.MaxHypernodes {
		log.Fatalf("sppprof: %d threads exceed the %d-CPU machine", *nThreads, topology.MaxHypernodes*topology.CPUsPerNode)
	}
	m, err := machine.New(machine.Config{Hypernodes: hn})
	if err != nil {
		log.Fatal(err)
	}
	m.Trace = trace.New()
	reg := m.EnableCounters()
	table := m.Alloc("table", topology.NearShared, 0, 0)

	place := threads.HighLocality
	if *uniform {
		place = threads.Uniform
	}
	bar := threads.NewBarrier(m, *nThreads, 0)
	_, ths, err := threads.RunTeamThreads(m, *nThreads, place, func(th *machine.Thread, tid int) {
		base := 20_000.0
		work := int64(base * (1 + float64(tid)*(*imbalance)/float64(*nThreads)))
		for phase := 0; phase < *phases; phase++ {
			th.ComputeCycles(work)
			if *remote {
				for i := 0; i < 32; i++ {
					th.Read(table, topology.Addr((tid*32+i)*topology.CacheLineBytes))
				}
			}
			bar.Wait(th)
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	if *chrome != "" {
		// The machine's counters travel in otherData, so the exported
		// file is self-describing alongside the timeline.
		other := map[string]string{}
		for k, v := range reg.Snapshot().Flatten() {
			other[k] = strconv.FormatInt(v, 10)
		}
		data, err := m.Trace.ChromeTrace(other)
		if err != nil {
			log.Fatal(err)
		}
		if *chrome == "-" {
			os.Stdout.Write(data)
			fmt.Println()
			return
		}
		if err := os.WriteFile(*chrome, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chrome trace written to %s (load in chrome://tracing or Perfetto)\n", *chrome)
	}

	title := fmt.Sprintf("CXpa profile: %d threads (%v), %d phases, imbalance %.2f",
		*nThreads, place, *phases, *imbalance)
	fmt.Print(cxpa.Render(title, m, cxpa.Snapshot(ths)))
	fmt.Println()
	fmt.Print(m.Trace.Render("Execution timeline", *width))
	if *withCounters {
		fmt.Println()
		fmt.Print(reg.Snapshot().Render("PMU counters"))
	}
}
