// Command sppbench regenerates the tables and figures of the paper's
// evaluation on the simulated SPP-1000.
//
// Usage:
//
//	sppbench -exp all            # every experiment, paper scale
//	sppbench -exp fig3           # one experiment
//	sppbench -exp fig6,tab2      # a subset
//	sppbench -quick              # reduced problem sizes (CI-friendly)
//	sppbench -par 1              # serial (default: all host cores)
//	sppbench -simpar 4           # partitioned-engine workers (1 = serial)
//	sppbench -exp all -counters  # append per-component PMU counter tables
//	sppbench -exp all -checkpoint run.ckpt -checkpoint-every 2
//	                             # checkpoint progress every 2 experiments
//	sppbench -resume run.ckpt    # resume a killed run from its checkpoint
//
// Every sweep point is an independent deterministic simulation, so the
// experiments fan out across host cores through internal/runner; the
// output is byte-identical for any -par value. -simpar independently
// sets how many goroutines execute the hypernode partitions *inside*
// one simulation on the PDES engine (internal/parsim); output is
// byte-identical for any -simpar value too. A checkpointed run killed
// at any boundary and resumed prints byte-identical output as well —
// the resume-exactness guarantee internal/snapshot's tests enforce.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"spp1000/internal/counters"
	"spp1000/internal/experiments"
	"spp1000/internal/parsim"
	"spp1000/internal/runner"
	"spp1000/internal/snapshot"
)

func main() {
	exp := flag.String("exp", "all", "experiment id(s): all, or comma-separated from "+strings.Join(append(append([]string{}, experiments.Names...), experiments.Extra...), ","))
	quick := flag.Bool("quick", false, "reduced problem sizes")
	jsonOut := flag.Bool("json", false, "emit the paper artifacts as structured JSON instead of text")
	par := flag.Int("par", 0, "host workers for independent simulations (0 = all cores, 1 = serial)")
	simpar := flag.Int("simpar", 0, "host workers for hypernode partitions inside one PDES simulation (0 or 1 = serial)")
	withCounters := flag.Bool("counters", false, "append a per-component PMU counter breakdown to every experiment")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: save resumable progress at experiment boundaries")
	every := flag.Int("checkpoint-every", 1, "experiments between checkpoint saves (with -checkpoint or -resume)")
	resume := flag.String("resume", "", "resume from this checkpoint file (keeps checkpointing to it unless -checkpoint names another)")
	flag.Parse()

	if *par < 0 {
		fmt.Fprintf(os.Stderr, "sppbench: -par must be >= 0 (0 = all cores, 1 = serial), got %d\n", *par)
		os.Exit(2)
	}
	runner.SetWorkers(*par)
	if *simpar < 0 {
		fmt.Fprintf(os.Stderr, "sppbench: -simpar must be >= 0 (0 or 1 = serial), got %d\n", *simpar)
		os.Exit(2)
	}
	parsim.SetWorkers(*simpar)

	opts := experiments.Defaults()
	if *quick {
		opts = experiments.Quick()
	}

	if *jsonOut {
		report, err := experiments.BuildReport(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sppbench: %v\n", err)
			os.Exit(1)
		}
		data, err := report.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sppbench: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		fmt.Println()
		return
	}

	// Validate before running anything: an unknown or empty id must be
	// a loud nonzero exit, not a partial (or empty) report.
	names, err := experiments.ResolveNames(*exp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sppbench: %v\n", err)
		os.Exit(2)
	}
	if *checkpoint != "" || *resume != "" {
		if *withCounters {
			fmt.Fprintln(os.Stderr, "sppbench: -counters cannot combine with -checkpoint/-resume (the checkpointed driver records counters in the checkpoint itself)")
			os.Exit(2)
		}
		if *every < 1 {
			fmt.Fprintf(os.Stderr, "sppbench: -checkpoint-every must be >= 1, got %d\n", *every)
			os.Exit(2)
		}
		path := *checkpoint
		if path == "" {
			path = *resume
		}
		var prior *snapshot.Checkpoint
		if *resume != "" {
			switch c, rerr := snapshot.ReadFile(*resume); {
			case rerr == nil:
				prior = c
			case errors.Is(rerr, os.ErrNotExist):
				// Nothing to resume yet: a fresh run that checkpoints here.
			case errors.Is(rerr, snapshot.ErrCorrupt):
				fmt.Fprintf(os.Stderr, "sppbench: %s was corrupt and has been deleted; starting fresh\n", *resume)
			default:
				fmt.Fprintf(os.Stderr, "sppbench: %v\n", rerr)
				os.Exit(1)
			}
		}
		outs, _, err := experiments.RunCheckpointed(context.Background(), names, opts, prior, *every,
			func(c *snapshot.Checkpoint) error { return snapshot.WriteFile(path, c) })
		if err != nil {
			fmt.Fprintf(os.Stderr, "sppbench: %v (completed progress is checkpointed in %s)\n", err, path)
			os.Exit(1)
		}
		for i, name := range names {
			fmt.Printf("=== %s ===\n%s\n", name, outs[i])
		}
		return
	}
	if *withCounters {
		// Attribute counters per experiment: run the experiments one at
		// a time, each with its own collector sink. Every machine built
		// while the sink is attached enables its counters and publishes
		// when its run completes; the merge is commutative, so the table
		// is byte-identical for any -par (sweep points inside each
		// experiment still fan out across the pool).
		for _, name := range names {
			col := counters.NewCollector()
			counters.Attach(col)
			out, err := experiments.Run(name, opts)
			counters.Detach(col)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sppbench: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("=== %s ===\n%s\n", name, out)
			fmt.Print(col.Snapshot().Render(fmt.Sprintf("PMU counters: %s", name)))
			fmt.Println()
		}
		return
	}
	outs, err := experiments.RunMany(names, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sppbench: %v\n", err)
		os.Exit(1)
	}
	for i, name := range names {
		fmt.Printf("=== %s ===\n%s\n", name, outs[i])
	}
}
