// Command sppbench regenerates the tables and figures of the paper's
// evaluation on the simulated SPP-1000.
//
// Usage:
//
//	sppbench -exp all            # every experiment, paper scale
//	sppbench -exp fig3           # one experiment
//	sppbench -exp fig6,tab2      # a subset
//	sppbench -quick              # reduced problem sizes (CI-friendly)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"spp1000/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id(s): all, or comma-separated from "+strings.Join(append(append([]string{}, experiments.Names...), experiments.Extra...), ","))
	quick := flag.Bool("quick", false, "reduced problem sizes")
	jsonOut := flag.Bool("json", false, "emit the paper artifacts as structured JSON instead of text")
	flag.Parse()

	opts := experiments.Defaults()
	if *quick {
		opts = experiments.Quick()
	}

	if *jsonOut {
		report, err := experiments.BuildReport(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sppbench: %v\n", err)
			os.Exit(1)
		}
		data, err := report.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sppbench: %v\n", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		fmt.Println()
		return
	}

	var names []string
	switch *exp {
	case "all":
		names = experiments.Names
	case "extra":
		names = experiments.Extra
	case "everything":
		names = append(append([]string{}, experiments.Names...), experiments.Extra...)
	default:
		names = strings.Split(*exp, ",")
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		out, err := experiments.Run(name, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sppbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s ===\n%s\n", name, out)
	}
}
