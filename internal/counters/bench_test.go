package counters

import "testing"

// The counters-off cost is the price every simulated event pays once the
// components carry counter handles: a nil check. BENCH_3.json records it
// next to the enabled cost so the disabled-path regression bound (0
// allocs, ≤2% ns/event) stays visible across PRs.

func BenchmarkCounterIncDisabled(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncEnabled(b *testing.B) {
	c := NewRegistry().Group("g").Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 255))
	}
}

func BenchmarkHistogramObserveEnabled(b *testing.B) {
	h := NewRegistry().Group("g").Histogram("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 255))
	}
}
