// Package counters is the hardware-PMU-style observability layer of the
// simulator: monotonic event counters and latency/size histograms owned
// by the machine components (cache, directory, SCI, rings, crossbar,
// thread runtime), grouped per component instance, and snapshotted into
// deterministic, render-ready tables.
//
// The design requirement is zero overhead when disabled. Every handle
// type (*Counter, *Histogram, *Group, *Registry) treats the nil receiver
// as an attached-to-nothing sink: Inc/Add/Observe on nil are single
// branch no-ops that allocate nothing, so components hold handles
// unconditionally and never branch on an "enabled" flag themselves.
// A machine that never calls EnableCounters pays one nil check per
// counted event and nothing else — the acceptance bar is 0 allocs/event
// and ≤2% ns/event on the disabled path, enforced by the package tests
// and the memsys benchmarks.
//
// Counters do not exist in simulated time: attaching or reading them
// never changes a virtual timestamp, so enabling observability cannot
// perturb the experiment being observed.
package counters

import (
	"fmt"
	"sort"
	"strings"
)

// Counter is one monotonically increasing event count. The zero value is
// ready to use; the nil pointer is the disabled sink (Inc/Add no-op).
type Counter struct {
	v       int64
	flushed int64
}

// Inc adds one. No-op on a nil counter.
//
//simlint:hotpath
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n (n may be any non-negative delta). No-op on a nil counter.
//
//simlint:hotpath
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value reports the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// NumBuckets is the fixed bucket count of every Histogram: power-of-two
// upper bounds 1, 2, 4, … 128, plus one overflow bucket.
const NumBuckets = 9

// bucketFor maps an observation to its bucket index.
func bucketFor(v int64) int {
	bound := int64(1)
	for i := 0; i < NumBuckets-1; i++ {
		if v <= bound {
			return i
		}
		bound <<= 1
	}
	return NumBuckets - 1
}

// BucketLabel names bucket i ("<=1", "<=2", … ">128") for rendering.
func BucketLabel(i int) string {
	if i >= NumBuckets-1 {
		return fmt.Sprintf(">%d", int64(1)<<(NumBuckets-2))
	}
	return fmt.Sprintf("<=%d", int64(1)<<i)
}

// Histogram records a distribution of non-negative integer observations
// (purge-walk lengths, invalidation fan-outs, ring hop counts) with
// count/sum/max plus NumBuckets fixed power-of-two buckets. The zero
// value is ready; the nil pointer is the disabled sink.
type Histogram struct {
	cur     HistogramValue
	flushed HistogramValue
}

// Observe records one sample. No-op on a nil histogram.
//
//simlint:hotpath
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.cur.Count++
	h.cur.Sum += v
	if v > h.cur.Max {
		h.cur.Max = v
	}
	h.cur.Buckets[bucketFor(v)]++
}

// Value reports the accumulated distribution (zero on a nil histogram).
func (h *Histogram) Value() HistogramValue {
	if h == nil {
		return HistogramValue{}
	}
	return h.cur
}

// Group is the counter namespace of one component instance (for example
// cache.hn0 or sci). Asking twice for the same name returns the same
// handle, so several sub-components may share one aggregated counter.
// A nil Group hands out nil handles, which keeps the disabled path free.
type Group struct {
	name     string
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// Name reports the group's name ("" on a nil group).
func (g *Group) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Counter returns (creating on first use) the named counter in the
// group. On a nil group it returns the nil disabled-sink counter.
func (g *Group) Counter(name string) *Counter {
	if g == nil {
		return nil
	}
	c, ok := g.counters[name]
	if !ok {
		c = &Counter{}
		g.counters[name] = c
	}
	return c
}

// Histogram returns (creating on first use) the named histogram in the
// group. On a nil group it returns the nil disabled-sink histogram.
func (g *Group) Histogram(name string) *Histogram {
	if g == nil {
		return nil
	}
	h, ok := g.hists[name]
	if !ok {
		h = &Histogram{}
		g.hists[name] = h
	}
	return h
}

// Registry holds the counter groups of one machine. It is not
// goroutine-safe — one machine's simulation is single-threaded by
// construction — and a nil Registry hands out nil Groups, so a machine
// without counters costs nothing. Cross-machine aggregation goes through
// Collector sinks (see Publish).
type Registry struct {
	groups map[string]*Group
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{groups: make(map[string]*Group)}
}

// Group returns (creating on first use) the named group. On a nil
// registry it returns the nil disabled-sink group.
func (r *Registry) Group(name string) *Group {
	if r == nil {
		return nil
	}
	g, ok := r.groups[name]
	if !ok {
		g = &Group{name: name, counters: make(map[string]*Counter), hists: make(map[string]*Histogram)}
		r.groups[name] = g
	}
	return g
}

// CounterValue is one named count in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one snapshotted distribution.
type HistogramValue struct {
	Name    string            `json:"name,omitempty"`
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Max     int64             `json:"max"`
	Buckets [NumBuckets]int64 `json:"buckets"`
}

// Mean reports the sample mean (0 with no samples).
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// merge folds o into h (count/sum/buckets add, max takes the larger).
func (h *HistogramValue) merge(o HistogramValue) {
	h.Count += o.Count
	h.Sum += o.Sum
	if o.Max > h.Max {
		h.Max = o.Max
	}
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// GroupSnapshot is one group's values, each list sorted by name.
type GroupSnapshot struct {
	Name       string           `json:"name"`
	Counters   []CounterValue   `json:"counters,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot is a deterministic point-in-time copy of a Registry or
// Collector: groups sorted by name, entries sorted by name within each
// group, so equal counter states always render to equal bytes.
type Snapshot struct {
	Groups []GroupSnapshot `json:"groups"`
}

// Snapshot copies the registry's current absolute values. Nil-safe.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	var s Snapshot
	//simlint:allow determinism s.sort() below orders every group and entry by name before anything renders
	for name, g := range r.groups {
		gs := GroupSnapshot{Name: name}
		//simlint:allow determinism s.sort() below orders every group and entry by name before anything renders
		for cn, c := range g.counters {
			gs.Counters = append(gs.Counters, CounterValue{Name: cn, Value: c.v})
		}
		//simlint:allow determinism s.sort() below orders every group and entry by name before anything renders
		for hn, h := range g.hists {
			hv := h.cur
			hv.Name = hn
			gs.Histograms = append(gs.Histograms, hv)
		}
		s.Groups = append(s.Groups, gs)
	}
	s.sort()
	return s
}

func (s *Snapshot) sort() {
	sort.Slice(s.Groups, func(i, j int) bool { return s.Groups[i].Name < s.Groups[j].Name })
	for i := range s.Groups {
		g := &s.Groups[i]
		sort.Slice(g.Counters, func(a, b int) bool { return g.Counters[a].Name < g.Counters[b].Name })
		sort.Slice(g.Histograms, func(a, b int) bool { return g.Histograms[a].Name < g.Histograms[b].Name })
	}
}

// MergeSnapshots folds several snapshots into one: groups with the same
// name merge, counters with the same name add, histograms with the same
// name fold (count/sum/buckets add, max takes the larger). It is how a
// partitioned cluster (internal/parsim) combines its per-hypernode
// registries into one machine-wide snapshot. Deterministic and
// commutative over the inputs: the result is sorted like Snapshot, and
// addition/max do not depend on argument order.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	groups := make(map[string]*GroupSnapshot)
	var order []string
	for _, s := range snaps {
		for _, g := range s.Groups {
			mg, ok := groups[g.Name]
			if !ok {
				mg = &GroupSnapshot{Name: g.Name}
				groups[g.Name] = mg
				order = append(order, g.Name)
			}
			for _, c := range g.Counters {
				mergeCounter(mg, c)
			}
			for _, h := range g.Histograms {
				mergeHistogram(mg, h)
			}
		}
	}
	var out Snapshot
	for _, name := range order {
		out.Groups = append(out.Groups, *groups[name])
	}
	out.sort()
	return out
}

// mergeCounter adds c into the group, creating the entry on first sight.
func mergeCounter(g *GroupSnapshot, c CounterValue) {
	for i := range g.Counters {
		if g.Counters[i].Name == c.Name {
			g.Counters[i].Value += c.Value
			return
		}
	}
	g.Counters = append(g.Counters, c)
}

// mergeHistogram folds h into the group, creating the entry on first sight.
func mergeHistogram(g *GroupSnapshot, h HistogramValue) {
	for i := range g.Histograms {
		if g.Histograms[i].Name == h.Name {
			g.Histograms[i].merge(h)
			return
		}
	}
	g.Histograms = append(g.Histograms, h)
}

// Counter reports the value of group/name in the snapshot (0 if absent).
func (s Snapshot) Counter(group, name string) int64 {
	for _, g := range s.Groups {
		if g.Name != group {
			continue
		}
		for _, c := range g.Counters {
			if c.Name == name {
				return c.Value
			}
		}
	}
	return 0
}

// GroupTotal sums counter name over every group named prefix or
// prefix.<instance> — e.g. GroupTotal("directory", "invalidations")
// totals directory.hn0, directory.hn1, ….
func (s Snapshot) GroupTotal(prefix, name string) int64 {
	var tot int64
	for _, g := range s.Groups {
		if g.Name != prefix && !strings.HasPrefix(g.Name, prefix+".") {
			continue
		}
		for _, c := range g.Counters {
			if c.Name == name {
				tot += c.Value
			}
		}
	}
	return tot
}

// Histogram reports the named histogram of a group and whether it exists.
func (s Snapshot) Histogram(group, name string) (HistogramValue, bool) {
	for _, g := range s.Groups {
		if g.Name != group {
			continue
		}
		for _, h := range g.Histograms {
			if h.Name == name {
				return h, true
			}
		}
	}
	return HistogramValue{}, false
}

// Empty reports whether the snapshot holds no groups.
func (s Snapshot) Empty() bool { return len(s.Groups) == 0 }

// Flatten returns the snapshot as dotted-key scalars
// ("cache.hn0.hits" → 12345; histograms contribute .count/.sum/.max),
// the form the sppd job results and /metrics endpoint emit.
func (s Snapshot) Flatten() map[string]int64 {
	out := make(map[string]int64)
	for _, g := range s.Groups {
		for _, c := range g.Counters {
			out[g.Name+"."+c.Name] = c.Value
		}
		for _, h := range g.Histograms {
			out[g.Name+"."+h.Name+".count"] = h.Count
			out[g.Name+"."+h.Name+".sum"] = h.Sum
			out[g.Name+"."+h.Name+".max"] = h.Max
		}
	}
	return out
}

// Render draws the snapshot as the per-component breakdown table that
// `sppbench -counters` appends to each experiment. Deterministic: equal
// snapshots produce equal bytes.
func (s Snapshot) Render(title string) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	if s.Empty() {
		sb.WriteString("(no counters recorded)\n")
		return sb.String()
	}
	const format = "  %-16s %-24s %s\n"
	fmt.Fprintf(&sb, format, "component", "counter", "value")
	fmt.Fprintf(&sb, format, strings.Repeat("-", 16), strings.Repeat("-", 24), strings.Repeat("-", 12))
	for _, g := range s.Groups {
		for _, c := range g.Counters {
			fmt.Fprintf(&sb, format, g.Name, c.Name, fmt.Sprintf("%d", c.Value))
		}
		for _, h := range g.Histograms {
			fmt.Fprintf(&sb, format, g.Name, h.Name,
				fmt.Sprintf("n=%d sum=%d max=%d mean=%.2f", h.Count, h.Sum, h.Max, h.Mean()))
		}
	}
	return sb.String()
}
