//simlint:allow-file determinism merging is commutative and Snapshot sorts, so map iteration order cannot reach any output

package counters

import (
	"sync"
	"sync/atomic"
)

// Collector is a mutex-guarded aggregation sink: many machines (running
// concurrently on host worker goroutines) publish their per-machine
// Registry deltas into it, and the merged totals are snapshotted for
// rendering or export. Merging is commutative (counts and histogram
// moments add; max takes the larger), so the merged snapshot is
// byte-identical regardless of host scheduling — the property the
// counter determinism test enforces across -par settings.
type Collector struct {
	mu     sync.Mutex
	groups map[string]*collGroup
}

type collGroup struct {
	counters map[string]int64
	hists    map[string]HistogramValue
}

// NewCollector returns an empty sink.
func NewCollector() *Collector {
	return &Collector{groups: make(map[string]*collGroup)}
}

// merge folds one group's delta into the collector. Caller holds c.mu.
func (c *Collector) merge(group string, counters map[string]int64, hists map[string]HistogramValue) {
	g, ok := c.groups[group]
	if !ok {
		g = &collGroup{counters: make(map[string]int64), hists: make(map[string]HistogramValue)}
		c.groups[group] = g
	}
	for name, v := range counters {
		g.counters[name] += v
	}
	for name, hv := range hists {
		cur := g.hists[name]
		cur.merge(hv)
		g.hists[name] = cur
	}
}

// Merge folds a previously taken Snapshot into the collector — the
// restore half of checkpointing: a resumed run seeds its collector with
// the checkpoint's counter snapshot, and because merging is commutative
// the final totals equal an uninterrupted run's exactly.
func (c *Collector) Merge(s Snapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, gs := range s.Groups {
		var counters map[string]int64
		if len(gs.Counters) > 0 {
			counters = make(map[string]int64, len(gs.Counters))
			for _, cv := range gs.Counters {
				counters[cv.Name] = cv.Value
			}
		}
		var hists map[string]HistogramValue
		if len(gs.Histograms) > 0 {
			hists = make(map[string]HistogramValue, len(gs.Histograms))
			for _, hv := range gs.Histograms {
				hists[hv.Name] = hv
			}
		}
		c.merge(gs.Name, counters, hists)
	}
}

// Snapshot copies the merged totals, deterministically sorted.
func (c *Collector) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s Snapshot
	for name, g := range c.groups {
		gs := GroupSnapshot{Name: name}
		for cn, v := range g.counters {
			gs.Counters = append(gs.Counters, CounterValue{Name: cn, Value: v})
		}
		for hn, hv := range g.hists {
			hv.Name = hn
			gs.Histograms = append(gs.Histograms, hv)
		}
		s.Groups = append(s.Groups, gs)
	}
	s.sort()
	return s
}

// The process-wide sink list. Attach/Detach are rare (per experiment or
// per sppd job); Active is the hot check read by machine construction,
// hence the atomic.
var (
	sinksMu sync.Mutex
	sinks   []*Collector
	nsinks  atomic.Int32
)

// Active reports whether any Collector is attached. machine.New consults
// it to decide whether a new machine should carry a Registry at all, so
// the default (no sinks) build path stays counter-free.
func Active() bool { return nsinks.Load() > 0 }

// Attach registers c to receive every subsequent Publish.
func Attach(c *Collector) {
	sinksMu.Lock()
	defer sinksMu.Unlock()
	sinks = append(sinks, c)
	nsinks.Store(int32(len(sinks)))
}

// Detach removes c from the sink list. Publishes after Detach no longer
// reach c; its accumulated totals remain readable.
func Detach(c *Collector) {
	sinksMu.Lock()
	defer sinksMu.Unlock()
	for i, s := range sinks {
		if s == c {
			sinks = append(sinks[:i], sinks[i+1:]...)
			break
		}
	}
	nsinks.Store(int32(len(sinks)))
}

// Publish folds the registry's not-yet-published deltas into every
// attached Collector. Each counter remembers what it has published, so
// repeated Publish calls (a machine Run multiple times) never
// double-count. Nil-safe and cheap with no sinks attached.
func Publish(r *Registry) {
	if r == nil || !Active() {
		return
	}
	sinksMu.Lock()
	defer sinksMu.Unlock()
	if len(sinks) == 0 {
		return
	}
	for name, g := range r.groups {
		var dc map[string]int64
		for cn, c := range g.counters {
			if d := c.v - c.flushed; d != 0 {
				if dc == nil {
					dc = make(map[string]int64)
				}
				dc[cn] = d
				c.flushed = c.v
			}
		}
		var dh map[string]HistogramValue
		for hn, h := range g.hists {
			d := HistogramValue{
				Count: h.cur.Count - h.flushed.Count,
				Sum:   h.cur.Sum - h.flushed.Sum,
				Max:   h.cur.Max, // max is monotonic; merge takes the larger
			}
			for i := range d.Buckets {
				d.Buckets[i] = h.cur.Buckets[i] - h.flushed.Buckets[i]
			}
			if d.Count != 0 {
				if dh == nil {
					dh = make(map[string]HistogramValue)
				}
				dh[hn] = d
				h.flushed = h.cur
			}
		}
		if dc == nil && dh == nil {
			continue
		}
		for _, sink := range sinks {
			sink.mu.Lock()
			sink.merge(name, dc, dh)
			sink.mu.Unlock()
		}
	}
}
