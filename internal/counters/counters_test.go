package counters

import (
	"encoding/json"
	"testing"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter Value = %d, want 0", c.Value())
	}
	var h *Histogram
	h.Observe(3)
	if v := h.Value(); v.Count != 0 || v.Sum != 0 {
		t.Fatalf("nil histogram Value = %+v, want zero", v)
	}
	var g *Group
	if g.Counter("x") != nil || g.Histogram("y") != nil || g.Name() != "" {
		t.Fatal("nil group must hand out nil handles")
	}
	var r *Registry
	if r.Group("z") != nil {
		t.Fatal("nil registry must hand out a nil group")
	}
	if !r.Snapshot().Empty() {
		t.Fatal("nil registry snapshot must be empty")
	}
}

// TestDisabledPathZeroAllocs is the acceptance guard: counting through
// nil handles — the state of every component when no collector is
// attached — must allocate nothing.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var c *Counter
	var h *Histogram
	var g *Group
	var r *Registry
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(7)
		h.Observe(3)
		_ = g.Counter("x")
		_ = r.Group("g")
	})
	if allocs != 0 {
		t.Fatalf("disabled counter path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestEnabledPathZeroAllocsSteadyState(t *testing.T) {
	r := NewRegistry()
	c := r.Group("g").Counter("x")
	h := r.Group("g").Histogram("y")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(5)
	})
	if allocs != 0 {
		t.Fatalf("enabled steady-state path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestCounterAndHistogram(t *testing.T) {
	r := NewRegistry()
	g := r.Group("cache.hn0")
	c := g.Counter("hits")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	if g.Counter("hits") != c {
		t.Fatal("same name must return the same handle")
	}
	h := g.Histogram("fanout")
	for _, v := range []int64{0, 1, 7, 7, 200} {
		h.Observe(v)
	}
	hv := h.Value()
	if hv.Count != 5 || hv.Sum != 215 || hv.Max != 200 {
		t.Fatalf("histogram = %+v", hv)
	}
	if hv.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("200 must land in the overflow bucket: %v", hv.Buckets)
	}
	if hv.Mean() != 43 {
		t.Fatalf("mean = %v, want 43", hv.Mean())
	}
}

func TestBucketFor(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 128: 7, 129: 8, 1 << 40: 8}
	for v, want := range cases {
		if got := bucketFor(v); got != want {
			t.Errorf("bucketFor(%d) = %d, want %d", v, got, want)
		}
	}
	if BucketLabel(0) != "<=1" || BucketLabel(NumBuckets-1) != ">128" {
		t.Fatalf("labels: %q %q", BucketLabel(0), BucketLabel(NumBuckets-1))
	}
}

func TestSnapshotDeterministicAndQueryable(t *testing.T) {
	r := NewRegistry()
	r.Group("zeta").Counter("b").Add(2)
	r.Group("zeta").Counter("a").Add(1)
	r.Group("alpha.hn1").Counter("x").Add(3)
	r.Group("alpha.hn0").Counter("x").Add(4)
	r.Group("alpha.hn0").Histogram("h").Observe(6)
	s := r.Snapshot()
	if s.Groups[0].Name != "alpha.hn0" || s.Groups[2].Name != "zeta" {
		t.Fatalf("groups not sorted: %+v", s.Groups)
	}
	if s.Groups[2].Counters[0].Name != "a" {
		t.Fatalf("counters not sorted: %+v", s.Groups[2].Counters)
	}
	if s.Counter("zeta", "b") != 2 || s.Counter("missing", "b") != 0 {
		t.Fatal("Counter lookup wrong")
	}
	if s.GroupTotal("alpha", "x") != 7 {
		t.Fatalf("GroupTotal = %d, want 7", s.GroupTotal("alpha", "x"))
	}
	if hv, ok := s.Histogram("alpha.hn0", "h"); !ok || hv.Sum != 6 {
		t.Fatalf("Histogram lookup: %v %v", hv, ok)
	}
	flat := s.Flatten()
	if flat["alpha.hn0.x"] != 4 || flat["alpha.hn0.h.sum"] != 6 {
		t.Fatalf("Flatten: %v", flat)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot must be JSON-serializable: %v", err)
	}
	// Equal states must render equal bytes.
	if a, b := s.Render("t"), r.Snapshot().Render("t"); a != b {
		t.Fatalf("render not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestRenderEmpty(t *testing.T) {
	s := Snapshot{}
	out := s.Render("title")
	if out != "title\n(no counters recorded)\n" {
		t.Fatalf("empty render = %q", out)
	}
}

func TestPublishDeltaSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Group("g").Counter("x")
	h := r.Group("g").Histogram("hh")
	sink := NewCollector()
	Attach(sink)
	defer Detach(sink)

	c.Add(5)
	h.Observe(2)
	Publish(r)
	c.Add(3)
	Publish(r)
	Publish(r) // nothing new: must not double-count

	s := sink.Snapshot()
	if got := s.Counter("g", "x"); got != 8 {
		t.Fatalf("collector total = %d, want 8 (delta publishing broken)", got)
	}
	if hv, _ := s.Histogram("g", "hh"); hv.Count != 1 || hv.Sum != 2 {
		t.Fatalf("histogram delta: %+v", hv)
	}
}

func TestAttachDetachActive(t *testing.T) {
	if Active() {
		t.Fatal("no sinks expected at test start")
	}
	a, b := NewCollector(), NewCollector()
	Attach(a)
	Attach(b)
	if !Active() {
		t.Fatal("Active must be true with sinks attached")
	}
	r := NewRegistry()
	r.Group("g").Counter("x").Inc()
	Publish(r)
	Detach(a)
	r.Group("g").Counter("x").Inc()
	Publish(r)
	Detach(b)
	if Active() {
		t.Fatal("Active must be false after detaching everything")
	}
	if got := a.Snapshot().Counter("g", "x"); got != 1 {
		t.Fatalf("detached sink saw %d, want 1", got)
	}
	if got := b.Snapshot().Counter("g", "x"); got != 2 {
		t.Fatalf("still-attached sink saw %d, want 2", got)
	}
}

func TestCollectorMergeCommutes(t *testing.T) {
	build := func(vals []int64) Snapshot {
		sink := NewCollector()
		Attach(sink)
		for _, v := range vals {
			r := NewRegistry()
			r.Group("g").Counter("x").Add(v)
			r.Group("g").Histogram("h").Observe(v)
			Publish(r)
		}
		Detach(sink)
		return sink.Snapshot()
	}
	a := build([]int64{1, 2, 3}).Render("t")
	b := build([]int64{3, 1, 2}).Render("t")
	if a != b {
		t.Fatalf("merge order changed the snapshot:\n%s\nvs\n%s", a, b)
	}
}
