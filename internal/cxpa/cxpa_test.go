package cxpa

import (
	"strings"
	"testing"

	"spp1000/internal/machine"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
)

func TestSnapshotBreakdown(t *testing.T) {
	m, err := machine.New(machine.Config{Hypernodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	shared := m.Alloc("data", topology.NearShared, 0, 0)
	bar := threads.NewBarrier(m, 4, 0)
	_, ths, err := threads.RunTeamThreads(m, 4, threads.HighLocality, func(th *machine.Thread, tid int) {
		th.ComputeCycles(int64(1000 * (tid + 1))) // deliberately imbalanced
		th.Read(shared, topology.Addr(tid*1024))
		bar.Wait(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	profiles := Snapshot(ths)
	if len(profiles) != 4 {
		t.Fatalf("profiles = %d, want 4", len(profiles))
	}
	for i, p := range profiles {
		if p.Busy < 1000 {
			t.Errorf("thread %d busy = %v, want ≥1000 cycles", i, p.Busy)
		}
		if p.MemStall <= 0 {
			t.Errorf("thread %d has no memory stall despite a cold read", i)
		}
		if p.Total != p.Busy+p.MemStall+p.SyncWait {
			t.Errorf("thread %d total inconsistent", i)
		}
	}
	// The first-arriving (least busy) thread waits longest at the barrier.
	if profiles[0].SyncWait <= profiles[3].SyncWait {
		t.Errorf("thread 0 (early) should out-wait thread 3 (late): %v vs %v",
			profiles[0].SyncWait, profiles[3].SyncWait)
	}
}

func TestImbalance(t *testing.T) {
	if got := Imbalance(nil); got != 1 {
		t.Fatalf("empty imbalance = %v", got)
	}
	even := []ThreadProfile{{Busy: 100}, {Busy: 100}}
	if got := Imbalance(even); got != 1 {
		t.Fatalf("balanced = %v, want 1", got)
	}
	skew := []ThreadProfile{{Busy: 100}, {Busy: 300}}
	if got := Imbalance(skew); got != 1.5 {
		t.Fatalf("skewed = %v, want 1.5 (300/200)", got)
	}
	zero := []ThreadProfile{{Busy: 0}, {Busy: 0}}
	if got := Imbalance(zero); got != 1 {
		t.Fatalf("zero busy = %v, want 1", got)
	}
}

func TestRenderContainsCounters(t *testing.T) {
	m, _ := machine.New(machine.Config{Hypernodes: 1})
	shared := m.Alloc("x", topology.NearShared, 0, 0)
	_, ths, err := threads.RunTeamThreads(m, 2, threads.HighLocality, func(th *machine.Thread, tid int) {
		th.Read(shared, 0)
		th.ComputeCycles(500)
	})
	if err != nil {
		t.Fatal(err)
	}
	out := Render("profile", m, Snapshot(ths))
	for _, want := range []string{"profile", "busy", "mem stall", "sync wait", "machine counters", "load imbalance"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
