// Package cxpa renders CXpa-style execution profiles from the
// per-thread instrumentation the simulator keeps. The paper (§6)
// credits the Convex CXpa profiler and the machine's hardware event
// counters — cache miss enumeration and timing — for making its
// optimization work possible: "If vendors are going to insist on
// gambling system performance on latency avoidance through caches, then
// they should make available the means to observe the consequences of
// cache operation." This package is that observability layer for the
// simulated machine.
package cxpa

import (
	"fmt"
	"sort"

	"spp1000/internal/machine"
	"spp1000/internal/sim"
	"spp1000/internal/stats"
)

// ThreadProfile is the execution-time breakdown of one thread.
type ThreadProfile struct {
	Name     string
	CPU      string
	Busy     sim.Cycles
	MemStall sim.Cycles
	SyncWait sim.Cycles
	Total    sim.Cycles
}

// Snapshot captures the profile of a set of threads at the current
// virtual time (typically after the team joined).
func Snapshot(threads []*machine.Thread) []ThreadProfile {
	out := make([]ThreadProfile, 0, len(threads))
	for _, th := range threads {
		out = append(out, ThreadProfile{
			Name:     th.String(),
			CPU:      th.CPU.String(),
			Busy:     th.Busy,
			MemStall: th.MemStall,
			SyncWait: th.SyncWait,
			Total:    th.Busy + th.MemStall + th.SyncWait,
		})
	}
	return out
}

// Imbalance reports the coarse-grained load imbalance the paper says
// CXpa exposes: max thread busy time over mean busy time (1.0 =
// perfectly balanced).
func Imbalance(profiles []ThreadProfile) float64 {
	if len(profiles) == 0 {
		return 1
	}
	var sum, max float64
	for _, p := range profiles {
		b := float64(p.Busy)
		sum += b
		if b > max {
			max = b
		}
	}
	mean := sum / float64(len(profiles))
	if mean == 0 {
		return 1
	}
	return max / mean
}

// Render formats the profile as an aligned table plus machine counters.
func Render(title string, m *machine.Machine, profiles []ThreadProfile) string {
	tb := stats.NewTable(title, "thread", "busy", "mem stall", "sync wait", "busy %")
	sorted := append([]ThreadProfile(nil), profiles...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, p := range sorted {
		pct := 0.0
		if p.Total > 0 {
			pct = 100 * float64(p.Busy) / float64(p.Total)
		}
		tb.AddRow(p.Name, p.Busy.String(), p.MemStall.String(), p.SyncWait.String(), pct)
	}
	out := tb.Render()
	c := m.Mem.TotalCounters()
	out += fmt.Sprintf(
		"machine counters: %d accesses, %d hits, misses %d local / %d hypernode / %d global, %d invalidations\n"+
			"load imbalance (max/mean busy): %.3f\n",
		c.Accesses, c.Hits, c.LocalMisses, c.HypernodeMisses, c.GlobalMisses,
		c.InvalsReceived, Imbalance(profiles))
	return out
}
