package cache

import (
	"testing"
	"testing/quick"

	"spp1000/internal/topology"
)

func key(space uint32, line uint64) topology.LineKey {
	return topology.LineKey{Space: topology.Space(space), Line: line}
}

func TestMissThenHit(t *testing.T) {
	c := New()
	if r := c.Access(key(1, 10), false); r.Hit {
		t.Fatal("first access should miss")
	}
	if r := c.Access(key(1, 10), false); !r.Hit {
		t.Fatal("second access should hit")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestWriteMarksDirty(t *testing.T) {
	c := New()
	c.Access(key(1, 10), true)
	if !c.Dirty(key(1, 10)) {
		t.Fatal("written line should be dirty")
	}
	c.Clean(key(1, 10))
	if c.Dirty(key(1, 10)) {
		t.Fatal("cleaned line should not be dirty")
	}
}

func TestConflictEvictionWithWriteback(t *testing.T) {
	c := NewWithLines(4)
	c.Access(key(1, 0), true)       // dirty
	r := c.Access(key(1, 4), false) // same slot (4 % 4 == 0)
	if r.Hit {
		t.Fatal("conflicting line should miss")
	}
	if !r.HadEviction || !r.WritebackNeeded {
		t.Fatalf("expected dirty eviction, got %+v", r)
	}
	if r.Evicted != key(1, 0) {
		t.Fatalf("evicted %+v, want line 0", r.Evicted)
	}
	if c.Contains(key(1, 0)) {
		t.Fatal("evicted line should be gone")
	}
}

func TestDistinctSpacesDoNotAlias(t *testing.T) {
	c := New()
	c.Access(key(1, 10), false)
	if c.Contains(key(2, 10)) {
		t.Fatal("same line in a different space must be distinct")
	}
}

func TestInvalidate(t *testing.T) {
	c := New()
	c.Access(key(1, 10), true)
	present, dirty := c.Invalidate(key(1, 10))
	if !present || !dirty {
		t.Fatalf("invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Contains(key(1, 10)) {
		t.Fatal("line should be gone after invalidate")
	}
	present, _ = c.Invalidate(key(1, 10))
	if present {
		t.Fatal("second invalidate should find nothing")
	}
	if c.Stats.Invalidations != 1 {
		t.Fatalf("invalidation count = %d, want 1", c.Stats.Invalidations)
	}
}

func TestFlushCountsDirtyWritebacks(t *testing.T) {
	c := NewWithLines(16)
	c.Access(key(1, 0), true)
	c.Access(key(1, 1), false)
	c.Access(key(1, 2), true)
	c.Flush()
	if c.Stats.Writebacks != 2 {
		t.Fatalf("flush wrote back %d lines, want 2", c.Stats.Writebacks)
	}
	if c.Contains(key(1, 1)) {
		t.Fatal("flush should empty the cache")
	}
}

func TestGeometry(t *testing.T) {
	c := New()
	if c.Lines() != topology.CacheLines {
		t.Fatalf("default cache has %d lines, want %d", c.Lines(), topology.CacheLines)
	}
	if topology.CacheLines != 32768 {
		t.Fatalf("1 MB / 32 B = 32768 lines, constant says %d", topology.CacheLines)
	}
	if NewWithLines(0).Lines() != 1 {
		t.Fatal("degenerate geometry should clamp to one line")
	}
}

// Property: after Access(k), Contains(k) is true and a subsequent access
// hits; invalidating makes it miss again.
func TestAccessInvalidateProperty(t *testing.T) {
	prop := func(space uint16, line uint32, write bool) bool {
		c := NewWithLines(64)
		k := key(uint32(space), uint64(line))
		c.Access(k, write)
		if !c.Contains(k) {
			return false
		}
		if r := c.Access(k, false); !r.Hit {
			return false
		}
		if c.Dirty(k) != write {
			return false
		}
		c.Invalidate(k)
		if c.Contains(k) {
			return false
		}
		return !c.Access(k, false).Hit
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: hit+miss counts always equal total accesses.
func TestStatsBalanceProperty(t *testing.T) {
	prop := func(lines []uint8) bool {
		c := NewWithLines(8)
		for _, l := range lines {
			c.Access(key(0, uint64(l)), l%2 == 0)
		}
		return c.Stats.Hits+c.Stats.Misses == int64(len(lines))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
