// Package cache models the external direct-mapped data cache of one
// HP PA-RISC 7100: 1 MB, 32-byte lines (paper §2.2). Only presence and
// dirtiness are tracked — data values live in the application, which is
// what makes whole-program simulation tractable.
package cache

import (
	"spp1000/internal/counters"
	"spp1000/internal/topology"
)

// state of one cache slot.
type slot struct {
	valid bool
	dirty bool
	key   topology.LineKey
}

// Stats counts cache events for the CXpa-style instrumentation.
type Stats struct {
	Hits          int64
	Misses        int64
	Evictions     int64
	Writebacks    int64
	Invalidations int64
}

// hooks are the optional PMU-style counter handles. All nil (free
// no-ops) until AttachCounters; they mirror the Stats fields so either
// instrumentation view can be read.
type hooks struct {
	hits          *counters.Counter
	misses        *counters.Counter
	evictions     *counters.Counter
	writebacks    *counters.Counter
	invalidations *counters.Counter
}

// Cache is one processor's data cache.
type Cache struct {
	slots []slot
	Stats Stats
	ctr   hooks
}

// AttachCounters mirrors this cache's event stream into the group's
// counters (hits, misses, evictions, writebacks, invalidations).
// Several caches may share one group — their counts aggregate. A nil
// group detaches (handles become free no-ops again).
func (c *Cache) AttachCounters(g *counters.Group) {
	c.ctr = hooks{
		hits:          g.Counter("hits"),
		misses:        g.Counter("misses"),
		evictions:     g.Counter("evictions"),
		writebacks:    g.Counter("writebacks"),
		invalidations: g.Counter("invalidations"),
	}
}

// New returns an empty cache with the architectural geometry.
func New() *Cache {
	return &Cache{slots: make([]slot, topology.CacheLines)}
}

// NewWithLines returns an empty cache with a custom number of line slots
// (for tests and for scaled-down capacity experiments).
func NewWithLines(lines int) *Cache {
	if lines <= 0 {
		lines = 1
	}
	return &Cache{slots: make([]slot, lines)}
}

func (c *Cache) index(key topology.LineKey) int {
	// Direct mapping: line index modulo the slot count. Distinct spaces
	// are offset so that two objects do not systematically collide.
	return int((key.Line + uint64(key.Space)*7919) % uint64(len(c.slots)))
}

// Result describes the outcome of a lookup.
type Result struct {
	Hit bool
	// WritebackNeeded is set when the access evicted a dirty line.
	WritebackNeeded bool
	// Evicted is the line displaced by a miss fill, if any.
	Evicted     topology.LineKey
	HadEviction bool
}

// Access touches the line, filling it on a miss. write marks it dirty.
func (c *Cache) Access(key topology.LineKey, write bool) Result {
	s := &c.slots[c.index(key)]
	if s.valid && s.key == key {
		c.Stats.Hits++
		c.ctr.hits.Inc()
		if write {
			s.dirty = true
		}
		return Result{Hit: true}
	}
	c.Stats.Misses++
	c.ctr.misses.Inc()
	res := Result{}
	if s.valid {
		c.Stats.Evictions++
		c.ctr.evictions.Inc()
		res.HadEviction = true
		res.Evicted = s.key
		if s.dirty {
			c.Stats.Writebacks++
			c.ctr.writebacks.Inc()
			res.WritebackNeeded = true
		}
	}
	s.valid = true
	s.dirty = write
	s.key = key
	return res
}

// Contains reports whether the line is currently cached.
func (c *Cache) Contains(key topology.LineKey) bool {
	s := &c.slots[c.index(key)]
	return s.valid && s.key == key
}

// Dirty reports whether the line is cached dirty.
func (c *Cache) Dirty(key topology.LineKey) bool {
	s := &c.slots[c.index(key)]
	return s.valid && s.key == key && s.dirty
}

// Invalidate drops the line (a coherence action from the directory).
// It reports whether a copy was present and whether it was dirty.
func (c *Cache) Invalidate(key topology.LineKey) (present, dirty bool) {
	s := &c.slots[c.index(key)]
	if s.valid && s.key == key {
		c.Stats.Invalidations++
		c.ctr.invalidations.Inc()
		present, dirty = true, s.dirty
		s.valid = false
		s.dirty = false
	}
	return present, dirty
}

// Clean marks a cached line clean (after a writeback / downgrade).
func (c *Cache) Clean(key topology.LineKey) {
	s := &c.slots[c.index(key)]
	if s.valid && s.key == key {
		s.dirty = false
	}
}

// Flush empties the cache, counting writebacks of dirty lines.
func (c *Cache) Flush() {
	for i := range c.slots {
		if c.slots[i].valid && c.slots[i].dirty {
			c.Stats.Writebacks++
			c.ctr.writebacks.Inc()
		}
		c.slots[i] = slot{}
	}
}

// Lines reports the slot count.
func (c *Cache) Lines() int { return len(c.slots) }
