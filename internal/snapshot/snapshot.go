// Package snapshot is the versioned, CRC32-framed, content-addressed
// encoding of in-progress simulator state: the checkpoint/restore layer
// that makes long runs killable and resumable with byte-exact results.
//
// The package has two levels. The Archive is the generic container — a
// named-section framing with a format version, an integrity CRC over
// the whole body, and a SHA-256 content address, mirroring the
// store's entry framing but for multi-part state. The Checkpoint is
// the experiment-suite payload carried in an Archive: the completed
// prefix of a run (rendered outputs, sim-cycle/event totals, the merged
// PMU counter snapshot) plus the representative-region signature
// scaffold (docs/SAMPLING.md). Kernel- and coordinator-level state
// records are written by sim.Kernel.Snapshot and
// parsim.Coordinator.Snapshot and ride inside Archive sections.
//
// Every encoding here is deterministic: equal state always encodes to
// equal bytes, so the content address is a sound identity (the same
// property experiments.Spec.Key gives specs). Checkpoints are persisted
// through the internal/store entry framing — atomic temp-plus-rename
// writes, corrupt-detect-delete reads — so a torn checkpoint can never
// be resumed from (see WriteFile/ReadFile).
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"
)

// Version is the archive format generation. Bump it whenever the
// framing or any section's meaning changes, so stale checkpoints read
// as unreadable (and are discarded) instead of misparsing.
const Version = 1

// archiveMagic is the first line of every encoded archive.
const archiveMagic = "spp-snapshot-v1"

// Section is one named byte payload inside an Archive.
type Section struct {
	// Name identifies the payload (lowercase, no spaces).
	Name string
	// Data is the raw payload bytes.
	Data []byte
}

// Archive is an ordered set of named sections with a version header,
// a CRC32 integrity frame, and a SHA-256 content address. Build one
// with New+Add, serialize with Encode, and reload with Decode.
type Archive struct {
	sections []Section
}

// New returns an empty archive.
func New() *Archive { return &Archive{} }

// validSectionName accepts short lowercase identifiers (letters,
// digits, '.', '-', '_'); anything else would collide with the framing.
func validSectionName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, c := range name {
		ok := (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '_'
		if !ok {
			return false
		}
	}
	return true
}

// Add appends a section. Names must be valid and unique within the
// archive — the encoding is order-preserving, so callers fix the
// section order and with it the content address.
func (a *Archive) Add(name string, data []byte) error {
	if !validSectionName(name) {
		return fmt.Errorf("snapshot: invalid section name %q", name)
	}
	for _, s := range a.sections {
		if s.Name == name {
			return fmt.Errorf("snapshot: duplicate section %q", name)
		}
	}
	a.sections = append(a.sections, Section{Name: name, Data: append([]byte(nil), data...)})
	return nil
}

// Section returns the named payload and whether it exists.
func (a *Archive) Section(name string) ([]byte, bool) {
	for _, s := range a.sections {
		if s.Name == name {
			return s.Data, true
		}
	}
	return nil, false
}

// Sections reports the section count.
func (a *Archive) Sections() int { return len(a.sections) }

// Encode renders the archive:
//
//	spp-snapshot-v1
//	section <name> <len>
//	<len payload bytes>
//	...
//	end <count> <crc32-hex>
//
// The CRC covers every byte above the end line, so any torn or
// bit-flipped section fails Decode. Deterministic: equal sections in
// equal order encode to equal bytes.
func (a *Archive) Encode() []byte {
	var b bytes.Buffer
	b.WriteString(archiveMagic)
	b.WriteByte('\n')
	for _, s := range a.sections {
		fmt.Fprintf(&b, "section %s %d\n", s.Name, len(s.Data))
		b.Write(s.Data)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "end %d %08x\n", len(a.sections), crc32.ChecksumIEEE(b.Bytes()))
	return b.Bytes()
}

// ID is the archive's content address: the hex SHA-256 of its encoded
// bytes. Equal state ⇒ equal bytes ⇒ equal ID, so checkpoints can be
// stored and deduplicated content-addressed exactly like results.
func (a *Archive) ID() string {
	sum := sha256.Sum256(a.Encode())
	return hex.EncodeToString(sum[:])
}

// Decode validates an encoded archive — magic line, section framing,
// declared lengths, section count, CRC32 — and reconstructs it. Any
// violation is an error; partially valid archives are never returned.
func Decode(data []byte) (*Archive, error) {
	rest := data
	line, rest, err := cutLine(rest)
	if err != nil || line != archiveMagic {
		return nil, fmt.Errorf("snapshot: bad archive header (want %q)", archiveMagic)
	}
	a := New()
	for {
		var head string
		head, rest, err = cutLine(rest)
		if err != nil {
			return nil, fmt.Errorf("snapshot: truncated archive")
		}
		if strings.HasPrefix(head, "end ") {
			fields := strings.Fields(head)
			if len(fields) != 3 {
				return nil, fmt.Errorf("snapshot: malformed end line %q", head)
			}
			count, cerr := strconv.Atoi(fields[1])
			if cerr != nil || count != len(a.sections) {
				return nil, fmt.Errorf("snapshot: section count mismatch (header %s, found %d)", fields[1], len(a.sections))
			}
			want, cerr := strconv.ParseUint(fields[2], 16, 32)
			if cerr != nil {
				return nil, fmt.Errorf("snapshot: malformed CRC %q", fields[2])
			}
			body := data[:len(data)-len(rest)-len(head)-1]
			if crc32.ChecksumIEEE(body) != uint32(want) {
				return nil, fmt.Errorf("snapshot: CRC mismatch: archive is torn or corrupted")
			}
			if len(bytes.TrimSpace(rest)) != 0 {
				return nil, fmt.Errorf("snapshot: trailing bytes after end line")
			}
			return a, nil
		}
		name, ok := strings.CutPrefix(head, "section ")
		if !ok {
			return nil, fmt.Errorf("snapshot: malformed section line %q", head)
		}
		nm, lenStr, ok := strings.Cut(name, " ")
		if !ok {
			return nil, fmt.Errorf("snapshot: malformed section line %q", head)
		}
		n, cerr := strconv.Atoi(lenStr)
		if cerr != nil || n < 0 || n+1 > len(rest) {
			return nil, fmt.Errorf("snapshot: section %q declares %s bytes but the archive is shorter", nm, lenStr)
		}
		payload := rest[:n]
		if rest[n] != '\n' {
			return nil, fmt.Errorf("snapshot: section %q payload not newline-terminated at its declared length", nm)
		}
		rest = rest[n+1:]
		if err := a.Add(nm, payload); err != nil {
			return nil, err
		}
	}
}

// cutLine splits data at the first newline, returning the line without
// it and the remainder.
func cutLine(data []byte) (string, []byte, error) {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return "", nil, fmt.Errorf("snapshot: missing newline")
	}
	return string(data[:i]), data[i+1:], nil
}
