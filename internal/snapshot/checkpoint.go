package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"spp1000/internal/counters"
	"spp1000/internal/store"
)

// Checkpoint is the resumable state of a partially completed experiment
// suite: the completed prefix of the run, exactly enough to finish the
// rest and end with output bytes and sim-* counter totals equal to an
// uninterrupted run. Experiments are the suite's checkpoint boundaries
// — each is one indivisible deterministic simulation, so there is never
// anything mid-flight to serialize, only completed results to carry.
type Checkpoint struct {
	// SpecKey is the content address (experiments.Spec.Key) of the full
	// suite this checkpoint belongs to. Restore must refuse any other
	// spec: a checkpoint resumed under a different configuration would
	// silently splice unrelated outputs together.
	SpecKey string
	// Names is the full experiment list of the suite, in run order.
	Names []string
	// Done holds the completed prefix: Done[i] is the rendered output of
	// Names[i]. len(Done) is the next checkpoint boundary.
	Done []ExperimentResult
	// SimCycles and SimEvents are the process-wide sim totals consumed
	// by the completed prefix (sampled as deltas around the runs), so a
	// resumed run reports exactly the totals an uninterrupted run would.
	SimCycles int64
	// SimEvents is the event-count counterpart of SimCycles.
	SimEvents int64
	// Counters is the merged PMU snapshot of the completed prefix; a
	// resumed run seeds its collector with it so final counter totals
	// are exactly equal to an uninterrupted run's.
	Counters counters.Snapshot
	// Regions is the representative-region signature scaffold: one
	// signature per completed experiment (see docs/SAMPLING.md).
	Regions []RegionSignature
}

// Section names of the checkpoint archive, in encode order.
const (
	sectionMeta     = "meta"
	sectionOutputs  = "outputs"
	sectionCounters = "counters"
	sectionRegions  = "regions"
)

// Encode renders the checkpoint as an Archive (versioned, CRC-framed,
// content-addressed). Deterministic: equal checkpoints encode to equal
// bytes.
func (c *Checkpoint) Encode() []byte {
	a := New()
	var meta bytes.Buffer
	fmt.Fprintf(&meta, "speckey=%s\n", c.SpecKey)
	fmt.Fprintf(&meta, "names=%s\n", strings.Join(c.Names, ","))
	fmt.Fprintf(&meta, "cycles=%d\n", c.SimCycles)
	fmt.Fprintf(&meta, "events=%d\n", c.SimEvents)
	fmt.Fprintf(&meta, "done=%d\n", len(c.Done))
	a.Add(sectionMeta, meta.Bytes())

	var outs bytes.Buffer
	for _, r := range c.Done {
		fmt.Fprintf(&outs, "exp %s %d\n%s\n", r.Name, len(r.Output), r.Output)
	}
	a.Add(sectionOutputs, outs.Bytes())

	// counters.Snapshot and []RegionSignature are sorted slices, so
	// encoding/json renders them deterministically.
	cj, _ := json.Marshal(c.Counters)
	a.Add(sectionCounters, cj)
	rj, _ := json.Marshal(c.Regions)
	a.Add(sectionRegions, rj)
	return a.Encode()
}

// ID is the checkpoint's content address: the hex SHA-256 of its
// encoded archive bytes.
func (c *Checkpoint) ID() string {
	sum := sha256.Sum256(c.Encode())
	return hex.EncodeToString(sum[:])
}

// ExperimentResult is one completed experiment's rendered output.
type ExperimentResult struct {
	// Name is the experiment id (from experiments.Names/Extra).
	Name string `json:"name"`
	// Output is the experiment's rendered text, byte-exact.
	Output string `json:"output"`
}

// DecodeCheckpoint validates and reconstructs an encoded checkpoint.
// Every framing violation — archive CRC, missing sections, malformed
// meta, output-length mismatches — is an error; a checkpoint that does
// not round-trip exactly must never be resumed from.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	a, err := Decode(data)
	if err != nil {
		return nil, err
	}
	meta, ok := a.Section(sectionMeta)
	if !ok {
		return nil, fmt.Errorf("snapshot: checkpoint missing %s section", sectionMeta)
	}
	c := &Checkpoint{}
	doneCount := -1
	for _, line := range strings.Split(strings.TrimRight(string(meta), "\n"), "\n") {
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("snapshot: malformed meta line %q", line)
		}
		switch key {
		case "speckey":
			c.SpecKey = val
		case "names":
			if val != "" {
				c.Names = strings.Split(val, ",")
			}
		case "cycles":
			c.SimCycles, err = strconv.ParseInt(val, 10, 64)
		case "events":
			c.SimEvents, err = strconv.ParseInt(val, 10, 64)
		case "done":
			doneCount, err = strconv.Atoi(val)
		default:
			// Unknown keys are an error: meta is versioned via the archive
			// magic, so within one version the vocabulary is closed.
			return nil, fmt.Errorf("snapshot: unknown meta key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("snapshot: malformed meta value %q: %v", line, err)
		}
	}
	outs, ok := a.Section(sectionOutputs)
	if !ok {
		return nil, fmt.Errorf("snapshot: checkpoint missing %s section", sectionOutputs)
	}
	rest := outs
	for len(rest) > 0 {
		head, after, err := cutLine(rest)
		if err != nil {
			return nil, fmt.Errorf("snapshot: truncated outputs section")
		}
		fields := strings.Fields(head)
		if len(fields) != 3 || fields[0] != "exp" {
			return nil, fmt.Errorf("snapshot: malformed output header %q", head)
		}
		n, cerr := strconv.Atoi(fields[2])
		if cerr != nil || n < 0 || n+1 > len(after) || after[n] != '\n' {
			return nil, fmt.Errorf("snapshot: output %q length %s does not match the payload", fields[1], fields[2])
		}
		c.Done = append(c.Done, ExperimentResult{Name: fields[1], Output: string(after[:n])})
		rest = after[n+1:]
	}
	if doneCount != len(c.Done) {
		return nil, fmt.Errorf("snapshot: meta declares %d completed experiments, outputs section holds %d", doneCount, len(c.Done))
	}
	if len(c.Done) > len(c.Names) {
		return nil, fmt.Errorf("snapshot: %d completed experiments exceed the %d-name suite", len(c.Done), len(c.Names))
	}
	for i, r := range c.Done {
		if r.Name != c.Names[i] {
			return nil, fmt.Errorf("snapshot: completed experiment %d is %q, suite order says %q", i, r.Name, c.Names[i])
		}
	}
	if cj, ok := a.Section(sectionCounters); ok && len(cj) > 0 {
		if err := json.Unmarshal(cj, &c.Counters); err != nil {
			return nil, fmt.Errorf("snapshot: bad counters section: %v", err)
		}
	}
	if rj, ok := a.Section(sectionRegions); ok && len(rj) > 0 {
		if err := json.Unmarshal(rj, &c.Regions); err != nil {
			return nil, fmt.Errorf("snapshot: bad regions section: %v", err)
		}
	}
	return c, nil
}

// ErrCorrupt reports a checkpoint file that failed frame validation and
// was deleted, so callers start fresh instead of resuming damaged state.
var ErrCorrupt = errors.New("snapshot: checkpoint file corrupt (deleted; start fresh)")

// WriteFile persists the checkpoint at path through the store entry
// framing: the encoded archive is wrapped in the CRC32 store frame,
// written to a temp file in the same directory, and published by one
// atomic rename — a crash mid-write leaves only an ignorable temp file,
// never a half-written checkpoint.
func WriteFile(path string, c *Checkpoint) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	f, err := os.CreateTemp(dir, ".tmp-ckpt-*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tmp := f.Name()
	_, err = f.Write(store.Encode(string(c.Encode())))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapshot: write %s: %w", path, err)
	}
	return nil
}

// ReadFile loads a checkpoint written by WriteFile. A missing file is
// (nil, os.ErrNotExist). A file that fails either frame — the store
// CRC wrapper or the archive's own validation — is deleted and reported
// as ErrCorrupt: torn checkpoints are recomputed from scratch, exactly
// like torn store entries.
func ReadFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, os.ErrNotExist
		}
		return nil, fmt.Errorf("snapshot: read %s: %w", path, err)
	}
	payload, ok := store.Decode(data)
	if !ok {
		os.Remove(path)
		return nil, ErrCorrupt
	}
	c, err := DecodeCheckpoint([]byte(payload))
	if err != nil {
		os.Remove(path)
		return nil, ErrCorrupt
	}
	return c, nil
}
