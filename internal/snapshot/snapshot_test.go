package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"spp1000/internal/counters"
)

func TestArchiveRoundTrip(t *testing.T) {
	a := New()
	if err := a.Add("meta", []byte("speckey=abc\n")); err != nil {
		t.Fatal(err)
	}
	if err := a.Add("outputs", []byte("payload with\nembedded newlines\nand no terminator")); err != nil {
		t.Fatal(err)
	}
	if err := a.Add("empty", nil); err != nil {
		t.Fatal(err)
	}
	enc := a.Encode()
	b, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if b.Sections() != 3 {
		t.Fatalf("sections = %d, want 3", b.Sections())
	}
	for _, name := range []string{"meta", "outputs", "empty"} {
		want, _ := a.Section(name)
		got, ok := b.Section(name)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("section %s: got %q want %q (ok=%v)", name, got, want, ok)
		}
	}
	if !bytes.Equal(b.Encode(), enc) {
		t.Fatal("re-encode is not byte-identical")
	}
	if a.ID() != b.ID() {
		t.Fatal("content address changed across a round trip")
	}
}

func TestArchiveAddRejects(t *testing.T) {
	a := New()
	for _, name := range []string{"", "Upper", "has space", "x\ny", strings.Repeat("a", 65)} {
		if err := a.Add(name, nil); err == nil {
			t.Fatalf("Add(%q) accepted an invalid name", name)
		}
	}
	if err := a.Add("dup", nil); err != nil {
		t.Fatal(err)
	}
	if err := a.Add("dup", nil); err == nil {
		t.Fatal("duplicate section accepted")
	}
}

func TestArchiveDecodeRejectsCorruption(t *testing.T) {
	a := New()
	a.Add("meta", []byte("hello world"))
	a.Add("data", bytes.Repeat([]byte{0xAB}, 64))
	enc := a.Encode()

	cases := map[string][]byte{
		"bad magic":      append([]byte("spp-snapshot-v9\n"), enc[len(archiveMagic)+1:]...),
		"truncated":      enc[:len(enc)/2],
		"no newline":     []byte(archiveMagic),
		"trailing bytes": append(append([]byte(nil), enc...), []byte("extra")...),
		"empty":          nil,
	}
	// A single flipped bit inside a section payload must fail the CRC.
	flipped := append([]byte(nil), enc...)
	flipped[bytes.Index(flipped, []byte("hello"))] ^= 0x01
	cases["bit flip"] = flipped
	// A section declaring more bytes than the archive holds.
	cases["overlong decl"] = []byte(archiveMagic + "\nsection meta 9999\nxx\nend 1 00000000\n")

	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Fatalf("%s: Decode accepted corrupt input", name)
		}
	}

	// Sanity: the untouched encoding still decodes.
	if _, err := Decode(enc); err != nil {
		t.Fatalf("pristine archive failed: %v", err)
	}
}

func testCheckpoint() *Checkpoint {
	reg := counters.NewRegistry()
	g := reg.Group("cpu0.pmu")
	g.Counter("cache_miss").Add(42)
	g.Counter("cycles").Add(1000)
	snap := reg.Snapshot()
	return &Checkpoint{
		SpecKey:   "abcdef0123456789",
		Names:     []string{"fig2", "tab1", "fig6"},
		Done:      []ExperimentResult{{Name: "fig2", Output: "line one\nline two\n"}, {Name: "tab1", Output: ""}},
		SimCycles: 123456,
		SimEvents: 789,
		Counters:  snap,
		Regions: []RegionSignature{
			Signature("fig2", 100000, 500, snap.Flatten()),
			Signature("tab1", 23456, 289, nil),
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := testCheckpoint()
	enc := c.Encode()
	if !bytes.Equal(enc, c.Encode()) {
		t.Fatal("Encode is not deterministic")
	}
	got, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, c)
	}
	if got.ID() != c.ID() {
		t.Fatal("ID changed across round trip")
	}
}

func TestCheckpointDecodeStrictness(t *testing.T) {
	base := testCheckpoint()

	// Done[i] out of suite order.
	swapped := testCheckpoint()
	swapped.Done[0], swapped.Done[1] = swapped.Done[1], swapped.Done[0]
	if _, err := DecodeCheckpoint(swapped.Encode()); err == nil {
		t.Fatal("out-of-order Done accepted")
	}

	// More completions than names.
	over := testCheckpoint()
	over.Names = over.Names[:1]
	if _, err := DecodeCheckpoint(over.Encode()); err == nil {
		t.Fatal("Done longer than Names accepted")
	}

	// An unknown meta key (a future field leaking into v1).
	a, err := Decode(base.Encode())
	if err != nil {
		t.Fatal(err)
	}
	meta, _ := a.Section(sectionMeta)
	b := New()
	b.Add(sectionMeta, append(append([]byte(nil), meta...), []byte("mystery=1\n")...))
	outs, _ := a.Section(sectionOutputs)
	b.Add(sectionOutputs, outs)
	if _, err := DecodeCheckpoint(b.Encode()); err == nil {
		t.Fatal("unknown meta key accepted")
	}

	// Missing meta section entirely.
	noMeta := New()
	noMeta.Add(sectionOutputs, outs)
	if _, err := DecodeCheckpoint(noMeta.Encode()); err == nil {
		t.Fatal("missing meta section accepted")
	}

	// An output whose declared length disagrees with the payload.
	tampered := New()
	tampered.Add(sectionMeta, meta)
	tampered.Add(sectionOutputs, []byte("exp fig2 999\nshort\n"))
	if _, err := DecodeCheckpoint(tampered.Encode()); err == nil {
		t.Fatal("output length mismatch accepted")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "run.ckpt")
	c := testCheckpoint()
	if err := WriteFile(path, c); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatal("file round trip diverged")
	}
	// No temp litter after a clean write.
	ents, _ := os.ReadDir(filepath.Dir(path))
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-ckpt-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	_, err := ReadFile(filepath.Join(t.TempDir(), "nope.ckpt"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want os.ErrNotExist", err)
	}
}

func TestReadFileCorruptDeletes(t *testing.T) {
	dir := t.TempDir()

	// Garbage that fails the store frame.
	p1 := filepath.Join(dir, "garbage.ckpt")
	os.WriteFile(p1, []byte("not a checkpoint"), 0o644)
	if _, err := ReadFile(p1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage: err = %v, want ErrCorrupt", err)
	}
	if _, err := os.Stat(p1); !os.IsNotExist(err) {
		t.Fatal("corrupt file was not deleted")
	}

	// A valid store frame wrapping a torn archive: write a real
	// checkpoint, then truncate it so both frames break.
	p2 := filepath.Join(dir, "torn.ckpt")
	if err := WriteFile(p2, testCheckpoint()); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(p2)
	os.WriteFile(p2, data[:len(data)-10], 0o644)
	if _, err := ReadFile(p2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn: err = %v, want ErrCorrupt", err)
	}
	if _, err := os.Stat(p2); !os.IsNotExist(err) {
		t.Fatal("torn file was not deleted")
	}
}

func TestSignatureDeterministic(t *testing.T) {
	flat := map[string]int64{"b.x": 2, "a.y": 1, "c.z": 3}
	s1 := Signature("fig2", 100, 10, flat)
	s2 := Signature("fig2", 100, 10, map[string]int64{"c.z": 3, "a.y": 1, "b.x": 2})
	if s1 != s2 {
		t.Fatalf("equal inputs, different signatures:\n%+v\n%+v", s1, s2)
	}
	if s1.Digest == Signature("fig2", 100, 10, map[string]int64{"a.y": 1}).Digest {
		t.Fatal("different counter vectors share a digest")
	}
	if s1.Digest == Signature("fig3", 100, 10, flat).Digest {
		t.Fatal("different names share a digest")
	}
	if len(s1.Digest) != 64 {
		t.Fatalf("digest %q is not hex sha-256", s1.Digest)
	}
}
