package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// RegionSignature characterizes one completed experiment as a point in
// counter space: its sim-cycle/event footprint plus a digest of the
// flattened PMU counters it retired. This is the scaffold for
// representative-region sampling (docs/SAMPLING.md): signatures that
// digest equal are behaviorally identical regions, so a sampler can run
// one representative and extrapolate the rest with a stated error
// bound. This PR only records signatures; no extrapolation happens yet.
type RegionSignature struct {
	// Name is the experiment the region covers.
	Name string `json:"name"`
	// Cycles is the sim-cycle footprint of the region.
	Cycles int64 `json:"cycles"`
	// Events is the sim-event footprint of the region.
	Events int64 `json:"events"`
	// Digest is the hex SHA-256 of the region's sorted flattened counter
	// vector (see Signature). Equal digests ⇒ equal counter behavior.
	Digest string `json:"digest"`
}

// Signature builds the region signature for one completed experiment
// from its sim footprint and flattened PMU counters. Deterministic: the
// counter vector is serialized in sorted key order before hashing.
func Signature(name string, cycles, events int64, flat map[string]int64) RegionSignature {
	keys := make([]string, 0, len(flat))
	//simlint:allow determinism keys are sorted below before they feed the digest
	for k := range flat {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "spp-region-v1 %s %d %d\n", name, cycles, events)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, flat[k])
	}
	sum := sha256.Sum256([]byte(b.String()))
	return RegionSignature{Name: name, Cycles: cycles, Events: events, Digest: hex.EncodeToString(sum[:])}
}
