// Package machine is the public façade of the SPP-1000 simulator: it
// assembles the event kernel, topology, and memory system into a Machine
// on which simulated threads execute. Programs obtain Threads bound to
// CPUs, touch memory through Read/Write (playing the full coherence
// machinery), and charge bulk numerical work through Compute. All times
// are virtual: cycles of the simulated 100 MHz clock.
package machine

import (
	"fmt"

	"spp1000/internal/counters"
	"spp1000/internal/memsys"
	"spp1000/internal/sim"
	"spp1000/internal/topology"
	"spp1000/internal/trace"
)

// Config selects a machine variant.
type Config struct {
	// Hypernodes is the number of hypernodes (1..16); 8 CPUs each.
	Hypernodes int
	// Params overrides the calibrated machine parameters (nil = default).
	Params *topology.Params
	// CacheLines scales down the per-CPU cache for fine-grained
	// experiments (0 = the architectural 32768 lines).
	CacheLines int
	// NodeIndex is the global hypernode number of this machine's first
	// hypernode. A monolithic machine leaves it 0; a partitioned cluster
	// (internal/parsim) builds one 1-hypernode machine per simulated
	// hypernode and sets NodeIndex so per-hypernode counter groups
	// (cache.hn<N>, directory.hn<N>, …) stay globally distinct when the
	// per-partition registries are merged into one snapshot.
	NodeIndex int
}

// Machine is one simulated SPP-1000.
type Machine struct {
	K    *sim.Kernel
	Topo topology.Topology
	P    topology.Params
	Mem  *memsys.System
	// Trace, when non-nil, records every thread's busy / memory /
	// synchronization intervals for timeline rendering.
	Trace *trace.Recorder
	// Counters, when non-nil, is the machine's PMU-style counter
	// registry, wired through every memory-system component and the
	// thread runtime. Nil (the default) costs one pointer check per
	// counted event. Enable with EnableCounters; machines built while a
	// counters.Collector is attached enable themselves.
	Counters *counters.Registry

	nodeIndex int // global hypernode number of hypernode 0 (Config.NodeIndex)
}

// New builds a machine.
func New(cfg Config) (*Machine, error) {
	topo, err := topology.New(cfg.Hypernodes)
	if err != nil {
		return nil, err
	}
	p := topology.DefaultParams()
	if cfg.Params != nil {
		p = *cfg.Params
	}
	m := &Machine{
		K:         sim.NewKernel(),
		Topo:      topo,
		P:         p,
		Mem:       memsys.New(topo, p, cfg.CacheLines),
		nodeIndex: cfg.NodeIndex,
	}
	if counters.Active() {
		m.EnableCounters()
	}
	return m, nil
}

// EnableCounters attaches a PMU-style counter registry to the machine
// (idempotent) and returns it. Counter totals accumulate in
// m.Counters and are published to any attached counters.Collector
// sinks when Run completes. Enabling counters never changes simulated
// timings — the counters live outside virtual time.
func (m *Machine) EnableCounters() *counters.Registry {
	if m.Counters == nil {
		m.Counters = counters.NewRegistry()
		m.Mem.AttachCountersBase(m.Counters, m.nodeIndex)
	}
	return m.Counters
}

// MustNew is New but panics on configuration errors (for examples/tests).
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Alloc registers a memory object of the given class and returns its
// space handle. host is the hosting hypernode for NearShared data and
// blockBytes the distribution unit for BlockShared data.
func (m *Machine) Alloc(name string, class topology.Class, host, blockBytes int) topology.Space {
	return m.Mem.Alloc(name, class, host, blockBytes)
}

// Thread is a flow of control bound to one CPU of the machine.
type Thread struct {
	M   *Machine
	P   *sim.Proc
	CPU topology.CPUID
	// slowdown stretches Compute time (OS intrusion on a saturated
	// machine; 0 = none).
	slowdown float64

	// Per-thread time breakdown, the CXpa-style instrumentation the
	// paper's §6 credits for its optimization work. Busy accumulates
	// compute, MemStall memory-access latency, SyncWait time parked in
	// synchronization primitives (filled by the threads package).
	Busy     sim.Cycles
	MemStall sim.Cycles
	SyncWait sim.Cycles
}

// Spawn starts fn as a simulated thread on the given CPU.
func (m *Machine) Spawn(name string, cpu topology.CPUID, fn func(th *Thread)) *Thread {
	th := &Thread{M: m}
	th.CPU = cpu
	th.P = m.K.Spawn(name, func(p *sim.Proc) { fn(th) })
	return th
}

// SpawnAt is Spawn starting at absolute virtual time t.
func (m *Machine) SpawnAt(t sim.Cycles, name string, cpu topology.CPUID, fn func(th *Thread)) *Thread {
	th := &Thread{M: m, CPU: cpu}
	th.P = m.K.SpawnAt(t, name, func(p *sim.Proc) { fn(th) })
	return th
}

// Run executes the simulation to completion, then publishes any counter
// deltas to the attached collector sinks.
func (m *Machine) Run() error {
	err := m.K.Run()
	counters.Publish(m.Counters)
	return err
}

// Now reports the current virtual time.
func (m *Machine) Now() sim.Cycles { return m.K.Now() }

// SetSlowdown stretches this thread's Compute durations by factor f
// (e.g. 0.04 = 4% stolen by the OS).
func (th *Thread) SetSlowdown(f float64) { th.slowdown = f }

// Now reports the thread's current virtual time.
func (th *Thread) Now() sim.Cycles { return th.P.Now() }

// Read plays a load of addr in space sp through the memory system,
// blocking the thread for the access latency.
func (th *Thread) Read(sp topology.Space, addr topology.Addr) memsys.Report {
	rep := th.M.Mem.Access(th.P.Now(), th.CPU, sp, addr, false)
	th.MemStall += rep.Done - th.P.Now()
	th.M.Trace.Record(th.P.Name(), trace.Mem, th.P.Now(), rep.Done)
	th.P.Delay(rep.Done - th.P.Now())
	return rep
}

// Write plays a store, blocking for the full ownership acquisition.
func (th *Thread) Write(sp topology.Space, addr topology.Addr) memsys.Report {
	rep := th.M.Mem.Access(th.P.Now(), th.CPU, sp, addr, true)
	th.MemStall += rep.Done - th.P.Now()
	th.M.Trace.Record(th.P.Name(), trace.Mem, th.P.Now(), rep.Done)
	th.P.Delay(rep.Done - th.P.Now())
	return rep
}

// RMW plays an uncached atomic read-modify-write (semaphore cell).
func (th *Thread) RMW(sp topology.Space, addr topology.Addr) {
	done := th.M.Mem.UncachedRMW(th.P.Now(), th.CPU, sp, addr)
	th.MemStall += done - th.P.Now()
	th.M.Trace.Record(th.P.Name(), trace.Mem, th.P.Now(), done)
	th.P.Delay(done - th.P.Now())
}

// ComputeCycles blocks the thread for n cycles of pure computation,
// stretched by any configured slowdown.
func (th *Thread) ComputeCycles(n int64) {
	if n <= 0 {
		return
	}
	if th.slowdown > 0 {
		n = int64(float64(n) * (1 + th.slowdown))
	}
	th.Busy += sim.Cycles(n)
	th.M.Trace.Record(th.P.Name(), trace.Busy, th.P.Now(), th.P.Now()+sim.Cycles(n))
	th.P.Delay(sim.Cycles(n))
}

// Delay blocks the thread for d cycles (uninstrumented time).
func (th *Thread) Delay(d sim.Cycles) { th.P.Delay(d) }

// String identifies the thread.
func (th *Thread) String() string {
	return fmt.Sprintf("%s@%v", th.P.Name(), th.CPU)
}
