package machine

import (
	"strings"
	"testing"

	"spp1000/internal/sim"
	"spp1000/internal/topology"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Hypernodes: 0}); err == nil {
		t.Fatal("0 hypernodes should fail")
	}
	if _, err := New(Config{Hypernodes: 17}); err == nil {
		t.Fatal("17 hypernodes should fail")
	}
	m, err := New(Config{Hypernodes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if m.Topo.NumCPUs() != 128 {
		t.Fatalf("full machine has %d CPUs, want 128", m.Topo.NumCPUs())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on a bad config")
		}
	}()
	MustNew(Config{Hypernodes: -1})
}

func TestCustomParams(t *testing.T) {
	p := topology.DefaultParams()
	p.LocalMiss = 123
	m, err := New(Config{Hypernodes: 1, Params: &p})
	if err != nil {
		t.Fatal(err)
	}
	if m.P.LocalMiss != 123 {
		t.Fatal("params override ignored")
	}
}

func TestThreadReadWriteAdvanceTime(t *testing.T) {
	m := MustNew(Config{Hypernodes: 1})
	sp := m.Alloc("x", topology.ThreadPrivate, 0, 0)
	var missT, hitT sim.Cycles
	m.Spawn("t", topology.MakeCPU(0, 0, 0), func(th *Thread) {
		t0 := th.Now()
		th.Read(sp, 0)
		missT = th.Now() - t0
		t0 = th.Now()
		th.Read(sp, 0)
		hitT = th.Now() - t0
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if missT <= hitT || hitT != sim.Cycles(m.P.CacheHit) {
		t.Fatalf("miss %v, hit %v", missT, hitT)
	}
}

func TestComputeSlowdown(t *testing.T) {
	m := MustNew(Config{Hypernodes: 1})
	var plain, slowed sim.Cycles
	m.Spawn("a", topology.MakeCPU(0, 0, 0), func(th *Thread) {
		t0 := th.Now()
		th.ComputeCycles(10000)
		plain = th.Now() - t0
		th.SetSlowdown(0.05)
		t0 = th.Now()
		th.ComputeCycles(10000)
		slowed = th.Now() - t0
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if plain != 10000 || slowed != 10500 {
		t.Fatalf("plain %v, slowed %v; want 10000 and 10500", plain, slowed)
	}
}

func TestComputeZeroAndNegativeNoOp(t *testing.T) {
	m := MustNew(Config{Hypernodes: 1})
	m.Spawn("a", topology.MakeCPU(0, 0, 0), func(th *Thread) {
		t0 := th.Now()
		th.ComputeCycles(0)
		th.ComputeCycles(-5)
		if th.Now() != t0 {
			t.Error("zero/negative compute should not advance time")
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInstrumentationCounters(t *testing.T) {
	m := MustNew(Config{Hypernodes: 1})
	sp := m.Alloc("x", topology.NearShared, 0, 0)
	var th0 *Thread
	th0 = m.Spawn("t", topology.MakeCPU(0, 0, 0), func(th *Thread) {
		th.ComputeCycles(777)
		th.Read(sp, 0)
		th.RMW(sp, 4096)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if th0.Busy != 777 {
		t.Fatalf("busy = %v, want 777", th0.Busy)
	}
	if th0.MemStall <= 0 {
		t.Fatal("memory stall not recorded")
	}
}

func TestSpawnAtStartsLate(t *testing.T) {
	m := MustNew(Config{Hypernodes: 1})
	var started sim.Cycles
	m.SpawnAt(sim.Micros(10), "late", topology.MakeCPU(0, 0, 1), func(th *Thread) {
		started = th.Now()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if started != sim.Micros(10) {
		t.Fatalf("started at %v, want 10 µs", started)
	}
}

func TestThreadString(t *testing.T) {
	m := MustNew(Config{Hypernodes: 1})
	th := m.Spawn("worker", topology.MakeCPU(0, 1, 1), func(th *Thread) {})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	s := th.String()
	if !strings.Contains(s, "worker") || !strings.Contains(s, "hn0.fu1.cpu1") {
		t.Fatalf("thread string = %q", s)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() sim.Cycles {
		m := MustNew(Config{Hypernodes: 2})
		sp := m.Alloc("x", topology.FarShared, 0, 0)
		var end sim.Cycles
		for i := 0; i < 8; i++ {
			i := i
			m.Spawn("t", topology.CPUID(i*2), func(th *Thread) {
				for j := 0; j < 20; j++ {
					th.Read(sp, topology.Addr((i*20+j)*32))
					th.ComputeCycles(int64(37 * (j + 1)))
					th.Write(sp, topology.Addr(j*32))
				}
				end = th.Now()
			})
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	first := run()
	for i := 0; i < 3; i++ {
		if again := run(); again != first {
			t.Fatalf("non-deterministic: %v vs %v", first, again)
		}
	}
}
