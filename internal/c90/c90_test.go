package c90

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPeak(t *testing.T) {
	m := Default()
	if p := m.PeakMflops(); p != 960 {
		t.Fatalf("peak = %v Mflop/s, want 960", p)
	}
}

func TestVectorRateMonotoneInLength(t *testing.T) {
	m := Default()
	prev := 0.0
	for _, vl := range []float64{1, 8, 64, 512, 4096} {
		r := m.VectorMflops(vl)
		if r <= prev {
			t.Fatalf("vector rate not increasing with length: %v at %v", r, vl)
		}
		prev = r
	}
	if m.VectorMflops(0) != m.ScalarMflops {
		t.Fatal("zero vector length should fall back to scalar rate")
	}
}

func TestCalibratedRates(t *testing.T) {
	m := Default()
	cases := []struct {
		w      Workload
		target float64
		tol    float64
	}{
		{PIC, 362, 25},      // Table 1: 355–369 Mflop/s
		{FEM, 293, 20},      // §5.2.2: ≈293 Mflop/s (hpm)
		{TreeCode, 120, 12}, // §5.3.2: ≈120 Mflop/s
	}
	for _, c := range cases {
		got := m.Rate(c.w)
		if math.Abs(got-c.target) > c.tol {
			t.Errorf("%s C90 rate = %.0f Mflop/s, want ≈%.0f", c.w.Name, got, c.target)
		}
	}
}

func TestTable1CPUTimes(t *testing.T) {
	// Table 1: 32³ mesh run took 112.9 s at 355 Mflop/s → ≈40 Gflop.
	m := Default()
	flops := int64(355e6 * 112.9)
	sec := m.Seconds(flops, PIC.VecLen, PIC.VectorFraction)
	if sec < 90 || sec > 135 {
		t.Fatalf("small PIC run time = %.1f s, want ≈113", sec)
	}
}

func TestSustainedBounded(t *testing.T) {
	m := Default()
	prop := func(rawVl uint16, rawF uint8) bool {
		vl := float64(rawVl%4096) + 1
		f := float64(rawF) / 255
		r := m.SustainedMflops(vl, f)
		// The sustained rate lies between the slower of the two units
		// (short vectors run below scalar speed) and the peak.
		floor := math.Min(m.ScalarMflops, m.VectorMflops(vl)) * 0.99
		return r >= floor && r <= m.PeakMflops()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
	// Clamping.
	if m.SustainedMflops(100, -1) != m.SustainedMflops(100, 0) {
		t.Fatal("negative fraction should clamp to 0")
	}
	if m.SustainedMflops(100, 2) != m.SustainedMflops(100, 1) {
		t.Fatal("fraction >1 should clamp to 1")
	}
}

func TestSecondsScalesLinearly(t *testing.T) {
	m := Default()
	one := m.Seconds(1e9, 256, 0.9)
	two := m.Seconds(2e9, 256, 0.9)
	if math.Abs(two-2*one) > 1e-9 {
		t.Fatalf("time not linear in flops: %v vs %v", one, two)
	}
}
