// Package c90 models a single processor ("head") of a Cray Y-MP C90,
// which the paper uses as its reference machine (§5): flat horizontal
// lines in Figs. 6 and 7 and the Table 1 rates. The model is the classic
// vector-pipeline description: peak rate derated by the n½
// half-performance vector length on the vectorized fraction, and a slow
// scalar unit for the rest (Amdahl in time).
package c90

// Model describes one C90 head.
type Model struct {
	// ClockMHz is the CPU clock (C90: 4.167 ns → 240 MHz).
	ClockMHz float64
	// PeakFlopsPerCycle counts both vector pipes with chained
	// multiply-add (C90: 4 → ~0.96 Gflop/s peak).
	PeakFlopsPerCycle float64
	// NHalf is the half-performance vector length.
	NHalf float64
	// ScalarMflops is the sustained scalar-unit rate.
	ScalarMflops float64
}

// Default returns the calibrated C90 head.
func Default() Model {
	return Model{
		ClockMHz:          240,
		PeakFlopsPerCycle: 4,
		NHalf:             60,
		ScalarMflops:      55,
	}
}

// PeakMflops reports the theoretical peak rate.
func (m Model) PeakMflops() float64 { return m.ClockMHz * m.PeakFlopsPerCycle }

// VectorMflops reports the sustained vector rate at the given average
// vector length.
func (m Model) VectorMflops(vecLen float64) float64 {
	if vecLen <= 0 {
		return m.ScalarMflops
	}
	return m.PeakMflops() * vecLen / (vecLen + m.NHalf)
}

// SustainedMflops reports the overall rate of a code with the given
// vectorized fraction (of operations) at the given mean vector length.
func (m Model) SustainedMflops(vecLen, vectorFraction float64) float64 {
	if vectorFraction < 0 {
		vectorFraction = 0
	}
	if vectorFraction > 1 {
		vectorFraction = 1
	}
	v := m.VectorMflops(vecLen)
	// Time per Mflop = f/v + (1−f)/s; rate is its reciprocal.
	t := vectorFraction/v + (1-vectorFraction)/m.ScalarMflops
	return 1 / t
}

// Seconds reports the execution time of the given operation count.
func (m Model) Seconds(flops int64, vecLen, vectorFraction float64) float64 {
	rate := m.SustainedMflops(vecLen, vectorFraction) * 1e6
	return float64(flops) / rate
}

// Workload captures a code's C90 execution profile as the paper reports
// it: the per-run operation count plus the vectorization parameters that
// reproduce the measured sustained rate.
type Workload struct {
	Name           string
	VecLen         float64
	VectorFraction float64
}

// Calibrated workloads reproducing the paper's measured C90 rates:
//
//	PIC:       355–369 Mflop/s (Table 1)
//	FEM:       ≈293 Mflop/s hpm (250 useful, §5.2.2)
//	Tree code: ≈120 Mflop/s for the vectorized public code (§5.3.2)
var (
	PIC      = Workload{Name: "pic", VecLen: 512, VectorFraction: 0.906}
	FEM      = Workload{Name: "fem", VecLen: 256, VectorFraction: 0.874}
	TreeCode = Workload{Name: "tree", VecLen: 64, VectorFraction: 0.609}
)

// Rate reports the sustained Mflop/s of a calibrated workload.
func (m Model) Rate(w Workload) float64 {
	return m.SustainedMflops(w.VecLen, w.VectorFraction)
}
