// Package faultinject is the test-only hook layer behind the service's
// fault-matrix suite. Production code marks its failure-prone sites
// (running a job, persisting a result) with a Fire call naming a Point;
// tests Arm a Hook at that point to inject delays, errors, or torn
// writes and then prove the daemon degrades gracefully. When nothing is
// armed — the only state production ever sees — Fire is a single atomic
// load and returns nil, so the hooks cost nothing on the hot path and
// cannot perturb the deterministic simulation.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Point names one injectable site in production code. Sites are
// compiled in permanently; they do nothing until a test arms them.
type Point string

// The injectable sites. Each constant documents where its Fire call
// lives and what the hook receives.
const (
	// RunStart fires in the service worker inside the result-cache
	// compute function, immediately before a job's RunFunc executes.
	// Arg: the job id. A hook that blocks injects a slow run (filling
	// the bounded queue behind it); a hook that returns an error makes
	// the run fail.
	RunStart Point = "service.run.start"

	// StoreWrite fires in store.Put after the payload is written to the
	// temp file and before the atomic rename. Arg: the temp file path.
	// A hook that truncates or scribbles on the file simulates a torn
	// write that survives the rename; a returned error fails the Put.
	StoreWrite Point = "store.write"

	// StoreRead fires in store.Get before the entry file is read.
	// Arg: the entry file path. A returned error fails the read.
	StoreRead Point = "store.read"

	// GatewayForward fires in the sppgw gateway immediately before it
	// proxies a request to a backend. Args: the backend id, then the
	// request path. A returned error is treated exactly like a
	// connection failure: the gateway evicts the backend from the ring
	// and retries against the re-hashed owner — the backend-kill half of
	// the cluster fault matrix, without needing a real process to die.
	GatewayForward Point = "gateway.forward"

	// GatewayPeerProbe fires in the sppgw gateway inside handlePeer,
	// immediately before each candidate backend is probed for a store
	// entry. Args: the candidate backend id, then the result key. A
	// returned error is treated like a transport failure to that
	// candidate: it is evicted and, if the whole pass comes up empty, the
	// probe pass is retried once against the re-resolved ring — covering
	// the window where a backend vanishes between the ring lookup and the
	// probe.
	GatewayPeerProbe Point = "gateway.peerprobe"

	// PeerFetch fires in a clustered backend's peer-fetch client
	// immediately before it asks the gateway for another backend's copy
	// of a store entry. Arg: the result key. A returned error makes the
	// peer fetch miss, so the job falls through to a full local
	// recompute — the peer-fetch-failure half of the cluster fault
	// matrix (correctness must never depend on the warm path).
	PeerFetch Point = "service.peerfetch"
)

// Hook is the test-side handler armed at a Point. args identify the
// site instance (job id, file path — see the Point's doc). A non-nil
// error makes the production site fail with it.
type Hook func(args ...string) error

var (
	armed atomic.Int32 // number of armed points: the Fire fast-path gate
	mu    sync.Mutex
	hooks = map[Point]Hook{}
)

// Fire invokes the hook armed at p, if any. With nothing armed anywhere
// it is one atomic load and returns nil, so production builds pay
// nothing for the sites they carry.
func Fire(p Point, args ...string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	h := hooks[p]
	mu.Unlock()
	if h == nil {
		return nil
	}
	return h(args...)
}

// Arm installs h at p and returns a disarm func (idempotent; call it
// from t.Cleanup). Arming an already-armed point panics: overlapping
// hooks in parallel tests would silently shadow each other, so the
// fault-matrix tests that arm hooks must not run in parallel.
func Arm(p Point, h Hook) (disarm func()) {
	if h == nil {
		panic("faultinject: Arm with nil hook")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := hooks[p]; dup {
		panic(fmt.Sprintf("faultinject: point %q already armed", p))
	}
	hooks[p] = h
	armed.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			mu.Lock()
			defer mu.Unlock()
			delete(hooks, p)
			armed.Add(-1)
		})
	}
}

// Armed reports whether any point currently has a hook, for tests that
// assert the world was restored after a disarm.
func Armed() bool { return armed.Load() > 0 }
