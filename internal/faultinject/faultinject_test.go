package faultinject

import (
	"errors"
	"testing"
)

func TestFireDisarmedIsNoop(t *testing.T) {
	if err := Fire(RunStart, "job"); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
	if Armed() {
		t.Fatal("Armed() with nothing armed")
	}
}

func TestArmFireDisarm(t *testing.T) {
	injected := errors.New("injected")
	var got []string
	disarm := Arm(RunStart, func(args ...string) error {
		got = append(got, args...)
		return injected
	})
	defer disarm()

	if !Armed() {
		t.Fatal("Armed() false after Arm")
	}
	if err := Fire(RunStart, "a", "b"); !errors.Is(err, injected) {
		t.Fatalf("Fire = %v, want injected error", err)
	}
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("hook args = %v", got)
	}
	// Other points stay unarmed.
	if err := Fire(StoreWrite, "path"); err != nil {
		t.Fatalf("unarmed point fired hook: %v", err)
	}

	disarm()
	if Armed() {
		t.Fatal("Armed() true after disarm")
	}
	if err := Fire(RunStart); err != nil {
		t.Fatalf("Fire after disarm = %v", err)
	}
	disarm() // idempotent
	if Armed() {
		t.Fatal("double disarm went negative")
	}
}

func TestDoubleArmPanics(t *testing.T) {
	disarm := Arm(StoreRead, func(...string) error { return nil })
	defer disarm()
	defer func() {
		if recover() == nil {
			t.Fatal("second Arm of the same point did not panic")
		}
	}()
	Arm(StoreRead, func(...string) error { return nil })
}
