package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// The title line must be clamped to the body line width, exactly like
// the lane rows (companion to TestRenderClampsTinyWidth).
func TestRenderClampsTitle(t *testing.T) {
	long := strings.Repeat("T", 500)
	r := New()
	r.Record("lane", Busy, 0, 100)
	for _, out := range []string{
		r.Render(long, 20),
		(&Recorder{}).Render(long, 20), // empty-recorder path clamps too
	} {
		title := strings.SplitN(out, "\n", 2)[0]
		// Body lines are laneWidth + "|" + width + "|" wide at most.
		if max := len("lane") + 20 + 3; len(title) > max {
			t.Errorf("title %d chars, want <= %d:\n%s", len(title), max, out)
		}
	}
	if out := r.Render(long, 1); len(strings.SplitN(out, "\n", 2)[0]) > len("lane")+10+3 {
		t.Errorf("tiny width title not clamped:\n%s", out)
	}
}

func TestChromeTrace(t *testing.T) {
	r := New()
	r.Record("t1", Busy, 0, 200)
	r.Record("t0", Mem, 100, 350)
	r.Record("t0", Sync, 350, 400)
	data, err := r.ChromeTrace(map[string]string{"mem.hits": "42"})
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Tid  int               `json:"tid"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, data)
	}
	if file.OtherData["mem.hits"] != "42" {
		t.Errorf("otherData missing counters: %v", file.OtherData)
	}
	// 1 process_name + 2 thread_name metadata + 3 X events.
	var meta, complete int
	for _, e := range file.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
		}
	}
	if meta != 3 || complete != 3 {
		t.Fatalf("got %d metadata / %d complete events, want 3/3:\n%s", meta, complete, data)
	}
	// Lanes are named in sorted order: t0 -> tid 1, t1 -> tid 2; the
	// first complete event is the earliest (t1's compute at ts 0).
	first := file.TraceEvents[3]
	if first.Name != "compute" || first.Tid != 2 || first.Ts != 0 || first.Dur != 2 {
		t.Errorf("first complete event = %+v, want compute on tid 2, ts 0, dur 2µs", first)
	}
	// Determinism: identical bytes on re-export.
	again, _ := r.ChromeTrace(map[string]string{"mem.hits": "42"})
	if string(data) != string(again) {
		t.Error("ChromeTrace not deterministic")
	}
}

func TestChromeTraceNilAndEmpty(t *testing.T) {
	var nilRec *Recorder
	for _, r := range []*Recorder{nilRec, New()} {
		data, err := r.ChromeTrace(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "process_name") {
			t.Errorf("empty trace missing process metadata:\n%s", data)
		}
	}
}

func TestStateLabel(t *testing.T) {
	if Busy.Label() != "compute" || Mem.Label() != "memory" || Sync.Label() != "sync" {
		t.Error("state labels changed")
	}
	if State('?').Label() != "state(?)" {
		t.Errorf("unknown state label = %q", State('?').Label())
	}
}
