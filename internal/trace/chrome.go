package trace

import (
	"encoding/json"
	"sort"
)

// Label names the state for structured exports ("compute", "memory",
// "sync"); unknown states render as "state(<byte>)".
func (s State) Label() string {
	switch s {
	case Busy:
		return "compute"
	case Mem:
		return "memory"
	case Sync:
		return "sync"
	}
	return "state(" + string(byte(s)) + ")"
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (chrome://tracing, Perfetto): "X" complete events carry a timestamp
// and duration in microseconds; "M" metadata events name the lanes.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Cat  string            `json:"cat,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// ChromeTrace serializes the recorded intervals in the Chrome
// trace-event JSON format, loadable in chrome://tracing or Perfetto.
// Each lane becomes a named thread of process 1; virtual cycles convert
// to trace microseconds at the machine's 100 MHz clock. otherData
// (optional) is embedded verbatim — sppprof uses it for the machine's
// flattened PMU counters. The output is deterministic: lanes are
// metadata-named in sorted order and events are emitted sorted by
// start time, then lane, then state.
func (r *Recorder) ChromeTrace(otherData map[string]string) ([]byte, error) {
	lanes := r.Lanes()
	sort.Strings(lanes)
	tid := make(map[string]int, len(lanes))
	events := make([]chromeEvent, 0, 2*len(lanes)+r.Len()+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]string{"name": "SPP-1000 (simulated)"},
	})
	for i, l := range lanes {
		tid[l] = i + 1
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1,
			Args: map[string]string{"name": l},
		})
	}
	var ivs []Interval
	if r != nil {
		ivs = append(ivs, r.intervals...)
	}
	sort.SliceStable(ivs, func(i, j int) bool {
		if ivs[i].From != ivs[j].From {
			return ivs[i].From < ivs[j].From
		}
		if tid[ivs[i].Lane] != tid[ivs[j].Lane] {
			return tid[ivs[i].Lane] < tid[ivs[j].Lane]
		}
		return ivs[i].State < ivs[j].State
	})
	for _, iv := range ivs {
		events = append(events, chromeEvent{
			Name: iv.State.Label(), Ph: "X", Cat: "sim",
			Pid: 1, Tid: tid[iv.Lane],
			Ts:  iv.From.Micros(),
			Dur: (iv.To - iv.From).Micros(),
		})
	}
	return json.MarshalIndent(chromeFile{
		TraceEvents:     events,
		DisplayTimeUnit: "ns",
		OtherData:       otherData,
	}, "", " ")
}
