package trace

import (
	"strings"
	"testing"

	"spp1000/internal/sim"
)

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record("a", Busy, 0, 100) // must not panic
	if r.Len() != 0 {
		t.Fatal("nil recorder should record nothing")
	}
	out := r.Render("empty", 40)
	if !strings.Contains(out, "no trace") {
		t.Fatalf("nil render = %q", out)
	}
}

func TestRecordAndSpan(t *testing.T) {
	r := New()
	r.Record("t0", Busy, 100, 300)
	r.Record("t1", Mem, 50, 150)
	r.Record("t0", Sync, 300, 500)
	if r.Len() != 3 {
		t.Fatalf("len = %d", r.Len())
	}
	from, to := r.Span()
	if from != 50 || to != 500 {
		t.Fatalf("span = %v..%v", from, to)
	}
	if lanes := r.Lanes(); len(lanes) != 2 || lanes[0] != "t0" {
		t.Fatalf("lanes = %v", lanes)
	}
}

func TestDegenerateIntervalIgnored(t *testing.T) {
	r := New()
	r.Record("t0", Busy, 100, 100)
	r.Record("t0", Busy, 100, 50)
	if r.Len() != 0 {
		t.Fatal("zero/negative intervals must be ignored")
	}
}

func TestTotals(t *testing.T) {
	r := New()
	r.Record("t0", Busy, 0, 100)
	r.Record("t0", Busy, 200, 250)
	r.Record("t0", Mem, 100, 130)
	tot := r.Totals()
	if tot["t0"][Busy] != 150 || tot["t0"][Mem] != 30 {
		t.Fatalf("totals = %v", tot["t0"])
	}
}

func TestRenderShape(t *testing.T) {
	r := New()
	// First half busy, second half sync.
	r.Record("worker", Busy, 0, 1000)
	r.Record("worker", Sync, 1000, 2000)
	out := r.Render("demo", 40)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "worker") {
		t.Fatalf("render missing headers:\n%s", out)
	}
	lane := ""
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "worker") {
			lane = line[strings.Index(line, "|")+1 : strings.LastIndex(line, "|")]
		}
	}
	if len(lane) != 40 {
		t.Fatalf("lane width = %d, want 40", len(lane))
	}
	firstHalf := lane[:20]
	secondHalf := lane[20:]
	if strings.Count(firstHalf, "#") < 18 {
		t.Fatalf("first half should be busy: %q", firstHalf)
	}
	if strings.Count(secondHalf, ".") < 18 {
		t.Fatalf("second half should be sync: %q", secondHalf)
	}
}

func TestRenderMajorityWinsWithinBucket(t *testing.T) {
	r := New()
	// 70% busy / 30% mem inside the single bucket.
	r.Record("t", Busy, 0, 70)
	r.Record("t", Mem, 70, 100)
	out := r.Render("x", 10)
	// Every bucket covers 10 cycles; buckets 0-6 busy, 7-9 mem.
	if !strings.Contains(out, "#######===") {
		t.Fatalf("bucket majority wrong:\n%s", out)
	}
	_ = sim.Cycles(0)
}

func TestRenderClampsTinyWidth(t *testing.T) {
	r := New()
	r.Record("t", Busy, 0, 100)
	out := r.Render("x", 1)
	if !strings.Contains(out, "#") {
		t.Fatalf("clamped render missing data:\n%s", out)
	}
}
