// Package trace records what each simulated thread was doing when, and
// renders the result as a text timeline — the visualization counterpart
// to the CXpa profile tables (§6 credits "performance instrumentation
// and visualization tools" for the optimization work).
//
// States are recorded as half-open virtual-time intervals. Rendering
// buckets the timeline into fixed-width character lanes:
//
//	#  computing        =  waiting on memory
//	.  synchronization  (space)  idle / not yet started
package trace

import (
	"fmt"
	"sort"
	"strings"

	"spp1000/internal/sim"
)

// State classifies what a thread spends time on.
type State byte

const (
	// Busy is time spent computing (rendered '#').
	Busy State = '#'
	// Mem is time stalled on memory accesses (rendered '=').
	Mem State = '='
	// Sync is time parked in synchronization primitives (rendered '.').
	Sync State = '.'
)

// Interval is one recorded span of a thread's time.
type Interval struct {
	Lane  string
	State State
	From  sim.Cycles
	To    sim.Cycles
}

// Recorder accumulates intervals. The zero value is ready to use; a nil
// *Recorder ignores all records, so callers can leave tracing off
// without branching.
type Recorder struct {
	intervals []Interval
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Record adds one interval (ignored on a nil recorder or when to ≤ from).
func (r *Recorder) Record(lane string, st State, from, to sim.Cycles) {
	if r == nil || to <= from {
		return
	}
	r.intervals = append(r.intervals, Interval{Lane: lane, State: st, From: from, To: to})
}

// Len reports the recorded interval count.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.intervals)
}

// Span reports the earliest and latest recorded instants.
func (r *Recorder) Span() (from, to sim.Cycles) {
	if r == nil || len(r.intervals) == 0 {
		return 0, 0
	}
	from, to = r.intervals[0].From, r.intervals[0].To
	for _, iv := range r.intervals[1:] {
		if iv.From < from {
			from = iv.From
		}
		if iv.To > to {
			to = iv.To
		}
	}
	return from, to
}

// Lanes reports the distinct lane names in first-recorded order.
func (r *Recorder) Lanes() []string {
	if r == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, iv := range r.intervals {
		if !seen[iv.Lane] {
			seen[iv.Lane] = true
			out = append(out, iv.Lane)
		}
	}
	return out
}

// Totals sums the time per (lane, state).
func (r *Recorder) Totals() map[string]map[State]sim.Cycles {
	out := map[string]map[State]sim.Cycles{}
	if r == nil {
		return out
	}
	for _, iv := range r.intervals {
		m := out[iv.Lane]
		if m == nil {
			m = map[State]sim.Cycles{}
			out[iv.Lane] = m
		}
		m[iv.State] += iv.To - iv.From
	}
	return out
}

// clampLine truncates s to at most max runes, so no rendered line —
// including the caller-supplied title — exceeds the timeline width.
func clampLine(s string, max int) string {
	if max < 1 {
		max = 1
	}
	runes := []rune(s)
	if len(runes) <= max {
		return s
	}
	return string(runes[:max])
}

// Render draws the timeline with `width` character buckets per lane.
// Within a bucket the state covering the most time wins. The title is
// clamped to the body line width, like every other line.
func (r *Recorder) Render(title string, width int) string {
	if width < 10 {
		width = 10
	}
	if r == nil || len(r.intervals) == 0 {
		return clampLine(title, width+3) + "\n(no trace recorded)\n"
	}
	t0, t1 := r.Span()
	span := t1 - t0
	if span <= 0 {
		span = 1
	}
	lanes := r.Lanes()
	sort.Strings(lanes)

	laneWidth := 0
	for _, l := range lanes {
		if len(l) > laneWidth {
			laneWidth = len(l)
		}
	}

	// Per-lane per-bucket occupancy.
	type cell map[State]sim.Cycles
	rows := map[string][]cell{}
	for _, l := range lanes {
		rows[l] = make([]cell, width)
	}
	bucket := func(t sim.Cycles) int {
		b := int(int64(t-t0) * int64(width) / int64(span))
		if b >= width {
			b = width - 1
		}
		if b < 0 {
			b = 0
		}
		return b
	}
	for _, iv := range r.intervals {
		row := rows[iv.Lane]
		b0, b1 := bucket(iv.From), bucket(iv.To-1)
		for b := b0; b <= b1; b++ {
			// Overlap of the interval with bucket b.
			bStart := t0 + sim.Cycles(int64(span)*int64(b)/int64(width))
			bEnd := t0 + sim.Cycles(int64(span)*int64(b+1)/int64(width))
			lo, hi := iv.From, iv.To
			if bStart > lo {
				lo = bStart
			}
			if bEnd < hi {
				hi = bEnd
			}
			if hi <= lo {
				continue
			}
			if row[b] == nil {
				row[b] = cell{}
			}
			row[b][iv.State] += hi - lo
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", clampLine(title, laneWidth+width+3))
	fmt.Fprintf(&sb, "%v .. %v  (#=busy ==mem .=sync)\n", t0, t1)
	for _, l := range lanes {
		line := make([]byte, width)
		for b, c := range rows[l] {
			ch := byte(' ')
			var best sim.Cycles
			// Fixed priority order so equal occupancies render the same
			// character on every run (map iteration order would not).
			for _, st := range [...]State{Busy, Mem, Sync} {
				if d := c[st]; d > best {
					best = d
					ch = byte(st)
				}
			}
			line[b] = ch
		}
		fmt.Fprintf(&sb, "%-*s |%s|\n", laneWidth, l, string(line))
	}
	return sb.String()
}
