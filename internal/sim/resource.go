package sim

// Resource models a unit-capacity hardware resource (a memory bank, a
// crossbar port, a ring segment) as a busy-until horizon. A request
// arriving at time `now` for `dur` cycles of service starts at
// max(now, free horizon) and pushes the horizon to start+dur; the
// difference start-now is the queueing delay the requester observes.
// This is the classical non-preemptive FCFS approximation: deterministic,
// and exact when requests are presented in timestamp order (which the
// event kernel guarantees).
type Resource struct {
	freeAt Cycles
	// busy accumulates total service time, for utilization reporting.
	busy Cycles
}

// Reserve books dur cycles of service starting no earlier than now.
// It returns the time at which service completes.
func (r *Resource) Reserve(now, dur Cycles) (done Cycles) {
	start := now
	if r.freeAt > start {
		start = r.freeAt
	}
	r.freeAt = start + dur
	r.busy += dur
	return r.freeAt
}

// FreeAt reports the current busy horizon.
func (r *Resource) FreeAt() Cycles { return r.freeAt }

// Busy reports the total service time booked so far.
func (r *Resource) Busy() Cycles { return r.busy }

// Reset clears the horizon and accumulated utilization.
func (r *Resource) Reset() { r.freeAt, r.busy = 0, 0 }
