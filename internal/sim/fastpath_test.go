package sim

import "testing"

// TestNegativeDelayClamped pins the documented clamp: a negative delay
// cannot move the monotonic virtual clock backwards — it degenerates to
// a yield at the current instant.
func TestNegativeDelayClamped(t *testing.T) {
	k := NewKernel()
	var after Time
	k.Spawn("p", func(p *Proc) {
		p.Delay(100)
		p.Delay(-50)
		after = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if after != 100 {
		t.Fatalf("clock after Delay(-50) = %v, want 100 (clamped, not rewound)", after)
	}
}

// TestNegativeDelayStillYields checks the clamped delay keeps the yield
// semantics of Delay(0): same-instant events scheduled earlier run
// before the Proc resumes.
func TestNegativeDelayStillYields(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("p", func(p *Proc) {
		k.After(0, func() { order = append(order, "event") })
		p.Delay(-1)
		order = append(order, "proc")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "event" || order[1] != "proc" {
		t.Fatalf("order = %v, want [event proc]", order)
	}
}

// TestProcWakeupsInterleaveWithCallbacks checks the direct-resume fast
// path keeps the (at, seq) total order with closure events: callbacks
// scheduled before the Proc's timed wake-up at the same instant fire
// first, and a subsequent zero delay re-enters the queue behind them.
func TestProcWakeupsInterleaveWithCallbacks(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("p", func(p *Proc) {
		k.At(10, func() { order = append(order, "a") }) // seq before the wake-up
		p.Delay(10)                                     // wake-up at t=10, after "a" and "b"
		order = append(order, "proc")
		p.Delay(0)
		order = append(order, "proc2")
	})
	k.At(10, func() { order = append(order, "b") }) // seq 2: before everything the body schedules
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"b", "a", "proc", "proc2"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestHeapPopReleasesReferences guards the event-struct reuse: popped
// slots are zeroed so completed callbacks and procs are collectable
// while the backing array is reused.
func TestHeapPopReleasesReferences(t *testing.T) {
	k := NewKernel()
	ran := 0
	for i := 0; i < 100; i++ {
		k.At(Time(i), func() { ran++ })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 100 {
		t.Fatalf("ran %d events, want 100", ran)
	}
	for _, e := range k.events[:cap(k.events)] {
		if e.fn != nil || e.proc != nil {
			t.Fatal("popped heap slot retains a reference")
		}
	}
}
