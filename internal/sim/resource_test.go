package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceIdleService(t *testing.T) {
	var r Resource
	if done := r.Reserve(100, 20); done != 120 {
		t.Fatalf("idle reserve = %d, want 120", done)
	}
	if r.Busy() != 20 {
		t.Fatalf("busy = %d", r.Busy())
	}
}

func TestResourceQueues(t *testing.T) {
	var r Resource
	r.Reserve(0, 50)
	if done := r.Reserve(10, 50); done != 100 {
		t.Fatalf("queued reserve = %d, want 100 (starts at 50)", done)
	}
	if r.FreeAt() != 100 {
		t.Fatalf("horizon = %d", r.FreeAt())
	}
}

func TestResourceIdleGap(t *testing.T) {
	var r Resource
	r.Reserve(0, 10)
	// Next request arrives after the horizon: no queueing.
	if done := r.Reserve(100, 10); done != 110 {
		t.Fatalf("post-gap reserve = %d, want 110", done)
	}
}

func TestResourceReset(t *testing.T) {
	var r Resource
	r.Reserve(0, 100)
	r.Reset()
	if r.FreeAt() != 0 || r.Busy() != 0 {
		t.Fatal("reset should clear state")
	}
}

// Property: completion time ≥ request time + service, and total busy
// equals the sum of service durations.
func TestResourceAccounting(t *testing.T) {
	prop := func(durs []uint8) bool {
		var r Resource
		now := Time(0)
		var total Time
		for _, d8 := range durs {
			d := Time(d8)
			done := r.Reserve(now, d)
			if done < now+d {
				return false
			}
			total += d
			now += Time(d8 / 2) // requests arrive faster than service
		}
		return r.Busy() == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
