package sim

import (
	"fmt"
	"sync/atomic"
)

// totalCycles accumulates the virtual cycles advanced by every kernel in
// the process, folded in once per Run/RunUntil return (never on the
// per-event hot path). It feeds throughput gauges such as sppd's
// simulated-cycles-per-wall-second metric. The process-wide totals are
// pure sums of the per-kernel figures (CyclesRun, EventsProcessed), so
// concurrent kernels — runner-pool sweeps, PDES partitions — never
// conflate each other's counts.
var totalCycles atomic.Int64

// totalEvents accumulates the events executed by every kernel in the
// process, folded in alongside totalCycles (see account).
var totalEvents atomic.Int64

// TotalCycles reports the simulated cycles executed by all kernels in
// this process so far. Monotonic; safe for concurrent use.
func TotalCycles() int64 { return totalCycles.Load() }

// TotalEvents reports the events executed by all kernels in this process
// so far, folded in at Run/RunUntil boundaries like TotalCycles. It is
// the numerator of the events-per-second throughput metrics the
// benchmarks report. Monotonic; safe for concurrent use.
func TotalEvents() int64 { return totalEvents.Load() }

// event is a callback scheduled at a virtual time. Events with equal
// timestamps fire in the order they were scheduled (seq breaks ties),
// which makes the simulation deterministic.
//
// The common case by far is a pure timed wake-up of a parked Proc
// (Delay, synchronization releases). Those carry the Proc directly in
// proc and leave fn nil: the kernel hands the baton straight to the
// goroutine with no closure allocated and no intermediate call.
type event struct {
	at   Cycles
	seq  int64
	proc *Proc  // fast path: resume this Proc directly
	fn   func() // general callback, used when proc is nil
}

// eventHeap is a concrete-typed binary min-heap ordered by (at, seq).
// It deliberately does not implement container/heap: the interface{}
// boxing there costs two heap allocations per event (one on Push, one
// on Pop), which at hundreds of millions of simulated events dominates
// the host profile. Pop order is a pure function of the (at, seq) keys
// — which are totally ordered, seq being unique — so replacing the heap
// implementation cannot change the event schedule.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

//simlint:hotpath
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	h.up(len(*h) - 1)
}

//simlint:hotpath
func (h *eventHeap) pop() event {
	old := *h
	n := len(old) - 1
	e := old[0]
	old[0] = old[n]
	old[n] = event{} // drop fn/proc references so they can be collected
	*h = old[:n]
	if n > 1 {
		h.down(0)
	}
	return e
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// Kernel is a discrete-event simulator: a virtual clock plus an ordered
// event queue. It owns a set of Procs (simulated threads); exactly one
// goroutine — the kernel's or one Proc's — executes at any moment.
type Kernel struct {
	now    Cycles
	seq    int64
	events eventHeap

	// handshake with the currently-running Proc
	yield chan struct{} // Proc -> Kernel: I have parked (or exited)

	live    int // Procs spawned and not yet finished
	blocked int // Procs parked on a waiter queue (not a timed event)

	eventsDone int64 // events executed by this kernel

	accounted       Cycles // cycles already folded into totalCycles
	eventsAccounted int64  // events already folded into totalEvents

	deadlock func() string // optional extra diagnostics on deadlock
}

// NewKernel returns an empty simulation at time zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Cycles { return k.now }

// EventsProcessed reports the events this kernel has executed so far.
// Per-instance, so concurrent kernels (runner-pool sweeps, PDES
// partitions) report their own work; the process-wide TotalEvents is
// the sum over kernels.
func (k *Kernel) EventsProcessed() int64 { return k.eventsDone }

// CyclesRun reports the virtual cycles this kernel has advanced so far
// (kernels start at time zero, so this equals Now). The process-wide
// TotalCycles is the sum over kernels.
func (k *Kernel) CyclesRun() Cycles { return k.now }

// Live reports how many Procs have been spawned and not yet finished.
func (k *Kernel) Live() int { return k.live }

// NextEventAt reports the timestamp of the earliest pending event, or
// false if the queue is empty. PDES coordinators use it to compute the
// conservative window horizon without disturbing the queue.
func (k *Kernel) NextEventAt() (Cycles, bool) {
	if len(k.events) == 0 {
		return 0, false
	}
	return k.events[0].at, true
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past is an error in the caller; it is clamped to "now" to keep the
// clock monotonic.
func (k *Kernel) At(t Cycles, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	k.events.push(event{at: t, seq: k.seq, fn: fn})
}

// atProc schedules a direct resumption of p at absolute time t — the
// timed-wake-up fast path. Equivalent to At(t, func() { resumeProc(p) })
// but with no closure allocation and no indirect call in the event loop.
//
//simlint:hotpath
func (k *Kernel) atProc(t Cycles, p *Proc) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	k.events.push(event{at: t, seq: k.seq, proc: p})
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Cycles, fn func()) { k.At(k.now+d, fn) }

// OnDeadlock registers a diagnostics callback invoked if the simulation
// deadlocks (procs still live but no events pending).
func (k *Kernel) OnDeadlock(fn func() string) { k.deadlock = fn }

// Run executes events in timestamp order until the queue is empty.
// It returns an error if Procs remain alive with nothing scheduled —
// a deadlock in the simulated program. The failure message is built in
// deadlockError, off the hot path, so the loop itself stays free of
// heap escapes.
//
//simlint:hotpath
func (k *Kernel) Run() error {
	for len(k.events) > 0 {
		e := k.events.pop()
		k.now = e.at
		k.eventsDone++
		if e.proc != nil {
			k.resumeProc(e.proc)
		} else {
			e.fn()
		}
	}
	k.account()
	if k.live > 0 {
		return k.deadlockError()
	}
	return nil
}

// deadlockError formats the deadlock failure: live Procs with nothing
// scheduled. Cold by construction — it runs at most once per Run, after
// the event loop has drained — so the fmt boxing it does is kept out of
// the escape-gated hot path.
func (k *Kernel) deadlockError() error {
	msg := fmt.Sprintf("sim: deadlock: %d procs alive, no events pending at %v", k.live, k.now)
	if k.deadlock != nil {
		msg += "\n" + k.deadlock()
	}
	return fmt.Errorf("%s", msg)
}

// RunUntil executes events until the queue is empty or the clock would
// pass t. The clock is left at min(t, time of last event executed).
//
//simlint:hotpath
func (k *Kernel) RunUntil(t Cycles) error {
	for len(k.events) > 0 && k.events[0].at <= t {
		e := k.events.pop()
		k.now = e.at
		k.eventsDone++
		if e.proc != nil {
			k.resumeProc(e.proc)
		} else {
			e.fn()
		}
	}
	if k.now < t {
		k.now = t
	}
	k.account()
	return nil
}

// account folds the cycles and events advanced since the last accounting
// into the process-wide totals. Repeated Run/RunUntil calls on one
// kernel never double-count.
func (k *Kernel) account() {
	if d := k.now - k.accounted; d > 0 {
		k.accounted = k.now
		totalCycles.Add(int64(d))
	}
	if d := k.eventsDone - k.eventsAccounted; d > 0 {
		k.eventsAccounted = k.eventsDone
		totalEvents.Add(d)
	}
}

// resumeProc transfers control to p until it parks or exits.
// Must only be called from the kernel goroutine (inside an event).
//
//simlint:hotpath
func (k *Kernel) resumeProc(p *Proc) {
	p.resume <- struct{}{}
	<-k.yield
}
