package sim

import (
	"container/heap"
	"fmt"
)

// event is a callback scheduled at a virtual time. Events with equal
// timestamps fire in the order they were scheduled (seq breaks ties),
// which makes the simulation deterministic.
type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulator: a virtual clock plus an ordered
// event queue. It owns a set of Procs (simulated threads); exactly one
// goroutine — the kernel's or one Proc's — executes at any moment.
type Kernel struct {
	now    Time
	seq    int64
	events eventHeap

	// handshake with the currently-running Proc
	yield chan struct{} // Proc -> Kernel: I have parked (or exited)

	live    int // Procs spawned and not yet finished
	blocked int // Procs parked on a waiter queue (not a timed event)

	deadlock func() string // optional extra diagnostics on deadlock
}

// NewKernel returns an empty simulation at time zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past is an error in the caller; it is clamped to "now" to keep the
// clock monotonic.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.events, event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// OnDeadlock registers a diagnostics callback invoked if the simulation
// deadlocks (procs still live but no events pending).
func (k *Kernel) OnDeadlock(fn func() string) { k.deadlock = fn }

// Run executes events in timestamp order until the queue is empty.
// It returns an error if Procs remain alive with nothing scheduled —
// a deadlock in the simulated program.
func (k *Kernel) Run() error {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(event)
		k.now = e.at
		e.fn()
	}
	if k.live > 0 {
		msg := fmt.Sprintf("sim: deadlock: %d procs alive, no events pending at %v", k.live, k.now)
		if k.deadlock != nil {
			msg += "\n" + k.deadlock()
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// RunUntil executes events until the queue is empty or the clock would
// pass t. The clock is left at min(t, time of last event executed).
func (k *Kernel) RunUntil(t Time) error {
	for len(k.events) > 0 && k.events[0].at <= t {
		e := heap.Pop(&k.events).(event)
		k.now = e.at
		e.fn()
	}
	if k.now < t {
		k.now = t
	}
	return nil
}

// resumeProc transfers control to p until it parks or exits.
// Must only be called from the kernel goroutine (inside an event).
func (k *Kernel) resumeProc(p *Proc) {
	p.resume <- struct{}{}
	<-k.yield
}
