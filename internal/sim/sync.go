package sim

// Synchronization objects in virtual time. A Proc that waits parks its
// goroutine; a signaller schedules the waiter's resumption as an event at
// the current instant (plus any modeled latency added by the caller).

// waitq is a FIFO of parked Procs.
type waitq struct {
	name    string
	waiters []*Proc
}

func (q *waitq) wait(p *Proc) {
	q.waiters = append(q.waiters, p)
	p.k.blocked++
	p.park("waiting:" + q.name)
	p.k.blocked--
}

// wakeOne schedules the oldest waiter to resume at now+d.
// It reports whether a waiter existed.
func (q *waitq) wakeOne(k *Kernel, d Cycles) bool {
	if len(q.waiters) == 0 {
		return false
	}
	p := q.waiters[0]
	q.waiters = q.waiters[1:]
	p.unparkAt(k.now + d)
	return true
}

// wakeAll schedules every waiter to resume at now+d, in FIFO order.
func (q *waitq) wakeAll(k *Kernel, d Cycles) int {
	n := len(q.waiters)
	for _, p := range q.waiters {
		p.unparkAt(k.now + d)
	}
	q.waiters = q.waiters[:0]
	return n
}

// Semaphore is a counting semaphore in virtual time.
type Semaphore struct {
	k *Kernel
	n int
	q waitq
}

// NewSemaphore returns a semaphore with initial count n.
func (k *Kernel) NewSemaphore(name string, n int) *Semaphore {
	return &Semaphore{k: k, n: n, q: waitq{name: name}}
}

// P decrements the semaphore, parking the Proc while the count is zero.
func (s *Semaphore) P(p *Proc) {
	for s.n == 0 {
		s.q.wait(p)
	}
	s.n--
}

// V increments the semaphore and wakes one waiter, if any.
func (s *Semaphore) V() {
	s.n++
	s.q.wakeOne(s.k, 0)
}

// Count reports the current count (no waiters implied).
func (s *Semaphore) Count() int { return s.n }

// Mutex is a binary lock in virtual time.
type Mutex struct {
	k      *Kernel
	held   bool
	q      waitq
	holder *Proc
}

// NewMutex returns an unlocked mutex.
func (k *Kernel) NewMutex(name string) *Mutex {
	return &Mutex{k: k, q: waitq{name: name}}
}

// Lock acquires the mutex, parking while it is held by another Proc.
func (m *Mutex) Lock(p *Proc) {
	for m.held {
		m.q.wait(p)
	}
	m.held = true
	m.holder = p
}

// Unlock releases the mutex and wakes one waiter.
func (m *Mutex) Unlock() {
	m.held = false
	m.holder = nil
	m.q.wakeOne(m.k, 0)
}

// Event is a broadcast flag: Procs wait until it is set.
// Once set it stays set until Reset.
type Event struct {
	k   *Kernel
	set bool
	q   waitq
}

// NewEvent returns an unset event.
func (k *Kernel) NewEvent(name string) *Event {
	return &Event{k: k, q: waitq{name: name}}
}

// Wait parks until the event is set.
func (e *Event) Wait(p *Proc) {
	for !e.set {
		e.q.wait(p)
	}
}

// Set sets the event and wakes all waiters.
func (e *Event) Set() {
	e.set = true
	e.q.wakeAll(e.k, 0)
}

// IsSet reports whether the event is set.
func (e *Event) IsSet() bool { return e.set }

// Reset clears the event.
func (e *Event) Reset() { e.set = false }

// Queue is an unbounded FIFO of values with blocking receive, the
// simulated analogue of a channel.
type Queue struct {
	k     *Kernel
	items []interface{}
	q     waitq
}

// NewQueue returns an empty queue.
func (k *Kernel) NewQueue(name string) *Queue {
	return &Queue{k: k, q: waitq{name: name}}
}

// Put appends v and wakes one receiver.
func (q *Queue) Put(v interface{}) {
	q.items = append(q.items, v)
	q.q.wakeOne(q.k, 0)
}

// Get removes and returns the oldest value, parking while empty.
func (q *Queue) Get(p *Proc) interface{} {
	for len(q.items) == 0 {
		q.q.wait(p)
	}
	v := q.items[0]
	q.items = q.items[1:]
	// If more items remain, pass the wakeup along so same-instant
	// receivers drain the queue deterministically.
	if len(q.items) > 0 {
		q.q.wakeOne(q.k, 0)
	}
	return v
}

// Len reports the number of queued values.
func (q *Queue) Len() int { return len(q.items) }
