package sim

import (
	"bytes"
	"strings"
	"testing"
)

// runSomeEvents drives a kernel through a small event program to a
// quiescent state with a nonzero clock, sequence, and event count.
func runSomeEvents(t *testing.T, k *Kernel) {
	t.Helper()
	k.At(10, func() {})
	k.After(25, func() { k.After(5, func() {}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestKernelSnapshotRoundTrip(t *testing.T) {
	k := NewKernel()
	runSomeEvents(t, k)

	var buf bytes.Buffer
	if err := k.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	r := NewKernel()
	if err := r.Restore(&buf); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if r.now != k.now || r.seq != k.seq || r.eventsDone != k.eventsDone {
		t.Fatalf("restored (now=%d seq=%d events=%d), want (now=%d seq=%d events=%d)",
			r.now, r.seq, r.eventsDone, k.now, k.seq, k.eventsDone)
	}
	// The restored kernel must schedule the next event with the same seq
	// the original would, preserving the deterministic merge order.
	r.At(100, func() {})
	k.At(100, func() {})
	if r.seq != k.seq {
		t.Fatalf("post-restore seq %d, original %d", r.seq, k.seq)
	}
	// A second snapshot of the restored kernel is byte-identical.
	r2, k2 := NewKernel(), NewKernel()
	runSomeEvents(t, k2)
	var b1, b2 bytes.Buffer
	k2.Snapshot(&b1)
	if err := r2.Restore(bytes.NewReader(b1.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := r2.Snapshot(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("re-snapshot diverged:\n%q\n%q", b1.Bytes(), b2.Bytes())
	}
}

func TestKernelSnapshotRequiresQuiescence(t *testing.T) {
	k := NewKernel()
	k.At(5, func() {})
	if err := k.Snapshot(&bytes.Buffer{}); err == nil {
		t.Fatal("snapshot with a pending event succeeded")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.Snapshot(&bytes.Buffer{}); err != nil {
		t.Fatalf("snapshot at quiescence failed: %v", err)
	}
}

func TestKernelRestoreRequiresFresh(t *testing.T) {
	k := NewKernel()
	runSomeEvents(t, k)
	var buf bytes.Buffer
	if err := k.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	used := NewKernel()
	runSomeEvents(t, used)
	if err := used.Restore(&buf); err == nil {
		t.Fatal("restore into a used kernel succeeded")
	}
}

func TestKernelRestoreRejectsCorruption(t *testing.T) {
	k := NewKernel()
	runSomeEvents(t, k)
	var buf bytes.Buffer
	if err := k.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	rec := buf.String()

	cases := map[string]string{
		"empty":       "",
		"bad magic":   strings.Replace(rec, "spp-kern-v1", "spp-kern-v9", 1),
		"bad crc":     strings.Replace(rec, " now=", " now=9", 1), // body changed, CRC stale
		"no newline":  strings.TrimSuffix(rec, "\n"),
		"not numbers": "spp-kern-v1 00000000 now=x seq=y events=z\n",
	}
	for name, data := range cases {
		if err := NewKernel().Restore(strings.NewReader(data)); err == nil {
			t.Fatalf("%s: restore accepted corrupt record %q", name, data)
		}
	}
	if err := NewKernel().Restore(strings.NewReader(rec)); err != nil {
		t.Fatalf("pristine record failed: %v", err)
	}
}

// Snapshot accounts the kernel's cycles/events into the process totals,
// and Restore marks them already-accounted — so a snapshot/restore pair
// contributes exactly once to TotalCycles/TotalEvents, same as an
// uninterrupted run.
func TestKernelSnapshotNoDoubleAccounting(t *testing.T) {
	k := NewKernel()
	runSomeEvents(t, k)
	var buf bytes.Buffer
	if err := k.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	c0, e0 := TotalCycles(), TotalEvents()
	r := NewKernel()
	if err := r.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	// Running the restored kernel with no new events folds nothing more.
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if dc, de := TotalCycles()-c0, TotalEvents()-e0; dc != 0 || de != 0 {
		t.Fatalf("restore+run re-folded %d cycles and %d events into the process totals", dc, de)
	}
	// New work after the restore folds in only its own delta.
	r.After(7, func() {})
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if dc, de := TotalCycles()-c0, TotalEvents()-e0; dc != 7 || de != 1 {
		t.Fatalf("post-restore work folded (%d cycles, %d events), want (7, 1)", dc, de)
	}
}
