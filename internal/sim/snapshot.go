package sim

import (
	"fmt"
	"hash/crc32"
	"io"
)

// kernelMagic is the version tag of the kernel snapshot record. Bump it
// if the record's fields or meaning change so stale snapshots fail to
// restore instead of misparsing.
const kernelMagic = "spp-kern-v1"

// Snapshot writes the kernel's state as one versioned, CRC32-guarded
// record:
//
//	spp-kern-v1 <crc32-hex> now=<cycles> seq=<n> events=<n>
//
// A kernel can only be snapshotted at quiescence — event queue empty, no
// live or blocked Procs — because Go cannot serialize a parked
// goroutine's stack or a pending event's closure. At quiescence the
// whole state is the clock, the scheduling sequence counter, and the
// event count, and those three integers restore it exactly. Snapshot
// folds outstanding cycles/events into the process totals first
// (account), so a snapshotted kernel never leaves totals behind.
func (k *Kernel) Snapshot(w io.Writer) error {
	if len(k.events) > 0 || k.live > 0 || k.blocked > 0 {
		return fmt.Errorf("sim: snapshot requires quiescence: %d events pending, %d procs live, %d blocked", len(k.events), k.live, k.blocked)
	}
	k.account()
	body := fmt.Sprintf("now=%d seq=%d events=%d", int64(k.now), k.seq, k.eventsDone)
	_, err := fmt.Fprintf(w, "%s %08x %s\n", kernelMagic, crc32.ChecksumIEEE([]byte(body)), body)
	return err
}

// Restore reads one Snapshot record into a fresh kernel, leaving it in
// the exact state the snapshotted kernel quiesced in: same clock, same
// event-sequence counter (so the next scheduled event gets the same seq
// and the merged PDES order is unchanged), same event count. The
// restored cycles/events are marked already-accounted so resuming never
// double-folds them into the process-wide totals. Restoring into a
// kernel that has already run or scheduled anything is an error.
func (k *Kernel) Restore(r io.Reader) error {
	if k.now != 0 || k.seq != 0 || len(k.events) > 0 || k.live > 0 || k.blocked > 0 || k.eventsDone != 0 {
		return fmt.Errorf("sim: restore target must be a fresh kernel")
	}
	line, err := readLine(r)
	if err != nil {
		return fmt.Errorf("sim: restore: %w", err)
	}
	var crc uint32
	var now, seq, events int64
	if _, err := fmt.Sscanf(line, kernelMagic+" %08x now=%d seq=%d events=%d\n", &crc, &now, &seq, &events); err != nil {
		return fmt.Errorf("sim: restore: malformed kernel record %q", line)
	}
	body := fmt.Sprintf("now=%d seq=%d events=%d", now, seq, events)
	if crc32.ChecksumIEEE([]byte(body)) != crc {
		return fmt.Errorf("sim: restore: kernel record CRC mismatch")
	}
	if now < 0 || seq < 0 || events < 0 {
		return fmt.Errorf("sim: restore: negative field in kernel record %q", line)
	}
	k.now = Cycles(now)
	k.seq = seq
	k.eventsDone = events
	k.accounted = k.now
	k.eventsAccounted = k.eventsDone
	return nil
}

// readLine consumes exactly one newline-terminated line, one byte at a
// time so the reader is left positioned at the byte after it — callers
// (the parsim coordinator) stream several records through one reader,
// which buffered reads would over-consume.
func readLine(r io.Reader) (string, error) {
	var line []byte
	var b [1]byte
	for {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return "", err
		}
		if b[0] == '\n' {
			return string(append(line, '\n')), nil
		}
		line = append(line, b[0])
		if len(line) > 256 {
			return "", fmt.Errorf("kernel record line too long")
		}
	}
}
