package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"spp1000/internal/rng"
)

func TestTimeConversions(t *testing.T) {
	if Micros(1) != 100 {
		t.Fatalf("Micros(1) = %d, want 100 cycles", Micros(1))
	}
	if Micros(3.5) != 350 {
		t.Fatalf("Micros(3.5) = %d, want 350", Micros(3.5))
	}
	if Nanos(10) != 1 {
		t.Fatalf("Nanos(10) = %d, want 1 cycle", Nanos(10))
	}
	if got := Time(350).Micros(); got != 3.5 {
		t.Fatalf("(350 cycles).Micros() = %v, want 3.5", got)
	}
	if got := Time(1e9).Seconds(); got != 10 {
		t.Fatalf("(1e9 cycles).Seconds() = %v, want 10", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{50, "50cy"},
		{350, "3.50us"},
		{250000, "2.500ms"},
		{2e9, "20.0000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	k := NewKernel()
	var order []Time
	for _, at := range []Time{50, 10, 30, 10, 90, 0} {
		at := at
		k.At(at, func() { order = append(order, at) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != 6 {
		t.Fatalf("fired %d events, want 6", len(order))
	}
}

func TestEqualTimeEventsFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(42, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestPastSchedulingClamped(t *testing.T) {
	k := NewKernel()
	var fired Time = -1
	k.At(100, func() {
		k.At(10, func() { fired = k.Now() }) // in the past
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 100 {
		t.Fatalf("past event fired at %d, want clamped to 100", fired)
	}
}

func TestProcDelayAdvancesClock(t *testing.T) {
	k := NewKernel()
	var at1, at2 Time
	k.Spawn("p", func(p *Proc) {
		p.Delay(Micros(5))
		at1 = p.Now()
		p.Delay(Micros(2.5))
		at2 = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at1 != 500 || at2 != 750 {
		t.Fatalf("delays landed at %d,%d, want 500,750", at1, at2)
	}
}

func TestSpawnAt(t *testing.T) {
	k := NewKernel()
	var started Time
	k.SpawnAt(Micros(7), "late", func(p *Proc) { started = p.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if started != 700 {
		t.Fatalf("SpawnAt started at %d, want 700", started)
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var log []string
		k.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Delay(10)
				log = append(log, "a")
			}
		})
		k.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Delay(10)
				log = append(log, "b")
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("non-deterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestSemaphoreMutualExclusion(t *testing.T) {
	k := NewKernel()
	sem := k.NewSemaphore("s", 1)
	inside := 0
	maxInside := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *Proc) {
			sem.P(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Delay(100)
			inside--
			sem.V()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("semaphore admitted %d procs at once, want 1", maxInside)
	}
	if k.Now() != 400 {
		t.Fatalf("serialized critical sections should end at 400, got %d", k.Now())
	}
}

func TestSemaphoreCounting(t *testing.T) {
	k := NewKernel()
	sem := k.NewSemaphore("s", 2)
	var done Time
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *Proc) {
			sem.P(p)
			p.Delay(100)
			sem.V()
			done = p.Now()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 200 {
		t.Fatalf("count-2 semaphore over 4x100cy jobs should finish at 200, got %d", done)
	}
}

func TestMutexBlocksAndReleases(t *testing.T) {
	k := NewKernel()
	m := k.NewMutex("m")
	var order []string
	k.Spawn("first", func(p *Proc) {
		m.Lock(p)
		p.Delay(50)
		order = append(order, "first")
		m.Unlock()
	})
	k.Spawn("second", func(p *Proc) {
		p.Delay(1)
		m.Lock(p)
		order = append(order, "second")
		m.Unlock()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("mutex ordering wrong: %v", order)
	}
}

func TestEventBroadcast(t *testing.T) {
	k := NewKernel()
	ev := k.NewEvent("go")
	released := make([]Time, 0, 3)
	for i := 0; i < 3; i++ {
		k.Spawn("waiter", func(p *Proc) {
			ev.Wait(p)
			released = append(released, p.Now())
		})
	}
	k.Spawn("setter", func(p *Proc) {
		p.Delay(Micros(1))
		ev.Set()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(released) != 3 {
		t.Fatalf("released %d waiters, want 3", len(released))
	}
	for _, at := range released {
		if at != 100 {
			t.Fatalf("waiter released at %d, want 100", at)
		}
	}
	if !ev.IsSet() {
		t.Fatal("event should remain set")
	}
	ev.Reset()
	if ev.IsSet() {
		t.Fatal("event should be clear after Reset")
	}
}

func TestQueueFIFOAndBlocking(t *testing.T) {
	k := NewKernel()
	q := k.NewQueue("q")
	var got []int
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Delay(10)
			q.Put(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("queue not FIFO: %v", got)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel()
	sem := k.NewSemaphore("never", 0)
	k.Spawn("stuck", func(p *Proc) { sem.P(p) })
	err := k.Run()
	if err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.At(100, func() { fired++ })
	k.At(200, func() { fired++ })
	if err := k.RunUntil(150); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("RunUntil(150) fired %d events, want 1", fired)
	}
	if k.Now() != 150 {
		t.Fatalf("clock at %d, want 150", k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("final Run fired %d total, want 2", fired)
	}
}

// Property: for any batch of event times, execution order is a stable sort
// by time, and the clock is monotonically non-decreasing.
func TestEventOrderProperty(t *testing.T) {
	prop := func(times []uint16) bool {
		k := NewKernel()
		type rec struct {
			at  Time
			idx int
		}
		var fired []rec
		for i, ut := range times {
			i, at := i, Time(ut)
			k.At(at, func() { fired = append(fired, rec{k.Now(), i}) })
		}
		if err := k.Run(); err != nil {
			return false
		}
		var prev rec
		for i, r := range fired {
			if r.at != Time(times[r.idx]) {
				return false // fired at wrong time
			}
			if i > 0 {
				if r.at < prev.at {
					return false // clock went backwards
				}
				if r.at == prev.at && r.idx < prev.idx {
					return false // equal-time events out of FIFO order
				}
			}
			prev = r
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: N procs doing random-length delay chains always finish at the
// sum of their own delays, independent of interleaving.
func TestProcIsolationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rnd := rng.New(uint64(seed))
		k := NewKernel()
		n := 2 + rnd.Intn(6)
		want := make([]Time, n)
		got := make([]Time, n)
		for i := 0; i < n; i++ {
			i := i
			steps := 1 + rnd.Intn(8)
			delays := make([]Time, steps)
			for j := range delays {
				delays[j] = Time(rnd.Intn(1000))
				want[i] += delays[j]
			}
			k.Spawn("p", func(p *Proc) {
				for _, d := range delays {
					p.Delay(d)
				}
				got[i] = p.Now()
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTotalCyclesAccounting: the process-wide cycle counter advances by
// exactly the virtual time a kernel covers, and repeated Run/RunUntil
// calls on one kernel never double-count.
func TestTotalCyclesAccounting(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {})
	k.At(250, func() {})
	before := TotalCycles()
	if err := k.RunUntil(120); err != nil {
		t.Fatal(err)
	}
	if d := TotalCycles() - before; d != 120 {
		t.Fatalf("after RunUntil(120): accounted %d cycles, want 120", d)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d := TotalCycles() - before; d != 250 {
		t.Fatalf("after Run: accounted %d cycles, want 250 total", d)
	}
	// Running again with nothing scheduled adds nothing.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if d := TotalCycles() - before; d != 250 {
		t.Fatalf("idle Run changed the account to %d", d)
	}
}

// TestPerKernelAccounting: EventsProcessed/CyclesRun are per-instance,
// NextEventAt peeks without executing, and the process-wide TotalEvents
// is the sum of the per-kernel counts (no double counting across
// repeated Run/RunUntil calls).
func TestPerKernelAccounting(t *testing.T) {
	k1, k2 := NewKernel(), NewKernel()
	for _, at := range []Time{10, 20, 30} {
		k1.At(at, func() {})
	}
	k2.At(5, func() {})

	if at, ok := k1.NextEventAt(); !ok || at != 10 {
		t.Fatalf("NextEventAt = %v,%v before running, want 10,true", at, ok)
	}
	if k1.EventsProcessed() != 0 {
		t.Fatalf("peeking executed %d events", k1.EventsProcessed())
	}

	before := TotalEvents()
	if err := k1.RunUntil(20); err != nil {
		t.Fatal(err)
	}
	if got := k1.EventsProcessed(); got != 2 {
		t.Fatalf("k1 processed %d events after RunUntil(20), want 2", got)
	}
	if got := k1.CyclesRun(); got != 20 {
		t.Fatalf("k1 CyclesRun = %v, want 20", got)
	}
	if at, ok := k1.NextEventAt(); !ok || at != 30 {
		t.Fatalf("NextEventAt = %v,%v mid-run, want 30,true", at, ok)
	}
	if err := k1.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if got := k1.EventsProcessed(); got != 3 {
		t.Fatalf("k1 processed %d events, want 3", got)
	}
	if got := k2.EventsProcessed(); got != 1 {
		t.Fatalf("k2 processed %d events, want 1", got)
	}
	if _, ok := k2.NextEventAt(); ok {
		t.Fatal("NextEventAt reports an event on a drained kernel")
	}
	if d := TotalEvents() - before; d != 4 {
		t.Fatalf("TotalEvents advanced by %d, want 4 (sum over kernels)", d)
	}
	// Idle re-runs account nothing further.
	if err := k1.Run(); err != nil {
		t.Fatal(err)
	}
	if d := TotalEvents() - before; d != 4 {
		t.Fatalf("idle Run changed the event account to %d", d)
	}
}
