package sim

import "testing"

// TestKernelFastPathZeroAllocsPerEvent pins the event loop's allocation
// contract: once the heap slice has warmed to its working capacity, the
// direct-resume cycle (pop → clock advance → resumeProc → Delay →
// atProc push) allocates nothing per event. The same property is
// enforced statically by simlint's allocfree analyzer over the
// //simlint:hotpath annotations in kernel.go and proc.go; this test is
// the dynamic witness, so a regression that sneaks past escape analysis
// (e.g. via the runtime rather than the compiler) still fails.
func TestKernelFastPathZeroAllocsPerEvent(t *testing.T) {
	const stop = Cycles(1 << 20)
	k := NewKernel()
	k.Spawn("ticker", func(p *Proc) {
		for p.Now() < stop {
			p.Delay(1)
		}
	})
	// Warm up: first events grow the heap slice and start the Proc.
	if err := k.RunUntil(1000); err != nil {
		t.Fatal(err)
	}

	next := Cycles(1000)
	allocs := testing.AllocsPerRun(100, func() {
		next += 100
		if err := k.RunUntil(next); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("kernel fast path allocates %.2f allocs per 100-event window, want 0", allocs)
	}

	// Drain so the Proc exits and Run verifies no deadlock.
	if err := k.RunUntil(stop); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Live() != 0 {
		t.Fatalf("live = %d after drain, want 0", k.Live())
	}
}
