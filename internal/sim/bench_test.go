package sim

import "testing"

// BenchmarkKernelEventThroughput measures the raw event-queue cost: one
// schedule + pop + dispatch per iteration, with the queue kept at depth
// one by a self-rescheduling chain. This is the floor under every
// simulated memory access and synchronization episode.
func BenchmarkKernelEventThroughput(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	remaining := b.N
	var fire func()
	fire = func() {
		remaining--
		if remaining > 0 {
			k.After(1, fire)
		}
	}
	k.After(1, fire)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelEventThroughputDeep is the same chain with 1024 other
// pending events, exercising the heap's sift costs at realistic depth.
func BenchmarkKernelEventThroughputDeep(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	for i := 0; i < 1024; i++ {
		k.At(Time(1_000_000_000+i), func() {})
	}
	remaining := b.N
	var fire func()
	fire = func() {
		remaining--
		if remaining > 0 {
			k.After(1, fire)
		}
	}
	k.After(1, fire)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelDelayPingPong measures the full Proc baton round trip:
// one Delay per iteration — schedule the timed wake-up, park (hand the
// baton to the kernel), dispatch, resume. This is the hot path of every
// simulated thread.
func BenchmarkKernelDelayPingPong(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	n := b.N
	k.Spawn("delayer", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Delay(1)
		}
	})
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
