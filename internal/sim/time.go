// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock measured in CPU cycles of the
// simulated 100 MHz machine (one cycle = 10 ns). Simulated threads of
// control are Procs: goroutines that run one at a time under the kernel's
// control, parking whenever they wait for virtual time to pass or for a
// synchronization object. Because at most one Proc runs at any instant and
// events at equal timestamps fire in FIFO order, a simulation is a pure
// function of its inputs: same program, same result, down to the cycle.
package sim

import "fmt"

// Cycles is a point in (or duration of) virtual time, in CPU cycles of
// the simulated machine. The simulated clock is 100 MHz, so one cycle is
// 10 ns and one microsecond is 100 cycles.
//
// Cycles is a distinct unit type on purpose: virtual time must never mix
// with host wall-clock time (time.Duration, time.Time). The simtime
// analyzer in internal/lint flags any conversion between Cycles and
// time.Duration and any wall-clock type that appears inside a sim-core
// package — see docs/LINT.md.
type Cycles int64

// Time is the legacy name of Cycles, kept as an alias so older call
// sites keep compiling; new code should say Cycles.
type Time = Cycles

// CyclesPerMicro is the number of simulated cycles in one microsecond.
const CyclesPerMicro = 100

// Micros constructs a duration from microseconds.
func Micros(us float64) Cycles { return Cycles(us * CyclesPerMicro) }

// Nanos constructs a duration from nanoseconds (rounded to cycles).
func Nanos(ns float64) Cycles { return Cycles(ns / 10) }

// Micros reports the time in microseconds.
func (t Cycles) Micros() float64 { return float64(t) / CyclesPerMicro }

// Seconds reports the time in seconds.
func (t Cycles) Seconds() float64 { return float64(t) * 10e-9 }

// String formats the time with an adaptive unit.
func (t Cycles) String() string {
	switch {
	case t < 100:
		return fmt.Sprintf("%dcy", int64(t))
	case t < 100*1000:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < 100*1000*1000:
		return fmt.Sprintf("%.3fms", t.Micros()/1000)
	default:
		return fmt.Sprintf("%.4fs", t.Seconds())
	}
}
