// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock measured in CPU cycles of the
// simulated 100 MHz machine (one cycle = 10 ns). Simulated threads of
// control are Procs: goroutines that run one at a time under the kernel's
// control, parking whenever they wait for virtual time to pass or for a
// synchronization object. Because at most one Proc runs at any instant and
// events at equal timestamps fire in FIFO order, a simulation is a pure
// function of its inputs: same program, same result, down to the cycle.
package sim

import "fmt"

// Time is a point in (or duration of) virtual time, in CPU cycles.
// The simulated clock is 100 MHz, so one cycle is 10 ns and one
// microsecond is 100 cycles.
type Time int64

// CyclesPerMicro is the number of simulated cycles in one microsecond.
const CyclesPerMicro = 100

// Micros constructs a duration from microseconds.
func Micros(us float64) Time { return Time(us * CyclesPerMicro) }

// Nanos constructs a duration from nanoseconds (rounded to cycles).
func Nanos(ns float64) Time { return Time(ns / 10) }

// Micros reports the time in microseconds.
func (t Time) Micros() float64 { return float64(t) / CyclesPerMicro }

// Seconds reports the time in seconds.
func (t Time) Seconds() float64 { return float64(t) * 10e-9 }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < 100:
		return fmt.Sprintf("%dcy", int64(t))
	case t < 100*1000:
		return fmt.Sprintf("%.2fus", t.Micros())
	case t < 100*1000*1000:
		return fmt.Sprintf("%.3fms", t.Micros()/1000)
	default:
		return fmt.Sprintf("%.4fs", t.Seconds())
	}
}
