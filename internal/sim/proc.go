package sim

// Proc is a simulated thread of control: a goroutine that runs only when
// the kernel hands it the baton, and parks whenever it waits on virtual
// time or a synchronization object. Proc methods must only be called from
// the Proc's own goroutine (inside the body passed to Spawn).
type Proc struct {
	k      *Kernel
	name   string
	resume chan struct{}
	state  string // for deadlock diagnostics: "running", "sleeping", or the waiter description
}

// Spawn creates a Proc named name that will begin executing body at
// virtual time "now". The body runs in simulated time: it only advances
// the clock through Delay / synchronization waits.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{}), state: "new"}
	k.live++
	//simlint:allow determinism Proc goroutines ARE the kernel's determinism mechanism: the baton handshake runs exactly one at a time
	go func() {
		<-p.resume // wait for the start event
		p.state = "running"
		body(p)
		p.state = "done"
		k.live--
		k.yield <- struct{}{} // return the baton for good
	}()
	k.atProc(k.now, p)
	return p
}

// SpawnAt is Spawn but the body begins at absolute time t.
func (k *Kernel) SpawnAt(t Cycles, name string, body func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{}), state: "new"}
	k.live++
	//simlint:allow determinism Proc goroutines ARE the kernel's determinism mechanism: the baton handshake runs exactly one at a time
	go func() {
		<-p.resume
		p.state = "running"
		body(p)
		p.state = "done"
		k.live--
		k.yield <- struct{}{}
	}()
	k.atProc(t, p)
	return p
}

// Name reports the Proc's name.
func (p *Proc) Name() string { return p.name }

// Kernel reports the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports the current virtual time.
func (p *Proc) Now() Cycles { return p.k.now }

// park suspends the Proc until something calls unpark (via a scheduled
// event). The baton returns to the kernel.
func (p *Proc) park(why string) {
	p.state = why
	p.k.yield <- struct{}{}
	<-p.resume
	p.state = "running"
}

// unparkAt schedules the Proc to resume at absolute time t, on the
// kernel's direct-resume fast path (no closure, no intermediate call).
func (p *Proc) unparkAt(t Cycles) {
	p.k.atProc(t, p)
}

// Delay advances the Proc's local view of time by d cycles: it parks and
// resumes after all events up to now+d have fired. Negative delays are
// clamped to zero — the virtual clock is monotonic, so the Proc cannot
// travel backwards; a zero delay still yields, letting same-time events
// interleave in deterministic scheduled order.
//
//simlint:hotpath
func (p *Proc) Delay(d Cycles) {
	if d < 0 {
		d = 0
	}
	p.unparkAt(p.k.now + d)
	p.park("sleeping")
}

// Yield lets any other work scheduled at the current instant run first.
func (p *Proc) Yield() { p.Delay(0) }
