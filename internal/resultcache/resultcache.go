// Package resultcache is a content-addressed result store with in-flight
// coalescing, built for the simulation service: every job in this
// repository is a pure deterministic function of its canonical
// configuration (experiments.Spec.Key), so a result computed once is
// correct forever and concurrent identical requests can share a single
// run. The same property lets ScaleSimulator-style tools amortize one
// simulation across many studies; here it turns the daemon's hot path
// into a hash lookup.
package resultcache

import (
	"context"
	"sync"
	"sync/atomic"
)

// Stats counts cache outcomes. All fields are cumulative.
type Stats struct {
	// Hits are calls answered from a completed entry with no new run.
	Hits int64
	// Misses are calls that became the leader and executed the compute
	// function.
	Misses int64
	// Coalesced are calls that arrived while an identical computation
	// was in flight and waited for it instead of starting another.
	Coalesced int64
	// Evictions are completed entries dropped to respect the capacity
	// bound.
	Evictions int64
	// BackingHits is the subset of Hits served by the durable backing
	// store rather than memory — after a restart, prior results land
	// here.
	BackingHits int64
	// BackingErrors counts backing reads/writes that failed. The cache
	// degrades gracefully: a failed read is a miss (the result is
	// recomputed), a failed write leaves the result memory-only.
	BackingErrors int64
}

// HitRatio is hits over total lookups (0 when no lookups yet).
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one content-addressed slot. ready is closed when val/err are
// final; until then followers block on it (or their ctx).
type entry struct {
	ready chan struct{}
	val   string
	err   error
}

// Backing is the optional durable second level under the in-memory
// cache (internal/store implements it over the filesystem). Get reports
// the payload stored under key, (_, false, nil) for a miss; Put durably
// writes it. Implementations must be safe for concurrent use and must
// treat detected corruption as a miss, never as a payload.
type Backing interface {
	Get(key string) (string, bool, error)
	Put(key, val string) error
}

// Cache maps content keys to computed results. The zero value is not
// usable; call New.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	order   []string // completed keys, oldest first, for FIFO eviction
	cap     int      // max completed entries; 0 = unbounded
	backing Backing  // optional durable second level (nil = memory only)

	hits        atomic.Int64
	misses      atomic.Int64
	coalesced   atomic.Int64
	evictions   atomic.Int64
	backingHits atomic.Int64
	backingErrs atomic.Int64
}

// New returns a memory-only cache bounded to capacity completed
// entries; capacity <= 0 means unbounded. In-flight computations never
// count against the bound (evicting them would orphan waiters).
func New(capacity int) *Cache {
	return NewWithBacking(capacity, nil)
}

// NewWithBacking layers the cache over a durable backing store:
// completed results are written through to it, and a lookup that misses
// memory consults it before computing — so a cache rebuilt after a
// restart serves the backing's prior results as hits. The memory bound
// and the backing's own capacity are independent: an entry evicted from
// memory remains durable, and vice versa. A nil backing is memory-only.
func NewWithBacking(capacity int, b Backing) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{entries: make(map[string]*entry), cap: capacity, backing: b}
}

// Get reports the completed in-memory result for key, if present.
// In-flight entries are invisible to Get (use Do to join them), and the
// backing store is not consulted (use Lookup). Get does not touch the
// hit/miss statistics — it is a peek, not a lookup.
func (c *Cache) Get(key string) (string, bool) {
	c.mu.Lock()
	e := c.entries[key]
	c.mu.Unlock()
	if e == nil {
		return "", false
	}
	select {
	case <-e.ready:
	default:
		return "", false
	}
	if e.err != nil {
		return "", false
	}
	return e.val, true
}

// Lookup is the counted read path: a result served — from memory or
// promoted up from the backing store — increments Hits (and
// BackingHits for the latter), so traffic answered by this lookup is
// visible in the hit ratio. A miss is not counted here: the caller's
// subsequent Do records it as the Miss when the computation actually
// runs. In-flight entries are invisible, as with Get.
//
//simlint:hotpath
func (c *Cache) Lookup(key string) (string, bool) {
	if val, ok := c.Get(key); ok {
		c.hits.Add(1)
		return val, true
	}
	if c.backing == nil {
		return "", false
	}
	val, ok, err := c.backing.Get(key)
	if err != nil {
		c.backingErrs.Add(1)
		return "", false
	}
	if !ok {
		return "", false
	}
	c.promote(key, val)
	c.hits.Add(1)
	c.backingHits.Add(1)
	return val, true
}

// Peek reports the result under key — memory first, then the durable
// backing — with no side effects: no statistics move and nothing is
// promoted into memory. It serves the cluster's peer-export endpoint,
// where other backends probe for entries they might copy; those probes
// must not inflate this node's hit ratio or reshape its cache. A
// backing read error reads as absent (the prober falls back to
// recomputing, which is always correct).
func (c *Cache) Peek(key string) (string, bool) {
	if val, ok := c.Get(key); ok {
		return val, true
	}
	if c.backing == nil {
		return "", false
	}
	val, ok, err := c.backing.Get(key)
	if err != nil || !ok {
		return "", false
	}
	return val, true
}

// promote installs a backing-store payload as a completed in-memory
// entry (no-op if key raced into existence meanwhile).
func (c *Cache) promote(key, val string) {
	e := &entry{ready: make(chan struct{}), val: val}
	close(e.ready)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[key]; exists {
		return
	}
	c.entries[key] = e
	c.completeLocked(key)
}

// completeLocked appends key to the completed order and enforces the
// memory bound. Callers hold c.mu.
func (c *Cache) completeLocked(key string) {
	c.order = append(c.order, key)
	for c.cap > 0 && len(c.order) > c.cap {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, victim)
		c.evictions.Add(1)
	}
}

// Do returns the result for key, computing it with fn at most once per
// completed entry: the first caller for a key becomes the leader and
// runs fn; callers arriving while the leader is in flight coalesce onto
// the same run; callers after completion are served from the store.
// With a backing store, the leader first consults it — a durable prior
// result (for instance from before a daemon restart) is promoted to
// memory and returned as a Hit with fn never run — and every freshly
// computed result is written through to it.
//
// The outcome reports how this call was answered (Hit, Miss, or
// Coalesced in the Stats sense). Failed computations are not cached —
// the entry is removed so a later call may retry — but every coalesced
// waiter of the failed run receives the leader's error.
//
// ctx cancels only the *wait* of a coalesced caller (the leader's run
// is shared state and is cancelled by whoever owns its own context);
// a cancelled waiter returns ctx.Err() while the computation proceeds
// for the others.
func (c *Cache) Do(ctx context.Context, key string, fn func() (string, error)) (string, Outcome, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.ready:
			c.mu.Unlock()
			c.hits.Add(1)
			return e.val, Hit, e.err
		default:
		}
		c.mu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-e.ready:
			return e.val, Coalesced, e.err
		case <-ctx.Done():
			return "", Coalesced, ctx.Err()
		}
	}
	e := &entry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()

	// Leader. The backing store is consulted first (while followers
	// coalesce onto this in-flight entry), so one disk read serves all
	// of them and the computation is skipped entirely.
	outcome := Miss
	if c.backing != nil {
		switch val, ok, err := c.backing.Get(key); {
		case err != nil:
			c.backingErrs.Add(1)
		case ok:
			e.val = val
			outcome = Hit
			c.hits.Add(1)
			c.backingHits.Add(1)
		}
	}
	if outcome == Miss {
		c.misses.Add(1)
		e.val, e.err = fn()
		if e.err == nil && c.backing != nil {
			if err := c.backing.Put(key, e.val); err != nil {
				// Degrade to memory-only rather than failing the job:
				// the result is correct, it just isn't durable.
				c.backingErrs.Add(1)
			}
		}
	}

	c.mu.Lock()
	if e.err != nil {
		// Do not cache failures; let a future submission retry.
		delete(c.entries, key)
	} else {
		c.completeLocked(key)
	}
	c.mu.Unlock()
	close(e.ready)
	return e.val, outcome, e.err
}

// Outcome describes how a Do call was answered.
type Outcome int

const (
	// Miss: this call ran the computation.
	Miss Outcome = iota
	// Hit: served from a completed entry.
	Hit
	// Coalesced: joined an in-flight computation.
	Coalesced
)

func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	}
	return "unknown"
}

// Len reports the number of entries (completed + in flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cumulative counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Coalesced:     c.coalesced.Load(),
		Evictions:     c.evictions.Load(),
		BackingHits:   c.backingHits.Load(),
		BackingErrors: c.backingErrs.Load(),
	}
}
