// Package resultcache is a content-addressed result store with in-flight
// coalescing, built for the simulation service: every job in this
// repository is a pure deterministic function of its canonical
// configuration (experiments.Spec.Key), so a result computed once is
// correct forever and concurrent identical requests can share a single
// run. The same property lets ScaleSimulator-style tools amortize one
// simulation across many studies; here it turns the daemon's hot path
// into a hash lookup.
package resultcache

import (
	"context"
	"sync"
	"sync/atomic"
)

// Stats counts cache outcomes. All fields are cumulative.
type Stats struct {
	// Hits are calls answered from a completed entry with no new run.
	Hits int64
	// Misses are calls that became the leader and executed the compute
	// function.
	Misses int64
	// Coalesced are calls that arrived while an identical computation
	// was in flight and waited for it instead of starting another.
	Coalesced int64
	// Evictions are completed entries dropped to respect the capacity
	// bound.
	Evictions int64
}

// HitRatio is hits over total lookups (0 when no lookups yet).
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is one content-addressed slot. ready is closed when val/err are
// final; until then followers block on it (or their ctx).
type entry struct {
	ready chan struct{}
	val   string
	err   error
}

// Cache maps content keys to computed results. The zero value is not
// usable; call New.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	order   []string // completed keys, oldest first, for FIFO eviction
	cap     int      // max completed entries; 0 = unbounded

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
}

// New returns a cache bounded to capacity completed entries; capacity
// <= 0 means unbounded. In-flight computations never count against the
// bound (evicting them would orphan waiters).
func New(capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{entries: make(map[string]*entry), cap: capacity}
}

// Get reports the completed result for key, if present. In-flight
// entries are invisible to Get (use Do to join them). Get does not
// touch the hit/miss statistics — it is a peek, not a lookup.
func (c *Cache) Get(key string) (string, bool) {
	c.mu.Lock()
	e := c.entries[key]
	c.mu.Unlock()
	if e == nil {
		return "", false
	}
	select {
	case <-e.ready:
	default:
		return "", false
	}
	if e.err != nil {
		return "", false
	}
	return e.val, true
}

// Do returns the result for key, computing it with fn at most once per
// completed entry: the first caller for a key becomes the leader and
// runs fn; callers arriving while the leader is in flight coalesce onto
// the same run; callers after completion are served from the store.
//
// The outcome reports how this call was answered (Hit, Miss, or
// Coalesced in the Stats sense). Failed computations are not cached —
// the entry is removed so a later call may retry — but every coalesced
// waiter of the failed run receives the leader's error.
//
// ctx cancels only the *wait* of a coalesced caller (the leader's run
// is shared state and is cancelled by whoever owns its own context);
// a cancelled waiter returns ctx.Err() while the computation proceeds
// for the others.
func (c *Cache) Do(ctx context.Context, key string, fn func() (string, error)) (string, Outcome, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.ready:
			c.mu.Unlock()
			c.hits.Add(1)
			return e.val, Hit, e.err
		default:
		}
		c.mu.Unlock()
		c.coalesced.Add(1)
		select {
		case <-e.ready:
			return e.val, Coalesced, e.err
		case <-ctx.Done():
			return "", Coalesced, ctx.Err()
		}
	}
	e := &entry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)

	e.val, e.err = fn()

	c.mu.Lock()
	if e.err != nil {
		// Do not cache failures; let a future submission retry.
		delete(c.entries, key)
	} else {
		c.order = append(c.order, key)
		for c.cap > 0 && len(c.order) > c.cap {
			victim := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, victim)
			c.evictions.Add(1)
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return e.val, Miss, e.err
}

// Outcome describes how a Do call was answered.
type Outcome int

const (
	// Miss: this call ran the computation.
	Miss Outcome = iota
	// Hit: served from a completed entry.
	Hit
	// Coalesced: joined an in-flight computation.
	Coalesced
)

func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	}
	return "unknown"
}

// Len reports the number of entries (completed + in flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a snapshot of the cumulative counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
	}
}
