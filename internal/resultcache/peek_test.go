package resultcache

import (
	"context"
	"errors"
	"testing"
)

// mapBacking is an in-memory Backing with an optional injected error.
type mapBacking struct {
	m   map[string]string
	err error
}

func (b *mapBacking) Get(key string) (string, bool, error) {
	if b.err != nil {
		return "", false, b.err
	}
	v, ok := b.m[key]
	return v, ok, nil
}

func (b *mapBacking) Put(key, val string) error { return nil }

// TestPeekHasNoSideEffects pins Peek's contract for the cluster peer
// endpoint: it reads memory and the backing, but moves no statistics
// and promotes nothing — a fleet of peers probing this node must not
// inflate its hit ratio or reshape its memory tier.
func TestPeekHasNoSideEffects(t *testing.T) {
	b := &mapBacking{m: map[string]string{"deep": "durable-val"}}
	c := NewWithBacking(0, b)
	if _, _, err := c.Do(context.Background(), "mem", func() (string, error) { return "mem-val", nil }); err != nil {
		t.Fatal(err)
	}
	statsBefore := c.Stats()
	lenBefore := c.Len()

	if v, ok := c.Peek("mem"); !ok || v != "mem-val" {
		t.Fatalf("Peek(mem) = %q, %v", v, ok)
	}
	if v, ok := c.Peek("deep"); !ok || v != "durable-val" {
		t.Fatalf("Peek(deep) = %q, %v", v, ok)
	}
	if _, ok := c.Peek("absent"); ok {
		t.Fatal("Peek(absent) claimed a hit")
	}

	if got := c.Stats(); got != statsBefore {
		t.Fatalf("Peek moved statistics: %+v -> %+v", statsBefore, got)
	}
	if got := c.Len(); got != lenBefore {
		t.Fatalf("Peek promoted into memory: Len %d -> %d", lenBefore, got)
	}
	// Contrast: Lookup is the counted path and does promote.
	if v, ok := c.Lookup("deep"); !ok || v != "durable-val" {
		t.Fatalf("Lookup(deep) = %q, %v", v, ok)
	}
	after := c.Stats()
	if after.Hits != statsBefore.Hits+1 || after.BackingHits != statsBefore.BackingHits+1 {
		t.Fatalf("Lookup stats = %+v, want one hit and one backing hit over %+v", after, statsBefore)
	}
	if c.Len() != lenBefore+1 {
		t.Fatalf("Lookup did not promote: Len %d", c.Len())
	}
}

// TestPeekBackingErrorReadsAsAbsent: a failing durable tier must make
// peer probes miss, not fail — the prober's fallback (recompute) is
// always correct.
func TestPeekBackingErrorReadsAsAbsent(t *testing.T) {
	b := &mapBacking{m: map[string]string{"k": "v"}, err: errors.New("disk gone")}
	c := NewWithBacking(0, b)
	if _, ok := c.Peek("k"); ok {
		t.Fatal("Peek returned a value through a failing backing")
	}
	if got := c.Stats(); got.BackingErrors != 0 {
		t.Fatalf("Peek counted a backing error (%+v); it must be side-effect free", got)
	}
}
