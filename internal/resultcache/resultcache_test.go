package resultcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoComputesOncePerKey(t *testing.T) {
	c := New(0)
	var runs atomic.Int64
	fn := func() (string, error) { runs.Add(1); return "r", nil }

	v, out, err := c.Do(context.Background(), "k", fn)
	if err != nil || v != "r" || out != Miss {
		t.Fatalf("first Do = %q, %v, %v; want r, miss, nil", v, out, err)
	}
	v, out, err = c.Do(context.Background(), "k", fn)
	if err != nil || v != "r" || out != Hit {
		t.Fatalf("second Do = %q, %v, %v; want r, hit, nil", v, out, err)
	}
	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", runs.Load())
	}
	if got, ok := c.Get("k"); !ok || got != "r" {
		t.Fatalf("Get = %q, %v; want r, true", got, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Coalesced != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if r := s.HitRatio(); r != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", r)
	}
}

// TestDoCoalescesConcurrent: many goroutines requesting the same key
// while the computation is in flight share one run.
func TestDoCoalescesConcurrent(t *testing.T) {
	c := New(0)
	var runs atomic.Int64
	inFn := make(chan struct{})
	release := make(chan struct{})
	const waiters = 16

	var wg sync.WaitGroup
	leaderDone := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.Do(context.Background(), "k", func() (string, error) {
			close(inFn)
			<-release
			runs.Add(1)
			return "shared", nil
		})
		leaderDone <- err
	}()
	<-inFn // leader is inside fn; everyone below must coalesce

	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, out, err := c.Do(context.Background(), "k", func() (string, error) {
				return "", errors.New("second run must not happen")
			})
			// A waiter that reaches Do after the leader completes is a
			// legitimate Hit; what may never happen is a second run.
			if err == nil && (v != "shared" || out == Miss) {
				err = fmt.Errorf("got %q, %v; want shared via hit or coalesce", v, out)
			}
			errs <- err
		}()
	}
	// Let all waiters block, then release the leader. A sleep-free
	// handshake is impossible here (waiters park inside Do), but the
	// assertion below does not depend on when release happens.
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("computation ran %d times, want 1", runs.Load())
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits+s.Coalesced != waiters {
		t.Fatalf("stats = %+v, want 1 miss and %d hit+coalesced", s, waiters)
	}
}

func TestDoDoesNotCacheErrors(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do(context.Background(), "k", func() (string, error) { calls++; return "", boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed result should not be cached")
	}
	v, out, err := c.Do(context.Background(), "k", func() (string, error) { calls++; return "ok", nil })
	if err != nil || v != "ok" || out != Miss {
		t.Fatalf("retry = %q, %v, %v", v, out, err)
	}
	if calls != 2 {
		t.Fatalf("fn called %d times, want 2 (failure then retry)", calls)
	}
}

func TestCoalescedWaiterHonorsContext(t *testing.T) {
	c := New(0)
	inFn := make(chan struct{})
	release := make(chan struct{})
	go c.Do(context.Background(), "k", func() (string, error) {
		close(inFn)
		<-release
		return "late", nil
	})
	<-inFn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, out, err := c.Do(ctx, "k", nil)
	if !errors.Is(err, context.Canceled) || out != Coalesced {
		t.Fatalf("cancelled waiter = %v, %v; want coalesced, context.Canceled", out, err)
	}
	close(release)
	// The leader's result must still land for future callers.
	v, _, err := c.Do(context.Background(), "k", nil)
	if err != nil || v != "late" {
		t.Fatalf("post-cancel Do = %q, %v", v, err)
	}
}

func TestCapacityEvictsOldest(t *testing.T) {
	c := New(2)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.Do(context.Background(), key, func() (string, error) { return key, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 should have been evicted (FIFO, cap 2)")
	}
	for _, key := range []string{"k1", "k2"} {
		if _, ok := c.Get(key); !ok {
			t.Fatalf("%s should survive", key)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

// TestDoConcurrentDistinctKeys: hammer the cache from many goroutines
// across a small key space; every call must observe the key's value and
// the run count per key must be exactly one. Run with -race.
func TestDoConcurrentDistinctKeys(t *testing.T) {
	c := New(0)
	const keys = 8
	var runs [keys]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4*keys; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := g % keys
			v, _, err := c.Do(context.Background(), fmt.Sprintf("k%d", k), func() (string, error) {
				runs[k].Add(1)
				return fmt.Sprintf("v%d", k), nil
			})
			if err != nil || v != fmt.Sprintf("v%d", k) {
				t.Errorf("key %d: got %q, %v", k, v, err)
			}
		}(g)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if n := runs[k].Load(); n != 1 {
			t.Fatalf("key %d ran %d times, want 1", k, n)
		}
	}
}

// fakeBacking is an in-memory Backing with injectable failures, for
// exercising the durable layer without a filesystem.
type fakeBacking struct {
	mu     sync.Mutex
	m      map[string]string
	getErr error
	putErr error
	gets   int
	puts   int
}

func newFakeBacking() *fakeBacking { return &fakeBacking{m: make(map[string]string)} }

func (b *fakeBacking) Get(key string) (string, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gets++
	if b.getErr != nil {
		return "", false, b.getErr
	}
	v, ok := b.m[key]
	return v, ok, nil
}

func (b *fakeBacking) Put(key, val string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.puts++
	if b.putErr != nil {
		return b.putErr
	}
	b.m[key] = val
	return nil
}

// TestBackingWriteThroughAndReadThrough: a computed result lands in the
// backing store, and a fresh cache over the same backing serves it as a
// Hit without running the computation — the restart survival property.
func TestBackingWriteThroughAndReadThrough(t *testing.T) {
	b := newFakeBacking()
	c1 := NewWithBacking(0, b)
	v, out, err := c1.Do(context.Background(), "k", func() (string, error) { return "computed", nil })
	if err != nil || v != "computed" || out != Miss {
		t.Fatalf("Do = %q, %v, %v", v, out, err)
	}
	if b.m["k"] != "computed" {
		t.Fatalf("backing not written through: %v", b.m)
	}

	// "Restart": a brand-new cache, same backing.
	c2 := NewWithBacking(0, b)
	v, out, err = c2.Do(context.Background(), "k", func() (string, error) {
		return "", errors.New("must not recompute a durable result")
	})
	if err != nil || v != "computed" || out != Hit {
		t.Fatalf("restarted Do = %q, %v, %v; want durable hit", v, out, err)
	}
	s := c2.Stats()
	if s.Hits != 1 || s.BackingHits != 1 || s.Misses != 0 {
		t.Fatalf("restarted stats = %+v", s)
	}
	// Promoted to memory: the next read does not touch the disk again.
	gets := b.gets
	if v, out, _ := c2.Do(context.Background(), "k", nil); v != "computed" || out != Hit {
		t.Fatalf("memory hit = %q, %v", v, out)
	}
	if b.gets != gets {
		t.Fatalf("memory hit went to backing (%d reads)", b.gets-gets)
	}
}

// TestLookupCountsHits: the counted peek serves from memory and from
// the backing store, incrementing Hits both ways, and counts nothing on
// a miss (the later Do records the Miss).
func TestLookupCountsHits(t *testing.T) {
	b := newFakeBacking()
	b.m["disk"] = "from disk"
	c := NewWithBacking(0, b)

	if _, ok := c.Lookup("absent"); ok {
		t.Fatal("Lookup of absent key hit")
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("miss was counted: %+v", s)
	}

	if v, ok := c.Lookup("disk"); !ok || v != "from disk" {
		t.Fatalf("Lookup(disk) = %q, %v", v, ok)
	}
	if s := c.Stats(); s.Hits != 1 || s.BackingHits != 1 {
		t.Fatalf("stats after disk lookup = %+v", s)
	}

	c.Do(context.Background(), "mem", func() (string, error) { return "in memory", nil })
	if v, ok := c.Lookup("mem"); !ok || v != "in memory" {
		t.Fatalf("Lookup(mem) = %q, %v", v, ok)
	}
	if s := c.Stats(); s.Hits != 2 || s.BackingHits != 1 || s.Misses != 1 {
		t.Fatalf("stats after memory lookup = %+v", s)
	}
}

// TestBackingFailuresDegradeGracefully: a failing backing read computes
// instead; a failing write keeps the result memory-only. Both count
// BackingErrors and neither fails the caller.
func TestBackingFailuresDegradeGracefully(t *testing.T) {
	b := newFakeBacking()
	b.getErr = errors.New("read io error")
	b.putErr = errors.New("write io error")
	c := NewWithBacking(0, b)

	v, out, err := c.Do(context.Background(), "k", func() (string, error) { return "computed", nil })
	if err != nil || v != "computed" || out != Miss {
		t.Fatalf("Do = %q, %v, %v", v, out, err)
	}
	if len(b.m) != 0 {
		t.Fatalf("failed Put stored anyway: %v", b.m)
	}
	// Still served from memory afterwards.
	if v, ok := c.Lookup("k"); !ok || v != "computed" {
		t.Fatalf("Lookup = %q, %v", v, ok)
	}
	if _, ok := c.Lookup("other"); ok {
		t.Fatal("Lookup hit through a failing backing")
	}
	if s := c.Stats(); s.BackingErrors != 3 { // Do read + Do write + Lookup read
		t.Fatalf("stats = %+v, want 3 backing errors", s)
	}
}

// TestBackingMemoryEvictionKeepsDurable: an entry evicted from the
// bounded memory tier is still served from the backing store.
func TestBackingMemoryEvictionKeepsDurable(t *testing.T) {
	b := newFakeBacking()
	c := NewWithBacking(1, b)
	c.Do(context.Background(), "k0", func() (string, error) { return "v0", nil })
	c.Do(context.Background(), "k1", func() (string, error) { return "v1", nil }) // evicts k0 from memory
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 should be evicted from memory")
	}
	v, out, err := c.Do(context.Background(), "k0", func() (string, error) {
		return "", errors.New("durable entry recomputed")
	})
	if err != nil || v != "v0" || out != Hit {
		t.Fatalf("evicted-but-durable Do = %q, %v, %v", v, out, err)
	}
}
