package resultcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoComputesOncePerKey(t *testing.T) {
	c := New(0)
	var runs atomic.Int64
	fn := func() (string, error) { runs.Add(1); return "r", nil }

	v, out, err := c.Do(context.Background(), "k", fn)
	if err != nil || v != "r" || out != Miss {
		t.Fatalf("first Do = %q, %v, %v; want r, miss, nil", v, out, err)
	}
	v, out, err = c.Do(context.Background(), "k", fn)
	if err != nil || v != "r" || out != Hit {
		t.Fatalf("second Do = %q, %v, %v; want r, hit, nil", v, out, err)
	}
	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", runs.Load())
	}
	if got, ok := c.Get("k"); !ok || got != "r" {
		t.Fatalf("Get = %q, %v; want r, true", got, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Coalesced != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if r := s.HitRatio(); r != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", r)
	}
}

// TestDoCoalescesConcurrent: many goroutines requesting the same key
// while the computation is in flight share one run.
func TestDoCoalescesConcurrent(t *testing.T) {
	c := New(0)
	var runs atomic.Int64
	inFn := make(chan struct{})
	release := make(chan struct{})
	const waiters = 16

	var wg sync.WaitGroup
	leaderDone := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := c.Do(context.Background(), "k", func() (string, error) {
			close(inFn)
			<-release
			runs.Add(1)
			return "shared", nil
		})
		leaderDone <- err
	}()
	<-inFn // leader is inside fn; everyone below must coalesce

	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, out, err := c.Do(context.Background(), "k", func() (string, error) {
				return "", errors.New("second run must not happen")
			})
			// A waiter that reaches Do after the leader completes is a
			// legitimate Hit; what may never happen is a second run.
			if err == nil && (v != "shared" || out == Miss) {
				err = fmt.Errorf("got %q, %v; want shared via hit or coalesce", v, out)
			}
			errs <- err
		}()
	}
	// Let all waiters block, then release the leader. A sleep-free
	// handshake is impossible here (waiters park inside Do), but the
	// assertion below does not depend on when release happens.
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := <-leaderDone; err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 1 {
		t.Fatalf("computation ran %d times, want 1", runs.Load())
	}
	if s := c.Stats(); s.Misses != 1 || s.Hits+s.Coalesced != waiters {
		t.Fatalf("stats = %+v, want 1 miss and %d hit+coalesced", s, waiters)
	}
}

func TestDoDoesNotCacheErrors(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	calls := 0
	_, _, err := c.Do(context.Background(), "k", func() (string, error) { calls++; return "", boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed result should not be cached")
	}
	v, out, err := c.Do(context.Background(), "k", func() (string, error) { calls++; return "ok", nil })
	if err != nil || v != "ok" || out != Miss {
		t.Fatalf("retry = %q, %v, %v", v, out, err)
	}
	if calls != 2 {
		t.Fatalf("fn called %d times, want 2 (failure then retry)", calls)
	}
}

func TestCoalescedWaiterHonorsContext(t *testing.T) {
	c := New(0)
	inFn := make(chan struct{})
	release := make(chan struct{})
	go c.Do(context.Background(), "k", func() (string, error) {
		close(inFn)
		<-release
		return "late", nil
	})
	<-inFn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, out, err := c.Do(ctx, "k", nil)
	if !errors.Is(err, context.Canceled) || out != Coalesced {
		t.Fatalf("cancelled waiter = %v, %v; want coalesced, context.Canceled", out, err)
	}
	close(release)
	// The leader's result must still land for future callers.
	v, _, err := c.Do(context.Background(), "k", nil)
	if err != nil || v != "late" {
		t.Fatalf("post-cancel Do = %q, %v", v, err)
	}
}

func TestCapacityEvictsOldest(t *testing.T) {
	c := New(2)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, _, err := c.Do(context.Background(), key, func() (string, error) { return key, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 should have been evicted (FIFO, cap 2)")
	}
	for _, key := range []string{"k1", "k2"} {
		if _, ok := c.Get(key); !ok {
			t.Fatalf("%s should survive", key)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

// TestDoConcurrentDistinctKeys: hammer the cache from many goroutines
// across a small key space; every call must observe the key's value and
// the run count per key must be exactly one. Run with -race.
func TestDoConcurrentDistinctKeys(t *testing.T) {
	c := New(0)
	const keys = 8
	var runs [keys]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4*keys; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			k := g % keys
			v, _, err := c.Do(context.Background(), fmt.Sprintf("k%d", k), func() (string, error) {
				runs[k].Add(1)
				return fmt.Sprintf("v%d", k), nil
			})
			if err != nil || v != fmt.Sprintf("v%d", k) {
				t.Errorf("key %d: got %q, %v", k, v, err)
			}
		}(g)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if n := runs[k].Load(); n != 1 {
			t.Fatalf("key %d ran %d times, want 1", k, n)
		}
	}
}
