package ppm

import (
	"fmt"
	"math"
)

// BC selects the domain boundary condition.
type BC int

const (
	// Periodic wraps the domain in both directions.
	Periodic BC = iota
	// Outflow copies the edge state outward (zero-gradient).
	Outflow
)

// Grid is a 2-D patch of gas with Pad-deep ghost frames, stored as
// primitive-variable arrays in row-major padded layout.
type Grid struct {
	W, H int // interior zones
	// stride = W + 2 Pad.
	Rho, U, V, P []float64
}

// NewGrid allocates a quiescent (ρ=1, p=1) grid.
func NewGrid(w, h int) (*Grid, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("ppm: grid %dx%d invalid", w, h)
	}
	n := (w + 2*Pad) * (h + 2*Pad)
	g := &Grid{
		W: w, H: h,
		Rho: make([]float64, n), U: make([]float64, n),
		V: make([]float64, n), P: make([]float64, n),
	}
	for i := range g.Rho {
		g.Rho[i] = 1
		g.P[i] = 1
	}
	return g, nil
}

// Stride reports the padded row length.
func (g *Grid) Stride() int { return g.W + 2*Pad }

// Idx addresses zone (i,j) where (0,0) is the first interior zone.
func (g *Grid) Idx(i, j int) int { return (j+Pad)*g.Stride() + (i + Pad) }

// Set assigns primitives at interior zone (i,j).
func (g *Grid) Set(i, j int, rho, u, v, p float64) {
	at := g.Idx(i, j)
	g.Rho[at], g.U[at], g.V[at], g.P[at] = rho, u, v, p
}

// At reads primitives at interior zone (i,j).
func (g *Grid) At(i, j int) (rho, u, v, p float64) {
	at := g.Idx(i, j)
	return g.Rho[at], g.U[at], g.V[at], g.P[at]
}

// FillGhosts applies the domain boundary condition to the ghost frame.
func (g *Grid) FillGhosts(bc BC) {
	s := g.Stride()
	rows := g.H + 2*Pad
	wrap := func(v, n int) int { return ((v-Pad)%n+n)%n + Pad }
	clamp := func(v, n int) int {
		if v < Pad {
			return Pad
		}
		if v >= n+Pad {
			return n + Pad - 1
		}
		return v
	}
	for j := 0; j < rows; j++ {
		for i := 0; i < s; i++ {
			inJ := j >= Pad && j < g.H+Pad
			inI := i >= Pad && i < g.W+Pad
			if inI && inJ {
				continue
			}
			var si, sj int
			if bc == Periodic {
				si, sj = wrap(i, g.W), wrap(j, g.H)
			} else {
				si, sj = clamp(i, g.W), clamp(j, g.H)
			}
			dst := j*s + i
			src := sj*s + si
			g.Rho[dst] = g.Rho[src]
			g.U[dst] = g.U[src]
			g.V[dst] = g.V[src]
			g.P[dst] = g.P[src]
		}
	}
}

// MaxWavespeed scans the interior.
func (g *Grid) MaxWavespeed() float64 {
	var m float64
	for j := 0; j < g.H; j++ {
		base := g.Idx(0, j)
		for i := 0; i < g.W; i++ {
			at := base + i
			c := math.Sqrt(Gamma * g.P[at] / g.Rho[at])
			s := math.Max(math.Abs(g.U[at]), math.Abs(g.V[at])) + c
			if s > m {
				m = s
			}
		}
	}
	return m
}

// SweepX applies the x-direction PPM sweep to every row, updating cells
// [3, W+2Pad-3) of each padded row — interior plus one ghost column
// margin, so the subsequent y-sweep sees x-updated data in its stencil.
func (g *Grid) SweepX(dtdx float64, pc *Pencil) {
	s := g.Stride()
	rows := g.H + 2*Pad
	for j := 0; j < rows; j++ {
		row := j * s
		copy(pc.Rho[:s], g.Rho[row:row+s])
		copy(pc.U[:s], g.U[row:row+s])
		copy(pc.V[:s], g.V[row:row+s])
		copy(pc.P[:s], g.P[row:row+s])
		pc.Sweep(3, s-3, dtdx)
		copy(g.Rho[row+3:row+s-3], pc.Rho[3:s-3])
		copy(g.U[row+3:row+s-3], pc.U[3:s-3])
		copy(g.V[row+3:row+s-3], pc.V[3:s-3])
		copy(g.P[row+3:row+s-3], pc.P[3:s-3])
	}
}

// SweepY applies the y-direction sweep to the interior columns. The
// transverse velocity swaps roles: the pencil's U is the sweep-direction
// velocity (v), and V carries u.
func (g *Grid) SweepY(dtdy float64, pc *Pencil) {
	s := g.Stride()
	rows := g.H + 2*Pad
	for i := Pad; i < g.W+Pad; i++ {
		for j := 0; j < rows; j++ {
			at := j*s + i
			pc.Rho[j] = g.Rho[at]
			pc.U[j] = g.V[at] // sweep-direction velocity
			pc.V[j] = g.U[at]
			pc.P[j] = g.P[at]
		}
		pc.Sweep(Pad-1, g.H+Pad+1, dtdy)
		for j := Pad - 1; j < g.H+Pad+1; j++ {
			at := j*s + i
			g.Rho[at] = pc.Rho[j]
			g.V[at] = pc.U[j]
			g.U[at] = pc.V[j]
			g.P[at] = pc.P[j]
		}
	}
}

// Step advances the grid one split timestep with the given CFL number,
// returning dt. Zone spacing is unity.
func (g *Grid) Step(bc BC, cfl float64, pc *Pencil) float64 {
	g.FillGhosts(bc)
	smax := g.MaxWavespeed()
	dt := cfl / math.Max(smax, 1e-12)
	g.SweepX(dt, pc)
	g.SweepY(dt, pc)
	return dt
}

// StepWithDt advances using an externally supplied dt (the tiled domain
// computes one global dt for all tiles).
func (g *Grid) StepWithDt(dt float64, pc *Pencil) {
	g.SweepX(dt, pc)
	g.SweepY(dt, pc)
}

// TotalMass sums ρ over the interior.
func (g *Grid) TotalMass() float64 {
	var m float64
	for j := 0; j < g.H; j++ {
		for i := 0; i < g.W; i++ {
			m += g.Rho[g.Idx(i, j)]
		}
	}
	return m
}

// TotalEnergy sums total energy over the interior.
func (g *Grid) TotalEnergy() float64 {
	var e float64
	for j := 0; j < g.H; j++ {
		for i := 0; i < g.W; i++ {
			at := g.Idx(i, j)
			e += g.P[at]/(Gamma-1) + 0.5*g.Rho[at]*(g.U[at]*g.U[at]+g.V[at]*g.V[at])
		}
	}
	return e
}
