package ppm

import (
	"fmt"

	"spp1000/internal/machine"
	"spp1000/internal/perfmodel"
	"spp1000/internal/runner"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
)

// Per-sweep-cell operation counts of the PPM kernel in ppm.go:
// four-variable reconstruction with limiting, one HLL flux, and the
// conservative update with the primitive/conserved conversions.
const (
	sweepCellFlops   = 260
	sweepCellDivides = 6
	sweepCellIntOps  = 150
	sweepCellHits    = 90
	// sweepCellLines is the streaming line traffic per processed cell
	// (pencil load/store plus flux scratch).
	sweepCellLines = 2.2
	// rowFixedCycles is the per-pencil setup cost (copies in/out,
	// boundary edge handling).
	rowFixedCycles = 900
	wavespeedFlops = 12
)

// ZoneFlops is the counted floating-point work per interior zone per
// full timestep (both sweeps + wavespeed scan), used for Mflop/s.
func ZoneFlops() int64 { return 2*sweepCellFlops + 2*sweepCellDivides*2 + wavespeedFlops }

// Config is one Table 2 configuration.
type Config struct {
	W, H   int // grid zones
	TX, TY int // tile decomposition
}

func (c Config) String() string {
	return fmt.Sprintf("%dx%d grid, %dx%d tiles", c.W, c.H, c.TX, c.TY)
}

// The Table 2 configurations.
var (
	Table2A = Config{120, 480, 4, 16}  // 30×30 tiles
	Table2B = Config{120, 480, 12, 48} // 10×10 tiles
	Table2C = Config{240, 960, 4, 16}  // 60×60 tiles
)

// Result is one timed PPM run.
type Result struct {
	Config  Config
	Procs   int
	Steps   int
	Seconds float64
	Mflops  float64
}

func (r Result) String() string {
	return fmt.Sprintf("ppm %v p=%d: %.3f s/step, %.1f Mflop/s",
		r.Config, r.Procs, r.Seconds/float64(r.Steps), r.Mflops)
}

// tileChunk models the per-step work of one tile, exactly mirroring the
// loop structure of Grid.SweepX/SweepY: the x-sweep processes every
// padded row (the redundant ghost-frame computation that makes small
// tiles less efficient), the y-sweep the interior columns.
func tileChunk(tw, th int, hypernodes, procs int) perfmodel.Chunk {
	xCells := int64((th + 2*Pad) * (tw + 2*Pad - 6))
	yCells := int64(tw * (th + 2))
	cells := xCells + yCells
	rows := int64((th + 2*Pad) + tw)
	zones := int64(tw * th)

	c := perfmodel.Chunk{
		Flops:     cells*sweepCellFlops + zones*wavespeedFlops,
		Divides:   cells * sweepCellDivides,
		IntOps:    cells*sweepCellIntOps + rows*rowFixedCycles,
		CacheHits: cells * sweepCellHits,
	}
	c.LocalMisses += int64(float64(cells) * sweepCellLines)

	// Direct-mapped conflict misses: the sweeps keep ~9 same-sized
	// arrays (primitives, conserved scratch, fluxes) live per tile, and
	// with a direct-mapped cache their same-index lines evict each
	// other at a rate that grows with the tile footprint. Calibrated
	// against the paper's three tile sizes (10×10, 30×30, 60×60 →
	// 23.8, 29.9, ≈29.6 Mflop/s per CPU).
	conflict := 0.115 * (float64(tw) - 7)
	if conflict < 0 {
		conflict = 0
	}
	if conflict > 4.5 {
		conflict = 4.5
	}
	c.LocalMisses += int64(float64(cells) * conflict)

	// Ghost exchange: the frame cells are copied from neighbouring
	// tiles' interiors — shared-memory traffic over the crossbar, part
	// of it over the rings when the team spans hypernodes.
	ghostCells := int64((tw+2*Pad)*(th+2*Pad) - tw*th)
	ghostLines := ghostCells * 4 * 8 / topology.CacheLineBytes
	if hypernodes > 1 {
		threadsPerHN := int64(procs / hypernodes)
		if threadsPerHN < 1 {
			threadsPerHN = 1
		}
		imports := ghostLines / 4 // boundary tiles' remote neighbours
		c.GlobalMisses += imports
		c.HypernodeMisses += ghostLines - imports
	} else {
		c.HypernodeMisses += ghostLines
	}
	return c
}

// Run times one Table 2 configuration on the simulated machine: tiles
// are dealt to threads in blocks, each step is ghost exchange → global
// dt reduction (a barrier) → per-tile sweeps → step barrier.
func Run(cfg Config, procs, steps int) (Result, error) {
	nt := cfg.TX * cfg.TY
	if nt%procs != 0 {
		return Result{}, fmt.Errorf("ppm: %d tiles not divisible by %d procs", nt, procs)
	}
	hn := (procs + topology.CPUsPerNode - 1) / topology.CPUsPerNode
	if hn < 1 {
		hn = 1
	}
	m, err := machine.New(machine.Config{Hypernodes: hn})
	if err != nil {
		return Result{}, err
	}
	tw, th := cfg.W/cfg.TX, cfg.H/cfg.TY
	perThread := nt / procs
	chunk := tileChunk(tw, th, hn, procs)
	tileCycles := perfmodel.Cycles(m.P, chunk)
	// dt reduction scan: part of the tile sweep chunk already; the
	// reduction itself is a barrier plus a tiny serial combine.
	bar := threads.NewBarrier(m, procs, 0)
	elapsed, err := threads.RunTeam(m, procs, threads.HighLocality, func(th_ *machine.Thread, tid int) {
		for s := 0; s < steps; s++ {
			// Exchange + local wavespeed scan happen per tile within
			// the chunk; two barriers bound the dt reduction.
			bar.Wait(th_)
			th_.ComputeCycles(int64(perThread) * tileCycles)
			bar.Wait(th_)
		}
	})
	if err != nil {
		return Result{}, err
	}
	sec := elapsed.Seconds()
	fl := ZoneFlops() * int64(cfg.W*cfg.H) * int64(steps)
	return Result{
		Config: cfg, Procs: procs, Steps: steps,
		Seconds: sec, Mflops: float64(fl) / sec / 1e6,
	}, nil
}

// Table2 reproduces the paper's Table 2 rows. Each tiling × processor
// count is an independent simulation; the rows run on the host worker
// pool and come back in table order.
func Table2(steps int) ([]Result, error) {
	rows := []struct {
		cfg   Config
		procs int
	}{
		{Table2A, 1}, {Table2A, 2}, {Table2A, 4}, {Table2A, 8},
		{Table2B, 1}, {Table2B, 2}, {Table2B, 4}, {Table2B, 8},
		{Table2A, 1}, {Table2C, 4},
	}
	return runner.Map(len(rows), func(i int) (Result, error) {
		return Run(rows[i].cfg, rows[i].procs, steps)
	})
}
