package ppm

import (
	"math"
	"testing"
	"testing/quick"

	"spp1000/internal/rng"
)

func TestPrimConsRoundTrip(t *testing.T) {
	prop := func(r8, u8, v8, p8 uint8) bool {
		rho := 0.1 + float64(r8)/64
		u := (float64(u8) - 128) / 64
		v := (float64(v8) - 128) / 64
		p := 0.1 + float64(p8)/64
		c := consFromPrim(rho, u, v, p)
		r2, u2, v2, p2 := primFromCons(c)
		return math.Abs(r2-rho) < 1e-12 && math.Abs(u2-u) < 1e-12 &&
			math.Abs(v2-v) < 1e-12 && math.Abs(p2-p) < 1e-10
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPPMFacesConstantField(t *testing.T) {
	aL, aR := ppmFaces(3, 3, 3, 3, 3)
	if aL != 3 || aR != 3 {
		t.Fatalf("constant field edges = %v,%v", aL, aR)
	}
}

func TestPPMFacesMonotone(t *testing.T) {
	// Edges must stay within the neighbouring cell averages (no new
	// extrema) for arbitrary smooth/discontinuous data.
	prop := func(vals [5]uint8) bool {
		a := [5]float64{}
		for i, v := range vals {
			a[i] = float64(v) / 16
		}
		aL, aR := ppmFaces(a[0], a[1], a[2], a[3], a[4])
		lo := math.Min(a[1], math.Min(a[2], a[3]))
		hi := math.Max(a[1], math.Max(a[2], a[3]))
		return aL >= lo-1e-12 && aL <= hi+1e-12 && aR >= lo-1e-12 && aR <= hi+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHLLFluxConsistency(t *testing.T) {
	// Equal states: HLL reduces to the physical flux.
	f := hllFlux(1, 0.5, -0.2, 2, 1, 0.5, -0.2, 2)
	want := physFlux(1, 0.5, -0.2, 2)
	for k := 0; k < NVars; k++ {
		if math.Abs(f[k]-want[k]) > 1e-12 {
			t.Fatalf("flux[%d] = %v, want %v", k, f[k], want[k])
		}
	}
	// Supersonic left-moving flow: upwind flux.
	f = hllFlux(1, -5, 0, 1, 1, -5, 0, 1)
	want = physFlux(1, -5, 0, 1)
	for k := 0; k < NVars; k++ {
		if math.Abs(f[k]-want[k]) > 1e-12 {
			t.Fatal("supersonic flux should be pure upwind")
		}
	}
}

func TestUniformFlowPreserved(t *testing.T) {
	g, err := NewGrid(24, 16)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < g.H; j++ {
		for i := 0; i < g.W; i++ {
			g.Set(i, j, 1.3, 0.4, -0.2, 1.7)
		}
	}
	pc := NewPencil(g.Stride() + g.H + 2*Pad)
	for s := 0; s < 5; s++ {
		g.Step(Periodic, 0.4, pc)
	}
	for j := 0; j < g.H; j++ {
		for i := 0; i < g.W; i++ {
			rho, u, v, p := g.At(i, j)
			if math.Abs(rho-1.3) > 1e-11 || math.Abs(u-0.4) > 1e-11 ||
				math.Abs(v+0.2) > 1e-11 || math.Abs(p-1.7) > 1e-10 {
				t.Fatalf("uniform flow disturbed at (%d,%d): %v %v %v %v", i, j, rho, u, v, p)
			}
		}
	}
}

func TestMassConservedPeriodic(t *testing.T) {
	g, _ := NewGrid(32, 32)
	for j := 0; j < 32; j++ {
		for i := 0; i < 32; i++ {
			dx := float64(i-16) / 8
			dy := float64(j-16) / 8
			g.Set(i, j, 1+0.5*math.Exp(-(dx*dx+dy*dy)), 0, 0, 1+math.Exp(-(dx*dx+dy*dy)))
		}
	}
	m0 := g.TotalMass()
	pc := NewPencil(48)
	for s := 0; s < 20; s++ {
		g.Step(Periodic, 0.4, pc)
	}
	if rel := math.Abs(g.TotalMass()-m0) / m0; rel > 1e-10 {
		t.Fatalf("mass drifted by %v", rel)
	}
}

// sodProfile runs a Sod shock tube along x and returns the density.
func sodProfile(t *testing.T, steps int) (*Grid, []float64) {
	t.Helper()
	g, err := NewGrid(128, 8)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < g.H; j++ {
		for i := 0; i < g.W; i++ {
			if i < 64 {
				g.Set(i, j, 1.0, 0, 0, 1.0)
			} else {
				g.Set(i, j, 0.125, 0, 0, 0.1)
			}
		}
	}
	pc := NewPencil(g.Stride() + g.H + 2*Pad)
	for s := 0; s < steps; s++ {
		g.Step(Outflow, 0.4, pc)
	}
	rho := make([]float64, g.W)
	for i := 0; i < g.W; i++ {
		r, _, _, _ := g.At(i, 4)
		rho[i] = r
	}
	return g, rho
}

func TestSodShockTube(t *testing.T) {
	g, rho := sodProfile(t, 30)
	// Physical bounds.
	for i, r := range rho {
		if r < 0.12 || r > 1.001 {
			t.Fatalf("density out of bounds at %d: %v", i, r)
		}
	}
	// The left state is still undisturbed, the right state partially.
	if math.Abs(rho[2]-1.0) > 1e-6 {
		t.Fatalf("left state disturbed: %v", rho[2])
	}
	if math.Abs(rho[125]-0.125) > 1e-6 {
		t.Fatalf("right state disturbed: %v", rho[125])
	}
	// A shock has moved right of the interface: density between the
	// initial states appears right of x=64.
	foundShock := false
	for i := 66; i < 120; i++ {
		if rho[i] > 0.2 && rho[i] < 0.6 {
			foundShock = true
			break
		}
	}
	if !foundShock {
		t.Fatal("no post-shock plateau found")
	}
	// y-invariance: the problem is 1-D, every row identical.
	for i := 0; i < g.W; i += 16 {
		r0, _, _, _ := g.At(i, 1)
		r1, _, _, _ := g.At(i, 6)
		if math.Abs(r0-r1) > 1e-12 {
			t.Fatalf("1-D problem became y-dependent at %d", i)
		}
	}
	// Roughly monotone decreasing from left to right (first-order
	// smearing; the start-up glitch at the initial discontinuity is
	// allowed a few percent).
	for i := 1; i < g.W; i++ {
		if rho[i] > rho[i-1]+0.06 {
			t.Fatalf("density oscillation at %d: %v -> %v", i, rho[i-1], rho[i])
		}
	}
}

func TestBlastSymmetry(t *testing.T) {
	// A centered pressure blast on a symmetric grid must stay
	// mirror-symmetric in both axes through the split sweeps.
	n := 32
	g, _ := NewGrid(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			dx := float64(i) - float64(n-1)/2
			dy := float64(j) - float64(n-1)/2
			p := 0.1
			if dx*dx+dy*dy < 16 {
				p = 10
			}
			g.Set(i, j, 1, 0, 0, p)
		}
	}
	pc := NewPencil(n + 2*Pad)
	for s := 0; s < 12; s++ {
		g.Step(Periodic, 0.4, pc)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n/2; i++ {
			r1, u1, _, p1 := g.At(i, j)
			r2, u2, _, p2 := g.At(n-1-i, j)
			if math.Abs(r1-r2) > 1e-10 || math.Abs(p1-p2) > 1e-9 || math.Abs(u1+u2) > 1e-10 {
				t.Fatalf("x-mirror broken at (%d,%d): rho %v vs %v", i, j, r1, r2)
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n/2; j++ {
			r1, _, v1, _ := g.At(i, j)
			r2, _, v2, _ := g.At(i, n-1-j)
			if math.Abs(r1-r2) > 1e-10 || math.Abs(v1+v2) > 1e-10 {
				t.Fatalf("y-mirror broken at (%d,%d)", i, j)
			}
		}
	}
}

func TestTiledMatchesGlobal(t *testing.T) {
	// The tiled domain with ghost exchange must reproduce the global
	// grid evolution — the correctness of the decomposition.
	w, h := 48, 24
	init := func(set func(i, j int, rho, u, v, p float64)) {
		for j := 0; j < h; j++ {
			for i := 0; i < w; i++ {
				dx := float64(i-24) / 6
				dy := float64(j-12) / 6
				bump := math.Exp(-(dx*dx + dy*dy))
				set(i, j, 1+0.4*bump, 0.1, -0.05, 1+bump)
			}
		}
	}
	g, _ := NewGrid(w, h)
	init(g.Set)
	d, err := NewTiled(w, h, 4, 3, Periodic)
	if err != nil {
		t.Fatal(err)
	}
	init(d.Set)
	pc := NewPencil(g.Stride() + g.H + 2*Pad)
	for s := 0; s < 5; s++ {
		g.Step(Periodic, 0.4, pc)
		d.Step()
	}
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			r1, u1, v1, p1 := g.At(i, j)
			r2, u2, v2, p2 := d.At(i, j)
			if math.Abs(r1-r2) > 1e-11 || math.Abs(u1-u2) > 1e-11 ||
				math.Abs(v1-v2) > 1e-11 || math.Abs(p1-p2) > 1e-10 {
				t.Fatalf("tiled diverged at (%d,%d): %v vs %v", i, j, r1, r2)
			}
		}
	}
	if d.ExchangedBytes == 0 {
		t.Fatal("exchange accounting missing")
	}
}

// Property: random smooth initial states evolve without NaNs, negative
// densities/pressures, or mass drift.
func TestRandomSmoothStatesStayPhysical(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		g, _ := NewGrid(24, 16)
		// A few random Fourier modes on top of a quiescent state.
		type mode struct{ ax, ay, amp, phase float64 }
		var modes []mode
		for k := 0; k < 3; k++ {
			modes = append(modes, mode{
				ax:    float64(1 + r.Intn(3)),
				ay:    float64(1 + r.Intn(3)),
				amp:   0.05 + 0.15*r.Float64(),
				phase: r.Float64() * 2 * math.Pi,
			})
		}
		for j := 0; j < g.H; j++ {
			for i := 0; i < g.W; i++ {
				var s float64
				for _, md := range modes {
					s += md.amp * math.Sin(2*math.Pi*(md.ax*float64(i)/24+md.ay*float64(j)/16)+md.phase)
				}
				g.Set(i, j, 1+s, 0.2*s, -0.1*s, 1+s)
			}
		}
		m0 := g.TotalMass()
		pc := NewPencil(g.Stride() + g.H + 2*Pad)
		for step := 0; step < 10; step++ {
			g.Step(Periodic, 0.4, pc)
		}
		for j := 0; j < g.H; j++ {
			for i := 0; i < g.W; i++ {
				rho, u, v, p := g.At(i, j)
				if math.IsNaN(rho) || math.IsNaN(u) || math.IsNaN(v) || math.IsNaN(p) {
					return false
				}
				if rho <= 0 || p <= 0 || rho > 3 {
					return false
				}
			}
		}
		return math.Abs(g.TotalMass()-m0)/m0 < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestTiledValidation(t *testing.T) {
	if _, err := NewTiled(100, 100, 3, 1, Periodic); err == nil {
		t.Fatal("non-dividing tiling should be rejected")
	}
	if _, err := NewTiled(12, 12, 6, 6, Periodic); err == nil {
		t.Fatal("tiles smaller than the ghost frame should be rejected")
	}
}

func TestTable2Shape(t *testing.T) {
	res, err := Table2(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 10 {
		t.Fatalf("Table 2 has %d rows, want 10", len(res))
	}
	paper := []float64{29.9, 58.2, 118.8, 228.5, 23.8, 47.8, 95.9, 186.2, 29.9, 118.5}
	for i, r := range res {
		rel := r.Mflops/paper[i] - 1
		if rel < -0.25 || rel > 0.25 {
			t.Errorf("row %d (%v p=%d): %.1f Mflop/s vs paper %.1f (%.0f%% off)",
				i, r.Config, r.Procs, r.Mflops, paper[i], rel*100)
		}
	}
	// Structural facts: near-linear scaling, coarse tiles beat fine
	// tiles, the doubled grid runs at the same rate.
	if eff := res[3].Mflops / res[0].Mflops / 8; eff < 0.85 {
		t.Errorf("4x16 scaling efficiency at 8 procs = %.2f", eff)
	}
	if res[4].Mflops >= res[0].Mflops {
		t.Error("12x48 tiles should run below 4x16 tiles")
	}
	if r := res[9].Mflops / res[2].Mflops; r < 0.9 || r > 1.1 {
		t.Errorf("240x960 rate should match 120x480 at 4 procs: ratio %.2f", r)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{120, 480, 4, 16}, 7, 1); err == nil {
		t.Fatal("7 procs does not divide 64 tiles and should be rejected")
	}
}
