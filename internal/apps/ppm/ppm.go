// Package ppm implements the paper's PROMETHEUS-style compressible
// hydrodynamics code (§5.4): the Piecewise-Parabolic Method of Colella &
// Woodward on a structured, logically rectangular 2-D grid, parallelized
// by domain decomposition into rectangular tiles with four-deep "ghost"
// frames exchanged once per timestep.
//
// The 1-D kernel reconstructs primitive variables with PPM interface
// interpolation and monotonicity limiting, then resolves interface
// states with an HLL approximate Riemann solver (a documented
// substitution for PROMETHEUS' two-shock iteration; it preserves the
// shock-capturing behaviour and the per-zone cost structure that Table 2
// measures). Directional splitting applies the kernel along x then y.
package ppm

import "math"

// Gamma is the ideal-gas adiabatic index.
const Gamma = 1.4

// NVars is the conserved-variable count: ρ, ρu, ρv, E.
const NVars = 4

// Pad is the ghost-frame depth (paper §5.4: four grid points).
const Pad = 4

// cons/prim conversion helpers on 4-vectors.

// primFromCons converts conserved (ρ, ρu, ρv, E) to (ρ, u, v, p).
func primFromCons(c [NVars]float64) (rho, u, v, p float64) {
	rho = c[0]
	if rho < 1e-12 {
		rho = 1e-12
	}
	u = c[1] / rho
	v = c[2] / rho
	p = (Gamma - 1) * (c[3] - 0.5*rho*(u*u+v*v))
	if p < 1e-12 {
		p = 1e-12
	}
	return
}

// consFromPrim converts (ρ, u, v, p) to conserved form.
func consFromPrim(rho, u, v, p float64) [NVars]float64 {
	return [NVars]float64{
		rho, rho * u, rho * v,
		p/(Gamma-1) + 0.5*rho*(u*u+v*v),
	}
}

// ppmFaces computes the limited left/right parabola edge values of a
// cell from the five-cell stencil (Colella & Woodward eqs. 1.6–1.10).
func ppmFaces(am2, am1, a0, ap1, ap2 float64) (aL, aR float64) {
	// Fourth-order interface interpolants.
	aR = a0 + 0.5*(ap1-a0) - (1.0/6.0)*(dmq(a0, ap1, ap2)-dmq(am1, a0, ap1))/2
	aL = am1 + 0.5*(a0-am1) - (1.0/6.0)*(dmq(am1, a0, ap1)-dmq(am2, am1, a0))/2
	// Monotonicity constraints.
	if (aR-a0)*(a0-aL) <= 0 {
		return a0, a0
	}
	d := aR - aL
	if d*(a0-0.5*(aL+aR)) > d*d/6 {
		aL = 3*a0 - 2*aR
	}
	if -d*d/6 > d*(a0-0.5*(aL+aR)) {
		aR = 3*a0 - 2*aL
	}
	return aL, aR
}

// dmq is the van-Leer-limited average slope Δa_i (C&W eq. 1.8).
func dmq(am1, a0, ap1 float64) float64 {
	d := 0.5 * (ap1 - am1)
	if (ap1-a0)*(a0-am1) <= 0 {
		return 0
	}
	lim := 2 * math.Min(math.Abs(ap1-a0), math.Abs(a0-am1))
	if math.Abs(d) > lim {
		if d < 0 {
			return -lim
		}
		return lim
	}
	return d
}

// hllFlux evaluates the HLL flux between left and right primitive
// states for a sweep along the first velocity component.
func hllFlux(rhoL, uL, vL, pL, rhoR, uR, vR, pR float64) [NVars]float64 {
	cL := math.Sqrt(Gamma * pL / rhoL)
	cR := math.Sqrt(Gamma * pR / rhoR)
	sL := math.Min(uL-cL, uR-cR)
	sR := math.Max(uL+cL, uR+cR)
	fl := physFlux(rhoL, uL, vL, pL)
	if sL >= 0 {
		return fl
	}
	fr := physFlux(rhoR, uR, vR, pR)
	if sR <= 0 {
		return fr
	}
	ul := consFromPrim(rhoL, uL, vL, pL)
	ur := consFromPrim(rhoR, uR, vR, pR)
	var f [NVars]float64
	inv := 1 / (sR - sL)
	for k := 0; k < NVars; k++ {
		f[k] = (sR*fl[k] - sL*fr[k] + sL*sR*(ur[k]-ul[k])) * inv
	}
	return f
}

// physFlux is the physical Euler flux along the sweep direction.
func physFlux(rho, u, v, p float64) [NVars]float64 {
	e := p/(Gamma-1) + 0.5*rho*(u*u+v*v)
	return [NVars]float64{
		rho * u,
		rho*u*u + p,
		rho * u * v,
		(e + p) * u,
	}
}

// Pencil is the scratch for one 1-D sweep over n cells (with ghosts).
type Pencil struct {
	Rho, U, V, P []float64 // primitives
	FL           [][NVars]float64
	cons         [][NVars]float64
}

// NewPencil allocates scratch for pencils of length n.
func NewPencil(n int) *Pencil {
	return &Pencil{
		Rho: make([]float64, n), U: make([]float64, n),
		V: make([]float64, n), P: make([]float64, n),
		FL:   make([][NVars]float64, n+1),
		cons: make([][NVars]float64, n),
	}
}

// Sweep advances cells [lo,hi) of the pencil by dt/dx using PPM
// reconstruction and HLL fluxes. The pencil's primitive arrays must be
// filled for at least [lo-3, hi+3); the cons array is used as scratch.
// Results are written back into the primitive arrays for [lo,hi).
func (pc *Pencil) Sweep(lo, hi int, dtdx float64) {
	// Reconstruct interface states: for each interface i+1/2 in
	// [lo-1, hi], the left state is cell i's right edge and the right
	// state is cell i+1's left edge.
	type edge struct{ rho, u, v, p float64 }
	// Compute limited edges for cells [lo-1, hi].
	nCells := hi - lo + 2
	left := make([]edge, nCells)
	right := make([]edge, nCells)
	for c := 0; c < nCells; c++ {
		i := lo - 1 + c
		rL, rR := ppmFaces(pc.Rho[i-2], pc.Rho[i-1], pc.Rho[i], pc.Rho[i+1], pc.Rho[i+2])
		uL, uR := ppmFaces(pc.U[i-2], pc.U[i-1], pc.U[i], pc.U[i+1], pc.U[i+2])
		vL, vR := ppmFaces(pc.V[i-2], pc.V[i-1], pc.V[i], pc.V[i+1], pc.V[i+2])
		pL, pR := ppmFaces(pc.P[i-2], pc.P[i-1], pc.P[i], pc.P[i+1], pc.P[i+2])
		if rL < 1e-12 {
			rL = 1e-12
		}
		if rR < 1e-12 {
			rR = 1e-12
		}
		if pL < 1e-12 {
			pL = 1e-12
		}
		if pR < 1e-12 {
			pR = 1e-12
		}
		left[c] = edge{rL, uL, vL, pL}
		right[c] = edge{rR, uR, vR, pR}
	}
	// Fluxes at interfaces [lo, hi] (interface i is between cells i-1, i).
	for i := lo; i <= hi; i++ {
		cm := i - 1 - (lo - 1) // cell i-1 in edge arrays
		cp := i - (lo - 1)     // cell i
		l := right[cm]
		r := left[cp]
		pc.FL[i] = hllFlux(l.rho, l.u, l.v, l.p, r.rho, r.u, r.v, r.p)
	}
	// Conservative update.
	for i := lo; i < hi; i++ {
		pc.cons[i] = consFromPrim(pc.Rho[i], pc.U[i], pc.V[i], pc.P[i])
		for k := 0; k < NVars; k++ {
			pc.cons[i][k] -= dtdx * (pc.FL[i+1][k] - pc.FL[i][k])
		}
	}
	for i := lo; i < hi; i++ {
		pc.Rho[i], pc.U[i], pc.V[i], pc.P[i] = primFromCons(pc.cons[i])
	}
}

// MaxWavespeed reports max(|u|+c, |v|+c) over cells [lo,hi).
func (pc *Pencil) MaxWavespeed(lo, hi int) float64 {
	var m float64
	for i := lo; i < hi; i++ {
		c := math.Sqrt(Gamma * pc.P[i] / pc.Rho[i])
		s := math.Max(math.Abs(pc.U[i]), math.Abs(pc.V[i])) + c
		if s > m {
			m = s
		}
	}
	return m
}
