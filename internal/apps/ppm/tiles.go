package ppm

import (
	"fmt"
	"math"
)

// TiledDomain decomposes a W×H domain into tx×ty rectangular tiles,
// each with its own Pad-deep ghost frame (paper §5.4). The only
// communication is the once-per-step ghost exchange between adjacent
// tiles plus the global timestep reduction.
type TiledDomain struct {
	W, H   int
	TX, TY int
	BC     BC
	CFL    float64
	Tiles  []*Grid // row-major tile order
	pencil *Pencil
	// ExchangedBytes counts ghost-exchange traffic (for the
	// performance model and diagnostics).
	ExchangedBytes int64
}

// NewTiled builds the decomposition; tile edges must divide the domain.
func NewTiled(w, h, tx, ty int, bc BC) (*TiledDomain, error) {
	if tx < 1 || ty < 1 || w%tx != 0 || h%ty != 0 {
		return nil, fmt.Errorf("ppm: %dx%d domain not divisible into %dx%d tiles", w, h, tx, ty)
	}
	tw, th := w/tx, h/ty
	if tw < Pad || th < Pad {
		return nil, fmt.Errorf("ppm: tile %dx%d smaller than the ghost frame", tw, th)
	}
	d := &TiledDomain{W: w, H: h, TX: tx, TY: ty, BC: bc, CFL: 0.4}
	for j := 0; j < ty; j++ {
		for i := 0; i < tx; i++ {
			g, err := NewGrid(tw, th)
			if err != nil {
				return nil, err
			}
			d.Tiles = append(d.Tiles, g)
		}
	}
	n := tw + 2*Pad
	if th+2*Pad > n {
		n = th + 2*Pad
	}
	d.pencil = NewPencil(n)
	return d, nil
}

// TileW reports the interior tile width.
func (d *TiledDomain) TileW() int { return d.W / d.TX }

// TileH reports the interior tile height.
func (d *TiledDomain) TileH() int { return d.H / d.TY }

// tile returns the tile at tile-coordinates (ti, tj).
func (d *TiledDomain) tile(ti, tj int) *Grid { return d.Tiles[tj*d.TX+ti] }

// Set assigns primitives at global zone (i, j).
func (d *TiledDomain) Set(i, j int, rho, u, v, p float64) {
	tw, th := d.TileW(), d.TileH()
	d.tile(i/tw, j/th).Set(i%tw, j%th, rho, u, v, p)
}

// At reads primitives at global zone (i, j).
func (d *TiledDomain) At(i, j int) (rho, u, v, p float64) {
	tw, th := d.TileW(), d.TileH()
	return d.tile(i/tw, j/th).At(i%tw, j%th)
}

// Exchange fills every tile's ghost frame from its neighbours'
// interiors (or the domain boundary condition at the domain edge).
// This is "four rows of values exchanged between adjacent tiles once
// per time step" (§5.4).
func (d *TiledDomain) Exchange() {
	tw, th := d.TileW(), d.TileH()
	for tj := 0; tj < d.TY; tj++ {
		for ti := 0; ti < d.TX; ti++ {
			g := d.tile(ti, tj)
			s := g.Stride()
			for j := 0; j < th+2*Pad; j++ {
				for i := 0; i < tw+2*Pad; i++ {
					inI := i >= Pad && i < tw+Pad
					inJ := j >= Pad && j < th+Pad
					if inI && inJ {
						continue
					}
					// Global zone this ghost cell shadows.
					gi := ti*tw + i - Pad
					gj := tj*th + j - Pad
					switch d.BC {
					case Periodic:
						gi = ((gi % d.W) + d.W) % d.W
						gj = ((gj % d.H) + d.H) % d.H
					default: // Outflow: clamp to the domain.
						if gi < 0 {
							gi = 0
						}
						if gi >= d.W {
							gi = d.W - 1
						}
						if gj < 0 {
							gj = 0
						}
						if gj >= d.H {
							gj = d.H - 1
						}
					}
					rho, u, v, p := d.At(gi, gj)
					at := j*s + i
					g.Rho[at], g.U[at], g.V[at], g.P[at] = rho, u, v, p
					d.ExchangedBytes += 4 * 8
				}
			}
		}
	}
}

// Step advances the whole tiled domain one timestep: exchange, global
// dt reduction, then the per-tile sweeps.
func (d *TiledDomain) Step() float64 {
	d.Exchange()
	var smax float64
	for _, g := range d.Tiles {
		if s := g.MaxWavespeed(); s > smax {
			smax = s
		}
	}
	dt := d.CFL / math.Max(smax, 1e-12)
	for _, g := range d.Tiles {
		g.StepWithDt(dt, d.pencil)
	}
	return dt
}

// TotalMass sums the interior density over all tiles.
func (d *TiledDomain) TotalMass() float64 {
	var m float64
	for _, g := range d.Tiles {
		m += g.TotalMass()
	}
	return m
}
