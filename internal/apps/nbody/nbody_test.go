package nbody

import (
	"math"
	"testing"
)

func TestPlummerProperties(t *testing.T) {
	b := NewPlummer(5000, 3)
	if b.N() != 5000 {
		t.Fatalf("N = %d", b.N())
	}
	var totalM float64
	for i := 0; i < b.N(); i++ {
		totalM += b.M[i]
		r := math.Sqrt(b.X[i]*b.X[i] + b.Y[i]*b.Y[i] + b.Z[i]*b.Z[i])
		if r > 10.001 {
			t.Fatalf("body %d at radius %v, want clipped at 10", i, r)
		}
	}
	if math.Abs(totalM-1) > 1e-9 {
		t.Fatalf("total mass = %v, want 1", totalM)
	}
	// Central condensation: more than half the mass inside r=1
	// (Plummer a=1 encloses ~35%... with our clipping, check monotone
	// concentration instead: more bodies inside r=1 than in 1<r<2).
	in1, in2 := 0, 0
	for i := 0; i < b.N(); i++ {
		r := math.Sqrt(b.X[i]*b.X[i] + b.Y[i]*b.Y[i] + b.Z[i]*b.Z[i])
		if r < 1 {
			in1++
		} else if r < 2 {
			in2++
		}
	}
	if in1 < in2/2 {
		t.Fatalf("distribution not centrally condensed: %d inside r=1 vs %d in shell", in1, in2)
	}
}

func TestTreeCountsAndMass(t *testing.T) {
	b := NewPlummer(2000, 5)
	tr := Build(b)
	root := tr.nodes[0]
	if int(root.count) != b.N() {
		t.Fatalf("root count = %d, want %d", root.count, b.N())
	}
	if math.Abs(root.mass-1) > 1e-9 {
		t.Fatalf("root mass = %v, want 1", root.mass)
	}
	// Center of mass matches the direct computation.
	var cx, cy, cz float64
	for i := 0; i < b.N(); i++ {
		cx += b.M[i] * b.X[i]
		cy += b.M[i] * b.Y[i]
		cz += b.M[i] * b.Z[i]
	}
	if math.Abs(root.comX-cx) > 1e-9 || math.Abs(root.comY-cy) > 1e-9 || math.Abs(root.comZ-cz) > 1e-9 {
		t.Fatalf("root COM (%v,%v,%v) vs direct (%v,%v,%v)", root.comX, root.comY, root.comZ, cx, cy, cz)
	}
}

// Tree structural invariant: every internal node's count and mass equal
// the sum over children.
func TestTreeInternalConsistency(t *testing.T) {
	b := NewPlummer(3000, 11)
	tr := Build(b)
	for idx := range tr.nodes {
		nd := &tr.nodes[idx]
		if nd.body >= 0 {
			continue
		}
		var count int32
		var mass float64
		for _, c := range nd.children {
			if c >= 0 {
				count += tr.nodes[c].count
				mass += tr.nodes[c].mass
			}
		}
		if count != nd.count {
			t.Fatalf("node %d count %d != children sum %d", idx, nd.count, count)
		}
		if math.Abs(mass-nd.mass) > 1e-9 {
			t.Fatalf("node %d mass %v != children sum %v", idx, nd.mass, mass)
		}
	}
}

func TestForceMatchesDirectSum(t *testing.T) {
	b := NewPlummer(2000, 7)
	tr := Build(b)
	// With a tight opening angle the tree force approaches direct
	// summation (paper: "below a user supplied accuracy limit").
	var maxRel float64
	for i := 0; i < 50; i++ {
		ax, ay, az, _ := tr.Force(i, 0.3, 0.05)
		dx, dy, dz := DirectForce(b, i, 0.05)
		fm := math.Sqrt(dx*dx + dy*dy + dz*dz)
		em := math.Sqrt((ax-dx)*(ax-dx) + (ay-dy)*(ay-dy) + (az-dz)*(az-dz))
		if fm > 0 {
			rel := em / fm
			if rel > maxRel {
				maxRel = rel
			}
		}
	}
	if maxRel > 0.02 {
		t.Fatalf("max relative force error = %v, want <2%% at theta=0.3", maxRel)
	}
}

func TestTighterThetaIsMoreAccurateAndCostlier(t *testing.T) {
	b := NewPlummer(4000, 9)
	tr := Build(b)
	var errTight, errLoose float64
	var workTight, workLoose int64
	for i := 0; i < 30; i++ {
		dx, dy, dz := DirectForce(b, i, 0.05)
		fm := math.Sqrt(dx*dx + dy*dy + dz*dz)
		at, _, _, st := tr.Force(i, 0.3, 0.05)
		al, _, _, sl := tr.Force(i, 1.0, 0.05)
		errTight += math.Abs(at-dx) / fm
		errLoose += math.Abs(al-dx) / fm
		workTight += st.Interactions
		workLoose += sl.Interactions
	}
	if workTight <= workLoose {
		t.Fatalf("theta=0.3 interactions (%d) should exceed theta=1.0 (%d)", workTight, workLoose)
	}
	if errTight >= errLoose {
		t.Fatalf("theta=0.3 error (%v) should be below theta=1.0 (%v)", errTight, errLoose)
	}
}

func TestCoincidentBodiesHandled(t *testing.T) {
	b := &Bodies{
		X: []float64{1, 1, 2}, Y: []float64{1, 1, 2}, Z: []float64{1, 1, 2},
		VX: make([]float64, 3), VY: make([]float64, 3), VZ: make([]float64, 3),
		M: []float64{0.3, 0.3, 0.4},
	}
	tr := Build(b) // must not recurse forever
	if math.Abs(tr.nodes[0].mass-1.0) > 1e-9 {
		t.Fatalf("root mass %v with coincident bodies", tr.nodes[0].mass)
	}
}

func TestSortMortonPreservesBodies(t *testing.T) {
	b := NewPlummer(1000, 13)
	var sumM, sumX float64
	for i := 0; i < b.N(); i++ {
		sumM += b.M[i]
		sumX += b.X[i]
	}
	SortMorton(b)
	var sumM2, sumX2 float64
	for i := 0; i < b.N(); i++ {
		sumM2 += b.M[i]
		sumX2 += b.X[i]
	}
	if math.Abs(sumM-sumM2) > 1e-9 || math.Abs(sumX-sumX2) > 1e-9 {
		t.Fatal("Morton sort lost bodies")
	}
	// Spatial locality: mean distance between neighbours should shrink.
	dist := func(bb *Bodies) float64 {
		var d float64
		for i := 1; i < bb.N(); i++ {
			dx := bb.X[i] - bb.X[i-1]
			dy := bb.Y[i] - bb.Y[i-1]
			dz := bb.Z[i] - bb.Z[i-1]
			d += math.Sqrt(dx*dx + dy*dy + dz*dz)
		}
		return d / float64(bb.N()-1)
	}
	sorted := dist(b)
	shuffled := NewPlummer(1000, 13)
	unsorted := dist(shuffled)
	if sorted >= unsorted {
		t.Fatalf("Morton sort should improve locality: %v vs %v", sorted, unsorted)
	}
}

func TestStepConservesMomentumApproximately(t *testing.T) {
	b := NewPlummer(1500, 17)
	var px0, py0, pz0 float64
	for i := 0; i < b.N(); i++ {
		px0 += b.M[i] * b.VX[i]
		py0 += b.M[i] * b.VY[i]
		pz0 += b.M[i] * b.VZ[i]
	}
	Step(b, 0.01, 0.5, 0.05)
	var px, py, pz float64
	for i := 0; i < b.N(); i++ {
		px += b.M[i] * b.VX[i]
		py += b.M[i] * b.VY[i]
		pz += b.M[i] * b.VZ[i]
	}
	// Monopole approximation breaks exact symmetry; drift must stay small
	// relative to the velocity scale (~0.1).
	drift := math.Abs(px-px0) + math.Abs(py-py0) + math.Abs(pz-pz0)
	if drift > 0.01 {
		t.Fatalf("momentum drift = %v over one step", drift)
	}
}

func TestWorkloadCounting(t *testing.T) {
	w := CountWorkload(4096, 64, 21)
	if w.N != 4096 || len(w.MicroBlocks) != blocks {
		t.Fatalf("workload shape: %+v", w)
	}
	perParticle := float64(w.TotalInteractions()) / 4096
	// Barnes–Hut at theta=0.7: hundreds of interactions per particle.
	if perParticle < 100 || perParticle > 2000 {
		t.Fatalf("interactions/particle = %v", perParticle)
	}
	if w.Flops() <= 0 {
		t.Fatal("flops must be positive")
	}
}

// Property: sampled workload counts scale superlinearly (N log N-ish)
// but far below N² as N doubles.
func TestWorkloadScalingProperty(t *testing.T) {
	w1 := CountWorkload(4096, 32, 1)
	w2 := CountWorkload(8192, 32, 1)
	ratio := float64(w2.TotalInteractions()) / float64(w1.TotalInteractions())
	if ratio < 1.9 || ratio > 3.5 {
		t.Fatalf("interaction growth for 2x particles = %.2f, want ≈2.2 (N log N)", ratio)
	}
}

func TestRunShapeTargets(t *testing.T) {
	w := CountWorkload(32768, 64, 1)
	r1, err := Run(w, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// §5.3.2: single-processor rate 27.5 Mflop/s.
	if r1.Mflops < 20 || r1.Mflops > 35 {
		t.Errorf("single-CPU rate = %.1f Mflop/s, want ≈27.5", r1.Mflops)
	}
	r8a, err := Run(w, 8, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	r8b, err := Run(w, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 8: 2–7% degradation across hypernodes.
	deg := 1 - r8b.Mflops/r8a.Mflops
	if deg < -0.01 || deg > 0.10 {
		t.Errorf("cross-hypernode degradation = %.1f%%, want 2-7%%", deg*100)
	}
	r16, err := Run(w, 16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sp := r16.Mflops / r1.Mflops; sp < 10 || sp > 16 {
		t.Errorf("16-CPU speedup = %.1f, want ≈13-14 (384/27.5)", sp)
	}
	// Invalid proc count rejected.
	if _, err := Run(w, 3, 1, 1); err == nil {
		t.Error("procs=3 should be rejected (must divide 16)")
	}
}
