package nbody

import (
	"fmt"

	"spp1000/internal/machine"
	"spp1000/internal/perfmodel"
	"spp1000/internal/pvm"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
)

// The message-passing tree code (§5.3.2, Olson & Packer 1995): each
// task owns a particle block and a local tree; remote tree data needed
// by its traversals is packed, sent, and unpacked through PVM. The
// paper's finding: "The single processor performance of the code was
// quite good ... somewhat faster than that quoted above for the shared
// memory programming model ... The overheads of packing and sending
// messages, however, are prohibitive and overall performance is
// degraded relative to the shared memory version."
const (
	// pvmInterIntOps is below the shared-memory figure: the
	// distributed-memory code's inner loop walks task-private arrays
	// with no global-address translation.
	pvmInterIntOps = 12
	// packNodeCycles / unpackNodeCycles: marshaling one tree node into
	// or out of a message buffer.
	packNodeCycles   = 28
	unpackNodeCycles = 30
	// nodeReuse is how many of a task's interactions one imported
	// remote node serves on average.
	nodeReuse = 2
)

// pvmForceChunk is the per-task force work of the message-passing code:
// the same interactions, cheaper addressing, misses against the
// task-private tree copy.
func pvmForceChunk(w *Workload, inter int64) perfmodel.Chunk {
	c := perfmodel.Chunk{
		Flops:     inter * interFlops,
		Divides:   inter * interSqrts,
		IntOps:    inter * pvmInterIntOps,
		CacheHits: inter * interHits,
	}
	treeBytes := int64(w.TreeNodes) * NodeBytes
	missFrac := perfmodel.CapacityMissFraction(treeBytes, topology.CacheBytes) * treeReuse
	c.LocalMisses += int64(float64(inter*linesPerVisit) * missFrac)
	return c
}

// RunPVM times the message-passing tree code. Each step: every task
// packs and exchanges the tree data its peers' traversals need (the
// remote share of its interactions, derated by node reuse), then
// computes its forces, then a tag-0 round synchronizes the step.
func RunPVM(w *Workload, procs, hypernodes, steps int) (Result, error) {
	if blocks%procs != 0 {
		return Result{}, fmt.Errorf("nbody: procs %d must divide %d", procs, blocks)
	}
	m, err := machine.New(machine.Config{Hypernodes: hypernodes})
	if err != nil {
		return Result{}, err
	}
	place := threads.HighLocality
	if hypernodes > 1 {
		place = threads.Uniform
	}

	per := blocks / procs
	loads := make([]int64, procs)
	for tid := 0; tid < procs; tid++ {
		for b := tid * per; b < (tid+1)*per; b++ {
			loads[tid] += w.MicroBlocks[b]
		}
	}
	// Remote interactions per task: the fraction of a task's traversal
	// that reaches other tasks' subtrees; zero when serial.
	remoteFrac := 0.5 * float64(procs-1) / float64(procs)

	forceCycles := make([]int64, procs)
	exchangeCycles := make([]int64, procs)
	importedNodes := make([]int64, procs)
	for tid := range forceCycles {
		forceCycles[tid] = perfmodel.Cycles(m.P, pvmForceChunk(w, loads[tid]))
		nodes := int64(float64(loads[tid]) * remoteFrac / nodeReuse)
		importedNodes[tid] = nodes
		exchangeCycles[tid] = nodes * (packNodeCycles + unpackNodeCycles)
	}
	buildCycles := perfmodel.Cycles(m.P, perfmodel.Chunk{
		Flops:       int64(w.N/procs) * buildFlopsPerBody,
		IntOps:      int64(w.N/procs) * buildIntOpsPerBody,
		LocalMisses: int64(w.N/procs) * 3,
	})

	sys := pvm.NewSystem(m)
	tasks := make([]*pvm.Task, procs)
	registered := m.K.NewSemaphore("registered", 0)
	ready := m.K.NewEvent("ready")

	elapsed, err := threads.RunTeam(m, procs, place, func(th *machine.Thread, tid int) {
		tasks[tid] = sys.AddTask(th)
		registered.V()
		if tid == 0 {
			for i := 0; i < procs; i++ {
				registered.P(th.P)
			}
			ready.Set()
		} else {
			ready.Wait(th.P)
		}
		right := (tid + 1) % procs
		for s := 0; s < steps; s++ {
			// Local tree build.
			th.ComputeCycles(buildCycles)
			// Essential-tree exchange: pack the nodes the neighbour
			// ring needs, ship them around, unpack what arrives.
			if procs > 1 {
				bytes := int(importedNodes[tid]) * NodeBytes
				th.ComputeCycles(importedNodes[tid] * packNodeCycles)
				tasks[tid].Send(right, 1, bytes, nil)
				msg := tasks[tid].Recv()
				th.ComputeCycles(int64(msg.Bytes/NodeBytes) * unpackNodeCycles)
			}
			// Force computation on the assembled local+imported tree.
			th.ComputeCycles(forceCycles[tid])
			// Step synchronization: everyone reports to task 0.
			if tid == 0 {
				for i := 1; i < procs; i++ {
					tasks[0].Recv()
				}
				for i := 1; i < procs; i++ {
					tasks[0].Send(i, 2, 64, nil)
				}
			} else {
				tasks[tid].Send(0, 2, 64, nil)
				tasks[tid].Recv()
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	sec := elapsed.Seconds()
	fl := w.Flops() * int64(steps)
	return Result{
		N: w.N, Procs: procs, Hypernodes: hypernodes, Steps: steps,
		Seconds: sec, Mflops: float64(fl) / sec / 1e6,
	}, nil
}
