// Package nbody implements the paper's gravitational N-body tree code
// (§5.3): a Barnes–Hut octree with monopole (center-of-mass) expansions,
// a user-supplied opening-angle accuracy criterion, Plummer-softened
// forces, and a leapfrog integrator. The tree search is unstructured and
// makes heavy use of indirect addressing in its innermost loop — exactly
// the fine-grained global memory access pattern the paper studies.
package nbody

import (
	"math"
	"sort"

	"spp1000/internal/morton"
	"spp1000/internal/rng"
)

// Bodies is a structure-of-arrays particle set.
type Bodies struct {
	X, Y, Z    []float64
	VX, VY, VZ []float64
	M          []float64
}

// N reports the particle count.
func (b *Bodies) N() int { return len(b.X) }

// NewPlummer samples n bodies from a Plummer sphere (the standard
// astrophysical test distribution; centrally condensed, so per-particle
// tree work varies spatially — the source of load imbalance).
func NewPlummer(n int, seed uint64) *Bodies {
	r := rng.New(seed)
	b := &Bodies{
		X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n),
		VX: make([]float64, n), VY: make([]float64, n), VZ: make([]float64, n),
		M: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		// Radius from the cumulative mass profile.
		u := r.Float64()
		if u < 1e-10 {
			u = 1e-10
		}
		rad := 1 / math.Sqrt(math.Pow(u, -2.0/3.0)-1)
		if rad > 10 {
			rad = 10
		}
		// Isotropic direction.
		z := 2*r.Float64() - 1
		phi := 2 * math.Pi * r.Float64()
		s := math.Sqrt(1 - z*z)
		b.X[i] = rad * s * math.Cos(phi)
		b.Y[i] = rad * s * math.Sin(phi)
		b.Z[i] = rad * z
		b.VX[i] = r.NormFloat64() * 0.1
		b.VY[i] = r.NormFloat64() * 0.1
		b.VZ[i] = r.NormFloat64() * 0.1
		b.M[i] = 1.0 / float64(n)
	}
	return b
}

// SortMorton orders the bodies along a 3-D Morton curve, as the paper's
// codes do for cache locality (§5.2.1): contiguous index ranges become
// spatially compact blocks, which is also what gives the static
// block-partitioned threads their (im)balance.
func SortMorton(b *Bodies) {
	n := b.N()
	min, max := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		for _, v := range [3]float64{b.X[i], b.Y[i], b.Z[i]} {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	span := max - min
	if span <= 0 {
		return
	}
	const grid = 1 << 20 // 20-bit keys per axis
	type rec struct {
		key uint64
		idx int
	}
	recs := make([]rec, n)
	for i := 0; i < n; i++ {
		qx := uint64((b.X[i] - min) / span * (grid - 1))
		qy := uint64((b.Y[i] - min) / span * (grid - 1))
		qz := uint64((b.Z[i] - min) / span * (grid - 1))
		recs[i] = rec{key: morton.Encode3(qx, qy, qz), idx: i}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].key < recs[j].key })
	permute := func(a []float64) {
		out := make([]float64, n)
		for i, r := range recs {
			out[i] = a[r.idx]
		}
		copy(a, out)
	}
	permute(b.X)
	permute(b.Y)
	permute(b.Z)
	permute(b.VX)
	permute(b.VY)
	permute(b.VZ)
	permute(b.M)
}

// node is one octree cell.
type node struct {
	cx, cy, cz       float64 // cell center
	half             float64 // half side length
	mass             float64
	comX, comY, comZ float64
	children         [8]int32 // node indices, -1 = empty
	body             int32    // particle index for singleton leaves, else -1
	count            int32    // bodies underneath
}

// Tree is a built Barnes–Hut octree.
type Tree struct {
	nodes  []node
	bodies *Bodies
}

// NodeBytes is the approximate storage of one tree node as the paper's
// Fortran code would hold it (used by the performance model).
const NodeBytes = 88

// Build constructs the octree over the bodies.
func Build(b *Bodies) *Tree {
	// Bounding cube.
	min, max := math.Inf(1), math.Inf(-1)
	for i := 0; i < b.N(); i++ {
		for _, v := range [3]float64{b.X[i], b.Y[i], b.Z[i]} {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
	}
	half := (max - min) / 2
	if half <= 0 {
		half = 1
	}
	half *= 1.0001 // open the boundary
	cx := (max + min) / 2
	t := &Tree{bodies: b}
	root := t.newNode(cx, cx, cx, half)
	for i := 0; i < b.N(); i++ {
		t.insert(root, int32(i))
	}
	t.computeMoments(root)
	return t
}

func (t *Tree) newNode(cx, cy, cz, half float64) int32 {
	t.nodes = append(t.nodes, node{cx: cx, cy: cy, cz: cz, half: half, body: -1,
		children: [8]int32{-1, -1, -1, -1, -1, -1, -1, -1}})
	return int32(len(t.nodes) - 1)
}

// NumNodes reports the node count.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// octant selects the child octant of a point within node n.
func (t *Tree) octant(n int32, x, y, z float64) int {
	o := 0
	if x >= t.nodes[n].cx {
		o |= 1
	}
	if y >= t.nodes[n].cy {
		o |= 2
	}
	if z >= t.nodes[n].cz {
		o |= 4
	}
	return o
}

func (t *Tree) childCenter(n int32, o int) (cx, cy, cz, half float64) {
	h := t.nodes[n].half / 2
	cx, cy, cz = t.nodes[n].cx, t.nodes[n].cy, t.nodes[n].cz
	if o&1 != 0 {
		cx += h
	} else {
		cx -= h
	}
	if o&2 != 0 {
		cy += h
	} else {
		cy -= h
	}
	if o&4 != 0 {
		cz += h
	} else {
		cz -= h
	}
	return cx, cy, cz, h
}

func (t *Tree) insert(n, body int32) {
	for {
		nd := &t.nodes[n]
		nd.count++
		if nd.count == 1 {
			// Empty leaf: take the body.
			nd.body = body
			return
		}
		if nd.body >= 0 {
			// Singleton leaf: push the resident body down, unless the
			// two coincide too closely to separate (give up splitting
			// below a minimum cell size).
			if nd.half < 1e-12 {
				return // degenerate: coincident points share the leaf's monopole
			}
			old := nd.body
			nd.body = -1
			o := t.octant(n, t.bodies.X[old], t.bodies.Y[old], t.bodies.Z[old])
			cx, cy, cz, h := t.childCenter(n, o)
			child := t.newNode(cx, cy, cz, h)
			nd = &t.nodes[n] // newNode may have reallocated
			nd.children[o] = child
			t.nodes[child].body = old
			t.nodes[child].count = 1
		}
		// Internal: descend.
		o := t.octant(n, t.bodies.X[body], t.bodies.Y[body], t.bodies.Z[body])
		if t.nodes[n].children[o] < 0 {
			cx, cy, cz, h := t.childCenter(n, o)
			child := t.newNode(cx, cy, cz, h)
			t.nodes[n].children[o] = child
			t.nodes[child].body = body
			t.nodes[child].count = 1
			return
		}
		n = t.nodes[n].children[o]
	}
}

// computeMoments fills mass and center-of-mass bottom-up.
func (t *Tree) computeMoments(n int32) (mass, mx, my, mz float64) {
	nd := &t.nodes[n]
	if nd.body >= 0 {
		b := nd.body
		m := t.bodies.M[b] * float64(nd.count) // coincident points share
		nd.mass = m
		nd.comX, nd.comY, nd.comZ = t.bodies.X[b], t.bodies.Y[b], t.bodies.Z[b]
		return m, m * nd.comX, m * nd.comY, m * nd.comZ
	}
	var tm, tx, ty, tz float64
	for _, c := range nd.children {
		if c < 0 {
			continue
		}
		m, x, y, z := t.computeMoments(c)
		tm += m
		tx += x
		ty += y
		tz += z
	}
	nd = &t.nodes[n]
	nd.mass = tm
	if tm > 0 {
		nd.comX, nd.comY, nd.comZ = tx/tm, ty/tm, tz/tm
	}
	return tm, tx, ty, tz
}

// ForceStats counts the work of one force evaluation.
type ForceStats struct {
	Visited      int64 // tree nodes examined
	Interactions int64 // monopole/body interactions evaluated
}

// Force computes the softened gravitational acceleration on body i with
// opening angle theta and softening eps, returning per-call work counts.
func (t *Tree) Force(i int, theta, eps float64) (ax, ay, az float64, st ForceStats) {
	xi, yi, zi := t.bodies.X[i], t.bodies.Y[i], t.bodies.Z[i]
	eps2 := eps * eps
	// Explicit stack: the paper's code is an iterative tree search.
	stack := make([]int32, 0, 64)
	stack = append(stack, 0)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &t.nodes[n]
		st.Visited++
		if nd.count == 0 || nd.mass == 0 {
			continue
		}
		dx := nd.comX - xi
		dy := nd.comY - yi
		dz := nd.comZ - zi
		r2 := dx*dx + dy*dy + dz*dz
		if nd.body >= 0 || (2*nd.half)*(2*nd.half) < theta*theta*r2 {
			// Accept: leaf or well-separated cell.
			if nd.body == int32(i) && nd.count == 1 {
				continue // self
			}
			st.Interactions++
			inv := 1 / math.Sqrt(r2+eps2)
			inv3 := inv * inv * inv * nd.mass
			ax += dx * inv3
			ay += dy * inv3
			az += dz * inv3
			continue
		}
		for _, c := range nd.children {
			if c >= 0 {
				stack = append(stack, c)
			}
		}
	}
	return ax, ay, az, st
}

// DirectForce is the O(N²) reference summation for body i.
func DirectForce(b *Bodies, i int, eps float64) (ax, ay, az float64) {
	eps2 := eps * eps
	xi, yi, zi := b.X[i], b.Y[i], b.Z[i]
	for j := 0; j < b.N(); j++ {
		if j == i {
			continue
		}
		dx := b.X[j] - xi
		dy := b.Y[j] - yi
		dz := b.Z[j] - zi
		r2 := dx*dx + dy*dy + dz*dz + eps2
		inv := 1 / math.Sqrt(r2)
		inv3 := inv * inv * inv * b.M[j]
		ax += dx * inv3
		ay += dy * inv3
		az += dz * inv3
	}
	return ax, ay, az
}

// Step advances the bodies one leapfrog step with the given parameters,
// returning aggregate force-evaluation statistics.
func Step(b *Bodies, dt, theta, eps float64) ForceStats {
	t := Build(b)
	var total ForceStats
	n := b.N()
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	for i := 0; i < n; i++ {
		var st ForceStats
		ax[i], ay[i], az[i], st = t.Force(i, theta, eps)
		total.Visited += st.Visited
		total.Interactions += st.Interactions
	}
	for i := 0; i < n; i++ {
		b.VX[i] += ax[i] * dt
		b.VY[i] += ay[i] * dt
		b.VZ[i] += az[i] * dt
		b.X[i] += b.VX[i] * dt
		b.Y[i] += b.VY[i] * dt
		b.Z[i] += b.VZ[i] * dt
	}
	return total
}
