package nbody

import (
	"fmt"

	"spp1000/internal/machine"
	"spp1000/internal/perfmodel"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
)

// RunDynamic implements the paper's stated future work (§7): "more
// dynamic load balancing and lightweight threads needs to be developed
// and implemented on this system to ease the programming burden."
//
// Instead of the static block partition of Run, threads self-schedule:
// each grabs the next unclaimed microblock by an atomic fetch-and-add on
// an uncached shared counter (the same primitive the barrier's counting
// semaphore uses), computes its forces, and returns for more. Balance
// improves — the heavy central blocks of the Morton-sorted Plummer
// sphere no longer pin to one thread — at the price of one uncached RMW
// per block, which serializes at the counter's home memory bank.
func RunDynamic(w *Workload, procs, hypernodes, steps int) (Result, error) {
	m, err := machine.New(machine.Config{Hypernodes: hypernodes})
	if err != nil {
		return Result{}, err
	}
	place := threads.HighLocality
	if hypernodes > 1 {
		place = threads.Uniform
	}
	counter := m.Alloc("worklist", topology.NearShared, 0, 0)

	// Per-microblock force cycles: pure traversal work. The ring-import
	// share is charged once per thread per step, not per block.
	blockCycles := make([]int64, blocks)
	for b, inter := range w.MicroBlocks {
		blockCycles[b] = perfmodel.Cycles(m.P, forceWork(w, inter))
	}
	importCycles := perfmodel.Cycles(m.P, importChunk(w, hypernodes, procs))
	depth := 0
	for n := w.N; n > 1; n >>= 3 {
		depth++
	}
	buildCycles := perfmodel.Cycles(m.P, perfmodel.Chunk{
		Flops:       int64(w.N) * buildFlopsPerBody,
		IntOps:      int64(w.N) * buildIntOpsPerBody,
		CacheHits:   int64(w.N) * 6,
		LocalMisses: int64(w.N) * int64(depth) / 2,
	})
	pushCycles := perfmodel.Cycles(m.P, perfmodel.Chunk{
		Flops:       int64(w.N/procs) * pushFlopsPerBody,
		CacheHits:   int64(w.N/procs) * 12,
		LocalMisses: int64(w.N/procs) * 2,
	})

	// The shared work-list cursor, advanced in virtual time by the
	// threads' RMWs. Reset each step by thread 0 between barriers.
	next := 0
	bar := threads.NewBarrier(m, procs, 0)
	elapsed, err := threads.RunTeam(m, procs, place, func(th *machine.Thread, tid int) {
		for s := 0; s < steps; s++ {
			if tid == 0 {
				th.ComputeCycles(buildCycles)
				next = 0
			}
			bar.Wait(th)
			th.ComputeCycles(importCycles)
			for {
				th.RMW(counter, 0) // fetch-and-add on the work cursor
				if next >= blocks {
					break
				}
				b := next
				next++
				th.ComputeCycles(blockCycles[b])
			}
			bar.Wait(th)
			th.ComputeCycles(pushCycles)
			bar.Wait(th)
		}
	})
	if err != nil {
		return Result{}, err
	}
	sec := elapsed.Seconds()
	fl := w.Flops() * int64(steps)
	return Result{
		N: w.N, Procs: procs, Hypernodes: hypernodes, Steps: steps,
		Seconds: sec, Mflops: float64(fl) / sec / 1e6,
	}, nil
}

// ImbalanceRatio reports max/mean of the static per-thread interaction
// loads for a team size — the quantity dynamic scheduling removes.
func (w *Workload) ImbalanceRatio(procs int) (float64, error) {
	if blocks%procs != 0 {
		return 0, fmt.Errorf("nbody: procs %d must divide %d", procs, blocks)
	}
	per := blocks / procs
	var max, sum int64
	for tid := 0; tid < procs; tid++ {
		var load int64
		for b := tid * per; b < (tid+1)*per; b++ {
			load += w.MicroBlocks[b]
		}
		sum += load
		if load > max {
			max = load
		}
	}
	mean := float64(sum) / float64(procs)
	if mean == 0 {
		return 1, nil
	}
	return float64(max) / mean, nil
}
