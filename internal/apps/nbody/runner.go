package nbody

import (
	"fmt"

	"spp1000/internal/machine"
	"spp1000/internal/perfmodel"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
)

// Per-interaction operation counts of the force inner loop in tree.go.
const (
	interFlops  = 24 // displacement, r², monopole accumulation
	interSqrts  = 1  // 1/sqrt via the PA-7100 divide/sqrt unit
	interIntOps = 20 // stack handling and indirect child addressing
	interHits   = 12 // node fields and stack traffic served by cache
	// linesPerVisit is the cache-line footprint of one node visit.
	linesPerVisit = 3
	// treeReuse derates capacity misses for the hot upper levels of the
	// tree, which stay resident across consecutive (Morton-adjacent)
	// particles.
	treeReuse = 0.4

	buildIntOpsPerBody = 80
	buildFlopsPerBody  = 12
	pushFlopsPerBody   = 12
)

// Workload is the counted force-calculation work of one N-body problem,
// measured from real traversals: interactions summed per microblock of
// the (contiguous) particle partition, so any thread count that divides
// MicroBlocks can aggregate exact per-thread loads.
type Workload struct {
	N           int
	TreeNodes   int
	MicroBlocks []int64 // interactions per 1/16th block of particles
	Visited     int64   // total node visits (sampled estimate)
}

// blocks is the microblock count: finer than the largest team size of
// Fig. 8 so both the static block partition (any divisor of 64) and the
// dynamic self-scheduling extension can be driven from the same counted
// workload.
const blocks = 64

// CountWorkload builds the problem, then measures per-block interaction
// counts by traversing a sample of particles from each microblock and
// scaling (documented sampling: the tree search cost is statistically
// uniform within a spatial block).
func CountWorkload(n int, samplePerBlock int, seed uint64) *Workload {
	b := NewPlummer(n, seed)
	SortMorton(b)
	t := Build(b)
	w := &Workload{N: n, TreeNodes: t.NumNodes(), MicroBlocks: make([]int64, blocks)}
	blockSize := n / blocks
	if samplePerBlock <= 0 || samplePerBlock > blockSize {
		samplePerBlock = blockSize
	}
	for blk := 0; blk < blocks; blk++ {
		lo := blk * blockSize
		stride := blockSize / samplePerBlock
		if stride < 1 {
			stride = 1
		}
		var inter, vis int64
		samples := 0
		for i := lo; i < lo+blockSize; i += stride {
			_, _, _, st := t.Force(i, 0.7, 0.05)
			inter += st.Interactions
			vis += st.Visited
			samples++
		}
		w.MicroBlocks[blk] = inter * int64(blockSize) / int64(samples)
		w.Visited += vis * int64(blockSize) / int64(samples)
	}
	return w
}

// TotalInteractions sums the per-block counts.
func (w *Workload) TotalInteractions() int64 {
	var s int64
	for _, b := range w.MicroBlocks {
		s += b
	}
	return s
}

// Flops reports the counted floating-point work of one force step.
func (w *Workload) Flops() int64 {
	return w.TotalInteractions()*(interFlops+interSqrts*2) +
		int64(w.N)*(buildFlopsPerBody+pushFlopsPerBody)
}

// Result is one timed run.
type Result struct {
	N          int
	Procs      int
	Hypernodes int
	Steps      int
	Seconds    float64
	Mflops     float64
}

func (r Result) String() string {
	return fmt.Sprintf("nbody n=%d p=%d hn=%d: %.2f s, %.1f Mflop/s", r.N, r.Procs, r.Hypernodes, r.Seconds, r.Mflops)
}

// forceWork models the pure traversal work for a share of the
// interactions: compute plus tree-read misses served within the
// hypernode (cache capacity derated by upper-level reuse — the bodies
// are Morton-sorted, so consecutive particles walk nearly the same
// path).
func forceWork(w *Workload, inter int64) perfmodel.Chunk {
	c := perfmodel.Chunk{
		Flops:     inter * interFlops,
		Divides:   inter * interSqrts,
		IntOps:    inter * interIntOps,
		CacheHits: inter * interHits,
	}
	treeBytes := int64(w.TreeNodes) * NodeBytes
	missFrac := perfmodel.CapacityMissFraction(treeBytes, topology.CacheBytes) * treeReuse
	c.HypernodeMisses += int64(float64(inter*linesPerVisit) * missFrac)
	return c
}

// importChunk is the once-per-thread-per-step ring traffic of the
// far-shared tree: each remote line crosses the rings once per step per
// hypernode (the SCI buffer serves every re-read), divided among the
// hypernode's threads.
func importChunk(w *Workload, hypernodes, procs int) perfmodel.Chunk {
	var c perfmodel.Chunk
	if hypernodes <= 1 {
		return c
	}
	threadsPerHN := int64(procs / hypernodes)
	if threadsPerHN < 1 {
		threadsPerHN = 1
	}
	treeLines := int64(w.TreeNodes) * NodeBytes / topology.CacheLineBytes
	imports := treeLines * int64(hypernodes-1) / int64(hypernodes) / threadsPerHN
	c.GlobalMisses += imports
	// The same lines would otherwise have been crossbar misses.
	c.HypernodeMisses -= imports
	if c.HypernodeMisses < 0 {
		c.HypernodeMisses = 0
	}
	return c
}

// forceChunk is the static-partition combination used by Run: traversal
// work plus the thread's import share.
func forceChunk(p topology.Params, w *Workload, inter int64, hypernodes, procs int) perfmodel.Chunk {
	c := forceWork(w, inter)
	imp := importChunk(w, hypernodes, procs)
	if imp.GlobalMisses > 0 {
		// Convert that many crossbar misses into ring imports.
		moved := imp.GlobalMisses
		if moved > c.HypernodeMisses {
			moved = c.HypernodeMisses
		}
		c.HypernodeMisses -= moved
		c.GlobalMisses += moved
	}
	return c
}

// Run times the shared-memory tree code: thread 0 rebuilds the tree each
// step (the serial fraction), then every thread computes forces for its
// contiguous particle block — the per-block loads coming from the real
// measured traversals, so load imbalance is the genuine article.
func Run(w *Workload, procs, hypernodes, steps int) (Result, error) {
	if blocks%procs != 0 {
		return Result{}, fmt.Errorf("nbody: procs %d must divide %d", procs, blocks)
	}
	m, err := machine.New(machine.Config{Hypernodes: hypernodes})
	if err != nil {
		return Result{}, err
	}
	place := threads.HighLocality
	if hypernodes > 1 {
		place = threads.Uniform // paper: "2,4,8 and 16 processors across two hypernodes"
	}

	// Per-thread interaction loads: aggregate microblocks.
	per := blocks / procs
	loads := make([]int64, procs)
	for tid := 0; tid < procs; tid++ {
		for b := tid * per; b < (tid+1)*per; b++ {
			loads[tid] += w.MicroBlocks[b]
		}
	}
	// Tree insertion walks ~log8(N) levels of pointer-chased nodes;
	// roughly half those probes miss.
	depth := 0
	for n := w.N; n > 1; n >>= 3 {
		depth++
	}
	buildChunk := perfmodel.Chunk{
		Flops:       int64(w.N) * buildFlopsPerBody,
		IntOps:      int64(w.N) * buildIntOpsPerBody,
		CacheHits:   int64(w.N) * 6,
		LocalMisses: int64(w.N) * int64(depth) / 2,
	}
	pushChunk := perfmodel.Chunk{
		Flops:       int64(w.N/procs) * pushFlopsPerBody,
		CacheHits:   int64(w.N/procs) * 12,
		LocalMisses: int64(w.N/procs) * 2, // 6 words read + written
	}
	buildCycles := perfmodel.Cycles(m.P, buildChunk)
	pushCycles := perfmodel.Cycles(m.P, pushChunk)
	forceCycles := make([]int64, procs)
	for tid := range forceCycles {
		forceCycles[tid] = perfmodel.Cycles(m.P, forceChunk(m.P, w, loads[tid], hypernodes, procs))
	}

	bar := threads.NewBarrier(m, procs, 0)
	elapsed, err := threads.RunTeam(m, procs, place, func(th *machine.Thread, tid int) {
		for s := 0; s < steps; s++ {
			if tid == 0 {
				th.ComputeCycles(buildCycles)
			}
			bar.Wait(th)
			th.ComputeCycles(forceCycles[tid])
			bar.Wait(th)
			th.ComputeCycles(pushCycles)
			bar.Wait(th)
		}
	})
	if err != nil {
		return Result{}, err
	}
	sec := elapsed.Seconds()
	fl := w.Flops() * int64(steps)
	return Result{
		N: w.N, Procs: procs, Hypernodes: hypernodes, Steps: steps,
		Seconds: sec, Mflops: float64(fl) / sec / 1e6,
	}, nil
}
