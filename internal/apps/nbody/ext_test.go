package nbody

import "testing"

// Tests for the message-passing variant (§5.3.2) and the dynamic
// load-balancing extension (§7 future work).

func countedWorkload(t *testing.T) *Workload {
	t.Helper()
	return CountWorkload(32768, 64, 1)
}

func TestPVMSerialFasterSharedParallelBetter(t *testing.T) {
	w := countedWorkload(t)
	s1, err := Run(w, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := RunPVM(w, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// §5.3.2: "The single processor performance of the code was quite
	// good ... somewhat faster than ... the shared memory programming
	// model."
	if p1.Mflops <= s1.Mflops {
		t.Errorf("PVM serial (%v) should beat shared serial (%v)", p1.Mflops, s1.Mflops)
	}
	if p1.Mflops > s1.Mflops*1.4 {
		t.Errorf("PVM serial advantage too large: %v vs %v", p1.Mflops, s1.Mflops)
	}
	// "...overall performance is degraded relative to the shared
	// memory version."
	s16, err := Run(w, 16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p16, err := RunPVM(w, 16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p16.Mflops >= s16.Mflops {
		t.Errorf("PVM at 16 (%v) should trail shared (%v)", p16.Mflops, s16.Mflops)
	}
	// Packing overheads grow with the task count: scaling efficiency
	// strictly below the shared version's.
	sEff := s16.Mflops / s1.Mflops
	pEff := p16.Mflops / p1.Mflops
	if pEff >= sEff {
		t.Errorf("PVM speedup (%v) should trail shared speedup (%v)", pEff, sEff)
	}
}

func TestPVMValidation(t *testing.T) {
	w := countedWorkload(t)
	if _, err := RunPVM(w, 3, 1, 1); err == nil {
		t.Fatal("procs=3 should be rejected")
	}
}

func TestDynamicMatchesStaticWhenBalanced(t *testing.T) {
	w := countedWorkload(t)
	s, err := Run(w, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RunDynamic(w, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Low imbalance at 2 threads: dynamic within a few percent.
	ratio := d.Mflops / s.Mflops
	if ratio < 0.93 || ratio > 1.1 {
		t.Errorf("dynamic/static at 2 procs = %.3f, want ≈1", ratio)
	}
}

func TestDynamicBeatsStaticUnderImbalance(t *testing.T) {
	w := countedWorkload(t)
	imb, err := w.ImbalanceRatio(16)
	if err != nil {
		t.Fatal(err)
	}
	if imb <= 1.02 {
		t.Skipf("workload too balanced (%.3f) to exercise the effect", imb)
	}
	s, err := Run(w, 16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := RunDynamic(w, 16, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mflops <= s.Mflops {
		t.Errorf("dynamic (%v) should beat static (%v) at imbalance %.3f", d.Mflops, s.Mflops, imb)
	}
}

func TestImbalanceRatio(t *testing.T) {
	w := &Workload{N: 640, TreeNodes: 100, MicroBlocks: make([]int64, blocks)}
	for i := range w.MicroBlocks {
		w.MicroBlocks[i] = 100
	}
	r, err := w.ImbalanceRatio(16)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("uniform blocks imbalance = %v, want 1", r)
	}
	w.MicroBlocks[0] = 500 // one heavy block
	r, _ = w.ImbalanceRatio(blocks)
	if r <= 1 {
		t.Fatalf("skewed blocks imbalance = %v, want >1", r)
	}
	if _, err := w.ImbalanceRatio(3); err == nil {
		t.Fatal("procs=3 should be rejected")
	}
	zero := &Workload{MicroBlocks: make([]int64, blocks)}
	if r, _ := zero.ImbalanceRatio(4); r != 1 {
		t.Fatalf("zero workload imbalance = %v, want 1", r)
	}
}
