package pic

import (
	"fmt"

	"spp1000/internal/c90"
	"spp1000/internal/machine"
	"spp1000/internal/parsim"
	"spp1000/internal/perfmodel"
	"spp1000/internal/pvm"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
)

// Result summarizes one timed PIC run on the simulated machine.
type Result struct {
	Size    Size
	Procs   int
	Steps   int
	Variant string // "shared" or "pvm"
	Seconds float64
	Mflops  float64
}

// hypernodesFor reports how many hypernodes a high-locality team spans.
func hypernodesFor(procs int) int {
	hn := (procs + topology.CPUsPerNode - 1) / topology.CPUsPerNode
	if hn < 1 {
		hn = 1
	}
	return hn
}

// machineFor builds a machine just large enough for the team (the paper
// used a two-hypernode, 16-CPU system).
func machineFor(procs int) (*machine.Machine, int, error) {
	hn := hypernodesFor(procs)
	m, err := machine.New(machine.Config{Hypernodes: hn})
	return m, hn, err
}

// RunShared times the shared-memory PIC variant: particle arrays
// block-partitioned over threads, grids far-shared, the field solve
// parallelized across threads, four barriers per step.
func RunShared(size Size, procs, steps int) (Result, error) {
	m, hn, err := machineFor(procs)
	if err != nil {
		return Result{}, err
	}
	model := NewModel(size, procs, hn, false)
	deposit := perfmodel.Cycles(m.P, model.DepositChunk())
	reduce := perfmodel.Cycles(m.P, model.ReduceChunk())
	solve := perfmodel.Cycles(m.P, model.SolveChunk(false))
	gather := perfmodel.Cycles(m.P, model.GatherPushChunk())

	bar := threads.NewBarrier(m, procs, 0)
	elapsed, err := threads.RunTeam(m, procs, threads.HighLocality, func(th *machine.Thread, tid int) {
		for step := 0; step < steps; step++ {
			th.ComputeCycles(deposit)
			bar.Wait(th)
			th.ComputeCycles(reduce)
			bar.Wait(th)
			th.ComputeCycles(solve)
			bar.Wait(th)
			th.ComputeCycles(gather)
			bar.Wait(th)
		}
	})
	if err != nil {
		return Result{}, err
	}
	sec := elapsed.Seconds()
	fl := model.FlopsPerStep() * int64(steps)
	return Result{
		Size: size, Procs: procs, Steps: steps, Variant: "shared",
		Seconds: sec, Mflops: float64(fl) / sec / 1e6,
	}, nil
}

// RunSharedPar is RunShared on the hypernode-partitioned (PDES) engine:
// the same four-phase step structure and work model, but the machine is
// built as one share-nothing kernel per hypernode (internal/parsim), so
// large configurations — up to the full 128-CPU machine the paper's
// authors did not have — can execute on concurrent host goroutines.
// Output is byte-identical at every parsim worker count; it is a
// different (coarser-synchronization) machine model than RunShared's
// monolithic coherence replay, so its absolute times are compared
// within the partitioned family, not against RunShared.
func RunSharedPar(size Size, procs, steps int) (Result, error) {
	hn := hypernodesFor(procs)
	cl, err := parsim.NewCluster(hn)
	if err != nil {
		return Result{}, err
	}
	model := NewModel(size, procs, hn, false)
	deposit := perfmodel.Cycles(cl.P, model.DepositChunk())
	reduce := perfmodel.Cycles(cl.P, model.ReduceChunk())
	solve := perfmodel.Cycles(cl.P, model.SolveChunk(false))
	gather := perfmodel.Cycles(cl.P, model.GatherPushChunk())

	nodeOf := make([]int, procs)
	counts := make([]int, hn)
	for tid := 0; tid < procs; tid++ {
		nodeOf[tid] = threads.CPUFor(cl.Topo, threads.HighLocality, tid, procs).Hypernode()
		counts[nodeOf[tid]]++
	}
	bar, err := parsim.NewClusterBarrier(cl, counts)
	if err != nil {
		return Result{}, err
	}
	elapsed, err := cl.RunTeam(procs, func(th *machine.Thread, tid int) {
		for step := 0; step < steps; step++ {
			th.ComputeCycles(deposit)
			bar.Wait(th, nodeOf[tid])
			th.ComputeCycles(reduce)
			bar.Wait(th, nodeOf[tid])
			th.ComputeCycles(solve)
			bar.Wait(th, nodeOf[tid])
			th.ComputeCycles(gather)
			bar.Wait(th, nodeOf[tid])
		}
	})
	if err != nil {
		return Result{}, err
	}
	sec := elapsed.Seconds()
	fl := model.FlopsPerStep() * int64(steps)
	return Result{
		Size: size, Procs: procs, Steps: steps, Variant: "shared-pdes",
		Seconds: sec, Mflops: float64(fl) / sec / 1e6,
	}, nil
}

// RunPVM times the message-passing variant the paper ported: particle
// arrays partitioned over tasks, grids replicated per task in private
// memory, the density all-reduced to task 0, the field solved there, and
// the three field components broadcast back — all through ConvexPVM.
func RunPVM(size Size, procs, steps int) (Result, error) {
	m, hn, err := machineFor(procs)
	if err != nil {
		return Result{}, err
	}
	model := NewModel(size, procs, hn, true)
	deposit := perfmodel.Cycles(m.P, model.DepositChunk())
	reduceAll := perfmodel.Cycles(m.P, model.ReduceChunk()) * int64(procs) // task 0 reduces serially
	solve := perfmodel.Cycles(m.P, model.SolveChunk(true))
	gather := perfmodel.Cycles(m.P, model.GatherPushChunk())
	gridBytes := size.Cells() * wordBytes

	sys := pvm.NewSystem(m)
	tasks := make([]*pvm.Task, procs)
	registered := m.K.NewSemaphore("registered", 0)
	allReady := m.K.NewEvent("allReady")

	var res Result
	elapsed, err := threads.RunTeam(m, procs, threads.HighLocality, func(th *machine.Thread, tid int) {
		tasks[tid] = sys.AddTask(th)
		registered.V()
		if tid == 0 {
			for i := 0; i < procs; i++ {
				registered.P(th.P)
			}
			allReady.Set()
		} else {
			allReady.Wait(th.P)
		}
		for step := 0; step < steps; step++ {
			th.ComputeCycles(deposit)
			if tid == 0 {
				// Gather partials, reduce, solve, broadcast fields.
				for i := 1; i < procs; i++ {
					tasks[0].Recv()
				}
				th.ComputeCycles(reduceAll)
				th.ComputeCycles(solve)
				for i := 1; i < procs; i++ {
					for f := 0; f < 3; f++ {
						tasks[0].Send(i, 100+f, gridBytes, nil)
					}
				}
			} else {
				tasks[tid].Send(0, 1, gridBytes, nil)
				for f := 0; f < 3; f++ {
					tasks[tid].Recv()
				}
			}
			th.ComputeCycles(gather)
		}
	})
	if err != nil {
		return Result{}, err
	}
	sec := elapsed.Seconds()
	fl := model.FlopsPerStep() * int64(steps)
	res = Result{
		Size: size, Procs: procs, Steps: steps, Variant: "pvm",
		Seconds: sec, Mflops: float64(fl) / sec / 1e6,
	}
	return res, nil
}

// C90Reference reports the single-head C90 time and rate for the run
// (the flat reference lines of Fig. 6 and the rows of Table 1).
func C90Reference(size Size, steps int) (seconds, mflops float64) {
	model := NewModel(size, 1, 1, false)
	fl := model.FlopsPerStep() * int64(steps)
	cray := c90.Default()
	rate := cray.Rate(c90.PIC)
	return float64(fl) / (rate * 1e6), rate
}

func (r Result) String() string {
	return fmt.Sprintf("pic %v %s p=%d: %.1f s, %.1f Mflop/s", r.Size, r.Variant, r.Procs, r.Seconds, r.Mflops)
}
