package pic

import (
	"math"
	"testing"
	"testing/quick"
)

func small(t *testing.T) *Sim {
	t.Helper()
	s, err := New(Size{8, 8, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLoadingCounts(t *testing.T) {
	s := small(t)
	if got := len(s.X); got != 9*512 {
		t.Fatalf("particles = %d, want 9 per cell", got)
	}
	if s.NBeam != 512 {
		t.Fatalf("beam particles = %d, want 1 per cell", s.NBeam)
	}
	// Paper sizes.
	if Small.Particles() != 294912 {
		t.Fatalf("small problem particles = %d, want 294912 (Table 1)", Small.Particles())
	}
	if Large.Particles() != 1179648 {
		t.Fatalf("large problem particles = %d, want 1179648 (Table 1)", Large.Particles())
	}
}

func TestBeamIsMonoenergetic(t *testing.T) {
	s := small(t)
	for p := 0; p < s.NBeam; p++ {
		if s.VX[p] != 3.0 || s.VY[p] != 0 || s.VZ[p] != 0 {
			t.Fatalf("beam particle %d has velocity (%v,%v,%v)", p, s.VX[p], s.VY[p], s.VZ[p])
		}
	}
}

func TestBackgroundIsMaxwellian(t *testing.T) {
	s, err := New(Size{16, 16, 16}, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumsq float64
	n := 0
	for p := s.NBeam; p < len(s.X); p++ {
		sum += s.VX[p]
		sumsq += s.VX[p] * s.VX[p]
		n++
	}
	mean := sum / float64(n)
	sigma := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.05 {
		t.Fatalf("background mean velocity = %v, want ≈0", mean)
	}
	if math.Abs(sigma-1) > 0.05 {
		t.Fatalf("background thermal spread = %v, want ≈1", sigma)
	}
}

func TestDepositConservesCharge(t *testing.T) {
	s := small(t)
	s.Deposit()
	var want float64
	for _, q := range s.Q {
		want += q
	}
	got := s.TotalCharge()
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("deposited charge %v, particles carry %v", got, want)
	}
}

func TestDepositPositive(t *testing.T) {
	// A single particle at a cell center deposits all charge there.
	s := small(t)
	for p := range s.Q {
		s.Q[p] = 0
	}
	s.Q[0] = -1
	s.X[0], s.Y[0], s.Z[0] = 3.0, 4.0, 5.0
	s.Deposit()
	if math.Abs(s.Rho[s.cell(3, 4, 5)]+1) > 1e-12 {
		t.Fatalf("on-node particle deposits %v at its node", s.Rho[s.cell(3, 4, 5)])
	}
}

func TestSolveUniformChargeGivesZeroField(t *testing.T) {
	s := small(t)
	for i := range s.Rho {
		s.Rho[i] = -9
	}
	if err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	for i := range s.Ex {
		if math.Abs(s.Ex[i]) > 1e-9 || math.Abs(s.Ey[i]) > 1e-9 || math.Abs(s.Ez[i]) > 1e-9 {
			t.Fatalf("uniform charge produced field at %d", i)
		}
	}
}

func TestSolvePlaneWaveField(t *testing.T) {
	// ρ = cos(kx): E_x should be the discrete gradient of the potential,
	// a sine wave; E_y and E_z vanish.
	s := small(t)
	n := s.NX
	km := 2
	for k := 0; k < s.NZ; k++ {
		for j := 0; j < s.NY; j++ {
			for i := 0; i < n; i++ {
				s.Rho[s.cell(i, j, k)] = math.Cos(2 * math.Pi * float64(km) * float64(i) / float64(n))
			}
		}
	}
	if err := s.Solve(); err != nil {
		t.Fatal(err)
	}
	keff := kEff(km, n)
	kg := kGrad(km, n)
	for i := 0; i < n; i++ {
		want := kg / (keff * keff) * math.Sin(2*math.Pi*float64(km)*float64(i)/float64(n))
		got := s.Ex[s.cell(i, 0, 0)]
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("Ex[%d] = %v, want %v", i, got, want)
		}
		if math.Abs(s.Ey[s.cell(i, 0, 0)]) > 1e-9 {
			t.Fatal("Ey should vanish for an x-directed wave")
		}
	}
}

func TestStepKeepsParticlesInBox(t *testing.T) {
	s := small(t)
	for i := 0; i < 5; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for p := range s.X {
		if s.X[p] < 0 || s.X[p] >= float64(s.NX) ||
			s.Y[p] < 0 || s.Y[p] >= float64(s.NY) ||
			s.Z[p] < 0 || s.Z[p] >= float64(s.NZ) {
			t.Fatalf("particle %d left the box: (%v,%v,%v)", p, s.X[p], s.Y[p], s.Z[p])
		}
	}
}

func TestChargeConservedOverSteps(t *testing.T) {
	s := small(t)
	s.Deposit()
	q0 := s.TotalCharge()
	for i := 0; i < 5; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(s.TotalCharge()-q0) > 1e-9*math.Abs(q0) {
		t.Fatalf("charge drifted: %v -> %v", q0, s.TotalCharge())
	}
}

func TestBeamDrivesFieldEnergy(t *testing.T) {
	// The beam-plasma system converts kinetic energy into electrostatic
	// field energy: starting from a cold, nearly neutral load the field
	// energy must grow within a few plasma periods and stay finite.
	s, err := New(Size{16, 16, 16}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	early := s.FieldEnergy()
	for i := 0; i < 15; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	late := s.FieldEnergy()
	if late <= early {
		t.Fatalf("field energy should grow from the beam: %v -> %v", early, late)
	}
	if math.IsNaN(late) || late > s.KineticEnergy() {
		t.Fatalf("field energy unphysical: %v (kinetic %v)", late, s.KineticEnergy())
	}
}

func TestMomentumNearlyConserved(t *testing.T) {
	// With equal charge-to-mass ratios the self-consistent field exerts
	// zero net force up to interpolation error: total momentum drifts
	// only slightly over a few steps.
	s := small(t)
	var px0 float64
	for p := range s.VX {
		px0 += s.VX[p]
	}
	for i := 0; i < 5; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	var px float64
	for p := range s.VX {
		px += s.VX[p]
	}
	// Beam momentum is 512 cells × 3.0; allow a fraction of a percent.
	if rel := math.Abs(px-px0) / math.Abs(px0); rel > 0.01 {
		t.Fatalf("momentum drifted %.3f%% in 5 steps", rel*100)
	}
}

func TestDepositRangeDecomposes(t *testing.T) {
	// Depositing halves into partials and summing equals the full deposit.
	s := small(t)
	s.Deposit()
	want := append([]float64(nil), s.Rho...)
	half := len(s.X) / 2
	a := make([]float64, len(s.Rho))
	b := make([]float64, len(s.Rho))
	s.DepositRange(0, half, a)
	s.DepositRange(half, len(s.X), b)
	for i := range want {
		if math.Abs(a[i]+b[i]-want[i]) > 1e-12 {
			t.Fatalf("partial deposits differ at %d", i)
		}
	}
}

func TestNonPow2MeshRejected(t *testing.T) {
	if _, err := New(Size{10, 8, 8}, 1); err == nil {
		t.Fatal("10 should be rejected")
	}
}

// Property: deposit conserves charge for arbitrary particle positions.
func TestDepositChargeProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		s, err := New(Size{4, 4, 4}, seed)
		if err != nil {
			return false
		}
		s.Deposit()
		var want float64
		for _, q := range s.Q {
			want += q
		}
		return math.Abs(s.TotalCharge()-want) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRunShapeTargets(t *testing.T) {
	// Fig. 6 shape at reduced step count (timing is per-step uniform).
	const steps = 5
	s1, err := RunShared(Small, 1, steps)
	if err != nil {
		t.Fatal(err)
	}
	s16, err := RunShared(Small, 16, steps)
	if err != nil {
		t.Fatal(err)
	}
	p16, err := RunPVM(Small, 16, steps)
	if err != nil {
		t.Fatal(err)
	}
	// Shared memory outperforms PVM (paper: consistently).
	if s16.Mflops <= p16.Mflops {
		t.Fatalf("shared (%v) should beat PVM (%v)", s16.Mflops, p16.Mflops)
	}
	// PVM ≈ half the shared-memory performance (§3.1).
	ratio := s16.Mflops / p16.Mflops
	if ratio < 1.5 || ratio > 4.5 {
		t.Errorf("shared/PVM ratio = %.2f, want ≈2", ratio)
	}
	// 16 CPUs approach the C90 head (§6).
	_, c90rate := C90Reference(Small, steps)
	if s16.Mflops < 0.6*c90rate || s16.Mflops > 1.4*c90rate {
		t.Errorf("16-CPU rate %.0f vs C90 %.0f: should be comparable", s16.Mflops, c90rate)
	}
	// Good single-hypernode scaling.
	s8, err := RunShared(Small, 8, steps)
	if err != nil {
		t.Fatal(err)
	}
	if eff := s8.Mflops / s1.Mflops / 8; eff < 0.8 {
		t.Errorf("8-CPU efficiency = %.2f, want ≥0.8", eff)
	}
	// The large problem is slower per CPU (cache effect, §6).
	l1, err := RunShared(Large, 1, steps)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Mflops >= s1.Mflops {
		t.Errorf("large problem (%v Mf) should run below small (%v Mf) per CPU", l1.Mflops, s1.Mflops)
	}
}

func TestC90ReferenceTable1(t *testing.T) {
	// Table 1 rates: 355 / 369 Mflop/s.
	_, rate := C90Reference(Small, 500)
	if rate < 330 || rate > 395 {
		t.Fatalf("C90 PIC rate = %.0f, want ≈362", rate)
	}
	secSmall, _ := C90Reference(Small, 500)
	secLarge, _ := C90Reference(Large, 500)
	// Table 1 times scale ~4x between the sizes (112.9 → 436.4 s).
	if r := secLarge / secSmall; r < 3.5 || r > 4.5 {
		t.Fatalf("large/small C90 time ratio = %.2f, want ≈3.9", r)
	}
}
