package pic

import (
	"spp1000/internal/fft"
	"spp1000/internal/perfmodel"
	"spp1000/internal/topology"
)

// Per-particle operation counts of the four PIC phases, matching the
// loops in pic.go (floating ops counted as the PA-7100 would issue them;
// integer index arithmetic, floors, and wraps charged as IntOps).
const (
	depositFlops  = 35 // weight products and scatter-adds
	depositIntOps = 30 // floor/wrap and 8 cell-index computations
	gatherFlops   = 64 // weights plus 3-field trilinear interpolation
	gatherIntOps  = 34
	pushFlops     = 16 // leapfrog update and periodic wrap
	pushIntOps    = 12

	// Per-cell work in the k-space loop of the solve.
	solveCellFlops = 14
)

// wordBytes is sizeof(float64).
const wordBytes = 8

// Model computes the per-thread per-step work chunks of a PIC run.
// It captures the machine-facing structure of the computation:
//
//   - particle arrays are block-partitioned, so particle streaming is
//     served by local memory at stream-miss rates;
//   - grid arrays are far-shared; the fields are rewritten every step,
//     so each CPU cold-misses every grid line it touches once per step,
//     and capacity misses appear when the per-CPU grid footprint
//     exceeds the cache (the paper's deliberate problem-size effect);
//   - in the PVM variant the grids are replicated per task in private
//     memory, so the footprint is measured against one cache regardless
//     of task count, and every grid line is locally cold each step.
type Model struct {
	Size  Size
	Procs int
	// Hypernodes the team spans (for the local/global miss split).
	Hypernodes int
	// Replicated marks the PVM variant's private replicated grids.
	Replicated bool
	// CacheBytes is the per-CPU data cache (1 MB).
	CacheBytes int64
}

// NewModel builds the work model for a run.
func NewModel(size Size, procs, hypernodes int, replicated bool) Model {
	return Model{
		Size: size, Procs: procs, Hypernodes: hypernodes,
		Replicated: replicated, CacheBytes: topology.CacheBytes,
	}
}

func (m Model) particlesPerThread() int64 {
	return int64(m.Size.Particles() / m.Procs)
}

// gridLines is the cache-line count of n cells of float64.
func gridLines(cells int) int64 {
	return int64(cells) * wordBytes / topology.CacheLineBytes
}

// splitGrid classifies grid misses by service level. For far-shared,
// read-mostly grid data the SCI global cache buffer means each remote
// line crosses the rings only once per step per hypernode; every other
// miss — cold re-touches and capacity re-fetches — is served at
// hypernode (crossbar / buffer) cost. The per-thread global charge is
// therefore the hypernode's share of ring imports divided among its
// threads, not a fixed fraction of all misses.
func (m Model) splitGrid(misses, lineFootprint int64, c *perfmodel.Chunk) {
	if m.Replicated {
		// Replicated private grids: all local.
		c.LocalMisses += misses
		return
	}
	if m.Hypernodes <= 1 {
		c.HypernodeMisses += misses
		return
	}
	threadsPerHN := int64(m.Procs / m.Hypernodes)
	if threadsPerHN < 1 {
		threadsPerHN = 1
	}
	imports := lineFootprint * int64(m.Hypernodes-1) / int64(m.Hypernodes) / threadsPerHN
	if imports > misses {
		imports = misses
	}
	c.GlobalMisses += imports
	c.HypernodeMisses += misses - imports
}

// DepositChunk is one thread's share of the charge deposition.
func (m Model) DepositChunk() perfmodel.Chunk {
	np := m.particlesPerThread()
	cells := m.Size.Cells()
	c := perfmodel.Chunk{
		Flops:  np * depositFlops,
		IntOps: np * depositIntOps,
		// 4 particle words read, 8 grid read-modify-writes.
		CacheHits: np * 20,
	}
	// Particle stream: x,y,z,q = 4 words per particle, sequential.
	c.LocalMisses += int64(float64(np*4*wordBytes) / float64(topology.CacheLineBytes))
	// Private density partial: rewritten every step, so each line the
	// thread touches is cold once per step; random particle order
	// touches essentially the whole grid when particles outnumber cells.
	touched := gridLines(cells)
	if t := np; t < int64(cells) {
		touched = gridLines(int(t))
	}
	c.LocalMisses += touched
	// Capacity misses when the partial does not fit the cache: the 8
	// CIC cells of one particle span about 3 distinct lines.
	capFrac := perfmodel.CapacityMissFraction(int64(cells)*wordBytes, m.CacheBytes)
	c.LocalMisses += int64(float64(np*3) * capFrac)
	return c
}

// ReduceChunk is one thread's share of combining the per-thread density
// partials into the shared mesh (log-tree reduction).
func (m Model) ReduceChunk() perfmodel.Chunk {
	cells := int64(m.Size.Cells())
	rounds := int64(0)
	for p := 1; p < m.Procs; p *= 2 {
		rounds++
	}
	perThread := cells / int64(m.Procs)
	c := perfmodel.Chunk{
		Flops:     perThread * rounds, // one add per cell per round
		IntOps:    perThread * rounds,
		CacheHits: perThread * rounds * 2,
	}
	// Each round reads another thread's partial: remote traffic.
	miss := int64(float64(perThread*rounds*wordBytes) / float64(topology.CacheLineBytes))
	if m.Replicated {
		c.LocalMisses += miss
	} else {
		m.splitGrid(miss, gridLines(int(cells)), &c)
	}
	return c
}

// SolveChunk is one thread's share of the FFT field solve; with
// serial=true the whole solve is charged (the PVM variant solves at
// task 0 while the others wait).
func (m Model) SolveChunk(serial bool) perfmodel.Chunk {
	nx, ny, nz := m.Size.NX, m.Size.NY, m.Size.NZ
	cells := int64(m.Size.Cells())
	share := int64(m.Procs)
	if serial {
		share = 1
	}
	// One forward + three inverse 3-D transforms plus the k-space loop.
	fl := 4*fft.Flops3(nx, ny, nz) + cells*solveCellFlops
	c := perfmodel.Chunk{
		Flops:     fl / share,
		IntOps:    fl / share / 4,
		CacheHits: 4 * 3 * 2 * cells / share, // 4 grids × 3 passes × r/w
	}
	// Transform passes sweep complex grids (16 B/point); the y and z
	// passes are strided, so cross-line traffic dominates: charge one
	// miss per line per pass on the non-x passes plus capacity effects.
	complexBytes := cells * 2 * wordBytes
	sweepLines := complexBytes / topology.CacheLineBytes
	misses := 4 * 2 * sweepLines / share // 2 strided passes per transform
	capFrac := perfmodel.CapacityMissFraction(complexBytes, m.CacheBytes)
	misses += int64(float64(4*cells/share) * capFrac)
	m.splitGrid(misses, 4*sweepLines, &c)
	return c
}

// GatherPushChunk is one thread's share of field gather plus push.
func (m Model) GatherPushChunk() perfmodel.Chunk {
	np := m.particlesPerThread()
	cells := m.Size.Cells()
	c := perfmodel.Chunk{
		Flops:  np * (gatherFlops + pushFlops),
		IntOps: np * (gatherIntOps + pushIntOps),
		// 24 field reads + 6 particle words read + 6 written.
		CacheHits: np * 36,
	}
	// Particle stream: 6 words read + 6 written per particle.
	c.LocalMisses += int64(float64(np*12*wordBytes) / float64(topology.CacheLineBytes))
	// Field arrays rewritten by the solve each step: cold misses for
	// every E line touched (3 components), then capacity misses when
	// the 3-array footprint exceeds the cache. One particle's 8 CIC
	// cells span about 3 lines per component — 9 line touches.
	touched := 3 * gridLines(cells)
	if np < int64(cells) {
		touched = 3 * gridLines(int(np))
	}
	fieldMisses := touched
	capFrac := perfmodel.CapacityMissFraction(3*int64(cells)*wordBytes, m.CacheBytes)
	fieldMisses += int64(float64(np*9) * capFrac)
	m.splitGrid(fieldMisses, 3*gridLines(cells), &c)
	return c
}

// FlopsPerStep is the machine-independent operation count of one full
// step over all particles (used for Mflop/s reporting and the C90
// reference).
func (m Model) FlopsPerStep() int64 {
	np := int64(m.Size.Particles())
	cells := int64(m.Size.Cells())
	fl := np*(depositFlops+gatherFlops+pushFlops) +
		4*fft.Flops3(m.Size.NX, m.Size.NY, m.Size.NZ) + cells*solveCellFlops +
		cells // reduction adds
	return fl
}
