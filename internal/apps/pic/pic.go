// Package pic implements the paper's 3-D electrostatic plasma
// particle-in-cell code (§5.1): cloud-in-cell charge deposition, an
// FFT-based periodic Poisson solve in wavenumber space, electric-field
// gather, and a second-order leapfrog push. The test problem is the
// paper's: a monoenergetic electron beam propagating through a
// Maxwellian background plasma, 8 background electrons and 1 beam
// electron per mesh cell.
//
// The numerics here are real — deposits conserve charge to round-off and
// the field solve inverts the discrete Laplacian exactly — while the
// machine timing of a run is produced by playing the per-step work
// through the simulator (see runner.go).
package pic

import (
	"fmt"
	"math"

	"spp1000/internal/fft"
	"spp1000/internal/rng"
)

// Size describes the periodic mesh. Particle count follows the paper's
// loading: 9 particles per cell (8 plasma + 1 beam).
type Size struct {
	NX, NY, NZ int
}

// Cells reports the number of mesh cells.
func (s Size) Cells() int { return s.NX * s.NY * s.NZ }

// Particles reports the particle count (9 per cell, paper §5.1.1).
func (s Size) Particles() int { return 9 * s.Cells() }

func (s Size) String() string { return fmt.Sprintf("%dx%dx%d", s.NX, s.NY, s.NZ) }

// The paper's two calculations (Table 1).
var (
	Small = Size{32, 32, 32} //   294 912 particles
	Large = Size{64, 64, 32} // 1 179 648 particles
)

// WordsPerParticle is the storage per particle (paper §5.1.2: 11 words —
// position, velocity, charge, mass, and integration scratch).
const WordsPerParticle = 11

// Sim is one PIC simulation state.
type Sim struct {
	Size
	Dt float64

	// Particle state (structure-of-arrays).
	X, Y, Z    []float64
	VX, VY, VZ []float64
	Q          []float64 // charge (negative for electrons)

	// Mesh state.
	Rho        []float64 // charge density
	Ex, Ey, Ez []float64 // electric field

	// scratch for the solver
	work       *fft.Grid3
	ex, ey, ez *fft.Grid3

	// NBeam counts beam particles (the first NBeam entries).
	NBeam int
}

// New builds the paper's beam-plasma problem on the given mesh:
// one beam electron per cell drifting along x at three thermal speeds,
// eight background electrons per cell with Maxwellian velocities.
// A uniform neutralizing ion background is implied (the k=0 mode of the
// Poisson solve removes the mean charge).
func New(size Size, seed uint64) (*Sim, error) {
	if !fft.IsPow2(size.NX) || !fft.IsPow2(size.NY) || !fft.IsPow2(size.NZ) {
		return nil, fmt.Errorf("pic: mesh %v must have power-of-two dimensions", size)
	}
	n := size.Particles()
	cells := size.Cells()
	s := &Sim{
		Size: size,
		Dt:   0.1,
		X:    make([]float64, n), Y: make([]float64, n), Z: make([]float64, n),
		VX: make([]float64, n), VY: make([]float64, n), VZ: make([]float64, n),
		Q:   make([]float64, n),
		Rho: make([]float64, cells),
		Ex:  make([]float64, cells), Ey: make([]float64, cells), Ez: make([]float64, cells),
	}
	var err error
	if s.work, err = fft.NewGrid3(size.NX, size.NY, size.NZ); err != nil {
		return nil, err
	}
	s.ex, _ = fft.NewGrid3(size.NX, size.NY, size.NZ)
	s.ey, _ = fft.NewGrid3(size.NX, size.NY, size.NZ)
	s.ez, _ = fft.NewGrid3(size.NX, size.NY, size.NZ)

	r := rng.New(seed)
	const vth = 1.0
	const beamV = 3.0 * vth
	idx := 0
	s.NBeam = cells
	// One beam electron per cell.
	for k := 0; k < size.NZ; k++ {
		for j := 0; j < size.NY; j++ {
			for i := 0; i < size.NX; i++ {
				s.X[idx] = float64(i) + r.Float64()
				s.Y[idx] = float64(j) + r.Float64()
				s.Z[idx] = float64(k) + r.Float64()
				s.VX[idx] = beamV
				s.Q[idx] = -1.0 / 9.0
				idx++
			}
		}
	}
	// Eight Maxwellian background electrons per cell.
	for k := 0; k < size.NZ; k++ {
		for j := 0; j < size.NY; j++ {
			for i := 0; i < size.NX; i++ {
				for p := 0; p < 8; p++ {
					s.X[idx] = float64(i) + r.Float64()
					s.Y[idx] = float64(j) + r.Float64()
					s.Z[idx] = float64(k) + r.Float64()
					s.VX[idx] = r.Maxwellian(vth)
					s.VY[idx] = r.Maxwellian(vth)
					s.VZ[idx] = r.Maxwellian(vth)
					s.Q[idx] = -1.0 / 9.0
					idx++
				}
			}
		}
	}
	return s, nil
}

func (s *Sim) cell(i, j, k int) int { return i + s.NX*(j+s.NY*k) }

func wrap(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// Deposit scatters particle charge onto the mesh with cloud-in-cell
// (trilinear) weights — the scatter-with-add of paper step 1.
func (s *Sim) Deposit() {
	for i := range s.Rho {
		s.Rho[i] = 0
	}
	s.DepositRange(0, len(s.X), s.Rho)
}

// DepositRange deposits particles [lo,hi) into the given density array
// (used by the parallel variants that deposit into private partials).
func (s *Sim) DepositRange(lo, hi int, rho []float64) {
	nx, ny, nz := s.NX, s.NY, s.NZ
	for p := lo; p < hi; p++ {
		x, y, z := s.X[p], s.Y[p], s.Z[p]
		i0 := int(math.Floor(x))
		j0 := int(math.Floor(y))
		k0 := int(math.Floor(z))
		fx := x - float64(i0)
		fy := y - float64(j0)
		fz := z - float64(k0)
		i0 = wrap(i0, nx)
		j0 = wrap(j0, ny)
		k0 = wrap(k0, nz)
		i1 := wrap(i0+1, nx)
		j1 := wrap(j0+1, ny)
		k1 := wrap(k0+1, nz)
		q := s.Q[p]
		rho[s.cell(i0, j0, k0)] += q * (1 - fx) * (1 - fy) * (1 - fz)
		rho[s.cell(i1, j0, k0)] += q * fx * (1 - fy) * (1 - fz)
		rho[s.cell(i0, j1, k0)] += q * (1 - fx) * fy * (1 - fz)
		rho[s.cell(i1, j1, k0)] += q * fx * fy * (1 - fz)
		rho[s.cell(i0, j0, k1)] += q * (1 - fx) * (1 - fy) * fz
		rho[s.cell(i1, j0, k1)] += q * fx * (1 - fy) * fz
		rho[s.cell(i0, j1, k1)] += q * (1 - fx) * fy * fz
		rho[s.cell(i1, j1, k1)] += q * fx * fy * fz
	}
}

// Solve computes E = −∇φ with ∇²φ = −ρ via FFTs, evaluating the field
// components in wavenumber space (paper §5.1.1: "solving the resulting
// algebraic equation in wavenumber space, and then reversing the
// transforms").
func (s *Sim) Solve() error {
	nx, ny, nz := s.NX, s.NY, s.NZ
	// Mean charge (neutralizing background) is removed by zeroing k=0.
	for i, r := range s.Rho {
		s.work.Data[i] = complex(r, 0)
	}
	if err := fft.Forward3(s.work); err != nil {
		return err
	}
	for k := 0; k < nz; k++ {
		skz := kEff(k, nz)
		for j := 0; j < ny; j++ {
			sky := kEff(j, ny)
			for i := 0; i < nx; i++ {
				skx := kEff(i, nx)
				k2 := skx*skx + sky*sky + skz*skz
				idx := s.work.Index(i, j, k)
				if k2 == 0 {
					s.ex.Data[idx], s.ey.Data[idx], s.ez.Data[idx] = 0, 0, 0
					continue
				}
				phi := s.work.Data[idx] / complex(k2, 0)
				// E = −∇φ → Ê = −i k φ̂ (using the centered-difference
				// effective wavenumber so the gather sees the discrete
				// gradient).
				gx := kGrad(i, nx)
				gy := kGrad(j, ny)
				gz := kGrad(k, nz)
				s.ex.Data[idx] = complex(0, -gx) * phi
				s.ey.Data[idx] = complex(0, -gy) * phi
				s.ez.Data[idx] = complex(0, -gz) * phi
			}
		}
	}
	if err := fft.Inverse3(s.ex); err != nil {
		return err
	}
	if err := fft.Inverse3(s.ey); err != nil {
		return err
	}
	if err := fft.Inverse3(s.ez); err != nil {
		return err
	}
	for i := range s.Ex {
		s.Ex[i] = real(s.ex.Data[i])
		s.Ey[i] = real(s.ey.Data[i])
		s.Ez[i] = real(s.ez.Data[i])
	}
	return nil
}

// kEff is the discrete-Laplacian effective wavenumber 2 sin(πi/n).
func kEff(i, n int) float64 { return 2 * math.Sin(math.Pi*float64(i)/float64(n)) }

// kGrad is the centered-difference effective wavenumber sin(2πi/n).
func kGrad(i, n int) float64 { return math.Sin(2 * math.Pi * float64(i) / float64(n)) }

// GatherPush interpolates E to the particles in [lo,hi) (paper step 3)
// and advances them one leapfrog step (step 4).
func (s *Sim) GatherPush(lo, hi int) {
	nx, ny, nz := s.NX, s.NY, s.NZ
	dt := s.Dt
	const chargeToMass = -1.0 // electrons: q/m < 0; |q| folded into Q weights
	for p := lo; p < hi; p++ {
		x, y, z := s.X[p], s.Y[p], s.Z[p]
		i0 := int(math.Floor(x))
		j0 := int(math.Floor(y))
		k0 := int(math.Floor(z))
		fx := x - float64(i0)
		fy := y - float64(j0)
		fz := z - float64(k0)
		i0 = wrap(i0, nx)
		j0 = wrap(j0, ny)
		k0 = wrap(k0, nz)
		i1 := wrap(i0+1, nx)
		j1 := wrap(j0+1, ny)
		k1 := wrap(k0+1, nz)
		w000 := (1 - fx) * (1 - fy) * (1 - fz)
		w100 := fx * (1 - fy) * (1 - fz)
		w010 := (1 - fx) * fy * (1 - fz)
		w110 := fx * fy * (1 - fz)
		w001 := (1 - fx) * (1 - fy) * fz
		w101 := fx * (1 - fy) * fz
		w011 := (1 - fx) * fy * fz
		w111 := fx * fy * fz
		c000, c100 := s.cell(i0, j0, k0), s.cell(i1, j0, k0)
		c010, c110 := s.cell(i0, j1, k0), s.cell(i1, j1, k0)
		c001, c101 := s.cell(i0, j0, k1), s.cell(i1, j0, k1)
		c011, c111 := s.cell(i0, j1, k1), s.cell(i1, j1, k1)
		ex := w000*s.Ex[c000] + w100*s.Ex[c100] + w010*s.Ex[c010] + w110*s.Ex[c110] +
			w001*s.Ex[c001] + w101*s.Ex[c101] + w011*s.Ex[c011] + w111*s.Ex[c111]
		ey := w000*s.Ey[c000] + w100*s.Ey[c100] + w010*s.Ey[c010] + w110*s.Ey[c110] +
			w001*s.Ey[c001] + w101*s.Ey[c101] + w011*s.Ey[c011] + w111*s.Ey[c111]
		ez := w000*s.Ez[c000] + w100*s.Ez[c100] + w010*s.Ez[c010] + w110*s.Ez[c110] +
			w001*s.Ez[c001] + w101*s.Ez[c101] + w011*s.Ez[c011] + w111*s.Ez[c111]

		s.VX[p] += chargeToMass * ex * dt
		s.VY[p] += chargeToMass * ey * dt
		s.VZ[p] += chargeToMass * ez * dt
		s.X[p] = wrapF(x+s.VX[p]*dt, float64(nx))
		s.Y[p] = wrapF(y+s.VY[p]*dt, float64(ny))
		s.Z[p] = wrapF(z+s.VZ[p]*dt, float64(nz))
	}
}

func wrapF(x, n float64) float64 {
	for x >= n {
		x -= n
	}
	for x < 0 {
		x += n
	}
	return x
}

// Step advances the full simulation by one timestep.
func (s *Sim) Step() error {
	s.Deposit()
	if err := s.Solve(); err != nil {
		return err
	}
	s.GatherPush(0, len(s.X))
	return nil
}

// TotalCharge sums the deposited mesh charge.
func (s *Sim) TotalCharge() float64 {
	var sum float64
	for _, r := range s.Rho {
		sum += r
	}
	return sum
}

// KineticEnergy reports ½Σv² (unit masses).
func (s *Sim) KineticEnergy() float64 {
	var sum float64
	for p := range s.VX {
		sum += s.VX[p]*s.VX[p] + s.VY[p]*s.VY[p] + s.VZ[p]*s.VZ[p]
	}
	return 0.5 * sum
}

// FieldEnergy reports ½Σ|E|² over the mesh.
func (s *Sim) FieldEnergy() float64 {
	var sum float64
	for i := range s.Ex {
		sum += s.Ex[i]*s.Ex[i] + s.Ey[i]*s.Ey[i] + s.Ez[i]*s.Ez[i]
	}
	return 0.5 * sum
}
