package amr

import (
	"math"
	"testing"

	"spp1000/internal/apps/ppm"
)

func TestUniformFlowNoRefinement(t *testing.T) {
	d, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.SetRegion(func(x, y float64) (float64, float64, float64, float64) {
		return 1.2, 0.3, -0.1, 2.0
	})
	for s := 0; s < 10; s++ {
		d.Step()
		if err := d.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if _, leaves := d.Blocks(); leaves != 6 {
		t.Fatalf("uniform flow refined: %d leaves, want 6 roots", leaves)
	}
	rho, u, v, p := d.Sample(10, 10)
	if math.Abs(rho-1.2) > 1e-10 || math.Abs(u-0.3) > 1e-10 ||
		math.Abs(v+0.1) > 1e-10 || math.Abs(p-2.0) > 1e-9 {
		t.Fatalf("uniform flow disturbed: %v %v %v %v", rho, u, v, p)
	}
}

// shockInit is a Sod-like double discontinuity on the periodic domain.
func shockInit(w float64) func(x, y float64) (float64, float64, float64, float64) {
	return func(x, y float64) (float64, float64, float64, float64) {
		if x > w/4 && x < 3*w/4 {
			return 1.0, 0, 0, 1.0
		}
		return 0.125, 0, 0, 0.1
	}
}

func TestShockTriggersRefinement(t *testing.T) {
	d, err := New(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := float64(4 * BlockSize)
	d.SetRegion(shockInit(w))
	m0 := d.TotalMass()
	for s := 0; s < 12; s++ {
		d.Step()
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
	}
	if lvl := d.MaxLevel(); lvl < 1 {
		t.Fatal("discontinuities should have triggered refinement")
	}
	// Refinement tracks the discontinuities: blocks near x=w/4 are
	// finer than blocks far away.
	nearLevel := d.leafAt(w/4, 8).level
	farLevel := d.leafAt(w/2, 8).level
	if nearLevel <= farLevel {
		t.Fatalf("refinement not localized: near=%d far=%d", nearLevel, farLevel)
	}
	// Conservation within interface truncation error (no flux
	// correction — documented).
	if rel := math.Abs(d.TotalMass()-m0) / m0; rel > 0.01 {
		t.Fatalf("mass drifted %.3f%%", rel*100)
	}
	// Solution stays physical.
	for x := 0.5; x < w; x += 1 {
		rho, _, _, p := d.Sample(x, 8)
		if rho <= 0 || p <= 0 || math.IsNaN(rho) || rho > 1.2 {
			t.Fatalf("unphysical state at x=%v: rho=%v p=%v", x, rho, p)
		}
	}
}

func TestAMRCheaperThanUniformFine(t *testing.T) {
	d, _ := New(4, 1)
	w := float64(4 * BlockSize)
	d.SetRegion(shockInit(w))
	steps := 10
	for s := 0; s < steps; s++ {
		d.Step()
	}
	maxLvl := d.MaxLevel()
	if maxLvl < 1 {
		t.Skip("no refinement happened")
	}
	// Equivalent uniform grid at the finest resolution.
	fineZones := int64(4*BlockSize*BlockSize) << (2 * uint(maxLvl))
	uniformUpdates := fineZones * int64(steps)
	if d.ZoneUpdates >= uniformUpdates {
		t.Fatalf("AMR (%d zone updates) should beat uniform fine (%d)",
			d.ZoneUpdates, uniformUpdates)
	}
	t.Logf("AMR efficiency: %d vs uniform %d (%.1fx saved)",
		d.ZoneUpdates, uniformUpdates, float64(uniformUpdates)/float64(d.ZoneUpdates))
}

func TestDerefinementAfterSmoothing(t *testing.T) {
	d, _ := New(2, 2)
	w := float64(2 * BlockSize)
	// Sharp bump: refine.
	d.SetRegion(func(x, y float64) (float64, float64, float64, float64) {
		dx, dy := x-w/2, y-w/2
		if dx*dx+dy*dy < 9 {
			return 3.0, 0, 0, 3.0
		}
		return 1, 0, 0, 1
	})
	d.Regrid()
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_, refined := d.Blocks()
	if refined <= 4 {
		t.Fatal("bump should have refined some blocks")
	}
	// Overwrite with a uniform field: everything smooth again.
	d.SetRegion(func(x, y float64) (float64, float64, float64, float64) {
		return 1, 0, 0, 1
	})
	for i := 0; i < MaxLevels; i++ {
		d.Regrid()
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, leaves := d.Blocks(); leaves != 4 {
		t.Fatalf("smooth field should derefine to 4 roots, have %d leaves", leaves)
	}
}

func TestAMRMatchesSingleGridWhileUnrefined(t *testing.T) {
	// Below the refinement threshold, an AMR domain of root blocks must
	// evolve exactly like the equivalent plain tiled PPM grid.
	d, _ := New(2, 2)
	g, err := ppm.NewGrid(2*BlockSize, 2*BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	init := func(x, y float64) (float64, float64, float64, float64) {
		// Gentle wave: below the refine threshold.
		return 1 + 0.02*math.Sin(2*math.Pi*x/float64(2*BlockSize)), 0.1, 0, 1
	}
	d.SetRegion(init)
	for j := 0; j < 2*BlockSize; j++ {
		for i := 0; i < 2*BlockSize; i++ {
			rho, u, v, p := init(float64(i)+0.5, float64(j)+0.5)
			g.Set(i, j, rho, u, v, p)
		}
	}
	pc := ppm.NewPencil(2*BlockSize + 2*ppm.Pad)
	for s := 0; s < 5; s++ {
		d.Step()
		g.Step(ppm.Periodic, 0.4, pc)
	}
	if lvl := d.MaxLevel(); lvl != 0 {
		t.Fatalf("gentle wave refined to level %d", lvl)
	}
	for j := 0; j < 2*BlockSize; j += 3 {
		for i := 0; i < 2*BlockSize; i += 3 {
			r1, _, _, _ := d.Sample(float64(i)+0.5, float64(j)+0.5)
			r2, _, _, _ := g.At(i, j)
			if math.Abs(r1-r2) > 1e-10 {
				t.Fatalf("AMR diverged from plain grid at (%d,%d): %v vs %v", i, j, r1, r2)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 3); err == nil {
		t.Fatal("invalid tiling should be rejected")
	}
}

func TestSamplePeriodicWrap(t *testing.T) {
	d, _ := New(2, 2)
	d.SetRegion(func(x, y float64) (float64, float64, float64, float64) {
		return 1 + x/100, 0, 0, 1
	})
	w := float64(2 * BlockSize)
	r1, _, _, _ := d.Sample(0.5, 0.5)
	r2, _, _, _ := d.Sample(0.5+w, 0.5+w)
	r3, _, _, _ := d.Sample(0.5-w, 0.5)
	if r1 != r2 || r1 != r3 {
		t.Fatalf("periodic sampling broken: %v %v %v", r1, r2, r3)
	}
}
