package amr

import (
	"math"
	"testing"
)

func TestSubcycledUniformFlowExact(t *testing.T) {
	d, _ := New(2, 2)
	d.SetRegion(func(x, y float64) (float64, float64, float64, float64) {
		return 1.1, 0.2, -0.1, 1.4
	})
	for s := 0; s < 8; s++ {
		d.StepSubcycled()
		if err := d.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	rho, u, v, p := d.Sample(5, 5)
	if math.Abs(rho-1.1) > 1e-10 || math.Abs(u-0.2) > 1e-10 ||
		math.Abs(v+0.1) > 1e-10 || math.Abs(p-1.4) > 1e-9 {
		t.Fatalf("uniform flow disturbed: %v %v %v %v", rho, u, v, p)
	}
}

func TestSubcycledConservesToTruncation(t *testing.T) {
	d, _ := New(4, 1)
	w := float64(4 * BlockSize)
	d.SetRegion(shockInit(w))
	m0 := d.TotalMass()
	for s := 0; s < 10; s++ {
		d.StepSubcycled()
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
	}
	if rel := math.Abs(d.TotalMass()-m0) / m0; rel > 0.02 {
		t.Fatalf("mass drifted %.3f%% under subcycling", rel*100)
	}
	// Physicality.
	for x := 0.5; x < w; x += 1 {
		rho, _, _, p := d.Sample(x, 8)
		if rho <= 0 || p <= 0 || math.IsNaN(rho) {
			t.Fatalf("unphysical at x=%v: rho=%v p=%v", x, rho, p)
		}
	}
}

func TestSubcyclingReducesZoneUpdates(t *testing.T) {
	// To reach the same physical time, subcycled stepping spends far
	// fewer zone updates on the coarse blocks.
	const targetT = 4.0
	run := func(sub bool) int64 {
		d, _ := New(4, 1)
		w := float64(4 * BlockSize)
		d.SetRegion(shockInit(w))
		tPhys := 0.0
		for tPhys < targetT {
			if sub {
				tPhys += d.StepSubcycled()
			} else {
				tPhys += d.Step()
			}
		}
		return d.ZoneUpdates
	}
	plain := run(false)
	sub := run(true)
	if sub >= plain {
		t.Fatalf("subcycled updates (%d) should be below single-dt updates (%d)", sub, plain)
	}
	t.Logf("zone updates to t=%.1f: single-dt %d, subcycled %d (%.2fx saved)",
		targetT, plain, sub, float64(plain)/float64(sub))
}

func TestSubcycledTracksPlainStepping(t *testing.T) {
	// Both integrators must agree on the coarse features of the flow.
	w := float64(4 * BlockSize)
	mk := func() *Domain {
		d, _ := New(4, 1)
		d.SetRegion(shockInit(w))
		return d
	}
	a, b := mk(), mk()
	const targetT = 3.0
	for tp := 0.0; tp < targetT; {
		tp += a.Step()
	}
	for tp := 0.0; tp < targetT; {
		tp += b.StepSubcycled()
	}
	var l1, n float64
	for x := 0.5; x < w; x += 0.5 {
		ra, _, _, _ := a.Sample(x, 8)
		rb, _, _, _ := b.Sample(x, 8)
		l1 += math.Abs(ra - rb)
		n++
	}
	if mean := l1 / n; mean > 0.03 {
		t.Fatalf("integrators diverged: mean |Δρ| = %v", mean)
	}
}
