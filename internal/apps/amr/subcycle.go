package amr

import "math"

// StepSubcycled advances the composite solution with Berger–Oliger
// per-level timesteps: a block at level L takes 2^L substeps of dt/2^L,
// so coarse blocks are not dragged down to the finest CFL limit — the
// second half of the AMR efficiency argument (the first being spatial).
// Fine-block ghosts next to coarser leaves use the already-advanced
// coarse state (first-order in time at the interface; PARAMESH offers
// the same shortcut). It returns the coarse (root-level) dt.
//
// Documented simplification, as in Step: no refluxing at coarse-fine
// interfaces, so conservation holds to truncation error there.
func (d *Domain) StepSubcycled() float64 {
	d.step++
	if d.step%d.RegridInterval == 1 && d.step > 1 {
		d.Regrid()
	}
	var smax float64
	for _, b := range d.blocks {
		if !b.leaf {
			continue
		}
		if s := b.grid.MaxWavespeed(); s > smax {
			smax = s
		}
	}
	// Root-level dt; each level L advances at dt/2^L, which satisfies
	// its own CFL because its cells are 2^L times smaller.
	dt := d.CFL * cellSize(0) / math.Max(smax, 1e-12)
	d.advanceLevel(0, dt)
	return dt
}

// advanceLevel advances every leaf at exactly `level` by dt, then
// recursively advances the finer levels twice with half the step.
func (d *Domain) advanceLevel(level int, dt float64) {
	var mine []*block
	deeper := false
	for _, b := range d.blocks {
		if !b.leaf {
			continue
		}
		if b.level == level {
			mine = append(mine, b)
		} else if b.level > level {
			deeper = true
		}
	}
	// Ghost fill for this level from the composite state, then sweep.
	for _, b := range mine {
		d.fillGhosts(b)
	}
	for _, b := range mine {
		dtdx := dt / cellSize(b.level)
		b.grid.SweepX(dtdx, d.pencil)
		b.grid.SweepY(dtdx, d.pencil)
		d.ZoneUpdates += BlockSize * BlockSize
	}
	if deeper {
		d.advanceLevel(level+1, dt/2)
		d.advanceLevel(level+1, dt/2)
	}
}
