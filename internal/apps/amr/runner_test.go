package amr

import "testing"

func shockDomain(t *testing.T) *Domain {
	t.Helper()
	d, err := New(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := float64(4 * BlockSize)
	d.SetRegion(shockInit(w))
	return d
}

func TestRunProducesTiming(t *testing.T) {
	r, err := Run(shockDomain(t), 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Seconds <= 0 || r.Mflops <= 0 {
		t.Fatalf("degenerate result: %+v", r)
	}
	if r.MaxLevel < 1 {
		t.Fatal("shock should refine during the timed run")
	}
	if r.ZoneUpdates >= r.UniformZones {
		t.Fatalf("AMR should update fewer zones than uniform: %d vs %d",
			r.ZoneUpdates, r.UniformZones)
	}
}

func TestRunScalesWithProcs(t *testing.T) {
	r1, err := Run(shockDomain(t), 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Run(shockDomain(t), 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	speedup := r1.Seconds / r8.Seconds
	if speedup < 4 || speedup > 8.2 {
		t.Fatalf("8-CPU AMR speedup = %.2f (serial regrid limits it)", speedup)
	}
}
