package amr

import (
	"fmt"

	"spp1000/internal/apps/ppm"
	"spp1000/internal/machine"
	"spp1000/internal/perfmodel"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
)

// Result is one timed AMR run on the simulated machine.
type Result struct {
	Procs        int
	Steps        int
	Seconds      float64
	Mflops       float64
	LeafBlocks   int // at the end of the run
	MaxLevel     int
	ZoneUpdates  int64
	UniformZones int64 // equivalent uniform-fine zone updates
}

func (r Result) String() string {
	return fmt.Sprintf("amr p=%d: %.3f s, %.1f Mflop/s, %d leaves (max level %d), %.1fx fewer zones than uniform",
		r.Procs, r.Seconds, r.Mflops, r.LeafBlocks, r.MaxLevel,
		float64(r.UniformZones)/float64(r.ZoneUpdates))
}

// zoneFlops reuses the PPM per-zone operation counts (both sweeps).
const zoneFlops = 2 * 260

// Run evolves the domain `steps` steps while timing it on the simulated
// machine: each step, the leaf blocks (Morton-ordered by construction
// of the quadtree walk) are dealt round-robin to the team; ghost fills
// are shared-memory traffic; the regrid runs serially on thread 0 —
// the structure a PARAMESH-style port to the SPP-1000 would have.
// The physics advances for real; the machine time comes from playing
// each step's measured block count through the cost model.
func Run(d *Domain, procs, steps int) (Result, error) {
	hn := (procs + topology.CPUsPerNode - 1) / topology.CPUsPerNode
	if hn < 1 {
		hn = 1
	}
	m, err := machine.New(machine.Config{Hypernodes: hn})
	if err != nil {
		return Result{}, err
	}

	// Per-block per-step cost (PPM sweeps over BlockSize² + ghost fill
	// traffic; ghost sources live on other threads' blocks → crossbar
	// or ring class).
	blockChunk := func() int64 {
		cells := int64((BlockSize + 2*ppm.Pad) * (BlockSize + 2))
		ghost := int64((BlockSize+2*ppm.Pad)*(BlockSize+2*ppm.Pad) - BlockSize*BlockSize)
		c := perfmodel.Chunk{
			Flops:     cells * 260 * 2,
			Divides:   cells * 6,
			IntOps:    cells * 150,
			CacheHits: cells * 90,
		}
		c.LocalMisses = cells * 2
		ghostLines := ghost * 4 * 8 / topology.CacheLineBytes
		if hn > 1 {
			c.GlobalMisses += ghostLines / 4
			c.HypernodeMisses += ghostLines - ghostLines/4
		} else {
			c.HypernodeMisses += ghostLines
		}
		return perfmodel.Cycles(m.P, c)
	}()
	// Regrid cost per step charged serially: criterion scan per leaf.
	regridChunkPerLeaf := perfmodel.Cycles(m.P, perfmodel.Chunk{
		Flops:     BlockSize * BlockSize * 4,
		CacheHits: BlockSize * BlockSize * 2,
	})

	// Evolve the real physics, capturing the per-step leaf counts.
	leavesPerStep := make([]int, steps)
	var updates int64
	for s := 0; s < steps; s++ {
		d.Step()
		_, leaves := d.Blocks()
		leavesPerStep[s] = leaves
		updates += int64(leaves) * BlockSize * BlockSize
	}

	// Replay the step structure on the machine.
	bar := threads.NewBarrier(m, procs, 0)
	elapsed, err := threads.RunTeam(m, procs, threads.HighLocality, func(th *machine.Thread, tid int) {
		for s := 0; s < steps; s++ {
			leaves := leavesPerStep[s]
			if tid == 0 {
				th.ComputeCycles(int64(leaves) * regridChunkPerLeaf)
			}
			bar.Wait(th)
			mine := leaves / procs
			if tid < leaves%procs {
				mine++
			}
			th.ComputeCycles(int64(mine) * blockChunk)
			bar.Wait(th)
		}
	})
	if err != nil {
		return Result{}, err
	}
	sec := elapsed.Seconds()
	_, leaves := d.Blocks()
	maxLvl := d.MaxLevel()
	uniform := int64(d.RootW*d.RootH*BlockSize*BlockSize) << (2 * uint(maxLvl)) * int64(steps)
	return Result{
		Procs: procs, Steps: steps, Seconds: sec,
		Mflops:       float64(updates*zoneFlops) / sec / 1e6,
		LeafBlocks:   leaves,
		MaxLevel:     maxLvl,
		ZoneUpdates:  updates,
		UniformZones: uniform,
	}, nil
}
