// Package amr implements block-structured adaptive mesh refinement over
// the PPM hydrodynamics kernel — the capability the paper's §5.2 calls
// out as a motivation ("the FEM is naturally suited for adaptive mesh
// refinement, a technique by which high spatial resolution is
// dynamically applied only in the regions where it is determined to be
// necessary") and which two of the paper's authors (MacNeice and Olson)
// later released as PARAMESH.
//
// The design follows PARAMESH's choices: the domain is tiled by
// fixed-size blocks organized in a quadtree; every block has the same
// logical size (BlockSize² interior zones plus the PPM ghost frame);
// refinement halves the cell size; neighbouring leaves differ by at
// most one level; ghost zones are filled from the covering leaves
// (copy at equal level, averaging from finer, piecewise-constant
// prolongation from coarser). Refinement follows a density-gradient
// criterion re-evaluated every RegridInterval steps.
//
// Documented simplification: no flux correction at coarse-fine
// interfaces (PARAMESH also made this optional), so conservation holds
// only to the interface truncation error — the tests bound it.
package amr

import (
	"fmt"
	"math"

	"spp1000/internal/apps/ppm"
)

// BlockSize is the interior zone count per block side.
const BlockSize = 16

// MaxLevels bounds the refinement depth (level 0 = root).
const MaxLevels = 4

// block is one quadtree node. Only leaves carry live solution data.
type block struct {
	level    int
	bi, bj   int // block coordinates at this level
	grid     *ppm.Grid
	parent   int      // index into Domain.blocks, -1 for roots
	children [4]int32 // -1 = none; order (0,0),(1,0),(0,1),(1,1)
	leaf     bool
}

// Domain is an AMR hydrodynamics domain (doubly periodic).
type Domain struct {
	// RootW, RootH are the root-level block counts.
	RootW, RootH int
	CFL          float64
	// RefineThresh / DerefineThresh bound the density-gradient
	// criterion.
	RefineThresh   float64
	DerefineThresh float64
	RegridInterval int

	blocks []*block
	// index maps (level, bi, bj) to a block.
	index map[[3]int]int

	pencil *ppm.Pencil
	step   int

	// ZoneUpdates accumulates leaf-zone updates (the work metric).
	ZoneUpdates int64
}

// New builds a domain of rootW×rootH root blocks (each BlockSize²
// zones) of quiescent gas.
func New(rootW, rootH int) (*Domain, error) {
	if rootW < 1 || rootH < 1 {
		return nil, fmt.Errorf("amr: invalid root tiling %dx%d", rootW, rootH)
	}
	d := &Domain{
		RootW: rootW, RootH: rootH,
		CFL:            0.4,
		RefineThresh:   0.10,
		DerefineThresh: 0.03,
		RegridInterval: 4,
		index:          map[[3]int]int{},
		pencil:         ppm.NewPencil(BlockSize + 2*ppm.Pad + 8),
	}
	for bj := 0; bj < rootH; bj++ {
		for bi := 0; bi < rootW; bi++ {
			if _, err := d.addBlock(0, bi, bj, -1); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

func (d *Domain) addBlock(level, bi, bj, parent int) (int, error) {
	g, err := ppm.NewGrid(BlockSize, BlockSize)
	if err != nil {
		return 0, err
	}
	b := &block{
		level: level, bi: bi, bj: bj, grid: g,
		parent: parent, children: [4]int32{-1, -1, -1, -1}, leaf: true,
	}
	d.blocks = append(d.blocks, b)
	idx := len(d.blocks) - 1
	d.index[[3]int{level, bi, bj}] = idx
	return idx, nil
}

// Blocks reports the total and leaf block counts.
func (d *Domain) Blocks() (total, leaves int) {
	for _, b := range d.blocks {
		total++
		if b.leaf {
			leaves++
		}
	}
	return
}

// MaxLevel reports the deepest live refinement level.
func (d *Domain) MaxLevel() int {
	max := 0
	for _, b := range d.blocks {
		if b.leaf && b.level > max {
			max = b.level
		}
	}
	return max
}

// levelDims reports the block-grid dimensions at a level.
func (d *Domain) levelDims(level int) (w, h int) {
	return d.RootW << level, d.RootH << level
}

// cellSize is the physical zone edge length at a level (root zones have
// unit size).
func cellSize(level int) float64 { return 1 / float64(int(1)<<level) }

// SetRegion applies f(x, y) → (rho, u, v, p) over every leaf zone
// center; x and y are in root-zone units.
func (d *Domain) SetRegion(f func(x, y float64) (rho, u, v, p float64)) {
	for _, b := range d.blocks {
		if !b.leaf {
			continue
		}
		h := cellSize(b.level)
		for j := 0; j < BlockSize; j++ {
			for i := 0; i < BlockSize; i++ {
				x := (float64(b.bi*BlockSize+i) + 0.5) * h
				y := (float64(b.bj*BlockSize+j) + 0.5) * h
				rho, u, v, p := f(x, y)
				b.grid.Set(i, j, rho, u, v, p)
			}
		}
	}
}

// Sample returns the solution at the zone of the covering leaf under
// the physical point (x, y) in root-zone units (periodic wrap).
func (d *Domain) Sample(x, y float64) (rho, u, v, p float64) {
	W := float64(d.RootW * BlockSize)
	H := float64(d.RootH * BlockSize)
	x = math.Mod(math.Mod(x, W)+W, W)
	y = math.Mod(math.Mod(y, H)+H, H)
	b := d.leafAt(x, y)
	h := cellSize(b.level)
	i := int(x/h) - b.bi*BlockSize
	j := int(y/h) - b.bj*BlockSize
	i = clamp(i, 0, BlockSize-1)
	j = clamp(j, 0, BlockSize-1)
	return b.grid.At(i, j)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// LevelAt reports the refinement level of the leaf covering the
// physical point (x, y) in root-zone units (periodic wrap).
func (d *Domain) LevelAt(x, y float64) int {
	W := float64(d.RootW * BlockSize)
	H := float64(d.RootH * BlockSize)
	x = math.Mod(math.Mod(x, W)+W, W)
	y = math.Mod(math.Mod(y, H)+H, H)
	return d.leafAt(x, y).level
}

// leafAt walks the quadtree to the leaf covering the point.
func (d *Domain) leafAt(x, y float64) *block {
	bi := int(x) / BlockSize
	bj := int(y) / BlockSize
	idx := d.index[[3]int{0, bi, bj}]
	b := d.blocks[idx]
	for !b.leaf {
		// Which child quadrant covers the point?
		h := cellSize(b.level + 1)
		midX := float64((2*b.bi + 1) * BlockSize)
		midY := float64((2*b.bj + 1) * BlockSize)
		k := 0
		if x >= midX*h {
			k |= 1
		}
		if y >= midY*h {
			k |= 2
		}
		b = d.blocks[b.children[k]]
	}
	return b
}

// cellValue reads the conservative sample of the composite solution for
// a target cell at `level` with global cell coordinates (ci, cj):
// a copy at equal level, an average over finer leaves, or the covering
// coarse cell.
func (d *Domain) cellValue(level, ci, cj int) (rho, u, v, p float64) {
	w, h := d.levelDims(level)
	wc, hc := w*BlockSize, h*BlockSize
	ci = ((ci % wc) + wc) % wc
	cj = ((cj % hc) + hc) % hc
	hsz := cellSize(level)
	x := (float64(ci) + 0.5) * hsz
	y := (float64(cj) + 0.5) * hsz
	leaf := d.leafAt(x, y)
	switch {
	case leaf.level == level:
		return leaf.grid.At(ci-leaf.bi*BlockSize, cj-leaf.bj*BlockSize)
	case leaf.level < level:
		// Coarser: piecewise-constant prolongation.
		dl := level - leaf.level
		return leaf.grid.At(
			clamp((ci>>dl)-leaf.bi*BlockSize, 0, BlockSize-1),
			clamp((cj>>dl)-leaf.bj*BlockSize, 0, BlockSize-1))
	default:
		// Finer: conservative average over the covered fine cells.
		dl := leaf.level - level
		n := 1 << dl
		var sr, su, sv, sp float64
		for fj := 0; fj < n; fj++ {
			for fi := 0; fi < n; fi++ {
				r, uu, vv, pp := d.cellValue(level+dl, ci<<dl+fi, cj<<dl+fj)
				sr += r
				su += uu
				sv += vv
				sp += pp
			}
		}
		f := float64(n * n)
		return sr / f, su / f, sv / f, sp / f
	}
}

// fillGhosts fills one leaf's ghost frame from the composite solution.
func (d *Domain) fillGhosts(b *block) {
	g := b.grid
	s := g.Stride()
	for j := -ppm.Pad; j < BlockSize+ppm.Pad; j++ {
		for i := -ppm.Pad; i < BlockSize+ppm.Pad; i++ {
			if i >= 0 && i < BlockSize && j >= 0 && j < BlockSize {
				continue
			}
			rho, u, v, p := d.cellValue(b.level, b.bi*BlockSize+i, b.bj*BlockSize+j)
			at := (j+ppm.Pad)*s + (i + ppm.Pad)
			g.Rho[at], g.U[at], g.V[at], g.P[at] = rho, u, v, p
		}
	}
}

// Step advances the whole composite solution one timestep (single
// global dt from the finest CFL constraint) and returns dt.
func (d *Domain) Step() float64 {
	d.step++
	if d.step%d.RegridInterval == 1 && d.step > 1 {
		d.Regrid()
	}
	// Ghost fill for all leaves first (so every block sees the
	// pre-step composite state — PARAMESH's guard-cell fill).
	for _, b := range d.blocks {
		if b.leaf {
			d.fillGhosts(b)
		}
	}
	// Global dt: finest level dominates.
	var smax float64
	finest := 0
	for _, b := range d.blocks {
		if !b.leaf {
			continue
		}
		if s := b.grid.MaxWavespeed(); s > smax {
			smax = s
		}
		if b.level > finest {
			finest = b.level
		}
	}
	dt := d.CFL * cellSize(finest) / math.Max(smax, 1e-12)
	// Advance each leaf with its own dt/dx.
	for _, b := range d.blocks {
		if !b.leaf {
			continue
		}
		dtdx := dt / cellSize(b.level)
		b.grid.SweepX(dtdx, d.pencil)
		b.grid.SweepY(dtdx, d.pencil)
		d.ZoneUpdates += BlockSize * BlockSize
	}
	return dt
}

// gradientScore is the refinement criterion: the largest relative
// density jump between adjacent interior zones of the block.
func gradientScore(g *ppm.Grid) float64 {
	var score float64
	for j := 0; j < BlockSize; j++ {
		for i := 0; i < BlockSize; i++ {
			r0, _, _, _ := g.At(i, j)
			if i+1 < BlockSize {
				r1, _, _, _ := g.At(i+1, j)
				if s := math.Abs(r1-r0) / math.Max(r0, 1e-12); s > score {
					score = s
				}
			}
			if j+1 < BlockSize {
				r1, _, _, _ := g.At(i, j+1)
				if s := math.Abs(r1-r0) / math.Max(r0, 1e-12); s > score {
					score = s
				}
			}
		}
	}
	return score
}

// Regrid applies the refinement criterion: refine flagged leaves (up to
// MaxLevels), derefine sibling quartets that are uniformly smooth, and
// restore 2:1 level balance between neighbours.
func (d *Domain) Regrid() {
	// Refine.
	for pass := 0; pass < MaxLevels; pass++ {
		changed := false
		for idx := 0; idx < len(d.blocks); idx++ {
			b := d.blocks[idx]
			if !b.leaf || b.level >= MaxLevels-1 {
				continue
			}
			if gradientScore(b.grid) > d.RefineThresh || d.neighbourNeedsMe(b) {
				d.refine(idx)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Derefine smooth quartets whose parent would stay 2:1 balanced.
	for idx := 0; idx < len(d.blocks); idx++ {
		p := d.blocks[idx]
		if p.leaf {
			continue
		}
		allSmoothLeaves := true
		for _, c := range p.children {
			if c < 0 || !d.blocks[c].leaf ||
				gradientScore(d.blocks[c].grid) > d.DerefineThresh {
				allSmoothLeaves = false
				break
			}
		}
		if allSmoothLeaves && !d.derefineWouldUnbalance(p) {
			d.derefine(idx)
		}
	}
}

// neighbourNeedsMe reports whether a neighbouring leaf is already two
// levels finer — the 2:1 balance rule forces this block to refine.
func (d *Domain) neighbourNeedsMe(b *block) bool {
	h := cellSize(b.level)
	// Probe just outside each edge midpoint and corner.
	probes := [][2]float64{
		{float64(b.bi*BlockSize)*h - 0.01, (float64(b.bj*BlockSize) + float64(BlockSize)/2) * h},
		{float64((b.bi+1)*BlockSize)*h + 0.01, (float64(b.bj*BlockSize) + float64(BlockSize)/2) * h},
		{(float64(b.bi*BlockSize) + float64(BlockSize)/2) * h, float64(b.bj*BlockSize)*h - 0.01},
		{(float64(b.bi*BlockSize) + float64(BlockSize)/2) * h, float64((b.bj+1)*BlockSize)*h + 0.01},
	}
	W := float64(d.RootW * BlockSize)
	H := float64(d.RootH * BlockSize)
	for _, pr := range probes {
		x := math.Mod(math.Mod(pr[0], W)+W, W)
		y := math.Mod(math.Mod(pr[1], H)+H, H)
		if d.leafAt(x, y).level > b.level+1 {
			return true
		}
	}
	return false
}

// derefineWouldUnbalance reports whether collapsing p's children would
// leave a neighbouring leaf more than one level finer than p.
func (d *Domain) derefineWouldUnbalance(p *block) bool {
	h := cellSize(p.level)
	x0 := float64(p.bi*BlockSize) * h
	y0 := float64(p.bj*BlockSize) * h
	x1 := float64((p.bi+1)*BlockSize) * h
	y1 := float64((p.bj+1)*BlockSize) * h
	W := float64(d.RootW * BlockSize)
	H := float64(d.RootH * BlockSize)
	eps := 0.01
	var probes [][2]float64
	steps := 4
	for k := 0; k <= steps; k++ {
		f := float64(k) / float64(steps)
		xs := x0 + f*(x1-x0)
		ys := y0 + f*(y1-y0)
		probes = append(probes,
			[2]float64{xs, y0 - eps}, [2]float64{xs, y1 + eps},
			[2]float64{x0 - eps, ys}, [2]float64{x1 + eps, ys})
	}
	for _, pr := range probes {
		x := math.Mod(math.Mod(pr[0], W)+W, W)
		y := math.Mod(math.Mod(pr[1], H)+H, H)
		if d.leafAt(x, y).level > p.level+1 {
			return true
		}
	}
	return false
}

// refine splits leaf idx into four children, prolongating its data.
func (d *Domain) refine(idx int) {
	b := d.blocks[idx]
	if !b.leaf {
		return
	}
	b.leaf = false
	for k := 0; k < 4; k++ {
		ci := 2*b.bi + (k & 1)
		cj := 2*b.bj + (k >> 1)
		cidx, err := d.addBlock(b.level+1, ci, cj, idx)
		if err != nil {
			panic(err) // BlockSize geometry is fixed; cannot fail
		}
		b = d.blocks[idx] // addBlock may grow the slice
		b.children[k] = int32(cidx)
		child := d.blocks[cidx]
		// Piecewise-constant prolongation from the parent.
		offI := (k & 1) * BlockSize / 2
		offJ := (k >> 1) * BlockSize / 2
		for j := 0; j < BlockSize; j++ {
			for i := 0; i < BlockSize; i++ {
				rho, u, v, p := b.grid.At(offI+i/2, offJ+j/2)
				child.grid.Set(i, j, rho, u, v, p)
			}
		}
	}
}

// derefine restricts four leaf children back into parent idx.
func (d *Domain) derefine(idx int) {
	p := d.blocks[idx]
	for k, c := range p.children {
		child := d.blocks[c]
		offI := (k & 1) * BlockSize / 2
		offJ := (k >> 1) * BlockSize / 2
		for j := 0; j < BlockSize; j += 2 {
			for i := 0; i < BlockSize; i += 2 {
				var sr, su, sv, sp float64
				for fj := 0; fj < 2; fj++ {
					for fi := 0; fi < 2; fi++ {
						r, u, v, pp := child.grid.At(i+fi, j+fj)
						sr += r
						su += u
						sv += v
						sp += pp
					}
				}
				p.grid.Set(offI+i/2, offJ+j/2, sr/4, su/4, sv/4, sp/4)
			}
		}
		delete(d.index, [3]int{child.level, child.bi, child.bj})
		child.leaf = false // orphaned; kept in the slice but unreachable
	}
	p.children = [4]int32{-1, -1, -1, -1}
	p.leaf = true
}

// TotalMass integrates ρ over the composite domain (area-weighted).
func (d *Domain) TotalMass() float64 {
	var m float64
	for _, b := range d.blocks {
		if !b.leaf {
			continue
		}
		h := cellSize(b.level)
		m += b.grid.TotalMass() * h * h
	}
	return m
}

// CheckInvariants validates the quadtree: leaves partition the domain
// (area sums to the root area), the index is consistent, and neighbour
// levels respect 2:1 balance.
func (d *Domain) CheckInvariants() error {
	var area float64
	for _, b := range d.blocks {
		if !b.leaf {
			continue
		}
		h := cellSize(b.level)
		side := float64(BlockSize) * h
		area += side * side
		if got := d.index[[3]int{b.level, b.bi, b.bj}]; d.blocks[got] != b {
			return fmt.Errorf("amr: index inconsistent for block L%d (%d,%d)", b.level, b.bi, b.bj)
		}
	}
	want := float64(d.RootW*BlockSize) * float64(d.RootH*BlockSize)
	if math.Abs(area-want) > 1e-6 {
		return fmt.Errorf("amr: leaves cover area %v, domain is %v", area, want)
	}
	// 2:1 balance at edge midpoints.
	for _, b := range d.blocks {
		if b.leaf && d.neighbourNeedsMe(b) && b.level < MaxLevels-1 {
			return fmt.Errorf("amr: 2:1 balance violated at block L%d (%d,%d)", b.level, b.bi, b.bj)
		}
	}
	return nil
}
