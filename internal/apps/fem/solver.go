package fem

import "math"

// Gamma is the ideal-gas adiabatic index.
const Gamma = 1.4

// NVars is the number of conserved variables per point:
// ρ, ρu, ρv, E.
const NVars = 4

// State is the conserved-variable field over the mesh points plus the
// solver scratch arrays (residual and dissipation accumulators).
type State struct {
	Mesh *Mesh
	// U[4p..4p+3] = ρ, ρu, ρv, E at point p.
	U []float64
	// Res and Diss are the element-to-point scatter-add targets.
	Res  []float64
	Diss []float64
	// CFL is the timestep safety factor.
	CFL float64
	// Nu scales the Lax–Friedrichs dissipation.
	Nu float64

	// scratch for the vector-style coding
	vecUbar, vecFx, vecGy []float64
}

// NewState allocates a state over the mesh with uniform quiescent gas.
func NewState(m *Mesh) *State {
	s := &State{
		Mesh: m,
		U:    make([]float64, NVars*m.NumPoints()),
		Res:  make([]float64, NVars*m.NumPoints()),
		Diss: make([]float64, NVars*m.NumPoints()),
		CFL:  0.4,
		Nu:   0.6,
	}
	for p := 0; p < m.NumPoints(); p++ {
		s.SetPrimitive(p, 1, 0, 0, 1)
	}
	return s
}

// SetPrimitive sets point p from primitive variables (ρ, u, v, pressure).
func (s *State) SetPrimitive(p int, rho, u, v, pr float64) {
	s.U[4*p] = rho
	s.U[4*p+1] = rho * u
	s.U[4*p+2] = rho * v
	s.U[4*p+3] = pr/(Gamma-1) + 0.5*rho*(u*u+v*v)
}

// Primitive recovers (ρ, u, v, pressure) at point p.
func (s *State) Primitive(p int) (rho, u, v, pr float64) {
	rho = s.U[4*p]
	u = s.U[4*p+1] / rho
	v = s.U[4*p+2] / rho
	pr = (Gamma - 1) * (s.U[4*p+3] - 0.5*rho*(u*u+v*v))
	return
}

// flux evaluates the x- and y-direction Euler fluxes of a state vector.
func flux(u0, u1, u2, u3 float64) (fx, gx [NVars]float64) {
	rho := u0
	if rho < 1e-12 {
		rho = 1e-12
	}
	vx := u1 / rho
	vy := u2 / rho
	pr := (Gamma - 1) * (u3 - 0.5*rho*(vx*vx+vy*vy))
	if pr < 0 {
		pr = 0
	}
	fx[0] = u1
	fx[1] = u1*vx + pr
	fx[2] = u1 * vy
	fx[3] = (u3 + pr) * vx
	gx[0] = u2
	gx[1] = u2 * vx
	gx[2] = u2*vy + pr
	gx[3] = (u3 + pr) * vy
	return
}

// MaxWavespeed scans the points for the largest |v|+c — the first class
// of global communication (the timestep reduction).
func (s *State) MaxWavespeed() float64 {
	return s.MaxWavespeedRange(0, s.Mesh.NumPoints())
}

// MaxWavespeedRange scans points [lo,hi).
func (s *State) MaxWavespeedRange(lo, hi int) float64 {
	var smax float64
	for p := lo; p < hi; p++ {
		rho, u, v, pr := s.Primitive(p)
		if rho < 1e-12 || pr < 0 {
			continue
		}
		c := math.Sqrt(Gamma * pr / rho)
		sp := math.Sqrt(u*u+v*v) + c
		if sp > smax {
			smax = sp
		}
	}
	return smax
}

// ElementPhase computes the residual and dissipation contributions of
// elements [lo,hi): the gather (3 point states per element) followed by
// the scatter-add into Res/Diss. The caller zeroes Res/Diss first.
func (s *State) ElementPhase(lo, hi int) {
	m := s.Mesh
	for e := lo; e < hi; e++ {
		a := int(m.Tri[3*e])
		b := int(m.Tri[3*e+1])
		c := int(m.Tri[3*e+2])
		// Gather: element-mean state.
		var ubar [NVars]float64
		for k := 0; k < NVars; k++ {
			ubar[k] = (s.U[4*a+k] + s.U[4*b+k] + s.U[4*c+k]) / 3
		}
		fx, gy := flux(ubar[0], ubar[1], ubar[2], ubar[3])
		// Scatter-add: Galerkin residual −∫φ_k ∇·F ≈ ½(b_k F + c_k G)
		// (the basis coefficients already carry the 2A normalization),
		// plus Lax–Friedrichs dissipation toward the element mean.
		for ki, p := range [3]int{a, b, c} {
			bk := m.B[3*e+ki] / 2
			ck := m.C[3*e+ki] / 2
			for k := 0; k < NVars; k++ {
				s.Res[4*p+k] += bk*fx[k] + ck*gy[k]
				s.Diss[4*p+k] += (ubar[k] - s.U[4*p+k]) * m.Area[e] / 3
			}
		}
	}
}

// ElementPhaseVector is the "second coding of the same numerics" that
// Fig. 7's small2 curve measures: a vector-style organization that
// splits the element loop into two streaming passes — first evaluate
// all element means and fluxes into scratch arrays (redundantly, with
// no indirection in the inner loop), then scatter the precomputed
// contributions. More memory traffic and arithmetic, simpler loops.
// The accumulated residuals are identical to ElementPhase's.
func (s *State) ElementPhaseVector(lo, hi int) {
	m := s.Mesh
	n := hi - lo
	if cap(s.vecUbar) < n*NVars {
		s.vecUbar = make([]float64, n*NVars)
		s.vecFx = make([]float64, n*NVars)
		s.vecGy = make([]float64, n*NVars)
	}
	ubar := s.vecUbar[:n*NVars]
	fxs := s.vecFx[:n*NVars]
	gys := s.vecGy[:n*NVars]
	// Pass 1: gather and evaluate fluxes, streaming through scratch.
	for e := lo; e < hi; e++ {
		a := int(m.Tri[3*e])
		b := int(m.Tri[3*e+1])
		c := int(m.Tri[3*e+2])
		at := (e - lo) * NVars
		for k := 0; k < NVars; k++ {
			ubar[at+k] = (s.U[4*a+k] + s.U[4*b+k] + s.U[4*c+k]) / 3
		}
		fx, gy := flux(ubar[at], ubar[at+1], ubar[at+2], ubar[at+3])
		copy(fxs[at:at+NVars], fx[:])
		copy(gys[at:at+NVars], gy[:])
	}
	// Pass 2: scatter the precomputed contributions.
	for e := lo; e < hi; e++ {
		at := (e - lo) * NVars
		for ki := 0; ki < 3; ki++ {
			p := int(m.Tri[3*e+ki])
			bk := m.B[3*e+ki] / 2
			ck := m.C[3*e+ki] / 2
			for k := 0; k < NVars; k++ {
				s.Res[4*p+k] += bk*fxs[at+k] + ck*gys[at+k]
				s.Diss[4*p+k] += (ubar[at+k] - s.U[4*p+k]) * m.Area[e] / 3
			}
		}
	}
}

// PointPhase applies the accumulated residuals to points [lo,hi) with
// the lumped mass matrix and clears their accumulators.
func (s *State) PointPhase(lo, hi, _pad int, dt float64) {
	m := s.Mesh
	for p := lo; p < hi; p++ {
		inv := dt / m.LumpedMass[p]
		for k := 0; k < NVars; k++ {
			s.U[4*p+k] += inv*s.Res[4*p+k] + s.Nu*s.Diss[4*p+k]/m.LumpedMass[p]
			s.Res[4*p+k] = 0
			s.Diss[4*p+k] = 0
		}
	}
}

// Step advances the whole field one timestep and returns dt.
func (s *State) Step() float64 {
	smax := s.MaxWavespeed()
	h := math.Sqrt(2 * s.Mesh.Area[0]) // representative edge scale
	dt := s.CFL * h / math.Max(smax, 1e-12)
	s.ElementPhase(0, s.Mesh.NumElements())
	s.PointPhase(0, s.Mesh.NumPoints(), 0, dt)
	return dt
}

// Conserved sums the conserved variables weighted by lumped mass.
func (s *State) Conserved() [NVars]float64 {
	var tot [NVars]float64
	for p := 0; p < s.Mesh.NumPoints(); p++ {
		for k := 0; k < NVars; k++ {
			tot[k] += s.U[4*p+k] * s.Mesh.LumpedMass[p]
		}
	}
	return tot
}
