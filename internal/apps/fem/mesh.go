// Package fem implements the paper's prototype finite-element gas
// dynamics application (§5.2): a first-order-in-space-and-time,
// lumped-mass-matrix, unstructured 2-D FEM scheme for the compressible
// Euler equations. The mesh is represented fully unstructured (triangle
// connectivity arrays with indirect addressing); points and elements are
// Morton-ordered to enhance cache locality of the gathers and scatters,
// exactly as the paper describes. The three classes of global
// communication the paper identifies — global maxima (the timestep),
// point-to-element gathers, and the element-to-point "scatter-add" — all
// appear explicitly in the solver.
package fem

import (
	"fmt"
	"sort"

	"spp1000/internal/morton"
)

// Mesh is an unstructured triangle mesh on a doubly periodic domain.
type Mesh struct {
	// PX, PY are point coordinates.
	PX, PY []float64
	// Tri is triangle connectivity: element e has vertices
	// Tri[3e], Tri[3e+1], Tri[3e+2].
	Tri []int32
	// Area is the (positive) area of each element.
	Area []float64
	// LumpedMass is the dual-cell area of each point (Σ Area/3).
	LumpedMass []float64
	// B, C hold the linear-basis gradient coefficients of each element
	// vertex: ∇φ_k = (B[3e+k], C[3e+k]) / (2 Area[e]).
	B, C []float64
}

// NumPoints reports the point count.
func (m *Mesh) NumPoints() int { return len(m.PX) }

// NumElements reports the triangle count.
func (m *Mesh) NumElements() int { return len(m.Tri) / 3 }

// The paper's two datasets (§5.2.2). The small mesh in the paper has
// 46 545 points / 92 160 elements; a 192×240 periodic structured
// triangulation gives the same element count with 46 080 points (the
// paper's mesh carries a few duplicated boundary points — see DESIGN.md).
// The large mesh matches exactly: 263 169 points is (512+1)², i.e. the
// non-periodic point count of a 512×512 grid; periodic wrapping gives
// 262 144 distinct points for the same 524 288 elements.
var (
	SmallGrid = [2]int{192, 240}
	LargeGrid = [2]int{512, 512}
)

// NewPeriodic builds an m×n structured triangulation of the unit torus
// (each quad split into two triangles), then Morton-orders points and
// elements. The structure is discarded: the solver sees only the
// unstructured connectivity arrays.
func NewPeriodic(m, n int) (*Mesh, error) {
	if m < 2 || n < 2 {
		return nil, fmt.Errorf("fem: mesh %dx%d too small", m, n)
	}
	np := m * n
	mesh := &Mesh{
		PX: make([]float64, np), PY: make([]float64, np),
	}
	dx := 1.0 / float64(m)
	dy := 1.0 / float64(n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			mesh.PX[j*m+i] = float64(i) * dx
			mesh.PY[j*m+i] = float64(j) * dy
		}
	}
	// Morton-order the points; keep the permutation to rewrite
	// connectivity.
	perm := make([]int32, np) // perm[old] = new
	{
		type rec struct {
			key uint64
			old int32
		}
		recs := make([]rec, np)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				old := int32(j*m + i)
				recs[old] = rec{key: morton.Encode2(uint32(i), uint32(j)), old: old}
			}
		}
		sort.Slice(recs, func(a, b int) bool { return recs[a].key < recs[b].key })
		px := make([]float64, np)
		py := make([]float64, np)
		for newIdx, r := range recs {
			perm[r.old] = int32(newIdx)
			px[newIdx] = mesh.PX[r.old]
			py[newIdx] = mesh.PY[r.old]
		}
		mesh.PX, mesh.PY = px, py
	}
	// Triangles, with periodic wrapping, in Morton order of their quad.
	type erec struct {
		key     uint64
		a, b, c int32
	}
	var elems []erec
	at := func(i, j int) int32 { return perm[(j%n)*m+(i%m)] }
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			key := morton.Encode2(uint32(i), uint32(j))
			p00 := at(i, j)
			p10 := at(i+1, j)
			p01 := at(i, j+1)
			p11 := at(i+1, j+1)
			elems = append(elems, erec{key: key*2 + 0, a: p00, b: p10, c: p11})
			elems = append(elems, erec{key: key*2 + 1, a: p00, b: p11, c: p01})
		}
	}
	sort.Slice(elems, func(a, b int) bool { return elems[a].key < elems[b].key })
	ne := len(elems)
	mesh.Tri = make([]int32, 3*ne)
	for e, r := range elems {
		mesh.Tri[3*e] = r.a
		mesh.Tri[3*e+1] = r.b
		mesh.Tri[3*e+2] = r.c
	}
	mesh.computeGeometry(dx, dy)
	return mesh, nil
}

// computeGeometry fills areas, lumped masses, and basis gradients.
// Periodic wrapping makes raw coordinate differences wrong across the
// seam; differences are renormalized into (−½, ½].
func (m *Mesh) computeGeometry(dx, dy float64) {
	ne := m.NumElements()
	m.Area = make([]float64, ne)
	m.B = make([]float64, 3*ne)
	m.C = make([]float64, 3*ne)
	m.LumpedMass = make([]float64, m.NumPoints())
	wrap := func(d float64) float64 {
		if d > 0.5 {
			return d - 1
		}
		if d < -0.5 {
			return d + 1
		}
		return d
	}
	for e := 0; e < ne; e++ {
		a, b, c := m.Tri[3*e], m.Tri[3*e+1], m.Tri[3*e+2]
		// Work in coordinates relative to vertex a.
		xb := wrap(m.PX[b] - m.PX[a])
		yb := wrap(m.PY[b] - m.PY[a])
		xc := wrap(m.PX[c] - m.PX[a])
		yc := wrap(m.PY[c] - m.PY[a])
		area2 := xb*yc - xc*yb // twice the signed area
		if area2 < 0 {
			// Reorient for positive area.
			b, c = c, b
			m.Tri[3*e+1], m.Tri[3*e+2] = b, c
			xb, yb, xc, yc = xc, yc, xb, yb
			area2 = -area2
		}
		m.Area[e] = area2 / 2
		// Basis gradient coefficients: ∇φ_a = (y_b−y_c, x_c−x_b)/2A etc.
		// with local coords (0,0), (xb,yb), (xc,yc).
		m.B[3*e+0] = yb - yc
		m.B[3*e+1] = yc - 0
		m.B[3*e+2] = 0 - yb
		m.C[3*e+0] = xc - xb
		m.C[3*e+1] = 0 - xc
		m.C[3*e+2] = xb - 0
		third := m.Area[e] / 3
		m.LumpedMass[a] += third
		m.LumpedMass[b] += third
		m.LumpedMass[c] += third
	}
}

// CheckInvariants validates mesh consistency (used by tests):
// connectivity in range, positive areas, lumped masses summing to the
// domain area, and basis gradients summing to zero per element.
func (m *Mesh) CheckInvariants() error {
	np := int32(m.NumPoints())
	var totalArea, totalMass float64
	for e := 0; e < m.NumElements(); e++ {
		for k := 0; k < 3; k++ {
			if v := m.Tri[3*e+k]; v < 0 || v >= np {
				return fmt.Errorf("element %d vertex %d out of range", e, v)
			}
		}
		if m.Area[e] <= 0 {
			return fmt.Errorf("element %d has area %v", e, m.Area[e])
		}
		totalArea += m.Area[e]
		if sb := m.B[3*e] + m.B[3*e+1] + m.B[3*e+2]; sb > 1e-12 || sb < -1e-12 {
			return fmt.Errorf("element %d basis x-gradients sum to %v", e, sb)
		}
		if sc := m.C[3*e] + m.C[3*e+1] + m.C[3*e+2]; sc > 1e-12 || sc < -1e-12 {
			return fmt.Errorf("element %d basis y-gradients sum to %v", e, sc)
		}
	}
	for _, lm := range m.LumpedMass {
		if lm <= 0 {
			return fmt.Errorf("non-positive lumped mass")
		}
		totalMass += lm
	}
	if d := totalArea - totalMass; d > 1e-9 || d < -1e-9 {
		return fmt.Errorf("lumped mass %v != area %v", totalMass, totalArea)
	}
	if d := totalArea - 1; d > 1e-9 || d < -1e-9 {
		return fmt.Errorf("unit torus area = %v", totalArea)
	}
	return nil
}
