package fem

import (
	"math"
	"testing"
)

func mesh16(t *testing.T) *Mesh {
	t.Helper()
	m, err := NewPeriodic(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMeshCounts(t *testing.T) {
	m := mesh16(t)
	if m.NumPoints() != 256 {
		t.Fatalf("points = %d, want 256", m.NumPoints())
	}
	if m.NumElements() != 512 {
		t.Fatalf("elements = %d, want 512 (2 per quad)", m.NumElements())
	}
	// Paper ratio: "about two elements to every point" (§5.2.2).
	ratio := float64(m.NumElements()) / float64(m.NumPoints())
	if ratio != 2 {
		t.Fatalf("element/point ratio = %v", ratio)
	}
}

func TestPaperMeshSizes(t *testing.T) {
	// Large dataset: 524 288 elements exactly (§5.2.2).
	if 2*LargeGrid[0]*LargeGrid[1] != 524288 {
		t.Fatalf("large grid gives %d elements", 2*LargeGrid[0]*LargeGrid[1])
	}
	// Small dataset: 92 160 elements exactly.
	if 2*SmallGrid[0]*SmallGrid[1] != 92160 {
		t.Fatalf("small grid gives %d elements", 2*SmallGrid[0]*SmallGrid[1])
	}
}

func TestMeshInvariants(t *testing.T) {
	for _, g := range [][2]int{{8, 8}, {16, 32}, {48, 60}} {
		m, err := NewPeriodic(g[0], g[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
	}
}

func TestMeshRejectsDegenerate(t *testing.T) {
	if _, err := NewPeriodic(1, 8); err == nil {
		t.Fatal("1xN mesh should be rejected")
	}
}

func TestPointValence(t *testing.T) {
	// Paper: an average of 6 elements communicate with every point.
	m := mesh16(t)
	valence := make([]int, m.NumPoints())
	for e := 0; e < m.NumElements(); e++ {
		for k := 0; k < 3; k++ {
			valence[m.Tri[3*e+k]]++
		}
	}
	for p, v := range valence {
		if v != 6 {
			t.Fatalf("point %d has valence %d, want 6 on the periodic mesh", p, v)
		}
	}
}

func TestUniformFlowPreserved(t *testing.T) {
	m := mesh16(t)
	s := NewState(m)
	for p := 0; p < m.NumPoints(); p++ {
		s.SetPrimitive(p, 1.0, 0.5, -0.25, 2.0)
	}
	for i := 0; i < 10; i++ {
		s.Step()
	}
	for p := 0; p < m.NumPoints(); p++ {
		rho, u, v, pr := s.Primitive(p)
		if math.Abs(rho-1) > 1e-10 || math.Abs(u-0.5) > 1e-10 ||
			math.Abs(v+0.25) > 1e-10 || math.Abs(pr-2) > 1e-9 {
			t.Fatalf("uniform flow disturbed at %d: %v %v %v %v", p, rho, u, v, pr)
		}
	}
}

func TestConservation(t *testing.T) {
	m := mesh16(t)
	s := NewState(m)
	// Gaussian density/pressure bump.
	for p := 0; p < m.NumPoints(); p++ {
		dx := m.PX[p] - 0.5
		dy := m.PY[p] - 0.5
		bump := math.Exp(-40 * (dx*dx + dy*dy))
		s.SetPrimitive(p, 1+0.5*bump, 0, 0, 1+bump)
	}
	before := s.Conserved()
	for i := 0; i < 30; i++ {
		s.Step()
	}
	after := s.Conserved()
	for k := 0; k < NVars; k++ {
		if math.Abs(after[k]-before[k]) > 1e-9*(math.Abs(before[k])+1) {
			t.Fatalf("conserved variable %d drifted: %v -> %v", k, before[k], after[k])
		}
	}
}

func TestBumpStaysBoundedAndSpreads(t *testing.T) {
	m := mesh16(t)
	s := NewState(m)
	for p := 0; p < m.NumPoints(); p++ {
		dx := m.PX[p] - 0.5
		dy := m.PY[p] - 0.5
		bump := math.Exp(-40 * (dx*dx + dy*dy))
		s.SetPrimitive(p, 1, 0, 0, 1+2*bump)
	}
	var maxP0 float64
	for p := 0; p < m.NumPoints(); p++ {
		_, _, _, pr := s.Primitive(p)
		if pr > maxP0 {
			maxP0 = pr
		}
	}
	for i := 0; i < 40; i++ {
		s.Step()
	}
	var maxP float64
	for p := 0; p < m.NumPoints(); p++ {
		rho, _, _, pr := s.Primitive(p)
		if math.IsNaN(rho) || math.IsNaN(pr) || rho <= 0 {
			t.Fatalf("unphysical state at %d: rho=%v pr=%v", p, rho, pr)
		}
		if pr > maxP {
			maxP = pr
		}
	}
	if maxP >= maxP0 {
		t.Fatalf("pressure pulse should decay: %v -> %v", maxP0, maxP)
	}
}

func TestElementPhaseDecomposes(t *testing.T) {
	// Element ranges processed separately accumulate the same residual
	// as one sweep — the basis of the parallel scatter-add.
	m := mesh16(t)
	s1 := NewState(m)
	s2 := NewState(m)
	for p := 0; p < m.NumPoints(); p++ {
		dx := m.PX[p] - 0.3
		s1.SetPrimitive(p, 1+0.2*math.Sin(6*dx), 0.1, 0, 1)
		s2.SetPrimitive(p, 1+0.2*math.Sin(6*dx), 0.1, 0, 1)
	}
	s1.ElementPhase(0, m.NumElements())
	half := m.NumElements() / 2
	s2.ElementPhase(0, half)
	s2.ElementPhase(half, m.NumElements())
	for i := range s1.Res {
		if math.Abs(s1.Res[i]-s2.Res[i]) > 1e-12 {
			t.Fatalf("residual differs at %d", i)
		}
	}
}

func TestVectorCodingMatchesGatherScatter(t *testing.T) {
	// The two codings of Fig. 7 compute identical numerics (§5.2.2:
	// "a second coding of the same numerics").
	m := mesh16(t)
	s1 := NewState(m)
	s2 := NewState(m)
	for p := 0; p < m.NumPoints(); p++ {
		dx := m.PX[p] - 0.4
		dy := m.PY[p] - 0.6
		s1.SetPrimitive(p, 1+0.3*math.Cos(5*dx)*math.Sin(3*dy), 0.2, -0.1, 1.5)
		s2.SetPrimitive(p, 1+0.3*math.Cos(5*dx)*math.Sin(3*dy), 0.2, -0.1, 1.5)
	}
	s1.ElementPhase(0, m.NumElements())
	s2.ElementPhaseVector(0, m.NumElements())
	for i := range s1.Res {
		if math.Abs(s1.Res[i]-s2.Res[i]) > 1e-12 {
			t.Fatalf("Res differs at %d: %v vs %v", i, s1.Res[i], s2.Res[i])
		}
		if math.Abs(s1.Diss[i]-s2.Diss[i]) > 1e-12 {
			t.Fatalf("Diss differs at %d", i)
		}
	}
	// Range decomposition of the vector coding too.
	s3 := NewState(m)
	for p := 0; p < m.NumPoints(); p++ {
		dx := m.PX[p] - 0.4
		dy := m.PY[p] - 0.6
		s3.SetPrimitive(p, 1+0.3*math.Cos(5*dx)*math.Sin(3*dy), 0.2, -0.1, 1.5)
	}
	half := m.NumElements() / 2
	s3.ElementPhaseVector(0, half)
	s3.ElementPhaseVector(half, m.NumElements())
	for i := range s1.Res {
		if math.Abs(s1.Res[i]-s3.Res[i]) > 1e-12 {
			t.Fatalf("split vector coding differs at %d", i)
		}
	}
}

func TestMaxWavespeedPositive(t *testing.T) {
	m := mesh16(t)
	s := NewState(m)
	sp := s.MaxWavespeed()
	want := math.Sqrt(Gamma) // c of ρ=1, p=1 gas at rest
	if math.Abs(sp-want) > 1e-9 {
		t.Fatalf("wavespeed = %v, want %v", sp, want)
	}
	// Range decomposition agrees with the full scan.
	a := s.MaxWavespeedRange(0, 100)
	b := s.MaxWavespeedRange(100, m.NumPoints())
	if math.Max(a, b) != sp {
		t.Fatal("range-decomposed wavespeed differs")
	}
}

func TestRunShapeTargets(t *testing.T) {
	// Fig. 7 shape checks at 3 steps.
	r1, err := Run(SmallGrid, GatherScatter, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// §5.2.2: 0.042 point updates/µs for the parallelizing compiler.
	if r1.PointUpdatesPerUs < 0.03 || r1.PointUpdatesPerUs > 0.065 {
		t.Errorf("coding-1 single-CPU rate = %.4f pt/µs, want ≈0.042", r1.PointUpdatesPerUs)
	}
	v1, err := Run(SmallGrid, VectorStyle, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// §5.2.2: 0.072 point updates/µs for the vector-style coding.
	if v1.PointUpdatesPerUs < 0.055 || v1.PointUpdatesPerUs > 0.09 {
		t.Errorf("coding-2 single-CPU rate = %.4f pt/µs, want ≈0.072", v1.PointUpdatesPerUs)
	}
	if v1.PointUpdatesPerUs <= r1.PointUpdatesPerUs {
		t.Error("vector-style coding should be faster on one CPU")
	}
	// Non-monotonic scaling between 8 and 9 processors (Fig. 7).
	r8, err := Run(SmallGrid, GatherScatter, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	r9, err := Run(SmallGrid, GatherScatter, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := Run(SmallGrid, GatherScatter, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r9.UsefulMflops >= r8.UsefulMflops {
		t.Errorf("expected the 8->9 dip: %v then %v useful Mflop/s", r8.UsefulMflops, r9.UsefulMflops)
	}
	if r16.UsefulMflops <= r8.UsefulMflops {
		t.Errorf("16 procs (%v) should recover past 8 (%v)", r16.UsefulMflops, r8.UsefulMflops)
	}
	// Good single-hypernode scaling.
	if eff := r8.UsefulMflops / r1.UsefulMflops / 8; eff < 0.8 {
		t.Errorf("8-CPU efficiency %.2f, want ≥0.8", eff)
	}
	// C90 reference line: ≈250 useful Mflop/s, above every 16-CPU
	// gather-scatter point.
	_, c90useful := C90Reference()
	if c90useful < 230 || c90useful > 270 {
		t.Errorf("C90 useful rate = %.0f, want ≈250", c90useful)
	}
}
