package fem

import (
	"fmt"

	"spp1000/internal/c90"
	"spp1000/internal/machine"
	"spp1000/internal/parsim"
	"spp1000/internal/perfmodel"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
)

// UsefulFlopsPerPoint is the paper's conversion factor: the minimal
// (C90 hpm-measured) 437 floating-point operations per point update
// (§5.2.2), used to express rates as "useful Mflop/s" regardless of how
// many operations a particular coding actually spends.
const UsefulFlopsPerPoint = 437

// Coding selects one of the two codings of the same numerics that
// Fig. 7 compares.
type Coding int

const (
	// GatherScatter is the parallel coding (curve small1/large):
	// indirect gathers and scatter-adds, compiled by the parallelizing
	// compiler whose serial code generation the paper found weak
	// (0.042 point-updates/µs on one CPU).
	GatherScatter Coding = iota
	// VectorStyle is the second coding (curve small2): vector-style
	// loops with redundant flux evaluation at the vertices — more
	// operations but better code and streaming access
	// (0.072 point-updates/µs on one CPU).
	VectorStyle
)

func (c Coding) String() string {
	if c == VectorStyle {
		return "vector-style"
	}
	return "gather-scatter"
}

// codingCosts are the per-element execution parameters of a coding,
// calibrated to the paper's measured single-CPU point-update rates.
type codingCosts struct {
	elemFlops   int64
	elemDivides int64
	elemIntOps  int64 // indirect addressing + compiler overhead
	elemHits    int64
	// linesPerElem is the new cache-line traffic per element of the
	// Morton-ordered sweep (point state + accumulators).
	linesPerElem float64
	pointFlops   int64
	pointHits    int64
}

func costs(c Coding) codingCosts {
	if c == VectorStyle {
		return codingCosts{
			elemFlops: 300, elemDivides: 2, elemIntOps: 180, elemHits: 120,
			linesPerElem: 4,
			pointFlops:   40, pointHits: 30,
		}
	}
	return codingCosts{
		elemFlops: 220, elemDivides: 2, elemIntOps: 640, elemHits: 80,
		linesPerElem: 3,
		pointFlops:   40, pointHits: 30,
	}
}

// Result is one timed FEM run.
type Result struct {
	Grid    [2]int
	Coding  Coding
	Procs   int
	Steps   int
	Seconds float64
	// PointUpdatesPerUs is the paper's primary rate metric.
	PointUpdatesPerUs float64
	// UsefulMflops = PointUpdatesPerUs × 437.
	UsefulMflops float64
}

func (r Result) String() string {
	return fmt.Sprintf("fem %dx%d %v p=%d: %.4f pt/µs, %.1f useful Mflop/s",
		r.Grid[0], r.Grid[1], r.Coding, r.Procs, r.PointUpdatesPerUs, r.UsefulMflops)
}

// DataPlacement selects where the mesh arrays live.
type DataPlacement int

const (
	// HostedNearShared is what the paper's runs had: everything
	// near-shared on hypernode 0, because "neither node-private nor
	// block-shared modes were operational, limiting control of memory
	// locality" (§6).
	HostedNearShared DataPlacement = iota
	// BlockSharedPartition is the placement the paper wanted: each
	// thread's partition block-distributed onto its own hypernode, so
	// only partition-boundary traffic crosses the rings.
	BlockSharedPartition
)

func (p DataPlacement) String() string {
	if p == BlockSharedPartition {
		return "block-shared"
	}
	return "near-shared@hn0"
}

// chunkCycles computes thread tid's per-step compute cycles from the
// coding's per-element costs and the thread's data placement. remote
// marks a thread whose CPU lives off hypernode 0, where the paper's
// near-shared-hosted mesh arrays reside; its partition's state crosses
// the rings every step. Shared by the monolithic (RunPlaced) and
// partitioned (RunPar) runners so both price the identical work model.
func chunkCycles(p topology.Params, grid [2]int, coding Coding, procs, tid int, placement DataPlacement, remote bool) int64 {
	points := grid[0] * grid[1]
	elements := 2 * points
	cc := costs(coding)

	// Point-state working set: U, Res, Diss (4 vars × 8 B × 3 arrays).
	stateBytes := int64(points) * NVars * 8 * 3
	capFrac := perfmodel.CapacityMissFraction(stateBytes, topology.CacheBytes)
	stateLines := stateBytes / topology.CacheLineBytes

	lo := tid * elements / procs
	hi := (tid + 1) * elements / procs
	ne := int64(hi - lo)
	np := int64((tid+1)*points/procs - tid*points/procs)

	var c perfmodel.Chunk
	// Timestep reduction sweep (global max — communication class 1).
	c.Flops += np * 12
	c.Divides += np
	c.CacheHits += np * 5
	// Element phase: gather + flux + scatter-add (classes 2 and 3).
	c.Flops += ne * cc.elemFlops
	c.Divides += ne * cc.elemDivides
	c.IntOps += ne * cc.elemIntOps
	c.CacheHits += ne * cc.elemHits
	// Point phase.
	c.Flops += np * cc.pointFlops
	c.CacheHits += np * cc.pointHits

	// Morton-ordered sweeps: new-line traffic per element, scaled
	// by how much of the point state stays cache-resident.
	misses := int64(float64(ne) * cc.linesPerElem * (0.3 + 0.7*capFrac))
	c.HypernodeMisses += misses
	switch {
	case placement == BlockSharedPartition:
		// Partition homed with its thread: only the partition
		// boundary (shared points between adjacent Morton ranges
		// on different hypernodes) crosses the rings.
		if remote {
			c.GlobalMisses += stateLines / int64(elements/64+1)
		}
	case remote:
		// Remote threads hit their global-buffer copies, but every
		// line of their partition must be re-imported over the
		// rings each step (the state is rewritten by the point
		// phase, invalidating the buffered copies).
		c.GlobalMisses += stateLines * ne / int64(elements)
	}
	return perfmodel.Cycles(p, c)
}

// Run times the FEM application on the simulated machine. The mesh
// arrays are near-shared hosted on hypernode 0 — the paper notes that
// node-private and block-shared placement were not yet operational
// (§6), so threads on the second hypernode import their partition's
// state over the rings every step. That asymmetry is what produces the
// non-monotonic dip between 8 and 9 processors in Fig. 7.
func Run(grid [2]int, coding Coding, procs, steps int) (Result, error) {
	return RunPlaced(grid, coding, procs, steps, HostedNearShared)
}

// RunPlaced is Run with an explicit data placement — the simulator can
// measure the configuration the 1995 system software could not yet
// provide.
func RunPlaced(grid [2]int, coding Coding, procs, steps int, placement DataPlacement) (Result, error) {
	hn := (procs + topology.CPUsPerNode - 1) / topology.CPUsPerNode
	if hn < 1 {
		hn = 1
	}
	m, err := machine.New(machine.Config{Hypernodes: hn})
	if err != nil {
		return Result{}, err
	}
	points := grid[0] * grid[1]

	cycles := make([]int64, procs)
	for tid := range cycles {
		cpu := threads.CPUFor(m.Topo, threads.HighLocality, tid, procs)
		cycles[tid] = chunkCycles(m.P, grid, coding, procs, tid, placement, cpu.Hypernode() != 0)
	}

	bar := threads.NewBarrier(m, procs, 0)
	elapsed, err := threads.RunTeam(m, procs, threads.HighLocality, func(th *machine.Thread, tid int) {
		for s := 0; s < steps; s++ {
			// dt reduction barrier, element phase, point phase.
			th.ComputeCycles(cycles[tid] / 3)
			bar.Wait(th)
			th.ComputeCycles(cycles[tid] - 2*(cycles[tid]/3))
			bar.Wait(th)
			th.ComputeCycles(cycles[tid] / 3)
			bar.Wait(th)
		}
	})
	if err != nil {
		return Result{}, err
	}
	sec := elapsed.Seconds()
	updates := float64(points) * float64(steps)
	rate := updates / (sec * 1e6)
	return Result{
		Grid: grid, Coding: coding, Procs: procs, Steps: steps,
		Seconds:           sec,
		PointUpdatesPerUs: rate,
		UsefulMflops:      rate * UsefulFlopsPerPoint,
	}, nil
}

// RunPar is Run on the hypernode-partitioned (PDES) engine: the same
// per-thread work model (chunkCycles) and three-barrier step structure,
// but one share-nothing kernel per hypernode (internal/parsim), so the
// simulation scales across host cores up to the full 128-CPU machine.
// Output is byte-identical at every parsim worker count.
func RunPar(grid [2]int, coding Coding, procs, steps int) (Result, error) {
	hn := (procs + topology.CPUsPerNode - 1) / topology.CPUsPerNode
	if hn < 1 {
		hn = 1
	}
	cl, err := parsim.NewCluster(hn)
	if err != nil {
		return Result{}, err
	}
	cycles := make([]int64, procs)
	nodeOf := make([]int, procs)
	counts := make([]int, hn)
	for tid := range cycles {
		cpu := threads.CPUFor(cl.Topo, threads.HighLocality, tid, procs)
		nodeOf[tid] = cpu.Hypernode()
		counts[nodeOf[tid]]++
		cycles[tid] = chunkCycles(cl.P, grid, coding, procs, tid, HostedNearShared, cpu.Hypernode() != 0)
	}
	bar, err := parsim.NewClusterBarrier(cl, counts)
	if err != nil {
		return Result{}, err
	}
	elapsed, err := cl.RunTeam(procs, func(th *machine.Thread, tid int) {
		for s := 0; s < steps; s++ {
			// dt reduction barrier, element phase, point phase.
			th.ComputeCycles(cycles[tid] / 3)
			bar.Wait(th, nodeOf[tid])
			th.ComputeCycles(cycles[tid] - 2*(cycles[tid]/3))
			bar.Wait(th, nodeOf[tid])
			th.ComputeCycles(cycles[tid] / 3)
			bar.Wait(th, nodeOf[tid])
		}
	})
	if err != nil {
		return Result{}, err
	}
	points := grid[0] * grid[1]
	sec := elapsed.Seconds()
	updates := float64(points) * float64(steps)
	rate := updates / (sec * 1e6)
	return Result{
		Grid: grid, Coding: coding, Procs: procs, Steps: steps,
		Seconds:           sec,
		PointUpdatesPerUs: rate,
		UsefulMflops:      rate * UsefulFlopsPerPoint,
	}, nil
}

// C90Reference reports the C90 single-head useful rate: the paper's
// optimized C90 coding ran 0.57 point updates/µs ≈ 250 useful Mflop/s.
func C90Reference() (pointUpdatesPerUs, usefulMflops float64) {
	cray := c90.Default()
	rate := cray.Rate(c90.FEM)     // ≈293 hpm Mflop/s
	useful := rate * 250.0 / 293.0 // the paper's useful-vs-hpm ratio
	return useful / UsefulFlopsPerPoint, useful
}
