// Package store persists content-addressed simulation results on disk
// so the daemon survives restarts: every result in this repository is a
// pure function of its spec's canonical hash (experiments.Spec.Key), so
// a byte payload written once under that key is correct forever and a
// freshly started sppd can serve it as a cache hit without simulating.
//
// The layout is one file per key — `<key>.res` under the store
// directory — written via temp-file-plus-atomic-rename so readers never
// observe a half-written entry, and framed with a length + CRC32 header
// so torn or corrupted payloads are detected on read and recomputed
// rather than served. The store is deliberately simulator-independent:
// it moves opaque bytes keyed by opaque hex strings and must never
// import sim-core packages (enforced by the simlint `deps` analyzer).
package store

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"spp1000/internal/faultinject"
)

// magic tags the entry-file format; bump it if the framing changes so
// old files read as corrupt (and are recomputed) instead of misparsing.
const magic = "sppstore1"

// entrySuffix is appended to the key to form the entry file name.
const entrySuffix = ".res"

// tmpPrefix marks in-progress writes; leftovers from a crashed daemon
// are swept on Open.
const tmpPrefix = ".tmp-"

// Stats counts store outcomes. All fields are cumulative since Open.
type Stats struct {
	// Hits are Gets served a validated payload.
	Hits int64
	// Misses are Gets that found no (valid) entry.
	Misses int64
	// Puts are entries durably written.
	Puts int64
	// Corrupt are entries whose header, length, or CRC check failed on
	// read; each was deleted so the result is recomputed, not served.
	Corrupt int64
	// Evictions are entries removed to respect the capacity bound.
	Evictions int64
}

// Store is a disk-backed content-addressed result store. It is safe for
// concurrent use. Create with Open.
type Store struct {
	dir string
	cap int // max entries; 0 = unbounded

	mu      sync.Mutex
	entries map[string]time.Time // key → entry-file mod time (eviction order)

	hits      int64
	misses    int64
	puts      int64
	corrupt   int64
	evictions int64
}

// Open creates (if needed) and indexes the store directory. capacity
// bounds the number of entries kept (oldest mod time evicted first);
// capacity <= 0 means unbounded. Leftover temp files from interrupted
// writes are removed; entry files are indexed by name only — payloads
// are validated lazily on Get, so a corrupt entry costs nothing until
// it is asked for.
func Open(dir string, capacity int) (*Store, error) {
	if capacity < 0 {
		capacity = 0
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, cap: capacity, entries: make(map[string]time.Time)}
	for _, de := range names {
		name := de.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(filepath.Join(dir, name)) // interrupted write; never renamed, never visible
			continue
		}
		key, ok := strings.CutSuffix(name, entrySuffix)
		if !ok || !ValidKey(key) {
			continue // foreign file; leave it alone
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		s.entries[key] = info.ModTime()
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// ValidKey accepts lowercase-hex content addresses (what Spec.Key
// emits). Anything else is rejected so keys can never traverse paths.
// It is exported for the cluster layer: the gateway's peer endpoint and
// the daemon's store-export endpoint reject malformed keys with it
// before any lookup happens.
func ValidKey(key string) bool {
	if len(key) == 0 || len(key) > 128 {
		return false
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+entrySuffix)
}

// Dir reports the store's directory.
func (s *Store) Dir() string { return s.dir }

// Len reports the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Put durably writes val under key: the framed payload goes to a temp
// file in the store directory, then one atomic rename publishes it, so
// a crash mid-write leaves only an invisible temp file (swept on the
// next Open) and readers never see partial entries. Oldest entries are
// evicted beyond the capacity bound.
func (s *Store) Put(key, val string) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	f, err := os.CreateTemp(s.dir, tmpPrefix+key+"-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	_, err = f.Write(Encode(val))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		// Test-only torn-write injection: the hook may truncate or
		// corrupt tmp (proving Get detects it) or fail the Put outright.
		err = faultinject.Fire(faultinject.StoreWrite, tmp)
	}
	if err == nil {
		err = os.Rename(tmp, s.path(key))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	mtime := time.Time{}
	if info, err := os.Stat(s.path(key)); err == nil {
		mtime = info.ModTime()
	}
	s.mu.Lock()
	s.entries[key] = mtime
	s.puts++
	s.evictLocked()
	s.mu.Unlock()
	return nil
}

// Get returns the payload stored under key. A missing entry is
// (_, false, nil). An entry whose frame fails validation — short file,
// bad header, length or CRC mismatch, i.e. a torn or corrupted write —
// is deleted and reported as a miss so callers recompute instead of
// serving damaged bytes; only host I/O errors surface as err.
func (s *Store) Get(key string) (string, bool, error) {
	if !ValidKey(key) {
		return "", false, fmt.Errorf("store: invalid key %q", key)
	}
	path := s.path(key)
	if err := faultinject.Fire(faultinject.StoreRead, path); err != nil {
		return "", false, fmt.Errorf("store: get %s: %w", key, err)
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		s.count(&s.misses)
		return "", false, nil
	}
	if err != nil {
		return "", false, fmt.Errorf("store: get %s: %w", key, err)
	}
	val, ok := decode(data)
	if !ok {
		s.dropCorrupt(key)
		return "", false, nil
	}
	s.count(&s.hits)
	return val, true, nil
}

// Delete removes the entry stored under key, if any. Deleting an
// absent key is a no-op: the caller's intent — this key must not be
// served again — already holds. Used for entries whose lifetime ends
// before eviction would get to them (a job's resume checkpoint once
// the job completes).
func (s *Store) Delete(key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("store: invalid key %q", key)
	}
	if err := os.Remove(s.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %s: %w", key, err)
	}
	s.mu.Lock()
	delete(s.entries, key)
	s.mu.Unlock()
	return nil
}

// Encode frames a payload in the store's entry format: a one-line
// `sppstore1 <crc32> <len>` header followed by the raw bytes. The same
// framing serves two jobs — the on-disk entry file, and the wire format
// of the cluster's peer-fetch protocol, where the CRC lets a receiving
// backend validate a copied entry end to end before trusting it.
func Encode(val string) []byte {
	return []byte(fmt.Sprintf("%s %08x %d\n%s", magic, crc32.ChecksumIEEE([]byte(val)), len(val), val))
}

// Decode validates one framed entry — header shape, declared length,
// CRC32 — and extracts the payload. It is the inverse of Encode and the
// only sanctioned way to accept entry bytes from disk or from a peer:
// anything that fails validation is reported false and must be treated
// as absent, never served.
func Decode(data []byte) (string, bool) {
	return decode(data)
}

// decode validates one entry file's frame and extracts the payload.
func decode(data []byte) (string, bool) {
	head, payload, ok := strings.Cut(string(data), "\n")
	if !ok {
		return "", false
	}
	fields := strings.Fields(head)
	if len(fields) != 3 || fields[0] != magic {
		return "", false
	}
	crc, err := strconv.ParseUint(fields[1], 16, 32)
	if err != nil {
		return "", false
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil || n != len(payload) {
		return "", false
	}
	if crc32.ChecksumIEEE([]byte(payload)) != uint32(crc) {
		return "", false
	}
	return payload, true
}

// dropCorrupt removes a failed entry so it is recomputed, never served.
func (s *Store) dropCorrupt(key string) {
	os.Remove(s.path(key))
	s.mu.Lock()
	delete(s.entries, key)
	s.corrupt++
	s.misses++
	s.mu.Unlock()
}

func (s *Store) count(field *int64) {
	s.mu.Lock()
	*field++
	s.mu.Unlock()
}

// evictLocked removes the oldest entries (mod time, then key, so ties
// break deterministically) until the capacity bound holds. Callers hold
// s.mu.
func (s *Store) evictLocked() {
	if s.cap <= 0 || len(s.entries) <= s.cap {
		return
	}
	type ent struct {
		key string
		mt  time.Time
	}
	all := make([]ent, 0, len(s.entries))
	for k, mt := range s.entries {
		all = append(all, ent{k, mt})
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].mt.Equal(all[j].mt) {
			return all[i].mt.Before(all[j].mt)
		}
		return all[i].key < all[j].key
	})
	for _, e := range all[:len(all)-s.cap] {
		os.Remove(s.path(e.key))
		delete(s.entries, e.key)
		s.evictions++
	}
}

// Stats returns a snapshot of the cumulative counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:      s.hits,
		Misses:    s.misses,
		Puts:      s.puts,
		Corrupt:   s.corrupt,
		Evictions: s.evictions,
	}
}
