package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"spp1000/internal/faultinject"
)

// key returns a distinct valid (hex) key per index.
func key(i int) string { return fmt.Sprintf("%064x", i+1) }

func open(t *testing.T, dir string, cap int) *Store {
	t.Helper()
	s, err := Open(dir, cap)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundtrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	val := "=== fig2 ===\nresult bytes\nwith lines\n"
	if err := s.Put(key(0), val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key(0))
	if err != nil || !ok || got != val {
		t.Fatalf("Get = %q, %v, %v; want stored value", got, ok, err)
	}
	if _, ok, err := s.Get(key(1)); ok || err != nil {
		t.Fatalf("Get of absent key = %v, %v", ok, err)
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSurvivesReopen is the store's reason to exist: a second Open of
// the same directory serves what the first wrote.
func TestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, 0)
	if err := s1.Put(key(0), "persisted"); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, 0)
	if s2.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", s2.Len())
	}
	got, ok, err := s2.Get(key(0))
	if err != nil || !ok || got != "persisted" {
		t.Fatalf("reopened Get = %q, %v, %v", got, ok, err)
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	for _, k := range []string{"", "../../etc/passwd", "ABCDEF", "xyz", strings.Repeat("a", 200)} {
		if err := s.Put(k, "v"); err == nil {
			t.Errorf("Put(%q) accepted", k)
		}
		if _, _, err := s.Get(k); err == nil {
			t.Errorf("Get(%q) accepted", k)
		}
	}
}

func TestCorruptEntryDetectedAndDropped(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"flipped payload byte": func(b []byte) []byte { b[len(b)-2] ^= 0x40; return b },
		"truncated":            func(b []byte) []byte { return b[:len(b)-3] },
		"bad magic":            func(b []byte) []byte { b[0] = 'X'; return b },
		"empty file":           func([]byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s := open(t, dir, 0)
			if err := s.Put(key(0), "precious result"); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, key(0)+entrySuffix)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			got, ok, err := s.Get(key(0))
			if err != nil || ok {
				t.Fatalf("corrupt Get = %q, %v, %v; want miss", got, ok, err)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry not deleted: %v", err)
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("stats = %+v, want Corrupt 1", st)
			}
			// The slot is reusable: a fresh Put serves again.
			if err := s.Put(key(0), "recomputed"); err != nil {
				t.Fatal(err)
			}
			if got, ok, _ := s.Get(key(0)); !ok || got != "recomputed" {
				t.Fatalf("after recompute: %q, %v", got, ok)
			}
		})
	}
}

// TestTornWriteViaFaultInjection arms the StoreWrite hook to truncate
// the temp file between payload write and rename — the renamed entry is
// then a torn write, which the next Get must detect and drop.
func TestTornWriteViaFaultInjection(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	disarm := faultinject.Arm(faultinject.StoreWrite, func(args ...string) error {
		return os.Truncate(args[0], 7)
	})
	t.Cleanup(disarm)
	if err := s.Put(key(0), "will be torn"); err != nil {
		t.Fatal(err)
	}
	disarm()
	if got, ok, err := s.Get(key(0)); err != nil || ok {
		t.Fatalf("torn entry served: %q, %v, %v", got, ok, err)
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want Corrupt 1", st)
	}
}

func TestInjectedWriteErrorFailsPut(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	boom := errors.New("disk on fire")
	disarm := faultinject.Arm(faultinject.StoreWrite, func(...string) error { return boom })
	t.Cleanup(disarm)
	if err := s.Put(key(0), "v"); !errors.Is(err, boom) {
		t.Fatalf("Put = %v, want injected error", err)
	}
	disarm()
	if s.Len() != 0 {
		t.Fatalf("failed Put left an entry (len %d)", s.Len())
	}
	assertNoTempFiles(t, s.Dir())
}

func TestNoTempFilesAfterPut(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	for i := 0; i < 5; i++ {
		if err := s.Put(key(i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	assertNoTempFiles(t, s.Dir())
}

func assertNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasPrefix(de.Name(), tmpPrefix) {
			t.Errorf("leftover temp file %s", de.Name())
		}
	}
}

// TestOpenSweepsTempFiles: a crash mid-write leaves a temp file; the
// next Open removes it and never indexes it.
func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, tmpPrefix+key(0)+"-123")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, 0)
	if s.Len() != 0 {
		t.Fatalf("temp file indexed (len %d)", s.Len())
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("temp file not swept: %v", err)
	}
}

func TestCapacityEvictsOldest(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 3)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		if err := s.Put(key(i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
		// Pin distinct mod times so eviction order is deterministic
		// regardless of filesystem timestamp granularity.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, key(i)+entrySuffix), mt, mt); err != nil {
			t.Fatal(err)
		}
		s.mu.Lock()
		s.entries[key(i)] = mt
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for i := 0; i < 2; i++ {
		if _, ok, _ := s.Get(key(i)); ok {
			t.Errorf("oldest entry %d survived eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		if got, ok, _ := s.Get(key(i)); !ok || got != fmt.Sprintf("v%d", i) {
			t.Errorf("entry %d lost: %q, %v", i, got, ok)
		}
	}
	// A reopen with a tighter bound GCs down to it.
	s2 := open(t, dir, 1)
	if s2.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", s2.Len())
	}
	if got, ok, _ := s2.Get(key(4)); !ok || got != "v4" {
		t.Fatalf("newest entry evicted: %q, %v", got, ok)
	}
}

// TestEvictionEqualMtimeDeterministic is the tie-break regression: on a
// filesystem with coarse timestamp granularity several entries can share
// one mod time, and eviction must then order by key — every daemon
// looking at the same directory evicts the same entries, regardless of
// map iteration order. With all mtimes equal, capacity 1 must keep
// exactly the highest key.
func TestEvictionEqualMtimeDeterministic(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	mt := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		if err := s.Put(key(i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(filepath.Join(dir, key(i)+entrySuffix), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen at capacity 1: the open-time sweep must evict the two
	// lowest keys and keep key(2), on every run.
	s2 := open(t, dir, 1)
	if s2.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s2.Len())
	}
	if _, ok, _ := s2.Get(key(2)); !ok {
		t.Fatal("tie-break survivor must be the highest key")
	}
	for i := 0; i < 2; i++ {
		if _, ok, _ := s2.Get(key(i)); ok {
			t.Fatalf("entry %d survived an equal-mtime eviction", i)
		}
	}
	if ev := s2.Stats().Evictions; ev != 2 {
		t.Fatalf("evictions = %d, want 2", ev)
	}
}

func TestDelete(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	if err := s.Put(key(0), "spent"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(key(0)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key(0)); ok || err != nil {
		t.Fatalf("deleted entry served: %v, %v", ok, err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after delete, want 0", s.Len())
	}
	// Absent keys are a no-op, invalid keys an error.
	if err := s.Delete(key(1)); err != nil {
		t.Fatalf("delete of absent key: %v", err)
	}
	if err := s.Delete("not-a-key"); err == nil {
		t.Fatal("invalid key accepted")
	}
	// The slot is reusable.
	if err := s.Put(key(0), "again"); err != nil {
		t.Fatal(err)
	}
	if got, ok, _ := s.Get(key(0)); !ok || got != "again" {
		t.Fatalf("after re-put: %q, %v", got, ok)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := key(i % 4)
			v := fmt.Sprintf("v%d", i%4)
			for n := 0; n < 25; n++ {
				if err := s.Put(k, v); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if got, ok, err := s.Get(k); err != nil || (ok && got != v) {
					t.Errorf("Get = %q, %v, %v", got, ok, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
}
