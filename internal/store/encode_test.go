package store

import (
	"bytes"
	"strings"
	"testing"
)

// TestEncodeDecodeRoundtrip pins the exported frame codec the cluster
// peer protocol ships over the wire: Encode's output is exactly what
// Put writes to disk, and Decode accepts it back byte for byte.
func TestEncodeDecodeRoundtrip(t *testing.T) {
	for _, val := range []string{
		"",
		"x",
		"=== tab1 ===\nmultiline result\nwith trailing newline\n",
		strings.Repeat("block ", 10000),
		"binary-ish \x00\x01\xff bytes",
	} {
		frame := Encode(val)
		got, ok := Decode(frame)
		if !ok || got != val {
			t.Fatalf("Decode(Encode(%.20q)) = %.20q, %v", val, got, ok)
		}
		if !bytes.HasPrefix(frame, []byte(magic+" ")) {
			t.Fatalf("frame lacks the %s magic: %.40q", magic, frame)
		}
	}
}

// TestDecodeRejectsTampering proves the CRC frame catches the damage
// peer fetch must survive: flipped payload bytes, truncation, wrong
// magic, and garbage all read as invalid rather than as a wrong result.
func TestDecodeRejectsTampering(t *testing.T) {
	frame := Encode("the one true result\n")
	cases := map[string][]byte{
		"empty":           {},
		"garbage":         []byte("not a frame at all"),
		"wrong magic":     append([]byte("xppstore1"), frame[len(magic):]...),
		"truncated":       frame[:len(frame)-3],
		"flipped payload": flipLastByte(frame),
		"length lies":     []byte(magic + " 00000000 5\nthe one true result\n"),
	}
	for name, data := range cases {
		if val, ok := Decode(data); ok {
			t.Errorf("%s: Decode accepted tampered frame, returned %q", name, val)
		}
	}
}

func flipLastByte(frame []byte) []byte {
	out := append([]byte(nil), frame...)
	out[len(out)-1] ^= 0xff
	return out
}
