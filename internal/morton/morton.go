// Package morton implements Morton (Z-order) encoding in two and three
// dimensions. The paper's FEM code orders mesh points and elements along
// a Morton curve to improve cache locality of the gather/scatter phases
// (§5.2.1, citing Warren & Salmon); the tree code uses 3-D keys for its
// spatial hierarchy.
package morton

// spread2 inserts a zero bit between each of the low 16 bits.
func spread2(x uint32) uint32 {
	x &= 0xFFFF
	x = (x | x<<8) & 0x00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F
	x = (x | x<<2) & 0x33333333
	x = (x | x<<1) & 0x55555555
	return x
}

// compact2 is the inverse of spread2.
func compact2(x uint32) uint32 {
	x &= 0x55555555
	x = (x | x>>1) & 0x33333333
	x = (x | x>>2) & 0x0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF
	x = (x | x>>8) & 0x0000FFFF
	return x
}

// Encode2 interleaves two 16-bit coordinates into a Z-order key.
func Encode2(x, y uint32) uint64 {
	return uint64(spread2(x)) | uint64(spread2(y))<<1
}

// Decode2 recovers the coordinates from a 2-D key.
func Decode2(key uint64) (x, y uint32) {
	return compact2(uint32(key)), compact2(uint32(key >> 1))
}

// spread3 inserts two zero bits between each of the low 21 bits.
func spread3(x uint64) uint64 {
	x &= 0x1FFFFF
	x = (x | x<<32) & 0x1F00000000FFFF
	x = (x | x<<16) & 0x1F0000FF0000FF
	x = (x | x<<8) & 0x100F00F00F00F00F
	x = (x | x<<4) & 0x10C30C30C30C30C3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// compact3 is the inverse of spread3.
func compact3(x uint64) uint64 {
	x &= 0x1249249249249249
	x = (x | x>>2) & 0x10C30C30C30C30C3
	x = (x | x>>4) & 0x100F00F00F00F00F
	x = (x | x>>8) & 0x1F0000FF0000FF
	x = (x | x>>16) & 0x1F00000000FFFF
	x = (x | x>>32) & 0x1FFFFF
	return x
}

// Encode3 interleaves three 21-bit coordinates into a Z-order key.
func Encode3(x, y, z uint64) uint64 {
	return spread3(x) | spread3(y)<<1 | spread3(z)<<2
}

// Decode3 recovers the coordinates from a 3-D key.
func Decode3(key uint64) (x, y, z uint64) {
	return compact3(key), compact3(key >> 1), compact3(key >> 2)
}
