package morton

import (
	"testing"
	"testing/quick"
)

func TestEncode2Known(t *testing.T) {
	cases := []struct {
		x, y uint32
		key  uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{0, 1, 2},
		{1, 1, 3},
		{2, 0, 4},
		{3, 3, 15},
	}
	for _, c := range cases {
		if got := Encode2(c.x, c.y); got != c.key {
			t.Errorf("Encode2(%d,%d) = %d, want %d", c.x, c.y, got, c.key)
		}
	}
}

func TestEncode3Known(t *testing.T) {
	cases := []struct {
		x, y, z uint64
		key     uint64
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{0, 1, 0, 2},
		{0, 0, 1, 4},
		{1, 1, 1, 7},
		{2, 0, 0, 8},
	}
	for _, c := range cases {
		if got := Encode3(c.x, c.y, c.z); got != c.key {
			t.Errorf("Encode3(%d,%d,%d) = %d, want %d", c.x, c.y, c.z, got, c.key)
		}
	}
}

// Property: Decode2 ∘ Encode2 = identity on 16-bit coordinates.
func TestRoundTrip2(t *testing.T) {
	prop := func(x, y uint16) bool {
		gx, gy := Decode2(Encode2(uint32(x), uint32(y)))
		return gx == uint32(x) && gy == uint32(y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Decode3 ∘ Encode3 = identity on 21-bit coordinates.
func TestRoundTrip3(t *testing.T) {
	prop := func(x, y, z uint32) bool {
		xi, yi, zi := uint64(x)&0x1FFFFF, uint64(y)&0x1FFFFF, uint64(z)&0x1FFFFF
		gx, gy, gz := Decode3(Encode3(xi, yi, zi))
		return gx == xi && gy == yi && gz == zi
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Morton order preserves locality at power-of-two block
// granularity — two points in the same 2^k-aligned square share the
// high key bits.
func TestBlockLocality(t *testing.T) {
	prop := func(x, y uint16, k8 uint8) bool {
		k := uint(k8 % 8)
		mask := ^uint64(0) << (2 * k)
		bx, by := uint32(x)&^(1<<k-1), uint32(y)&^(1<<k-1)
		a := Encode2(uint32(x), uint32(y))
		b := Encode2(bx, by)
		return a&mask == b&mask
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: keys are unique (Encode2 injective).
func TestInjective2(t *testing.T) {
	seen := map[uint64][2]uint32{}
	for x := uint32(0); x < 64; x++ {
		for y := uint32(0); y < 64; y++ {
			key := Encode2(x, y)
			if prev, ok := seen[key]; ok {
				t.Fatalf("collision: (%d,%d) and %v both map to %d", x, y, prev, key)
			}
			seen[key] = [2]uint32{x, y}
		}
	}
}
