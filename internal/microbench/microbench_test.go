package microbench

import (
	"testing"

	"spp1000/internal/stats"
	"spp1000/internal/threads"
)

func TestForkJoinSweepShape(t *testing.T) {
	hl, un, err := ForkJoinSweep(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(hl.Points) != 16 || len(un.Points) != 16 {
		t.Fatalf("sweep lengths: %d, %d", len(hl.Points), len(un.Points))
	}
	// Fig. 2 property 1: ≈10 µs per extra pair, high locality, 2..8.
	var local []stats.Point
	for _, p := range hl.Points {
		if p.X >= 2 && p.X <= 8 {
			local = append(local, p)
		}
	}
	slope := stats.Slope(local) * 2 // per pair
	if slope < 7 || slope > 13 {
		t.Errorf("high-locality pair slope = %.1f µs, want ≈10", slope)
	}
	// Fig. 2 property 2: ≈20 µs per pair, uniform, 2..16.
	var unif []stats.Point
	for _, p := range un.Points {
		if p.X >= 2 {
			unif = append(unif, p)
		}
	}
	uslope := stats.Slope(unif) * 2
	if uslope < 14 || uslope > 26 {
		t.Errorf("uniform pair slope = %.1f µs, want ≈20", uslope)
	}
	// Fig. 2 property 3: ≈50 µs jump at the hypernode boundary.
	y8, _ := hl.YAt(8)
	y9, _ := hl.YAt(9)
	y7, _ := hl.YAt(7)
	step := (y9 - y8) - (y8 - y7)
	if step < 30 || step > 75 {
		t.Errorf("boundary step = %.1f µs, want ≈50", step)
	}
	// Uniform is never cheaper than high locality beyond 1 thread.
	for n := 2.0; n <= 8; n++ {
		hy, _ := hl.YAt(n)
		uy, _ := un.YAt(n)
		if uy < hy {
			t.Errorf("uniform (%.1f) cheaper than high locality (%.1f) at n=%v", uy, hy, n)
		}
	}
}

func TestBarrierSweepShape(t *testing.T) {
	series, err := BarrierSweep(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	lifoHL, liloHL, lifoUn, liloUn := series[0], series[1], series[2], series[3]

	// Fig. 3: single-hypernode LIFO ≈3.5 µs.
	for n := 2.0; n <= 8; n++ {
		y, ok := lifoHL.YAt(n)
		if !ok || y < 2 || y > 6 {
			t.Errorf("LIFO high-locality at %v = %.2f µs, want ≈3.5", n, y)
		}
	}
	// Crossing to a second hypernode adds ≈1 µs to LIFO.
	y8, _ := lifoHL.YAt(8)
	y16, _ := lifoHL.YAt(16)
	if y16-y8 < 0.3 || y16-y8 > 5 {
		t.Errorf("LIFO cross-hypernode penalty = %.2f µs, want ≈1", y16-y8)
	}
	// LILO grows ≈2 µs per thread in the local regime.
	var rel []stats.Point
	for _, p := range liloHL.Points {
		if p.X >= 3 && p.X <= 8 {
			rel = append(rel, p)
		}
	}
	slope := stats.Slope(rel)
	if slope < 1 || slope > 4 {
		t.Errorf("LILO per-thread slope = %.2f µs, want ≈2", slope)
	}
	// LILO always ≥ LIFO.
	for _, pair := range [][2]*stats.Series{{lifoHL, liloHL}, {lifoUn, liloUn}} {
		for _, p := range pair[1].Points {
			lo, ok := pair[0].YAt(p.X)
			if ok && p.Y < lo {
				t.Errorf("LILO %.2f < LIFO %.2f at n=%v", p.Y, lo, p.X)
			}
		}
	}
}

func TestMessageSweepShape(t *testing.T) {
	local, global, err := MessageSweep()
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 4: ≈30 µs local, ≈70 µs global, ratio ≈2.3 below 8 KB.
	l1k, _ := local.YAt(1024)
	g1k, _ := global.YAt(1024)
	if l1k < 20 || l1k > 40 {
		t.Errorf("local RT at 1 KB = %.1f µs, want ≈30", l1k)
	}
	if g1k < 55 || g1k > 90 {
		t.Errorf("global RT at 1 KB = %.1f µs, want ≈70", g1k)
	}
	ratio := g1k / l1k
	if ratio < 1.8 || ratio > 3.0 {
		t.Errorf("global/local = %.2f, want ≈2.3", ratio)
	}
	// Near-constant below 8 KB; super-linear growth beyond.
	l8k, _ := local.YAt(8192)
	if l8k > l1k*1.5 {
		t.Errorf("local RT grows below the knee: %.1f vs %.1f", l8k, l1k)
	}
	l64k, _ := local.YAt(65536)
	if l64k < 3*l8k {
		t.Errorf("no super-linear growth past the knee: %.1f vs %.1f", l64k, l8k)
	}
}

func TestLatencyProbe(t *testing.T) {
	tb, err := LatencyProbe(2)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 5 {
		t.Fatalf("probe rows = %d, want 5", tb.Rows())
	}
	out := tb.Render()
	if out == "" {
		t.Fatal("empty probe table")
	}
}

func TestClassLadder(t *testing.T) {
	tb, err := ClassLadder()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 5 {
		t.Fatalf("class ladder rows = %d, want 5", tb.Rows())
	}
	// Thread-private and node-private are local from both hypernodes;
	// the shared classes cost ring latency from the non-host side.
	// Columns: class, cold hn0, cold hn1, warm.
	if tb.Cell(0, 2) != tb.Cell(0, 1) {
		t.Errorf("thread-private should cost the same from both hypernodes: %s vs %s",
			tb.Cell(0, 1), tb.Cell(0, 2))
	}
	if tb.Cell(2, 2) == tb.Cell(2, 1) {
		t.Error("near-shared should cost more from the remote hypernode")
	}
}

func TestContentionFlatOnFourRings(t *testing.T) {
	four, one, err := ContentionSweep(16384)
	if err != nil {
		t.Fatal(err)
	}
	// §4.3: little degradation with increased traffic — the four rings
	// keep the pairs independent.
	f1, _ := four.YAt(1)
	f4, _ := four.YAt(4)
	if f4 > f1*1.05 {
		t.Errorf("four-ring RT degraded %.1f -> %.1f µs with 4 pairs", f1, f4)
	}
	// On a single ring the pairs interfere.
	o1, _ := one.YAt(1)
	o4, _ := one.YAt(4)
	if o4 <= o1 {
		t.Errorf("single-ring RT should degrade: %.1f -> %.1f µs", o1, o4)
	}
	// Invalid pair counts rejected.
	if _, err := ContentionRoundTrip(64, 0, 1, false); err == nil {
		t.Error("0 pairs should be rejected")
	}
	if _, err := ContentionRoundTrip(64, 5, 1, false); err == nil {
		t.Error("5 pairs should be rejected")
	}
}

func TestBarrierCostUniformUsesBothNodes(t *testing.T) {
	// 2 uniform threads already cross hypernodes: LIFO must exceed the
	// 2-thread local value.
	lifoL, _, err := BarrierCost(2, 2, threads.HighLocality)
	if err != nil {
		t.Fatal(err)
	}
	lifoU, _, err := BarrierCost(2, 2, threads.Uniform)
	if err != nil {
		t.Fatal(err)
	}
	if lifoU <= lifoL {
		t.Fatalf("uniform 2-thread LIFO (%v) should exceed local (%v)", lifoU, lifoL)
	}
}
