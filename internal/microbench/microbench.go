// Package microbench contains the synthetic test codes of paper §4:
// fork-join cost (Fig. 2), barrier synchronization cost (Fig. 3), and
// PVM message round-trip time (Fig. 4). Each sweep runs the primitive on
// a freshly built simulated machine and returns the series the paper
// plots.
package microbench

import (
	"fmt"

	"spp1000/internal/machine"
	"spp1000/internal/pvm"
	"spp1000/internal/runner"
	"spp1000/internal/sim"
	"spp1000/internal/stats"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
)

// newMachine builds the two-hypernode machine of the paper's testbed.
// The synthetic codes touch only a handful of cache lines, so a reduced
// per-CPU cache geometry (identical timing — no capacity or conflict
// pressure at these footprints) keeps the sweeps' host allocations low.
func newMachine(hypernodes int) (*machine.Machine, error) {
	return machine.New(machine.Config{Hypernodes: hypernodes, CacheLines: 4096})
}

// ForkJoinCost measures one fork-join of n threads under the placement.
func ForkJoinCost(hypernodes, n int, place threads.Placement) (sim.Cycles, error) {
	m, err := newMachine(hypernodes)
	if err != nil {
		return 0, err
	}
	return threads.RunTeam(m, n, place, func(th *machine.Thread, tid int) {})
}

// ForkJoinSweep reproduces Fig. 2: fork-join time in microseconds versus
// thread count, for high-locality and uniform placements. Each sweep
// point is an independent simulation on its own machine, so the points
// are dispatched through the host worker pool and assembled in order.
func ForkJoinSweep(hypernodes, maxThreads int) (highLocality, uniform *stats.Series, err error) {
	type point struct{ hl, un sim.Cycles }
	pts, err := runner.Map(maxThreads, func(i int) (point, error) {
		n := i + 1
		hl, err := ForkJoinCost(hypernodes, n, threads.HighLocality)
		if err != nil {
			return point{}, err
		}
		un, err := ForkJoinCost(hypernodes, n, threads.Uniform)
		if err != nil {
			return point{}, err
		}
		return point{hl, un}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	highLocality = &stats.Series{Name: "high locality"}
	uniform = &stats.Series{Name: "uniform distribution"}
	for i, pt := range pts {
		highLocality.Add(float64(i+1), pt.hl.Micros())
		uniform.Add(float64(i+1), pt.un.Micros())
	}
	return highLocality, uniform, nil
}

// BarrierCost measures one barrier episode with n threads, returning the
// last-in/first-out and last-in/last-out times. Arrivals are staggered
// so the last arrival is unambiguous, as in the paper's method of
// timestamping entry and exit per thread.
func BarrierCost(hypernodes, n int, place threads.Placement) (lifo, lilo sim.Cycles, err error) {
	m, err := newMachine(hypernodes)
	if err != nil {
		return 0, 0, err
	}
	b := threads.NewBarrier(m, n, 0)
	_, err = threads.RunTeam(m, n, place, func(th *machine.Thread, tid int) {
		// Warm episode first (caches, runtime), then the measured one.
		// Arrivals are staggered so thread 0 — local to the barrier's
		// home hypernode — enters last: the paper reports minima over
		// many runs, and the minimum corresponds to a releasing thread
		// with a local fast path to the flag.
		b.Wait(th)
		th.Delay(sim.Cycles((n - 1 - tid) * 700))
		b.Wait(th)
	})
	if err != nil {
		return 0, 0, err
	}
	lifo, lilo = b.LastEpisode()
	return lifo, lilo, nil
}

// BarrierSweep reproduces Fig. 3: four curves (LIFO/LILO × high
// locality/uniform) versus thread count, in microseconds.
func BarrierSweep(hypernodes, maxThreads int) ([]*stats.Series, error) {
	series := []*stats.Series{
		{Name: "LIFO high locality"},
		{Name: "LILO high locality"},
		{Name: "LIFO uniform"},
		{Name: "LILO uniform"},
	}
	type point struct{ lifo, lilo [2]sim.Cycles }
	pts, err := runner.Map(maxThreads-1, func(i int) (point, error) {
		n := i + 2
		var pt point
		for j, place := range []threads.Placement{threads.HighLocality, threads.Uniform} {
			lifo, lilo, err := BarrierCost(hypernodes, n, place)
			if err != nil {
				return pt, err
			}
			pt.lifo[j], pt.lilo[j] = lifo, lilo
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	for i, pt := range pts {
		n := float64(i + 2)
		for j := 0; j < 2; j++ {
			series[2*j].Add(n, pt.lifo[j].Micros())
			series[2*j+1].Add(n, pt.lilo[j].Micros())
		}
	}
	return series, nil
}

// MessageRoundTrip measures a PVM ping-pong of the given payload between
// two CPUs of a two-hypernode machine. global selects a cross-hypernode
// pair.
func MessageRoundTrip(bytes int, global bool) (sim.Cycles, error) {
	m, err := newMachine(2)
	if err != nil {
		return 0, err
	}
	sys := pvm.NewSystem(m)
	a := topology.MakeCPU(0, 0, 0)
	b := topology.MakeCPU(0, 1, 0)
	if global {
		b = topology.MakeCPU(1, 0, 0)
	}
	var rt sim.Cycles
	ready := m.K.NewEvent("ready")
	var ping, pong *pvm.Task
	m.Spawn("ping", a, func(th *machine.Thread) {
		ping = sys.AddTask(th)
		ready.Wait(th.P)
		start := th.Now()
		ping.Send(pong.ID(), 0, bytes, nil)
		ping.Recv()
		rt = th.Now() - start
	})
	m.Spawn("pong", b, func(th *machine.Thread) {
		pong = sys.AddTask(th)
		ready.Set()
		msg := pong.Recv()
		pong.Send(msg.Src, 0, bytes, nil)
	})
	if err := m.Run(); err != nil {
		return 0, err
	}
	return rt, nil
}

// MessageSizes is the sweep of Fig. 4 (64 B to 256 KB, doubling).
func MessageSizes() []int {
	var sizes []int
	for s := 64; s <= 256*1024; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

// MessageSweep reproduces Fig. 4: round-trip time in microseconds versus
// message size for a local pair and a cross-hypernode pair.
func MessageSweep() (local, global *stats.Series, err error) {
	sizes := MessageSizes()
	type point struct{ lt, gt sim.Cycles }
	pts, err := runner.Map(len(sizes), func(i int) (point, error) {
		lt, err := MessageRoundTrip(sizes[i], false)
		if err != nil {
			return point{}, err
		}
		gt, err := MessageRoundTrip(sizes[i], true)
		if err != nil {
			return point{}, err
		}
		return point{lt, gt}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	local = &stats.Series{Name: "local"}
	global = &stats.Series{Name: "global"}
	for i, pt := range pts {
		local.Add(float64(sizes[i]), pt.lt.Micros())
		global.Add(float64(sizes[i]), pt.gt.Micros())
	}
	return local, global, nil
}

// ContentionRoundTrip measures the mean round-trip time of `pairs`
// simultaneous cross-hypernode ping-pong pairs — the "compounding
// factor" of a more heavily burdened system that §4.3 flags. Earlier
// single-hypernode experiments "showed little degradation as message
// traffic was increased appreciably"; this measures how far that holds
// across the rings.
func ContentionRoundTrip(bytes, pairs, rounds int, singleRing bool) (sim.Cycles, error) {
	if pairs < 1 || pairs > 4 {
		return 0, fmt.Errorf("microbench: pairs must be 1..4 (one per FU), got %d", pairs)
	}
	m, err := newMachine(2)
	if err != nil {
		return 0, err
	}
	m.Mem.SingleRing = singleRing
	sys := pvm.NewSystem(m)
	ready := m.K.NewEvent("ready")
	reg := m.K.NewSemaphore("reg", 0)
	pingTasks := make([]*pvm.Task, pairs)
	pongTasks := make([]*pvm.Task, pairs)
	var total sim.Cycles
	done := m.K.NewSemaphore("done", 0)
	for i := 0; i < pairs; i++ {
		i := i
		m.Spawn("ping", topology.MakeCPU(0, i, 0), func(th *machine.Thread) {
			pingTasks[i] = sys.AddTask(th)
			reg.V()
			ready.Wait(th.P)
			start := th.Now()
			for r := 0; r < rounds; r++ {
				pingTasks[i].Send(pongTasks[i].ID(), r, bytes, nil)
				pingTasks[i].Recv()
			}
			total += th.Now() - start
			done.V()
		})
		m.Spawn("pong", topology.MakeCPU(1, i, 0), func(th *machine.Thread) {
			pongTasks[i] = sys.AddTask(th)
			reg.V()
			for r := 0; r < rounds; r++ {
				msg := pongTasks[i].Recv()
				pongTasks[i].Send(msg.Src, msg.Tag, bytes, nil)
			}
		})
	}
	m.Spawn("coord", topology.MakeCPU(0, 0, 1), func(th *machine.Thread) {
		for i := 0; i < 2*pairs; i++ {
			reg.P(th.P)
		}
		ready.Set()
		for i := 0; i < pairs; i++ {
			done.P(th.P)
		}
	})
	if err := m.Run(); err != nil {
		return 0, err
	}
	return total / sim.Cycles(pairs*rounds), nil
}

// ContentionSweep reports mean cross-hypernode RT vs. concurrent pairs,
// with the architected four rings and with a hypothetical single ring.
func ContentionSweep(bytes int) (four, one *stats.Series, err error) {
	type point struct{ four, one sim.Cycles }
	pts, err := runner.Map(4, func(i int) (point, error) {
		pairs := i + 1
		f, err := ContentionRoundTrip(bytes, pairs, 8, false)
		if err != nil {
			return point{}, err
		}
		o, err := ContentionRoundTrip(bytes, pairs, 8, true)
		if err != nil {
			return point{}, err
		}
		return point{f, o}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	four = &stats.Series{Name: fmt.Sprintf("4 rings, %d B", bytes)}
	one = &stats.Series{Name: fmt.Sprintf("1 ring, %d B", bytes)}
	for i, pt := range pts {
		four.Add(float64(i+1), pt.four.Micros())
		one.Add(float64(i+1), pt.one.Micros())
	}
	return four, one, nil
}

// ClassLadder characterizes the five virtual-memory classes of §3.2:
// for each class, the cold-miss latency seen by a CPU on hypernode 0
// and by a CPU on hypernode 1, plus a warm re-read. It is the
// quantitative version of the guidance the paper gives programmers
// about placing data.
func ClassLadder() (*stats.Table, error) {
	m, err := newMachine(2)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable("Memory classes: access latency by accessor location (cycles)",
		"class", "cold, hn0 CPU", "cold, hn1 CPU", "warm re-read")
	near0 := topology.MakeCPU(0, 0, 0)
	far1 := topology.MakeCPU(1, 0, 0)
	classes := []struct {
		name  string
		class topology.Class
	}{
		{"thread-private", topology.ThreadPrivate},
		{"node-private", topology.NodePrivate},
		{"near-shared (hosted hn0)", topology.NearShared},
		{"far-shared", topology.FarShared},
		{"block-shared (1 KB blocks)", topology.BlockShared},
	}
	now := sim.Cycles(0)
	for _, c := range classes {
		sp := m.Alloc(c.name, c.class, 0, 1024)
		r0 := m.Mem.Access(now, near0, sp, 0, false)
		cold0 := int64(r0.Done - now)
		now = r0.Done
		r1 := m.Mem.Access(now, far1, sp, 0, false)
		cold1 := int64(r1.Done - now)
		now = r1.Done
		rw := m.Mem.Access(now, near0, sp, 0, false)
		warm := int64(rw.Done - now)
		now = rw.Done + 1000
		tb.AddRow(c.name, cold0, cold1, warm)
	}
	return tb, nil
}

// LatencyProbe reports the modeled access latencies (in cycles) of the
// memory-class ladder for a CPU on hypernode 0 of a machine with the
// given size — the cmd/sppsim inspection output.
func LatencyProbe(hypernodes int) (*stats.Table, error) {
	m, err := newMachine(hypernodes)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable(
		fmt.Sprintf("Access latency ladder (%d hypernode(s), cycles)", hypernodes),
		"path", "cycles", "microseconds")
	cpu := topology.MakeCPU(0, 0, 0)

	private := m.Alloc("probe.private", topology.ThreadPrivate, 0, 0)
	rep := m.Mem.Access(0, cpu, private, 0, false)
	tb.AddRow("local FU memory (cold miss)", int64(rep.Done), rep.Done.Micros())
	rep = m.Mem.Access(0, cpu, private, 0, false)
	tb.AddRow("cache hit", int64(rep.Done), rep.Done.Micros())

	near := m.Alloc("probe.near", topology.NearShared, 0, 0)
	var crossFU topology.Addr
	for a := topology.Addr(0); a < 4096; a += 32 {
		if m.Mem.Home(near, a, cpu).FU != cpu.FU() {
			crossFU = a
			break
		}
	}
	rep = m.Mem.Access(0, cpu, near, crossFU, false)
	tb.AddRow("hypernode memory via crossbar", int64(rep.Done), rep.Done.Micros())

	if hypernodes > 1 {
		remote := m.Alloc("probe.remote", topology.NearShared, 1, 0)
		rep = m.Mem.Access(0, cpu, remote, 0, false)
		tb.AddRow("remote hypernode via SCI ring", int64(rep.Done), rep.Done.Micros())
		rep2 := m.Mem.Access(rep.Done, topology.MakeCPU(0, 0, 1), remote, 0, false)
		tb.AddRow("global-buffer hit (2nd CPU)", int64(rep2.Done-rep.Done), (rep2.Done - rep.Done).Micros())
	}
	return tb, nil
}
