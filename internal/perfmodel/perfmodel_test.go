package perfmodel

import (
	"testing"
	"testing/quick"

	"spp1000/internal/topology"
)

func TestCyclesPureFlops(t *testing.T) {
	p := topology.DefaultParams()
	c := Chunk{Flops: 1000}
	if got := Cycles(p, c); got != 1000 {
		t.Fatalf("1000 flops = %d cycles, want 1000 at 1 flop/cycle", got)
	}
}

func TestCacheTrafficOverlapsFP(t *testing.T) {
	p := topology.DefaultParams()
	// Equal flops and hits: fully overlapped.
	if got := Cycles(p, Chunk{Flops: 1000, CacheHits: 1000}); got != 1000 {
		t.Fatalf("balanced chunk = %d cycles, want 1000", got)
	}
	// Memory-bound: hits dominate.
	if got := Cycles(p, Chunk{Flops: 100, CacheHits: 1000}); got != 1000 {
		t.Fatalf("memory-bound chunk = %d cycles, want 1000", got)
	}
}

func TestMissesSerialize(t *testing.T) {
	p := topology.DefaultParams()
	base := Cycles(p, Chunk{Flops: 1000})
	withLocal := Cycles(p, Chunk{Flops: 1000, LocalMisses: 10})
	if withLocal != base+10*p.LocalMiss {
		t.Fatalf("local misses mischarged: %d vs %d", withLocal, base+10*p.LocalMiss)
	}
	withGlobal := Cycles(p, Chunk{Flops: 1000, GlobalMisses: 10})
	if withGlobal <= withLocal {
		t.Fatal("global misses must cost more than local")
	}
}

func TestDividesCost(t *testing.T) {
	p := topology.DefaultParams()
	if got := Cycles(p, Chunk{Divides: 10}); got != 10*DivideCycles {
		t.Fatalf("10 divides = %d cycles", got)
	}
}

func TestGlobalHopsDefault(t *testing.T) {
	p := topology.DefaultParams()
	a := Cycles(p, Chunk{GlobalMisses: 1})
	b := Cycles(p, Chunk{GlobalMisses: 1, GlobalHops: 1})
	if a != b {
		t.Fatalf("zero hops should default to 1: %d vs %d", a, b)
	}
	c := Cycles(p, Chunk{GlobalMisses: 1, GlobalHops: 8})
	if c <= b {
		t.Fatal("more hops must cost more")
	}
}

func TestAddAndScale(t *testing.T) {
	var c Chunk
	c.Add(Chunk{Flops: 100, CacheHits: 60, GlobalHops: 2})
	c.Add(Chunk{Flops: 50, LocalMisses: 5})
	if c.Flops != 150 || c.CacheHits != 60 || c.LocalMisses != 5 || c.GlobalHops != 2 {
		t.Fatalf("accumulated chunk = %+v", c)
	}
	s := c.Scale(2)
	if s.Flops != 75 || s.GlobalHops != 2 {
		t.Fatalf("scaled chunk = %+v", s)
	}
	if c.Scale(1) != c || c.Scale(0) != c {
		t.Fatal("degenerate scales should be identity")
	}
}

func TestStreamMissFraction(t *testing.T) {
	if f := StreamMissFraction(8); f != 0.25 {
		t.Fatalf("8-byte stride = %v, want 0.25", f)
	}
	if f := StreamMissFraction(32); f != 1 {
		t.Fatalf("line stride = %v, want 1", f)
	}
	if f := StreamMissFraction(64); f != 1 {
		t.Fatalf("super-line stride = %v, want capped at 1", f)
	}
	if f := StreamMissFraction(0); f != 0.25 {
		t.Fatalf("defaulted stride = %v, want 0.25", f)
	}
}

func TestCapacityMissFraction(t *testing.T) {
	if f := CapacityMissFraction(1<<19, 1<<20); f != 0 {
		t.Fatalf("resident set miss fraction = %v, want 0", f)
	}
	f := CapacityMissFraction(2<<20, 1<<20)
	if f != 0.5 {
		t.Fatalf("2x cache = %v, want 0.5", f)
	}
	if CapacityMissFraction(100, 0) != 0 {
		t.Fatal("zero cache should yield 0 (treated as disabled)")
	}
}

func TestSweepMissFraction(t *testing.T) {
	if f := SweepMissFraction(8, 1<<19, 1<<20); f != 0 {
		t.Fatal("fitting sweep should not miss")
	}
	f := SweepMissFraction(8, 4<<20, 1<<20)
	if f <= 0 || f > 0.25 {
		t.Fatalf("sweep miss fraction = %v", f)
	}
}

func TestSplitMisses(t *testing.T) {
	hn, gl := SplitMisses(100, 1)
	if hn != 100 || gl != 0 {
		t.Fatalf("single hypernode split = %d,%d", hn, gl)
	}
	hn, gl = SplitMisses(100, 2)
	if hn != 50 || gl != 50 {
		t.Fatalf("two-hypernode split = %d,%d", hn, gl)
	}
	hn, gl = SplitMisses(100, 4)
	if hn != 25 || gl != 75 {
		t.Fatalf("four-hypernode split = %d,%d", hn, gl)
	}
}

// Property: Cycles is monotone — adding work never reduces time.
func TestCyclesMonotoneProperty(t *testing.T) {
	p := topology.DefaultParams()
	prop := func(f, h, l, g uint16) bool {
		base := Chunk{Flops: int64(f), CacheHits: int64(h), LocalMisses: int64(l), GlobalMisses: int64(g)}
		more := base
		more.Flops += 10
		more.GlobalMisses += 1
		return Cycles(p, more) >= Cycles(p, base)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
