// Package perfmodel converts counted work — floating-point operations
// and memory accesses classified by where they are served — into cycles
// of the simulated PA-RISC 7100. The applications execute their real
// numerics in Go, count what the PA-7100 would have done, and charge the
// total through this model; synchronization and communication are played
// through the machine simulator itself, so only the embarrassingly
// parallel bulk work takes this analytic shortcut.
package perfmodel

import "spp1000/internal/topology"

// Chunk is a unit of bulk work performed by one thread between
// synchronization points.
type Chunk struct {
	// Flops counts adds/multiplies (one per cycle on the PA-7100).
	Flops int64
	// Divides counts floating divides (the PA-7100's efficient divide:
	// ~8 cycles, paper §6 calls it out as a strength).
	Divides int64
	// IntOps counts address arithmetic and loop overhead not hidden
	// behind the FP pipeline.
	IntOps int64
	// CacheHits are accesses served by the data cache.
	CacheHits int64
	// LocalMisses are misses served by the functional unit's own memory.
	LocalMisses int64
	// HypernodeMisses are misses served across the crossbar (including
	// global-buffer hits).
	HypernodeMisses int64
	// GlobalMisses are misses served across the SCI rings.
	GlobalMisses int64
	// GlobalHops is the mean ring hop count for GlobalMisses (defaults
	// to 1 when zero).
	GlobalHops int
}

// Add accumulates another chunk into c.
func (c *Chunk) Add(o Chunk) {
	c.Flops += o.Flops
	c.Divides += o.Divides
	c.IntOps += o.IntOps
	c.CacheHits += o.CacheHits
	c.LocalMisses += o.LocalMisses
	c.HypernodeMisses += o.HypernodeMisses
	c.GlobalMisses += o.GlobalMisses
	if o.GlobalHops > c.GlobalHops {
		c.GlobalHops = o.GlobalHops
	}
}

// Scale returns the chunk divided evenly by n (work split across n
// threads).
func (c Chunk) Scale(n int) Chunk {
	if n <= 1 {
		return c
	}
	d := int64(n)
	return Chunk{
		Flops:           c.Flops / d,
		Divides:         c.Divides / d,
		IntOps:          c.IntOps / d,
		CacheHits:       c.CacheHits / d,
		LocalMisses:     c.LocalMisses / d,
		HypernodeMisses: c.HypernodeMisses / d,
		GlobalMisses:    c.GlobalMisses / d,
		GlobalHops:      c.GlobalHops,
	}
}

// DivideCycles is the PA-7100 floating divide latency.
const DivideCycles = 8

// Cycles evaluates the chunk under the machine parameters. Cache-hit
// traffic overlaps the FP pipeline (the PA-7100 issues one access and
// one FP op per cycle), so the charged time is max(flops, hit traffic)
// plus the serialized miss terms.
func Cycles(p topology.Params, c Chunk) int64 {
	fp := int64(float64(c.Flops)/p.FlopsPerCycle) + c.Divides*DivideCycles + c.IntOps
	mem := c.CacheHits * p.CacheHit
	base := fp
	if mem > base {
		base = mem
	}
	hops := c.GlobalHops
	if hops <= 0 {
		hops = 1
	}
	return base +
		c.LocalMisses*p.LocalMiss +
		c.HypernodeMisses*p.HypernodeMiss +
		c.GlobalMisses*p.GlobalMissCycles(hops)
}

// StreamMissFraction is the per-access miss fraction of a sequential
// sweep with the given access stride: one miss per cache line touched.
func StreamMissFraction(strideBytes int) float64 {
	if strideBytes <= 0 {
		strideBytes = 8
	}
	f := float64(strideBytes) / float64(topology.CacheLineBytes)
	if f > 1 {
		f = 1
	}
	return f
}

// CapacityMissFraction is the fraction of re-accesses that miss when a
// working set of wsBytes is reused through a cache of cacheBytes: zero
// when it fits, approaching one as the set grows (the classic
// fully-associative LRU fraction; direct-mapped conflict effects are
// absorbed into the same curve).
func CapacityMissFraction(wsBytes, cacheBytes int64) float64 {
	if cacheBytes <= 0 || wsBytes <= cacheBytes {
		return 0
	}
	return 1 - float64(cacheBytes)/float64(wsBytes)
}

// SweepMissFraction combines the two: a repeated sequential sweep over a
// working set misses at the stream rate on the non-resident fraction.
func SweepMissFraction(strideBytes int, wsBytes, cacheBytes int64) float64 {
	cap := CapacityMissFraction(wsBytes, cacheBytes)
	if cap == 0 {
		return 0
	}
	return StreamMissFraction(strideBytes) * cap
}

// SplitMisses distributes misses of a shared structure across service
// levels given the machine layout: with h hypernodes holding the data
// uniformly (far-shared), a miss is hypernode-local with probability
// 1/h. Returns (hypernodeMisses, globalMisses).
func SplitMisses(misses int64, hypernodes int) (hn, global int64) {
	if hypernodes <= 1 {
		return misses, 0
	}
	hn = misses / int64(hypernodes)
	return hn, misses - hn
}
