// Package threads reproduces the Convex CPSlib programming interface on
// the simulated machine: fork/join of synchronous thread teams, the
// semaphore-plus-spin barrier of paper §4.2, gates (locks), and critical
// sections, together with the two thread-placement policies the paper's
// microbenchmarks compare (high locality vs. uniform distribution).
package threads

import "spp1000/internal/topology"

// Placement is a thread-to-CPU assignment policy.
type Placement int

const (
	// HighLocality packs threads onto the lowest-numbered hypernode
	// first: the first 8 threads land on hypernode 0 (paper §4).
	HighLocality Placement = iota
	// Uniform deals threads round-robin across hypernodes so each holds
	// an equal share.
	Uniform
)

func (p Placement) String() string {
	if p == HighLocality {
		return "high-locality"
	}
	return "uniform"
}

// CPUFor maps thread tid of an n-thread team onto a CPU.
func CPUFor(topo topology.Topology, p Placement, tid, n int) topology.CPUID {
	if n > topo.NumCPUs() {
		n = topo.NumCPUs()
	}
	switch p {
	case Uniform:
		hn := tid % topo.Hypernodes
		slot := tid / topo.Hypernodes
		slot %= topology.CPUsPerNode
		return topology.MakeCPU(hn, slot/topology.CPUsPerFU, slot%topology.CPUsPerFU)
	default: // HighLocality
		id := tid % topo.NumCPUs()
		return topology.CPUID(id)
	}
}

// HypernodesUsed reports how many distinct hypernodes an n-thread team
// occupies under the policy.
func HypernodesUsed(topo topology.Topology, p Placement, n int) int {
	seen := map[int]bool{}
	for tid := 0; tid < n; tid++ {
		seen[CPUFor(topo, p, tid, n).Hypernode()] = true
	}
	return len(seen)
}
