package threads

import (
	"fmt"

	"spp1000/internal/machine"
	"spp1000/internal/sim"
	"spp1000/internal/topology"
)

// ForkJoin spawns a synchronous team of n threads from the parent thread
// and blocks the parent until every child has terminated (CPSlib's
// synchronous-thread model, paper §3.2). The parent dispatches children
// serially, paying the local or remote spawn cost per child plus a
// one-time runtime-initialization penalty the first time a fork reaches
// a second hypernode; it then reaps each child at join.
//
// When the team saturates the whole machine, the OS has no spare CPU and
// steals cycles from thread 0's processor (paper §6) — modeled as a
// fractional Compute slowdown.
// It returns the child Thread handles; their CXpa counters remain
// readable after the join.
func ForkJoin(parent *machine.Thread, n int, place Placement, body func(th *machine.Thread, tid int)) []*machine.Thread {
	m := parent.M
	if n < 1 {
		return nil
	}
	children := make([]*machine.Thread, 0, n)
	p := m.P
	done := m.K.NewSemaphore("join", 0)
	crossed := false
	saturated := n >= m.Topo.NumCPUs()

	// PMU accounting: the threads group counts runtime events
	// machine-wide (nil-safe when counters are disabled).
	g := m.Counters.Group("threads")
	g.Counter("forks").Inc()
	g.Histogram("team_size").Observe(int64(n))

	for tid := 0; tid < n; tid++ {
		cpu := CPUFor(m.Topo, place, tid, n)
		remote := cpu.Hypernode() != parent.CPU.Hypernode()
		if remote && !crossed {
			crossed = true
			parent.Delay(sim.Cycles(p.RemoteRuntimeInit))
			g.Counter("runtime_inits").Inc()
		}
		if remote {
			parent.Delay(sim.Cycles(p.ThreadSpawnRemote))
			g.Counter("spawn_remote").Inc()
		} else {
			parent.Delay(sim.Cycles(p.ThreadSpawnLocal))
			g.Counter("spawn_local").Inc()
		}
		tid := tid
		child := m.SpawnAt(parent.Now(), fmt.Sprintf("t%d", tid), cpu, func(th *machine.Thread) {
			th.Delay(sim.Cycles(p.ThreadStart))
			body(th, tid)
			done.V()
		})
		if saturated && tid == 0 {
			child.SetSlowdown(p.OSIntrusion)
		}
		children = append(children, child)
	}
	// Join: wait for all children, then reap them.
	for i := 0; i < n; i++ {
		done.P(parent.P)
	}
	parent.Delay(sim.Cycles(int64(n) * p.JoinPerThread))
	g.Counter("joins").Inc()
	return children
}

// RunTeam is the common harness entry point: it builds the machine's
// root thread on CPU 0, forks a team of n, and runs the simulation to
// completion, returning the fork-to-join virtual duration.
func RunTeam(m *machine.Machine, n int, place Placement, body func(th *machine.Thread, tid int)) (sim.Cycles, error) {
	elapsed, _, err := RunTeamThreads(m, n, place, body)
	return elapsed, err
}

// RunTeamThreads is RunTeam but also returns the child Thread handles,
// whose CXpa instrumentation counters survive the join.
func RunTeamThreads(m *machine.Machine, n int, place Placement, body func(th *machine.Thread, tid int)) (sim.Cycles, []*machine.Thread, error) {
	var elapsed sim.Cycles
	var children []*machine.Thread
	m.Spawn("main", topology.MakeCPU(0, 0, 0), func(parent *machine.Thread) {
		start := parent.Now()
		children = ForkJoin(parent, n, place, body)
		elapsed = parent.Now() - start
	})
	if err := m.Run(); err != nil {
		return 0, nil, err
	}
	return elapsed, children, nil
}
