package threads

import (
	"fmt"

	"spp1000/internal/machine"
	"spp1000/internal/sim"
	"spp1000/internal/topology"
)

// Async is the handle of an asynchronous thread (§3.2: "Asynchronous
// threads continue execution independent of one another; the parent
// thread continues to execute without waiting for its children to
// terminate").
type Async struct {
	Thread *machine.Thread
	done   *sim.Event
}

// SpawnAsync creates an asynchronous child on the given CPU. The parent
// pays the dispatch cost (local or remote) and continues immediately.
func SpawnAsync(parent *machine.Thread, cpu topology.CPUID, name string, body func(th *machine.Thread)) *Async {
	m := parent.M
	p := m.P
	if cpu.Hypernode() != parent.CPU.Hypernode() {
		parent.Delay(sim.Cycles(p.ThreadSpawnRemote))
	} else {
		parent.Delay(sim.Cycles(p.ThreadSpawnLocal))
	}
	a := &Async{done: m.K.NewEvent(fmt.Sprintf("join:%s", name))}
	a.Thread = m.SpawnAt(parent.Now(), name, cpu, func(th *machine.Thread) {
		th.Delay(sim.Cycles(p.ThreadStart))
		body(th)
		a.done.Set()
	})
	return a
}

// Join blocks the caller until the asynchronous thread terminates,
// then pays the reap cost.
func (a *Async) Join(parent *machine.Thread) {
	t0, busy0, mem0 := parent.Now(), parent.Busy, parent.MemStall
	a.done.Wait(parent.P)
	parent.SyncWait += (parent.Now() - t0) - (parent.Busy - busy0) - (parent.MemStall - mem0)
	parent.Delay(sim.Cycles(parent.M.P.JoinPerThread))
}

// Done reports whether the thread has terminated (non-blocking).
func (a *Async) Done() bool { return a.done.IsSet() }
