package threads

import (
	"spp1000/internal/machine"
	"spp1000/internal/sim"
	"spp1000/internal/topology"
)

// Gate is the CPSlib mutual-exclusion primitive (§3.2): an uncached
// semaphore cell guarding a critical section. Acquisition costs one
// uncached read-modify-write at the gate's home; contended acquirers
// serialize in virtual time.
type Gate struct {
	m    *machine.Machine
	cell topology.Space
	mu   *sim.Mutex
}

// NewGate allocates a gate hosted on hypernode host.
func NewGate(m *machine.Machine, host int) *Gate {
	return &Gate{
		m:    m,
		cell: m.Alloc("gate", topology.NearShared, host, 0),
		mu:   m.K.NewMutex("gate"),
	}
}

// Lock acquires the gate.
func (g *Gate) Lock(th *machine.Thread) {
	th.RMW(g.cell, 0)
	g.mu.Lock(th.P)
}

// Unlock releases the gate.
func (g *Gate) Unlock(th *machine.Thread) {
	th.RMW(g.cell, 0)
	g.mu.Unlock()
}

// Critical runs body under the gate — the compiler's "critical section"
// directive.
func (g *Gate) Critical(th *machine.Thread, body func()) {
	g.Lock(th)
	body()
	g.Unlock(th)
}
