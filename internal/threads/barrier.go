package threads

import (
	"sort"

	"spp1000/internal/machine"
	"spp1000/internal/sim"
	"spp1000/internal/topology"
	"spp1000/internal/trace"
)

// Barrier implements the CPSlib barrier exactly as the paper describes
// it (§4.2): each arriving thread decrements an uncached counting
// semaphore, then spins on a cached shared variable; the last thread to
// arrive writes the variable, and the coherence machinery — local
// invalidations plus the SCI reference-tree walk — releases the
// spinners one by one.
//
// The spin itself is not iterated in simulated time; instead each waiter
// parks and is released at the instant its cached copy is invalidated
// plus the serialized cost of re-supplying the line (SpinRefetch +
// SpinReleaseSerial per released spinner), which is what the spin loop
// would observe.
type Barrier struct {
	m       *machine.Machine
	n       int
	sema    topology.Space // uncached counting semaphore
	flag    topology.Space // cached spin variable
	arrived int
	waiters []*waiter
	// Exit timestamps of the most recent episode, for the Fig. 3 metrics.
	lastEnter sim.Cycles
	exits     []sim.Cycles
}

type waiter struct {
	th  *machine.Thread
	sem *sim.Semaphore
}

// NewBarrier allocates a barrier for teams of n threads. The semaphore
// and the spin variable live in near-shared memory hosted on hypernode
// host.
func NewBarrier(m *machine.Machine, n, host int) *Barrier {
	return &Barrier{
		m:    m,
		n:    n,
		sema: m.Alloc("barrier.sema", topology.NearShared, host, 0),
		flag: m.Alloc("barrier.flag", topology.NearShared, host, 0),
	}
}

// Wait blocks the thread until all n team members have arrived.
func (b *Barrier) Wait(th *machine.Thread) {
	p := th.M.P

	// CXpa accounting: everything spent here beyond compute and memory
	// stall is synchronization wait.
	t0, busy0, mem0 := th.Now(), th.Busy, th.MemStall
	defer func() {
		wait := (th.Now() - t0) - (th.Busy - busy0) - (th.MemStall - mem0)
		th.SyncWait += wait
		th.M.Trace.Record(th.P.Name(), trace.Sync, th.Now()-wait, th.Now())
	}()

	// Timestamp on entry (the paper's measurement point); the last
	// arrival's timestamp survives the overwrites.
	b.lastEnter = th.Now()

	g := th.M.Counters.Group("threads")
	g.Counter("barrier_waits").Inc()

	th.ComputeCycles(p.BarrierEnter)
	// Decrement the uncached counting semaphore.
	th.RMW(b.sema, 0)
	b.arrived++

	if b.arrived < b.n {
		// Register before touching the flag: the releasing write may
		// land while this thread's first spin read is still in flight.
		w := &waiter{th: th, sem: th.M.K.NewSemaphore("spin", 0)}
		b.waiters = append(b.waiters, w)
		// Cache the spin variable (first spin iteration), then park
		// until the releasing write invalidates our copy.
		th.Read(b.flag, 0)
		w.sem.P(th.P)
		b.exits = append(b.exits, th.Now())
		return
	}

	// Last thread in: write the flag and let the invalidation fan-out
	// release the spinners.
	b.exits = b.exits[:0]
	rep := th.Write(b.flag, 0)

	// Release order follows invalidation order; each released spinner
	// additionally pays the spin-detect plus the serialized line
	// re-supply from the flag's home.
	invAt := map[topology.CPUID]sim.Cycles{}
	for _, inv := range rep.Invalidated {
		invAt[inv.CPU] = inv.At
	}
	ws := append([]*waiter(nil), b.waiters...)
	sort.SliceStable(ws, func(i, j int) bool {
		return invAt[ws[i].th.CPU] < invAt[ws[j].th.CPU]
	})
	g.Counter("barrier_episodes").Inc()
	g.Histogram("barrier_release").Observe(int64(len(ws)))
	supply := sim.Cycles(0)
	for _, w := range ws {
		at, ok := invAt[w.th.CPU]
		if !ok {
			// The waiter's copy was already gone (conflict eviction):
			// it refetches as soon as the write completes.
			at = rep.Done
		}
		release := at + sim.Cycles(p.SpinRefetch)
		if release < supply {
			release = supply
		}
		release += sim.Cycles(p.SpinReleaseSerial)
		supply = release
		w := w
		th.M.K.At(release, func() { w.sem.V() })
	}

	b.waiters = b.waiters[:0]
	b.arrived = 0
	b.exits = append(b.exits, th.Now())
}

// LastEpisode reports the Fig. 3 metrics of the most recent barrier
// episode: the last-in/first-out and last-in/last-out durations.
// Valid once every participant has exited.
func (b *Barrier) LastEpisode() (lifo, lilo sim.Cycles) {
	if len(b.exits) == 0 {
		return 0, 0
	}
	first, last := b.exits[0], b.exits[0]
	for _, e := range b.exits[1:] {
		if e < first {
			first = e
		}
		if e > last {
			last = e
		}
	}
	return first - b.lastEnter, last - b.lastEnter
}
