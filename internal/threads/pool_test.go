package threads

import (
	"testing"

	"spp1000/internal/machine"
	"spp1000/internal/sim"
	"spp1000/internal/topology"
)

func TestPoolRunsRegions(t *testing.T) {
	m := twoNode(t)
	counts := make([]int, 8)
	m.Spawn("main", topology.MakeCPU(0, 0, 0), func(main *machine.Thread) {
		p := NewPool(m, 8, HighLocality)
		for r := 0; r < 3; r++ {
			p.Region(main, func(th *machine.Thread, tid int) {
				counts[tid]++
				th.ComputeCycles(1000)
			})
		}
		p.Close()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	for tid, c := range counts {
		if c != 3 {
			t.Fatalf("worker %d ran %d regions, want 3", tid, c)
		}
	}
}

func TestPoolRegionWaitsForAll(t *testing.T) {
	m := twoNode(t)
	var slowest sim.Cycles
	m.Spawn("main", topology.MakeCPU(0, 0, 0), func(main *machine.Thread) {
		p := NewPool(m, 4, HighLocality)
		p.Region(main, func(th *machine.Thread, tid int) {
			th.ComputeCycles(int64(10_000 * (tid + 1)))
			if th.Now() > slowest {
				slowest = th.Now()
			}
		})
		if main.Now() < slowest {
			t.Error("Region returned before the slowest worker finished")
		}
		p.Close()
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolAmortizesSpawnCost(t *testing.T) {
	// §7 "lightweight threads": after the one-time pool spawn, each
	// region costs far less than a full fork-join.
	const regions = 10
	body := func(th *machine.Thread, tid int) { th.ComputeCycles(500) }

	m1 := twoNode(t)
	var forkTotal sim.Cycles
	m1.Spawn("main", topology.MakeCPU(0, 0, 0), func(main *machine.Thread) {
		start := main.Now()
		for r := 0; r < regions; r++ {
			ForkJoin(main, 16, HighLocality, body)
		}
		forkTotal = main.Now() - start
	})
	if err := m1.Run(); err != nil {
		t.Fatal(err)
	}

	m2 := twoNode(t)
	var poolTotal sim.Cycles
	m2.Spawn("main", topology.MakeCPU(0, 0, 0), func(main *machine.Thread) {
		p := NewPool(m2, 16, HighLocality)
		start := main.Now()
		for r := 0; r < regions; r++ {
			p.Region(main, body)
		}
		poolTotal = main.Now() - start
		p.Close()
	})
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}

	ratio := float64(forkTotal) / float64(poolTotal)
	if ratio < 3 {
		t.Fatalf("pool should amortize spawns: fork-join %v vs pool %v (%.1fx)",
			forkTotal, poolTotal, ratio)
	}
	t.Logf("10 regions × 16 threads: fork-join %v, pool %v (%.1fx lighter)",
		forkTotal, poolTotal, ratio)
}

func TestPoolCloseIdempotentAndGuard(t *testing.T) {
	m := twoNode(t)
	m.Spawn("main", topology.MakeCPU(0, 0, 0), func(main *machine.Thread) {
		p := NewPool(m, 2, HighLocality)
		if p.Size() != 2 || len(p.Workers()) != 2 {
			t.Error("pool size wrong")
		}
		p.Close()
		p.Close() // idempotent
		defer func() {
			if recover() == nil {
				t.Error("Region after Close should panic")
			}
		}()
		p.Region(main, func(th *machine.Thread, tid int) {})
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}
