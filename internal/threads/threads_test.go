package threads

import (
	"testing"

	"spp1000/internal/machine"
	"spp1000/internal/sim"
	"spp1000/internal/topology"
)

func twoNode(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.Config{Hypernodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCPUForHighLocality(t *testing.T) {
	topo, _ := topology.New(2)
	// First 8 threads fill hypernode 0.
	for tid := 0; tid < 8; tid++ {
		if hn := CPUFor(topo, HighLocality, tid, 16).Hypernode(); hn != 0 {
			t.Fatalf("tid %d on hn%d, want hn0", tid, hn)
		}
	}
	for tid := 8; tid < 16; tid++ {
		if hn := CPUFor(topo, HighLocality, tid, 16).Hypernode(); hn != 1 {
			t.Fatalf("tid %d on hn%d, want hn1", tid, hn)
		}
	}
}

func TestCPUForUniform(t *testing.T) {
	topo, _ := topology.New(2)
	counts := map[int]int{}
	seen := map[topology.CPUID]bool{}
	for tid := 0; tid < 16; tid++ {
		cpu := CPUFor(topo, Uniform, tid, 16)
		counts[cpu.Hypernode()]++
		if seen[cpu] {
			t.Fatalf("cpu %v assigned twice", cpu)
		}
		seen[cpu] = true
	}
	if counts[0] != 8 || counts[1] != 8 {
		t.Fatalf("uniform split = %v, want 8/8", counts)
	}
}

func TestHypernodesUsed(t *testing.T) {
	topo, _ := topology.New(2)
	if got := HypernodesUsed(topo, HighLocality, 8); got != 1 {
		t.Fatalf("8 high-locality threads use %d hypernodes, want 1", got)
	}
	if got := HypernodesUsed(topo, HighLocality, 9); got != 2 {
		t.Fatalf("9 high-locality threads use %d hypernodes, want 2", got)
	}
	if got := HypernodesUsed(topo, Uniform, 2); got != 2 {
		t.Fatalf("2 uniform threads use %d hypernodes, want 2", got)
	}
}

func TestForkJoinRunsAllBodies(t *testing.T) {
	m := twoNode(t)
	ran := make([]bool, 12)
	_, err := RunTeam(m, 12, HighLocality, func(th *machine.Thread, tid int) {
		ran[tid] = true
	})
	if err != nil {
		t.Fatal(err)
	}
	for tid, ok := range ran {
		if !ok {
			t.Fatalf("thread %d never ran", tid)
		}
	}
}

func TestForkJoinLocalSlope(t *testing.T) {
	// Fig. 2: within one hypernode, each extra pair of threads costs
	// ≈10 µs.
	cost := func(n int) sim.Cycles {
		m := twoNode(t)
		el, err := RunTeam(m, n, HighLocality, func(th *machine.Thread, tid int) {})
		if err != nil {
			t.Fatal(err)
		}
		return el
	}
	slope := (cost(8) - cost(2)).Micros() / 3 // three extra pairs
	if slope < 7 || slope > 13 {
		t.Fatalf("local fork-join pair slope = %.1f µs, want ≈10", slope)
	}
}

func TestForkJoinHypernodeBoundaryStep(t *testing.T) {
	// Fig. 2: ≈50 µs one-time penalty once a second hypernode is used.
	cost := func(n int) sim.Cycles {
		m := twoNode(t)
		el, err := RunTeam(m, n, HighLocality, func(th *machine.Thread, tid int) {})
		if err != nil {
			t.Fatal(err)
		}
		return el
	}
	step := (cost(9) - cost(8)).Micros()
	slope := (cost(8) - cost(7)).Micros()
	if step-slope < 30 {
		t.Fatalf("hypernode-boundary step = %.1f µs over local slope %.1f, want ≈50 extra", step, slope)
	}
}

func TestForkJoinUniformCostsMore(t *testing.T) {
	run := func(place Placement) sim.Cycles {
		m := twoNode(t)
		el, err := RunTeam(m, 8, place, func(th *machine.Thread, tid int) {})
		if err != nil {
			t.Fatal(err)
		}
		return el
	}
	if run(Uniform) <= run(HighLocality) {
		t.Fatal("uniform placement should cost more than high locality at 8 threads")
	}
}

func TestBarrierReleasesEveryone(t *testing.T) {
	m := twoNode(t)
	b := NewBarrier(m, 8, 0)
	after := make([]sim.Cycles, 8)
	_, err := RunTeam(m, 8, HighLocality, func(th *machine.Thread, tid int) {
		// Stagger arrivals.
		th.Delay(sim.Cycles(tid * 100))
		b.Wait(th)
		after[tid] = th.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Everyone exits at or after the last arrival.
	var latestArrival sim.Cycles
	for _, at := range after {
		if at == 0 {
			t.Fatal("a thread never exited the barrier")
		}
		if at > latestArrival {
			latestArrival = at
		}
	}
}

func TestBarrierLIFOLocalRange(t *testing.T) {
	// Fig. 3: last-in/first-out ≈3.5 µs on one hypernode.
	m := twoNode(t)
	b := NewBarrier(m, 8, 0)
	_, err := RunTeam(m, 8, HighLocality, func(th *machine.Thread, tid int) {
		th.Delay(sim.Cycles(tid * 500))
		b.Wait(th)
	})
	if err != nil {
		t.Fatal(err)
	}
	lifo, lilo := b.LastEpisode()
	if lifo.Micros() < 2 || lifo.Micros() > 6 {
		t.Fatalf("local LIFO = %.2f µs, want ≈3.5", lifo.Micros())
	}
	if lilo <= lifo {
		t.Fatalf("LILO (%v) must exceed LIFO (%v)", lilo, lifo)
	}
	// Fig. 3: ≈2 µs per released thread.
	perThread := (lilo - lifo).Micros() / 6
	if perThread < 1 || perThread > 4 {
		t.Fatalf("release cost per thread = %.2f µs, want ≈2", perThread)
	}
}

func TestBarrierCrossHypernodePenalty(t *testing.T) {
	lifoFor := func(n int, place Placement) sim.Cycles {
		m := twoNode(t)
		b := NewBarrier(m, n, 0)
		_, err := RunTeam(m, n, place, func(th *machine.Thread, tid int) {
			b.Wait(th) // align arrivals (warm episode)
			th.Delay(sim.Cycles((n - 1 - tid) * 700))
			b.Wait(th)
		})
		if err != nil {
			t.Fatal(err)
		}
		lifo, _ := b.LastEpisode()
		return lifo
	}
	local := lifoFor(8, HighLocality)
	global := lifoFor(16, HighLocality)
	extra := (global - local).Micros()
	if extra <= 0 || extra > 5 {
		t.Fatalf("second-hypernode LIFO penalty = %.2f µs, want ≈1", extra)
	}
}

func TestBarrierReusable(t *testing.T) {
	m := twoNode(t)
	b := NewBarrier(m, 4, 0)
	counter := 0
	_, err := RunTeam(m, 4, HighLocality, func(th *machine.Thread, tid int) {
		for i := 0; i < 3; i++ {
			b.Wait(th)
			if tid == 0 {
				counter++
			}
			b.Wait(th)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if counter != 3 {
		t.Fatalf("counter = %d, want 3 (barrier must be reusable)", counter)
	}
}

func TestGateMutualExclusion(t *testing.T) {
	m := twoNode(t)
	g := NewGate(m, 0)
	inside, maxInside, total := 0, 0, 0
	_, err := RunTeam(m, 8, HighLocality, func(th *machine.Thread, tid int) {
		for i := 0; i < 4; i++ {
			g.Critical(th, func() {
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				th.ComputeCycles(200)
				inside--
				total++
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("gate admitted %d threads, want 1", maxInside)
	}
	if total != 32 {
		t.Fatalf("critical sections run = %d, want 32", total)
	}
}

func TestAsyncThreadsOverlapParent(t *testing.T) {
	m := twoNode(t)
	var childEnd, parentMark sim.Cycles
	m.Spawn("parent", topology.MakeCPU(0, 0, 0), func(parent *machine.Thread) {
		a := SpawnAsync(parent, topology.MakeCPU(0, 1, 0), "child", func(th *machine.Thread) {
			th.ComputeCycles(100_000)
			childEnd = th.Now()
		})
		// Parent continues immediately (asynchronous semantics).
		parent.ComputeCycles(1_000)
		parentMark = parent.Now()
		if a.Done() {
			t.Error("child should still be running")
		}
		a.Join(parent)
		if !a.Done() {
			t.Error("child should be done after Join")
		}
		if parent.Now() < childEnd {
			t.Error("join returned before the child finished")
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if parentMark >= childEnd {
		t.Fatalf("parent (%v) should have continued while the child ran (until %v)", parentMark, childEnd)
	}
}

func TestAsyncRemoteSpawnCostsMore(t *testing.T) {
	m := twoNode(t)
	var localCost, remoteCost sim.Cycles
	m.Spawn("parent", topology.MakeCPU(0, 0, 0), func(parent *machine.Thread) {
		t0 := parent.Now()
		a := SpawnAsync(parent, topology.MakeCPU(0, 1, 0), "l", func(th *machine.Thread) {})
		localCost = parent.Now() - t0
		t0 = parent.Now()
		b := SpawnAsync(parent, topology.MakeCPU(1, 0, 0), "r", func(th *machine.Thread) {})
		remoteCost = parent.Now() - t0
		a.Join(parent)
		b.Join(parent)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if remoteCost <= localCost {
		t.Fatalf("remote spawn (%v) should cost more than local (%v)", remoteCost, localCost)
	}
}

func TestOSIntrusionOnSaturatedMachine(t *testing.T) {
	elapsed := func(n int) sim.Cycles {
		m := twoNode(t)
		el, err := RunTeam(m, n, HighLocality, func(th *machine.Thread, tid int) {
			th.ComputeCycles(1_000_000)
		})
		if err != nil {
			t.Fatal(err)
		}
		return el
	}
	full := elapsed(16)   // saturated: OS steals from thread 0
	nearly := elapsed(15) // one CPU spare: no intrusion
	if full <= nearly {
		t.Fatalf("saturated run (%v) should exceed 15-thread run (%v) due to OS intrusion", full, nearly)
	}
}
