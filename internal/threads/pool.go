package threads

import (
	"fmt"

	"spp1000/internal/machine"
	"spp1000/internal/sim"
)

// Pool is the "lightweight threads" mechanism the paper lists as needed
// future work (§7: "more dynamic load balancing and lightweight threads
// needs to be developed and implemented on this system to ease the
// programming burden"). Workers are spawned once and parked; each
// parallel region costs one wakeup and one join per worker instead of a
// full operating-system thread creation — the difference Fig. 2 prices
// at 4–15 µs per thread per fork.
type Pool struct {
	m       *machine.Machine
	workers []*machine.Thread
	work    []*sim.Queue
	done    *sim.Semaphore
	closed  bool
}

// poolJob carries one region's work assignment; a nil body means
// shutdown.
type poolJob struct {
	body func(th *machine.Thread, tid int)
}

// WakeupCycles is the cost of unparking one pooled worker (a shared-
// variable write plus scheduler handoff — no kernel thread creation).
const WakeupCycles = 60

// NewPool spawns n workers under the placement policy and parks them.
// Must be called from a running simulation context (the workers spawn
// at the machine's current virtual time).
func NewPool(m *machine.Machine, n int, place Placement) *Pool {
	p := &Pool{
		m:    m,
		done: m.K.NewSemaphore("pool.done", 0),
	}
	for tid := 0; tid < n; tid++ {
		tid := tid
		cpu := CPUFor(m.Topo, place, tid, n)
		q := m.K.NewQueue(fmt.Sprintf("pool.work%d", tid))
		p.work = append(p.work, q)
		th := m.Spawn(fmt.Sprintf("w%d", tid), cpu, func(th *machine.Thread) {
			th.Delay(sim.Cycles(m.P.ThreadStart))
			for {
				job := q.Get(th.P).(poolJob)
				if job.body == nil {
					return
				}
				job.body(th, tid)
				p.done.V()
			}
		})
		p.workers = append(p.workers, th)
	}
	return p
}

// Size reports the worker count.
func (p *Pool) Size() int { return len(p.workers) }

// Workers exposes the worker threads (for CXpa snapshots).
func (p *Pool) Workers() []*machine.Thread { return p.workers }

// Region runs body(th, tid) on every worker and blocks the caller until
// all complete — a parallel region with pool semantics.
func (p *Pool) Region(caller *machine.Thread, body func(th *machine.Thread, tid int)) {
	if p.closed {
		panic("threads: Region on a closed pool")
	}
	for tid := range p.workers {
		caller.ComputeCycles(WakeupCycles)
		p.work[tid].Put(poolJob{body: body})
	}
	t0, busy0, mem0 := caller.Now(), caller.Busy, caller.MemStall
	for range p.workers {
		p.done.P(caller.P)
	}
	caller.SyncWait += (caller.Now() - t0) - (caller.Busy - busy0) - (caller.MemStall - mem0)
}

// Close shuts the workers down; the pool cannot be reused.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for tid := range p.workers {
		p.work[tid].Put(poolJob{})
	}
}
