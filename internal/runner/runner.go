// Package runner is the host-parallel experiment engine: a worker pool
// that fans independent simulations out across the host's cores while
// keeping every observable output byte-identical to a serial run.
//
// Each (experiment, thread-count, problem-size) sweep point in this
// repository is an independent deterministic simulation on its own
// freshly built machine, so sweeps are embarrassingly parallel across
// the host — the same lever ScaleSimulator-style parallel simulators
// pull. Determinism is preserved by construction: workers only compute
// results into their own index slot; all rendering and accumulation
// happens in index order after the pool drains.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the configured pool width; 0 means "use GOMAXPROCS".
var workers atomic.Int64

// SetWorkers fixes the number of host workers used by Map and Each.
// n <= 0 restores the default (GOMAXPROCS). SetWorkers(1) recovers the
// exact serial execution order, which is useful for debugging and for
// the determinism tests that compare serial and parallel output.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers reports the effective pool width.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(0), …, fn(n-1) on the worker pool and returns the results
// in index order. fn must be safe to call concurrently with itself —
// in this repository that holds because every sweep point builds its
// own machine. If any call fails, Map returns the error of the lowest
// failing index (matching what a serial loop would have surfaced
// first); results are discarded.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, fn)
}

// MapCtx is Map with cancellation: once ctx is done, no further indices
// are dispatched. Sweep points already executing run to completion (each
// is a self-contained deterministic simulation with no cancellation
// points inside), so cancelling stops the queue, not the in-flight work.
// Undispatched indices report ctx's error, so a cancelled MapCtx returns
// a non-nil error wrapping context.Canceled / DeadlineExceeded. With a
// never-cancelled ctx the dispatch order, results, and errors are
// exactly Map's — the byte-identical -par semantics are untouched.
func MapCtx[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("run %d: %w", i, err)
			}
			v, err := fn(i)
			if err != nil {
				return nil, fmt.Errorf("run %d: %w", i, err)
			}
			out[i] = v
		}
		return out, nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("run %d: %w", i, err)
		}
	}
	return out, nil
}

// Each is Map for side-effecting work with no result value.
func Each(n int, fn func(i int) error) error {
	return EachCtx(context.Background(), n, fn)
}

// EachCtx is MapCtx for side-effecting work with no result value.
func EachCtx(ctx context.Context, n int, fn func(i int) error) error {
	_, err := MapCtx(ctx, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// Sections runs a set of heterogeneous independent stages — each
// rendering its own fragment — and returns the fragments in order.
// It is the pool-dispatch form of "run these report sections, then
// concatenate".
func Sections(fns ...func() (string, error)) ([]string, error) {
	return Map(len(fns), func(i int) (string, error) { return fns[i]() })
}
