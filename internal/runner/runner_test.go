package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func withWorkers(t *testing.T, n int) {
	t.Helper()
	SetWorkers(n)
	t.Cleanup(func() { SetWorkers(0) })
}

func TestMapOrdersResults(t *testing.T) {
	for _, w := range []int{1, 2, 4, 9} {
		withWorkers(t, w)
		got, err := Map(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("Map(0) = %v, %v; want nil, nil", got, err)
	}
}

func TestMapReportsLowestFailingIndex(t *testing.T) {
	sentinel := errors.New("boom")
	for _, w := range []int{1, 4} {
		withWorkers(t, w)
		_, err := Map(50, func(i int) (int, error) {
			if i == 7 || i == 33 {
				return 0, fmt.Errorf("%w at %d", sentinel, i)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want wrapped sentinel", w, err)
		}
		if !strings.HasPrefix(err.Error(), "run 7:") {
			t.Fatalf("workers=%d: err = %v, want the lowest failing index (7)", w, err)
		}
	}
}

func TestMapActuallyRunsConcurrently(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 1 {
		t.Skip("no cores")
	}
	withWorkers(t, 4)
	var peak, cur atomic.Int64
	gate := make(chan struct{})
	_, err := Map(4, func(i int) (int, error) {
		c := cur.Add(1)
		if c > peak.Load() {
			peak.Store(c)
		}
		if c == 4 {
			close(gate) // all four in flight together
		}
		<-gate
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak.Load() != 4 {
		t.Fatalf("peak concurrency %d, want 4", peak.Load())
	}
}

func TestSetWorkers(t *testing.T) {
	withWorkers(t, 3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	SetWorkers(0)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS", Workers())
	}
	SetWorkers(-5)
	if Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative SetWorkers should restore the default")
	}
}

func TestEach(t *testing.T) {
	withWorkers(t, 4)
	var sum atomic.Int64
	if err := Each(64, func(i int) error { sum.Add(int64(i)); return nil }); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 64*63/2 {
		t.Fatalf("sum = %d, want %d", sum.Load(), 64*63/2)
	}
	if err := Each(3, func(i int) error { return errors.New("x") }); err == nil {
		t.Fatal("Each should surface errors")
	}
}

func TestMapCtxMatchesMap(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(t, w)
		got, err := MapCtx(context.Background(), 32, func(i int) (int, error) { return i + 1, nil })
		if err != nil {
			t.Fatal(err)
		}
		want, err := Map(32, func(i int) (int, error) { return i + 1, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: MapCtx diverges from Map at %d", w, i)
			}
		}
	}
}

func TestMapCtxCancelStopsDispatch(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(t, w)
		ctx, cancel := context.WithCancel(context.Background())
		var dispatched atomic.Int64
		const n = 1000
		_, err := MapCtx(ctx, n, func(i int) (int, error) {
			if dispatched.Add(1) == int64(w) {
				cancel() // cancel once every worker has claimed one point
			}
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", w, err)
		}
		// The in-flight points finish, but the queue must stop: far
		// fewer than n points may have been dispatched.
		if d := dispatched.Load(); d >= n {
			t.Fatalf("workers=%d: all %d points dispatched despite cancellation", w, d)
		}
	}
}

func TestMapCtxPreCancelledRunsNothing(t *testing.T) {
	withWorkers(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := MapCtx(ctx, 16, func(i int) (int, error) { ran.Add(1); return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.HasPrefix(err.Error(), "run 0:") {
		t.Fatalf("err = %v, want the lowest undispatched index (0)", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d points ran under a pre-cancelled context", ran.Load())
	}
}

func TestEachCtx(t *testing.T) {
	withWorkers(t, 2)
	var sum atomic.Int64
	if err := EachCtx(context.Background(), 10, func(i int) error { sum.Add(int64(i)); return nil }); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d, want 45", sum.Load())
	}
}

func TestSections(t *testing.T) {
	withWorkers(t, 2)
	got, err := Sections(
		func() (string, error) { return "a", nil },
		func() (string, error) { return "b", nil },
		func() (string, error) { return "c", nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, "") != "abc" {
		t.Fatalf("Sections = %v, want a,b,c in order", got)
	}
}
