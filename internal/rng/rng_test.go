package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	c := New(43)
	same := true
	a = New(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(1)
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sumsq += f * f
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ≈0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Fatalf("uniform variance = %v, want ≈1/12", variance)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(2)
	n := 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ≈1", variance)
	}
}

func TestMaxwellianScales(t *testing.T) {
	r := New(3)
	n := 100000
	var sumsq float64
	for i := 0; i < n; i++ {
		v := r.Maxwellian(2.5)
		sumsq += v * v
	}
	sigma := math.Sqrt(sumsq / float64(n))
	if math.Abs(sigma-2.5) > 0.05 {
		t.Fatalf("Maxwellian sigma = %v, want 2.5", sigma)
	}
}

func TestIntnRangeProperty(t *testing.T) {
	prop := func(seed uint64, raw uint16) bool {
		n := int(raw)%100 + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestShuffleIsPermutation(t *testing.T) {
	r := New(9)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, x := range xs {
		if seen[x] {
			t.Fatalf("shuffle lost elements: %v", xs)
		}
		seen[x] = true
	}
}
