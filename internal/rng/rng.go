// Package rng provides a small deterministic pseudo-random generator
// (splitmix64-seeded xoshiro256**) for workload construction: particle
// loads, Maxwellian velocity distributions, mesh perturbations. It is
// independent of math/rand so that workloads are reproducible across Go
// releases — simulated results must be a pure function of the seed.
package rng

import "math"

// RNG is a xoshiro256** generator.
type RNG struct {
	s [4]uint64
	// cached second normal variate from Box–Muller
	normCached bool
	normValue  float64
}

// New returns a generator seeded from the given value via splitmix64.
func New(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	if r.normCached {
		r.normCached = false
		return r.normValue
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.normValue = v * f
	r.normCached = true
	return u * f
}

// Maxwellian returns a velocity component drawn from a Maxwellian of
// thermal speed vth.
func (r *RNG) Maxwellian(vth float64) float64 { return vth * r.NormFloat64() }

// Shuffle permutes the first n indices with Fisher–Yates, calling swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
