package memsys

import (
	"testing"
	"testing/quick"

	"spp1000/internal/rng"
	"spp1000/internal/sim"
	"spp1000/internal/topology"
)

func newSys(t *testing.T, nodes int) *System {
	t.Helper()
	topo, err := topology.New(nodes)
	if err != nil {
		t.Fatal(err)
	}
	return New(topo, topology.DefaultParams(), 0)
}

func TestCacheHitIsOneCycle(t *testing.T) {
	s := newSys(t, 1)
	sp := s.Alloc("x", topology.NearShared, 0, 0)
	cpu := topology.MakeCPU(0, 0, 0)
	s.Access(0, cpu, sp, 0, false) // cold miss
	rep := s.Access(1000, cpu, sp, 0, false)
	if !rep.WasHit || rep.Done != 1000+sim.Cycles(s.P.CacheHit) {
		t.Fatalf("hit report = %+v", rep)
	}
}

func TestLocalMissLatencyRange(t *testing.T) {
	s := newSys(t, 1)
	sp := s.Alloc("x", topology.ThreadPrivate, 0, 0)
	cpu := topology.MakeCPU(0, 0, 0)
	rep := s.Access(0, cpu, sp, 0, false)
	lat := int64(rep.Done)
	// Paper §2.6: local miss ≈ 50–60 cycles plus small directory cost.
	if lat < 50 || lat > 80 {
		t.Fatalf("local miss latency = %d cycles, want ≈50-60", lat)
	}
}

func TestHypernodeMissCostsMoreThanLocal(t *testing.T) {
	s := newSys(t, 1)
	cpu := topology.MakeCPU(0, 0, 0)
	local := s.Alloc("local", topology.ThreadPrivate, 0, 0)
	shared := s.Alloc("shared", topology.NearShared, 0, 0)
	repL := s.Access(0, cpu, local, 0, false)
	// Pick an address homed on another FU.
	var addr topology.Addr
	for a := topology.Addr(0); a < 1024; a += 32 {
		if s.Home(shared, a, cpu).FU != cpu.FU() {
			addr = a
			break
		}
	}
	repH := s.Access(10000, cpu, shared, addr, false)
	latL, latH := int64(repL.Done), int64(repH.Done-10000)
	if latH <= latL {
		t.Fatalf("crossbar miss (%d) should exceed local miss (%d)", latH, latL)
	}
}

func TestGlobalMissApproxEightTimesLocal(t *testing.T) {
	s := newSys(t, 2)
	cpu := topology.MakeCPU(0, 0, 0)
	remote := s.Alloc("remote", topology.NearShared, 1, 0) // homed on hn1
	near := s.Alloc("near", topology.NearShared, 0, 0)

	repG := s.Access(0, cpu, remote, 0, false)
	if !repG.WasGlobal {
		t.Fatal("access to hn1-homed line from hn0 should be global")
	}
	repN := s.Access(100000, cpu, near, 0, false)
	latG := float64(repG.Done)
	latN := float64(repN.Done - 100000)
	ratio := latG / latN
	if ratio < 5 || ratio > 11 {
		t.Fatalf("global/hypernode miss ratio = %.1f (%v vs %v), want ≈8", ratio, latG, latN)
	}
}

func TestGlobalBufferMakesReaccessLocal(t *testing.T) {
	s := newSys(t, 2)
	cpuA := topology.MakeCPU(0, 0, 0)
	cpuB := topology.MakeCPU(0, 0, 1) // same FU, other CPU
	remote := s.Alloc("remote", topology.NearShared, 1, 0)

	s.Access(0, cpuA, remote, 0, false) // global fetch, installs buffer copy
	rep := s.Access(100000, cpuB, remote, 0, false)
	if rep.WasGlobal {
		t.Fatal("second access from the same hypernode should hit the global buffer")
	}
	lat := int64(rep.Done - 100000)
	if lat > 100 {
		t.Fatalf("buffered access latency = %d cycles, want hypernode-class", lat)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	s := newSys(t, 1)
	sp := s.Alloc("flag", topology.NearShared, 0, 0)
	readers := []topology.CPUID{1, 2, 3, 4}
	for _, c := range readers {
		s.Access(0, c, sp, 0, false)
	}
	writer := topology.CPUID(0)
	rep := s.Access(1000, writer, sp, 0, true)
	if len(rep.Invalidated) != len(readers) {
		t.Fatalf("invalidated %d copies, want %d", len(rep.Invalidated), len(readers))
	}
	// Victims' subsequent reads must miss.
	for _, c := range readers {
		r := s.Access(2000, c, sp, 0, false)
		if r.WasHit {
			t.Fatalf("cpu %v should have lost its copy", c)
		}
	}
}

func TestInvalidationTimesMonotone(t *testing.T) {
	s := newSys(t, 2)
	sp := s.Alloc("flag", topology.NearShared, 0, 0)
	// Sharers on both hypernodes.
	for _, c := range []topology.CPUID{1, 2, 8, 9, 10} {
		s.Access(0, c, sp, 0, false)
	}
	rep := s.Access(1000, 0, sp, 0, true)
	var prev sim.Cycles
	for _, inv := range rep.Invalidated {
		if inv.At < prev {
			t.Fatalf("invalidation times not monotone: %+v", rep.Invalidated)
		}
		prev = inv.At
	}
	if len(rep.Invalidated) != 5 {
		t.Fatalf("invalidated %d, want 5", len(rep.Invalidated))
	}
}

func TestRemoteWriteCostsMoreThanLocalWrite(t *testing.T) {
	sLocal := newSys(t, 2)
	spL := sLocal.Alloc("x", topology.NearShared, 0, 0)
	// 4 local sharers, writer local.
	for _, c := range []topology.CPUID{1, 2, 3, 4} {
		sLocal.Access(0, c, spL, 0, false)
	}
	repLocal := sLocal.Access(1000, 0, spL, 0, true)

	sGlobal := newSys(t, 2)
	spG := sGlobal.Alloc("x", topology.NearShared, 0, 0)
	// 4 sharers on the other hypernode.
	for _, c := range []topology.CPUID{8, 9, 10, 11} {
		sGlobal.Access(0, c, spG, 0, false)
	}
	repGlobal := sGlobal.Access(1000, 0, spG, 0, true)

	costLocal := repLocal.Done - 1000
	costGlobal := repGlobal.Done - 1000
	if costGlobal <= costLocal {
		t.Fatalf("cross-hypernode invalidation (%v) should cost more than local (%v)", costGlobal, costLocal)
	}
}

func TestUncachedRMWBypassesCache(t *testing.T) {
	s := newSys(t, 2)
	sp := s.Alloc("sema", topology.NearShared, 0, 0)
	cpu := topology.MakeCPU(0, 0, 0)
	t1 := s.UncachedRMW(0, cpu, sp, 0)
	t2 := s.UncachedRMW(t1, cpu, sp, 0)
	if t2-t1 < sim.Cycles(s.P.UncachedAccess) {
		t.Fatalf("repeat RMW latency %v below bank service time", t2-t1)
	}
	if s.Cache(cpu).Contains(topology.LineKey{Space: sp, Line: 0}) {
		t.Fatal("uncached access must not allocate in the cache")
	}
	// Remote semaphore costs more (ring transit).
	remote := s.Alloc("rsema", topology.NearShared, 1, 0)
	t3 := s.UncachedRMW(0, cpu, remote, 0)
	if t3 <= t1 {
		t.Fatalf("remote RMW (%v) should exceed local (%v)", t3, t1)
	}
}

func TestBankContentionSerializes(t *testing.T) {
	s := newSys(t, 1)
	sp := s.Alloc("a", topology.NearShared, 0, 0)
	// Two CPUs miss on two different lines in the same bank (same FU home).
	cpu1 := topology.MakeCPU(0, 1, 0)
	cpu2 := topology.MakeCPU(0, 2, 0)
	var addrs []topology.Addr
	for a := topology.Addr(0); a < 4096 && len(addrs) < 2; a += 32 {
		if s.Home(sp, a, cpu1).FU == 0 {
			addrs = append(addrs, a)
		}
	}
	r1 := s.Access(0, cpu1, sp, addrs[0], false)
	r2 := s.Access(0, cpu2, sp, addrs[1], false)
	if r2.Done <= r1.Done {
		t.Fatalf("same-bank misses should serialize: %v then %v", r1.Done, r2.Done)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := newSys(t, 2)
	sp := s.Alloc("x", topology.NearShared, 1, 0)
	cpu := topology.MakeCPU(0, 0, 0)
	s.Access(0, cpu, sp, 0, false)
	s.Access(1000, cpu, sp, 0, false)
	c := s.Stats[cpu]
	if c.Accesses != 2 || c.Hits != 1 || c.GlobalMisses != 1 {
		t.Fatalf("counters = %+v", c)
	}
	tot := s.TotalCounters()
	if tot.Accesses != 2 {
		t.Fatalf("total counters = %+v", tot)
	}
}

func TestUnallocatedSpacePanics(t *testing.T) {
	s := newSys(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unallocated space")
		}
	}()
	s.Access(0, 0, topology.Space(42), 0, false)
}

func TestGlobalBufferCapacityEviction(t *testing.T) {
	s := newSys(t, 2)
	s.SetBufferCapacity(4)
	remote := s.Alloc("remote", topology.NearShared, 1, 0)
	cpu := topology.MakeCPU(0, 0, 0)
	now := sim.Cycles(0)
	// Touch 8 distinct remote lines: the first 4 must roll out.
	for i := 0; i < 8; i++ {
		rep := s.Access(now, cpu, remote, topology.Addr(i*topology.CacheLineBytes), false)
		now = rep.Done + 100
	}
	inBuf := 0
	for i := 0; i < 8; i++ {
		key := topology.LineKey{Space: remote, Line: uint64(i)}
		if s.SCI.InBuffer(0, key) {
			inBuf++
		}
	}
	if inBuf != 4 {
		t.Fatalf("buffered lines = %d, want capacity 4", inBuf)
	}
	// The evicted line 0 is a full global fetch again (its cache copy
	// also died with the rollout).
	rep := s.Access(now, cpu, remote, 0, false)
	if !rep.WasGlobal {
		t.Fatal("re-access to an evicted line should be a global fetch")
	}
	if err := s.SCI.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Thrash detector: with a large capacity the same pattern stays
	// buffered.
	s2 := newSys(t, 2)
	remote2 := s2.Alloc("remote", topology.NearShared, 1, 0)
	now = 0
	for i := 0; i < 8; i++ {
		rep := s2.Access(now, cpu, remote2, topology.Addr(i*topology.CacheLineBytes), false)
		now = rep.Done + 100
	}
	for i := 0; i < 8; i++ {
		key := topology.LineKey{Space: remote2, Line: uint64(i)}
		if !s2.SCI.InBuffer(0, key) {
			t.Fatalf("default capacity should retain line %d", i)
		}
	}
	// Minimum capacity clamps.
	s.SetBufferCapacity(0)
}

// Property: directory and SCI invariants hold under random access
// sequences from random CPUs, and reported completion times never
// precede the start time.
func TestCoherenceInvariantsUnderLoad(t *testing.T) {
	prop := func(seed int64) bool {
		rnd := rng.New(uint64(seed))
		topo, _ := topology.New(2)
		s := New(topo, topology.DefaultParams(), 64)
		spaces := []topology.Space{
			s.Alloc("a", topology.NearShared, 0, 0),
			s.Alloc("b", topology.NearShared, 1, 0),
			s.Alloc("c", topology.FarShared, 0, 0),
		}
		now := sim.Cycles(0)
		for i := 0; i < 300; i++ {
			cpu := topology.CPUID(rnd.Intn(topo.NumCPUs()))
			sp := spaces[rnd.Intn(len(spaces))]
			addr := topology.Addr(rnd.Intn(16) * 32)
			write := rnd.Intn(3) == 0
			rep := s.Access(now, cpu, sp, addr, write)
			if rep.Done < now {
				t.Logf("seed %d: completion %v before start %v", seed, rep.Done, now)
				return false
			}
			now += sim.Cycles(rnd.Intn(200))
			for hn := 0; hn < topo.Hypernodes; hn++ {
				if err := s.Directory(hn).CheckInvariants(); err != nil {
					t.Logf("seed %d step %d: %v", seed, i, err)
					return false
				}
			}
			if err := s.SCI.CheckInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: after a write completes, no other CPU's cache holds the line.
func TestWriteExclusivityAcrossMachine(t *testing.T) {
	prop := func(seed int64) bool {
		rnd := rng.New(uint64(seed))
		topo, _ := topology.New(2)
		s := New(topo, topology.DefaultParams(), 64)
		sp := s.Alloc("x", topology.NearShared, rnd.Intn(2), 0)
		addr := topology.Addr(rnd.Intn(8) * 32)
		key := topology.LineKey{Space: sp, Line: addr.Line()}
		// Random readers.
		for i := 0; i < 10; i++ {
			s.Access(0, topology.CPUID(rnd.Intn(16)), sp, addr, false)
		}
		writer := topology.CPUID(rnd.Intn(16))
		s.Access(10000, writer, sp, addr, true)
		for c := 0; c < topo.NumCPUs(); c++ {
			if topology.CPUID(c) == writer {
				continue
			}
			if s.Cache(topology.CPUID(c)).Contains(key) {
				t.Logf("seed %d: cpu %d retains the line after write by %d", seed, c, writer)
				return false
			}
		}
		return s.Cache(writer).Dirty(key)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
