package memsys_test

import (
	"testing"

	"spp1000/internal/counters"
	"spp1000/internal/memsys"
	"spp1000/internal/sim"
	"spp1000/internal/topology"
)

// benchAccess measures the full-system cost of one memory access — the
// per-event unit the counter subsystem must not tax. The off/on pair in
// BENCH_3.json bounds the disabled-path regression (≤2% ns/event, 0
// extra allocs) and records what enabling the PMU layer actually costs.
func benchAccess(b *testing.B, withCounters bool) {
	topo, err := topology.New(2)
	if err != nil {
		b.Fatal(err)
	}
	s := memsys.New(topo, topology.DefaultParams(), 4096)
	if withCounters {
		s.AttachCounters(counters.NewRegistry())
	}
	sp := s.Alloc("bench", topology.NearShared, 0, 0)
	cpu := topology.MakeCPU(0, 0, 0)
	now := sim.Cycles(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Walk enough distinct lines to mix hits and every miss class.
		addr := topology.Addr((i % 8192) * topology.CacheLineBytes)
		rep := s.Access(now, cpu, sp, addr, i%16 == 0)
		now = rep.Done
	}
}

func BenchmarkAccessCountersOff(b *testing.B) { benchAccess(b, false) }

func BenchmarkAccessCountersOn(b *testing.B) { benchAccess(b, true) }
