// Package memsys composes the SPP-1000 memory hierarchy: per-CPU caches,
// per-hypernode directories and crossbars, the global SCI protocol, and
// the ring network. Its Access method plays one load or store through the
// full machine, updating all coherence state and returning the completion
// time — including queueing on banks, crossbar ports, and rings.
package memsys

import (
	"fmt"

	"spp1000/internal/cache"
	"spp1000/internal/counters"
	"spp1000/internal/directory"
	"spp1000/internal/ring"
	"spp1000/internal/sci"
	"spp1000/internal/sim"
	"spp1000/internal/topology"
	"spp1000/internal/xbar"
)

// spaceInfo is the allocation record of one memory object.
type spaceInfo struct {
	name       string
	class      topology.Class
	host       int // NearShared host hypernode
	blockBytes int // BlockShared distribution unit
}

// Counters is the per-CPU CXpa-style instrumentation.
type Counters struct {
	Accesses        int64
	Hits            int64
	LocalMisses     int64 // served by the FU's own memory
	HypernodeMisses int64 // served over the crossbar (incl. global-buffer hits)
	GlobalMisses    int64 // served over an SCI ring
	InvalsReceived  int64
	StallCycles     int64 // total cycles waiting on memory
}

// System is the machine-wide memory system.
type System struct {
	Topo   topology.Topology
	P      topology.Params
	caches []*cache.Cache
	dirs   []*directory.Directory
	SCI    *sci.Protocol
	Rings  *ring.Network
	xbars  []*xbar.Crossbar // one 5-port switch per hypernode
	banks  [][]sim.Resource // memory banks, per hypernode per FU
	spaces []spaceInfo
	Stats  []Counters // indexed by CPUID
	ctr    memHooks   // optional PMU counters (see AttachCounters)

	// Ablation switches (see internal/ablation): DisableGlobalBuffer
	// makes every access to a remotely-homed line a full ring
	// transaction (no SCI caching of remote lines); SingleRing routes
	// all inter-hypernode traffic over ring 0 instead of one ring per
	// functional unit.
	DisableGlobalBuffer bool
	SingleRing          bool

	// The global cache buffer is carved out of functional-unit memory
	// (§2.5), so it is finite: bufferCap lines per hypernode, evicted
	// FIFO with an SCI rollout (list detach) per victim.
	bufferCap  int
	bufferFIFO [][]topology.LineKey
}

// memHooks are the machine-level PMU counter handles: access counts and
// stall-cycle totals broken down by service class (the §2.6/§6 latency
// ladder: cache hit, FU-local memory, crossbar, SCI ring). All nil —
// free no-ops — until AttachCounters.
type memHooks struct {
	accesses            *counters.Counter
	hits                *counters.Counter
	upgrades            *counters.Counter
	upgradeCycles       *counters.Counter
	localMisses         *counters.Counter
	localMissCycles     *counters.Counter
	hypernodeMisses     *counters.Counter
	hypernodeMissCycles *counters.Counter
	globalMisses        *counters.Counter
	globalMissCycles    *counters.Counter
	rmws                *counters.Counter
	rmwCycles           *counters.Counter
}

// AttachCounters wires every component of the memory system into the
// registry, one group per component instance: cache.hn<N> (the eight
// CPU caches of a hypernode aggregate), directory.hn<N>, xbar.hn<N>,
// sci, ring, and the machine-level mem group with per-class miss counts
// and stall cycles. Counters never touch virtual time, so attaching
// them cannot change any simulated result. A nil registry detaches
// everything.
func (s *System) AttachCounters(r *counters.Registry) { s.AttachCountersBase(r, 0) }

// AttachCountersBase is AttachCounters with the hypernode numbers in the
// group names offset by base. A partitioned cluster (internal/parsim)
// builds one 1-hypernode System per simulated hypernode; base gives each
// its global hypernode number so the per-partition snapshots merge into
// one machine-wide snapshot without name collisions. The machine-wide
// groups (mem, sci, ring) keep their unqualified names and therefore sum
// across partitions on merge, exactly as a monolithic machine would
// count them.
func (s *System) AttachCountersBase(r *counters.Registry, base int) {
	for i, c := range s.caches {
		c.AttachCounters(r.Group(fmt.Sprintf("cache.hn%d", base+topology.CPUID(i).Hypernode())))
	}
	for hn, d := range s.dirs {
		d.AttachCounters(r.Group(fmt.Sprintf("directory.hn%d", base+hn)))
	}
	for hn, x := range s.xbars {
		x.AttachCounters(r.Group(fmt.Sprintf("xbar.hn%d", base+hn)))
	}
	s.SCI.AttachCounters(r.Group("sci"))
	s.Rings.AttachCounters(r.Group("ring"))
	g := r.Group("mem")
	s.ctr = memHooks{
		accesses:            g.Counter("accesses"),
		hits:                g.Counter("hits"),
		upgrades:            g.Counter("upgrades"),
		upgradeCycles:       g.Counter("upgrade_cycles"),
		localMisses:         g.Counter("local_misses"),
		localMissCycles:     g.Counter("local_miss_cycles"),
		hypernodeMisses:     g.Counter("hypernode_misses"),
		hypernodeMissCycles: g.Counter("hypernode_miss_cycles"),
		globalMisses:        g.Counter("global_misses"),
		globalMissCycles:    g.Counter("global_miss_cycles"),
		rmws:                g.Counter("rmws"),
		rmwCycles:           g.Counter("rmw_cycles"),
	}
}

// DefaultBufferLines is the default per-hypernode global-buffer
// capacity: 2 MB out of each functional unit's memory × 4 FUs.
const DefaultBufferLines = 4 * (2 << 20) / topology.CacheLineBytes

// SetBufferCapacity overrides the per-hypernode global-buffer line
// capacity (for capacity experiments; minimum 1).
func (s *System) SetBufferCapacity(lines int) {
	if lines < 1 {
		lines = 1
	}
	s.bufferCap = lines
}

// New builds the memory system for a machine, using custom cache geometry
// when cacheLines > 0 (tests; 0 means the architectural 32768 lines).
func New(topo topology.Topology, p topology.Params, cacheLines int) *System {
	s := &System{Topo: topo, P: p}
	n := topo.NumCPUs()
	s.caches = make([]*cache.Cache, n)
	for i := range s.caches {
		if cacheLines > 0 {
			s.caches[i] = cache.NewWithLines(cacheLines)
		} else {
			s.caches[i] = cache.New()
		}
	}
	s.dirs = make([]*directory.Directory, topo.Hypernodes)
	s.xbars = make([]*xbar.Crossbar, topo.Hypernodes)
	s.banks = make([][]sim.Resource, topo.Hypernodes)
	for hn := 0; hn < topo.Hypernodes; hn++ {
		s.dirs[hn] = directory.New(hn)
		s.xbars[hn] = xbar.New()
		s.banks[hn] = make([]sim.Resource, topology.FUsPerNode)
	}
	s.SCI = sci.New(topo.Hypernodes)
	s.Rings = ring.New(topo, p)
	s.Stats = make([]Counters, n)
	s.bufferCap = DefaultBufferLines
	s.bufferFIFO = make([][]topology.LineKey, topo.Hypernodes)
	return s
}

// Alloc registers a memory object and returns its space handle.
// host is the hosting hypernode for NearShared; blockBytes the
// distribution unit for BlockShared (both ignored otherwise).
func (s *System) Alloc(name string, class topology.Class, host, blockBytes int) topology.Space {
	s.spaces = append(s.spaces, spaceInfo{name: name, class: class, host: host, blockBytes: blockBytes})
	return topology.Space(len(s.spaces) - 1)
}

// SpaceClass reports the memory class of a space.
func (s *System) SpaceClass(sp topology.Space) topology.Class { return s.spaces[sp].class }

// Cache exposes one CPU's cache (for tests and diagnostics).
func (s *System) Cache(cpu topology.CPUID) *cache.Cache { return s.caches[cpu] }

// Directory exposes one hypernode's directory.
func (s *System) Directory(hn int) *directory.Directory { return s.dirs[hn] }

// Invalidation records that a CPU's cached copy was killed at a time.
type Invalidation struct {
	CPU topology.CPUID
	At  sim.Cycles
}

// Report describes one access: when it completed and whom it invalidated
// (used by spin-wait modeling to release waiters at the right instants).
type Report struct {
	Done        sim.Cycles
	Invalidated []Invalidation
	WasHit      bool
	WasGlobal   bool
}

// Home resolves the line's home placement for an accessor.
func (s *System) Home(sp topology.Space, addr topology.Addr, cpu topology.CPUID) topology.Placement {
	info := s.spaces[sp]
	return s.Topo.Home(info.class, addr, cpu, info.host, info.blockBytes)
}

// Access plays one load (write=false) or store (write=true) of the word
// at addr in space sp by cpu, starting at now. All coherence state is
// updated; the report carries the completion time.
func (s *System) Access(now sim.Cycles, cpu topology.CPUID, sp topology.Space, addr topology.Addr, write bool) Report {
	if int(sp) >= len(s.spaces) {
		panic(fmt.Sprintf("memsys: access to unallocated space %d", sp))
	}
	key := topology.LineKey{Space: sp, Line: addr.Line()}
	st := &s.Stats[cpu]
	st.Accesses++
	s.ctr.accesses.Inc()
	t0 := now

	c := s.caches[cpu]
	myHN := cpu.Hypernode()
	home := s.Home(sp, addr, cpu)

	// Fast path: cache hit. A write hit still needs exclusivity if the
	// line is shared elsewhere.
	if c.Contains(key) {
		if !write || c.Dirty(key) {
			st.Hits++
			s.ctr.hits.Inc()
			c.Access(key, write)
			return Report{Done: now + sim.Cycles(s.P.CacheHit), WasHit: true}
		}
		// Write to a shared (clean) cached line: upgrade.
		rep := s.acquireOwnership(now+sim.Cycles(s.P.CacheHit), cpu, key, home)
		c.Access(key, true)
		st.Hits++
		st.StallCycles += int64(rep.Done - now)
		s.ctr.hits.Inc()
		s.ctr.upgrades.Inc()
		s.ctr.upgradeCycles.Add(int64(rep.Done - now))
		rep.WasHit = true
		return rep
	}

	// Miss: fill the line, handling the eviction first.
	res := c.Access(key, write)
	if res.WritebackNeeded {
		// Dirty eviction: the home directory forgets us; the writeback
		// itself is buffered and charged as fixed cycles.
		s.dropEvicted(res.Evicted, cpu)
		now += sim.Cycles(s.P.WriteBack)
	} else if res.HadEviction {
		s.dropEvicted(res.Evicted, cpu)
	}

	// Snapshot the per-class tallies so the serviced class — decided
	// deep inside the fill paths — can be recovered for the PMU
	// latency decomposition without changing the Report shape.
	l0, h0 := st.LocalMisses, st.HypernodeMisses

	var rep Report
	if home.Hypernode == myHN {
		rep = s.localFill(now, cpu, key, home, write)
	} else if !s.DisableGlobalBuffer && s.SCI.InBuffer(myHN, key) {
		rep = s.bufferFill(now, cpu, key, home, write)
	} else {
		rep = s.globalFill(now, cpu, key, home, write)
		rep.WasGlobal = true
		st.GlobalMisses++
	}
	st.StallCycles += int64(rep.Done - now)

	// Latency from the original issue time, including any eviction
	// writeback charged above.
	lat := int64(rep.Done - t0)
	switch {
	case rep.WasGlobal:
		s.ctr.globalMisses.Inc()
		s.ctr.globalMissCycles.Add(lat)
	case st.LocalMisses > l0:
		s.ctr.localMisses.Inc()
		s.ctr.localMissCycles.Add(lat)
	case st.HypernodeMisses > h0:
		s.ctr.hypernodeMisses.Inc()
		s.ctr.hypernodeMissCycles.Add(lat)
	}
	return rep
}

// acquireOwnership upgrades a clean cached line to exclusive dirty:
// invalidate the other local copies through the directory and purge any
// remote hypernodes on the SCI list.
func (s *System) acquireOwnership(now sim.Cycles, cpu topology.CPUID, key topology.LineKey, home topology.Placement) Report {
	myHN := cpu.Hypernode()
	rep := Report{}
	t := now + sim.Cycles(s.P.DirLookup)
	acts := s.dirs[myHN].RecordWrite(key, cpu)
	for _, victim := range acts.InvalidateLocal {
		t += sim.Cycles(s.P.InvalPerCopy)
		s.caches[victim].Invalidate(key)
		s.Stats[victim].InvalsReceived++
		rep.Invalidated = append(rep.Invalidated, Invalidation{CPU: victim, At: t})
	}
	keep := -1
	if home.Hypernode != myHN {
		keep = myHN // our buffered copy stays, now exclusive
		// The ownership request itself must reach the home's directory.
		t = s.crossbar(t, myHN, cpu.FU(), home.FU, sim.Cycles(s.P.CrossbarTransit))
		t = s.Rings.RoundTrip(t, s.ring(home.FU), myHN, home.Hypernode, topology.CacheLineBytes)
	}
	t = s.purgeRemote(t, myHN, s.ring(home.FU), key, keep, &rep)
	// A write to a line homed at another hypernode must also kill any
	// copies cached at the home itself.
	if home.Hypernode != myHN {
		for _, victim := range s.dirs[home.Hypernode].PurgeLine(key) {
			t += sim.Cycles(s.P.InvalPerCopy)
			s.caches[victim].Invalidate(key)
			s.Stats[victim].InvalsReceived++
			rep.Invalidated = append(rep.Invalidated, Invalidation{CPU: victim, At: t})
		}
	}
	rep.Done = t
	return rep
}

// dropEvicted removes an evicted line from the tracking directory
// (of the hypernode that tracks the CPU's copy: always the CPU's own).
func (s *System) dropEvicted(key topology.LineKey, cpu topology.CPUID) {
	s.dirs[cpu.Hypernode()].DropCPU(key, cpu)
}

// localFill serves a miss whose home is in the requester's hypernode.
func (s *System) localFill(now sim.Cycles, cpu topology.CPUID, key topology.LineKey, home topology.Placement, write bool) Report {
	myHN := cpu.Hypernode()
	d := s.dirs[myHN]
	rep := Report{}
	t := now + sim.Cycles(s.P.DirLookup)

	if write {
		acts := d.RecordWrite(key, cpu)
		if acts.HasPreviousOwner {
			t += sim.Cycles(s.P.WriteBack)
			s.caches[acts.PreviousOwner].Invalidate(key)
			s.Stats[acts.PreviousOwner].InvalsReceived++
			rep.Invalidated = append(rep.Invalidated, Invalidation{CPU: acts.PreviousOwner, At: t})
		}
		for _, victim := range acts.InvalidateLocal {
			t += sim.Cycles(s.P.InvalPerCopy)
			s.caches[victim].Invalidate(key)
			s.Stats[victim].InvalsReceived++
			rep.Invalidated = append(rep.Invalidated, Invalidation{CPU: victim, At: t})
		}
		// Remote hypernodes holding buffered copies must be purged.
		t = s.purgeRemote(t, myHN, s.ring(home.FU), key, -1, &rep)
	} else {
		acts := d.RecordRead(key, cpu)
		if acts.HasDirtyOwner {
			t += sim.Cycles(s.P.WriteBack)
			s.caches[acts.DirtyOwner].Clean(key)
		}
	}

	// Memory fetch: bank occupancy plus the latency of the path.
	bankDone := s.banks[myHN][home.FU].Reserve(t, sim.Cycles(s.P.MemoryBankBusy))
	queue := bankDone - t - sim.Cycles(s.P.MemoryBankBusy)
	if home.FU == cpu.FU() {
		t += sim.Cycles(s.P.LocalMiss) + queue
		s.Stats[cpu].LocalMisses++
	} else {
		t = s.crossbar(t, myHN, cpu.FU(), home.FU, sim.Cycles(s.P.CrossbarTransit))
		t += sim.Cycles(s.P.HypernodeMiss-s.P.CrossbarTransit) + queue
		s.Stats[cpu].HypernodeMisses++
	}
	rep.Done = t
	return rep
}

// bufferFill serves a miss on a remotely-homed line already present in
// this hypernode's global cache buffer: crossbar-cost service.
func (s *System) bufferFill(now sim.Cycles, cpu topology.CPUID, key topology.LineKey, home topology.Placement, write bool) Report {
	myHN := cpu.Hypernode()
	d := s.dirs[myHN]
	rep := Report{}
	t := now + sim.Cycles(s.P.DirLookup)

	if write {
		acts := d.RecordWrite(key, cpu)
		if acts.HasPreviousOwner {
			t += sim.Cycles(s.P.WriteBack)
			s.caches[acts.PreviousOwner].Invalidate(key)
			s.Stats[acts.PreviousOwner].InvalsReceived++
			rep.Invalidated = append(rep.Invalidated, Invalidation{CPU: acts.PreviousOwner, At: t})
		}
		for _, victim := range acts.InvalidateLocal {
			t += sim.Cycles(s.P.InvalPerCopy)
			s.caches[victim].Invalidate(key)
			s.Stats[victim].InvalsReceived++
			rep.Invalidated = append(rep.Invalidated, Invalidation{CPU: victim, At: t})
		}
		// Exclusivity across the machine: purge every other hypernode,
		// and any copies cached at the home hypernode itself.
		t = s.purgeRemote(t, myHN, s.ring(home.FU), key, myHN, &rep)
		if victims := s.dirs[home.Hypernode].PurgeLine(key); len(victims) > 0 {
			t = s.Rings.Send(t, s.ring(home.FU), myHN, home.Hypernode, topology.CacheLineBytes)
			for _, victim := range victims {
				t += sim.Cycles(s.P.InvalPerCopy)
				s.caches[victim].Invalidate(key)
				s.Stats[victim].InvalsReceived++
				rep.Invalidated = append(rep.Invalidated, Invalidation{CPU: victim, At: t})
			}
		}
	} else {
		acts := d.RecordRead(key, cpu)
		if acts.HasDirtyOwner {
			t += sim.Cycles(s.P.WriteBack)
			s.caches[acts.DirtyOwner].Clean(key)
		}
	}

	// The buffer lives in the FU attached to the home line's ring.
	bufFU := home.FU
	bankDone := s.banks[myHN][bufFU].Reserve(t, sim.Cycles(s.P.MemoryBankBusy))
	queue := bankDone - t - sim.Cycles(s.P.MemoryBankBusy)
	if bufFU == cpu.FU() {
		t += sim.Cycles(s.P.LocalMiss) + queue
		s.Stats[cpu].LocalMisses++
	} else {
		t = s.crossbar(t, myHN, cpu.FU(), bufFU, sim.Cycles(s.P.CrossbarTransit))
		t += sim.Cycles(s.P.HypernodeMiss-s.P.CrossbarTransit) + queue
		s.Stats[cpu].HypernodeMisses++
	}
	rep.Done = t
	return rep
}

// globalFill serves a miss that must cross the rings: crossbar to the
// ring FU, SCI transaction to the home, install in the buffer, attach to
// the sharing list.
func (s *System) globalFill(now sim.Cycles, cpu topology.CPUID, key topology.LineKey, home topology.Placement, write bool) Report {
	myHN := cpu.Hypernode()
	rep := Report{}
	ringIdx := s.ring(home.FU) // FU i of every hypernode attaches to ring i

	// Crossbar leg to the local FU on the right ring.
	t := s.crossbar(now, myHN, cpu.FU(), ringIdx, sim.Cycles(s.P.CrossbarTransit))

	// Ring round trip: request out, line back.
	t = s.Rings.RoundTrip(t, ringIdx, myHN, home.Hypernode, topology.CacheLineBytes)
	t += sim.Cycles(s.P.RemoteDirLookup)

	// Remote memory bank service.
	bankDone := s.banks[home.Hypernode][home.FU].Reserve(t, sim.Cycles(s.P.MemoryBankBusy))
	t = bankDone - sim.Cycles(s.P.MemoryBankBusy) + sim.Cycles(s.P.LocalMiss)

	// If a CPU at the home hypernode holds the line dirty, the home
	// controller intervenes before supplying it.
	if owner, ok := s.dirs[home.Hypernode].Owner(key); ok {
		t += sim.Cycles(s.P.WriteBack)
		if write {
			s.dirs[home.Hypernode].PurgeLine(key)
			s.caches[owner].Invalidate(key)
			s.Stats[owner].InvalsReceived++
			rep.Invalidated = append(rep.Invalidated, Invalidation{CPU: owner, At: t})
		} else {
			s.caches[owner].Clean(key)
			s.dirs[home.Hypernode].RecordRead(key, owner) // downgrade to shared
		}
	} else if write {
		// Any clean copies at the home hypernode must also die.
		for _, victim := range s.dirs[home.Hypernode].PurgeLine(key) {
			t += sim.Cycles(s.P.InvalPerCopy)
			s.caches[victim].Invalidate(key)
			s.Stats[victim].InvalsReceived++
			rep.Invalidated = append(rep.Invalidated, Invalidation{CPU: victim, At: t})
		}
	}

	// Install in the local global buffer and attach to the SCI list,
	// rolling out the oldest buffered line if the buffer is full.
	t += sim.Cycles(s.P.GlobalBufferFill)
	if s.SCI.Attach(key, home.Hypernode, myHN) == 0 {
		s.bufferFIFO[myHN] = append(s.bufferFIFO[myHN], key)
		t = s.evictIfFull(t, myHN, ringIdx)
	}

	if write {
		// Fetch-exclusive: purge every other sharer.
		t = s.purgeRemote(t, myHN, s.ring(home.FU), key, myHN, &rep)
		s.dirs[myHN].RecordWrite(key, cpu)
	} else {
		s.dirs[myHN].RecordRead(key, cpu)
	}

	// Crossbar leg back to the requesting CPU's FU.
	t = s.crossbar(t, myHN, ringIdx, cpu.FU(), sim.Cycles(s.P.CrossbarTransit))
	rep.Done = t
	return rep
}

// evictIfFull rolls the oldest buffered lines out of hypernode hn's
// global cache buffer until it is within capacity: the SCI sharing-list
// detach costs a ring transaction, and any locally cached copies of the
// victim die with it.
func (s *System) evictIfFull(now sim.Cycles, hn, ringIdx int) sim.Cycles {
	t := now
	fifo := s.bufferFIFO[hn]
	if len(fifo) <= s.bufferCap {
		return t // cannot be over capacity
	}
	live := 0
	for _, k := range fifo {
		if s.SCI.InBuffer(hn, k) {
			live++
		}
	}
	if live <= s.bufferCap {
		// Compact out the dead entries so the FIFO stays short.
		kept := fifo[:0]
		for _, k := range fifo {
			if s.SCI.InBuffer(hn, k) {
				kept = append(kept, k)
			}
		}
		s.bufferFIFO[hn] = kept
		return t
	}
	for live > s.bufferCap && len(fifo) > 0 {
		victim := fifo[0]
		fifo = fifo[1:]
		if !s.SCI.InBuffer(hn, victim) {
			continue // already purged by a writer
		}
		s.SCI.Detach(victim, hn)
		live--
		// SCI rollout: patch the sharing-list neighbours over the ring.
		t = s.Rings.Send(t, ringIdx, hn, s.Home(victim.Space, topology.Addr(victim.Line*topology.CacheLineBytes), topology.MakeCPU(hn, 0, 0)).Hypernode, topology.CacheLineBytes)
		t += sim.Cycles(s.P.SCIListVisit)
		for _, cpu := range s.dirs[hn].PurgeLine(victim) {
			s.caches[cpu].Invalidate(victim)
			s.Stats[cpu].InvalsReceived++
		}
	}
	s.bufferFIFO[hn] = fifo
	return t
}

// ring maps a home functional unit to its SCI ring (ring 0 for
// everything under the single-ring ablation).
func (s *System) ring(fu int) int {
	if s.SingleRing {
		return 0
	}
	return fu
}

// purgeRemote walks the SCI sharing list of key, invalidating the
// buffered copy (and any cached copies) in every hypernode except keep
// (-1 purges all). The walk is serial, as SCI prescribes. Invalidation
// times of remote CPUs are appended to rep.
func (s *System) purgeRemote(now sim.Cycles, fromHN, ringIdx int, key topology.LineKey, keep int, rep *Report) sim.Cycles {
	var victims []int
	if keep < 0 {
		victims = s.SCI.Purge(key)
	} else {
		victims = s.SCI.PurgeExcept(key, keep)
	}
	t := now
	at := fromHN
	for _, hn := range victims {
		t = s.Rings.Send(t, ringIdx, at, hn, topology.CacheLineBytes)
		t += sim.Cycles(s.P.SCIListVisit)
		for _, cpu := range s.dirs[hn].PurgeLine(key) {
			t += sim.Cycles(s.P.InvalPerCopy)
			s.caches[cpu].Invalidate(key)
			s.Stats[cpu].InvalsReceived++
			rep.Invalidated = append(rep.Invalidated, Invalidation{CPU: cpu, At: t})
		}
		at = hn
	}
	return t
}

// crossbar books a traversal between two FU ports of a hypernode.
func (s *System) crossbar(now sim.Cycles, hn, srcFU, dstFU int, dur sim.Cycles) sim.Cycles {
	return s.xbars[hn].Traverse(now, srcFU, dstFU, dur)
}

// Crossbar exposes one hypernode's switch (for tests and diagnostics).
func (s *System) Crossbar(hn int) *xbar.Crossbar { return s.xbars[hn] }

// UncachedRMW models an atomic read-modify-write on an uncached cell
// (the counting semaphores of the barrier primitive, paper §4.2): it
// bypasses the caches and serializes at the home memory bank.
func (s *System) UncachedRMW(now sim.Cycles, cpu topology.CPUID, sp topology.Space, addr topology.Addr) sim.Cycles {
	home := s.Home(sp, addr, cpu)
	myHN := cpu.Hypernode()
	var t sim.Cycles
	if home.Hypernode == myHN {
		t = now
		if home.FU != cpu.FU() {
			t = s.crossbar(t, myHN, cpu.FU(), home.FU, sim.Cycles(s.P.CrossbarTransit))
		}
	} else {
		ringIdx := s.ring(home.FU)
		t = s.crossbar(now, myHN, cpu.FU(), ringIdx, sim.Cycles(s.P.CrossbarTransit))
		t = s.Rings.RoundTrip(t, ringIdx, myHN, home.Hypernode, topology.CacheLineBytes)
		t += sim.Cycles(s.P.RemoteDirLookup)
	}
	bankDone := s.banks[home.Hypernode][home.FU].Reserve(t, sim.Cycles(s.P.UncachedAccess))
	s.ctr.rmws.Inc()
	s.ctr.rmwCycles.Add(int64(bankDone - now))
	return bankDone
}

// TotalCounters sums the per-CPU counters.
func (s *System) TotalCounters() Counters {
	var tot Counters
	for i := range s.Stats {
		c := s.Stats[i]
		tot.Accesses += c.Accesses
		tot.Hits += c.Hits
		tot.LocalMisses += c.LocalMisses
		tot.HypernodeMisses += c.HypernodeMisses
		tot.GlobalMisses += c.GlobalMisses
		tot.InvalsReceived += c.InvalsReceived
		tot.StallCycles += c.StallCycles
	}
	return tot
}
