package parsim

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
)

// coordMagic is the version tag of the coordinator snapshot record.
const coordMagic = "spp-parsim-v1"

// Snapshot writes the coordinator's state as a versioned, CRC32-guarded
// multi-line record:
//
//	spp-parsim-v1 parts=<n> lookahead=<c> rounds=<n> <crc32-hex>
//	part 0 seq=<n>
//	<kernel record for partition 0>
//	part 1 seq=<n>
//	...
//
// The CRC in the header covers every byte after it. Snapshotting is
// only legal at a drained boundary — between Run calls, every outbox
// empty and every kernel quiescent — which is exactly when the
// coordinator's whole state is the per-partition sequence counters plus
// each kernel's (clock, seq, events) triple. Mid-window state (pending
// cross-partition messages, parked procs) cannot be serialized and is
// rejected.
func (c *Coordinator) Snapshot(w io.Writer) error {
	var body bytes.Buffer
	for _, p := range c.parts {
		if len(p.outbox) > 0 {
			return fmt.Errorf("parsim: snapshot requires drained outboxes: partition %d holds %d pending messages", p.idx, len(p.outbox))
		}
		fmt.Fprintf(&body, "part %d seq=%d\n", p.idx, p.seq)
		if err := p.K.Snapshot(&body); err != nil {
			return fmt.Errorf("parsim: partition %d: %w", p.idx, err)
		}
	}
	_, err := fmt.Fprintf(w, "%s parts=%d lookahead=%d rounds=%d %08x\n",
		coordMagic, len(c.parts), int64(c.lookahead), c.rounds, crc32.ChecksumIEEE(body.Bytes()))
	if err == nil {
		_, err = w.Write(body.Bytes())
	}
	return err
}

// Restore reads one Snapshot record into a coordinator built with the
// same shape — identical partition count and lookahead, fresh kernels
// that have run nothing — leaving every partition's sequence counter
// and kernel exactly as snapshotted. Shape mismatches, CRC failures,
// and non-fresh targets are errors: a restored coordinator must be
// indistinguishable from the one that was snapshotted.
func (c *Coordinator) Restore(r io.Reader) error {
	if c.rounds != 0 {
		return fmt.Errorf("parsim: restore target must be a fresh coordinator")
	}
	for _, p := range c.parts {
		if p.seq != 0 || len(p.outbox) > 0 {
			return fmt.Errorf("parsim: restore target partition %d is not fresh", p.idx)
		}
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("parsim: restore: %w", err)
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return fmt.Errorf("parsim: restore: truncated coordinator record")
	}
	head, body := string(data[:nl]), data[nl+1:]
	var parts int
	var lookahead, rounds int64
	var crc uint32
	if _, err := fmt.Sscanf(head, coordMagic+" parts=%d lookahead=%d rounds=%d %08x", &parts, &lookahead, &rounds, &crc); err != nil {
		return fmt.Errorf("parsim: restore: malformed coordinator header %q", head)
	}
	if crc32.ChecksumIEEE(body) != crc {
		return fmt.Errorf("parsim: restore: coordinator record CRC mismatch")
	}
	if parts != len(c.parts) {
		return fmt.Errorf("parsim: restore: snapshot has %d partitions, coordinator has %d", parts, len(c.parts))
	}
	if lookahead != int64(c.lookahead) {
		return fmt.Errorf("parsim: restore: snapshot lookahead %d, coordinator lookahead %d", lookahead, int64(c.lookahead))
	}
	if rounds < 0 {
		return fmt.Errorf("parsim: restore: negative round count")
	}
	rd := bytes.NewReader(body)
	for _, p := range c.parts {
		var line string
		for {
			b, err := rd.ReadByte()
			if err != nil {
				return fmt.Errorf("parsim: restore: truncated record at partition %d", p.idx)
			}
			if b == '\n' {
				break
			}
			line += string(b)
		}
		var idx int
		var seq int64
		if _, err := fmt.Sscanf(line, "part %d seq=%d", &idx, &seq); err != nil || idx != p.idx || seq < 0 {
			return fmt.Errorf("parsim: restore: malformed partition line %q (want partition %d)", line, p.idx)
		}
		if err := p.K.Restore(rd); err != nil {
			return fmt.Errorf("parsim: partition %d: %w", p.idx, err)
		}
		p.seq = seq
	}
	c.rounds = rounds
	return nil
}
