package parsim

import (
	"fmt"

	"spp1000/internal/counters"
	"spp1000/internal/machine"
	"spp1000/internal/sim"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
)

// Cluster is a simulated SPP-1000 built for partitioned execution: one
// share-nothing 1-hypernode machine.Machine per simulated hypernode,
// joined by a Coordinator whose lookahead is the machine's minimum
// cross-hypernode latency (topology.Params.InterNodeLookahead). Each
// machine owns its caches, directories, rings, banks, and threads;
// everything that crosses a hypernode boundary — thread dispatch, join
// notification, barrier traffic — travels as timestamped partition
// messages. That structure is what makes the partitions safe to run on
// concurrent host goroutines with byte-identical output at any worker
// count: within a window no partition can observe another.
type Cluster struct {
	// Coord drives the partitions (Coordinator.Run is called by Run).
	Coord *Coordinator
	// Nodes are the per-hypernode machines, index = global hypernode.
	Nodes []*ClusterNode
	// Topo is the whole simulated machine (placement, CPU numbering,
	// ring hop counts); each node's own machine is a 1-hypernode slice.
	Topo topology.Topology
	// P is the shared parameter set.
	P topology.Params
}

// ClusterNode is one hypernode slice of a Cluster.
type ClusterNode struct {
	// M is the node's private 1-hypernode machine.
	M *machine.Machine
	// Part is the node's partition handle (cross-node messaging).
	Part *Partition
}

// NewCluster builds a cluster of hn hypernodes with default parameters.
func NewCluster(hn int) (*Cluster, error) {
	topo, err := topology.New(hn)
	if err != nil {
		return nil, err
	}
	p := topology.DefaultParams()
	c := &Cluster{Topo: topo, P: p}
	kernels := make([]*sim.Kernel, hn)
	for i := 0; i < hn; i++ {
		m, err := machine.New(machine.Config{Hypernodes: 1, NodeIndex: i})
		if err != nil {
			return nil, err
		}
		c.Nodes = append(c.Nodes, &ClusterNode{M: m})
		kernels[i] = m.K
	}
	c.Coord, err = New(sim.Cycles(p.InterNodeLookahead()), kernels)
	if err != nil {
		return nil, err
	}
	for i, n := range c.Nodes {
		n.Part = c.Coord.Partition(i)
	}
	return c, nil
}

// NodeFor maps a global CPU to its node and the CPU's identity on that
// node's 1-hypernode machine.
func (c *Cluster) NodeFor(cpu topology.CPUID) (*ClusterNode, topology.CPUID) {
	return c.Nodes[cpu.Hypernode()], topology.MakeCPU(0, cpu.FU(), cpu.Local())
}

// Run executes the partitioned simulation to completion and publishes
// each node's counter deltas to any attached collector (the partitioned
// analogue of machine.Run).
func (c *Cluster) Run() error {
	err := c.Coord.Run()
	for _, n := range c.Nodes {
		counters.Publish(n.M.Counters)
	}
	return err
}

// Counters merges the per-node registries into one machine-wide
// snapshot: per-hypernode groups (cache.hn<N>, …) are distinct by
// construction (machine.Config.NodeIndex), machine-wide groups (mem,
// sci, ring, threads) sum across nodes.
func (c *Cluster) Counters() counters.Snapshot {
	snaps := make([]counters.Snapshot, len(c.Nodes))
	for i, n := range c.Nodes {
		snaps[i] = n.M.Counters.Snapshot()
	}
	return counters.MergeSnapshots(snaps...)
}

// RunTeam forks a team of n threads across the cluster under the
// high-locality placement, runs the partitioned simulation to
// completion, and reports the fork-to-join virtual duration observed by
// the parent on hypernode 0 — the partitioned analogue of
// threads.RunTeam. The dispatch mirrors threads.ForkJoin's cost
// arithmetic: a one-time remote-runtime initialization the first time
// the fork crosses a hypernode, a local or remote spawn cost per child
// (the child begins on its node's kernel at the dispatch-complete
// instant, carried across the partition boundary as a message — legal
// because ThreadSpawnRemote far exceeds the lookahead), a child-side
// start cost, and a per-thread reap cost at join. Remote children send
// their completion back as a message one lookahead after finishing (the
// minimum ring crossing — and the exact window horizon, exercising the
// half-open boundary on every run). When the team saturates the whole
// machine, thread 0 pays the OS-intrusion slowdown, as in ForkJoin.
func (c *Cluster) RunTeam(n int, body func(th *machine.Thread, tid int)) (sim.Cycles, error) {
	if n < 1 {
		return 0, fmt.Errorf("parsim: team size must be >= 1, got %d", n)
	}
	if n > c.Topo.NumCPUs() {
		return 0, fmt.Errorf("parsim: team of %d exceeds the machine's %d CPUs", n, c.Topo.NumCPUs())
	}
	p := c.P
	root := c.Nodes[0]
	done := root.M.K.NewSemaphore("join", 0)
	saturated := n >= c.Topo.NumCPUs()
	look := sim.Cycles(p.InterNodeLookahead())

	var elapsed sim.Cycles
	root.M.Spawn("main", topology.MakeCPU(0, 0, 0), func(parent *machine.Thread) {
		start := parent.Now()
		crossed := false
		for tid := 0; tid < n; tid++ {
			cpu := threads.CPUFor(c.Topo, threads.HighLocality, tid, n)
			node, local := c.NodeFor(cpu)
			remote := cpu.Hypernode() != 0
			if remote && !crossed {
				crossed = true
				parent.Delay(sim.Cycles(p.RemoteRuntimeInit))
			}
			spawn := p.ThreadSpawnLocal
			if remote {
				spawn = p.ThreadSpawnRemote
			}
			tid := tid
			startAt := parent.Now() + sim.Cycles(spawn)
			slow := saturated && tid == 0
			launch := func() {
				child := node.M.SpawnAt(startAt, fmt.Sprintf("t%d", tid), local, func(th *machine.Thread) {
					th.Delay(sim.Cycles(p.ThreadStart))
					body(th, tid)
					if node == root {
						done.V()
					} else {
						node.Part.Post(0, th.Now()+look, func() { done.V() })
					}
				})
				if slow {
					child.SetSlowdown(p.OSIntrusion)
				}
			}
			if node == root {
				launch()
			} else {
				root.Part.Post(cpu.Hypernode(), startAt, launch)
			}
			parent.Delay(sim.Cycles(spawn))
		}
		for i := 0; i < n; i++ {
			done.P(parent.P)
		}
		parent.Delay(sim.Cycles(int64(n) * p.JoinPerThread))
		elapsed = parent.Now() - start
	})
	if err := c.Run(); err != nil {
		return 0, err
	}
	return elapsed, nil
}
