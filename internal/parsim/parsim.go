// Package parsim is the conservative parallel-discrete-event (PDES)
// coordinator: it drives several share-nothing sim.Kernel partitions —
// one per simulated hypernode — in lookahead-synchronized time windows,
// optionally on concurrent host goroutines.
//
// The SPP-1000's physical hierarchy supplies the lookahead: every
// modeled interaction that crosses a hypernode boundary pays at least
// the crossbar leg, the fixed SCI packet handling, and one ring hop
// (topology.Params.InterNodeLookahead). Within a window of that width a
// partition cannot affect any other partition, so all partitions may
// execute their local events concurrently. Cross-partition interactions
// are buffered as timestamped messages and delivered at window
// boundaries in a deterministic merge order — (At, source partition,
// source sequence), mirroring the trace-record tie-breaking — so the
// simulation's output is byte-identical at every worker count.
//
// The window protocol each round is:
//
//  1. collect every partition's outbox (partition index order), stable
//     sort by (At, src, seq), and schedule each message on its
//     destination kernel;
//  2. snapshot every partition's next pending event time E_i; stop if
//     no partition has events;
//  3. give each partition its conservative horizon — the earliest
//     instant any other partition could still affect it: min over the
//     other partitions' E_j, plus lookahead − 1 (half-open: a message
//     posted at exactly now + lookahead must be delivered before the
//     destination executes that instant, so the horizon stops one cycle
//     short). A partition that is the only one holding events has no
//     horizon and drains its whole queue; a partition whose next event
//     lies beyond its horizon sits the round out;
//  4. run the runnable partitions — concurrently when more than one is
//     runnable and workers are configured, inline otherwise;
//  5. repeat until every queue is drained, then surface any per-kernel
//     deadlock diagnostics.
//
// Safety: partition j only emits while executing events, so nothing it
// sends this round carries At < E_j + lookahead; partition i executes
// only below min_{j≠i}(E_j) + lookahead. Every message is therefore
// delivered before its destination's clock reaches it. Partition.Post
// enforces the lookahead bound on the sender. Progress: the partition
// holding the globally earliest event always has E ≤ its horizon, so
// every round executes at least one event.
//
// parsim is the one package allowed to spawn goroutines around live
// kernels (simlint class "pdes"); the kernels and device models it
// drives stay goroutine-free sim-core.
package parsim

import (
	"fmt"
	"sort"
	"sync/atomic"

	"spp1000/internal/sim"
)

// workers is the configured window-execution width; 0 (the default)
// means serial.
var workers atomic.Int64

// SetWorkers fixes how many host goroutines execute partitions within
// each window. n <= 1 (and the default) is serial: partitions run in
// index order on the calling goroutine, which is also the reference
// order every parallel execution must — and by construction does —
// reproduce byte-identically. Wired to sppbench's -simpar flag the way
// -par wires runner.SetWorkers.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers reports the effective width (1 = serial).
func Workers() int {
	if n := workers.Load(); n > 1 {
		return int(n)
	}
	return 1
}

// Msg is one buffered cross-partition interaction: Fn runs on the
// destination partition's kernel at virtual time At.
type Msg struct {
	// At is the virtual delivery time on the destination kernel.
	At sim.Cycles
	// Dst is the destination partition index.
	Dst int
	// Fn is the action to schedule there (runs inside the destination
	// kernel's event loop, so it may touch that partition's state only).
	Fn func()

	src int   // posting partition, first tie-break after At
	seq int64 // per-source sequence, final tie-break
}

// Partition is one share-nothing slice of the simulated machine: a
// kernel plus the outbox through which it interacts with the others.
type Partition struct {
	// K is the partition's event kernel. Only the coordinator (between
	// windows) and the partition's own events may touch it.
	K *sim.Kernel

	c      *Coordinator
	idx    int
	outbox []Msg
	seq    int64
	err    error
}

// Index reports the partition's position in the coordinator.
func (p *Partition) Index() int { return p.idx }

// Post buffers fn for execution on partition dst at virtual time at.
// Must be called from within an event executing on this partition's
// kernel. The conservative invariant requires at ≥ now + lookahead
// (at == now + lookahead, the window horizon itself, is legal — that
// boundary is exactly what the half-open window protects); a violation
// is recorded and surfaced as the coordinator's Run error, with the
// message clamped to the horizon so the run stays deterministic.
func (p *Partition) Post(dst int, at sim.Cycles, fn func()) {
	if horizon := p.K.Now() + p.c.lookahead; at < horizon {
		if p.err == nil {
			p.err = fmt.Errorf("parsim: partition %d posts to %d at %v, inside the lookahead horizon %v (now %v + lookahead %v)",
				p.idx, dst, at, horizon, p.K.Now(), p.c.lookahead)
		}
		at = horizon
	}
	if dst == p.idx {
		// Same-partition post: no boundary to cross, so schedule directly
		// — the sender may keep executing past the delivery time within
		// its own window without any causality hazard.
		p.K.At(at, fn)
		return
	}
	p.seq++
	p.outbox = append(p.outbox, Msg{At: at, Dst: dst, Fn: fn, src: p.idx, seq: p.seq})
}

// drainAll marks a partition with no horizon this round: it is the only
// one holding events, so it may run until its queue empties or it first
// emits a cross-partition message — from that instant a recipient could
// start replying, so a real horizon exists again.
const drainAll = sim.Cycles(-1)

// Coordinator owns the partitions and runs the window protocol.
type Coordinator struct {
	lookahead sim.Cycles
	parts     []*Partition
	rounds    int64

	// Per-round state. The coordinator goroutine writes these between
	// rounds; workers read them after the jobs-channel send (the channel
	// operations order the accesses).
	ends     []sim.Cycles // per-partition horizon (drainAll = unbounded)
	nexts    []sim.Cycles // per-partition next-event snapshot
	has      []bool       // whether nexts[i] is valid
	runnable []int        // partitions executing this round
	width    int          // worker stripe stride for the current Run
	msgs     []Msg        // deliver scratch
}

// New builds a coordinator over the given kernels (one partition each,
// in slice order) with the given conservative lookahead.
func New(lookahead sim.Cycles, kernels []*sim.Kernel) (*Coordinator, error) {
	if lookahead < 1 {
		return nil, fmt.Errorf("parsim: lookahead must be >= 1 cycle, got %v", lookahead)
	}
	if len(kernels) < 1 {
		return nil, fmt.Errorf("parsim: need at least one kernel")
	}
	c := &Coordinator{lookahead: lookahead}
	for i, k := range kernels {
		if k == nil {
			return nil, fmt.Errorf("parsim: kernel %d is nil", i)
		}
		c.parts = append(c.parts, &Partition{K: k, c: c, idx: i})
	}
	return c, nil
}

// Partition returns partition i.
func (c *Coordinator) Partition(i int) *Partition { return c.parts[i] }

// Partitions reports the partition count.
func (c *Coordinator) Partitions() int { return len(c.parts) }

// Lookahead reports the conservative window width.
func (c *Coordinator) Lookahead() sim.Cycles { return c.lookahead }

// Rounds reports how many windows the last Run executed (a measure of
// synchronization intensity: events ÷ rounds is the per-window grain).
func (c *Coordinator) Rounds() int64 { return c.rounds }

// EventsProcessed sums the partitions' per-kernel event counts.
func (c *Coordinator) EventsProcessed() int64 {
	var n int64
	for _, p := range c.parts {
		n += p.K.EventsProcessed()
	}
	return n
}

// Run executes the window protocol to completion: deliver buffered
// messages, advance every runnable partition to its conservative
// horizon, repeat until all queues drain. It returns the first
// lookahead violation, causality error, or per-partition deadlock (live
// procs with nothing scheduled), checked in deterministic partition
// order.
func (c *Coordinator) Run() error {
	w := Workers()
	if w > len(c.parts) {
		w = len(c.parts)
	}
	n := len(c.parts)
	if c.ends == nil {
		c.ends = make([]sim.Cycles, n)
		c.nexts = make([]sim.Cycles, n)
		c.has = make([]bool, n)
		c.runnable = make([]int, 0, n)
	}
	c.width = w
	var jobs chan int
	var done chan struct{}
	if w > 1 {
		// Persistent window workers: spawning goroutines per window would
		// dominate the fine-grained rounds, so w−1 workers live for the
		// whole run and the coordinator goroutine executes stripe 0 itself
		// instead of parking — 2(w−1) channel operations per round,
		// independent of the partition count. Worker/coordinator g runs
		// runnable[g], runnable[g+w], ….
		jobs = make(chan int, w)
		done = make(chan struct{}, w)
		defer close(jobs)
		for g := 1; g < w; g++ {
			go func() {
				for g := range jobs {
					for k := g; k < len(c.runnable); k += c.width {
						c.runPart(c.runnable[k])
					}
					done <- struct{}{}
				}
			}()
		}
	}

	for {
		if err := c.deliver(); err != nil {
			return err
		}
		// Snapshot per-partition next-event times; track the earliest two
		// (with ties landing in min2) for the horizon computation.
		any := false
		var min1, min2 sim.Cycles
		i1, hasMin2 := -1, false
		for i, p := range c.parts {
			at, ok := p.K.NextEventAt()
			c.has[i] = ok
			if !ok {
				continue
			}
			c.nexts[i] = at
			any = true
			switch {
			case i1 < 0:
				min1, i1 = at, i
			case at < min1:
				min2, hasMin2 = min1, true
				min1, i1 = at, i
			case !hasMin2 || at < min2:
				min2, hasMin2 = at, true
			}
		}
		if !any {
			break
		}
		// Each partition's horizon is the earliest event of any *other*
		// partition plus lookahead − 1: nothing another partition emits
		// this round can land below that (half-open: a message may land
		// at exactly E + lookahead, so stop one cycle short). The sole
		// holder of events has no horizon and drains until it emits.
		runnable := c.runnable[:0]
		for i := range c.parts {
			if !c.has[i] {
				continue
			}
			var end sim.Cycles
			switch {
			case i == i1 && !hasMin2:
				end = drainAll
			case i == i1:
				end = min2 + c.lookahead - 1
			default:
				end = min1 + c.lookahead - 1
			}
			if end != drainAll && c.nexts[i] > end {
				continue // nothing executable below the horizon this round
			}
			c.ends[i] = end
			runnable = append(runnable, i)
		}
		c.runnable = runnable
		c.rounds++
		if w > 1 && len(runnable) > 1 {
			m := w
			if len(runnable) < m {
				m = len(runnable) // higher stripes are empty
			}
			for g := 1; g < m; g++ {
				jobs <- g
			}
			for k := 0; k < len(runnable); k += w {
				c.runPart(runnable[k]) // stripe 0, on this goroutine
			}
			for g := 1; g < m; g++ {
				<-done
			}
		} else {
			for _, i := range runnable {
				c.runPart(i)
			}
		}
		for _, p := range c.parts {
			if p.err != nil {
				return p.err
			}
		}
	}

	// Queues drained everywhere: any partition still holding live procs
	// is deadlocked; Run on the empty kernel surfaces its diagnostics.
	for _, p := range c.parts {
		if err := p.K.Run(); err != nil {
			return fmt.Errorf("parsim: partition %d: %w", p.idx, err)
		}
	}
	return nil
}

// runPart advances partition i through its share of the round: to its
// horizon, or — for the sole holder of events — batch by batch until
// its queue empties or it first posts a cross-partition message.
//
//simlint:hotpath
func (c *Coordinator) runPart(i int) {
	p := c.parts[i]
	end := c.ends[i]
	if end == drainAll {
		for len(p.outbox) == 0 {
			at, ok := p.K.NextEventAt()
			if !ok {
				return
			}
			if err := p.K.RunUntil(at); err != nil {
				if p.err == nil {
					p.err = err
				}
				return
			}
		}
		return
	}
	if err := p.K.RunUntil(end); err != nil && p.err == nil {
		p.err = err
	}
}

// deliver collects every outbox, merges deterministically, and schedules
// the messages on their destination kernels.
func (c *Coordinator) deliver() error {
	msgs := c.msgs[:0]
	for _, p := range c.parts {
		msgs = append(msgs, p.outbox...)
		p.outbox = p.outbox[:0]
	}
	c.msgs = msgs
	sort.SliceStable(msgs, func(i, j int) bool {
		if msgs[i].At != msgs[j].At {
			return msgs[i].At < msgs[j].At
		}
		if msgs[i].src != msgs[j].src {
			return msgs[i].src < msgs[j].src
		}
		return msgs[i].seq < msgs[j].seq
	})
	for _, m := range msgs {
		if m.Dst < 0 || m.Dst >= len(c.parts) {
			return fmt.Errorf("parsim: partition %d posted to nonexistent partition %d", m.src, m.Dst)
		}
		dst := c.parts[m.Dst]
		if m.At < dst.K.Now() {
			return fmt.Errorf("parsim: causality violation: message from partition %d for partition %d at %v arrives with the destination clock already at %v",
				m.src, m.Dst, m.At, dst.K.Now())
		}
		dst.K.At(m.At, m.Fn)
	}
	return nil
}
