package parsim

import (
	"fmt"
	"sort"

	"spp1000/internal/machine"
	"spp1000/internal/sim"
	"spp1000/internal/topology"
	"spp1000/internal/trace"
)

// ClusterBarrier is the partitioned analogue of threads.Barrier: a
// barrier over a team spread across the cluster's hypernodes, built
// from node-local arrival counting plus cross-partition messages.
//
// Each arriving thread pays the barrier-entry bookkeeping and an
// uncached read-modify-write on its node's fragment of the distributed
// arrival counter, then parks on a per-thread semaphore. The last local
// arrival of each node reports to the combiner on hypernode 0, paying
// the uplink: crossbar leg, SCI packet inject/eject, the request and
// response ring hops, the remote directory lookup, and the semaphore
// cell update (hypernode 0 reports in place for free — its RMW was the
// combiner update). When every node has reported, the combiner releases
// the spinners hierarchically: the releasing update is supplied around
// the rings once, every node's copy landing within that revolution (the
// slowest downlink), so all nodes share one delivery base; each node's
// spinners then re-fetch through their own crossbar, the re-supply
// serializing within the node (threads.Barrier's refetch + serial
// re-supply arithmetic) but the per-node chains running in parallel.
// That per-node fan-out is the hierarchical release a 16-hypernode
// machine needs — and it is also what keeps the partitions
// phase-aligned, so the post-barrier compute executes concurrently
// across host workers. Release schedules travel back as one message per
// remote node at the shared base, which is at least one lookahead out
// (the slowest downlink is at minimum a full ring crossing).
//
// All combiner state lives on hypernode 0 and is mutated only by events
// executing on that node's kernel; node-local state is mutated only by
// its own node's events. That discipline — not locks — is what makes
// the barrier safe under concurrent window execution and byte-identical
// at every worker count.
type ClusterBarrier struct {
	c     *Cluster
	nodes []*nodeBarrier
	// combiner state, hosted on (and only touched from) node 0.
	active   int // nodes with at least one participant
	arrivals []nodeArrival
}

// nodeBarrier is one node's share of the barrier state.
type nodeBarrier struct {
	node    *ClusterNode
	sema    topology.Space // node-local fragment of the arrival counter
	expect  int            // participants on this node
	arrived int
	waiters []*clusterWaiter
}

// clusterWaiter is one parked thread.
type clusterWaiter struct {
	th  *machine.Thread
	sem *sim.Semaphore
}

// nodeArrival is one node's report to the combiner.
type nodeArrival struct {
	node  int
	at    sim.Cycles // combiner-side arrival time
	count int        // waiters to release on that node
}

// NewClusterBarrier allocates a barrier whose participant count on node
// i is counts[i] (len(counts) must equal the cluster's node count; the
// runners derive counts from the team's placement).
func NewClusterBarrier(c *Cluster, counts []int) (*ClusterBarrier, error) {
	if len(counts) != len(c.Nodes) {
		return nil, fmt.Errorf("parsim: barrier counts cover %d nodes, cluster has %d", len(counts), len(c.Nodes))
	}
	b := &ClusterBarrier{c: c}
	for i, n := range c.Nodes {
		b.nodes = append(b.nodes, &nodeBarrier{
			node:   n,
			sema:   n.M.Alloc(fmt.Sprintf("cbarrier.sema.hn%d", i), topology.NearShared, 0, 0),
			expect: counts[i],
		})
		if counts[i] > 0 {
			b.active++
		}
	}
	if b.active == 0 {
		return nil, fmt.Errorf("parsim: barrier needs at least one participant")
	}
	return b, nil
}

// Wait blocks the thread — which must run on node ni's machine — until
// every participant on every node has arrived.
func (b *ClusterBarrier) Wait(th *machine.Thread, ni int) {
	p := b.c.P
	nb := b.nodes[ni]

	// CXpa accounting, as in the monolithic barrier: everything beyond
	// compute and memory stall spent here is synchronization wait.
	t0, busy0, mem0 := th.Now(), th.Busy, th.MemStall
	defer func() {
		wait := (th.Now() - t0) - (th.Busy - busy0) - (th.MemStall - mem0)
		th.SyncWait += wait
		th.M.Trace.Record(th.P.Name(), trace.Sync, th.Now()-wait, th.Now())
	}()

	g := th.M.Counters.Group("threads")
	g.Counter("barrier_waits").Inc()

	th.ComputeCycles(p.BarrierEnter)
	th.RMW(nb.sema, 0)
	nb.arrived++
	w := &clusterWaiter{th: th, sem: th.M.K.NewSemaphore("cspin", 0)}
	nb.waiters = append(nb.waiters, w)

	if nb.arrived == nb.expect {
		if ni == 0 {
			// Node 0's RMW was the combiner update itself.
			b.arrive(ni, nb.arrived)
		} else {
			hops := b.c.Topo.RingHops(ni, 0)
			up := p.CrossbarTransit + 2*p.RingPacketFixed + int64(2*hops)*p.RingHop +
				p.RemoteDirLookup + p.UncachedAccess
			count := nb.arrived
			nb.node.Part.Post(0, th.Now()+sim.Cycles(up), func() { b.arrive(ni, count) })
		}
	}
	w.sem.P(th.P)
}

// arrive runs on node 0's kernel: record one node's arrival and, when
// every active node is in, compute and dispatch the release fan-out.
func (b *ClusterBarrier) arrive(ni, count int) {
	now := b.c.Nodes[0].M.Now()
	b.arrivals = append(b.arrivals, nodeArrival{node: ni, at: now, count: count})
	if len(b.arrivals) < b.active {
		return
	}
	p := b.c.P
	arr := b.arrivals
	b.arrivals = nil
	sort.SliceStable(arr, func(i, j int) bool {
		if arr[i].at != arr[j].at {
			return arr[i].at < arr[j].at
		}
		return arr[i].node < arr[j].node
	})

	b.nodes[0].node.M.Counters.Group("threads").Counter("barrier_episodes").Inc()

	// The releasing update circulates the rings once; every node's copy
	// lands by the slowest downlink, so all nodes share one delivery
	// base. Each node's spinners then pay the spin-detect refetch plus a
	// re-supply that serializes within the node (threads.Barrier's
	// arithmetic) — but the per-node chains run in parallel, which keeps
	// the released phases aligned across partitions.
	var maxDown sim.Cycles
	for _, a := range arr {
		if a.node == 0 {
			continue
		}
		hops := b.c.Topo.RingHops(0, a.node)
		down := sim.Cycles(p.CrossbarTransit + p.RingPacketFixed + int64(hops)*p.RingHop)
		if down > maxDown {
			maxDown = down
		}
	}
	base := now + maxDown
	for _, a := range arr {
		supply := sim.Cycles(0)
		rel := make([]sim.Cycles, a.count)
		for i := range rel {
			r := base + sim.Cycles(p.SpinRefetch)
			if r < supply {
				r = supply
			}
			r += sim.Cycles(p.SpinReleaseSerial)
			supply = r
			rel[i] = r
		}
		nb := b.nodes[a.node]
		release := func() {
			ws := nb.waiters
			nb.waiters = nil
			nb.arrived = 0
			k := nb.node.M.K
			for i, w := range ws {
				w := w
				k.At(rel[i], func() { w.sem.V() })
			}
		}
		if a.node == 0 {
			release()
		} else {
			// base = now + the slowest downlink, and any remote downlink
			// is at least a full ring crossing ≥ the lookahead, so the
			// schedule always travels legally; the first release on the
			// node is a refetch + re-supply past base.
			b.nodes[0].node.Part.Post(a.node, base, release)
		}
	}
}
