package parsim

import (
	"fmt"
	"strings"
	"testing"

	"spp1000/internal/machine"
	"spp1000/internal/sim"
)

// withWorkers runs fn at each width and restores the serial default.
func withWorkers(t *testing.T, widths []int, fn func(w int)) {
	t.Helper()
	defer SetWorkers(0)
	for _, w := range widths {
		SetWorkers(w)
		fn(w)
	}
}

// TestWindowBoundaryMessage pins the off-by-one edge that breaks
// conservative PDES: a message posted at exactly now + lookahead must
// be delivered before the destination executes that instant. With a
// closed window [T, T+L] the destination would run past the message's
// timestamp first and delivery would be a causality violation; the
// half-open horizon T+L−1 makes it land, at the right time, ordered
// after the destination's own same-instant event.
func TestWindowBoundaryMessage(t *testing.T) {
	const lookahead = 100
	run := func() (string, error) {
		k0, k1 := sim.NewKernel(), sim.NewKernel()
		c, err := New(lookahead, []*sim.Kernel{k0, k1})
		if err != nil {
			t.Fatal(err)
		}
		var log []string
		note := func(who string, k *sim.Kernel) func() {
			return func() { log = append(log, fmt.Sprintf("%s@%d", who, int64(k.Now()))) }
		}
		k1.At(104, note("k1-before", k1))
		k1.At(105, note("k1-same-instant", k1))
		k1.At(106, note("k1-after", k1))
		k0.At(5, func() {
			// Exactly the horizon: 5 + lookahead.
			c.Partition(0).Post(1, 105, note("msg", k1))
		})
		if err := c.Run(); err != nil {
			return "", err
		}
		return strings.Join(log, " "), nil
	}
	want := "k1-before@104 k1-same-instant@105 msg@105 k1-after@106"
	withWorkers(t, []int{1, 2}, func(w int) {
		got, err := run()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if got != want {
			t.Fatalf("workers=%d: order %q, want %q", w, got, want)
		}
	})
}

// TestPostInsideLookaheadFails proves the conservative invariant is
// enforced: posting under the horizon is surfaced as a Run error.
func TestPostInsideLookaheadFails(t *testing.T) {
	k0, k1 := sim.NewKernel(), sim.NewKernel()
	c, err := New(100, []*sim.Kernel{k0, k1})
	if err != nil {
		t.Fatal(err)
	}
	k0.At(10, func() {
		c.Partition(0).Post(1, 109, func() {}) // horizon is 110
	})
	err = c.Run()
	if err == nil || !strings.Contains(err.Error(), "lookahead horizon") {
		t.Fatalf("Run() = %v, want lookahead-horizon error", err)
	}
}

// TestCoordinatorDeterminism round-trips messages among four partitions
// and requires the byte-identical event order at every worker count.
func TestCoordinatorDeterminism(t *testing.T) {
	const (
		n         = 4
		lookahead = 50
		limit     = 5000
	)
	run := func() (string, int64) {
		kernels := make([]*sim.Kernel, n)
		logs := make([][]string, n)
		for i := range kernels {
			kernels[i] = sim.NewKernel()
		}
		c, err := New(lookahead, kernels)
		if err != nil {
			t.Fatal(err)
		}
		// Each partition bounces a token to its neighbor, staggered so
		// windows hold a mix of local events and messages.
		var hop func(i int) func()
		hop = func(i int) func() {
			return func() {
				k := kernels[i]
				logs[i] = append(logs[i], fmt.Sprintf("p%d@%v", i, k.Now()))
				if k.Now() < limit {
					c.Partition(i).Post((i+1)%n, k.Now()+lookahead+sim.Cycles(i), hop((i+1)%n))
				}
			}
		}
		for i := range kernels {
			kernels[i].At(sim.Cycles(7*i), hop(i))
		}
		if err := c.Run(); err != nil {
			t.Fatal(err)
		}
		var all []string
		for i := range logs {
			all = append(all, logs[i]...)
		}
		return strings.Join(all, " "), c.EventsProcessed()
	}
	var base string
	var baseEvents int64
	withWorkers(t, []int{1, 2, 4}, func(w int) {
		got, events := run()
		if w == 1 {
			base, baseEvents = got, events
			return
		}
		if got != base {
			t.Fatalf("workers=%d: log diverged from serial", w)
		}
		if events != baseEvents {
			t.Fatalf("workers=%d: %d events, serial executed %d", w, events, baseEvents)
		}
	})
	if baseEvents == 0 {
		t.Fatal("no events executed")
	}
}

// TestClusterTeamDeterminism runs a cross-hypernode fork/join with a
// cluster barrier and requires identical elapsed time, per-partition
// event counts, and merged counters at every worker count.
func TestClusterTeamDeterminism(t *testing.T) {
	const procs = 32 // 4 hypernodes
	run := func() (sim.Cycles, string, string) {
		cl, err := NewCluster(4)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range cl.Nodes {
			n.M.EnableCounters()
		}
		counts := []int{8, 8, 8, 8}
		bar, err := NewClusterBarrier(cl, counts)
		if err != nil {
			t.Fatal(err)
		}
		elapsed, err := cl.RunTeam(procs, func(th *machine.Thread, tid int) {
			for s := 0; s < 3; s++ {
				th.ComputeCycles(int64(1000 * (tid%4 + 1)))
				bar.Wait(th, tid/8)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var ev []string
		for i, n := range cl.Nodes {
			ev = append(ev, fmt.Sprintf("p%d=%d", i, n.M.K.EventsProcessed()))
		}
		return elapsed, strings.Join(ev, " "), cl.Counters().Render("counters")
	}
	var baseElapsed sim.Cycles
	var baseEvents, baseCounters string
	withWorkers(t, []int{1, 2, 4}, func(w int) {
		elapsed, events, ctrs := run()
		if w == 1 {
			baseElapsed, baseEvents, baseCounters = elapsed, events, ctrs
			if elapsed <= 0 {
				t.Fatalf("elapsed = %v, want > 0", elapsed)
			}
			return
		}
		if elapsed != baseElapsed {
			t.Fatalf("workers=%d: elapsed %v, serial %v", w, elapsed, baseElapsed)
		}
		if events != baseEvents {
			t.Fatalf("workers=%d: events %q, serial %q", w, events, baseEvents)
		}
		if ctrs != baseCounters {
			t.Fatalf("workers=%d: counters diverged from serial", w)
		}
	})
}

// TestClusterDeadlockDiagnosed proves a stuck partition surfaces the
// kernel's deadlock diagnostics with its partition number.
func TestClusterDeadlockDiagnosed(t *testing.T) {
	cl, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	sem := cl.Nodes[1].M.K.NewSemaphore("never", 0)
	cl.Nodes[1].M.Spawn("stuck", 0, func(th *machine.Thread) { sem.P(th.P) })
	err = cl.Run()
	if err == nil || !strings.Contains(err.Error(), "partition 1") || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("Run() = %v, want partition-1 deadlock", err)
	}
}
