package parsim

import (
	"bytes"
	"strings"
	"testing"

	"spp1000/internal/sim"
)

// runPingPong drives a 2-partition coordinator through a cross-partition
// exchange to completion, leaving nonzero clocks, seqs, and rounds.
func runPingPong(t *testing.T) *Coordinator {
	t.Helper()
	k0, k1 := sim.NewKernel(), sim.NewKernel()
	c, err := New(10, []*sim.Kernel{k0, k1})
	if err != nil {
		t.Fatal(err)
	}
	p0, p1 := c.Partition(0), c.Partition(1)
	k0.At(0, func() {
		p0.Post(1, 10, func() {
			p1.Post(0, p1.K.Now()+10, func() {})
		})
	})
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCoordinatorSnapshotRoundTrip(t *testing.T) {
	c := runPingPong(t)
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	fresh, err := New(10, []*sim.Kernel{sim.NewKernel(), sim.NewKernel()})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if fresh.Rounds() != c.Rounds() {
		t.Fatalf("rounds %d, want %d", fresh.Rounds(), c.Rounds())
	}
	for i := 0; i < c.Partitions(); i++ {
		a, b := c.Partition(i), fresh.Partition(i)
		if a.seq != b.seq || a.K.Now() != b.K.Now() || a.K.EventsProcessed() != b.K.EventsProcessed() {
			t.Fatalf("partition %d diverged: (seq=%d now=%v events=%d) vs (seq=%d now=%v events=%d)",
				i, b.seq, b.K.Now(), b.K.EventsProcessed(), a.seq, a.K.Now(), a.K.EventsProcessed())
		}
	}
	// A restored coordinator re-snapshots byte-identically.
	var buf2 bytes.Buffer
	if err := fresh.Snapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("re-snapshot diverged:\n%q\n%q", buf.Bytes(), buf2.Bytes())
	}
}

func TestCoordinatorSnapshotRejectsPendingOutbox(t *testing.T) {
	c := runPingPong(t)
	c.parts[0].outbox = append(c.parts[0].outbox, Msg{At: 99, Dst: 1})
	if err := c.Snapshot(&bytes.Buffer{}); err == nil {
		t.Fatal("snapshot with a pending outbox message succeeded")
	}
}

func TestCoordinatorRestoreRejects(t *testing.T) {
	c := runPingPong(t)
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	rec := buf.String()

	// Shape mismatch: wrong partition count.
	threeParts, _ := New(10, []*sim.Kernel{sim.NewKernel(), sim.NewKernel(), sim.NewKernel()})
	if err := threeParts.Restore(strings.NewReader(rec)); err == nil {
		t.Fatal("restore into a 3-partition coordinator succeeded")
	}

	// Shape mismatch: wrong lookahead.
	wrongLA, _ := New(20, []*sim.Kernel{sim.NewKernel(), sim.NewKernel()})
	if err := wrongLA.Restore(strings.NewReader(rec)); err == nil {
		t.Fatal("restore with mismatched lookahead succeeded")
	}

	// Non-fresh target: already ran.
	used := runPingPong(t)
	if err := used.Restore(strings.NewReader(rec)); err == nil {
		t.Fatal("restore into a used coordinator succeeded")
	}

	// Corruption: flip a byte in the body (a partition's seq digit).
	corrupt := strings.Replace(rec, "part 0 seq=", "part 0 seq=9", 1)
	freshC, _ := New(10, []*sim.Kernel{sim.NewKernel(), sim.NewKernel()})
	if err := freshC.Restore(strings.NewReader(corrupt)); err == nil {
		t.Fatal("restore accepted a body that fails the CRC")
	}

	// Truncation.
	freshT, _ := New(10, []*sim.Kernel{sim.NewKernel(), sim.NewKernel()})
	if err := freshT.Restore(strings.NewReader(rec[:len(rec)/2])); err == nil {
		t.Fatal("restore accepted a truncated record")
	}

	// Sanity: the pristine record restores into a fresh same-shape target.
	ok, _ := New(10, []*sim.Kernel{sim.NewKernel(), sim.NewKernel()})
	if err := ok.Restore(strings.NewReader(rec)); err != nil {
		t.Fatalf("pristine restore failed: %v", err)
	}
}
