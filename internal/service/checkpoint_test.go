package service

// The checkpoint lifecycle slice of the fault-matrix suite: a deadline
// that fires mid-suite must land the job in "checkpointed" (work kept,
// waiters unblocked), a resubmission must resume from the checkpoint
// instead of recomputing, and a restarted daemon must find the
// checkpoint in its durable store. docs/SERVICE.md documents the
// lifecycle; sppd_jobs_checkpointed_total is asserted here, which also
// keeps it on simlint's ledger reconcile surface.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spp1000/internal/experiments"
	"spp1000/internal/store"
)

// TestDeadlineCheckpointsThenResumes: first run saves a checkpoint and
// then hits its deadline → status "checkpointed", counted in
// sppd_jobs_checkpointed_total; resubmitting the same spec re-arms the
// job, hands the saved checkpoint back to the runner, and finishes.
func TestDeadlineCheckpointsThenResumes(t *testing.T) {
	var calls atomic.Int64
	var resumedFrom atomic.Value // string: the prior bytes the second run saw
	_, ts := newTestServer(t, Config{
		RunCheckpointed: func(ctx context.Context, spec experiments.Spec, prior []byte, save func([]byte) error) (string, []byte, error) {
			if calls.Add(1) == 1 {
				if err := save([]byte("prefix-after-fig2")); err != nil {
					return "", nil, err
				}
				<-ctx.Done() // the deadline fires mid-suite
				return "", []byte("prefix-after-fig2"), ctx.Err()
			}
			resumedFrom.Store(string(prior))
			return "resumed result", nil, nil
		},
	})

	body := `{"experiments":["fig2"],"quick":true,"timeout":"20ms"}`
	v, code := submit(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	cp := waitStatus(t, ts, v.ID, StatusCheckpointed)
	if cp.FinishedAt == "" || !strings.Contains(cp.Error, "checkpointed") {
		t.Fatalf("checkpointed view = %+v", cp)
	}
	m := metricsMap(t, ts)
	if m["jobs_checkpointed_total"] != 1 || m["jobs_timeout_total"] != 0 || m["jobs_failed_total"] != 0 {
		t.Fatalf("metrics = checkpointed %v timeout %v failed %v, want 1/0/0",
			m["jobs_checkpointed_total"], m["jobs_timeout_total"], m["jobs_failed_total"])
	}

	// Resubmission re-arms and resumes (a generous timeout this time).
	again, code := submit(t, ts, `{"experiments":["fig2"],"quick":true}`)
	if code != http.StatusAccepted || again.ID != v.ID {
		t.Fatalf("resubmit after checkpoint: code %d id %s", code, again.ID)
	}
	waitStatus(t, ts, v.ID, StatusDone)
	if got, _ := resumedFrom.Load().(string); got != "prefix-after-fig2" {
		t.Fatalf("resumed run saw prior %q, want the saved checkpoint", got)
	}
	res, resp := getResult(t, ts, v.ID)
	if resp.StatusCode != http.StatusOK || res != "resumed result" {
		t.Fatalf("result = %d %q", resp.StatusCode, res)
	}
	m = metricsMap(t, ts)
	if m["jobs_checkpointed_total"] != 1 || m["jobs_done_total"] != 1 {
		t.Fatalf("final metrics = checkpointed %v done %v, want 1/1", m["jobs_checkpointed_total"], m["jobs_done_total"])
	}
}

// TestDeadlineWithoutProgressIsTimeout: a checkpointing runner that made
// no progress before the deadline has nothing to keep — the job lands in
// plain "timeout", exactly as under the non-checkpointing runner.
func TestDeadlineWithoutProgressIsTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{
		RunCheckpointed: func(ctx context.Context, spec experiments.Spec, prior []byte, save func([]byte) error) (string, []byte, error) {
			<-ctx.Done()
			return "", nil, ctx.Err() // zero experiments completed: no partial
		},
	})
	v, code := submit(t, ts, `{"experiments":["fig2"],"quick":true,"timeout":"20ms"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitStatus(t, ts, v.ID, StatusTimeout)
	m := metricsMap(t, ts)
	if m["jobs_timeout_total"] != 1 || m["jobs_checkpointed_total"] != 0 {
		t.Fatalf("metrics = timeout %v checkpointed %v, want 1/0", m["jobs_timeout_total"], m["jobs_checkpointed_total"])
	}
}

// TestRestartResumesFromStoredCheckpoint: the checkpoint write-through
// survives the daemon. A second life pointed at the same store directory
// finds no result for the key — but finds the checkpoint, and resumes
// from it instead of starting over.
func TestRestartResumesFromStoredCheckpoint(t *testing.T) {
	dir := t.TempDir()
	body := `{"experiments":["tab1"],"timeout":"20ms"}`

	st1, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{
		Store: st1,
		RunCheckpointed: func(ctx context.Context, spec experiments.Spec, prior []byte, save func([]byte) error) (string, []byte, error) {
			if err := save([]byte("durable-prefix")); err != nil {
				return "", nil, err
			}
			<-ctx.Done()
			return "", []byte("durable-prefix"), ctx.Err()
		},
	})
	ts1 := httptest.NewServer(s1.Handler())
	v1, code := submit(t, ts1, body)
	if code != http.StatusAccepted {
		t.Fatalf("first-life submit: %d", code)
	}
	waitStatus(t, ts1, v1.ID, StatusCheckpointed)
	// Kill the first daemon.
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Second life: fresh server, same directory. The job table is empty,
	// so the submission queues a fresh run — which must be handed the
	// stored checkpoint as its prior.
	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var resumedFrom atomic.Value
	_, ts2 := newTestServer(t, Config{
		Store: st2,
		RunCheckpointed: func(ctx context.Context, spec experiments.Spec, prior []byte, save func([]byte) error) (string, []byte, error) {
			resumedFrom.Store(string(prior))
			return "finished in the second life", nil, nil
		},
	})
	v2, code := submit(t, ts2, `{"experiments":["tab1"]}`)
	if code != http.StatusAccepted || v2.ID != v1.ID {
		t.Fatalf("second-life submit: code %d id %s (first life %s)", code, v2.ID, v1.ID)
	}
	waitStatus(t, ts2, v2.ID, StatusDone)
	if got, _ := resumedFrom.Load().(string); got != "durable-prefix" {
		t.Fatalf("second life saw prior %q, want the stored checkpoint", got)
	}
	res, resp := getResult(t, ts2, v2.ID)
	if resp.StatusCode != http.StatusOK || res != "finished in the second life" {
		t.Fatalf("result = %d %q", resp.StatusCode, res)
	}
	// Completion spends the checkpoint: the durable copy is deleted, so
	// it cannot squat store capacity after the result supersedes it.
	if _, ok, err := st2.Get(checkpointKey(v2.ID)); ok || err != nil {
		t.Fatalf("durable checkpoint survived completion: ok=%v err=%v", ok, err)
	}
}

// TestDefaultRunnerCheckpointsRealEngine drives the real checkpointing
// engine (the nil-config default) end to end through the HTTP API: a
// two-experiment suite whose deadline fires after the first boundary
// lands checkpointed, and the resubmission's result is byte-identical to
// an uninterrupted run of the same spec on a second daemon.
func TestDefaultRunnerCheckpointsRealEngine(t *testing.T) {
	// An uninterrupted reference daemon.
	_, ref := newTestServer(t, Config{})
	body := `{"experiments":["fig2","fig3"],"quick":true}`
	rv, _ := submit(t, ref, body)
	waitStatus(t, ref, rv.ID, StatusDone)
	want, resp := getResult(t, ref, rv.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reference result: %d", resp.StatusCode)
	}

	// The interrupted daemon: a deadline generous enough for fig2 but not
	// the whole suite is impossible to pin portably, so instead interrupt
	// deterministically — wrap the default runner and cancel via a
	// deadline that fires during fig3 (the save hook signals fig2 done).
	firstBoundary := make(chan struct{})
	var once atomic.Bool
	_, ts := newTestServer(t, Config{
		RunCheckpointed: func(ctx context.Context, spec experiments.Spec, prior []byte, save func([]byte) error) (string, []byte, error) {
			wrapped := func(b []byte) error {
				if once.CompareAndSwap(false, true) {
					close(firstBoundary)
					if len(prior) == 0 {
						<-ctx.Done() // hold until the deadline fires: a mid-suite kill
					}
				}
				return save(b)
			}
			return DefaultRunCheckpointed(ctx, spec, prior, wrapped)
		},
	})
	v, code := submit(t, ts, `{"experiments":["fig2","fig3"],"quick":true,"timeout":"150ms"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	<-firstBoundary
	waitStatus(t, ts, v.ID, StatusCheckpointed)

	again, code := submit(t, ts, body)
	if code != http.StatusAccepted || again.ID != v.ID {
		t.Fatalf("resubmit: code %d id %s", code, again.ID)
	}
	waitStatus(t, ts, v.ID, StatusDone)
	got, resp := getResult(t, ts, v.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resumed result: %d", resp.StatusCode)
	}
	if got != want {
		t.Fatalf("resumed result differs from the uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}
