package service

// The fault-matrix suite: every test here injects a failure mode —
// expired deadlines, failing or stalled runs, torn durable writes, a
// daemon killed and restarted — and proves the service degrades
// gracefully and its accounting stays exact. Hooks come from
// internal/faultinject; tests that arm them must not run in parallel
// (Arm panics on overlap, making a violation loud).

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spp1000/internal/experiments"
	"spp1000/internal/faultinject"
	"spp1000/internal/load"
	"spp1000/internal/store"
)

// metricsMap fetches /metrics via the load harness's shared scraper
// and parses every `sppd_name value` line into a map with the prefix
// stripped (values as float64; counters compare exactly as they are
// integral).
func metricsMap(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	m, err := load.Scrape(nil, ts.URL, load.SppdPrefix)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// seedBody builds a submit body whose content address is pinned by the
// seed — the fault tests key stub-Run behavior on it.
func seedBody(seed int) string {
	return fmt.Sprintf(`{"experiments":["tab1"],"options":{"seed":%d}}`, seed)
}

func TestJobTimeoutReachesTimeoutStatus(t *testing.T) {
	_, ts := newTestServer(t, Config{
		JobTimeout: 20 * time.Millisecond,
		Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
			<-ctx.Done() // a real run stops dispatching sweep points here
			return "", ctx.Err()
		},
	})
	v, code := submit(t, ts, `{"experiments":["fig2"],"quick":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	done := waitStatus(t, ts, v.ID, StatusTimeout)
	if done.FinishedAt == "" || !strings.Contains(done.Error, "deadline exceeded") {
		t.Fatalf("timeout view = %+v", done)
	}
	m := metricsMap(t, ts)
	if m["jobs_timeout_total"] != 1 || m["jobs_canceled_total"] != 0 || m["jobs_failed_total"] != 0 {
		t.Fatalf("metrics = timeout %v canceled %v failed %v, want 1/0/0",
			m["jobs_timeout_total"], m["jobs_canceled_total"], m["jobs_failed_total"])
	}
}

// TestPerRequestTimeoutOverride: the submission's own "timeout" beats
// the daemon default, and a timed-out job re-arms on resubmission.
func TestPerRequestTimeoutOverride(t *testing.T) {
	var calls atomic.Int64
	_, ts := newTestServer(t, Config{
		// Daemon default is generous; the request overrides it down.
		JobTimeout: time.Hour,
		Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
			if calls.Add(1) == 1 {
				<-ctx.Done()
				return "", ctx.Err()
			}
			return "second life", nil
		},
	})
	body := `{"experiments":["fig2"],"quick":true,"timeout":"20ms"}`
	v, code := submit(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitStatus(t, ts, v.ID, StatusTimeout)

	// Resubmission re-arms the timed-out record, like failed/canceled.
	again, code := submit(t, ts, `{"experiments":["fig2"],"quick":true}`)
	if code != http.StatusAccepted || again.ID != v.ID {
		t.Fatalf("resubmit after timeout: code %d id %s", code, again.ID)
	}
	waitStatus(t, ts, v.ID, StatusDone)
	res, resp := getResult(t, ts, v.ID)
	if resp.StatusCode != http.StatusOK || res != "second life" {
		t.Fatalf("result after re-arm = %d %q", resp.StatusCode, res)
	}
}

// TestFaultInjectedFailingRun: an injected run error lands the job in
// failed (not cached), and once the fault clears a resubmission runs
// for real.
func TestFaultInjectedFailingRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
		return "healthy", nil
	}})
	disarm := faultinject.Arm(faultinject.RunStart, func(...string) error {
		return errors.New("injected run failure")
	})
	t.Cleanup(disarm)

	v, _ := submit(t, ts, `{"experiments":["fig2"],"quick":true}`)
	failed := waitStatus(t, ts, v.ID, StatusFailed)
	if !strings.Contains(failed.Error, "injected run failure") || failed.FinishedAt == "" {
		t.Fatalf("failed view = %+v", failed)
	}

	disarm()
	again, code := submit(t, ts, `{"experiments":["fig2"],"quick":true}`)
	if code != http.StatusAccepted || again.ID != v.ID {
		t.Fatalf("resubmit after injected failure: %d %s", code, again.ID)
	}
	done := waitStatus(t, ts, v.ID, StatusDone)
	if done.Cached {
		t.Fatal("failed run must not be cached")
	}
	m := metricsMap(t, ts)
	if m["jobs_failed_total"] != 1 || m["jobs_done_total"] != 1 {
		t.Fatalf("metrics failed %v done %v, want 1/1", m["jobs_failed_total"], m["jobs_done_total"])
	}
}

// TestFaultInjectedSlowRunsFillQueue: with runs stalled by the hook,
// the bounded queue fills and overflow submissions get 503 — while the
// stalled in-flight jobs still complete once the fault clears.
func TestFaultInjectedSlowRunsFillQueue(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueDepth: 1, Workers: 1,
		Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
			return "completed despite overload", nil
		}})

	release := make(chan struct{})
	disarm := faultinject.Arm(faultinject.RunStart, func(...string) error {
		<-release // injected slow run
		return nil
	})
	t.Cleanup(disarm)
	// Registered after newTestServer so it runs before the server's
	// drain cleanup (LIFO): a test failure must not leave the worker
	// parked in the hook while Shutdown waits on it.
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
	})

	running, _ := submit(t, ts, seedBody(1))
	waitStatus(t, ts, running.ID, StatusRunning)
	queued, code := submit(t, ts, seedBody(2))
	if code != http.StatusAccepted {
		t.Fatalf("second submit should queue: %d", code)
	}
	if _, code := submit(t, ts, seedBody(3)); code != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit = %d, want 503", code)
	}

	close(release)
	for _, id := range []string{running.ID, queued.ID} {
		done := waitStatus(t, ts, id, StatusDone)
		if done.Cached {
			t.Fatalf("job %s should have run fresh", id)
		}
	}
	m := metricsMap(t, ts)
	if m["jobs_rejected_total"] != 1 || m["jobs_done_total"] != 2 || m["jobs_queued"] != 0 || m["jobs_running"] != 0 {
		t.Fatalf("metrics after overload = rejected %v done %v queued %v running %v",
			m["jobs_rejected_total"], m["jobs_done_total"], m["jobs_queued"], m["jobs_running"])
	}
}

// TestKillAndRestartServesFromStore is the durability acceptance test:
// a fresh daemon pointed at an existing store directory answers a prior
// submission as done+cached with the byte-identical result and an empty
// PMU snapshot — no simulation ran in its lifetime.
func TestKillAndRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	body := `{"experiments":["tab1"],"quick":true}`

	st1, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Store: st1}) // default Run: the real engine
	ts1 := httptest.NewServer(s1.Handler())
	v1, code := submit(t, ts1, body)
	if code != http.StatusAccepted {
		t.Fatalf("first-life submit: %d", code)
	}
	waitStatus(t, ts1, v1.ID, StatusDone)
	res1, resp := getResult(t, ts1, v1.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first-life result: %d", resp.StatusCode)
	}
	// Kill the first daemon.
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Second life: fresh server, fresh cache, same directory.
	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{Store: st2, Run: func(context.Context, experiments.Spec) (string, error) {
		return "", errors.New("restarted daemon must not re-simulate a stored result")
	}})
	v2, code := submit(t, ts2, body)
	if code != http.StatusOK {
		t.Fatalf("second-life submit: code %d, want 200 (answered from store)", code)
	}
	if v2.ID != v1.ID || Status(v2.Status) != StatusDone || !v2.Cached {
		t.Fatalf("second-life view = %+v, want same id, done, cached", v2)
	}
	if len(v2.Counters) != 0 {
		t.Fatalf("no simulation ran, but PMU snapshot is %v", v2.Counters)
	}
	res2, resp := getResult(t, ts2, v2.ID)
	if resp.StatusCode != http.StatusOK || res2 != res1 {
		t.Fatalf("restarted result differs: %d, %d bytes vs %d bytes", resp.StatusCode, len(res2), len(res1))
	}
	if resp.Header.Get("X-Sppd-Cached") != "true" {
		t.Fatalf("X-Sppd-Cached = %q", resp.Header.Get("X-Sppd-Cached"))
	}
	m := metricsMap(t, ts2)
	if m["store_hits_total"] != 1 || m["cache_hits_total"] != 1 || m["jobs_done_total"] != 1 {
		t.Fatalf("second-life metrics = store %v cache %v done %v, want 1/1/1",
			m["store_hits_total"], m["cache_hits_total"], m["jobs_done_total"])
	}
	if hs := st2.Stats(); hs.Hits != 1 {
		t.Fatalf("store stats = %+v, want 1 hit", hs)
	}
}

// TestTornStoreWriteRecomputedNotServed: a write torn between payload
// and rename leaves a corrupt durable entry; the restarted daemon must
// detect it, recompute, and repair the store — never serve the damage.
func TestTornStoreWriteRecomputedNotServed(t *testing.T) {
	dir := t.TempDir()
	body := seedBody(7)
	var runs atomic.Int64
	runFn := func(ctx context.Context, spec experiments.Spec) (string, error) {
		runs.Add(1)
		return "the one true result", nil
	}

	// The hook sees the temp file just before the atomic rename: chop
	// its tail off, as a crash mid-write would.
	tear := faultinject.Arm(faultinject.StoreWrite, func(args ...string) error {
		return os.Truncate(args[0], 10)
	})
	st1, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Store: st1, Run: runFn})
	ts1 := httptest.NewServer(s1.Handler())
	v1, _ := submit(t, ts1, body)
	waitStatus(t, ts1, v1.ID, StatusDone) // job succeeds; only its durability is torn
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s1.Shutdown(ctx)
	tear()

	st2, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{Store: st2, Run: runFn})
	v2, code := submit(t, ts2, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit over torn store: code %d, want 202 (recompute, not serve)", code)
	}
	done := waitStatus(t, ts2, v2.ID, StatusDone)
	if done.Cached {
		t.Fatal("torn entry was served as a cache hit")
	}
	res, resp := getResult(t, ts2, v2.ID)
	if resp.StatusCode != http.StatusOK || res != "the one true result" {
		t.Fatalf("result = %d %q", resp.StatusCode, res)
	}
	if runs.Load() != 2 {
		t.Fatalf("runs = %d, want 2 (original + recompute)", runs.Load())
	}
	if ss := st2.Stats(); ss.Corrupt != 1 || ss.Puts != 1 {
		t.Fatalf("store stats = %+v, want Corrupt 1 and the repair Put 1", ss)
	}
	// The repair is durable: a third life serves it from the store.
	st3, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts3 := newTestServer(t, Config{Store: st3, Run: runFn})
	v3, code := submit(t, ts3, body)
	if code != http.StatusOK || !v3.Cached {
		t.Fatalf("third-life submit = %d cached %v, want 200 cached", code, v3.Cached)
	}
	if runs.Load() != 2 {
		t.Fatalf("third life re-ran (runs=%d)", runs.Load())
	}
}
