package service

// The cluster side of a backend daemon: a Joiner registers this sppd
// with a sppgw gateway and keeps the registration alive with periodic
// heartbeats, and PeerFetchVia builds the Config.PeerFetch hook that
// turns re-hashed keys into warm hits by copying the previous ring
// owner's store entry through the gateway. Both are deliberately thin
// HTTP clients: membership truth lives in the gateway, and the daemon
// keeps running (standalone-degraded) if the gateway is unreachable.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"spp1000/internal/faultinject"
	"spp1000/internal/store"
)

// Joiner keeps one backend registered with a sppgw gateway: an
// immediate registration on start, then one heartbeat per interval
// until Close, which deregisters so the gateway re-hashes this
// backend's keys right away instead of waiting out the TTL. Create
// with StartJoiner.
type Joiner struct {
	gateway  string
	id       string
	addr     string
	interval time.Duration
	client   *http.Client
	stop     chan struct{}
	done     chan struct{}
}

// StartJoiner registers the backend (id, advertising advertiseAddr as
// its base URL) with the gateway at gatewayURL and heartbeats every
// interval (<= 0 defaults to 1s) until Close. Registration failures
// are retried on the next tick — a backend that comes up before its
// gateway joins as soon as the gateway answers.
func StartJoiner(gatewayURL, id, advertiseAddr string, interval time.Duration) *Joiner {
	if interval <= 0 {
		interval = time.Second
	}
	j := &Joiner{
		gateway:  strings.TrimRight(gatewayURL, "/"),
		id:       id,
		addr:     advertiseAddr,
		interval: interval,
		client:   &http.Client{Timeout: 5 * time.Second},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go j.loop()
	return j
}

func (j *Joiner) loop() {
	defer close(j.done)
	j.register()
	//simlint:allow determinism the heartbeat cadence is host liveness protocol, not simulation state; results never depend on it
	t := time.NewTicker(j.interval)
	defer t.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-t.C:
			j.register()
		}
	}
}

// register sends one join/heartbeat; errors are swallowed (the next
// tick retries, and the gateway treats join and heartbeat identically).
func (j *Joiner) register() {
	body, err := json.Marshal(map[string]string{"id": j.id, "addr": j.addr})
	if err != nil {
		return
	}
	resp, err := j.client.Post(j.gateway+"/v1/backends", "application/json", bytes.NewReader(body))
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// Close stops the heartbeat loop and best-effort deregisters from the
// gateway, so the ring re-hashes this backend's keys immediately on a
// graceful shutdown rather than after the heartbeat TTL.
func (j *Joiner) Close() {
	close(j.stop)
	<-j.done
	req, err := http.NewRequest(http.MethodDelete, j.gateway+"/v1/backends/"+url.PathEscape(j.id), nil)
	if err != nil {
		return
	}
	if resp, err := j.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// PeerFetchVia builds the Config.PeerFetch hook for a clustered
// backend: on a local miss it asks the gateway at gatewayURL for
// another backend's copy of the entry (GET /v1/peer/{key}, excluding
// selfID so a backend never asks for its own), validates the CRC32
// frame end to end, and returns the payload. Every failure — armed
// fault hook, transport error, non-200, corrupt frame — reads as a
// miss: the warm path is an optimization, and correctness always has
// the local recompute to fall back on.
func PeerFetchVia(gatewayURL, selfID string) func(ctx context.Context, key string) (string, bool) {
	base := strings.TrimRight(gatewayURL, "/")
	client := &http.Client{Timeout: 10 * time.Second}
	return func(ctx context.Context, key string) (string, bool) {
		// Test-only fault injection: the cluster fault matrix arms this
		// point to prove a failed peer fetch degrades to a recompute.
		if err := faultinject.Fire(faultinject.PeerFetch, key); err != nil {
			return "", false
		}
		u := fmt.Sprintf("%s/v1/peer/%s?exclude=%s", base, url.PathEscape(key), url.QueryEscape(selfID))
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return "", false
		}
		resp, err := client.Do(req)
		if err != nil {
			return "", false
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			return "", false
		}
		return store.Decode(data)
	}
}
