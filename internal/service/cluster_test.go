package service

// Backend-identity and peer-fetch tests: the service-side halves of
// the sppgw cluster protocol, exercised directly against one daemon
// (the gateway-side integration lives in internal/gateway's suite).

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"spp1000/internal/experiments"
	"spp1000/internal/store"
)

// TestBackendIdentitySurfaces pins the two places a clustered daemon
// names itself: the "backend" field of every job view and the
// X-Spp-Backend header on every response. A standalone daemon (no ID)
// must emit neither.
func TestBackendIdentitySurfaces(t *testing.T) {
	_, ts := newTestServer(t, Config{ID: "node7", Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
		return "ok", nil
	}})

	v, code := submit(t, ts, seedBody(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	if v.Backend != "node7" {
		t.Fatalf("submit view backend = %q, want node7", v.Backend)
	}
	waitStatus(t, ts, v.ID, StatusDone)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hdr := resp.Header.Get("X-Spp-Backend"); hdr != "node7" {
		t.Fatalf("X-Spp-Backend = %q, want node7", hdr)
	}
	// The header rides every route, even ones that never touch a job.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hdr := resp.Header.Get("X-Spp-Backend"); hdr != "node7" {
		t.Fatalf("healthz X-Spp-Backend = %q, want node7", hdr)
	}

	_, solo := newTestServer(t, Config{Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
		return "ok", nil
	}})
	sv, code := submit(t, solo, seedBody(1))
	if code != http.StatusAccepted {
		t.Fatalf("solo submit: %d", code)
	}
	if sv.Backend != "" {
		t.Fatalf("standalone view backend = %q, want empty", sv.Backend)
	}
	resp, err = http.Get(solo.URL + "/v1/jobs/" + sv.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hdr := resp.Header.Get("X-Spp-Backend"); hdr != "" {
		t.Fatalf("standalone X-Spp-Backend = %q, want absent", hdr)
	}
}

// TestPeerFetchHookServesWithoutRunning proves a configured PeerFetch
// answers a miss without executing the RunFunc, books the job as a
// cached done, and counts the peer hit.
func TestPeerFetchHookServesWithoutRunning(t *testing.T) {
	var runs, fetches atomic.Int64
	_, ts := newTestServer(t, Config{
		ID: "warm1",
		Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
			runs.Add(1)
			return "computed", nil
		},
		PeerFetch: func(ctx context.Context, key string) (string, bool) {
			fetches.Add(1)
			return "from-peer", true
		},
	})

	v, code := submit(t, ts, seedBody(1))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	done := waitStatus(t, ts, v.ID, StatusDone)
	if !done.Cached {
		t.Fatalf("peer-served job cached = false, want true")
	}
	res, resp := getResult(t, ts, v.ID)
	if resp.StatusCode != http.StatusOK || res != "from-peer" {
		t.Fatalf("result = %d %q, want the peer's payload", resp.StatusCode, res)
	}
	if runs.Load() != 0 || fetches.Load() != 1 {
		t.Fatalf("runs = %d, fetches = %d; want 0 runs, 1 fetch", runs.Load(), fetches.Load())
	}

	m := metricsMap(t, ts)
	if m["peer_hits_total"] != 1 {
		t.Fatalf("peer_hits_total = %v, want 1", m["peer_hits_total"])
	}
	if m["jobs_done_cached_total"] != 1 {
		t.Fatalf("jobs_done_cached_total = %v, want 1", m["jobs_done_cached_total"])
	}
	if m["jobs_done_total"] != 1 {
		t.Fatalf("jobs_done_total = %v, want 1", m["jobs_done_total"])
	}

	// The peer payload entered the write-through cache: a resubmit
	// dedups at the job table without consulting the peer again.
	if _, code := submit(t, ts, seedBody(1)); code != http.StatusOK {
		t.Fatalf("resubmit: %d, want 200", code)
	}
	if fetches.Load() != 1 {
		t.Fatalf("resubmit consulted the peer again (%d fetches)", fetches.Load())
	}
}

// TestPeerFetchMissFallsThrough proves a PeerFetch that reports a miss
// leaves the job on the normal compute path, uncached.
func TestPeerFetchMissFallsThrough(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{
		ID: "cold1",
		Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
			runs.Add(1)
			return "computed", nil
		},
		PeerFetch: func(ctx context.Context, key string) (string, bool) { return "", false },
	})
	v, code := submit(t, ts, seedBody(2))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	done := waitStatus(t, ts, v.ID, StatusDone)
	if done.Cached {
		t.Fatal("peer-missed job reported cached")
	}
	if res, _ := getResult(t, ts, v.ID); res != "computed" {
		t.Fatalf("result = %q", res)
	}
	if runs.Load() != 1 {
		t.Fatalf("runs = %d, want 1", runs.Load())
	}
	m := metricsMap(t, ts)
	if m["peer_hits_total"] != 0 || m["jobs_done_cached_total"] != 0 {
		t.Fatalf("peer_hits %v done_cached %v, want 0/0", m["peer_hits_total"], m["jobs_done_cached_total"])
	}
}

// TestStoreExportValidation pins the export endpoint's edges directly:
// well-formed unknown keys 404, malformed keys 400 (store.ValidKey is
// the arbiter), and a known key serves a CRC-framed entry.
func TestStoreExportValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
		return "payload", nil
	}})
	v, code := submit(t, ts, seedBody(3))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitStatus(t, ts, v.ID, StatusDone)

	get := func(key string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/store/" + key)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(v.ID); code != http.StatusOK {
		t.Fatalf("export of known key: %d", code)
	}
	if code := get(strings.Repeat("0", 64)); code != http.StatusNotFound {
		t.Fatalf("export of unknown key: %d, want 404", code)
	}
	for _, bad := range []string{"short", strings.Repeat("Z", 64), strings.Repeat("0", 129)} {
		if code := get(bad); code != http.StatusBadRequest {
			t.Fatalf("export of malformed key %q: %d, want 400", bad, code)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/store/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("export content-type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if val, ok := store.Decode(data); !ok || val != "payload" {
		t.Fatalf("exported frame decodes (%v) to %q, want \"payload\"", ok, val)
	}
}
