// Package service is sppd's core: it turns the deterministic experiment
// engine into a long-running simulation-as-a-service daemon. Jobs are
// submitted over HTTP, content-addressed by the canonical hash of their
// full configuration (experiments.Spec.Key), queued onto a bounded queue,
// and executed by a small worker pool that dispatches sweep points
// through internal/runner. Because every job is a pure function of its
// spec, identical submissions are served from the result cache or
// coalesced onto the one in-flight run — the service's hot path is a
// hash lookup, not a simulation.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spp1000/internal/counters"
	"spp1000/internal/experiments"
	"spp1000/internal/faultinject"
	"spp1000/internal/resultcache"
	"spp1000/internal/snapshot"
)

// RunFunc executes one normalized spec and returns its rendered result.
// It must honor ctx cancellation by stopping the dispatch of further
// work. The default (DefaultRun) renders the named experiments exactly
// as `sppbench -exp` does; tests substitute counters and stubs.
type RunFunc func(ctx context.Context, spec experiments.Spec) (string, error)

// DefaultRun renders spec's experiments with the sppbench banner
// format, dispatching through the host worker pool.
func DefaultRun(ctx context.Context, spec experiments.Spec) (string, error) {
	outs, err := experiments.RunManyCtx(ctx, spec.Experiments, spec.Options)
	if err != nil {
		return "", err
	}
	return renderBanners(spec.Experiments, outs), nil
}

// renderBanners assembles per-experiment outputs into the sppbench
// banner format — one code path, so the checkpointed and plain runners
// produce byte-identical results for the same spec.
func renderBanners(names, outs []string) string {
	var b strings.Builder
	for i, name := range names {
		fmt.Fprintf(&b, "=== %s ===\n%s\n", name, outs[i])
	}
	return b.String()
}

// CheckpointRunFunc executes one normalized spec with checkpoint
// support. prior is the encoded checkpoint of an earlier interrupted
// run of the same spec (nil to start fresh; implementations must treat
// undecodable or mismatched bytes as absent). save persists an encoded
// checkpoint at each boundary. On success the partial return is nil; on
// a ctx error it carries the completed-prefix checkpoint (nil when
// nothing completed), which the daemon keeps so a resubmission resumes
// instead of recomputing.
type CheckpointRunFunc func(ctx context.Context, spec experiments.Spec, prior []byte, save func([]byte) error) (result string, partial []byte, err error)

// DefaultRunCheckpointed renders spec's experiments exactly like
// DefaultRun, but through the resumable experiments.RunCheckpointed
// driver: a checkpoint is saved after every completed experiment, a
// valid prior checkpoint skips its completed prefix, and a deadline that
// fires mid-suite returns the work done so far as a partial checkpoint.
func DefaultRunCheckpointed(ctx context.Context, spec experiments.Spec, prior []byte, save func([]byte) error) (string, []byte, error) {
	var pc *snapshot.Checkpoint
	if len(prior) > 0 {
		// Undecodable or wrong-spec prior bytes mean "no checkpoint":
		// recompute from scratch rather than fail the job.
		if c, derr := snapshot.DecodeCheckpoint(prior); derr == nil && c.SpecKey == spec.Key() {
			pc = c
		}
	}
	var saveCp func(*snapshot.Checkpoint) error
	if save != nil {
		saveCp = func(c *snapshot.Checkpoint) error { return save(c.Encode()) }
	}
	outs, cp, err := experiments.RunCheckpointed(ctx, spec.Experiments, spec.Options, pc, 1, saveCp)
	if err != nil {
		var partial []byte
		if cp != nil && len(cp.Done) > 0 {
			partial = cp.Encode()
		}
		return "", partial, err
	}
	return renderBanners(spec.Experiments, outs), nil, nil
}

// Config sizes the daemon.
type Config struct {
	// QueueDepth bounds the number of jobs waiting to run; submissions
	// beyond it are rejected with 503 rather than queued without bound.
	// Default 64.
	QueueDepth int
	// Workers is the number of jobs executed concurrently. Each job
	// already fans its sweep points across the host cores, so the
	// default is 1; raising it trades per-job latency for throughput
	// when jobs are small.
	Workers int
	// CacheCapacity bounds the completed results kept for reuse
	// (oldest-first eviction). 0 means unbounded. Default 256.
	CacheCapacity int
	// MaxJobs bounds the job table; the oldest finished jobs are pruned
	// beyond it (their results stay in the cache until evicted there).
	// Default 1024.
	MaxJobs int
	// Run executes a job. Tests substitute stubs here; when both Run and
	// RunCheckpointed are nil the daemon defaults to the checkpointing
	// runner (DefaultRunCheckpointed).
	Run RunFunc
	// RunCheckpointed, when set, executes jobs with checkpoint support
	// and takes precedence over Run: a job whose deadline fires mid-suite
	// keeps its completed-prefix checkpoint and lands in the terminal
	// status "checkpointed"; resubmitting the same spec resumes from the
	// checkpoint instead of recomputing. Default DefaultRunCheckpointed
	// when Run is also nil.
	RunCheckpointed CheckpointRunFunc
	// JobTimeout bounds each job's execution (queue wait excluded): a
	// run still going when the deadline expires has its context
	// cancelled — stopping sweep-point dispatch — and the job reports
	// the terminal status "timeout". 0 (the default) means no deadline.
	// A submission's own timeout (the API's "timeout" field) overrides
	// this per job.
	JobTimeout time.Duration
	// Store is the optional durable result store layered under the
	// in-memory cache (see internal/store): completed results are
	// written through to it, and a restarted daemon pointed at the same
	// store serves prior results as cache hits with no simulation run.
	// nil (the default) keeps results memory-only.
	Store resultcache.Backing
	// ID names this daemon in a sppgw cluster. When set it is echoed as
	// the "backend" field of every job view and as the X-Spp-Backend
	// response header, so a misrouted request — a key the ring says
	// belongs elsewhere — is immediately diagnosable from either the
	// JSON or the wire. Empty (the default) for a standalone daemon.
	ID string
	// PeerFetch, when set, is consulted before a job whose result is
	// unknown locally is computed: in a cluster it asks the gateway for
	// the previous ring owner's store entry, so a key re-hashed onto
	// this backend (after a join or an eviction) becomes a warm hit
	// instead of a recompute. It must return the exact prior payload and
	// true, or ("", false) to compute locally; it is trust-but-verify —
	// the transport validates the CRC32 frame before the payload gets
	// here. nil (the default) always computes locally.
	PeerFetch func(ctx context.Context, key string) (string, bool)
	// Now supplies the wall-clock timestamps stamped onto job lifecycle
	// views (submittedAt/startedAt/finishedAt) and the uptime metric.
	// Injecting it here keeps the daemon's state machine free of direct
	// clock reads — the wall clock enters at exactly one annotated spot
	// in withDefaults — and lets tests pin time. Default time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.Run == nil && c.RunCheckpointed == nil {
		c.RunCheckpointed = DefaultRunCheckpointed
	}
	if c.Now == nil {
		//simlint:allow determinism the daemon's single wall-clock source: lifecycle stamps and uptime, never job results or spec keys
		c.Now = time.Now
	}
	return c
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
	// StatusTimeout marks a job whose execution deadline (Config.JobTimeout
	// or the submission's own timeout) expired before it finished. Like
	// failed and canceled jobs, it re-arms on resubmission.
	StatusTimeout Status = "timeout"
	// StatusCheckpointed marks a job whose deadline expired after part of
	// its suite completed: the completed prefix is held as a checkpoint
	// (in memory and, with a durable store, on disk) instead of being
	// discarded. Terminal like timeout — waiters unblock — but
	// resubmitting the same spec re-arms the job and resumes from the
	// checkpoint, recomputing nothing already done.
	StatusCheckpointed Status = "checkpointed"
)

// Terminal reports whether the state is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled || s == StatusTimeout || s == StatusCheckpointed
}

// job is the server-side record of one submission. The job id IS the
// spec's content address, so "the same job" and "the same configuration"
// are one notion.
type job struct {
	id   string
	spec experiments.Spec

	// guarded by Server.mu
	status     Status
	cached     bool // result served from cache, no simulation run
	result     string
	counters   map[string]int64 // flattened PMU snapshot of the run
	checkpoint []byte           // encoded completed-prefix checkpoint; survives re-arm
	errMsg     string
	timeout    time.Duration // execution deadline; 0 = none
	submitted  time.Time
	started    time.Time
	finished   time.Time

	ctx    context.Context
	cancel context.CancelFunc
}

// Server owns the job table, the bounded queue, and the worker pool.
// Create with New; it is ready (workers running) on return.
type Server struct {
	cfg   Config
	cache *resultcache.Cache

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for list + pruning
	queue    chan *job
	draining bool

	wg sync.WaitGroup // worker goroutines

	started     time.Time
	startCycles int64

	// sim aggregates the PMU counters of every simulation the daemon
	// runs, for /metrics; attached for the server's lifetime.
	sim *counters.Collector

	// cumulative counters (atomics: read by /metrics without the lock)
	submitted    atomic.Int64 // all submissions (incl. deduped and rejected)
	deduped      atomic.Int64 // submissions answered by an existing job
	rejected     atomic.Int64 // submissions refused (queue full or draining)
	done         atomic.Int64
	doneCached   atomic.Int64 // done transitions answered without a fresh simulation
	peerHits     atomic.Int64 // done transitions answered by a peer-fetched entry
	failed       atomic.Int64
	canceled     atomic.Int64
	timedout     atomic.Int64
	checkpointed atomic.Int64 // deadline fired with partial progress checkpointed
	queuedN      atomic.Int64 // gauge
	runningN     atomic.Int64 // gauge
	busyNanos    atomic.Int64 // summed wall time of job executions
}

// New starts a server with cfg's worker pool running.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		cache:       resultcache.NewWithBacking(cfg.CacheCapacity, cfg.Store),
		jobs:        make(map[string]*job),
		queue:       make(chan *job, cfg.QueueDepth),
		started:     cfg.Now(),
		startCycles: simCycles(),
		sim:         counters.NewCollector(),
	}
	counters.Attach(s.sim)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// ErrQueueFull is returned by Submit when the bounded queue is at
// capacity; the HTTP layer maps it to 503.
var ErrQueueFull = errors.New("job queue full")

// ErrDraining is returned by Submit during shutdown.
var ErrDraining = errors.New("server is draining")

// Submit registers (or re-joins) the job for spec and returns its
// snapshot. The spec must already be normalized. timeout bounds the
// job's execution (0 falls back to Config.JobTimeout); it is execution
// policy, not configuration, so it is deliberately outside the content
// address — a submission that joins an existing live job does not
// change that job's deadline. Outcomes:
//
//   - no prior state: the job is enqueued (ErrQueueFull if the bounded
//     queue is at capacity).
//   - an identical job is queued, running, or done: that job is
//     returned as-is — concurrent duplicates coalesce onto one run and
//     repeats of a finished job see its result with no new simulation.
//   - the identical job failed, was canceled, or timed out: it is
//     re-armed and enqueued again (deterministic simulations don't fail
//     flakily, but cancellation and deadlines are routine).
//   - the result is known to the cache or the durable store with no
//     live job (the job table was pruned, or the daemon restarted): a
//     completed job record is synthesized from it, with no simulation.
func (s *Server) Submit(spec experiments.Spec, timeout time.Duration) (JobView, error) {
	key := spec.Key()
	if timeout <= 0 {
		timeout = s.cfg.JobTimeout
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.submitted.Add(1)
	if s.draining {
		s.rejected.Add(1)
		return JobView{}, ErrDraining
	}

	if j, ok := s.jobs[key]; ok {
		if !j.status.Terminal() || j.status == StatusDone {
			s.deduped.Add(1)
			v := s.viewLocked(j)
			if j.status == StatusDone {
				// This submission was answered without a new run.
				v.Cached = true
			}
			return v, nil
		}
		// failed, canceled, timed out, or checkpointed: re-arm the same
		// record and run again. j.checkpoint is deliberately untouched —
		// a checkpointed job resumes from its completed prefix.
		j.ctx, j.cancel = context.WithCancel(context.Background())
		j.status = StatusQueued
		j.cached = false
		j.errMsg = ""
		j.result = ""
		j.timeout = timeout
		j.submitted = s.cfg.Now()
		j.started, j.finished = time.Time{}, time.Time{}
		select {
		case s.queue <- j:
			s.queuedN.Add(1)
			return s.viewLocked(j), nil
		default:
			// The re-arm failed: the record must land terminal with the
			// books balanced — tallied as canceled, finish-stamped, and
			// its fresh context released — or /metrics totals drift and
			// the job view shows a terminal job with no FinishedAt.
			j.cancel()
			j.status = StatusCanceled
			j.errMsg = ErrQueueFull.Error()
			j.finished = s.cfg.Now()
			s.canceled.Add(1)
			s.rejected.Add(1)
			return JobView{}, ErrQueueFull
		}
	}

	j := &job{id: key, spec: spec, timeout: timeout, submitted: s.cfg.Now()}
	if res, ok := s.cache.Lookup(key); ok {
		// Result known from an earlier (since-pruned) job or from the
		// durable store of a previous daemon life: serve it without
		// queueing anything. Lookup counts this as the cache hit it is.
		j.status = StatusDone
		j.cached = true
		j.result = res
		j.finished = j.submitted
		s.insertLocked(j)
		s.done.Add(1)
		s.doneCached.Add(1)
		return s.viewLocked(j), nil
	}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	j.status = StatusQueued
	select {
	case s.queue <- j:
	default:
		j.cancel()
		s.rejected.Add(1)
		return JobView{}, ErrQueueFull
	}
	s.queuedN.Add(1)
	s.insertLocked(j)
	return s.viewLocked(j), nil
}

// insertLocked records j and prunes the oldest finished jobs beyond
// MaxJobs. Callers hold s.mu.
func (s *Server) insertLocked(j *job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if len(s.order) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.MaxJobs
	for _, id := range s.order {
		old := s.jobs[id]
		if excess > 0 && old != nil && old.status.Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// worker drains the queue until it is closed by Shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.status != StatusQueued {
		// Withdrawn by Cancel while waiting: tallied and de-gauged at
		// cancel time, so dequeueing the corpse touches nothing.
		s.mu.Unlock()
		return
	}
	s.queuedN.Add(-1)
	j.status = StatusRunning
	j.started = s.cfg.Now()
	timeout := j.timeout
	prior := j.checkpoint
	s.mu.Unlock()
	s.runningN.Add(1)

	// Resume state for the checkpointing runner: the in-memory checkpoint
	// of a prior interrupted run, or — after a daemon restart — the
	// durable store's copy. Corrupt or mismatched bytes are filtered by
	// the runner, never trusted.
	if s.cfg.RunCheckpointed != nil && prior == nil && s.cfg.Store != nil {
		if val, ok, err := s.cfg.Store.Get(checkpointKey(j.id)); err == nil && ok {
			prior = []byte(val)
		}
	}

	// The execution deadline derives from the job's own context, so a
	// user cancel and a timeout share one cancellation path and are
	// told apart by the context error.
	runCtx, cancelRun := j.ctx, context.CancelFunc(func() {})
	if timeout > 0 {
		runCtx, cancelRun = context.WithTimeout(j.ctx, timeout)
	}
	defer cancelRun()

	// Per-job PMU attribution: every machine built while this collector
	// is attached enables counters and publishes into it on completion.
	// Attribution is exact at the default Workers=1; with concurrent
	// jobs, each collector sees the union of whatever ran during its
	// window (the /metrics aggregate stays exact either way). A
	// cache-hit or coalesced job runs no simulation, so its snapshot is
	// empty or partial by design.
	jobCol := counters.NewCollector()
	counters.Attach(jobCol)
	// peerFetched and partial are written only inside fn, which Do runs
	// synchronously on this goroutine (followers coalesce, they never
	// call fn), so plain variables are race-free.
	peerFetched := false
	var partial []byte
	res, outcome, err := s.cache.Do(runCtx, j.id, func() (string, error) {
		// Test-only fault injection: the fault-matrix suite arms this
		// point to delay runs (filling the queue) or fail them.
		if err := faultinject.Fire(faultinject.RunStart, j.id); err != nil {
			return "", err
		}
		// Cluster warm path: a key that re-hashed onto this backend may
		// already be computed on its previous ring owner — copy the
		// entry instead of re-simulating. The returned value flows
		// through the cache's write-through, so the entry migrates into
		// this backend's own store and the next hit is purely local.
		if pf := s.cfg.PeerFetch; pf != nil {
			if val, ok := pf(runCtx, j.id); ok {
				peerFetched = true
				return val, nil
			}
		}
		if s.cfg.RunCheckpointed != nil {
			out, part, rerr := s.cfg.RunCheckpointed(runCtx, j.spec, prior, s.saveCheckpoint(j))
			partial = part
			return out, rerr
		}
		return s.cfg.Run(runCtx, j.spec)
	})
	counters.Detach(jobCol)

	s.runningN.Add(-1)
	s.mu.Lock()
	defer s.mu.Unlock()
	j.finished = s.cfg.Now()
	s.busyNanos.Add(int64(j.finished.Sub(j.started)))
	switch {
	case err == nil:
		j.status = StatusDone
		j.result = res
		j.cached = outcome == resultcache.Hit || peerFetched
		j.checkpoint = nil // complete: the resume state is spent
		// Drop the durable copy too — the result entry supersedes it, and
		// a stale checkpoint would squat store capacity forever (it can
		// never be read back once the job is done). Delete is a store
		// capability, not part of the cache-facing Backing contract.
		if st, ok := s.cfg.Store.(interface{ Delete(string) error }); ok {
			_ = st.Delete(checkpointKey(j.id))
		}
		if !j.cached {
			if flat := jobCol.Snapshot().Flatten(); len(flat) > 0 {
				j.counters = flat
			}
		}
		s.done.Add(1)
		if j.cached {
			s.doneCached.Add(1)
		}
		if peerFetched {
			s.peerHits.Add(1)
		}
	case errors.Is(err, context.DeadlineExceeded) && len(partial) > 0:
		// The deadline fired with part of the suite complete: keep the
		// work instead of discarding it. The status is terminal (waiters
		// unblock exactly as on timeout) but a resubmission of the same
		// spec re-arms the job and resumes from this checkpoint.
		j.status = StatusCheckpointed
		j.checkpoint = partial
		j.errMsg = fmt.Sprintf("deadline exceeded after %v; progress checkpointed, resubmit to resume", timeout)
		s.checkpointed.Add(1)
	case errors.Is(err, context.DeadlineExceeded):
		j.status = StatusTimeout
		j.errMsg = err.Error()
		if timeout > 0 {
			j.errMsg = fmt.Sprintf("deadline exceeded after %v", timeout)
		}
		s.timedout.Add(1)
	case errors.Is(err, context.Canceled):
		j.status = StatusCanceled
		j.errMsg = err.Error()
		s.canceled.Add(1)
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
		s.failed.Add(1)
	}
}

// checkpointKey derives the durable-store key holding a job's resume
// checkpoint: a distinct content address in the same namespace as the
// result entries (lowercase hex, so store.ValidKey accepts it), derived
// from the job id so restart-resume finds it with no extra index.
func checkpointKey(id string) string {
	sum := sha256.Sum256([]byte("spp-checkpoint-v1\n" + id))
	return hex.EncodeToString(sum[:])
}

// saveCheckpoint returns the per-boundary persist callback handed to the
// checkpointing runner: each checkpoint replaces the job's in-memory
// resume state and, when a durable store is configured, its on-disk copy
// — so both a resubmission and a daemon restart resume from the latest
// boundary. A store write failure is tolerated (the in-memory copy still
// advances); durability degrades, the run does not abort.
func (s *Server) saveCheckpoint(j *job) func([]byte) error {
	return func(b []byte) error {
		cp := append([]byte(nil), b...)
		s.mu.Lock()
		j.checkpoint = cp
		s.mu.Unlock()
		if st := s.cfg.Store; st != nil {
			_ = st.Put(checkpointKey(j.id), string(cp))
		}
		return nil
	}
}

// Cancel requests cancellation of the job. A queued job is withdrawn
// (the worker skips it on dequeue); a running job has its context
// cancelled, which stops the dispatch of further sweep points — the
// sweep points already simulating finish, then the job reports
// canceled. Cancelling a terminal job is an error.
func (s *Server) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	if j.status.Terminal() {
		return s.viewLocked(j), fmt.Errorf("job already %s", j.status)
	}
	if j.status == StatusQueued {
		j.status = StatusCanceled
		j.finished = s.cfg.Now()
		j.errMsg = "canceled while queued"
		s.canceled.Add(1)
		// Settle the gauge now: runJob skips withdrawn jobs before
		// touching it, so deferring to the dequeue would leave
		// sppd_jobs_queued stale until a worker happened by.
		s.queuedN.Add(-1)
	}
	j.cancel()
	return s.viewLocked(j), nil
}

// ErrNotFound is returned for unknown job ids.
var ErrNotFound = errors.New("no such job")

// Job returns a snapshot of the job.
func (s *Server) Job(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return s.viewLocked(j), nil
}

// Jobs returns snapshots of every known job in submission order.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, s.viewLocked(j))
		}
	}
	return out
}

// Result returns the rendered result of a done job.
func (s *Server) Result(id string) (string, JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return "", JobView{}, ErrNotFound
	}
	v := s.viewLocked(j)
	if j.status != StatusDone {
		return "", v, fmt.Errorf("job is %s", j.status)
	}
	return j.result, v, nil
}

// Shutdown drains the daemon: new submissions are refused immediately,
// queued and running jobs are allowed to finish. If ctx expires first,
// every remaining job's context is cancelled (stopping sweep-point
// dispatch) and Shutdown waits for the workers to observe it, then
// returns ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // safe: submissions check draining under mu
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		counters.Detach(s.sim)
		return nil
	case <-ctx.Done():
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		if !j.status.Terminal() && j.cancel != nil {
			j.cancel()
		}
	}
	s.mu.Unlock()
	<-drained
	counters.Detach(s.sim)
	return ctx.Err()
}

// SimCounters snapshots the daemon-lifetime PMU aggregate across every
// simulation run so far (the sppd_sim_counter_* lines of /metrics).
func (s *Server) SimCounters() counters.Snapshot {
	return s.sim.Snapshot()
}

// JobView is the wire representation of a job.
type JobView struct {
	ID          string   `json:"id"`
	Experiments []string `json:"experiments"`
	Status      string   `json:"status"`
	// Cached is true when the result came from the content-addressed
	// cache rather than a fresh simulation.
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
	// Backend is the cluster identity (Config.ID / sppd -id) of the
	// daemon that owns this job, present when the daemon runs behind a
	// sppgw gateway. Paired with the X-Spp-Backend response header it
	// makes misrouted requests diagnosable from either side of the wire.
	Backend     string `json:"backend,omitempty"`
	SubmittedAt string `json:"submittedAt,omitempty"`
	StartedAt   string `json:"startedAt,omitempty"`
	FinishedAt  string `json:"finishedAt,omitempty"`
	// Counters is the flattened PMU snapshot of this job's simulations
	// ("group.counter" → value), present once the job is done. Empty for
	// cache-served jobs — they ran nothing. Attribution is exact at the
	// daemon's default Workers=1; see docs/OBSERVABILITY.md.
	Counters map[string]int64 `json:"counters,omitempty"`
}

func (s *Server) viewLocked(j *job) JobView {
	v := JobView{
		ID:          j.id,
		Experiments: append([]string{}, j.spec.Experiments...),
		Status:      string(j.status),
		Cached:      j.cached,
		Error:       j.errMsg,
		Backend:     s.cfg.ID,
	}
	if len(j.counters) > 0 {
		v.Counters = make(map[string]int64, len(j.counters))
		for k, c := range j.counters {
			v.Counters[k] = c
		}
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	v.SubmittedAt = stamp(j.submitted)
	v.StartedAt = stamp(j.started)
	v.FinishedAt = stamp(j.finished)
	return v
}
