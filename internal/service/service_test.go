package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spp1000/internal/experiments"
)

// newTestServer wires a Server with the given RunFunc to a live
// httptest HTTP server, and tears both down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (JobView, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var v JobView
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("bad submit response %q: %v", data, err)
		}
	}
	return v, resp.StatusCode
}

// waitStatus polls the status endpoint until the job reaches want.
func waitStatus(t *testing.T, ts *httptest.Server, id string, want Status) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if Status(v.Status) == want {
			return v
		}
		if Status(v.Status).Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, v.Status, v.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobView{}
}

func getResult(t *testing.T, ts *httptest.Server, id string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return string(data), resp
}

// TestSubmitTwiceServesFromCache is the first acceptance property:
// resubmitting an identical configuration returns the finished result
// without running the simulation again.
func TestSubmitTwiceServesFromCache(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
		runs.Add(1)
		return "result:" + spec.Experiments[0], nil
	}})

	body := `{"experiments":["fig2"],"quick":true}`
	first, code := submit(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: code %d, want 202", code)
	}
	waitStatus(t, ts, first.ID, StatusDone)

	second, code := submit(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("second submit: code %d, want 200 (already done)", code)
	}
	if second.ID != first.ID {
		t.Fatalf("identical specs got different ids: %s vs %s", first.ID, second.ID)
	}
	if Status(second.Status) != StatusDone || !second.Cached {
		t.Fatalf("second submit = %+v, want done+cached", second)
	}
	res, resp := getResult(t, ts, second.ID)
	if resp.StatusCode != http.StatusOK || res != "result:fig2" {
		t.Fatalf("result = %d %q", resp.StatusCode, res)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("simulation ran %d times, want 1", n)
	}
}

// TestConcurrentIdenticalSubmissionsCoalesce is the second acceptance
// property: identical submissions racing while the job is in flight all
// land on the same job and exactly one run happens.
func TestConcurrentIdenticalSubmissionsCoalesce(t *testing.T) {
	var runs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
		runs.Add(1)
		close(started)
		<-release
		return "shared result", nil
	}})

	body := `{"experiments":["fig3"],"quick":true}`
	first, code := submit(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	<-started // the run is in flight; now race duplicates against it

	const dups = 12
	ids := make(chan string, dups)
	var wg sync.WaitGroup
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, code := submit(t, ts, body)
			if code != http.StatusAccepted && code != http.StatusOK {
				t.Errorf("duplicate submit: code %d", code)
			}
			ids <- v.ID
		}()
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		if id != first.ID {
			t.Fatalf("duplicate got job %s, want %s", id, first.ID)
		}
	}

	close(release)
	waitStatus(t, ts, first.ID, StatusDone)
	res, resp := getResult(t, ts, first.ID)
	if resp.StatusCode != http.StatusOK || res != "shared result" {
		t.Fatalf("result = %d %q", resp.StatusCode, res)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("%d concurrent identical submissions caused %d runs, want 1", dups+1, n)
	}
}

func TestDistinctSpecsRunSeparately(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
		runs.Add(1)
		return spec.Experiments[0], nil
	}})
	a, _ := submit(t, ts, `{"experiments":["fig2"],"quick":true}`)
	b, _ := submit(t, ts, `{"experiments":["fig2"]}`) // paper scale: different options
	if a.ID == b.ID {
		t.Fatal("different options must yield different job ids")
	}
	waitStatus(t, ts, a.ID, StatusDone)
	waitStatus(t, ts, b.ID, StatusDone)
	if runs.Load() != 2 {
		t.Fatalf("runs = %d, want 2", runs.Load())
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Run: func(context.Context, experiments.Spec) (string, error) {
		return "", nil
	}})
	for _, body := range []string{
		`{"experiments":[]}`,
		`{"experiments":["nope"]}`,
		`{"experiments":["fig2"],"bogus":1}`,
		`not json`,
		// quick and options are mutually exclusive: silently picking one
		// would hand back a different content address than asked for.
		`{"experiments":["fig2"],"quick":true,"options":{"seed":3}}`,
		// timeouts must be positive Go durations.
		`{"experiments":["fig2"],"timeout":"banana"}`,
		`{"experiments":["fig2"],"timeout":"-5s"}`,
		`{"experiments":["fig2"],"timeout":"0s"}`,
	} {
		if _, code := submit(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("submit(%q): code %d, want 400", body, code)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/deadbeef"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status: %v %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

func TestAliasExpansion(t *testing.T) {
	_, ts := newTestServer(t, Config{Run: func(context.Context, experiments.Spec) (string, error) {
		return "", nil
	}})
	v, code := submit(t, ts, `{"experiments":["all"],"quick":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("code %d", code)
	}
	if len(v.Experiments) != len(experiments.Names) {
		t.Fatalf("alias all expanded to %v", v.Experiments)
	}
}

func TestQueueBoundRejectsWith503(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{QueueDepth: 1, Workers: 1,
		Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
			<-release
			return "", nil
		}})
	defer close(release)

	a, _ := submit(t, ts, `{"experiments":["fig2"],"quick":true}`)
	waitStatus(t, ts, a.ID, StatusRunning) // occupies the one worker
	if _, code := submit(t, ts, `{"experiments":["fig3"],"quick":true}`); code != http.StatusAccepted {
		t.Fatalf("second submit should queue, got %d", code)
	}
	if _, code := submit(t, ts, `{"experiments":["fig4"],"quick":true}`); code != http.StatusServiceUnavailable {
		t.Fatalf("third submit should be rejected 503, got %d", code)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	var runs atomic.Int64
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{Workers: 1,
		Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
			runs.Add(1)
			<-release
			return "", nil
		}})

	blocker, _ := submit(t, ts, `{"experiments":["fig2"],"quick":true}`)
	waitStatus(t, ts, blocker.ID, StatusRunning)
	queued, _ := submit(t, ts, `{"experiments":["fig3"],"quick":true}`)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: code %d, want 202", resp.StatusCode)
	}
	waitStatus(t, ts, queued.ID, StatusCanceled)

	close(release)
	waitStatus(t, ts, blocker.ID, StatusDone)
	if runs.Load() != 1 {
		t.Fatalf("canceled queued job still ran (runs=%d)", runs.Load())
	}

	// A canceled job may be resubmitted and then runs for real.
	again, code := submit(t, ts, `{"experiments":["fig3"],"quick":true}`)
	if code != http.StatusAccepted || again.ID != queued.ID {
		t.Fatalf("resubmit after cancel: code %d id %s", code, again.ID)
	}
	waitStatus(t, ts, again.ID, StatusDone)
	if runs.Load() != 2 {
		t.Fatalf("resubmitted job did not run (runs=%d)", runs.Load())
	}
}

func TestCancelRunningJobStopsIt(t *testing.T) {
	started := make(chan struct{})
	_, ts := newTestServer(t, Config{Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
		close(started)
		<-ctx.Done() // a real run would stop dispatching sweep points
		return "", ctx.Err()
	}})
	v, _ := submit(t, ts, `{"experiments":["fig2"],"quick":true}`)
	<-started
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitStatus(t, ts, v.ID, StatusCanceled)
}

func TestShutdownDrainsRunningJobs(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	s := New(Config{Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
		close(started)
		<-release
		return "drained", nil
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	v, _ := submit(t, ts, `{"experiments":["fig2"],"quick":true}`)
	<-started

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Draining: new submissions are refused...
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, code := submit(t, ts, `{"experiments":["fig3"],"quick":true}`)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	// ...but the running job completes.
	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	res, _, err := s.Result(v.ID)
	if err != nil || res != "drained" {
		t.Fatalf("after drain: %q, %v", res, err)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Run: func(context.Context, experiments.Spec) (string, error) {
		return "x", nil
	}})
	v, _ := submit(t, ts, `{"experiments":["fig2"],"quick":true}`)
	waitStatus(t, ts, v.ID, StatusDone)
	submit(t, ts, `{"experiments":["fig2"],"quick":true}`) // a dedup hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	for _, want := range []string{
		"sppd_jobs_submitted_total 2",
		"sppd_jobs_deduplicated_total 1",
		"sppd_jobs_done_total 1",
		"sppd_cache_misses_total 1",
		"sppd_sim_cycles_per_wall_second ",
		"sppd_cache_hit_ratio ",
		"sppd_uptime_seconds ",
		"sppd_queue_capacity ",
		"sppd_busy_seconds_total ",
		"sppd_cache_evictions_total 0",
		"sppd_store_errors_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestRealEngineEndToEnd exercises the default RunFunc against the real
// experiment engine on the cheapest artifact, and checks the rendered
// result matches what the engine produces directly.
func TestRealEngineEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var buf bytes.Buffer
	json.NewEncoder(&buf).Encode(map[string]any{
		"experiments": []string{"tab1"},
		"quick":       true,
	})
	v, code := submit(t, ts, buf.String())
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitStatus(t, ts, v.ID, StatusDone)
	res, resp := getResult(t, ts, v.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d", resp.StatusCode)
	}
	want, err := experiments.Run("tab1", experiments.Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res != fmt.Sprintf("=== tab1 ===\n%s\n", want) {
		t.Fatalf("daemon result differs from direct engine output:\n%q", res)
	}
}

// TestJobCountersAndMetrics checks the PMU surfaces of the daemon: a
// fresh job's view carries the flattened counter snapshot of its
// simulations, and /metrics exports the daemon-lifetime aggregate as
// sppd_sim_counter_* lines.
func TestJobCountersAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	v, code := submit(t, ts, `{"experiments":["fig2"],"quick":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	done := waitStatus(t, ts, v.ID, StatusDone)
	if len(done.Counters) == 0 {
		t.Fatal("done job has no counters")
	}
	if done.Counters["threads.forks"] == 0 {
		t.Errorf("fig2 job counters missing fork events: %v", done.Counters)
	}

	// A dedup hit re-serves the same job record, counters included.
	again, _ := submit(t, ts, `{"experiments":["fig2"],"quick":true}`)
	if !again.Cached || again.Counters["threads.forks"] != done.Counters["threads.forks"] {
		t.Errorf("dedup view lost counters: cached=%v %v", again.Cached, again.Counters)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	text := string(data)
	// fig2's fork-join teams run empty bodies: only threads.* counters
	// record events (zero deltas are never published).
	for _, want := range []string{
		"sppd_sim_counter_threads_forks ",
		"sppd_sim_counter_threads_spawn_local ",
		"sppd_sim_counter_threads_team_size_count ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}
