package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"spp1000/internal/sim"
)

// simCycles indirects sim.TotalCycles so the cycle source is obvious at
// the one call site that samples it.
func simCycles() int64 { return sim.TotalCycles() }

// handleMetrics renders the daemon's gauges and counters in the
// conventional one-per-line `name value` text form. The throughput
// gauge divides the simulated cycles retired since the daemon started
// by its wall uptime: simulated-cycles-per-wall-second is the
// end-to-end figure of merit for the whole engine (kernel fast path ×
// host parallelism × cache hits all move it).
//
//simlint:metrics-writer
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	uptime := s.cfg.Now().Sub(s.started).Seconds()
	cycles := simCycles() - s.startCycles
	perSec := 0.0
	if uptime > 0 {
		perSec = float64(cycles) / uptime
	}

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	p := func(name string, format string, v any) {
		fmt.Fprintf(w, "sppd_%s "+format+"\n", name, v)
	}
	p("jobs_submitted_total", "%d", s.submitted.Load())
	p("jobs_deduplicated_total", "%d", s.deduped.Load())
	p("jobs_rejected_total", "%d", s.rejected.Load())
	p("jobs_queued", "%d", s.queuedN.Load())
	p("jobs_running", "%d", s.runningN.Load())
	p("jobs_done_total", "%d", s.done.Load())
	p("jobs_done_cached_total", "%d", s.doneCached.Load())
	p("jobs_failed_total", "%d", s.failed.Load())
	p("jobs_canceled_total", "%d", s.canceled.Load())
	p("jobs_timeout_total", "%d", s.timedout.Load())
	p("jobs_checkpointed_total", "%d", s.checkpointed.Load())
	p("queue_capacity", "%d", int64(s.cfg.QueueDepth))
	p("cache_hits_total", "%d", cs.Hits)
	p("cache_misses_total", "%d", cs.Misses)
	p("cache_coalesced_total", "%d", cs.Coalesced)
	p("cache_evictions_total", "%d", cs.Evictions)
	p("cache_hit_ratio", "%.4f", cs.HitRatio())
	p("store_hits_total", "%d", cs.BackingHits)
	p("store_errors_total", "%d", cs.BackingErrors)
	p("peer_hits_total", "%d", s.peerHits.Load())
	p("busy_seconds_total", "%.3f", float64(s.busyNanos.Load())/1e9)
	p("sim_cycles_total", "%d", cycles)
	p("sim_cycles_per_wall_second", "%.0f", perSec)
	p("uptime_seconds", "%.3f", uptime)

	// The daemon-lifetime PMU aggregate: one line per counter, dots
	// flattened to underscores (cache.hn0.hits → sim_counter_cache_hn0_hits),
	// emitted in sorted order so scrapes diff cleanly.
	flat := s.SimCounters().Flatten()
	keys := make([]string, 0, len(flat))
	for k := range flat {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p("sim_counter_"+strings.ReplaceAll(k, ".", "_"), "%d", flat[k])
	}
}
