package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"spp1000/internal/experiments"
	"spp1000/internal/store"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /v1/jobs             submit a job (JSON body, see submitRequest)
//	GET    /v1/jobs             list jobs in submission order
//	GET    /v1/jobs/{id}        one job's status
//	GET    /v1/jobs/{id}/result rendered result (202 while pending)
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/store/{key}      framed store entry export (peer fetch)
//	GET    /metrics             plaintext gauges and counters
//	GET    /healthz             liveness probe
//
// When Config.ID is set (a clustered backend), every response carries
// an X-Spp-Backend header naming this daemon.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/store/{key}", s.handleStoreExport)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	if s.cfg.ID == "" {
		return mux
	}
	id := s.cfg.ID
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Spp-Backend", id)
		mux.ServeHTTP(w, r)
	})
}

// handleStoreExport serves one content-addressed result in the store's
// CRC32-framed entry encoding — the cluster's peer-fetch payload. It is
// a pure peek: no cache statistics move, nothing is promoted, so peers
// probing for entries cannot distort this backend's hit ratio. Unknown
// keys are 404 (the prober recomputes); malformed keys are 400 — they
// could never have been minted by Spec.Key, so the request is a bug.
func (s *Server) handleStoreExport(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("malformed result key %q: want the lowercase-hex content address", key))
		return
	}
	val, ok := s.cache.Peek(key)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no store entry for %s", key))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(store.Encode(val))
}

// SubmitKey parses a POST /v1/jobs body exactly as the daemon itself
// does — alias expansion, option defaults, normalization — and returns
// the content address the resulting job would get. sppgw routes
// submissions with it: the gateway stays ignorant of the experiment
// vocabulary (it is injected as gateway.Config.SubmitKey by cmd/sppgw)
// while still agreeing byte-for-byte with every backend about which
// key a body hashes to.
func SubmitKey(body []byte) (string, error) {
	var req submitRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return "", fmt.Errorf("bad request body: %w", err)
	}
	spec, err := specFromRequest(req)
	if err != nil {
		return "", err
	}
	return spec.Key(), nil
}

// submitRequest is the POST /v1/jobs body. Options may be omitted:
// jobs then run at paper scale (experiments.Defaults), or reduced scale
// when quick is set. Setting both quick and options is rejected with
// 400 — the combination is ambiguous (which scale wins?) and silently
// picking one would hand back a different content address than the
// caller thinks they asked for.
type submitRequest struct {
	// Experiments is a list of ids, or a single element such as "all" /
	// "extra" / "everything" which is expanded like sppbench -exp.
	Experiments []string             `json:"experiments"`
	Options     *experiments.Options `json:"options,omitempty"`
	Quick       bool                 `json:"quick,omitempty"`
	// Timeout bounds this job's execution as a Go duration string
	// ("30s", "5m"); empty falls back to the daemon's -job-timeout.
	// It is execution policy, not configuration: it does not enter the
	// content address, and a submission that joins an already-live job
	// does not change that job's deadline.
	Timeout string `json:"timeout,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	spec, err := specFromRequest(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var timeout time.Duration
	if req.Timeout != "" {
		timeout, err = time.ParseDuration(req.Timeout)
		if err != nil || timeout <= 0 {
			writeErr(w, http.StatusBadRequest,
				fmt.Errorf("bad timeout %q: want a positive Go duration such as \"30s\"", req.Timeout))
			return
		}
	}
	v, err := s.Submit(spec, timeout)
	switch {
	case errors.Is(err, ErrQueueFull) || errors.Is(err, ErrDraining):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// 202 while work is (or may be) pending; 200 when answered by a
	// finished job.
	code := http.StatusAccepted
	if Status(v.Status).Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, v)
}

// specFromRequest expands aliases, applies option defaults, and
// normalizes — the one place wire input becomes a canonical Spec.
func specFromRequest(req submitRequest) (experiments.Spec, error) {
	names := req.Experiments
	if len(names) == 1 {
		switch names[0] {
		case "all", "extra", "everything":
			expanded, err := experiments.ResolveNames(names[0])
			if err != nil {
				return experiments.Spec{}, err
			}
			names = expanded
		}
	}
	if req.Quick && req.Options != nil {
		return experiments.Spec{}, errors.New(
			`"quick" and "options" are mutually exclusive: quick selects the reduced preset, options pins every scale field explicitly`)
	}
	opts := experiments.Defaults()
	if req.Quick {
		opts = experiments.Quick()
	}
	if req.Options != nil {
		opts = *req.Options
	}
	return experiments.Spec{Experiments: names, Options: opts}.Normalize()
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	v, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, v, err := s.Result(r.PathValue("id"))
	if errors.Is(err, ErrNotFound) {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if err != nil {
		// Not done yet (202 so pollers just retry) or terminally
		// unsuccessful (conflict: there will never be a result).
		code := http.StatusAccepted
		if Status(v.Status).Terminal() {
			code = http.StatusConflict
		}
		writeJSON(w, code, v)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Sppd-Cached", fmt.Sprintf("%t", v.Cached))
	fmt.Fprint(w, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	v, err := s.Cancel(r.PathValue("id"))
	if errors.Is(err, ErrNotFound) {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if err != nil {
		writeJSON(w, http.StatusConflict, v)
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
