package service

// Metrics-reconciliation tests: after an arbitrary interleaving of
// submit / cancel / timeout / reject / re-arm, every /metrics total must
// equal the count of lifecycle transitions that actually happened, and
// the gauges must equal the job table's current state. The counters are
// transition counts, not current states — a record canceled and later
// re-armed to done legitimately contributes to both totals — so the
// tests track expected transitions as they drive the daemon and then
// demand exact equality, not inequalities.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spp1000/internal/experiments"
)

// expect accumulates the transition counts the driving test knows must
// have happened, for exact comparison against /metrics.
type expect struct {
	submitted, deduped, rejected    int
	accepted                        int // 202s: submissions that (re)enqueued a run
	done, failed, canceled, timeout int
}

func (e expect) check(t *testing.T, m map[string]float64) {
	t.Helper()
	for name, want := range map[string]int{
		"jobs_submitted_total":    e.submitted,
		"jobs_deduplicated_total": e.deduped,
		"jobs_rejected_total":     e.rejected,
		"jobs_done_total":         e.done,
		"jobs_failed_total":       e.failed,
		"jobs_canceled_total":     e.canceled,
		"jobs_timeout_total":      e.timeout,
		"jobs_queued":             0,
		"jobs_running":            0,
	} {
		if got := m[name]; int(got) != want {
			t.Errorf("sppd_%s = %v, want %d", name, got, want)
		}
	}
	// Every submission is accounted for exactly once: answered by an
	// existing job, refused, or accepted onto the queue.
	if e.submitted != e.deduped+e.rejected+e.accepted {
		t.Errorf("submissions leak: %d submitted != %d deduped + %d rejected + %d accepted",
			e.submitted, e.deduped, e.rejected, e.accepted)
	}
}

func cancelJob(t *testing.T, ts *httptest.Server, id string) (JobView, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	json.NewDecoder(resp.Body).Decode(&v)
	return v, resp.StatusCode
}

func TestMetricsReconcileAfterInterleaving(t *testing.T) {
	release1 := make(chan struct{})
	run := func(ctx context.Context, spec experiments.Spec) (string, error) {
		switch spec.Options.Seed {
		case 1:
			<-release1
			return "r1", nil
		case 4:
			return "", fmt.Errorf("boom")
		case 5:
			<-ctx.Done()
			return "", ctx.Err()
		default:
			return "ok", nil
		}
	}
	_, ts := newTestServer(t, Config{QueueDepth: 1, Workers: 1, Run: run})
	t.Cleanup(func() {
		select {
		case <-release1:
		default:
			close(release1)
		}
	})

	var e expect
	sub := func(body string, wantCode int) JobView {
		t.Helper()
		v, code := submit(t, ts, body)
		e.submitted++
		switch code {
		case http.StatusAccepted:
			e.accepted++
		case http.StatusOK:
			e.deduped++
		case http.StatusServiceUnavailable:
			e.rejected++
		default:
			t.Fatalf("submit %s: unexpected code %d", body, code)
		}
		if code != wantCode {
			t.Fatalf("submit %s: code %d, want %d", body, code, wantCode)
		}
		return v
	}

	// Occupy the single worker: seed 1 runs until released.
	blocker := sub(seedBody(1), http.StatusAccepted)
	waitStatus(t, ts, blocker.ID, StatusRunning)

	// Fill the queue's one slot, then withdraw the occupant. The cancel
	// tallies canceled and settles the queued gauge, but the corpse still
	// holds the channel slot until the worker sweeps it.
	victim := sub(seedBody(2), http.StatusAccepted)
	if _, code := cancelJob(t, ts, victim.ID); code != http.StatusAccepted {
		t.Fatalf("cancel: %d", code)
	}
	e.canceled++
	if m := metricsMap(t, ts); m["jobs_queued"] != 0 {
		t.Fatalf("jobs_queued = %v after cancel of queued job, want 0", m["jobs_queued"])
	}

	// Re-arming the canceled record while the slot is still held must
	// land it back in canceled with the books balanced (the re-arm
	// accounting bug this PR fixes): one more canceled, one rejected.
	sub(seedBody(2), http.StatusServiceUnavailable)
	e.canceled++
	if v, err := tsJob(ts, victim.ID); err != nil || Status(v.Status) != StatusCanceled || v.FinishedAt == "" {
		t.Fatalf("re-armed-into-full-queue job = %+v, %v; want canceled with FinishedAt", v, err)
	}

	// A fresh spec bounces off the full queue too.
	sub(seedBody(3), http.StatusServiceUnavailable)

	// Unblock the worker; the blocker completes.
	close(release1)
	waitStatus(t, ts, blocker.ID, StatusDone)
	e.done++

	// The worker sweeps the corpse at its own pace; poll-submit the
	// failing spec until the queue has room, counting every bounce.
	var failer JobView
	deadline := time.Now().Add(10 * time.Second)
	for {
		v, code := submit(t, ts, seedBody(4))
		e.submitted++
		if code == http.StatusAccepted {
			e.accepted++
			failer = v
			break
		}
		if code != http.StatusServiceUnavailable {
			t.Fatalf("poll submit: %d", code)
		}
		e.rejected++
		if time.Now().After(deadline) {
			t.Fatal("queue never drained the canceled corpse")
		}
		time.Sleep(2 * time.Millisecond)
	}
	waitStatus(t, ts, failer.ID, StatusFailed)
	e.failed++

	// A job whose run outlives its per-request deadline.
	slow := sub(`{"experiments":["tab1"],"options":{"seed":5},"timeout":"20ms"}`, http.StatusAccepted)
	waitStatus(t, ts, slow.ID, StatusTimeout)
	e.timeout++

	// Resubmitting the finished blocker dedups — no new transition.
	if v := sub(seedBody(1), http.StatusOK); !v.Cached {
		t.Fatal("dedup of done job should report cached")
	}

	// The canceled victim re-arms into the now-empty queue and finishes.
	sub(seedBody(2), http.StatusAccepted)
	waitStatus(t, ts, victim.ID, StatusDone)
	e.done++

	e.check(t, metricsMap(t, ts))

	// Reconcile against the job table: everything is terminal and
	// finish-stamped, and current statuses match the script.
	byStatus := map[string]int{}
	for _, v := range tsJobs(t, ts) {
		if !Status(v.Status).Terminal() || v.FinishedAt == "" {
			t.Errorf("job %s left %s (finished %q)", v.ID, v.Status, v.FinishedAt)
		}
		byStatus[v.Status]++
	}
	want := map[string]int{"done": 2, "failed": 1, "timeout": 1}
	for st, n := range want {
		if byStatus[st] != n {
			t.Errorf("job table has %d %s, want %d (table: %v)", byStatus[st], st, n, byStatus)
		}
	}
	if len(tsJobs(t, ts)) != 4 {
		t.Errorf("job table has %d records, want 4", len(tsJobs(t, ts)))
	}
}

// TestMetricsReconcileConcurrent hammers the daemon from many
// goroutines — duplicate submissions of completing specs racing
// cancellations of blocking ones — then drains and demands the totals
// balance exactly. Run under -race this also exercises every counter
// path for data races.
func TestMetricsReconcileConcurrent(t *testing.T) {
	const (
		doneKeys   = 12 // specs whose runs complete normally
		cancelKeys = 6  // specs whose runs block until canceled
		dupes      = 8  // goroutines submitting every done-spec
	)
	var runs atomic.Int64
	_, ts := newTestServer(t, Config{QueueDepth: 256, Workers: 4,
		Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
			runs.Add(1)
			if spec.Options.Seed >= 1000 {
				<-ctx.Done()
				return "", ctx.Err()
			}
			return "ok", nil
		}})

	var wg sync.WaitGroup
	for g := 0; g < dupes; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < doneKeys; i++ {
				// Each goroutine walks the keys at a different offset so
				// first-submitter and dedup interleave differently.
				seed := (g+i)%doneKeys + 1
				if _, code := submit(t, ts, seedBody(seed)); code != http.StatusAccepted && code != http.StatusOK {
					t.Errorf("submit seed %d: %d", seed, code)
				}
			}
		}(g)
	}
	for l := 0; l < cancelKeys; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			v, code := submit(t, ts, seedBody(1000+l))
			if code != http.StatusAccepted {
				t.Errorf("submit blocking seed %d: %d", 1000+l, code)
				return
			}
			// Cancel whether it is still queued or already running; the
			// run only ends via its context, so exactly one canceled
			// transition happens either way.
			if _, code := cancelJob(t, ts, v.ID); code != http.StatusAccepted {
				t.Errorf("cancel %s: %d", v.ID, code)
			}
		}(l)
	}
	wg.Wait()

	// Drain: wait until every job is terminal.
	deadline := time.Now().Add(10 * time.Second)
	for {
		live := 0
		for _, v := range tsJobs(t, ts) {
			if !Status(v.Status).Terminal() {
				live++
			}
		}
		if live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d jobs still live after drain wait", live)
		}
		time.Sleep(2 * time.Millisecond)
	}

	m := metricsMap(t, ts)
	e := expect{
		submitted: dupes*doneKeys + cancelKeys,
		deduped:   (dupes - 1) * doneKeys, // all but the first submit of each done-spec
		accepted:  doneKeys + cancelKeys,
		done:      doneKeys,
		canceled:  cancelKeys,
	}
	e.check(t, m)
	// Executions reconcile too: the cache recorded a miss for exactly
	// each run the stub saw (canceled-while-queued jobs never ran).
	if int64(m["cache_misses_total"]) != runs.Load() {
		t.Errorf("cache_misses_total = %v, runs = %d", m["cache_misses_total"], runs.Load())
	}
	if m["cache_hits_total"] != 0 {
		t.Errorf("cache_hits_total = %v, want 0 (dedup happens at the job table)", m["cache_hits_total"])
	}
	for _, v := range tsJobs(t, ts) {
		if v.FinishedAt == "" {
			t.Errorf("terminal job %s missing FinishedAt", v.ID)
		}
	}
}

// tsJob fetches one job view over the API.
func tsJob(ts *httptest.Server, id string) (JobView, error) {
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		return JobView{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobView{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	var v JobView
	return v, json.NewDecoder(resp.Body).Decode(&v)
}

// tsJobs fetches the full job table over the API.
func tsJobs(t *testing.T, ts *httptest.Server) []JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []JobView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	return views
}
