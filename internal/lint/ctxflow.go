package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow guards the cancellation plumbing: once a function has accepted
// a context.Context, that context must keep flowing. Inside such a
// function it flags (1) minting a fresh context.Background() or
// context.TODO() — which silently detaches the callee from the caller's
// cancellation — and (2) calling a context-free function F when its
// package also exports FCtx taking a leading context.Context (the
// convention internal/runner and internal/experiments use for their
// cancellable variants).
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "a function that accepts a context must pass it on, not mint context.Background/TODO or call the context-free sibling",
	Run:  runCtxFlow,
}

func isContext(t types.Type) bool { return isNamedType(t, "context", "Context") }

func runCtxFlow(pass *Pass) error {
	if pass.Pkg.Class == ClassExempt {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCtxParam(info, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
					pass.Reportf(call.Pos(), "context.%s() inside a function that already has a Context: pass the caller's ctx so cancellation reaches this call", fn.Name())
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() != nil || sigHasCtxParam(sig) {
					return true
				}
				alt, ok := fn.Pkg().Scope().Lookup(fn.Name() + "Ctx").(*types.Func)
				if !ok {
					return true
				}
				asig := alt.Type().(*types.Signature)
				if asig.Params().Len() > 0 && isContext(asig.Params().At(0).Type()) {
					pass.Reportf(call.Pos(), "%s.%s drops the caller's ctx: call %s.%sCtx and pass it", fn.Pkg().Name(), fn.Name(), fn.Pkg().Name(), fn.Name())
				}
				return true
			})
		}
	}
	return nil
}

// hasCtxParam reports whether the declared function has a parameter of
// type context.Context.
func hasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if t := info.TypeOf(field.Type); t != nil && isContext(t) {
			return true
		}
	}
	return false
}

// sigHasCtxParam reports whether any parameter of sig is a
// context.Context.
func sigHasCtxParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContext(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
