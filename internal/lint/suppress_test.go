package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parsePkg wraps one source string as a loaded Package for white-box
// tests of the suppression table.
func parsePkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{PkgPath: "spp1000/internal/fix", Fset: fset, Files: []*ast.File{f}}
}

func TestAllowDirectiveCoversLineAndNextLine(t *testing.T) {
	pkg := parsePkg(t, `package fix

//simlint:allow determinism justified reason
var a = 1
var b = 2
`)
	tab := newAllowTable()
	malformed := collectAllows(pkg, tab)
	if len(malformed) != 0 {
		t.Fatalf("malformed = %v, want none", malformed)
	}
	mk := func(line int, analyzer string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: "fix.go", Line: line}, Analyzer: analyzer}
	}
	if !tab.allows(mk(3, "determinism")) || !tab.allows(mk(4, "determinism")) {
		t.Errorf("directive should cover its own line and the next")
	}
	if tab.allows(mk(5, "determinism")) {
		t.Errorf("directive must not cover line 5")
	}
	if tab.allows(mk(4, "simtime")) {
		t.Errorf("directive names determinism only, must not cover simtime")
	}
}

func TestAllowDirectiveLists(t *testing.T) {
	pkg := parsePkg(t, `package fix

//simlint:allow determinism,simtime shared justification
var a = 1

//simlint:allow all everything goes here
var b = 2
`)
	tab := newAllowTable()
	malformed := collectAllows(pkg, tab)
	if len(malformed) != 0 {
		t.Fatalf("malformed = %v, want none", malformed)
	}
	at := func(line int, analyzer string) bool {
		return tab.allows(Diagnostic{Pos: token.Position{Filename: "fix.go", Line: line}, Analyzer: analyzer})
	}
	if !at(4, "determinism") || !at(4, "simtime") {
		t.Errorf("comma list should cover both analyzers")
	}
	if at(4, "ctxflow") {
		t.Errorf("comma list must not cover unnamed analyzers")
	}
	if !at(7, "ctxflow") {
		t.Errorf("'all' should cover every analyzer")
	}
}

func TestAllowFileDirective(t *testing.T) {
	pkg := parsePkg(t, `//simlint:allow-file determinism whole file is commutative merging

package fix

var a = 1
`)
	tab := newAllowTable()
	malformed := collectAllows(pkg, tab)
	if len(malformed) != 0 {
		t.Fatalf("malformed = %v, want none", malformed)
	}
	if !tab.allows(Diagnostic{Pos: token.Position{Filename: "fix.go", Line: 99}, Analyzer: "determinism"}) {
		t.Errorf("allow-file should cover any line")
	}
	if tab.allows(Diagnostic{Pos: token.Position{Filename: "other.go", Line: 1}, Analyzer: "determinism"}) {
		t.Errorf("allow-file must not cover other files")
	}
}

func TestMalformedDirectives(t *testing.T) {
	pkg := parsePkg(t, `package fix

//simlint:allow determinism
var a = 1

//simlint:allow
var b = 2

//simlint:allow-file simtime
var c = 3
`)
	malformed := collectAllows(pkg, newAllowTable())
	if len(malformed) != 3 {
		t.Fatalf("got %d malformed diagnostics, want 3: %v", len(malformed), malformed)
	}
	for _, d := range malformed {
		if d.Analyzer != "simlint" {
			t.Errorf("malformed directive reported by %q, want simlint", d.Analyzer)
		}
	}
}
