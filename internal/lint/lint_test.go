package lint_test

import (
	"testing"

	"spp1000/internal/lint"
	"spp1000/internal/lint/linttest"
)

// fixmod is the shadow module (module path spp1000, like the real one)
// holding the golden fixtures.
const fixmod = "testdata/fixmod"

func TestDeterminism(t *testing.T) {
	linttest.Run(t, fixmod,
		[]string{"./internal/cache", "./internal/runner", "./cmd/tool",
			"./internal/sim", "./internal/parsim"},
		lint.Determinism)
}

func TestSimTime(t *testing.T) {
	linttest.Run(t, fixmod, []string{"./internal/machine"}, lint.SimTime)
}

func TestCounterHandle(t *testing.T) {
	linttest.Run(t, fixmod,
		[]string{"./internal/counters", "./internal/memsys"},
		lint.CounterHandle)
}

func TestCtxFlow(t *testing.T) {
	linttest.Run(t, fixmod, []string{"./internal/service", "./cmd/tool"}, lint.CtxFlow)
}

func TestDeps(t *testing.T) {
	linttest.Run(t, fixmod,
		[]string{"./internal/store", "./internal/load", "./internal/rng"},
		lint.Deps)
}

// TestAllocFree covers both sides of the escape gate: compiler-reported
// escapes inside annotated bodies (./internal/hotpath), and a
// RequiredHotpaths function that has lost its annotation
// (./internal/resultcache). It shells out to `go build -gcflags=-m=2`.
func TestAllocFree(t *testing.T) {
	linttest.Run(t, fixmod,
		[]string{"./internal/hotpath", "./internal/resultcache"},
		lint.AllocFree)
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, fixmod, []string{"./internal/gateway"}, lint.LockOrder)
}

// TestLedger runs against its own shadow module so the fixture's docs/
// directory and reconcile package don't collide with the other fixtures.
func TestLedger(t *testing.T) {
	linttest.Run(t, "testdata/ledgermod", []string{"./..."}, lint.Ledger)
}

func TestSimPureLeaf(t *testing.T) {
	for path, want := range map[string]bool{
		"spp1000/internal/rng":     true,
		"spp1000/internal/rng/sub": true,
		"spp1000/internal/sim":     false,
		"spp1000/internal/load":    false,
		"rng":                      false,
	} {
		if got := lint.SimPureLeaf(path); got != want {
			t.Errorf("SimPureLeaf(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		path string
		want lint.Class
	}{
		{"spp1000/internal/sim", lint.ClassSimCore},
		{"spp1000/internal/apps/fem", lint.ClassSimCore},
		{"spp1000/internal/counters", lint.ClassSimCore},
		{"spp1000/internal/parsim", lint.ClassPDES},
		{"spp1000/internal/runner", lint.ClassHost},
		{"spp1000/internal/service", lint.ClassHost},
		{"spp1000/internal/resultcache", lint.ClassHost},
		{"spp1000/internal/store", lint.ClassHost},
		{"spp1000/internal/faultinject", lint.ClassHost},
		{"spp1000/internal/load", lint.ClassHost},
		{"spp1000/cmd/sppbench", lint.ClassExempt},
		{"spp1000/examples/quickstart", lint.ClassExempt},
		{"fmt", lint.ClassExempt},
		{"spp1000", lint.ClassExempt},
	}
	for _, c := range cases {
		if got := lint.Classify(c.path); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

// TestTreeClean is the acceptance gate in miniature: the real module
// must type-check and produce zero unsuppressed findings, exactly as
// `make lint` requires.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := lint.Load("../..")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := lint.Run(pkgs, lint.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unsuppressed finding: %s", d)
	}
}
