// Package lint is the simulator's invariant checker: a small, dependency-free
// reimplementation of the go/analysis pattern (golang.org/x/tools is not
// vendored) that type-checks the module with the standard library and runs a
// suite of repo-specific analyzers over it.
//
// The suite machine-checks the properties every number in this reproduction
// rests on and that the compiler cannot see:
//
//   - determinism: sim-core packages must be a pure function of their inputs —
//     no wall-clock reads, no global math/rand, no unordered map iteration,
//     no goroutine spawns outside internal/runner.
//   - simtime: virtual time (sim.Cycles) must never mix with host wall-clock
//     time (time.Duration / time.Time).
//   - counterhandle: the internal/counters handles keep their documented
//     zero-alloc nil-safe disabled path.
//   - ctxflow: a function that receives a context.Context forwards it instead
//     of minting context.Background/TODO.
//   - deps: sim-independent infrastructure (internal/store,
//     internal/faultinject) must not import sim-core packages.
//
// Findings are suppressed line-by-line with
//
//	//simlint:allow <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line above, or file-wide with
// //simlint:allow-file. A directive without a reason is itself a finding.
// See docs/LINT.md for the full contract and cmd/simlint for the driver.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer checks one repo invariant over a type-checked package. It is
// the local analogue of golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in output and in //simlint:allow
	// directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Run checks one package, reporting findings through the Pass.
	Run func(*Pass) error
}

// A Pass connects one Analyzer run to one Package and collects its findings.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: a position, the analyzer that produced it, and
// the message.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the analyzer that produced the finding (the name used
	// in //simlint:allow directives), or "simlint" for malformed directives.
	Analyzer string
	// Message states the violated invariant.
	Message string
}

// String formats the diagnostic as "file:line:col: message (analyzer)".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, SimTime, CounterHandle, CtxFlow, Deps}
}

// Run executes the analyzers over the packages, applies the //simlint:allow
// suppressions, and returns the surviving findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allow, malformed := collectAllows(pkg)
		diags = append(diags, malformed...)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, report: func(d Diagnostic) { raw = append(raw, d) }}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		for _, d := range raw {
			if !allow.allows(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or nil
// for builtins, function values, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isNamedType reports whether t (after unaliasing) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
