// Package lint is the simulator's invariant checker: a small, dependency-free
// reimplementation of the go/analysis pattern (golang.org/x/tools is not
// vendored) that type-checks the module with the standard library and runs a
// suite of repo-specific analyzers over it.
//
// The suite machine-checks the properties every number in this reproduction
// rests on and that the compiler cannot see:
//
//   - determinism: sim-core packages must be a pure function of their inputs —
//     no wall-clock reads, no global math/rand, no unordered map iteration,
//     no goroutine spawns outside internal/runner.
//   - simtime: virtual time (sim.Cycles) must never mix with host wall-clock
//     time (time.Duration / time.Time).
//   - counterhandle: the internal/counters handles keep their documented
//     zero-alloc nil-safe disabled path.
//   - ctxflow: a function that receives a context.Context forwards it instead
//     of minting context.Background/TODO.
//   - deps: sim-independent infrastructure (internal/store,
//     internal/faultinject) must not import sim-core packages.
//   - allocfree: //simlint:hotpath functions stay free of heap escapes,
//     verified against the compiler's own escape analysis
//     (go build -gcflags=-m=2), and the RequiredHotpaths inventory keeps
//     the annotations themselves from silently disappearing.
//   - lockorder: the interprocedural sync.Mutex/RWMutex acquisition graph
//     over host and pdes packages has no cycles (no ABBA deadlocks, no
//     reacquisition self-deadlocks).
//   - ledger: every metric name an annotated //simlint:metrics-writer
//     emits appears in the reconcile equations (internal/load or the
//     metrics tests) and in the docs, and every name the reconcile side
//     references is actually emitted.
//
// Findings are suppressed line-by-line with
//
//	//simlint:allow <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line above, or file-wide with
// //simlint:allow-file. A directive without a reason is itself a finding.
// See docs/LINT.md for the full contract and cmd/simlint for the driver.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer checks one repo invariant over a type-checked package. It is
// the local analogue of golang.org/x/tools/go/analysis.Analyzer. An analyzer
// sets Run, RunModule, or both: Run sees one package at a time, RunModule sees
// the whole loaded package set at once (for cross-package properties such as
// the lock graph or the metrics ledger).
type Analyzer struct {
	// Name identifies the analyzer in output and in //simlint:allow
	// directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Run checks one package, reporting findings through the Pass. May be
	// nil for module-only analyzers.
	Run func(*Pass) error
	// RunModule checks the loaded package set as a whole, reporting
	// findings through the ModulePass. May be nil for per-package
	// analyzers. It runs once per lint invocation, after the per-package
	// passes.
	RunModule func(*ModulePass) error
}

// A Pass connects one Analyzer run to one Package and collects its findings.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAt records a finding at an already-resolved file position — the
// entry point for analyzers that attribute diagnostics produced outside
// the type-checker (the allocfree analyzer repositions the compiler's
// own escape diagnostics).
func (p *Pass) ReportAt(pos token.Position, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A ModulePass connects one module-wide Analyzer run to the whole loaded
// package set. All packages of one Load share a FileSet, so positions
// resolve uniformly regardless of which package a node came from.
type ModulePass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Pkgs is every loaded package, in import-path order.
	Pkgs []*Package

	fset   *token.FileSet
	report func(Diagnostic)
}

// Reportf records a finding at pos (resolved against the shared FileSet).
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAt records a finding at an already-resolved file position.
func (p *ModulePass) ReportAt(pos token.Position, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding: a position, the analyzer that produced it, and
// the message.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer names the analyzer that produced the finding (the name used
	// in //simlint:allow directives), or "simlint" for malformed directives.
	Analyzer string
	// Message states the violated invariant.
	Message string
}

// String formats the diagnostic as "file:line:col: message (analyzer)".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Determinism, SimTime, CounterHandle, CtxFlow, Deps, AllocFree, LockOrder, Ledger}
}

// Run executes the analyzers over the packages, applies the //simlint:allow
// suppressions, and returns the surviving findings sorted by position.
// Per-package passes run first (package by package), then each analyzer's
// module-wide pass over the full set; one suppression table spanning every
// loaded file filters both kinds of finding identically.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	allow := newAllowTable()
	for _, pkg := range pkgs {
		malformed := collectAllows(pkg, allow)
		diags = append(diags, malformed...)
	}
	var raw []Diagnostic
	record := func(d Diagnostic) { raw = append(raw, d) }
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: pkg, report: record}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil || len(pkgs) == 0 {
			continue
		}
		mp := &ModulePass{Analyzer: a, Pkgs: pkgs, fset: pkgs[0].Fset, report: record}
		if err := a.RunModule(mp); err != nil {
			return nil, fmt.Errorf("%s (module pass): %w", a.Name, err)
		}
	}
	for _, d := range raw {
		if !allow.allows(d) {
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or nil
// for builtins, function values, and type conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isNamedType reports whether t (after unaliasing) is the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
