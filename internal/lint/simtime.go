package lint

import (
	"go/ast"
	"go/types"
)

// simPkgPath is the import path of the simulation kernel that defines
// the Cycles unit type.
const simPkgPath = ModulePath + "/internal/sim"

// SimTime keeps virtual and wall-clock time apart. Everywhere but exempt
// packages it flags explicit conversions between sim.Cycles and
// time.Duration (the only way the two unit types can meet under Go's
// type system); in sim-core packages it additionally flags any reference
// to the wall-clock types time.Duration or time.Time — components of the
// simulated machine measure time in cycles, full stop.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc:  "forbid mixing sim.Cycles with time.Duration, and wall-clock types inside sim-core packages",
	Run:  runSimTime,
}

func isCycles(t types.Type) bool   { return isNamedType(t, simPkgPath, "Cycles") }
func isDuration(t types.Type) bool { return isNamedType(t, "time", "Duration") }

func runSimTime(pass *Pass) error {
	class := pass.Pkg.Class
	if class == ClassExempt {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				tv, ok := info.Types[n.Fun]
				if !ok || !tv.IsType() || len(n.Args) != 1 {
					return true
				}
				src := info.TypeOf(n.Args[0])
				if src == nil {
					return true
				}
				switch {
				case isCycles(tv.Type) && isDuration(src):
					pass.Reportf(n.Pos(), "conversion of time.Duration to sim.Cycles mixes wall-clock and virtual time: construct cycles with sim.Micros/sim.Nanos from a model parameter")
				case isDuration(tv.Type) && isCycles(src):
					pass.Reportf(n.Pos(), "conversion of sim.Cycles to time.Duration mixes virtual and wall-clock time: render cycles with their own Micros/Seconds/String methods")
				}
			case *ast.Ident:
				if class != ClassSimCore {
					return true
				}
				tn, ok := info.Uses[n].(*types.TypeName)
				if ok && tn.Pkg() != nil && tn.Pkg().Path() == "time" &&
					(tn.Name() == "Duration" || tn.Name() == "Time") {
					pass.Reportf(n.Pos(), "wall-clock type time.%s in sim-core package: virtual time is sim.Cycles", tn.Name())
				}
			}
			return true
		})
	}
	return nil
}
