package lint

import (
	"strconv"
	"strings"
)

// Deps enforces the sim-independence of the durable infrastructure
// packages listed in SimIndependentPackages: they must not import any
// sim-core package. internal/store persists results across daemon
// restarts, internal/faultinject is armed by tests against a live
// daemon, and internal/gateway shards opaque content keys across
// backends — all must stay loadable, testable, and reasoned about
// without dragging the deterministic kernel in, and the kernel must
// never grow a back-edge to them (a store, fault hook, or routing
// decision reachable from sim-core would let host state leak into
// simulation results). The gateway's one real spec need — turning a
// submit body into a key — is injected by cmd/sppgw precisely so this
// ban can hold. The ban is one-directional and structural, so it is
// checked at the import graph, not at call sites.
//
// Two refinements keep the ban sound as it grew to internal/load:
// the SimPureLeaves (internal/rng) are exempt from the ban — they are
// deterministic computational leaves the load harness may reuse for
// replayable workloads — and the analyzer enforces that claimed purity
// on the leaves themselves: a SimPureLeaf package importing anything
// from the module stops being a leaf, and the report lands at the
// offending import.
var Deps = &Analyzer{
	Name: "deps",
	Doc:  "forbid sim-core imports in sim-independent infrastructure packages (internal/store, internal/faultinject, internal/gateway, internal/load), and keep the sim-pure leaves import-free",
	Run:  runDeps,
}

func runDeps(pass *Pass) error {
	if SimPureLeaf(pass.Pkg.PkgPath) {
		for _, f := range pass.Pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == ModulePath || strings.HasPrefix(path, ModulePath+"/") {
					pass.Reportf(imp.Pos(), "module import %s in sim-pure leaf package: the leaf exemption that lets sim-independent packages import this one is only sound while it imports nothing from the module", path)
				}
			}
		}
		return nil
	}
	if !SimIndependent(pass.Pkg.PkgPath) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if Classify(path) == ClassSimCore && !SimPureLeaf(path) {
				pass.Reportf(imp.Pos(), "sim-core import %s in sim-independent package: store and fault-injection infrastructure must not depend on the simulation kernel", path)
			}
		}
	}
	return nil
}
