package lint

import "strconv"

// Deps enforces the sim-independence of the durable infrastructure
// packages listed in SimIndependentPackages: they must not import any
// sim-core package. internal/store persists results across daemon
// restarts, internal/faultinject is armed by tests against a live
// daemon, and internal/gateway shards opaque content keys across
// backends — all must stay loadable, testable, and reasoned about
// without dragging the deterministic kernel in, and the kernel must
// never grow a back-edge to them (a store, fault hook, or routing
// decision reachable from sim-core would let host state leak into
// simulation results). The gateway's one real spec need — turning a
// submit body into a key — is injected by cmd/sppgw precisely so this
// ban can hold. The ban is one-directional and structural, so it is
// checked at the import graph, not at call sites.
var Deps = &Analyzer{
	Name: "deps",
	Doc:  "forbid sim-core imports in sim-independent infrastructure packages (internal/store, internal/faultinject, internal/gateway)",
	Run:  runDeps,
}

func runDeps(pass *Pass) error {
	if !SimIndependent(pass.Pkg.PkgPath) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if Classify(path) == ClassSimCore {
				pass.Reportf(imp.Pos(), "sim-core import %s in sim-independent package: store and fault-injection infrastructure must not depend on the simulation kernel", path)
			}
		}
	}
	return nil
}
