// Package linttest is the golden-test harness for the internal/lint
// analyzers, modeled on golang.org/x/tools/go/analysis/analysistest.
// Fixture packages live in a shadow module (internal/lint/testdata/fixmod
// declares `module spp1000` so analyzers that key on this module's type
// paths resolve against miniature stand-ins) and mark each expected
// finding with a trailing comment:
//
//	time.Sleep(d) // want `time\.Sleep`
//
// Each quoted string is a regexp that must match exactly one diagnostic
// on that line; unexpected diagnostics and unmatched expectations both
// fail the test.
package linttest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"spp1000/internal/lint"
)

// want is one expectation: a regexp at a file:line, matched at most once.
type want struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture module at dir, analyzes the packages matching
// patterns with the given analyzers, and compares every diagnostic
// against the fixtures' `// want` comments.
func Run(t *testing.T, dir string, patterns []string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkgs, err := lint.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("load %s %v: %v", dir, patterns, err)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	wants := collectWants(t, pkgs)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched %q", key, w.re)
			}
		}
	}
}

// collectWants parses `// want "re" ...` comments out of the loaded
// fixture files, keyed by "filename:line".
func collectWants(t *testing.T, pkgs []*lint.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, pat := range splitQuoted(t, pos.String(), rest) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go-quoted or backquoted strings.
func splitQuoted(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		q, err := strconv.QuotedPrefix(s)
		if err != nil {
			t.Fatalf("%s: malformed want expectation %q: %v", pos, s, err)
		}
		unq, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: malformed want expectation %q: %v", pos, q, err)
		}
		out = append(out, unq)
		s = s[len(q):]
	}
}
