package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// hotpathDirective marks a function whose body must stay free of heap
// escapes. It lives in the function's doc comment:
//
//	// Run executes events in timestamp order.
//	//
//	//simlint:hotpath
//	func (k *Kernel) Run() error { ... }
const hotpathDirective = "//simlint:hotpath"

// AllocFree is the escape gate over the measurement-critical hot paths:
// every function annotated //simlint:hotpath is checked against the
// compiler's own escape analysis (`go build -gcflags=<pkg>=-m=2`), and
// any value escaping to the heap inside an annotated body is a finding
// carrying the compiler's explanation. The per-event cost model of this
// reproduction (7.5 ns/event, 0 allocs/event since PR 1; the 0-alloc
// counters-disabled path since PR 3) is enforced at build time rather
// than discovered in a benchmark three PRs later: a new closure, a
// boxed interface argument, or a value captured by reference fails
// `make lint` at the line that introduced it.
//
// The gate is two-sided. RequiredHotpaths (config.go) names the
// functions that must carry the annotation, so deleting a
// //simlint:hotpath comment — or renaming the function out from under
// it — is itself a finding; and every escape the compiler attributes to
// an annotated body fails lint unless the line carries a
// //simlint:allow allocfree justification. Escapes in unannotated
// functions of the same package are ignored: cold paths may allocate
// freely.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "forbid heap escapes inside //simlint:hotpath functions, verified against go build -gcflags=-m=2; required hot paths must stay annotated",
	Run:  runAllocFree,
}

// hotFunc is one annotated (or required-but-unannotated) function.
type hotFunc struct {
	name      string // "Type.Method" or bare function name
	decl      *ast.FuncDecl
	file      string // absolute filename
	startLine int    // body start line
	endLine   int    // body end line
	annotated bool
}

// declName renders a FuncDecl as "Type.Method" (pointer receivers
// included under the base type name) or a bare function name.
func declName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		default:
			if id, ok := t.(*ast.Ident); ok {
				return id.Name + "." + d.Name.Name
			}
			return d.Name.Name
		}
	}
}

// hasHotpathDirective reports whether the function's doc comment carries
// //simlint:hotpath.
func hasHotpathDirective(d *ast.FuncDecl) bool {
	if d.Doc == nil {
		return false
	}
	for _, c := range d.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// collectHotFuncs gathers every function declaration of the package with
// its annotation state and body line range.
func collectHotFuncs(pkg *Package) []hotFunc {
	var out []hotFunc
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			start := pkg.Fset.Position(fd.Body.Pos())
			end := pkg.Fset.Position(fd.Body.End())
			out = append(out, hotFunc{
				name:      declName(fd),
				decl:      fd,
				file:      start.Filename,
				startLine: start.Line,
				endLine:   end.Line,
				annotated: hasHotpathDirective(fd),
			})
		}
	}
	return out
}

// escapeDiag is one parsed compiler escape diagnostic.
type escapeDiag struct {
	file string // absolute
	line int
	col  int
	msg  string
}

// parseEscapes extracts the "escapes to heap" / "moved to heap"
// headlines from `go build -gcflags=-m=2` output, resolving the
// compiler's module-relative paths against root. The -m=2 flow
// explanations (indented continuation lines sharing the headline's
// position) are folded into the headline's message so the finding
// carries the compiler's own reasoning.
func parseEscapes(out string, root string) []escapeDiag {
	var diags []escapeDiag
	seen := make(map[string]bool) // "file:line:col:msg" dedup (with/without trailing colon)
	byPos := make(map[string]int) // "file:line:col" -> most recent headline index
	for _, line := range strings.Split(out, "\n") {
		file, rest, ok := strings.Cut(line, ".go:")
		if !ok || strings.HasPrefix(file, "#") {
			continue
		}
		file += ".go"
		lineStr, rest, ok := strings.Cut(rest, ":")
		if !ok {
			continue
		}
		colStr, msg, ok := strings.Cut(rest, ":")
		if !ok {
			continue
		}
		ln, err1 := strconv.Atoi(lineStr)
		col, err2 := strconv.Atoi(colStr)
		if err1 != nil || err2 != nil {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(root, file)
		}
		posKey := fmt.Sprintf("%s:%d:%d", file, ln, col)
		if strings.HasPrefix(msg, "   ") {
			// Flow-explanation continuation: fold into the headline at
			// the same position, if one was kept.
			if i, ok := byPos[posKey]; ok && len(diags[i].msg) < 400 {
				diags[i].msg += "; " + strings.TrimSpace(msg)
			}
			continue
		}
		msg = strings.TrimSpace(msg)
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		key := posKey + ":" + strings.TrimSuffix(msg, ":")
		if seen[key] {
			continue
		}
		seen[key] = true
		byPos[posKey] = len(diags)
		diags = append(diags, escapeDiag{file: file, line: ln, col: col, msg: strings.TrimSuffix(msg, ":")})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.col < b.col
	})
	return diags
}

func runAllocFree(pass *Pass) error {
	rel, ok := pass.Pkg.RelPath()
	if !ok {
		return nil
	}
	funcs := collectHotFuncs(pass.Pkg)
	byName := make(map[string]*hotFunc, len(funcs))
	anyAnnotated := false
	for i := range funcs {
		byName[funcs[i].name] = &funcs[i]
		if funcs[i].annotated {
			anyAnnotated = true
		}
	}

	// Inventory: the declared hot paths must stay annotated. A required
	// function that no longer exists at all is reported at the package
	// clause — the gate must not silently evaporate with a rename.
	for _, name := range RequiredHotpaths[rel] {
		hf, exists := byName[name]
		switch {
		case !exists:
			pass.Reportf(pass.Pkg.Files[0].Package,
				"required hot path %s.%s not found: update RequiredHotpaths in internal/lint/config.go if it moved, or restore the function", rel, name)
		case !hf.annotated:
			pass.Reportf(hf.decl.Pos(),
				"%s is a declared hot path (RequiredHotpaths) and must carry %s in its doc comment", name, hotpathDirective)
		}
	}
	if !anyAnnotated {
		return nil
	}

	// One compiler run per annotated package: ask gc for its escape
	// analysis and attribute the headlines to annotated bodies. Go
	// replays cached compile diagnostics, so an unchanged package costs
	// one cache probe, not a rebuild.
	root := pass.Pkg.ModuleRoot()
	cmd := exec.Command("go", "build", "-gcflags="+pass.Pkg.PkgPath+"=-m=2", pass.Pkg.PkgPath)
	cmd.Dir = root
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go build -gcflags=-m=2 %s: %v\n%s", pass.Pkg.PkgPath, err, out.String())
	}
	for _, esc := range parseEscapes(out.String(), root) {
		for i := range funcs {
			hf := &funcs[i]
			if !hf.annotated || hf.file != esc.file || esc.line < hf.startLine || esc.line > hf.endLine {
				continue
			}
			pos := token.Position{Filename: esc.file, Line: esc.line, Column: esc.col}
			pass.ReportAt(pos, "heap escape in hot path %s: %s", hf.name, esc.msg)
			break
		}
	}
	return nil
}
