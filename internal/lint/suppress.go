package lint

import (
	"go/token"
	"strings"
)

// Suppression directives:
//
//	//simlint:allow <analyzer>[,<analyzer>] <reason>
//	//simlint:allow-file <analyzer>[,<analyzer>] <reason>
//
// The line form covers findings on the directive's own line or the line
// directly below it (so it works both as a trailing comment and as a
// comment above the statement). The file form covers the whole file.
// "all" matches every analyzer. The reason is mandatory: an allow
// without a justification is reported as a finding of the pseudo
// analyzer "simlint" and is itself unsuppressable.
const (
	allowPrefix     = "//simlint:allow "
	allowFilePrefix = "//simlint:allow-file "
)

// allowTable records which analyzers are suppressed where. Filenames are
// unique across a Load, so one table spans every loaded package.
type allowTable struct {
	// file maps filename -> analyzer name (or "all") -> file-wide allow.
	file map[string]map[string]bool
	// line maps filename -> line -> analyzer name (or "all") -> allow.
	line map[string]map[int]map[string]bool
}

// newAllowTable returns an empty suppression table.
func newAllowTable() *allowTable {
	return &allowTable{
		file: make(map[string]map[string]bool),
		line: make(map[string]map[int]map[string]bool),
	}
}

func (t *allowTable) allows(d Diagnostic) bool {
	if names := t.file[d.Pos.Filename]; names["all"] || names[d.Analyzer] {
		return true
	}
	names := t.line[d.Pos.Filename][d.Pos.Line]
	return names["all"] || names[d.Analyzer]
}

// collectAllows scans a package's comments for simlint directives,
// folding them into tab. It returns one "simlint" diagnostic per
// malformed directive (missing analyzer name or missing reason).
func collectAllows(pkg *Package, tab *allowTable) []Diagnostic {
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				fileWide := false
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					rest, ok = strings.CutPrefix(c.Text, allowFilePrefix)
					fileWide = ok
				}
				if !ok {
					// A directive with no trailing space at all (and so no
					// arguments) is malformed too.
					if trimmed := strings.TrimSpace(c.Text); trimmed == "//simlint:allow" || trimmed == "//simlint:allow-file" {
						malformed = append(malformed, malformedAt(pkg, c.Pos()))
					}
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 { // analyzer name plus at least one word of reason
					malformed = append(malformed, malformedAt(pkg, c.Pos()))
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					if name == "" {
						continue
					}
					if fileWide {
						set := tab.file[pos.Filename]
						if set == nil {
							set = make(map[string]bool)
							tab.file[pos.Filename] = set
						}
						set[name] = true
						continue
					}
					lines := tab.line[pos.Filename]
					if lines == nil {
						lines = make(map[int]map[string]bool)
						tab.line[pos.Filename] = lines
					}
					for _, ln := range []int{pos.Line, pos.Line + 1} {
						set := lines[ln]
						if set == nil {
							set = make(map[string]bool)
							lines[ln] = set
						}
						set[name] = true
					}
				}
			}
		}
	}
	return malformed
}

func malformedAt(pkg *Package, pos token.Pos) Diagnostic {
	return Diagnostic{
		Pos:      pkg.Fset.Position(pos),
		Analyzer: "simlint",
		Message:  "malformed simlint directive: want //simlint:allow <analyzer> <reason>",
	}
}
