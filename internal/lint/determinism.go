package lint

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package-level time functions that read or act on
// the host's clock. Methods of time.Time (Sub, After, …) are pure value
// arithmetic and stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// Determinism enforces that simulation results are a pure function of
// their inputs. In sim-core packages it forbids wall-clock reads
// (time.Now and friends), any use of math/rand (the seeded internal/rng
// stream is the only sanctioned randomness), iteration over maps (Go
// randomizes the order, so ranges that feed simulator state or output
// must sort first or justify themselves), and goroutine spawns (host
// concurrency belongs in internal/runner; the kernel's baton-passing
// Procs are annotated at their two spawn sites). In pdes packages —
// the coordinator layer whose whole purpose is running kernels on
// goroutines — the goroutine ban is lifted, but the wall-clock,
// math/rand, and map-iteration checks bind unchanged: the coordinator's
// scheduling decisions feed simulator output. In host packages only the
// wall-clock check applies, so every legitimate host-side clock read
// carries a visible //simlint:allow justification.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, math/rand, map iteration, and goroutine spawns in sim-core packages (goroutines permitted in pdes packages; wall-clock reads also flagged in host packages)",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	class := pass.Pkg.Class
	if class == ClassExempt {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if class == ClassSimCore {
					pass.Reportf(n.Pos(), "goroutine spawned in sim-core package: host concurrency belongs in internal/runner")
				}
			case *ast.RangeStmt:
				if class == ClassSimCore || class == ClassPDES {
					if t := info.TypeOf(n.X); t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							pass.Reportf(n.Pos(), "map iteration order is nondeterministic: sort the keys first, or annotate why order cannot reach simulator state or output")
						}
					}
				}
			case *ast.Ident:
				obj := info.Uses[n]
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				switch obj.Pkg().Path() {
				case "time":
					fn, ok := obj.(*types.Func)
					if ok && wallClockFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
						pass.Reportf(n.Pos(), "wall-clock call time.%s: simulated time is sim.Cycles; host code must annotate its clock reads", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if class == ClassSimCore || class == ClassPDES {
						pass.Reportf(n.Pos(), "math/rand in %s package: draw from the seeded internal/rng stream so results survive Go releases", class)
					}
				}
			}
			return true
		})
	}
	return nil
}
