package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked, comment-preserving package ready for
// analysis.
type Package struct {
	// PkgPath is the package's full import path.
	PkgPath string
	// Dir is the package's source directory.
	Dir string
	// Class is the invariant class Classify assigned to the package.
	Class Class
	// Fset maps positions for Files (shared across one Load).
	Fset *token.FileSet
	// Files are the parsed non-test Go files, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's expression/object tables.
	Info *types.Info
}

// RelPath reports the package's module-relative import path ("" for the
// module root, "internal/sim" for spp1000/internal/sim), or ok=false for
// packages outside the module.
func (p *Package) RelPath() (string, bool) {
	if p.PkgPath == ModulePath {
		return "", true
	}
	rel, ok := strings.CutPrefix(p.PkgPath, ModulePath+"/")
	return rel, ok
}

// ModuleRoot reports the filesystem directory of the module the package
// belongs to, derived from its source directory and module-relative
// import path. Analyzers that shell out to the go tool (allocfree) or
// read sibling surfaces off disk (ledger: docs, test files) anchor
// there, which keeps them correct for shadow fixture modules too.
func (p *Package) ModuleRoot() string {
	rel, ok := p.RelPath()
	if !ok || rel == "" {
		return p.Dir
	}
	return strings.TrimSuffix(p.Dir, string(filepath.Separator)+filepath.FromSlash(rel))
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Module     *struct{ Path string }
}

// Load lists, parses, and type-checks the module packages matching
// patterns (default "./...") under dir, using `go list -deps -export` so
// dependencies — including the standard library — are imported from
// compiler export data. Test files are not loaded: the invariants guard
// the simulator, and tests measure the host freely.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Standard,DepOnly,Export,GoFiles,CgoFiles,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly && p.Module != nil && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", t.ImportPath)
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name),
				nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: t.ImportPath,
			Dir:     t.Dir,
			Class:   Classify(t.ImportPath),
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}
