package lint

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metricsWriterDirective marks a declaration (a /metrics handler
// function, or the variable naming the metrics it aggregates) as part of
// the service's metric vocabulary:
//
//	//simlint:metrics-writer
//	func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) { ... }
const metricsWriterDirective = "//simlint:metrics-writer"

// metricNameRE is the wire grammar of a metric name: snake_case with at
// least one underscore, no leading or trailing underscore. Format
// strings ("%d\n"), namespace prefixes ("sppd_", "sim_counter_") and
// single-word gauges ("backends") fall outside it by construction.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// metricTokenRE scans free text (test files, docs) for candidate tokens
// to filter through metricNameRE.
var metricTokenRE = regexp.MustCompile(`[a-z][a-z0-9_]*`)

// Ledger is the metrics double-entry check. The /metrics text format is
// stringly typed end to end: the service prints "sppd_jobs_done_total 7",
// the load harness greps it back out and asserts client-side equations
// against it, and docs/SERVICE.md tells operators what the name means.
// Nothing but grep connects the three, so a renamed or newly added
// counter silently drops out of reconciliation — the load gate keeps
// passing because it never hears about the metric at all. The ledger
// closes that loop both ways:
//
//   - every metric name emitted by an annotated //simlint:metrics-writer
//     declaration must appear in the reconcile surface (the
//     internal/load sources and the metrics tests of load and the
//     emitters) AND in the docs (docs/*.md or README.md);
//   - every metric name the reconcile package references must be emitted
//     by some annotated writer (a reconcile equation over a metric
//     nobody prints vacuously passes).
//
// Emitted names are whole string literals inside annotated declarations
// that match the metric grammar; names are normalized by stripping the
// wire namespaces in MetricsPrefixes, so "jobs_done_total" in the
// service matches "sppd_jobs_done_total" in a test. The cross-checks
// only run when at least one annotated writer was found; each
// MetricsEmitterPackages package with no annotation at all is a finding
// of its own.
var Ledger = &Analyzer{
	Name:      "ledger",
	Doc:       "cross-check every metric name emitted by annotated /metrics writers against the reconcile equations and the docs, and vice versa",
	RunModule: runLedger,
}

// litName is one grammar-matching string literal with its position.
type litName struct {
	name string
	pos  token.Pos
}

func runLedger(mp *ModulePass) error {
	emitters := make(map[string]*Package)  // rel path -> loaded emitter package
	var reconcile *Package
	for _, pkg := range mp.Pkgs {
		rel, ok := pkg.RelPath()
		if !ok {
			continue
		}
		for _, e := range MetricsEmitterPackages {
			if rel == e {
				emitters[rel] = pkg
			}
		}
		if rel == MetricsReconcilePackage {
			reconcile = pkg
		}
	}
	if len(emitters) == 0 {
		return nil // ledger surface not loaded (partial lint run)
	}

	// Collect emitted names from annotated declarations, reporting
	// emitter packages with no annotation at all.
	emitted := make(map[string]litName)
	relOrder := make([]string, 0, len(emitters))
	for rel := range emitters {
		relOrder = append(relOrder, rel)
	}
	sort.Strings(relOrder)
	sawAnnotation := false
	for _, rel := range relOrder {
		pkg := emitters[rel]
		names, annotated := emittedNames(pkg)
		if !annotated {
			mp.Reportf(pkg.Files[0].Package,
				"package %s emits /metrics but no declaration carries %s: annotate the metrics handler so the ledger can see its vocabulary", rel, metricsWriterDirective)
			continue
		}
		sawAnnotation = true
		for _, ln := range names {
			if _, dup := emitted[ln.name]; !dup {
				emitted[ln.name] = ln
			}
		}
	}
	if !sawAnnotation {
		return nil
	}

	// The reconcile surface: load-package sources, plus the *_test.go
	// files of the load package and the emitters (metrics round-trip
	// tests count as reconciliation — they assert the name exists on the
	// wire). The docs surface: docs/*.md and README.md of the module.
	root := emitters[relOrder[0]].ModuleRoot()
	surface := make(map[string]bool)
	if reconcile != nil {
		addDirSurface(surface, reconcile.Dir, func(name string) bool { return strings.HasSuffix(name, ".go") })
	}
	for _, rel := range relOrder {
		addDirSurface(surface, emitters[rel].Dir, func(name string) bool { return strings.HasSuffix(name, "_test.go") })
	}
	docs := make(map[string]bool)
	addDirSurface(docs, filepath.Join(root, "docs"), func(name string) bool { return strings.HasSuffix(name, ".md") })
	if b, err := os.ReadFile(filepath.Join(root, "README.md")); err == nil {
		addTextSurface(docs, string(b))
	}

	// Direction 1: emitted but unreconciled / undocumented.
	names := make([]string, 0, len(emitted))
	for name := range emitted {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ln := emitted[name]
		if !surface[name] {
			mp.Reportf(ln.pos,
				"metric %s is emitted but absent from the reconcile surface: add a reconcile equation in %s or assert it in a metrics test", name, MetricsReconcilePackage)
		}
		if !docs[name] {
			mp.Reportf(ln.pos,
				"metric %s is emitted but not mentioned in docs/*.md or README.md", name)
		}
	}

	// Direction 2: reconciled but never emitted. Whole-literal names in
	// the reconcile package's (non-test) sources must come off the wire.
	if reconcile != nil {
		for _, ln := range literalNames(reconcile) {
			name := stripMetricPrefix(ln.name)
			if _, ok := emitted[name]; !ok {
				mp.Reportf(ln.pos,
					"reconcile references metric %s that no annotated /metrics writer emits: the equation can never bind", name)
			}
		}
	}
	return nil
}

// emittedNames collects whole-literal metric names from the package's
// //simlint:metrics-writer declarations, and whether any declaration is
// annotated at all.
func emittedNames(pkg *Package) ([]litName, bool) {
	var names []litName
	annotated := false
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			default:
				continue
			}
			if !hasDirective(doc, metricsWriterDirective) {
				continue
			}
			annotated = true
			ast.Inspect(decl, func(n ast.Node) bool {
				lit, ok := n.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				s, err := strconv.Unquote(lit.Value)
				if err != nil || !metricNameRE.MatchString(s) {
					return true
				}
				names = append(names, litName{name: stripMetricPrefix(s), pos: lit.Pos()})
				return true
			})
		}
	}
	return names, annotated
}

// literalNames collects whole-literal metric names anywhere in the
// package's loaded (non-test) files.
func literalNames(pkg *Package) []litName {
	var names []litName
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil || !metricNameRE.MatchString(s) {
				return true
			}
			names = append(names, litName{name: s, pos: lit.Pos()})
			return true
		})
	}
	return names
}

// hasDirective reports whether the comment group contains the directive
// on a line of its own.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// addDirSurface tokenizes every file in dir whose name passes keep into
// the surface set.
func addDirSurface(surface map[string]bool, dir string, keep func(string) bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.IsDir() || !keep(e.Name()) {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		addTextSurface(surface, string(b))
	}
}

// addTextSurface adds every grammar-matching token of text — and every
// valid prefix-stripped form — to the surface set. All prefixes are
// tried, not just the longest match: "sppgw_backend_evictions_total" is
// both the backend-prefixed "evictions_total" and the gateway's own
// "backend_evictions_total", and the surface must cover whichever the
// writer meant.
func addTextSurface(surface map[string]bool, text string) {
	for _, tok := range metricTokenRE.FindAllString(text, -1) {
		if !metricNameRE.MatchString(tok) {
			continue
		}
		surface[tok] = true
		for _, p := range MetricsPrefixes {
			if rest, ok := strings.CutPrefix(tok, p); ok && metricNameRE.MatchString(rest) {
				surface[rest] = true
			}
		}
	}
}

// stripMetricPrefix removes the first matching wire namespace from name
// (longest prefixes are listed first in MetricsPrefixes).
func stripMetricPrefix(name string) string {
	for _, p := range MetricsPrefixes {
		if rest, ok := strings.CutPrefix(name, p); ok && metricNameRE.MatchString(rest) {
			return rest
		}
	}
	return name
}
