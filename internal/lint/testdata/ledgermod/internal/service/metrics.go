// Package service is the ledger fixture's daemon-side emitter.
package service

import (
	"fmt"
	"io"
)

// writeMetrics renders the daemon counters in `name value` lines.
//
//simlint:metrics-writer
func writeMetrics(w io.Writer, done, orphan, shadow int64) {
	fmt.Fprintf(w, "sppd_%s %d\n", "jobs_done_total", done)
	fmt.Fprintf(w, "sppd_%s %d\n", "orphan_counter_total", orphan) // want "metric orphan_counter_total is emitted but absent from the reconcile surface"
	fmt.Fprintf(w, "sppd_%s %d\n", "undocumented_total", shadow) // want "metric undocumented_total is emitted but not mentioned in docs"
}
