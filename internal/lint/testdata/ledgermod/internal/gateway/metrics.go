// Package gateway is the ledger fixture's cluster-side emitter.
package gateway

// clusterSummed names the backend counters the gateway sums into
// cluster totals.
//
//simlint:metrics-writer
var clusterSummed = []string{
	"jobs_done_total",
	"ghost_summed_total", // want "metric ghost_summed_total is emitted but absent from the reconcile surface"
}
