// Package load is the ledger fixture's reconcile side.
package load

// Reconcile checks the client-side ledger against scraped counters.
func Reconcile(m map[string]int64) bool {
	if m["jobs_done_total"] < 0 {
		return false
	}
	if m["undocumented_total"] < 0 {
		return false
	}
	return m["vanished_metric_total"] >= 0 // want "reconcile references metric vanished_metric_total that no annotated /metrics writer emits"
}
