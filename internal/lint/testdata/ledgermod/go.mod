module spp1000

go 1.22
