// Command tool is a simlint fixture: cmd/* packages are exempt host
// tooling, so nothing here is a finding.
package main

import (
	"context"
	"fmt"
	"time"
)

func main() {
	go func() {}()
	fmt.Println(time.Now(), run(context.Background()))
}

func run(ctx context.Context) int {
	_ = context.TODO()
	return 1
}
