// Package resultcache is the allocfree inventory fixture: it declares
// the function RequiredHotpaths lists for internal/resultcache but
// without the //simlint:hotpath annotation, so the analyzer must insist
// the gate be restored.
package resultcache

// Cache is a stand-in for the daemon's result cache.
type Cache struct{}

// Lookup exists but has lost its hotpath annotation.
func (c *Cache) Lookup(key string) (string, bool) { // want "Cache.Lookup is a declared hot path"
	return "", false
}
