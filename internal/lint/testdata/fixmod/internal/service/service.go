// Package service is a simlint fixture: context-flow violations in a
// host package.
package service

import "context"

// Step is the context-free variant of StepCtx.
func Step(n int) int { return n }

// StepCtx is the cancellable variant of Step.
func StepCtx(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Run has a ctx and must keep it flowing.
func Run(ctx context.Context, n int) int {
	n = StepCtx(context.TODO(), n) // want `context\.TODO\(\) inside a function`
	root := context.Background()   // want `context\.Background\(\) inside a function`
	_ = root
	return Step(n) // want `drops the caller's ctx`
}

// Flows passes its ctx on everywhere: no finding.
func Flows(ctx context.Context, n int) int {
	return StepCtx(ctx, n)
}

// Free has no ctx parameter: minting a root context is legal.
func Free(n int) int {
	return StepCtx(context.Background(), n)
}
