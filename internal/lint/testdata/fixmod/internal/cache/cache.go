// Package cache is a simlint fixture: every determinism violation a
// sim-core package can commit, plus the //simlint:allow escape hatch.
package cache

import (
	"math/rand"
	"time"
)

// Bad trips each determinism check once.
func Bad(m map[int]int) int {
	t := time.Now()           // want `wall-clock call time\.Now`
	time.Sleep(time.Since(t)) // want `time\.Sleep` `time\.Since`
	go func() {}()            // want `goroutine spawned in sim-core`
	n := rand.Intn(8)         // want `math/rand in sim-core`
	for k := range m {        // want `map iteration order is nondeterministic`
		n += k
	}
	return n
}

// SliceRange iterates a slice: ordered, no finding.
func SliceRange(s []int) int {
	n := 0
	for _, v := range s {
		n += v
	}
	return n
}

// Allowed shows the trailing-comment escape hatch.
func Allowed() int64 {
	return time.Now().UnixNano() //simlint:allow determinism fixture: annotated wall-clock read
}

// AllowedAbove shows the directive on the line above.
func AllowedAbove(m map[int]int) int {
	n := 0
	//simlint:allow determinism fixture: order feeds a commutative sum only
	for k := range m {
		n += k
	}
	return n
}
