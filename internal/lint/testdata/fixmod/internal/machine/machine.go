// Package machine is a simlint fixture: wall-clock types and
// Cycles/Duration mixing in a sim-core package.
package machine

import (
	"time"

	"spp1000/internal/sim"
)

// Latency holds a wall-clock duration where cycles belong.
type Latency struct {
	D time.Duration // want `wall-clock type time\.Duration`
}

// Stamp is wall-clock state inside the simulated machine.
var Stamp time.Time // want `wall-clock type time\.Time`

// FromWall converts wall-clock time into virtual time.
func FromWall(d time.Duration) sim.Cycles { // want `wall-clock type time\.Duration`
	return sim.Cycles(d) // want `conversion of time\.Duration to sim\.Cycles`
}

// ToWall converts virtual time back to wall-clock time.
func ToWall(c sim.Cycles) time.Duration { // want `wall-clock type time\.Duration`
	return time.Duration(c) // want `conversion of sim\.Cycles to time\.Duration` `wall-clock type time\.Duration`
}

// ViaAlias converts through the legacy sim.Time alias: same finding.
func ViaAlias(d time.Duration) sim.Time { // want `wall-clock type time\.Duration`
	return sim.Time(d) // want `conversion of time\.Duration to sim\.Cycles`
}

// PureCycles stays inside the unit system: no finding.
func PureCycles(c sim.Cycles) sim.Cycles {
	return c*2 + sim.Cycles(100)
}
