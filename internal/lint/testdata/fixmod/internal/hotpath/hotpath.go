// Package hotpath is the allocfree fixture: annotated functions whose
// bodies the analyzer gates against compiler-reported heap escapes.
package hotpath

import "fmt"

// Tick is escape-free: the annotation is satisfiable.
//
//simlint:hotpath
func Tick(n int) int {
	return n + 1
}

// Boxed escapes its argument into an interface — the canonical hot-path
// regression the gate exists to catch.
//
//simlint:hotpath
func Boxed(n int) any {
	return n // want "heap escape in hot path Boxed"
}

// Logged escapes through fmt boxing, but the line carries a reasoned
// allow, so the finding is suppressed.
//
//simlint:hotpath
func Logged(n int) string {
	//simlint:allow allocfree fixture: diagnostic formatting accepted on this path
	return fmt.Sprintf("%d", n)
}

// Cold allocates freely: unannotated functions are out of scope even in
// a package that has hot paths.
func Cold(n int) *int {
	return &n
}
