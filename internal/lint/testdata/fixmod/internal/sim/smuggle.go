package sim

// RunPartitions tries to smuggle PDES-style worker goroutines into the
// kernel itself: the pdes class exemption is per-package, so sim-core
// still fails.
func RunPartitions(parts []func()) {
	done := make(chan struct{}, len(parts))
	for _, p := range parts {
		p := p
		go func() { // want `goroutine spawned in sim-core`
			p()
			done <- struct{}{}
		}()
	}
	for range parts {
		<-done
	}
}
