// Package sim is a miniature stand-in for the real simulation kernel:
// the fixture module shares this module's import path, so the simtime
// analyzer resolves spp1000/internal/sim.Cycles against this type.
package sim

// Cycles is virtual time in CPU cycles.
type Cycles int64

// Time is the legacy alias of Cycles.
type Time = Cycles
