// Package counters is a simlint fixture: the nil-safe handle contract
// the counterhandle analyzer enforces inside the counters package.
package counters

// Counter is a nil-safe handle: the nil pointer is the disabled sink.
type Counter struct{ v int64 }

// Inc is properly guarded (wrap polarity).
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Value is properly guarded (early-return polarity).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// AddClamped is properly guarded with a compound condition.
func (c *Counter) AddClamped(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v += n
}

// Unguarded dereferences the receiver without a nil guard.
func (c *Counter) Unguarded() int64 { // want `must open with a nil-receiver guard`
	return c.v
}

// Copying uses a value receiver, splitting the handle from its registry.
func (c Counter) Copying() int64 { // want `must use a pointer receiver`
	return c.v
}

// reset is unexported: internal helpers may assume a live receiver.
func (c *Counter) reset() { c.v = 0 }

// Group hands out counters; the nil group hands out nil counters.
type Group struct{ m map[string]*Counter }

// Counter is properly guarded.
func (g *Group) Counter(name string) *Counter {
	if g == nil {
		return nil
	}
	c, ok := g.m[name]
	if !ok {
		c = &Counter{}
		g.m[name] = c
	}
	return c
}
