// Package runner is a simlint fixture: host-side packages may spawn
// goroutines and range maps, but wall-clock reads still need a reason.
package runner

import "time"

// Fan spawns a goroutine and ranges a map: both legal on the host side.
func Fan(m map[int]int) int {
	done := make(chan int, 1)
	go func() { done <- 1 }()
	n := <-done
	for k := range m {
		n += k
	}
	return n
}

// Stamp reads the wall clock without a justification.
func Stamp() time.Time {
	return time.Now() // want `wall-clock call time\.Now`
}

// StampAllowed reads the wall clock with one.
func StampAllowed() time.Time {
	//simlint:allow determinism fixture: host-side lifecycle stamp
	return time.Now()
}
