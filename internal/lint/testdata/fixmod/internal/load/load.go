// Package load is a simlint fixture: a sim-independent package whose
// import of the sim-pure rng leaf is legal while a kernel import is
// not.
package load

import (
	"spp1000/internal/rng" // sim-pure leaf: legal
	"spp1000/internal/sim" // want `sim-core import spp1000/internal/sim in sim-independent package`
)

// Gen uses both imports.
func Gen(c sim.Cycles) int { return rng.Next(nil) + int(c) }
