// Package memsys is a simlint fixture: how components outside the
// counters package may and may not touch counter handles.
package memsys

import "spp1000/internal/counters"

// Copy dereferences a handle, which panics on the nil disabled sink.
func Copy(c *counters.Counter) int64 {
	cp := *c // want `dereferencing counters handle \*Counter`
	return cp.Value()
}

// Read goes through the nil-safe accessor: fine.
func Read(c *counters.Counter) int64 {
	c.Inc()
	return c.Value()
}
