// Package store is a simlint fixture: a sim-independent package that
// illegally imports the simulation kernel.
package store

import (
	"spp1000/internal/runner" // host import: legal
	"spp1000/internal/sim"    // want `sim-core import spp1000/internal/sim in sim-independent package`
)

// Keep measures nothing; it just uses both imports.
func Keep(c sim.Cycles, m map[int]int) int { return runner.Fan(m) + int(c) }
