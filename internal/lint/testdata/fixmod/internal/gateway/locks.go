// Package gateway is the lockorder fixture: an ABBA cycle between two
// struct-field mutexes, and a reacquisition self-deadlock through a
// call chain.
package gateway

import "sync"

// Hub holds two locks that Join and Leave take in opposite orders.
type Hub struct {
	mu  sync.Mutex
	reg sync.Mutex
}

// Join acquires mu then reg.
func (h *Hub) Join() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.reg.Lock() // want "lock-order cycle among \\{Hub.mu, Hub.reg\\}"
	defer h.reg.Unlock()
}

// Leave acquires reg then mu — the reversed order that closes the cycle.
func (h *Hub) Leave() {
	h.reg.Lock()
	defer h.reg.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
}

// Pool reacquires its own lock through a helper call.
type Pool struct {
	mu sync.Mutex
}

// Reap holds mu across a call to scan, which takes mu again.
func (p *Pool) Reap() {
	p.mu.Lock()
	p.scan() // want "Pool.mu acquired while already held"
	p.mu.Unlock()
}

func (p *Pool) scan() {
	p.mu.Lock()
	defer p.mu.Unlock()
}

// Ordered takes the same two locks as Join, in the same order: a
// consistent order on its own is not a finding.
type Ordered struct {
	a sync.Mutex
	b sync.Mutex
}

// Both nests b inside a, and nothing ever takes them the other way.
func (o *Ordered) Both() {
	o.a.Lock()
	defer o.a.Unlock()
	o.b.Lock()
	defer o.b.Unlock()
}
