// Package rng is a simlint fixture: a sim-pure leaf that illegally
// grows an import from the module, voiding its purity exemption.
package rng

import "spp1000/internal/runner" // want `module import spp1000/internal/runner in sim-pure leaf package`

// Next uses the illegal import.
func Next(m map[int]int) int { return runner.Fan(m) }
