// Package parsim is a simlint fixture for the pdes class: goroutines
// and channels are this layer's reason to exist, so spawning is legal —
// but the other determinism invariants bind exactly as in sim-core.
package parsim

import (
	"math/rand"
	"time"
)

// Windows runs partitions on worker goroutines: no finding.
func Windows(parts []func()) {
	done := make(chan struct{}, len(parts))
	for _, p := range parts {
		p := p
		go func() { // goroutines permitted in pdes packages
			p()
			done <- struct{}{}
		}()
	}
	for range parts {
		<-done
	}
}

// Bad trips every check that still applies to the pdes class.
func Bad(m map[int]int) int {
	t := time.Now()           // want `wall-clock call time\.Now`
	time.Sleep(time.Since(t)) // want `time\.Sleep` `time\.Since`
	n := rand.Intn(8)         // want `math/rand in pdes`
	for k := range m {        // want `map iteration order is nondeterministic`
		n += k
	}
	return n
}
