package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds an interprocedural lock graph over the host-class and
// PDES packages — the only classes allowed to hold sync.Mutex/RWMutex at
// all — and fails on cycles. An edge A→B means "B was acquired while A
// was held", either directly in one function body or through a call
// chain (the analyzer propagates each function's may-acquire set to its
// callers with a fixpoint, so Submit holding s.mu and calling into a
// helper that takes cache.mu produces the same edge as inlining would).
// Two goroutines traversing a cycle's edges in opposite orders is the
// classic ABBA deadlock; a self-edge is a reacquisition of a lock the
// goroutine already holds, which deadlocks on its own for sync.Mutex.
//
// The model is positional, not path-sensitive: acquisitions are
// processed in source order, `defer mu.Unlock()` keeps the lock held to
// the end of the function, a direct `mu.Unlock()` releases it at that
// statement, and function literals are analyzed as separate anonymous
// functions (their bodies usually run on other goroutines, so the
// enclosing held-set does not transfer). Lock identity is the declared
// field or package-level variable, not the runtime instance: every
// `sink.mu` in a loop is the same node, which is exactly the
// granularity a lock *order* is stated at. TryLock/TryRLock are ignored
// (a failed try cannot block), and RLock is treated as an acquisition
// like Lock — reader reentrancy still deadlocks against a queued
// writer.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "build the interprocedural sync.Mutex/RWMutex acquisition graph over host and pdes packages and fail on lock-order cycles",
	RunModule: runLockOrder,
}

type lockOpKind int

const (
	opAcquire lockOpKind = iota
	opRelease
	opCall
)

// lockOp is one event in a function's positional lock trace.
type lockOp struct {
	kind   lockOpKind
	lock   types.Object // opAcquire/opRelease: the mutex field or variable
	callee string       // opCall: types.Func.FullName of an in-module callee
	pos    token.Pos
}

// loFunc is one analyzed function: its key (FullName, or a synthetic
// name for function literals) and ordered lock trace.
type loFunc struct {
	key string
	ops []lockOp
}

// lockEdge records "to acquired while from held" at the earliest
// position that produces it.
type lockEdge struct {
	from, to types.Object
	pos      token.Pos
}

func runLockOrder(mp *ModulePass) error {
	funcs := make(map[string]*loFunc)
	display := make(map[types.Object]string)
	var keys []string

	addFunc := func(lf *loFunc) {
		funcs[lf.key] = lf
		keys = append(keys, lf.key)
	}
	for _, pkg := range mp.Pkgs {
		if pkg.Class != ClassHost && pkg.Class != ClassPDES {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				collectLockOps(pkg, obj.FullName(), fd.Body, display, addFunc)
			}
		}
	}
	sort.Strings(keys)

	// Fixpoint: may[f] = locks f can acquire directly or through calls.
	may := make(map[string]map[types.Object]bool, len(funcs))
	for key, lf := range funcs {
		set := make(map[types.Object]bool)
		for _, op := range lf.ops {
			if op.kind == opAcquire {
				set[op.lock] = true
			}
		}
		may[key] = set
	}
	for changed := true; changed; {
		changed = false
		for _, key := range keys {
			for _, op := range funcs[key].ops {
				if op.kind != opCall {
					continue
				}
				for l := range may[op.callee] {
					if !may[key][l] {
						may[key][l] = true
						changed = true
					}
				}
			}
		}
	}

	// Simulate each trace to produce edges, keeping the earliest
	// position per (from, to) pair for deterministic reporting.
	edges := make(map[[2]types.Object]token.Pos)
	addEdge := func(from, to types.Object, pos token.Pos) {
		k := [2]types.Object{from, to}
		if old, ok := edges[k]; !ok || pos < old {
			edges[k] = pos
		}
	}
	for _, key := range keys {
		var held []types.Object
		for _, op := range funcs[key].ops {
			switch op.kind {
			case opAcquire:
				for _, h := range held {
					addEdge(h, op.lock, op.pos)
				}
				held = append(held, op.lock)
			case opRelease:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == op.lock {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case opCall:
				for l := range may[op.callee] {
					for _, h := range held {
						addEdge(h, l, op.pos)
					}
				}
			}
		}
	}

	// Strongly connected components of the lock graph: every SCC with
	// more than one lock, or with a self-edge, is a deadlockable cycle.
	// One finding per cycle, at the earliest edge inside it.
	nodes, succ := lockGraph(edges, display)
	for _, scc := range tarjanSCC(nodes, succ) {
		inSCC := make(map[types.Object]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		var best *lockEdge
		for k, pos := range edges {
			if !inSCC[k[0]] || !inSCC[k[1]] {
				continue
			}
			if len(scc) == 1 && k[0] != k[1] {
				continue
			}
			if best == nil || pos < best.pos {
				best = &lockEdge{from: k[0], to: k[1], pos: pos}
			}
		}
		if best == nil {
			continue // single node, no self-edge
		}
		if len(scc) == 1 {
			mp.Reportf(best.pos, "%s acquired while already held (self-deadlock)", display[best.from])
			continue
		}
		names := make([]string, 0, len(scc))
		for _, n := range scc {
			names = append(names, display[n])
		}
		sort.Strings(names)
		mp.Reportf(best.pos, "lock-order cycle among {%s}: acquiring %s while holding %s here reverses the order used elsewhere",
			strings.Join(names, ", "), display[best.to], display[best.from])
	}
	return nil
}

// collectLockOps walks body in source order recording lock operations and
// in-module calls into a new loFunc registered via add. Function literals
// become separate anonymous functions (key derived from the parent's)
// rather than inheriting the parent's held-set.
func collectLockOps(pkg *Package, key string, body *ast.BlockStmt, display map[types.Object]string, add func(*loFunc)) {
	lf := &loFunc{key: key}
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	litCount := 0
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			litCount++
			collectLockOps(pkg, fmt.Sprintf("%s$%d", key, litCount), x.Body, display, add)
			return false
		case *ast.CallExpr:
			fn := calleeFunc(pkg.Info, x)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == "sync" {
				var kind lockOpKind
				switch fn.Name() {
				case "Lock", "RLock":
					kind = opAcquire
				case "Unlock", "RUnlock":
					if deferred[x] {
						return true // defer Unlock: held to end of function
					}
					kind = opRelease
				default:
					return true // TryLock and friends cannot block
				}
				lock, name := lockIdentity(pkg, x)
				if lock == nil {
					return true
				}
				if _, ok := display[lock]; !ok {
					display[lock] = name
				}
				lf.ops = append(lf.ops, lockOp{kind: kind, lock: lock, pos: x.Pos()})
				return true
			}
			if strings.HasPrefix(fn.Pkg().Path(), ModulePath) {
				lf.ops = append(lf.ops, lockOp{kind: opCall, callee: fn.FullName(), pos: x.Pos()})
			}
			return true
		}
		return true
	})
	add(lf)
}

// lockIdentity resolves the receiver of a sync.(RW)Mutex method call to
// the declared object that names the lock — a struct field (`s.mu` in
// any method is one node) or a package-level variable — plus a display
// name for diagnostics. Receivers it cannot name statically (map or
// slice elements, interface values, embedded-mutex method sets) resolve
// to nil and are ignored.
func lockIdentity(pkg *Package, call *ast.CallExpr) (types.Object, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	recv := ast.Unparen(sel.X)
	if u, ok := recv.(*ast.UnaryExpr); ok && u.Op == token.AND {
		recv = ast.Unparen(u.X)
	}
	switch x := recv.(type) {
	case *ast.SelectorExpr:
		if s := pkg.Info.Selections[x]; s != nil {
			obj := s.Obj()
			name := obj.Name()
			t := pkg.Info.TypeOf(x.X)
			for {
				p, ok := types.Unalias(t).(*types.Pointer)
				if !ok {
					break
				}
				t = p.Elem()
			}
			if named, ok := types.Unalias(t).(*types.Named); ok {
				name = named.Obj().Name() + "." + name
			}
			return obj, name
		}
		// Qualified identifier: pkgname.Var.
		if obj := pkg.Info.Uses[x.Sel]; obj != nil && isMutexType(obj.Type()) {
			return obj, x.Sel.Name
		}
		return nil, ""
	case *ast.Ident:
		obj := pkg.Info.Uses[x]
		if obj == nil || !isMutexType(obj.Type()) {
			// An ident of non-mutex type means an embedded-mutex method
			// call (s.Lock()); the receiver variable is not a stable
			// lock identity, so skip it.
			return nil, ""
		}
		name := x.Name
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			name = obj.Pkg().Name() + "." + name
		}
		return obj, name
	}
	return nil, ""
}

// isMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// lockGraph flattens the edge map into a deterministic adjacency list
// ordered by display name.
func lockGraph(edges map[[2]types.Object]token.Pos, display map[types.Object]string) ([]types.Object, map[types.Object][]types.Object) {
	nodeSet := make(map[types.Object]bool)
	succ := make(map[types.Object][]types.Object)
	for k := range edges {
		nodeSet[k[0]] = true
		nodeSet[k[1]] = true
		succ[k[0]] = append(succ[k[0]], k[1])
	}
	nodes := make([]types.Object, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	byName := func(a, b types.Object) bool { return display[a] < display[b] }
	sort.Slice(nodes, func(i, j int) bool { return byName(nodes[i], nodes[j]) })
	for _, ss := range succ {
		sort.Slice(ss, func(i, j int) bool { return byName(ss[i], ss[j]) })
	}
	return nodes, succ
}

// tarjanSCC returns the strongly connected components of the graph in a
// deterministic order (nodes are visited in the given order).
func tarjanSCC(nodes []types.Object, succ map[types.Object][]types.Object) [][]types.Object {
	index := make(map[types.Object]int)
	lowlink := make(map[types.Object]int)
	onStack := make(map[types.Object]bool)
	var stack []types.Object
	var sccs [][]types.Object
	next := 0

	var strongconnect func(v types.Object)
	strongconnect = func(v types.Object) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}
		if lowlink[v] == index[v] {
			var scc []types.Object
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}
