package lint

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSONDiagnostic is the machine-readable form of one finding — the
// `simlint -json` wire schema. Field names are part of the tool's
// contract (CI turns them into GitHub annotations; see docs/LINT.md):
//
//	[
//	  {"file": "internal/sim/kernel.go", "line": 204, "col": 9,
//	   "analyzer": "allocfree", "message": "heap escape in hot path ..."}
//	]
//
// File paths are emitted exactly as the loader resolved them (absolute,
// unless the driver shortened them relative to its working directory).
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// EncodeJSON writes diags to w as an indented JSON array, empty
// findings included (an empty run encodes as []).
func EncodeJSON(w io.Writer, diags []Diagnostic) error {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, JSONDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// DecodeJSON reads a `simlint -json` array back into diagnostics — the
// inverse of EncodeJSON, used by the driver's -annotate mode.
func DecodeJSON(r io.Reader) ([]Diagnostic, error) {
	var in []JSONDiagnostic
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("simlint json: %w", err)
	}
	diags := make([]Diagnostic, 0, len(in))
	for _, j := range in {
		d := Diagnostic{Analyzer: j.Analyzer, Message: j.Message}
		d.Pos.Filename = j.File
		d.Pos.Line = j.Line
		d.Pos.Column = j.Col
		diags = append(diags, d)
	}
	return diags, nil
}
