package lint

import "strings"

// ModulePath is the import path of this module; the analyzers key their
// type matching (sim.Cycles, counters handles) and the package
// classification on it.
const ModulePath = "spp1000"

// Class partitions the module's packages by which invariants apply.
type Class int

const (
	// ClassExempt packages (cmd/*, examples/*, and anything outside the
	// classified lists) are host tooling: no analyzer applies.
	ClassExempt Class = iota
	// ClassHost packages run on the host side of the engine (worker
	// pools, the daemon, caches). They may spawn goroutines and iterate
	// maps, but wall-clock reads must be annotated and contexts must
	// flow (determinism's wall-clock check and ctxflow apply).
	ClassHost
	// ClassSimCore packages execute inside, or render the output of, the
	// deterministic simulation. Every analyzer applies in full.
	ClassSimCore
	// ClassPDES packages coordinate concurrent execution of sim-core
	// kernels (the parallel-discrete-event layer). Goroutines and
	// channels are their reason to exist, so the no-goroutine rule does
	// not apply — but their scheduling decisions feed simulator output,
	// so the other determinism invariants (no wall-clock reads, no
	// math/rand, no map iteration) bind exactly as in sim-core.
	ClassPDES
)

// String names the class for diagnostics and docs.
func (c Class) String() string {
	switch c {
	case ClassHost:
		return "host"
	case ClassSimCore:
		return "sim-core"
	case ClassPDES:
		return "pdes"
	default:
		return "exempt"
	}
}

// SimCorePackages lists the module-relative import paths (each covering
// its subtree) classified ClassSimCore: the packages whose execution or
// output must be bit-deterministic because the paper's cycle counts and
// the serial-vs-parallel byte-identical guarantee depend on them.
var SimCorePackages = []string{
	"internal/sim",
	"internal/machine",
	"internal/cache",
	"internal/directory",
	"internal/sci",
	"internal/ring",
	"internal/xbar",
	"internal/memsys",
	"internal/threads",
	"internal/apps",
	"internal/pvm",
	"internal/rng",
	"internal/topology",
	"internal/perfmodel",
	"internal/fft",
	"internal/morton",
	"internal/c90",
	"internal/cxpa",
	"internal/directives",
	"internal/stats",
	"internal/counters",
	"internal/experiments",
	"internal/ablation",
	"internal/microbench",
	"internal/trace",
	"internal/snapshot",
}

// PDESPackages lists the module-relative import paths (each covering
// its subtree) classified ClassPDES: the coordinator layer that runs
// sim-core kernels on concurrent goroutines while keeping their output
// byte-identical.
var PDESPackages = []string{
	"internal/parsim",
}

// HostPackages lists the module-relative import paths (each covering its
// subtree) classified ClassHost: legitimately concurrent, wall-clock
// adjacent host machinery.
var HostPackages = []string{
	"internal/runner",
	"internal/service",
	"internal/resultcache",
	"internal/store",
	"internal/faultinject",
	"internal/gateway",
	"internal/load",
	"internal/lint",
}

// SimIndependentPackages lists the module-relative import paths (each
// covering its subtree) that the deps analyzer keeps free of sim-core
// imports: durable/host infrastructure that must never depend on the
// simulation kernel. They are also ClassHost (listed above), so the
// host-class invariants apply on top of the import ban.
var SimIndependentPackages = []string{
	"internal/store",
	"internal/faultinject",
	"internal/gateway",
	"internal/load",
}

// SimPureLeaves lists sim-core-classified packages that are pure
// computational leaves — deterministic functions of their arguments,
// importing nothing from the module — which sim-independent packages
// may import without breaking the one-directional ban. Today that is
// only internal/rng: the load harness reuses the simulator's
// deterministic generator for replayable workloads, which is safe
// precisely because rng has no edges back into the kernel. The deps
// analyzer enforces the purity claim itself (a leaf growing a module
// import is reported at the leaf).
var SimPureLeaves = []string{
	"internal/rng",
}

// RequiredHotpaths maps module-relative package paths to the functions
// (named "Type.Method" for methods on Type's base type, or a bare
// function name) that MUST carry a //simlint:hotpath annotation: the
// measurement-critical paths whose zero-allocation discipline the
// paper's cycle-accurate numbers rest on. The allocfree analyzer fails
// if any listed function exists without the annotation (or has been
// renamed away), so the escape gate cannot be turned off by deleting
// one comment.
var RequiredHotpaths = map[string][]string{
	// The event-kernel inner loop: pop, clock advance, direct Proc
	// resume or callback dispatch — 0 allocs/event since PR 1.
	"internal/sim": {
		"Kernel.Run", "Kernel.RunUntil", "Kernel.atProc", "Kernel.resumeProc",
		"eventHeap.push", "eventHeap.pop", "Proc.Delay",
	},
	// The counters-disabled path: a nil-receiver branch and nothing
	// else (PR 3's 0-alloc contract).
	"internal/counters": {"Counter.Inc", "Counter.Add", "Histogram.Observe"},
	// The PDES stripe worker body: runs once per partition per window.
	"internal/parsim": {"Coordinator.runPart"},
	// The daemon's cache hot path: a hash lookup answering repeat
	// submissions.
	"internal/resultcache": {"Cache.Lookup"},
}

// MetricsEmitterPackages lists the module-relative package paths whose
// /metrics writers define the service's metric vocabulary. The ledger
// analyzer requires each to carry at least one //simlint:metrics-writer
// annotation and cross-checks every metric name those writers emit.
var MetricsEmitterPackages = []string{
	"internal/service",
	"internal/gateway",
}

// MetricsReconcilePackage is the module-relative path of the load
// harness holding the client-vs-server reconcile equations — the other
// side of the metrics ledger.
const MetricsReconcilePackage = "internal/load"

// MetricsPrefixes are the wire-format namespaces stripped when matching
// metric names across the ledger (the service emits sppd_*, the gateway
// re-emits cluster sums as sppgw_cluster_* and its own counters as
// sppgw_*).
var MetricsPrefixes = []string{"sppgw_cluster_", "sppgw_backend_", "sppgw_", "sppd_"}

// SimPureLeaf reports whether the full import path is one of the
// SimPureLeaves (or in their subtrees).
func SimPureLeaf(pkgPath string) bool {
	rel, ok := strings.CutPrefix(pkgPath, ModulePath+"/")
	if !ok {
		return false
	}
	for _, p := range SimPureLeaves {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// SimIndependent reports whether the full import path is one of the
// SimIndependentPackages (or in their subtrees).
func SimIndependent(pkgPath string) bool {
	rel, ok := strings.CutPrefix(pkgPath, ModulePath+"/")
	if !ok {
		return false
	}
	for _, p := range SimIndependentPackages {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// Classify maps a full import path to its Class. Packages outside the
// module, under cmd/ or examples/, or in neither list are ClassExempt.
func Classify(pkgPath string) Class {
	rel, ok := strings.CutPrefix(pkgPath, ModulePath+"/")
	if !ok {
		return ClassExempt
	}
	if strings.HasPrefix(rel, "cmd/") || strings.HasPrefix(rel, "examples/") {
		return ClassExempt
	}
	for _, p := range SimCorePackages {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return ClassSimCore
		}
	}
	for _, p := range PDESPackages {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return ClassPDES
		}
	}
	for _, p := range HostPackages {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return ClassHost
		}
	}
	return ClassExempt
}
