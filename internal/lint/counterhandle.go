package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// countersPkgPath is the import path of the PMU-style counter subsystem.
const countersPkgPath = ModulePath + "/internal/counters"

// handleTypes are the counters types whose nil pointer is the documented
// disabled sink: every exported method must be a pointer-receiver method
// that begins with a nil-receiver guard, so the disabled path stays a
// single branch with zero allocations.
var handleTypes = map[string]bool{
	"Counter": true, "Histogram": true, "Group": true, "Registry": true,
}

// CounterHandle enforces the internal/counters zero-alloc contract from
// both sides. Inside the counters package, every exported method on a
// handle type (Counter, Histogram, Group, Registry) must take a pointer
// receiver and open with a nil-receiver guard — a method added without
// the guard would panic the first machine built with counters disabled.
// Outside the package, dereferencing a handle pointer (*h) is flagged:
// it copies the handle (splitting its counts from the registry) and
// panics on the nil disabled sink; all access goes through the nil-safe
// methods.
var CounterHandle = &Analyzer{
	Name: "counterhandle",
	Doc:  "keep internal/counters handles nil-safe: guarded pointer-receiver methods inside, no handle dereferences outside",
	Run:  runCounterHandle,
}

func runCounterHandle(pass *Pass) error {
	if pass.Pkg.Class == ClassExempt {
		return nil
	}
	info := pass.Pkg.Info
	inCounters := pass.Pkg.PkgPath == countersPkgPath
	for _, f := range pass.Pkg.Files {
		if inCounters {
			for _, decl := range f.Decls {
				checkHandleMethod(pass, info, decl)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			star, ok := n.(*ast.StarExpr)
			if !ok || inCounters {
				return true
			}
			tv, ok := info.Types[star.X]
			if !ok || !tv.IsValue() {
				return true
			}
			ptr, ok := types.Unalias(tv.Type).(*types.Pointer)
			if !ok {
				return true
			}
			if named, ok := types.Unalias(ptr.Elem()).(*types.Named); ok &&
				named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == countersPkgPath &&
				handleTypes[named.Obj().Name()] {
				pass.Reportf(star.Pos(), "dereferencing counters handle *%s copies it and panics on the nil disabled sink: use its nil-safe methods", named.Obj().Name())
			}
			return true
		})
	}
	return nil
}

// checkHandleMethod reports exported handle methods that break the
// nil-safe pattern: value receivers, or bodies that do not open with a
// nil-receiver guard.
func checkHandleMethod(pass *Pass, info *types.Info, decl ast.Decl) {
	fd, ok := decl.(*ast.FuncDecl)
	if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() {
		return
	}
	recvType := info.TypeOf(fd.Recv.List[0].Type)
	if recvType == nil {
		return
	}
	ptr, isPtr := types.Unalias(recvType).(*types.Pointer)
	var named *types.Named
	if isPtr {
		named, _ = types.Unalias(ptr.Elem()).(*types.Named)
	} else {
		named, _ = types.Unalias(recvType).(*types.Named)
	}
	if named == nil || !handleTypes[named.Obj().Name()] {
		return
	}
	if !isPtr {
		pass.Reportf(fd.Pos(), "exported method %s.%s on a nil-safe handle must use a pointer receiver", named.Obj().Name(), fd.Name.Name)
		return
	}
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return // receiver unnamed: the body cannot dereference it
	}
	if fd.Body == nil || !startsWithNilGuard(fd.Body, names[0].Name) {
		pass.Reportf(fd.Pos(), "exported method (*%s).%s must open with a nil-receiver guard: the nil handle is the disabled sink", named.Obj().Name(), fd.Name.Name)
	}
}

// startsWithNilGuard reports whether the body's first statement is an if
// whose condition compares the receiver against nil (either polarity,
// possibly inside a larger && / || condition).
func startsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok {
		return false
	}
	return condComparesNil(ifStmt.Cond, recv)
}

func condComparesNil(e ast.Expr, recv string) bool {
	bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.EQL, token.NEQ:
		return isIdent(bin.X, recv) && isIdent(bin.Y, "nil") ||
			isIdent(bin.X, "nil") && isIdent(bin.Y, recv)
	case token.LAND, token.LOR:
		return condComparesNil(bin.X, recv) || condComparesNil(bin.Y, recv)
	}
	return false
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}
