package load

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one parsed snapshot of a daemon's /metrics endpoint:
// metric name (prefix already stripped) → value. Counters are integral
// in the wire format, so deltas of counters compare exactly.
type Metrics map[string]float64

// ParseMetrics parses the plaintext `name value` metrics format shared
// by sppd and sppgw. Only lines whose name starts with prefix are kept,
// with the prefix stripped; an empty prefix keeps every line under its
// full name. Unparsable lines are skipped — the format has no comments
// today, but the parser must not break if some are ever added.
func ParseMetrics(data string, prefix string) Metrics {
	m := make(Metrics)
	for _, line := range strings.Split(data, "\n") {
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if prefix != "" {
			name, ok = strings.CutPrefix(name, prefix)
			if !ok {
				continue
			}
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue
		}
		m[name] = f
	}
	return m
}

// Scrape fetches baseURL+"/metrics" and parses it with ParseMetrics.
func Scrape(client *http.Client, baseURL, prefix string) (Metrics, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(strings.TrimSuffix(baseURL, "/") + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s/metrics: %s", baseURL, resp.Status)
	}
	return ParseMetrics(string(data), prefix), nil
}

// Prefixes the harness understands. A standalone sppd serves sppd_*
// counters; a sppgw gateway serves exact cluster totals as
// sppgw_cluster_* (sums over its live backends), which obey the same
// book-keeping identities.
const (
	// SppdPrefix strips the standalone daemon's metric namespace.
	SppdPrefix = "sppd_"
	// GatewayPrefix strips the gateway's summed cluster namespace.
	GatewayPrefix = "sppgw_cluster_"
)

// DetectPrefix picks the metric prefix for a target by probing its
// /metrics once: a gateway exposes sppgw_* lines, a standalone daemon
// sppd_* lines.
func DetectPrefix(client *http.Client, baseURL string) (string, error) {
	all, err := Scrape(client, baseURL, "")
	if err != nil {
		return "", err
	}
	for name := range all {
		if strings.HasPrefix(name, "sppgw_") {
			return GatewayPrefix, nil
		}
	}
	return SppdPrefix, nil
}

// Delta returns m - prev per metric name, over the union of keys
// (a name absent from one side counts as 0 there).
func (m Metrics) Delta(prev Metrics) Metrics {
	out := make(Metrics, len(m))
	for name, v := range m {
		out[name] = v - prev[name]
	}
	for name, v := range prev {
		if _, ok := m[name]; !ok {
			out[name] = -v
		}
	}
	return out
}

// Tally is the client's own book of what it observed during a run —
// the left-hand side of every reconciliation equation. All fields are
// derived purely from HTTP responses, never from the server's metrics.
type Tally struct {
	// SubmitOK200 counts submits answered 200 (job already terminal —
	// the dedup-of-a-done-job fast path).
	SubmitOK200 int `json:"submitOk200"`
	// SubmitAccepted202 counts submits answered 202 (fresh enqueue, or
	// joined a still-live job).
	SubmitAccepted202 int `json:"submitAccepted202"`
	// SubmitRejected503 counts submits answered 503 (queue full or
	// draining).
	SubmitRejected503 int `json:"submitRejected503"`
	// SubmitBad400 counts submits answered 400. These never reach the
	// job table: the daemon's books must not move for them.
	SubmitBad400 int `json:"submitBad400"`
	// DistinctAccepted counts distinct job keys across all 200/202
	// submit responses: the number of jobs that actually exist
	// server-side because of this run.
	DistinctAccepted int `json:"distinctAccepted"`
	// Done/Failed/Canceled/Timeout/Checkpointed count the distinct
	// accepted keys by their final polled status. They sum to
	// DistinctAccepted once every key has been polled to a terminal state.
	Done         int `json:"done"`
	Failed       int `json:"failed"`
	Canceled     int `json:"canceled"`
	Timeout      int `json:"timeout"`
	Checkpointed int `json:"checkpointed"`
	// Unexpected counts responses outside the run's contract — wrong
	// status codes, malformed response bodies, transport errors. Any
	// nonzero value fails reconciliation outright.
	Unexpected int `json:"unexpected"`
}

// Check is one reconciliation equation: a server-side quantity and the
// client-side value it must equal exactly.
type Check struct {
	// Name is the server metric (prefix-stripped) under test.
	Name string `json:"name"`
	// Want is the client-derived value.
	Want int64 `json:"want"`
	// Got is the server-derived value (a counter delta, or an absolute
	// gauge for Gauge checks).
	Got int64 `json:"got"`
	// Gauge marks checks against an end-of-run absolute gauge reading
	// rather than a before/after counter delta.
	Gauge bool `json:"gauge,omitempty"`
	// OK is Want == Got.
	OK bool `json:"ok"`
}

// Reconciliation is the verdict of holding the client's Tally against
// the server's before/after metric deltas.
type Reconciliation struct {
	// OK is true when every check passed and nothing unexpected was
	// observed client-side.
	OK     bool    `json:"ok"`
	Checks []Check `json:"checks"`
}

// Reconcile holds the client Tally against the server's metric deltas
// (and end-of-run gauges) and demands exact equality, line by line.
// The equations assume the harness's run discipline against a daemon
// that was not restarted mid-run and whose job table was not pruned
// (MaxJobs at least the run's distinct-key count):
//
//	submitted  = 200s + 202s + 503s      (400s never reach Submit)
//	rejected   = 503s
//	deduplicated = (200s + 202s) - distinct accepted keys
//	done / failed / canceled / timeout / checkpointed = distinct keys
//	                                     polled to that terminal status
//	done_cached, cache_hits, cache_coalesced = 0: with every key still
//	    in the job table, resubmits coalesce at the table (dedup), so
//	    the result cache is never consulted
//	jobs_queued = jobs_running = 0 at end (every key polled terminal)
//
// cache_misses_total is deliberately left out: the daemon consults the
// cache only on paths (pruned table, restart) the run discipline rules
// out, so its delta is also 0, but asserting it would couple the
// harness to cache-internals rather than the job-book contract.
func Reconcile(tally Tally, delta, final Metrics) Reconciliation {
	counter := func(name string, want int) Check {
		got := int64(delta[name])
		w := int64(want)
		return Check{Name: name, Want: w, Got: got, OK: got == w}
	}
	gauge := func(name string, want int) Check {
		got := int64(final[name])
		w := int64(want)
		return Check{Name: name, Want: w, Got: got, Gauge: true, OK: got == w}
	}
	accepted := tally.SubmitOK200 + tally.SubmitAccepted202
	r := Reconciliation{Checks: []Check{
		counter("jobs_submitted_total", accepted+tally.SubmitRejected503),
		counter("jobs_rejected_total", tally.SubmitRejected503),
		counter("jobs_deduplicated_total", accepted-tally.DistinctAccepted),
		counter("jobs_done_total", tally.Done),
		counter("jobs_failed_total", tally.Failed),
		counter("jobs_canceled_total", tally.Canceled),
		counter("jobs_timeout_total", tally.Timeout),
		counter("jobs_checkpointed_total", tally.Checkpointed),
		counter("jobs_done_cached_total", 0),
		counter("cache_hits_total", 0),
		counter("cache_coalesced_total", 0),
		gauge("jobs_queued", 0),
		gauge("jobs_running", 0),
	}}
	r.OK = tally.Unexpected == 0 &&
		tally.Done+tally.Failed+tally.Canceled+tally.Timeout+tally.Checkpointed == tally.DistinctAccepted
	for _, c := range r.Checks {
		r.OK = r.OK && c.OK
	}
	return r
}

// Failures renders the failed checks (and any client-side
// inconsistency) one per line, for error messages.
func (r Reconciliation) Failures() string {
	var b strings.Builder
	for _, c := range r.Checks {
		if c.OK {
			continue
		}
		kind := "delta"
		if c.Gauge {
			kind = "gauge"
		}
		fmt.Fprintf(&b, "%s: server %s %d, client wants %d\n", c.Name, kind, c.Got, c.Want)
	}
	return b.String()
}

// SortedNames returns the metric names of m in lexical order — report
// rendering must be deterministic.
func (m Metrics) SortedNames() []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
