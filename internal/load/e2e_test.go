// End-to-end reconcile: a real internal/service daemon (stub runner,
// real queue, dedup, cancel, deadline, and metric books) under the full
// workload mix, with the client's tallies held against the server's
// /metrics deltas — exact equality, run under -race by tier-1.
//
// This file may import internal/service: simlint's deps analyzer only
// classifies non-test sources, so the harness package itself stays
// sim-independent while its tests measure the real host stack.
package load_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"spp1000/internal/experiments"
	"spp1000/internal/load"
	"spp1000/internal/service"
)

// seedFor namespaces content addresses per class so a cancel can never
// land on a cold job's key — the same scheme cmd/sppload uses.
func seedFor(op load.Op) uint64 {
	switch op.Class {
	case load.OpHot:
		return 1 + uint64(op.Key)
	case load.OpCold:
		return 1_000_000 + uint64(op.Key)
	case load.OpCancel:
		return 2_000_000 + uint64(op.Key)
	case load.OpTimeout:
		return 3_000_000 + uint64(op.Key)
	}
	return 0
}

// testBody renders ops against the stub runner's vocabulary; timeout
// ops carry the impossible 1ns execution deadline the Body contract
// demands.
func testBody(op load.Op) []byte {
	timeout := ""
	if op.Class == load.OpTimeout {
		timeout = `,"timeout":"1ns"`
	}
	return []byte(fmt.Sprintf(
		`{"experiments":["tab1"],"options":{"seed":%d}%s}`, seedFor(op), timeout))
}

func TestE2EReconcileAgainstLiveService(t *testing.T) {
	srv := service.New(service.Config{
		Workers: 4,
		Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
			// A few hundred microseconds of honest work so cancels can
			// race submits both ways; respects ctx like the real runner.
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(time.Duration(200+spec.Options.Seed%7*100) * time.Microsecond):
				return fmt.Sprintf("result seed=%d", spec.Options.Seed), nil
			}
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	res, err := load.Run(load.Config{
		BaseURL: ts.URL,
		Mix:     load.DefaultMix(),
		Stages:  []load.Stage{{Workers: 1, Ops: 30}, {Workers: 4, Ops: 90}, {Workers: 8, Ops: 120}},
		HotKeys: 5,
		ZipfS:   1.1,
		Seed:    11,
		Body:    testBody,
		// Tight polling: the stub completes in microseconds.
		PollInterval: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	if !res.Reconcile.OK {
		t.Fatalf("client tallies do not equal server books:\n%stally: %+v\ndelta: %v",
			res.Reconcile.Failures(), res.Tally, res.ServerDelta)
	}

	// The mix must have actually exercised every path it claims to:
	// 240 ops at the default mix = 96 hot / 72 cold / 24 each of
	// cancel, timeout, malformed.
	tl := res.Tally
	if tl.SubmitBad400 != 0 {
		t.Fatalf("tally counted %d malformed submits as SubmitBad400; malformed ops are tracked per class", tl.SubmitBad400)
	}
	accepted := tl.SubmitOK200 + tl.SubmitAccepted202
	if accepted != 216 { // all but the 24 malformed
		t.Fatalf("accepted %d submits, want 216 (tally %+v)", accepted, tl)
	}
	if tl.DistinctAccepted != 5+72+24+24 {
		t.Fatalf("distinct keys %d, want 125 (5 hot + 72 cold + 24 cancel + 24 timeout)", tl.DistinctAccepted)
	}
	if accepted <= tl.DistinctAccepted {
		t.Fatalf("no dedup observed: accepted %d <= distinct %d", accepted, tl.DistinctAccepted)
	}
	if tl.Timeout != 24 {
		t.Fatalf("timeout-class jobs reached %d timeouts, want 24 (tally %+v)", tl.Timeout, tl)
	}
	// Cancels race the 4-worker pool: each lands canceled or, losing
	// the race, done — both legitimate, and the books must agree either
	// way (reconcile above already proved they do).
	if tl.Canceled+tl.Done != tl.DistinctAccepted-tl.Timeout-tl.Failed {
		t.Fatalf("status sum broken: %+v", tl)
	}
	if tl.Failed != 0 {
		t.Fatalf("%d jobs failed under a healthy stub", tl.Failed)
	}

	// Report shape: all five classes sampled, ladder filled in, and the
	// malformed class answered 400 every time.
	if len(res.Classes) != 5 {
		t.Fatalf("class stats for %d classes, want 5: %+v", len(res.Classes), res.Classes)
	}
	for _, cs := range res.Classes {
		if cs.Ops == 0 || cs.P50MS < 0 || cs.MaxMS < cs.P50MS {
			t.Fatalf("degenerate stats for %s: %+v", cs.Class, cs)
		}
		if cs.Class == "malformed" && cs.Outcomes["400"] != 24 {
			t.Fatalf("malformed outcomes %v, want 24 x 400", cs.Outcomes)
		}
	}
	if len(res.Stages) != 3 || res.SaturationOpsPerSec <= 0 {
		t.Fatalf("ladder: %+v (saturation %v)", res.Stages, res.SaturationOpsPerSec)
	}
	if res.Stages[0].Speedup != 1 {
		t.Fatalf("anchor rung speedup %v, want 1", res.Stages[0].Speedup)
	}
}

// The reconciler must also hold against a server whose queue rejects:
// a 1-deep queue with a slow single worker forces 503s, which the
// client books as rejected and the server's counter must match.
func TestE2EReconcileUnderRejection(t *testing.T) {
	srv := service.New(service.Config{
		Workers:    1,
		QueueDepth: 1,
		Run: func(ctx context.Context, spec experiments.Spec) (string, error) {
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(2 * time.Millisecond):
				return "slow", nil
			}
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	res, err := load.Run(load.Config{
		BaseURL: ts.URL,
		Mix:     load.Mix{Cold: 1},
		Stages:  []load.Stage{{Workers: 8, Ops: 64}},
		Seed:    5,
		Body:    testBody,
		// Wide spacing between polls keeps the queue saturated longer.
		PollInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reconcile.OK {
		t.Fatalf("reconcile under rejection:\n%stally: %+v", res.Reconcile.Failures(), res.Tally)
	}
	if res.Tally.SubmitRejected503 == 0 {
		t.Skip("queue never filled on this host; rejection path not exercised")
	}
}
