package load

import (
	"sort"
	"strings"
	"testing"
)

const sampleSppd = `sppd_jobs_submitted_total 12
sppd_jobs_deduplicated_total 3
sppd_jobs_queued 0
sppd_cache_hit_ratio 0.750
bogus line without value
sppd_unparsable notanumber
`

func TestParseMetricsStripsPrefix(t *testing.T) {
	m := ParseMetrics(sampleSppd, SppdPrefix)
	if len(m) != 4 {
		t.Fatalf("parsed %d metrics (%v), want 4", len(m), m)
	}
	if m["jobs_submitted_total"] != 12 || m["jobs_deduplicated_total"] != 3 ||
		m["jobs_queued"] != 0 || m["cache_hit_ratio"] != 0.75 {
		t.Fatalf("parsed %v", m)
	}
	if full := ParseMetrics(sampleSppd, ""); full["sppd_jobs_submitted_total"] != 12 {
		t.Fatalf("empty prefix should keep full names: %v", full)
	}
}

func TestDelta(t *testing.T) {
	before := Metrics{"a": 10, "b": 5, "gone": 2}
	after := Metrics{"a": 17, "b": 5, "new": 4}
	d := after.Delta(before)
	want := Metrics{"a": 7, "b": 0, "new": 4, "gone": -2}
	if len(d) != len(want) {
		t.Fatalf("delta %v, want %v", d, want)
	}
	for k, v := range want {
		if d[k] != v {
			t.Fatalf("delta[%s] = %v, want %v", k, d[k], v)
		}
	}
	names := d.SortedNames()
	if !sort.StringsAreSorted(names) || len(names) != 4 {
		t.Fatalf("SortedNames = %v", names)
	}
}

// A consistent tally/delta pair must reconcile green down every check.
func TestReconcileExact(t *testing.T) {
	tally := Tally{
		SubmitOK200:       30,
		SubmitAccepted202: 20,
		SubmitRejected503: 5,
		SubmitBad400:      10,
		DistinctAccepted:  18,
		Done:              12, Canceled: 3, Timeout: 3,
	}
	delta := Metrics{
		"jobs_submitted_total":    55, // 30+20+5; the ten 400s never reached Submit
		"jobs_rejected_total":     5,
		"jobs_deduplicated_total": 32, // 50 accepted - 18 distinct
		"jobs_done_total":         12,
		"jobs_failed_total":       0,
		"jobs_canceled_total":     3,
		"jobs_timeout_total":      3,
		"jobs_done_cached_total":  0,
		"cache_hits_total":        0,
		"cache_coalesced_total":   0,
		"cache_misses_total":      17, // deliberately unchecked
		"sim_cycles_total":        999999,
	}
	final := Metrics{"jobs_queued": 0, "jobs_running": 0}
	r := Reconcile(tally, delta, final)
	if !r.OK {
		t.Fatalf("reconcile failed:\n%s", r.Failures())
	}
	if len(r.Checks) != 13 {
		t.Fatalf("%d checks, want 13", len(r.Checks))
	}
}

// Every divergence — a drifted counter, a nonzero end gauge, a client
// inconsistency — must flip the verdict and name the failing line.
func TestReconcileCatchesDrift(t *testing.T) {
	tally := Tally{SubmitAccepted202: 4, DistinctAccepted: 4, Done: 4}
	delta := Metrics{
		"jobs_submitted_total": 4, "jobs_deduplicated_total": 0,
		"jobs_done_total": 4,
	}
	final := Metrics{"jobs_queued": 0, "jobs_running": 0}
	if r := Reconcile(tally, delta, final); !r.OK {
		t.Fatalf("baseline should pass:\n%s", r.Failures())
	}

	drifted := Metrics{
		"jobs_submitted_total": 5, "jobs_deduplicated_total": 0,
		"jobs_done_total": 4,
	}
	r := Reconcile(tally, drifted, final)
	if r.OK {
		t.Fatal("submitted drift passed")
	}
	if f := r.Failures(); !strings.Contains(f, "jobs_submitted_total") {
		t.Fatalf("failures = %q", f)
	}

	busy := Metrics{"jobs_queued": 1, "jobs_running": 0}
	if r := Reconcile(tally, delta, busy); r.OK {
		t.Fatal("nonzero end gauge passed")
	}

	bad := tally
	bad.Unexpected = 1
	if r := Reconcile(bad, delta, final); r.OK {
		t.Fatal("client-side unexpected passed")
	}

	unsettled := tally
	unsettled.Done = 3 // one distinct key never reached a terminal status
	if r := Reconcile(unsettled, Metrics{
		"jobs_submitted_total": 4, "jobs_deduplicated_total": 0, "jobs_done_total": 3,
	}, final); r.OK {
		t.Fatal("unsettled distinct key passed")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.5, 5}, {0.9, 9}, {0.99, 10}, {0.999, 10}, {0.1, 1}, {1, 10}} {
		if got := Percentile(s, tc.q); got != tc.want {
			t.Fatalf("p%g = %v, want %v", tc.q*100, got, tc.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty slice")
	}
	if got := Percentile([]float64{7}, 0.999); got != 7 {
		t.Fatalf("singleton p999 = %v", got)
	}
}

// The float-ceil regression: 0.9 × 500 = 450.00000000000006 in binary,
// so a naive ceil(q·n) lands on rank 451 and reports the wrong sample.
// Nearest-rank p90 of 500 samples is exactly the 450th (sorted[449]).
func TestPercentileFloatRankExact(t *testing.T) {
	s := make([]float64, 500)
	for i := range s {
		s[i] = float64(i + 1) // sample value == its 1-based rank
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{
		{0.9, 450},   // the overshooting product
		{0.5, 250},   // 0.5×500 is exact in binary; still rank 250
		{0.999, 500}, // p999 of 500 must be an observed sample (the max)
		{0.99, 495},
		{1, 500},
		{0.001, 1},
	} {
		if got := Percentile(s, tc.q); got != tc.want {
			t.Fatalf("p%g of 500 = %v, want %v", tc.q*100, got, tc.want)
		}
	}
}

// An unsorted slice must be quietly sorted into a copy: the quantile is
// computed over order statistics, and the caller's slice stays intact.
func TestPercentileUnsortedInput(t *testing.T) {
	s := []float64{9, 1, 7, 3, 5, 10, 2, 8, 6, 4}
	orig := append([]float64(nil), s...)
	if got := Percentile(s, 0.9); got != 9 {
		t.Fatalf("p90 of unsorted = %v, want 9", got)
	}
	for i := range s {
		if s[i] != orig[i] {
			t.Fatalf("caller slice mutated at %d: %v", i, s)
		}
	}
}
