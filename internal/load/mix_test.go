package load

import (
	"math"
	"testing"
)

func mustGen(t *testing.T, mix Mix, hotKeys int, zipfS float64, seed uint64) *Generator {
	t.Helper()
	g, err := NewGenerator(mix, hotKeys, zipfS, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Two generators with equal parameters must emit byte-identical op
// sequences — the determinism the LOAD_n.json replay promise rests on.
func TestGeneratorDeterministic(t *testing.T) {
	a := mustGen(t, DefaultMix(), 8, 1.1, 42)
	b := mustGen(t, DefaultMix(), 8, 1.1, 42)
	for i := 0; i < 5000; i++ {
		if oa, ob := a.Next(), b.Next(); oa != ob {
			t.Fatalf("op %d diverged: %+v vs %+v", i, oa, ob)
		}
	}
}

// A different seed must change the hot-key choices (the only sampled
// part) while leaving the class schedule identical (it is round-robin,
// not sampled).
func TestGeneratorSeedScopesOnlyHotKeys(t *testing.T) {
	a := mustGen(t, DefaultMix(), 32, 1.1, 1)
	b := mustGen(t, DefaultMix(), 32, 1.1, 2)
	hotDiffers := false
	for i := 0; i < 2000; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.Class != ob.Class {
			t.Fatalf("op %d class schedule diverged under seed change: %v vs %v", i, oa.Class, ob.Class)
		}
		if oa.Class == OpHot && oa.Key != ob.Key {
			hotDiffers = true
		}
		if oa.Class != OpHot && oa.Key != ob.Key {
			t.Fatalf("op %d non-hot key diverged under seed change: %+v vs %+v", i, oa, ob)
		}
	}
	if !hotDiffers {
		t.Fatal("seeds 1 and 2 produced identical hot-key streams")
	}
}

// The smooth-WRR schedule makes mix proportions exact, not asymptotic:
// every window of Total() consecutive ops contains each class exactly
// weight-many times.
func TestMixProportionsExact(t *testing.T) {
	for _, mix := range []Mix{
		DefaultMix(),
		{Hot: 7, Cold: 3, Timeout: 1},
		{Cold: 1},
		{Hot: 1, Cold: 1, Cancel: 1, Timeout: 1, Malformed: 1},
	} {
		g := mustGen(t, mix, 4, 1.0, 9)
		period := mix.Total()
		want := mix.weights()
		for window := 0; window < 40; window++ {
			var got [numClasses]int
			for i := 0; i < period; i++ {
				got[g.Next().Class]++
			}
			if got != want {
				t.Fatalf("mix %+v window %d: class counts %v, want %v", mix, window, got, want)
			}
		}
	}
}

// Cold, cancel, and timeout keys must each be a dense unique sequence
// 0,1,2,... — uniqueness is what lets the reconciler equate
// distinct-keys with submit counts.
func TestUniqueKeysPerClass(t *testing.T) {
	g := mustGen(t, DefaultMix(), 8, 1.1, 7)
	next := map[OpClass]int{}
	for i := 0; i < 3000; i++ {
		op := g.Next()
		switch op.Class {
		case OpCold, OpCancel, OpTimeout:
			if op.Key != next[op.Class] {
				t.Fatalf("op %d: %v key %d, want %d", i, op.Class, op.Key, next[op.Class])
			}
			next[op.Class]++
		case OpHot:
			if op.Key < 0 || op.Key >= 8 {
				t.Fatalf("hot key %d outside [0,8)", op.Key)
			}
		}
	}
	for _, c := range []OpClass{OpCold, OpCancel, OpTimeout} {
		if next[c] == 0 {
			t.Fatalf("class %v never emitted", c)
		}
	}
}

// At zipf s=1.1 the rank-1 hot key must dominate rank-2 and the tail —
// and at s=0 the distribution must flatten to uniform.
func TestZipfSkew(t *testing.T) {
	const n = 40000
	counts := func(s float64) []int {
		g := mustGen(t, Mix{Hot: 1}, 8, s, 3)
		c := make([]int, 8)
		for i := 0; i < n; i++ {
			c[g.Next().Key]++
		}
		return c
	}

	skewed := counts(1.1)
	if skewed[0] <= skewed[1] || skewed[0] <= 3*skewed[7] {
		t.Fatalf("zipf 1.1 not skewed: %v", skewed)
	}
	// Inverse-CDF over the exact mass function: the realized frequency
	// of rank 1 must be within 2% (absolute) of its analytic mass.
	sum := 0.0
	for k := 1; k <= 8; k++ {
		sum += 1 / math.Pow(float64(k), 1.1)
	}
	wantTop := (1 / sum)
	gotTop := float64(skewed[0]) / n
	if math.Abs(gotTop-wantTop) > 0.02 {
		t.Fatalf("rank-1 mass %.3f, analytic %.3f", gotTop, wantTop)
	}

	flat := counts(0)
	for k, c := range flat {
		if frac := float64(c) / n; math.Abs(frac-0.125) > 0.02 {
			t.Fatalf("zipf 0 rank %d mass %.3f, want ~0.125 (%v)", k+1, frac, flat)
		}
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("hot=40, cold=30,cancel=10,timeout=10,malformed=10")
	if err != nil {
		t.Fatal(err)
	}
	if m != DefaultMix() {
		t.Fatalf("parsed %+v, want %+v", m, DefaultMix())
	}
	if m, err = ParseMix("cold=5"); err != nil || m != (Mix{Cold: 5}) {
		t.Fatalf("cold-only: %+v, %v", m, err)
	}
	for _, bad := range []string{"", "hot", "hot=x", "hot=-1", "warm=3", "hot=0,cold=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestGeneratorRejectsBadParams(t *testing.T) {
	if _, err := NewGenerator(Mix{}, 8, 1, 1); err == nil {
		t.Fatal("zero mix accepted")
	}
	if _, err := NewGenerator(DefaultMix(), 0, 1, 1); err == nil {
		t.Fatal("hotKeys 0 accepted")
	}
	if _, err := NewGenerator(DefaultMix(), 8, -1, 1); err == nil {
		t.Fatal("negative zipf accepted")
	}
}
