package load

import (
	"encoding/json"
	"io"
	"math"
	"sort"
)

// ResultSchemaVersion is the LOAD_n.json schema generation; bump it
// whenever a field changes meaning (docs/BENCHMARKS.md documents every
// version).
const ResultSchemaVersion = 1

// Result is one load run's report — the LOAD_n.json artifact. Every
// latency is in milliseconds; every throughput in operations per
// second of wall time.
type Result struct {
	// SchemaVersion identifies the field layout (ResultSchemaVersion);
	// Provenance is stamped by the caller (cmd/sppload), not by Run,
	// because the harness itself must stay clock- and process-free.
	SchemaVersion int         `json:"schemaVersion"`
	Provenance    *Provenance `json:"provenance,omitempty"`

	// Target and Prefix identify the daemon and the metric namespace
	// the run reconciled against.
	Target string `json:"target"`
	Prefix string `json:"prefix"`

	// The generator parameters: replaying with these reproduces the
	// exact op sequence.
	Mix     Mix     `json:"mix"`
	HotKeys int     `json:"hotKeys"`
	ZipfS   float64 `json:"zipfS"`
	Seed    uint64  `json:"seed"`

	// Stages is the concurrency ladder with measured throughput,
	// speedup, and efficiency per rung; SaturationOpsPerSec is the best
	// rung's throughput.
	Stages              []StageResult `json:"stages"`
	SaturationOpsPerSec float64       `json:"saturationOpsPerSec"`

	// Classes is the per-class latency percentile and outcome table.
	Classes []ClassStats `json:"classes"`

	// Tally is the client's book; Reconcile is the verdict of holding
	// it against the server's metric deltas; ServerDelta preserves the
	// raw integral deltas for post-hoc reading.
	Tally       Tally            `json:"tally"`
	Reconcile   Reconciliation   `json:"reconcile"`
	ServerDelta map[string]int64 `json:"serverDelta"`
}

// Provenance attributes a LOAD_n.json to the code and moment that
// produced it, mirroring the BENCH_n.json schema-v2 stamp.
type Provenance struct {
	// GitCommit is the repository HEAD at run time ("" outside a
	// checkout).
	GitCommit string `json:"gitCommit,omitempty"`
	// RunTimestamp is RFC 3339 UTC.
	RunTimestamp string `json:"runTimestamp,omitempty"`
	// GoVersion is runtime.Version() of the harness binary.
	GoVersion string `json:"goVersion,omitempty"`
}

// StageResult is one measured ladder rung.
type StageResult struct {
	Workers     int     `json:"workers"`
	Ops         int     `json:"ops"`
	WallSeconds float64 `json:"wallSeconds"`
	OpsPerSec   float64 `json:"opsPerSec"`
	// Speedup is this rung's throughput over the first rung's (the
	// ladder convention starts at Workers=1, making this the classic
	// S(p) = T(1)/T(p) figure); Efficiency is Speedup/Workers. Both are
	// 0 when the anchor rung measured no throughput.
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// finishStages fills the speedup/efficiency columns from the first
// rung's throughput anchor.
func finishStages(stages []StageResult) {
	if len(stages) == 0 || stages[0].OpsPerSec <= 0 {
		return
	}
	base := stages[0].OpsPerSec
	for i := range stages {
		stages[i].Speedup = stages[i].OpsPerSec / base
		if stages[i].Workers > 0 {
			stages[i].Efficiency = stages[i].Speedup / float64(stages[i].Workers)
		}
	}
}

// ClassStats is the latency distribution and outcome breakdown of one
// operation class over the whole run (all stages pooled).
type ClassStats struct {
	Class  string  `json:"class"`
	Ops    int     `json:"ops"`
	MeanMS float64 `json:"meanMs"`
	P50MS  float64 `json:"p50Ms"`
	P90MS  float64 `json:"p90Ms"`
	P99MS  float64 `json:"p99Ms"`
	P999MS float64 `json:"p999Ms"`
	MaxMS  float64 `json:"maxMs"`
	// Outcomes counts ops by outcome label: HTTP status classes for
	// submits ("200" answered-from-books, "202" enqueued-or-joined,
	// "400", "503") and "unexpected" for contract violations.
	Outcomes map[string]int `json:"outcomes"`
}

// classStatsFrom computes the distribution of one class's latency
// samples (milliseconds).
func classStatsFrom(class string, samples []float64) ClassStats {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return ClassStats{
		Class:  class,
		Ops:    len(s),
		MeanMS: round3(sum / float64(len(s))),
		P50MS:  round3(Percentile(s, 0.50)),
		P90MS:  round3(Percentile(s, 0.90)),
		P99MS:  round3(Percentile(s, 0.99)),
		P999MS: round3(Percentile(s, 0.999)),
		MaxMS:  round3(s[len(s)-1]),
	}
}

// Percentile returns the nearest-rank q-quantile (0 < q <= 1) of an
// ascending-sorted slice: the smallest sample such that at least q of
// the mass is at or below it. Nearest-rank never interpolates, so a
// reported p999 is always a latency that actually happened. An unsorted
// slice is sorted into a copy first — callers should pre-sort, but a
// quantile of misordered data would be silently meaningless.
func Percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if !sort.Float64sAreSorted(sorted) {
		s := append([]float64(nil), sorted...)
		sort.Float64s(s)
		sorted = s
	}
	// ceil(q·n) computed in floats overshoots by one rank when q·n is an
	// exact integer that lands just above it in binary (0.9 × 500 =
	// 450.00000000000006 → rank 451), so back the product off by an
	// epsilon far below any meaningful quantile step before rounding up.
	rank := int(math.Ceil(q*float64(len(sorted)) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// round3 trims a float to 3 decimals so report JSON stays readable
// (microsecond resolution on millisecond latencies).
func round3(v float64) float64 {
	return math.Round(v*1e3) / 1e3
}

// integralDelta keeps the integral-valued metric deltas (the counters
// and gauges; float rates like cache_hit_ratio and uptime_seconds are
// meaningless as deltas and are dropped).
func integralDelta(d Metrics) map[string]int64 {
	out := make(map[string]int64)
	for name, v := range d {
		if v == math.Trunc(v) {
			out[name] = int64(v)
		}
	}
	return out
}

// WriteJSON renders the result as indented JSON (the LOAD_n.json
// artifact), stamping the schema version.
func (r *Result) WriteJSON(w io.Writer) error {
	r.SchemaVersion = ResultSchemaVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
