// Package load is the closed-loop load harness for the
// simulation-as-a-service daemons: it replays a deterministic,
// configurable workload mix (hot-key zipfian resubmits, cold sweeps,
// cancels, deadline-doomed jobs, malformed requests) against a live
// sppd or sppgw over plain HTTP, measures per-class latency
// percentiles and a concurrency-ladder throughput curve, and — the
// part that makes a run a verdict rather than a vibe — scrapes the
// daemon's own /metrics before and after to reconcile the client's
// tallies against the server's books exactly (see Reconcile).
//
// The package is host-class and sim-independent: it knows the job
// API's wire contract and the metric names, but not the experiment
// vocabulary (submit bodies are injected via Config.Body) and nothing
// of the simulator. Its only in-module dependency is internal/rng, the
// pure deterministic generator leaf, so identical seeds replay
// identical op sequences. cmd/sppload is the CLI; docs/BENCHMARKS.md
// is the methodology.
package load
