package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Config parameterizes one load run. The harness knows the daemon's
// job API and metric books but is deliberately ignorant of the
// experiment vocabulary: callers inject Body to turn generated ops
// into submit payloads (cmd/sppload builds them from the quick preset;
// tests build them for a stub runner).
type Config struct {
	// BaseURL is the target daemon, e.g. "http://127.0.0.1:8177" — a
	// standalone sppd or a sppgw gateway.
	BaseURL string
	// Prefix is the metric namespace to reconcile against (SppdPrefix
	// or GatewayPrefix). Empty auto-detects via DetectPrefix.
	Prefix string
	// Client is the HTTP client; nil uses a dedicated client with
	// generous connection reuse.
	Client *http.Client

	// Mix weights the operation classes; zero value means DefaultMix.
	Mix Mix
	// Stages is the concurrency ladder: each stage runs Ops operations
	// of the shared generated sequence at Workers closed-loop workers.
	// Nil means DefaultStages. Start the ladder at Workers=1 to anchor
	// the speedup/efficiency columns.
	Stages []Stage
	// HotKeys sizes the hot spec set (default 8).
	HotKeys int
	// ZipfS is the hot-key popularity skew exponent (default 1.1).
	ZipfS float64
	// Seed pins the generator's deterministic op sequence (default 1).
	Seed uint64

	// Body renders a generated op into a POST /v1/jobs payload.
	// Required. The contract: every (Class, Key) pair must map to its
	// own content address — distinct across classes too, so a cancel
	// never lands on a cold job — with equal pairs mapping to equal
	// bodies (hot resubmits must coalesce); OpTimeout bodies must carry
	// an execution timeout too short to ever beat (for example "1ns"),
	// so those jobs deterministically reach the "timeout" status.
	// OpMalformed is never passed to Body: the harness owns its garbage.
	Body func(op Op) []byte

	// PollInterval is the status-poll spacing for closed-loop waits
	// (default 2ms — local daemons answer in microseconds).
	PollInterval time.Duration
	// PollBudget bounds how many polls a single job may take before the
	// run declares it stuck (default 15000 — 30s at the default
	// interval).
	PollBudget int

	// Now and Sleep are the harness's only clock access, injected so
	// tests can fake time and so the host-class determinism lint has a
	// single audited default.
	Now   func() time.Time
	Sleep func(time.Duration)

	// Logf, when set, receives progress lines (stage boundaries, the
	// final sweep). Nil is silent.
	Logf func(format string, args ...any)
}

// Stage is one rung of the concurrency ladder: Ops operations executed
// by Workers closed-loop workers (each worker submits its next op only
// after its previous op completed).
type Stage struct {
	Workers int `json:"workers"`
	Ops     int `json:"ops"`
}

// DefaultStages is the bounded CI ladder: single-worker anchor, two
// doubling rungs for the speedup curve, then a wider main stage that
// the saturation-throughput figure comes from.
func DefaultStages() []Stage {
	return []Stage{{1, 40}, {2, 40}, {4, 40}, {8, 120}}
}

func (c *Config) normalize() error {
	if c.BaseURL == "" {
		return fmt.Errorf("load: Config.BaseURL is required")
	}
	if c.Body == nil {
		return fmt.Errorf("load: Config.Body is required (the harness is vocabulary-free)")
	}
	if c.Mix == (Mix{}) {
		c.Mix = DefaultMix()
	}
	if c.Stages == nil {
		c.Stages = DefaultStages()
	}
	for i, st := range c.Stages {
		if st.Workers < 1 || st.Ops < 1 {
			return fmt.Errorf("load: stage %d needs Workers >= 1 and Ops >= 1 (got %+v)", i, st)
		}
	}
	if c.HotKeys == 0 {
		c.HotKeys = 8
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 2 * time.Millisecond
	}
	if c.PollBudget <= 0 {
		c.PollBudget = 15000
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	}
	if c.Now == nil {
		c.Now = time.Now //simlint:allow determinism load is a host-side harness measuring real wall latency; tests inject a fake clock
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep //simlint:allow determinism poll pacing against a live daemon; tests inject a no-op
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// Run executes the configured load profile against the live daemon:
// scrape the books, drive every ladder stage, poll all touched jobs to
// rest, scrape again, and reconcile. The returned Result carries the
// full report; Run itself returns an error only for harness-level
// failures (unreachable daemon, bad config) — a failed reconciliation
// is reported in Result.Reconcile, not as an error, so callers decide
// how loudly to fail.
func Run(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if cfg.Prefix == "" {
		p, err := DetectPrefix(cfg.Client, cfg.BaseURL)
		if err != nil {
			return nil, fmt.Errorf("load: probing %s: %w", cfg.BaseURL, err)
		}
		cfg.Prefix = p
	}
	before, err := Scrape(cfg.Client, cfg.BaseURL, cfg.Prefix)
	if err != nil {
		return nil, fmt.Errorf("load: pre-run scrape: %w", err)
	}

	gen, err := NewGenerator(cfg.Mix, cfg.HotKeys, cfg.ZipfS, cfg.Seed)
	if err != nil {
		return nil, err
	}
	r := &runner{cfg: cfg, jobs: map[string]string{}}
	res := &Result{
		Target: cfg.BaseURL, Prefix: cfg.Prefix,
		Mix: cfg.Mix, HotKeys: cfg.HotKeys, ZipfS: cfg.ZipfS, Seed: cfg.Seed,
	}
	for _, st := range cfg.Stages {
		ops := make([]Op, st.Ops)
		for i := range ops {
			ops[i] = gen.Next()
		}
		cfg.Logf("stage: %d workers x %d ops", st.Workers, st.Ops)
		res.Stages = append(res.Stages, r.runStage(st, ops))
	}
	finishStages(res.Stages)
	for _, st := range res.Stages {
		if st.OpsPerSec > res.SaturationOpsPerSec {
			res.SaturationOpsPerSec = st.OpsPerSec
		}
	}

	cfg.Logf("final sweep: polling %d distinct jobs to rest", len(r.jobs))
	r.sweep()
	r.countStatuses()

	after, err := Scrape(cfg.Client, cfg.BaseURL, cfg.Prefix)
	if err != nil {
		return nil, fmt.Errorf("load: post-run scrape: %w", err)
	}
	res.Classes = r.classStats()
	res.Tally = r.tally
	res.Reconcile = Reconcile(r.tally, after.Delta(before), after)
	res.ServerDelta = integralDelta(after.Delta(before))
	return res, nil
}

// runner is the mutable state of one Run: the client tally, the
// distinct-job status map, and the latency samples, all mutex-guarded
// because stage workers write them concurrently.
type runner struct {
	cfg Config

	mu      sync.Mutex
	tally   Tally
	jobs    map[string]string // job key -> last observed status
	samples [numClasses][]float64
	counts  [numClasses]map[string]int // class -> outcome label -> n
}

// runStage drives one ladder rung: Workers goroutines pull from the
// stage's op list, each completing its op fully before taking the next
// (closed loop). Returns the stage's wall-clock throughput figures.
func (r *runner) runStage(st Stage, ops []Op) StageResult {
	ch := make(chan Op)
	var wg sync.WaitGroup
	start := r.cfg.Now()
	for w := 0; w < st.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := range ch {
				r.do(op)
			}
		}()
	}
	for _, op := range ops {
		ch <- op
	}
	close(ch)
	wg.Wait()
	wall := r.cfg.Now().Sub(start).Seconds()
	sr := StageResult{Workers: st.Workers, Ops: len(ops), WallSeconds: wall}
	if wall > 0 {
		sr.OpsPerSec = float64(len(ops)) / wall
	}
	return sr
}

// do executes one op end to end and records its latency and outcome.
func (r *runner) do(op Op) {
	start := r.cfg.Now()
	outcome := r.execute(op)
	latMS := r.cfg.Now().Sub(start).Seconds() * 1e3
	r.mu.Lock()
	r.samples[op.Class] = append(r.samples[op.Class], latMS)
	if r.counts[op.Class] == nil {
		r.counts[op.Class] = map[string]int{}
	}
	r.counts[op.Class][outcome]++
	r.mu.Unlock()
}

// execute performs the class-specific protocol and returns an outcome
// label for the breakdown table ("200", "202", "400", "503",
// "canceled", "timeout", "done", "unexpected", ...).
func (r *runner) execute(op Op) string {
	switch op.Class {
	case OpMalformed:
		code, _, err := r.post(malformedBody(op.Seq))
		if err != nil || code != http.StatusBadRequest {
			r.unexpected()
			return "unexpected"
		}
		return "400"
	case OpHot:
		// Submit only: the point is the answer-from-books latency, and
		// the final sweep settles any key whose first submit is still
		// live at stage end.
		code, key, err := r.post(r.cfg.Body(op))
		return r.recordSubmit(code, key, err)
	case OpCold:
		code, key, err := r.post(r.cfg.Body(op))
		out := r.recordSubmit(code, key, err)
		if key != "" {
			r.waitTerminal(key)
		}
		return out
	case OpCancel:
		code, key, err := r.post(r.cfg.Body(op))
		out := r.recordSubmit(code, key, err)
		if key == "" {
			return out
		}
		ccode, _, err := r.request(http.MethodDelete, "/v1/jobs/"+key, nil)
		// 202: canceled. 409: the job won the race and finished first —
		// legitimate under concurrency; the status poll below settles
		// which.
		if err != nil || (ccode != http.StatusAccepted && ccode != http.StatusConflict) {
			r.unexpected()
			return "unexpected"
		}
		r.waitTerminal(key)
		return out
	case OpTimeout:
		code, key, err := r.post(r.cfg.Body(op))
		out := r.recordSubmit(code, key, err)
		if key != "" {
			r.waitTerminal(key)
		}
		return out
	}
	r.unexpected()
	return "unexpected"
}

// post submits a body and returns (status code, job key) — key empty
// unless the submit was accepted with a parsable job view.
func (r *runner) post(body []byte) (int, string, error) {
	code, data, err := r.request(http.MethodPost, "/v1/jobs", body)
	if err != nil {
		return 0, "", err
	}
	if code != http.StatusOK && code != http.StatusAccepted {
		return code, "", nil
	}
	var v jobView
	if err := json.Unmarshal(data, &v); err != nil || v.ID == "" {
		return code, "", fmt.Errorf("unparsable submit response: %q", data)
	}
	return code, v.ID, nil
}

// recordSubmit folds one submit response into the tally and the
// distinct-job map, returning the outcome label.
func (r *runner) recordSubmit(code int, key string, err error) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case err == nil && code == http.StatusOK && key != "":
		r.tally.SubmitOK200++
	case err == nil && code == http.StatusAccepted && key != "":
		r.tally.SubmitAccepted202++
	case err == nil && code == http.StatusServiceUnavailable:
		r.tally.SubmitRejected503++
		return "503"
	default:
		r.tally.Unexpected++
		return "unexpected"
	}
	if _, seen := r.jobs[key]; !seen {
		r.jobs[key] = ""
		r.tally.DistinctAccepted++
	}
	return strconv.Itoa(code)
}

// waitTerminal polls one job until it reaches a terminal status,
// recording the status in the distinct-job map.
func (r *runner) waitTerminal(key string) {
	for i := 0; i < r.cfg.PollBudget; i++ {
		code, data, err := r.request(http.MethodGet, "/v1/jobs/"+key, nil)
		if err != nil || code != http.StatusOK {
			r.unexpected()
			return
		}
		var v jobView
		if err := json.Unmarshal(data, &v); err != nil {
			r.unexpected()
			return
		}
		if terminal(v.Status) {
			r.mu.Lock()
			r.jobs[key] = v.Status
			r.mu.Unlock()
			return
		}
		r.cfg.Sleep(r.cfg.PollInterval)
	}
	r.unexpected() // stuck job: poll budget exhausted
}

// sweep polls every distinct job not yet seen terminal (hot keys whose
// only ops were submits, cancel races) so the end-of-run gauges are
// zero and every key has a final status.
func (r *runner) sweep() {
	r.mu.Lock()
	var pending []string
	for key, status := range r.jobs {
		if !terminal(status) {
			pending = append(pending, key)
		}
	}
	r.mu.Unlock()
	for _, key := range pending {
		r.waitTerminal(key)
	}
}

// countStatuses folds the distinct-job final statuses into the tally.
func (r *runner) countStatuses() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, status := range r.jobs {
		switch status {
		case "done":
			r.tally.Done++
		case "failed":
			r.tally.Failed++
		case "canceled":
			r.tally.Canceled++
		case "timeout":
			r.tally.Timeout++
		case "checkpointed":
			r.tally.Checkpointed++
		}
	}
}

// classStats builds the per-class latency and outcome table.
func (r *runner) classStats() []ClassStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []ClassStats
	for _, c := range Classes() {
		if len(r.samples[c]) == 0 {
			continue
		}
		cs := classStatsFrom(c.String(), r.samples[c])
		cs.Outcomes = r.counts[c]
		out = append(out, cs)
	}
	return out
}

func (r *runner) unexpected() {
	r.mu.Lock()
	r.tally.Unexpected++
	r.mu.Unlock()
}

// request performs one HTTP round trip and slurps the body.
func (r *runner) request(method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, r.cfg.BaseURL+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// jobView is the slice of the daemon's job JSON the harness needs. The
// daemon's job id IS the spec's content address, which is what makes
// distinct-key accounting possible from the client side alone.
type jobView struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
}

// terminal reports whether a wire status string is a resting state.
// The five words are the daemon's public API (docs/SERVICE.md), not an
// import of its internals. "checkpointed" is terminal for a waiter —
// the job only moves again if somebody resubmits it.
func terminal(status string) bool {
	switch status {
	case "done", "failed", "canceled", "timeout", "checkpointed":
		return true
	}
	return false
}

// malformedBody deterministically varies the garbage the malformed
// class posts: unknown fields (the API rejects them), bare non-objects,
// and truncated JSON. All are vocabulary-free — they exercise the 400
// path without knowing any experiment names.
func malformedBody(seq int) []byte {
	switch seq % 3 {
	case 0:
		return []byte(`{"no-such-field":true}`)
	case 1:
		return []byte(`"not an object"`)
	default:
		return []byte(`{"truncated":`)
	}
}

// WaitHealthy polls baseURL/healthz until it answers 200, for
// harnesses that just started the daemon. attempts*interval bounds the
// wait; the last error is returned on failure.
func WaitHealthy(client *http.Client, baseURL string, attempts int, interval time.Duration, sleep func(time.Duration)) error {
	if client == nil {
		client = http.DefaultClient
	}
	if sleep == nil {
		sleep = time.Sleep //simlint:allow determinism startup backoff against a real daemon
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		resp, err := client.Get(baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("healthz: %s", resp.Status)
		} else {
			lastErr = err
		}
		sleep(interval)
	}
	return fmt.Errorf("load: %s never became healthy: %w", baseURL, lastErr)
}
