package load

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"spp1000/internal/rng"
)

// OpClass names one kind of operation in a workload mix. The classes
// mirror the traffic a production sppd actually sees: hot-key resubmits
// that should be answered by the job table or cache, cold sweeps that
// must simulate, cancellations, deadline-doomed jobs, and garbage that
// must bounce with 400.
type OpClass int

// The workload classes, in mix-weight order.
const (
	// OpHot resubmits one of a small set of hot specs, chosen
	// zipfian-skewed: after the first completion these must coalesce at
	// the job table (dedup) or be answered from the result cache, never
	// re-simulated.
	OpHot OpClass = iota
	// OpCold submits a never-seen spec and waits for it to finish — the
	// closed-loop simulate path.
	OpCold
	// OpCancel submits a never-seen spec and immediately cancels it.
	OpCancel
	// OpTimeout submits a never-seen spec with a deliberately impossible
	// execution deadline; the job must land in the terminal status
	// "timeout".
	OpTimeout
	// OpMalformed posts a body sppd cannot parse; the daemon must answer
	// 400 and its job books must not move.
	OpMalformed

	numClasses int = iota
)

// String names the class as it appears in mix strings and reports.
func (c OpClass) String() string {
	switch c {
	case OpHot:
		return "hot"
	case OpCold:
		return "cold"
	case OpCancel:
		return "cancel"
	case OpTimeout:
		return "timeout"
	case OpMalformed:
		return "malformed"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Classes lists every OpClass in declaration order, for ranging in a
// fixed order (maps over classes would randomize report layout).
func Classes() []OpClass {
	out := make([]OpClass, numClasses)
	for i := range out {
		out[i] = OpClass(i)
	}
	return out
}

// Mix holds the relative weights of the operation classes. Weights are
// parts of the whole, not percentages: {4,3,1,1,1} and {40,30,10,10,10}
// describe the same mix.
type Mix struct {
	Hot       int `json:"hot"`
	Cold      int `json:"cold"`
	Cancel    int `json:"cancel"`
	Timeout   int `json:"timeout"`
	Malformed int `json:"malformed"`
}

// DefaultMix is the bounded-profile mix: mostly hot-key resubmits and
// cold sweeps, seasoned with cancels, doomed deadlines, and garbage.
func DefaultMix() Mix {
	return Mix{Hot: 40, Cold: 30, Cancel: 10, Timeout: 10, Malformed: 10}
}

// ParseMix parses "hot=40,cold=30,cancel=10,timeout=10,malformed=10".
// Omitted classes get weight 0; at least one weight must be positive.
func ParseMix(s string) (Mix, error) {
	byName := map[string]*int{}
	var m Mix
	for c, p := range map[string]*int{
		"hot": &m.Hot, "cold": &m.Cold, "cancel": &m.Cancel,
		"timeout": &m.Timeout, "malformed": &m.Malformed,
	} {
		byName[c] = p
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("mix: %q is not name=weight", part)
		}
		p, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return Mix{}, fmt.Errorf("mix: unknown class %q (have hot, cold, cancel, timeout, malformed)", name)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("mix: weight %q must be a non-negative integer", val)
		}
		*p = w
	}
	if m.Total() == 0 {
		return Mix{}, fmt.Errorf("mix: every weight is zero in %q", s)
	}
	return m, nil
}

// weights returns the per-class weights indexed by OpClass.
func (m Mix) weights() [numClasses]int {
	return [numClasses]int{m.Hot, m.Cold, m.Cancel, m.Timeout, m.Malformed}
}

// Total is the sum of the weights (the mix period: over any window of
// Total consecutive ops the generator emits each class exactly its
// weight's worth of times).
func (m Mix) Total() int {
	w := m.weights()
	total := 0
	for _, x := range w {
		total += x
	}
	return total
}

// Op is one generated operation. Class and Key fully determine the
// submit body (hot ops with equal Key resubmit the same spec; cold,
// cancel, and timeout Keys are unique per op so their content addresses
// never collide with anything else in the run); Seq is the global
// emission index.
type Op struct {
	Class OpClass
	// Seq is the op's position in the generated sequence, 0-based.
	Seq int
	// Key selects the spec: for OpHot it is the hot-set index in
	// [0, HotKeys); for OpCold/OpCancel/OpTimeout it is a per-class
	// unique counter. Unused (0) for OpMalformed.
	Key int
}

// Generator emits the deterministic op sequence for one load run. The
// class schedule is smooth weighted round-robin — not sampled — so the
// realized mix proportions are exact (each class appears exactly
// weight-many times in every Total()-length window), while the hot-key
// choice inside OpHot ops is zipfian, drawn from the same deterministic
// internal/rng stream the simulated workloads use. Two generators built
// with equal parameters emit identical sequences.
type Generator struct {
	mix     Mix
	weights [numClasses]int
	total   int
	current [numClasses]int // smooth-WRR running balances

	hotKeys int
	zipfCum []float64 // cumulative zipf mass over the hot set
	r       *rng.RNG

	seq  int
	uniq [numClasses]int
}

// NewGenerator builds a generator. hotKeys sizes the hot spec set
// (min 1); zipfS is the zipf exponent (1.0–1.3 are web-like skews; 0
// makes the hot choice uniform); seed pins the hot-key stream.
func NewGenerator(mix Mix, hotKeys int, zipfS float64, seed uint64) (*Generator, error) {
	if mix.Total() <= 0 {
		return nil, fmt.Errorf("load: mix has no positive weights")
	}
	if hotKeys < 1 {
		return nil, fmt.Errorf("load: hotKeys must be >= 1 (got %d)", hotKeys)
	}
	if zipfS < 0 {
		return nil, fmt.Errorf("load: zipf exponent must be >= 0 (got %g)", zipfS)
	}
	g := &Generator{
		mix:     mix,
		weights: mix.weights(),
		total:   mix.Total(),
		hotKeys: hotKeys,
		r:       rng.New(seed),
	}
	g.zipfCum = make([]float64, hotKeys)
	sum := 0.0
	for k := 0; k < hotKeys; k++ {
		sum += 1 / math.Pow(float64(k+1), zipfS)
		g.zipfCum[k] = sum
	}
	for k := range g.zipfCum {
		g.zipfCum[k] /= sum
	}
	return g, nil
}

// Next emits the next op of the sequence.
func (g *Generator) Next() Op {
	// Smooth weighted round-robin (the nginx upstream algorithm): raise
	// every class by its weight, emit the highest balance, then charge
	// it the full period. Over any window of Total ops each class is
	// emitted exactly weight-many times, so the realized mix is exact —
	// a sampled schedule would only converge in expectation.
	best := -1
	for i := 0; i < numClasses; i++ {
		g.current[i] += g.weights[i]
		if g.weights[i] > 0 && (best < 0 || g.current[i] > g.current[best]) {
			best = i
		}
	}
	g.current[best] -= g.total

	op := Op{Class: OpClass(best), Seq: g.seq}
	g.seq++
	switch op.Class {
	case OpHot:
		op.Key = g.zipfPick()
	case OpMalformed:
		// Key stays 0: malformed bodies are vocabulary-free garbage.
	default:
		op.Key = g.uniq[best]
		g.uniq[best]++
	}
	return op
}

// zipfPick draws a hot-set index with zipfian skew (rank 1 most
// popular) by inverse-CDF lookup on the deterministic rng stream.
func (g *Generator) zipfPick() int {
	u := g.r.Float64()
	return sort.SearchFloat64s(g.zipfCum, u)
}
