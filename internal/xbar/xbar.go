// Package xbar models the 5-port crossbar switch joining the four
// functional units of a hypernode (the fifth port serves I/O, paper §2.4).
// Each port is a unit-capacity resource; a transfer occupies both the
// source and destination ports for its duration, so conflicting traffic
// queues — the "cross-bar switch and memory bank conflicts" that stretch
// the 50-cycle miss toward 60 (paper §2.6).
package xbar

import (
	"spp1000/internal/counters"
	"spp1000/internal/sim"
	"spp1000/internal/topology"
)

// hooks are the optional PMU-style counter handles, nil (free no-ops)
// until AttachCounters.
type hooks struct {
	grants         *counters.Counter
	conflicts      *counters.Counter
	conflictCycles *counters.Counter
}

// Crossbar is one hypernode's switch.
type Crossbar struct {
	ports [topology.FUsPerNode + 1]sim.Resource // 4 FU ports + 1 I/O port
	// transfers counts completed traversals for utilization reporting.
	transfers int64
	ctr       hooks
}

// AttachCounters mirrors traversals into the group: grants (port pairs
// booked), conflicts (traversals that had to wait for a busy port), and
// conflict_cycles (total cycles lost to those waits). A nil group
// detaches.
func (x *Crossbar) AttachCounters(g *counters.Group) {
	x.ctr = hooks{
		grants:         g.Counter("grants"),
		conflicts:      g.Counter("conflicts"),
		conflictCycles: g.Counter("conflict_cycles"),
	}
}

// IOPort is the port index of the I/O connection.
const IOPort = topology.FUsPerNode

// New returns an idle crossbar.
func New() *Crossbar { return &Crossbar{} }

// Traverse books a transfer from port src to port dst starting at now,
// occupying both ports for dur cycles. It returns the completion time,
// which includes any queueing delay behind earlier traffic.
func (x *Crossbar) Traverse(now sim.Cycles, src, dst int, dur sim.Cycles) sim.Cycles {
	if src == dst {
		return now + dur
	}
	start := now
	if t := x.ports[src].FreeAt(); t > start {
		start = t
	}
	if t := x.ports[dst].FreeAt(); t > start {
		start = t
	}
	x.ports[src].Reserve(start, dur)
	x.ports[dst].Reserve(start, dur)
	x.transfers++
	x.ctr.grants.Inc()
	if start > now {
		x.ctr.conflicts.Inc()
		x.ctr.conflictCycles.Add(int64(start - now))
	}
	return start + dur
}

// Transfers reports the number of traversals completed.
func (x *Crossbar) Transfers() int64 { return x.transfers }

// PortBusy reports the accumulated service time of a port.
func (x *Crossbar) PortBusy(port int) sim.Cycles { return x.ports[port].Busy() }

// Reset clears all port horizons.
func (x *Crossbar) Reset() {
	for i := range x.ports {
		x.ports[i].Reset()
	}
	x.transfers = 0
}
