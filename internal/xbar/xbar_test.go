package xbar

import (
	"testing"

	"spp1000/internal/sim"
)

func TestUncontendedTraversal(t *testing.T) {
	x := New()
	done := x.Traverse(100, 0, 1, 6)
	if done != 106 {
		t.Fatalf("done = %d, want 106", done)
	}
}

func TestConflictingTraversalsQueue(t *testing.T) {
	x := New()
	first := x.Traverse(0, 0, 1, 10)
	second := x.Traverse(0, 2, 1, 10) // same destination port
	if first != 10 {
		t.Fatalf("first done = %d", first)
	}
	if second != 20 {
		t.Fatalf("second should queue behind the first at port 1: done = %d, want 20", second)
	}
}

func TestDisjointPortsOverlap(t *testing.T) {
	x := New()
	a := x.Traverse(0, 0, 1, 10)
	b := x.Traverse(0, 2, 3, 10)
	if a != 10 || b != 10 {
		t.Fatalf("disjoint transfers should overlap: %d, %d", a, b)
	}
}

func TestSamePortNoOp(t *testing.T) {
	x := New()
	if done := x.Traverse(5, 2, 2, 10); done != 15 {
		t.Fatalf("same-port transfer = %d, want now+dur", done)
	}
	if x.Transfers() != 0 {
		t.Fatal("same-port transfer should not book the switch")
	}
}

func TestIOPortUsable(t *testing.T) {
	x := New()
	done := x.Traverse(0, 0, IOPort, 8)
	if done != 8 {
		t.Fatalf("I/O port transfer = %d", done)
	}
	if x.PortBusy(IOPort) != 8 {
		t.Fatalf("I/O port busy = %d, want 8", x.PortBusy(IOPort))
	}
}

func TestReset(t *testing.T) {
	x := New()
	x.Traverse(0, 0, 1, 100)
	x.Reset()
	if x.Traverse(0, 0, 1, 10) != 10 {
		t.Fatal("reset should clear horizons")
	}
	if x.Transfers() != 1 {
		t.Fatal("reset should clear the transfer count")
	}
	_ = sim.Cycles(0)
}
