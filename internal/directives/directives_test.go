package directives

import (
	"sort"
	"testing"

	"spp1000/internal/machine"
	"spp1000/internal/threads"
)

func newMachine(t *testing.T) *machine.Machine {
	t.Helper()
	m, err := machine.New(machine.Config{Hypernodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// coverage checks that a schedule runs every iteration exactly once.
func coverage(t *testing.T, sched Schedule, iters, threadsN, chunk int) {
	t.Helper()
	m := newMachine(t)
	counts := make([]int, iters)
	_, err := For(m, Loop{
		Iters: iters, Threads: threadsN, Place: threads.HighLocality,
		Schedule: sched, Chunk: chunk,
	}, func(th *machine.Thread, i int) {
		counts[i]++
		th.ComputeCycles(50)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("%v: iteration %d ran %d times", sched, i, c)
		}
	}
}

func TestSchedulesCoverAllIterations(t *testing.T) {
	for _, sched := range []Schedule{Static, Chunked, SelfScheduled} {
		coverage(t, sched, 97, 8, 3) // deliberately uneven
		coverage(t, sched, 16, 16, 1)
		coverage(t, sched, 5, 8, 2) // fewer iterations than threads
	}
}

func TestZeroIterations(t *testing.T) {
	m := newMachine(t)
	ran := false
	_, err := For(m, Loop{Iters: 0, Threads: 4, Schedule: Static},
		func(th *machine.Thread, i int) { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("zero-iteration loop ran a body")
	}
}

func TestInvalidLoopRejected(t *testing.T) {
	m := newMachine(t)
	if _, err := For(m, Loop{Iters: 10, Threads: 0}, func(th *machine.Thread, i int) {}); err == nil {
		t.Fatal("zero threads should be rejected")
	}
	if _, err := For(m, Loop{Iters: -1, Threads: 2}, func(th *machine.Thread, i int) {}); err == nil {
		t.Fatal("negative iterations should be rejected")
	}
}

func TestStaticIterationOrderWithinThread(t *testing.T) {
	m := newMachine(t)
	var seq []int
	_, err := For(m, Loop{Iters: 12, Threads: 1, Schedule: Static},
		func(th *machine.Thread, i int) { seq = append(seq, i) })
	if err != nil {
		t.Fatal(err)
	}
	if !sort.IntsAreSorted(seq) {
		t.Fatalf("single-thread loop out of order: %v", seq)
	}
}

func TestSelfScheduledBalancesSkewedWork(t *testing.T) {
	// One iteration is 20x heavier; self-scheduling should beat the
	// static split where one thread draws the heavy block plus its
	// share.
	weight := func(i int) int64 {
		if i < 8 {
			return 20000 // heavy head
		}
		return 1000
	}
	run := func(sched Schedule) int64 {
		m := newMachine(t)
		el, err := For(m, Loop{
			Iters: 64, Threads: 8, Place: threads.HighLocality,
			Schedule: sched, Chunk: 1,
		}, func(th *machine.Thread, i int) {
			th.ComputeCycles(weight(i))
		})
		if err != nil {
			t.Fatal(err)
		}
		return int64(el)
	}
	static := run(Static)
	dynamic := run(SelfScheduled)
	if dynamic >= static {
		t.Fatalf("self-scheduled (%d) should beat static (%d) on skewed work", dynamic, static)
	}
}

func TestReduceSum(t *testing.T) {
	m := newMachine(t)
	got, elapsed, err := ReduceSum(m, Loop{Iters: 1000, Threads: 8, Place: threads.HighLocality},
		func(i int) float64 { return float64(i) })
	if err != nil {
		t.Fatal(err)
	}
	want := 999.0 * 1000 / 2
	if got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	if elapsed <= 0 {
		t.Fatal("reduction took no time")
	}
	// Invalid loops rejected.
	if _, _, err := ReduceSum(newMachine(t), Loop{Iters: 10, Threads: 0}, func(i int) float64 { return 0 }); err == nil {
		t.Fatal("invalid loop should be rejected")
	}
}

func TestFalseSharingPenalty(t *testing.T) {
	shared, private, err := FalseSharing(200)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(shared) / float64(private)
	// §3.2: "marked performance gains just by making scalar variables
	// thread private" — the shared variant ping-pongs the line.
	if ratio < 3 {
		t.Fatalf("false-sharing penalty = %.1fx, want marked (>3x); shared %v private %v",
			ratio, shared, private)
	}
}
