// Package directives reproduces the Convex compilers' parallel
// directive interface (§3.2): parallel loops with static, chunked, or
// self-scheduled iteration assignment, synchronous thread semantics,
// and the memory-placement idioms the paper highlights — including the
// observation that "parallel loops can achieve marked performance gains
// just by making scalar variables thread private to eliminate cache
// thrashing", which FalseSharing demonstrates on the simulated
// coherence machinery.
package directives

import (
	"fmt"

	"spp1000/internal/machine"
	"spp1000/internal/sim"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
)

// Schedule selects the loop-iteration assignment policy.
type Schedule int

const (
	// Static divides iterations into one contiguous block per thread
	// at loop entry (the compilers' default).
	Static Schedule = iota
	// Chunked deals fixed-size chunks round-robin.
	Chunked
	// SelfScheduled lets threads grab the next chunk from a shared
	// counter — dynamic balance at the cost of one uncached
	// read-modify-write per chunk.
	SelfScheduled
)

func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Chunked:
		return "chunked"
	default:
		return "self-scheduled"
	}
}

// Loop describes one parallel loop.
type Loop struct {
	Iters    int
	Threads  int
	Place    threads.Placement
	Schedule Schedule
	// Chunk is the chunk size for Chunked/SelfScheduled (default 1).
	Chunk int
}

// For runs body(th, i) for every iteration 0 ≤ i < Iters on a team of
// simulated threads and returns the loop's fork-to-join virtual time.
// Iterations within a thread run in index order; across threads the
// interleaving follows the schedule.
func For(m *machine.Machine, l Loop, body func(th *machine.Thread, i int)) (sim.Cycles, error) {
	if l.Iters < 0 || l.Threads < 1 {
		return 0, fmt.Errorf("directives: invalid loop %+v", l)
	}
	chunk := l.Chunk
	if chunk < 1 {
		chunk = 1
	}
	var cursorSpace topology.Space
	next := 0
	if l.Schedule == SelfScheduled {
		cursorSpace = m.Alloc("loop.cursor", topology.NearShared, 0, 0)
	}
	return threads.RunTeam(m, l.Threads, l.Place, func(th *machine.Thread, tid int) {
		switch l.Schedule {
		case Static:
			lo := tid * l.Iters / l.Threads
			hi := (tid + 1) * l.Iters / l.Threads
			for i := lo; i < hi; i++ {
				body(th, i)
			}
		case Chunked:
			for base := tid * chunk; base < l.Iters; base += l.Threads * chunk {
				for i := base; i < base+chunk && i < l.Iters; i++ {
					body(th, i)
				}
			}
		case SelfScheduled:
			for {
				th.RMW(cursorSpace, 0) // fetch-and-add on the cursor
				if next >= l.Iters {
					return
				}
				base := next
				next += chunk
				hi := base + chunk
				if hi > l.Iters {
					hi = l.Iters
				}
				for i := base; i < hi; i++ {
					body(th, i)
				}
			}
		}
	})
}

// ReduceSum runs a parallel sum-reduction loop: each thread accumulates
// its iterations into a thread-private partial (the §3.2 idiom), and the
// partials are combined under a gate at the join. It returns the sum of
// value(i) over 0 ≤ i < l.Iters and the loop's virtual duration.
func ReduceSum(m *machine.Machine, l Loop, value func(i int) float64) (float64, sim.Cycles, error) {
	if l.Iters < 0 || l.Threads < 1 {
		return 0, 0, fmt.Errorf("directives: invalid loop %+v", l)
	}
	g := threads.NewGate(m, 0)
	priv := m.Alloc("reduce.partials", topology.ThreadPrivate, 0, 0)
	var total float64
	elapsed, err := threads.RunTeam(m, l.Threads, l.Place, func(th *machine.Thread, tid int) {
		var partial float64
		lo := tid * l.Iters / l.Threads
		hi := (tid + 1) * l.Iters / l.Threads
		for i := lo; i < hi; i++ {
			partial += value(i)
			th.ComputeCycles(2)
			// The private accumulator stays cache-resident.
			th.Write(priv, topology.Addr(tid*topology.CacheLineBytes))
		}
		g.Critical(th, func() {
			total += partial
			th.ComputeCycles(2)
		})
	})
	if err != nil {
		return 0, 0, err
	}
	return total, elapsed, nil
}

// FalseSharing measures the §3.2 effect: eight threads each accumulate
// into a per-thread scalar `iters` times. In the "shared" variant the
// scalars are adjacent words of a shared array — four per cache line —
// so every update invalidates the line in three other caches; in the
// "private" variant each scalar is thread private. The ratio is the
// "cache thrashing" the directive eliminates.
func FalseSharing(iters int) (shared, private sim.Cycles, err error) {
	run := func(class topology.Class, spread int) (sim.Cycles, error) {
		m, err := machine.New(machine.Config{Hypernodes: 1})
		if err != nil {
			return 0, err
		}
		sp := m.Alloc("accumulators", class, 0, 0)
		return threads.RunTeam(m, 8, threads.HighLocality, func(th *machine.Thread, tid int) {
			addr := topology.Addr(tid * spread)
			for i := 0; i < iters; i++ {
				th.Read(sp, addr)
				th.ComputeCycles(4) // the accumulation arithmetic
				th.Write(sp, addr)
			}
		})
	}
	// Shared: 8 doubles packed into two cache lines.
	if shared, err = run(topology.NearShared, 8); err != nil {
		return
	}
	// Thread private: each scalar in its own thread's memory (and, being
	// a distinct space offset per thread, in its own line).
	private, err = run(topology.ThreadPrivate, topology.CacheLineBytes)
	return
}
