package experiments

import (
	"encoding/json"

	"spp1000/internal/apps/fem"
	"spp1000/internal/apps/nbody"
	"spp1000/internal/apps/pic"
	"spp1000/internal/apps/ppm"
	"spp1000/internal/microbench"
	"spp1000/internal/stats"
)

// Report is the machine-readable form of the reproduction: every paper
// artifact as structured data. The simulation is deterministic, so two
// runs with equal options marshal to identical bytes.
type Report struct {
	// Fig2: fork-join µs vs. threads.
	Fig2 struct {
		HighLocality *stats.Series `json:"highLocality"`
		Uniform      *stats.Series `json:"uniform"`
	} `json:"fig2"`
	// Fig3: barrier µs vs. threads (4 curves).
	Fig3 []*stats.Series `json:"fig3"`
	// Fig4: message round-trip µs vs. bytes.
	Fig4 struct {
		Local  *stats.Series `json:"local"`
		Global *stats.Series `json:"global"`
	} `json:"fig4"`
	// Tab1: the C90 reference rows.
	Tab1 []struct {
		Mesh      string  `json:"mesh"`
		Particles int     `json:"particles"`
		Mflops    float64 `json:"mflops"`
		Seconds   float64 `json:"seconds"`
	} `json:"tab1"`
	// Fig6: PIC results per (size, variant, procs).
	Fig6 []pic.Result `json:"fig6"`
	// Fig7: FEM results.
	Fig7 []fem.Result `json:"fig7"`
	// Fig8: N-body results.
	Fig8 []nbody.Result `json:"fig8"`
	// Tab2: PPM results.
	Tab2 []ppm.Result `json:"tab2"`
}

// BuildReport runs the paper artifacts and returns the structured form.
func BuildReport(o Options) (*Report, error) {
	r := &Report{}
	var err error
	if r.Fig2.HighLocality, r.Fig2.Uniform, err = microbench.ForkJoinSweep(2, 16); err != nil {
		return nil, err
	}
	if r.Fig3, err = microbench.BarrierSweep(2, 16); err != nil {
		return nil, err
	}
	if r.Fig4.Local, r.Fig4.Global, err = microbench.MessageSweep(); err != nil {
		return nil, err
	}
	for _, size := range []pic.Size{pic.Small, pic.Large} {
		sec, rate := pic.C90Reference(size, 500)
		r.Tab1 = append(r.Tab1, struct {
			Mesh      string  `json:"mesh"`
			Particles int     `json:"particles"`
			Mflops    float64 `json:"mflops"`
			Seconds   float64 `json:"seconds"`
		}{size.String(), size.Particles(), rate, sec})
		for _, p := range []int{1, 2, 4, 8, 16} {
			rs, err := pic.RunShared(size, p, o.PICSteps)
			if err != nil {
				return nil, err
			}
			r.Fig6 = append(r.Fig6, rs)
			rp, err := pic.RunPVM(size, p, o.PICSteps)
			if err != nil {
				return nil, err
			}
			r.Fig6 = append(r.Fig6, rp)
		}
	}
	for _, p := range []int{1, 2, 4, 8, 9, 12, 16} {
		res, err := fem.Run(fem.SmallGrid, fem.GatherScatter, p, o.AppSteps)
		if err != nil {
			return nil, err
		}
		r.Fig7 = append(r.Fig7, res)
	}
	for _, n := range o.NBodySizes {
		w := nbody.CountWorkload(n, o.NBodySample, o.Seed)
		for _, cfg := range []struct{ p, hn int }{{1, 1}, {8, 1}, {8, 2}, {16, 2}} {
			res, err := nbody.Run(w, cfg.p, cfg.hn, o.AppSteps)
			if err != nil {
				return nil, err
			}
			r.Fig8 = append(r.Fig8, res)
		}
	}
	var err2 error
	if r.Tab2, err2 = ppm.Table2(o.AppSteps); err2 != nil {
		return nil, err2
	}
	return r, nil
}

// JSON marshals the report with stable indentation.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
