package experiments

import (
	"encoding/json"

	"spp1000/internal/apps/fem"
	"spp1000/internal/apps/nbody"
	"spp1000/internal/apps/pic"
	"spp1000/internal/apps/ppm"
	"spp1000/internal/microbench"
	"spp1000/internal/runner"
	"spp1000/internal/stats"
)

// Report is the machine-readable form of the reproduction: every paper
// artifact as structured data. The simulation is deterministic, so two
// runs with equal options marshal to identical bytes.
type Report struct {
	// Fig2: fork-join µs vs. threads.
	Fig2 struct {
		HighLocality *stats.Series `json:"highLocality"`
		Uniform      *stats.Series `json:"uniform"`
	} `json:"fig2"`
	// Fig3: barrier µs vs. threads (4 curves).
	Fig3 []*stats.Series `json:"fig3"`
	// Fig4: message round-trip µs vs. bytes.
	Fig4 struct {
		Local  *stats.Series `json:"local"`
		Global *stats.Series `json:"global"`
	} `json:"fig4"`
	// Tab1: the C90 reference rows.
	Tab1 []struct {
		Mesh      string  `json:"mesh"`
		Particles int     `json:"particles"`
		Mflops    float64 `json:"mflops"`
		Seconds   float64 `json:"seconds"`
	} `json:"tab1"`
	// Fig6: PIC results per (size, variant, procs).
	Fig6 []pic.Result `json:"fig6"`
	// Fig7: FEM results.
	Fig7 []fem.Result `json:"fig7"`
	// Fig8: N-body results.
	Fig8 []nbody.Result `json:"fig8"`
	// Tab2: PPM results.
	Tab2 []ppm.Result `json:"tab2"`
}

// BuildReport runs the paper artifacts and returns the structured form.
// The independent sections — and the sweep points within them — are
// dispatched through the host worker pool; every slice is assembled in
// the same order as a serial build, so the marshalled bytes are
// unchanged by parallelism.
func BuildReport(o Options) (*Report, error) {
	r := &Report{}
	err := runner.Each(6, func(section int) error {
		switch section {
		case 0:
			var err error
			r.Fig2.HighLocality, r.Fig2.Uniform, err = microbench.ForkJoinSweep(2, 16)
			return err
		case 1:
			var err error
			r.Fig3, err = microbench.BarrierSweep(2, 16)
			return err
		case 2:
			var err error
			r.Fig4.Local, r.Fig4.Global, err = microbench.MessageSweep()
			return err
		case 3:
			sizes := []pic.Size{pic.Small, pic.Large}
			procs := []int{1, 2, 4, 8, 16}
			pts, err := runner.Map(len(sizes)*len(procs), func(i int) ([2]pic.Result, error) {
				size, p := sizes[i/len(procs)], procs[i%len(procs)]
				rs, err := pic.RunShared(size, p, o.PICSteps)
				if err != nil {
					return [2]pic.Result{}, err
				}
				rp, err := pic.RunPVM(size, p, o.PICSteps)
				if err != nil {
					return [2]pic.Result{}, err
				}
				return [2]pic.Result{rs, rp}, nil
			})
			if err != nil {
				return err
			}
			for si, size := range sizes {
				sec, rate := pic.C90Reference(size, 500)
				r.Tab1 = append(r.Tab1, struct {
					Mesh      string  `json:"mesh"`
					Particles int     `json:"particles"`
					Mflops    float64 `json:"mflops"`
					Seconds   float64 `json:"seconds"`
				}{size.String(), size.Particles(), rate, sec})
				for pi := range procs {
					r.Fig6 = append(r.Fig6, pts[si*len(procs)+pi][0], pts[si*len(procs)+pi][1])
				}
			}
			return nil
		case 4:
			procs := []int{1, 2, 4, 8, 9, 12, 16}
			res, err := runner.Map(len(procs), func(i int) (fem.Result, error) {
				return fem.Run(fem.SmallGrid, fem.GatherScatter, procs[i], o.AppSteps)
			})
			if err != nil {
				return err
			}
			r.Fig7 = res
			return nil
		case 5:
			ws, err := runner.Map(len(o.NBodySizes), func(i int) (*nbody.Workload, error) {
				return nbody.CountWorkload(o.NBodySizes[i], o.NBodySample, o.Seed), nil
			})
			if err != nil {
				return err
			}
			cfgs := []struct{ p, hn int }{{1, 1}, {8, 1}, {8, 2}, {16, 2}}
			res, err := runner.Map(len(ws)*len(cfgs), func(i int) (nbody.Result, error) {
				return nbody.Run(ws[i/len(cfgs)], cfgs[i%len(cfgs)].p, cfgs[i%len(cfgs)].hn, o.AppSteps)
			})
			if err != nil {
				return err
			}
			r.Fig8 = res
			return nil
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if r.Tab2, err = ppm.Table2(o.AppSteps); err != nil {
		return nil, err
	}
	return r, nil
}

// JSON marshals the report with stable indentation.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
