package experiments

import (
	"strings"
	"testing"

	"spp1000/internal/parsim"
)

// TestPDESGoldenEquality is the partitioned engine's gate, mirroring
// how -par landed: every experiment — the full paper suite plus the
// PDES-backed scalepar sweep — must render byte-identically at -simpar
// 1, 2, and 4. Serial (-simpar 1) is the reference order; the
// coordinator's deterministic merge must reproduce it exactly at every
// worker count. Runs under -race via `make pdes`.
func TestPDESGoldenEquality(t *testing.T) {
	o := Quick()
	names := append(append([]string{}, Names...), Extra...)

	run := func(workers int) string {
		t.Helper()
		parsim.SetWorkers(workers)
		defer parsim.SetWorkers(0)
		outs, err := RunMany(names, o)
		if err != nil {
			t.Fatalf("simpar=%d: %v", workers, err)
		}
		return strings.Join(outs, "\n")
	}

	serial := run(1)
	if serial == "" {
		t.Fatal("experiments produced no output")
	}
	if !strings.Contains(serial, "Partitioned scaling") {
		t.Fatal("suite does not include the scalepar sweep")
	}
	for _, w := range []int{2, 4} {
		if got := run(w); got != serial {
			d := diffAt(serial, got)
			t.Fatalf("output differs between -simpar 1 and -simpar %d at byte %d:\nserial: %.200q\nsimpar%d: %.200q",
				w, d, tail(serial, d), w, tail(got, d))
		}
	}
}

// diffAt reports the first differing byte offset.
func diffAt(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// tail slices s from offset d for error context.
func tail(s string, d int) string {
	if d > len(s) {
		d = len(s)
	}
	return s[d:]
}
