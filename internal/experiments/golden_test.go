package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// Golden regression: the simulation is a pure function of its inputs,
// so these experiment outputs must match the recorded files byte for
// byte. Regenerate deliberately with:
//
//	go test ./internal/experiments -run Golden -update
//
// after any intentional model or calibration change.
func TestGoldenOutputs(t *testing.T) {
	o := Quick()
	for _, name := range []string{"fig2", "fig3", "fig4", "tab1", "tab2", "classes"} {
		name := name
		t.Run(name, func(t *testing.T) {
			out, err := Run(name, o)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if string(want) != out {
				t.Errorf("%s output drifted from golden.\n--- golden ---\n%s\n--- got ---\n%s",
					name, want, out)
			}
		})
	}
}
