package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"spp1000/internal/parsim"
	"spp1000/internal/snapshot"
)

// TestCheckpointKillAtEveryBoundary is the resume-exactness gate from
// the checkpoint PR: a run killed at ANY checkpoint boundary and resumed
// must produce byte-identical outputs and exactly equal sim-cycle/event
// and PMU counter totals versus an uninterrupted run — at -simpar 1, 2,
// and 4, under -race (`make checkpoint` / `make faultmatrix`). The
// final-checkpoint byte equality is the strongest form: outputs, sim
// totals, counter snapshot, and region signatures all live inside the
// encoding, so one bytes.Equal covers the whole contract.
func TestCheckpointKillAtEveryBoundary(t *testing.T) {
	o := Quick()
	names := []string{"fig2", "tab1", "scalepar"} // scalepar exercises the PDES engine

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("simpar%d", workers), func(t *testing.T) {
			parsim.SetWorkers(workers)
			defer parsim.SetWorkers(0)

			// Uninterrupted reference, recording the checkpoint bytes at
			// every boundary — these are the states a kill could leave.
			var boundaries [][]byte
			refOuts, refFinal, err := RunCheckpointed(context.Background(), names, o, nil, 1,
				func(c *snapshot.Checkpoint) error {
					boundaries = append(boundaries, c.Encode())
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if len(boundaries) != len(names) {
				t.Fatalf("%d boundary checkpoints for %d experiments", len(boundaries), len(names))
			}
			refBytes := refFinal.Encode()

			for b, raw := range boundaries {
				prior, err := snapshot.DecodeCheckpoint(raw)
				if err != nil {
					t.Fatalf("boundary %d: %v", b, err)
				}
				outs, final, err := RunCheckpointed(context.Background(), names, o, prior, 1, nil)
				if err != nil {
					t.Fatalf("resume from boundary %d: %v", b, err)
				}
				if got, want := strings.Join(outs, "\x00"), strings.Join(refOuts, "\x00"); got != want {
					t.Fatalf("boundary %d: resumed outputs diverge from the uninterrupted run", b)
				}
				if final.SimCycles != refFinal.SimCycles || final.SimEvents != refFinal.SimEvents {
					t.Fatalf("boundary %d: resumed totals (cycles=%d events=%d), uninterrupted (cycles=%d events=%d)",
						b, final.SimCycles, final.SimEvents, refFinal.SimCycles, refFinal.SimEvents)
				}
				if !bytes.Equal(final.Encode(), refBytes) {
					t.Fatalf("boundary %d: resumed final checkpoint is not byte-identical to the uninterrupted run's", b)
				}
			}
		})
	}
}

// The checkpoint cadence: every=2 over three experiments saves at the
// second boundary and at completion, never in between.
func TestCheckpointEveryCadence(t *testing.T) {
	o := Quick()
	names := []string{"fig2", "fig3", "fig4"}
	var saved []int
	_, _, err := RunCheckpointed(context.Background(), names, o, nil, 2,
		func(c *snapshot.Checkpoint) error {
			saved = append(saved, len(c.Done))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) != 2 || saved[0] != 2 || saved[1] != 3 {
		t.Fatalf("save boundaries %v, want [2 3]", saved)
	}
}

// A checkpoint for a different spec (other names or options) must be
// refused, never silently spliced into the wrong run.
func TestCheckpointSpecKeyMismatch(t *testing.T) {
	o := Quick()
	_, cp, err := RunCheckpointed(context.Background(), []string{"fig2"}, o, nil, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RunCheckpointed(context.Background(), []string{"fig2", "fig3"}, o, cp, 1, nil); err == nil {
		t.Fatal("checkpoint for another suite accepted")
	}
	other := Quick()
	other.AppSteps++
	if _, _, err := RunCheckpointed(context.Background(), []string{"fig2"}, other, cp, 1, nil); err == nil {
		t.Fatal("checkpoint for other options accepted")
	}
}

// A canceled context surfaces the completed-prefix checkpoint alongside
// the error, with the in-flight experiment discarded.
func TestCheckpointCancelKeepsPrefix(t *testing.T) {
	o := Quick()
	names := []string{"fig2", "fig3"}
	ctx, cancel := context.WithCancel(context.Background())
	_, cp, err := RunCheckpointed(ctx, names, o, nil, 1,
		func(c *snapshot.Checkpoint) error {
			cancel() // killed right after the first boundary
			return nil
		})
	if err == nil {
		t.Fatal("canceled run reported success")
	}
	if len(cp.Done) != 1 || cp.Done[0].Name != "fig2" {
		t.Fatalf("prefix %v, want the completed fig2 only", cp.Done)
	}
	// The prefix resumes to exactly the uninterrupted result.
	refOuts, _, err := RunCheckpointed(context.Background(), names, o, nil, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	outs, _, err := RunCheckpointed(context.Background(), names, o, cp, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(outs, "\x00") != strings.Join(refOuts, "\x00") {
		t.Fatal("resumed outputs diverge from the uninterrupted run")
	}
}

// A failing save aborts the run with the checkpoint it could not persist.
func TestCheckpointSaveErrorPropagates(t *testing.T) {
	boom := errors.New("disk full")
	_, _, err := RunCheckpointed(context.Background(), []string{"fig2"}, Quick(), nil, 1,
		func(c *snapshot.Checkpoint) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the save error", err)
	}
}
