package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Spec is one simulation job as the service layer sees it: which
// experiments to run and at what scale. Because every experiment is a
// pure deterministic function of its Spec (same program, same result,
// down to the cycle — see DESIGN.md), a Spec's canonical encoding is a
// sound content address: equal bytes ⇒ equal results, so results can be
// cached and concurrent duplicate submissions coalesced onto one run.
type Spec struct {
	// Experiments are the experiment ids to run, in order (from Names /
	// Extra). Thread counts, problem grids, and topology parameters are
	// part of each experiment's definition, so the id pins them.
	Experiments []string `json:"experiments"`
	// Options scales the suite (steps, problem sizes, seed).
	Options Options `json:"options"`
}

// DefaultSpec is the full paper reproduction at paper scale.
func DefaultSpec() Spec {
	return Spec{Experiments: append([]string{}, Names...), Options: Defaults()}
}

// Normalize validates the spec and returns a cleaned copy: names
// trimmed and checked against the experiment vocabulary, an empty list
// rejected. Specs must be normalized before Canonical/Key so that
// " fig2" and "fig2" address the same cache entry.
func (s Spec) Normalize() (Spec, error) {
	if len(s.Experiments) == 0 {
		return Spec{}, fmt.Errorf("spec: no experiments selected")
	}
	out := s
	out.Experiments = make([]string, len(s.Experiments))
	for i, raw := range s.Experiments {
		name := strings.TrimSpace(raw)
		if !Known(name) {
			return Spec{}, fmt.Errorf("spec: unknown experiment %q (have %v and %v)", name, Names, Extra)
		}
		out.Experiments[i] = name
	}
	return out, nil
}

// specVersion tags the canonical encoding. Bump it whenever the
// encoding, the Options fields, or the simulated machine's architected
// parameters change meaning, so stale cache entries can never be
// confused with fresh ones.
const specVersion = "spp-spec-v1"

// Canonical renders the spec as deterministic bytes: a fixed version
// line followed by every configuration field in a fixed order, one
// `key=value` line each. Integer fields are rendered exactly and each
// value is terminated by a newline, so distinct configurations can
// never collide and identical configurations always produce identical
// bytes regardless of how the Spec was built (struct literal, JSON,
// flags). This is the content-address preimage for the result cache.
//
// Every field of Options appears here; TestCanonicalCoversOptions
// enforces that a new Options field cannot be added without extending
// this encoding.
func (s Spec) Canonical() []byte {
	var b strings.Builder
	b.WriteString(specVersion)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "exp=%s\n", strings.Join(s.Experiments, ","))
	fmt.Fprintf(&b, "picsteps=%d\n", s.Options.PICSteps)
	b.WriteString("nbodysizes=")
	for i, n := range s.Options.NBodySizes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "nbodysample=%d\n", s.Options.NBodySample)
	fmt.Fprintf(&b, "appsteps=%d\n", s.Options.AppSteps)
	fmt.Fprintf(&b, "seed=%d\n", s.Options.Seed)
	return []byte(b.String())
}

// Key is the content address: the hex SHA-256 of the canonical
// encoding. It doubles as the job id in the sppd API.
func (s Spec) Key() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}
