// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 and §5) on the simulated machine, rendering them as the
// text rows/series the paper reports. It is shared by cmd/sppbench and
// the repository-level benchmarks.
package experiments

import (
	"context"
	"fmt"
	"strings"

	"spp1000/internal/ablation"
	"spp1000/internal/apps/amr"
	"spp1000/internal/apps/fem"
	"spp1000/internal/apps/nbody"
	"spp1000/internal/apps/pic"
	"spp1000/internal/apps/ppm"
	"spp1000/internal/directives"
	"spp1000/internal/microbench"
	"spp1000/internal/runner"
	"spp1000/internal/stats"
)

// Options scales the experiments. The json tags are the sppd wire
// names; adding a field requires extending Spec.Canonical (enforced by
// TestCanonicalCoversOptions).
type Options struct {
	// PICSteps is the simulated-timestep count for Fig. 6 runs; results
	// are reported scaled to the paper's 500 steps (per-step work is
	// uniform). Default 25.
	PICSteps int `json:"picSteps"`
	// NBodySizes are the Fig. 8 problem sizes. Default the paper's
	// 32K / 256K / 2M.
	NBodySizes []int `json:"nBodySizes"`
	// NBodySample is the per-block traversal sample for counting.
	NBodySample int `json:"nBodySample"`
	// AppSteps is the step count for FEM / N-body / PPM timing runs.
	AppSteps int    `json:"appSteps"`
	Seed     uint64 `json:"seed"`
}

// Defaults returns the paper-scale options.
func Defaults() Options {
	return Options{
		PICSteps:    25,
		NBodySizes:  []int{32768, 262144, 2097152},
		NBodySample: 96,
		AppSteps:    4,
		Seed:        1,
	}
}

// Quick returns reduced-scale options for tests and -short runs.
func Quick() Options {
	return Options{
		PICSteps:    4,
		NBodySizes:  []int{32768, 131072},
		NBodySample: 48,
		AppSteps:    2,
		Seed:        1,
	}
}

// Fig2 reproduces Figure 2: fork-join cost versus thread count.
func Fig2(o Options) (string, error) {
	hl, un, err := microbench.ForkJoinSweep(2, 16)
	if err != nil {
		return "", err
	}
	return stats.Render("Figure 2: Cost of Fork-Join (2 hypernodes)", "threads", "microseconds", hl, un), nil
}

// Fig3 reproduces Figure 3: barrier synchronization cost.
func Fig3(o Options) (string, error) {
	series, err := microbench.BarrierSweep(2, 16)
	if err != nil {
		return "", err
	}
	return stats.Render("Figure 3: Cost of Barrier Synchronization", "threads", "microseconds", series...), nil
}

// Fig4 reproduces Figure 4: PVM round-trip time versus message size.
func Fig4(o Options) (string, error) {
	local, global, err := microbench.MessageSweep()
	if err != nil {
		return "", err
	}
	out := stats.Render("Figure 4: Cost of Round Trip Message Passing", "bytes", "microseconds", local, global)
	l, _ := local.YAt(1024)
	g, _ := global.YAt(1024)
	out += fmt.Sprintf("global/local ratio below 8 KB: %.2f (paper: 2.3)\n", g/l)
	return out, nil
}

// Tab1 reproduces Table 1: PIC performance on one C90 processor.
func Tab1(o Options) (string, error) {
	tb := stats.NewTable("Table 1: Performance on 1 C90 processor",
		"Mesh", "No. of particles", "Mflop/s", "Total CPU Time (s)")
	for _, size := range []pic.Size{pic.Small, pic.Large} {
		sec, rate := pic.C90Reference(size, 500)
		tb.AddRow(size.String(), size.Particles(), rate, sec)
	}
	return tb.Render(), nil
}

// Fig6 reproduces Figure 6: PIC time to solution and speedup, shared
// memory versus PVM, with the C90 reference line. Every (size, procs)
// point is two independent simulations; the full grid is dispatched
// through the worker pool, then rendered serially in sweep order.
func Fig6(o Options) (string, error) { return fig6(context.Background(), o) }

func fig6(ctx context.Context, o Options) (string, error) {
	procs := []int{1, 2, 4, 8, 12, 16}
	sizes := []pic.Size{pic.Small, pic.Large}
	type point struct{ rs, rp pic.Result }
	pts, err := runner.MapCtx(ctx, len(sizes)*len(procs), func(i int) (point, error) {
		size, p := sizes[i/len(procs)], procs[i%len(procs)]
		rs, err := pic.RunShared(size, p, o.PICSteps)
		if err != nil {
			return point{}, err
		}
		rp, err := pic.RunPVM(size, p, o.PICSteps)
		if err != nil {
			return point{}, err
		}
		return point{rs, rp}, nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for si, size := range sizes {
		shT := &stats.Series{Name: "shared time(s)"}
		pvT := &stats.Series{Name: "pvm time(s)"}
		shS := &stats.Series{Name: "shared speedup"}
		pvS := &stats.Series{Name: "pvm speedup"}
		var shBase, pvBase float64
		scale := 500.0 / float64(o.PICSteps)
		for pi, p := range procs {
			pt := pts[si*len(procs)+pi]
			if p == 1 {
				shBase, pvBase = pt.rs.Seconds, pt.rp.Seconds
			}
			shT.Add(float64(p), pt.rs.Seconds*scale)
			pvT.Add(float64(p), pt.rp.Seconds*scale)
			shS.Add(float64(p), shBase/pt.rs.Seconds)
			pvS.Add(float64(p), pvBase/pt.rp.Seconds)
		}
		c90sec, c90rate := pic.C90Reference(size, 500)
		fmt.Fprintf(&b, "%s", stats.Render(
			fmt.Sprintf("Figure 6: PIC %v, %d particles (times scaled to 500 steps)",
				size, size.Particles()),
			"procs", "see columns", shT, pvT, shS, pvS))
		fmt.Fprintf(&b, "C90 reference line: %.1f s at %.0f Mflop/s\n\n", c90sec, c90rate)
	}
	return b.String(), nil
}

// Fig7 reproduces Figure 7: FEM performance on the small and large
// datasets, both codings, with the C90 line.
func Fig7(o Options) (string, error) { return fig7(context.Background(), o) }

func fig7(ctx context.Context, o Options) (string, error) {
	procs := []int{1, 2, 4, 8, 9, 10, 12, 14, 16}
	type point struct{ small1, small2, large float64 }
	pts, err := runner.MapCtx(ctx, len(procs), func(i int) (point, error) {
		p := procs[i]
		var pt point
		r, err := fem.Run(fem.SmallGrid, fem.GatherScatter, p, o.AppSteps)
		if err != nil {
			return pt, err
		}
		pt.small1 = r.UsefulMflops
		r, err = fem.Run(fem.SmallGrid, fem.VectorStyle, p, o.AppSteps)
		if err != nil {
			return pt, err
		}
		pt.small2 = r.UsefulMflops
		r, err = fem.Run(fem.LargeGrid, fem.GatherScatter, p, o.AppSteps)
		if err != nil {
			return pt, err
		}
		pt.large = r.UsefulMflops
		return pt, nil
	})
	if err != nil {
		return "", err
	}
	small1 := &stats.Series{Name: "small1"}
	small2 := &stats.Series{Name: "small2"}
	large := &stats.Series{Name: "large"}
	for i, p := range procs {
		small1.Add(float64(p), pts[i].small1)
		small2.Add(float64(p), pts[i].small2)
		large.Add(float64(p), pts[i].large)
	}
	out := stats.Render("Figure 7: FEM performance (useful Mflop/s)", "procs", "useful Mflop/s", small1, small2, large)
	_, c90useful := fem.C90Reference()
	out += fmt.Sprintf("C90 single-head line: %.0f useful Mflop/s\n", c90useful)
	return out, nil
}

// Fig8 reproduces Figure 8: N-body speedup for three problem sizes on
// one and two hypernodes.
func Fig8(o Options) (string, error) { return fig8(context.Background(), o) }

func fig8(ctx context.Context, o Options) (string, error) {
	// Stage 1: the counted workloads (host-side tree builds — by far the
	// heaviest host compute in the suite) in parallel across sizes.
	ws, err := runner.MapCtx(ctx, len(o.NBodySizes), func(i int) (*nbody.Workload, error) {
		return nbody.CountWorkload(o.NBodySizes[i], o.NBodySample, o.Seed), nil
	})
	if err != nil {
		return "", err
	}
	// Stage 2: every (size, procs, hypernodes) run, flattened into one
	// pool dispatch. cfgs[0] doubles as the 1-CPU baseline.
	cfgs := []struct{ p, hn int }{
		{1, 1}, {2, 1}, {4, 1}, {8, 1}, {2, 2}, {4, 2}, {8, 2}, {16, 2},
	}
	res, err := runner.MapCtx(ctx, len(ws)*len(cfgs), func(i int) (nbody.Result, error) {
		return nbody.Run(ws[i/len(cfgs)], cfgs[i%len(cfgs)].p, cfgs[i%len(cfgs)].hn, o.AppSteps)
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for si, n := range o.NBodySizes {
		one := &stats.Series{Name: "1 hypernode"}
		two := &stats.Series{Name: "2 hypernodes"}
		rate := &stats.Series{Name: "Mflop/s (2 hn)"}
		r1 := res[si*len(cfgs)]
		for ci, cfg := range cfgs {
			r := res[si*len(cfgs)+ci]
			if cfg.hn == 1 {
				one.Add(float64(cfg.p), r1.Seconds/r.Seconds)
			} else {
				two.Add(float64(cfg.p), r1.Seconds/r.Seconds)
				rate.Add(float64(cfg.p), r.Mflops)
			}
		}
		fmt.Fprintf(&b, "%s", stats.Render(
			fmt.Sprintf("Figure 8: N-body speedup, %d particles (1-CPU rate %.1f Mflop/s)", n, r1.Mflops),
			"procs", "speedup", one, two, rate))
		b.WriteString("\n")
	}
	b.WriteString("Paper: 27.5 Mflop/s on 1 CPU, 384 Mflop/s on 16; 2-7% cross-hypernode degradation.\n")
	return b.String(), nil
}

// Tab2 reproduces Table 2: PPM performance.
func Tab2(o Options) (string, error) {
	res, err := ppm.Table2(o.AppSteps)
	if err != nil {
		return "", err
	}
	paper := []float64{29.9, 58.2, 118.8, 228.5, 23.8, 47.8, 95.9, 186.2, 29.9, 118.5}
	tb := stats.NewTable("Table 2: PPM Performance",
		"Grid Size", "No. of Tiles", "No. of Procs", "Mflop/s", "Paper Mflop/s")
	for i, r := range res {
		tb.AddRow(
			fmt.Sprintf("%dx%d", r.Config.W, r.Config.H),
			fmt.Sprintf("%dx%d", r.Config.TX, r.Config.TY),
			r.Procs, r.Mflops, paper[i])
	}
	return tb.Render(), nil
}

// Ablate runs the design-choice ablation suite (hardware vs. software
// synchronization, the SCI global buffer, ring count, dynamic
// scheduling) — the studies DESIGN.md calls out beyond the paper's own
// artifacts.
func Ablate(o Options) (string, error) {
	out, err := ablation.Report()
	if err != nil {
		return "", err
	}
	// Message contention (§4.3's "compounding factor"): flat on the
	// architected four rings, visible on a hypothetical single ring.
	four, one, err := microbench.ContentionSweep(16384)
	if err != nil {
		return "", err
	}
	out += "\n" + stats.Render("Contention: concurrent cross-hypernode message pairs (mean RT)",
		"pairs", "µs", four, one)
	return out, nil
}

// Scale runs the paper's future-work extrapolation to 16 hypernodes.
func Scale(o Options) (string, error) { return ablation.ScaleReport() }

// AMR runs the adaptive-mesh-refinement extension: the PPM shock
// problem on a PARAMESH-style quadtree of blocks, timed on the
// simulated machine against the equivalent uniform fine grid.
func AMR(o Options) (string, error) { return amrReport(context.Background(), o) }

func amrReport(ctx context.Context, o Options) (string, error) {
	var b strings.Builder
	b.WriteString("AMR extension: PPM shock on a PARAMESH-style block quadtree\n")
	tb := stats.NewTable("", "procs", "sim seconds", "Mflop/s", "leaves", "max level", "zones saved")
	ps := []int{1, 4, 8, 16}
	res, err := runner.MapCtx(ctx, len(ps), func(i int) (amr.Result, error) {
		d, err := amr.New(4, 1)
		if err != nil {
			return amr.Result{}, err
		}
		w := float64(4 * amr.BlockSize)
		d.SetRegion(func(x, y float64) (rho, u, v, pr float64) {
			if x > w/4 && x < 3*w/4 {
				return 1.0, 0, 0, 1.0
			}
			return 0.125, 0, 0, 0.1
		})
		return amr.Run(d, ps[i], 10)
	})
	if err != nil {
		return "", err
	}
	for i, p := range ps {
		r := res[i]
		tb.AddRow(p, r.Seconds, r.Mflops, r.LeafBlocks, r.MaxLevel,
			fmt.Sprintf("%.1fx", float64(r.UniformZones)/float64(r.ZoneUpdates)))
	}
	b.WriteString(tb.Render())
	b.WriteString("(the refinement tracks the shocks; the serial regrid bounds the speedup)\n")
	return b.String(), nil
}

// Classes characterizes the five §3.2 virtual-memory classes and the
// §3.2 false-sharing effect.
func Classes(o Options) (string, error) {
	tb, err := microbench.ClassLadder()
	if err != nil {
		return "", err
	}
	out := tb.Render()
	shared, private, err := directives.FalseSharing(200)
	if err != nil {
		return "", err
	}
	out += fmt.Sprintf("\nFalse sharing (§3.2): 8 threads × 200 accumulations\n"+
		"  adjacent shared scalars: %v\n  thread-private scalars:  %v (%.1fx faster)\n",
		shared, private, float64(shared)/float64(private))
	return out, nil
}

// Names lists the paper artifacts in order; Extra lists the extension
// studies.
var (
	Names = []string{"fig2", "fig3", "fig4", "tab1", "fig6", "fig7", "fig8", "tab2"}
	Extra = []string{"ablate", "scale", "classes", "amr", "counters", "scalepar"}
)

// Known reports whether name is a runnable experiment id.
func Known(name string) bool {
	for _, n := range Names {
		if n == name {
			return true
		}
	}
	for _, n := range Extra {
		if n == name {
			return true
		}
	}
	return false
}

// ResolveNames expands an -exp style expression — "all", "extra",
// "everything", or a comma-separated list of ids — into a validated,
// whitespace-trimmed name list. Unknown or empty ids are an error that
// names the offender and the valid vocabulary, so callers (sppbench,
// sppd) fail loudly instead of running nothing.
func ResolveNames(expr string) ([]string, error) {
	switch strings.TrimSpace(expr) {
	case "all":
		return append([]string{}, Names...), nil
	case "extra":
		return append([]string{}, Extra...), nil
	case "everything":
		return append(append([]string{}, Names...), Extra...), nil
	}
	var names []string
	for _, raw := range strings.Split(expr, ",") {
		name := strings.TrimSpace(raw)
		if name == "" {
			return nil, fmt.Errorf("empty experiment name in %q (expected all, extra, everything, or ids from %v and %v)", expr, Names, Extra)
		}
		if !Known(name) {
			return nil, fmt.Errorf("unknown experiment %q (expected all, extra, everything, or ids from %v and %v)", name, Names, Extra)
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no experiments selected by %q", expr)
	}
	return names, nil
}

// RunMany executes the named experiments through the host worker pool
// and returns the rendered outputs in name order. The rendering of each
// experiment — and of the whole sequence — is byte-identical to calling
// Run serially: workers fill their own slots and assembly is ordered.
func RunMany(names []string, o Options) ([]string, error) {
	return RunManyCtx(context.Background(), names, o)
}

// RunManyCtx is RunMany with cancellation: a done ctx stops both the
// experiment-level dispatch and the sweep-point dispatch inside each
// experiment that fans out (fig6/fig7/fig8/amr). In-flight simulations
// run to completion; everything still queued is skipped.
func RunManyCtx(ctx context.Context, names []string, o Options) ([]string, error) {
	return runner.MapCtx(ctx, len(names), func(i int) (string, error) {
		out, err := RunCtx(ctx, names[i], o)
		if err != nil {
			return "", fmt.Errorf("%s: %w", names[i], err)
		}
		return out, nil
	})
}

// All runs every paper artifact (Names, in order) and returns the
// concatenation of their renderings, each prefixed by its banner —
// exactly the text `sppbench -exp all` prints.
func All(o Options) (string, error) {
	return AllCtx(context.Background(), o)
}

// AllCtx is All with cancellation (see RunManyCtx).
func AllCtx(ctx context.Context, o Options) (string, error) {
	outs, err := RunManyCtx(ctx, Names, o)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, name := range Names {
		fmt.Fprintf(&b, "=== %s ===\n%s\n", name, outs[i])
	}
	return b.String(), nil
}

// Run executes one experiment by name.
func Run(name string, o Options) (string, error) {
	return RunCtx(context.Background(), name, o)
}

// RunCtx executes one experiment by name under ctx. Experiments that
// fan sweep points onto the worker pool stop dispatching new points once
// ctx is done; the single-simulation experiments check ctx only on
// entry (each is one indivisible deterministic run).
func RunCtx(ctx context.Context, name string, o Options) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", err
	}
	switch name {
	case "fig2":
		return Fig2(o)
	case "fig3":
		return Fig3(o)
	case "fig4":
		return Fig4(o)
	case "tab1":
		return Tab1(o)
	case "fig6":
		return fig6(ctx, o)
	case "fig7":
		return fig7(ctx, o)
	case "fig8":
		return fig8(ctx, o)
	case "tab2":
		return Tab2(o)
	case "ablate":
		return Ablate(o)
	case "scale":
		return Scale(o)
	case "classes":
		return Classes(o)
	case "amr":
		return amrReport(ctx, o)
	case "counters":
		return CountersReport(o)
	case "scalepar":
		return ScalePar(ctx, o)
	}
	return "", fmt.Errorf("unknown experiment %q (have %v and %v)", name, Names, Extra)
}
