// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 and §5) on the simulated machine, rendering them as the
// text rows/series the paper reports. It is shared by cmd/sppbench and
// the repository-level benchmarks.
package experiments

import (
	"fmt"
	"strings"

	"spp1000/internal/ablation"
	"spp1000/internal/apps/amr"
	"spp1000/internal/apps/fem"
	"spp1000/internal/apps/nbody"
	"spp1000/internal/apps/pic"
	"spp1000/internal/apps/ppm"
	"spp1000/internal/directives"
	"spp1000/internal/microbench"
	"spp1000/internal/stats"
)

// Options scales the experiments.
type Options struct {
	// PICSteps is the simulated-timestep count for Fig. 6 runs; results
	// are reported scaled to the paper's 500 steps (per-step work is
	// uniform). Default 25.
	PICSteps int
	// NBodySizes are the Fig. 8 problem sizes. Default the paper's
	// 32K / 256K / 2M.
	NBodySizes []int
	// NBodySample is the per-block traversal sample for counting.
	NBodySample int
	// AppSteps is the step count for FEM / N-body / PPM timing runs.
	AppSteps int
	Seed     uint64
}

// Defaults returns the paper-scale options.
func Defaults() Options {
	return Options{
		PICSteps:    25,
		NBodySizes:  []int{32768, 262144, 2097152},
		NBodySample: 96,
		AppSteps:    4,
		Seed:        1,
	}
}

// Quick returns reduced-scale options for tests and -short runs.
func Quick() Options {
	return Options{
		PICSteps:    4,
		NBodySizes:  []int{32768, 131072},
		NBodySample: 48,
		AppSteps:    2,
		Seed:        1,
	}
}

// Fig2 reproduces Figure 2: fork-join cost versus thread count.
func Fig2(o Options) (string, error) {
	hl, un, err := microbench.ForkJoinSweep(2, 16)
	if err != nil {
		return "", err
	}
	return stats.Render("Figure 2: Cost of Fork-Join (2 hypernodes)", "threads", "microseconds", hl, un), nil
}

// Fig3 reproduces Figure 3: barrier synchronization cost.
func Fig3(o Options) (string, error) {
	series, err := microbench.BarrierSweep(2, 16)
	if err != nil {
		return "", err
	}
	return stats.Render("Figure 3: Cost of Barrier Synchronization", "threads", "microseconds", series...), nil
}

// Fig4 reproduces Figure 4: PVM round-trip time versus message size.
func Fig4(o Options) (string, error) {
	local, global, err := microbench.MessageSweep()
	if err != nil {
		return "", err
	}
	out := stats.Render("Figure 4: Cost of Round Trip Message Passing", "bytes", "microseconds", local, global)
	l, _ := local.YAt(1024)
	g, _ := global.YAt(1024)
	out += fmt.Sprintf("global/local ratio below 8 KB: %.2f (paper: 2.3)\n", g/l)
	return out, nil
}

// Tab1 reproduces Table 1: PIC performance on one C90 processor.
func Tab1(o Options) (string, error) {
	tb := stats.NewTable("Table 1: Performance on 1 C90 processor",
		"Mesh", "No. of particles", "Mflop/s", "Total CPU Time (s)")
	for _, size := range []pic.Size{pic.Small, pic.Large} {
		sec, rate := pic.C90Reference(size, 500)
		tb.AddRow(size.String(), size.Particles(), rate, sec)
	}
	return tb.Render(), nil
}

// Fig6 reproduces Figure 6: PIC time to solution and speedup, shared
// memory versus PVM, with the C90 reference line.
func Fig6(o Options) (string, error) {
	procs := []int{1, 2, 4, 8, 12, 16}
	var b strings.Builder
	for _, size := range []pic.Size{pic.Small, pic.Large} {
		shT := &stats.Series{Name: "shared time(s)"}
		pvT := &stats.Series{Name: "pvm time(s)"}
		shS := &stats.Series{Name: "shared speedup"}
		pvS := &stats.Series{Name: "pvm speedup"}
		var shBase, pvBase float64
		scale := 500.0 / float64(o.PICSteps)
		for _, p := range procs {
			rs, err := pic.RunShared(size, p, o.PICSteps)
			if err != nil {
				return "", err
			}
			rp, err := pic.RunPVM(size, p, o.PICSteps)
			if err != nil {
				return "", err
			}
			if p == 1 {
				shBase, pvBase = rs.Seconds, rp.Seconds
			}
			shT.Add(float64(p), rs.Seconds*scale)
			pvT.Add(float64(p), rp.Seconds*scale)
			shS.Add(float64(p), shBase/rs.Seconds)
			pvS.Add(float64(p), pvBase/rp.Seconds)
		}
		c90sec, c90rate := pic.C90Reference(size, 500)
		fmt.Fprintf(&b, "%s", stats.Render(
			fmt.Sprintf("Figure 6: PIC %v, %d particles (times scaled to 500 steps)",
				size, size.Particles()),
			"procs", "see columns", shT, pvT, shS, pvS))
		fmt.Fprintf(&b, "C90 reference line: %.1f s at %.0f Mflop/s\n\n", c90sec, c90rate)
	}
	return b.String(), nil
}

// Fig7 reproduces Figure 7: FEM performance on the small and large
// datasets, both codings, with the C90 line.
func Fig7(o Options) (string, error) {
	procs := []int{1, 2, 4, 8, 9, 10, 12, 14, 16}
	small1 := &stats.Series{Name: "small1"}
	small2 := &stats.Series{Name: "small2"}
	large := &stats.Series{Name: "large"}
	for _, p := range procs {
		r, err := fem.Run(fem.SmallGrid, fem.GatherScatter, p, o.AppSteps)
		if err != nil {
			return "", err
		}
		small1.Add(float64(p), r.UsefulMflops)
		r, err = fem.Run(fem.SmallGrid, fem.VectorStyle, p, o.AppSteps)
		if err != nil {
			return "", err
		}
		small2.Add(float64(p), r.UsefulMflops)
		r, err = fem.Run(fem.LargeGrid, fem.GatherScatter, p, o.AppSteps)
		if err != nil {
			return "", err
		}
		large.Add(float64(p), r.UsefulMflops)
	}
	out := stats.Render("Figure 7: FEM performance (useful Mflop/s)", "procs", "useful Mflop/s", small1, small2, large)
	_, c90useful := fem.C90Reference()
	out += fmt.Sprintf("C90 single-head line: %.0f useful Mflop/s\n", c90useful)
	return out, nil
}

// Fig8 reproduces Figure 8: N-body speedup for three problem sizes on
// one and two hypernodes.
func Fig8(o Options) (string, error) {
	var b strings.Builder
	for _, n := range o.NBodySizes {
		w := nbody.CountWorkload(n, o.NBodySample, o.Seed)
		one := &stats.Series{Name: "1 hypernode"}
		two := &stats.Series{Name: "2 hypernodes"}
		rate := &stats.Series{Name: "Mflop/s (2 hn)"}
		r1, err := nbody.Run(w, 1, 1, o.AppSteps)
		if err != nil {
			return "", err
		}
		for _, p := range []int{1, 2, 4, 8} {
			r, err := nbody.Run(w, p, 1, o.AppSteps)
			if err != nil {
				return "", err
			}
			one.Add(float64(p), r1.Seconds/r.Seconds)
		}
		for _, p := range []int{2, 4, 8, 16} {
			r, err := nbody.Run(w, p, 2, o.AppSteps)
			if err != nil {
				return "", err
			}
			two.Add(float64(p), r1.Seconds/r.Seconds)
			rate.Add(float64(p), r.Mflops)
		}
		fmt.Fprintf(&b, "%s", stats.Render(
			fmt.Sprintf("Figure 8: N-body speedup, %d particles (1-CPU rate %.1f Mflop/s)", n, r1.Mflops),
			"procs", "speedup", one, two, rate))
		b.WriteString("\n")
	}
	b.WriteString("Paper: 27.5 Mflop/s on 1 CPU, 384 Mflop/s on 16; 2-7% cross-hypernode degradation.\n")
	return b.String(), nil
}

// Tab2 reproduces Table 2: PPM performance.
func Tab2(o Options) (string, error) {
	res, err := ppm.Table2(o.AppSteps)
	if err != nil {
		return "", err
	}
	paper := []float64{29.9, 58.2, 118.8, 228.5, 23.8, 47.8, 95.9, 186.2, 29.9, 118.5}
	tb := stats.NewTable("Table 2: PPM Performance",
		"Grid Size", "No. of Tiles", "No. of Procs", "Mflop/s", "Paper Mflop/s")
	for i, r := range res {
		tb.AddRow(
			fmt.Sprintf("%dx%d", r.Config.W, r.Config.H),
			fmt.Sprintf("%dx%d", r.Config.TX, r.Config.TY),
			r.Procs, r.Mflops, paper[i])
	}
	return tb.Render(), nil
}

// Ablate runs the design-choice ablation suite (hardware vs. software
// synchronization, the SCI global buffer, ring count, dynamic
// scheduling) — the studies DESIGN.md calls out beyond the paper's own
// artifacts.
func Ablate(o Options) (string, error) {
	out, err := ablation.Report()
	if err != nil {
		return "", err
	}
	// Message contention (§4.3's "compounding factor"): flat on the
	// architected four rings, visible on a hypothetical single ring.
	four, one, err := microbench.ContentionSweep(16384)
	if err != nil {
		return "", err
	}
	out += "\n" + stats.Render("Contention: concurrent cross-hypernode message pairs (mean RT)",
		"pairs", "µs", four, one)
	return out, nil
}

// Scale runs the paper's future-work extrapolation to 16 hypernodes.
func Scale(o Options) (string, error) { return ablation.ScaleReport() }

// AMR runs the adaptive-mesh-refinement extension: the PPM shock
// problem on a PARAMESH-style quadtree of blocks, timed on the
// simulated machine against the equivalent uniform fine grid.
func AMR(o Options) (string, error) {
	var b strings.Builder
	b.WriteString("AMR extension: PPM shock on a PARAMESH-style block quadtree\n")
	tb := stats.NewTable("", "procs", "sim seconds", "Mflop/s", "leaves", "max level", "zones saved")
	for _, p := range []int{1, 4, 8, 16} {
		d, err := amr.New(4, 1)
		if err != nil {
			return "", err
		}
		w := float64(4 * amr.BlockSize)
		d.SetRegion(func(x, y float64) (rho, u, v, pr float64) {
			if x > w/4 && x < 3*w/4 {
				return 1.0, 0, 0, 1.0
			}
			return 0.125, 0, 0, 0.1
		})
		r, err := amr.Run(d, p, 10)
		if err != nil {
			return "", err
		}
		tb.AddRow(p, r.Seconds, r.Mflops, r.LeafBlocks, r.MaxLevel,
			fmt.Sprintf("%.1fx", float64(r.UniformZones)/float64(r.ZoneUpdates)))
	}
	b.WriteString(tb.Render())
	b.WriteString("(the refinement tracks the shocks; the serial regrid bounds the speedup)\n")
	return b.String(), nil
}

// Classes characterizes the five §3.2 virtual-memory classes and the
// §3.2 false-sharing effect.
func Classes(o Options) (string, error) {
	tb, err := microbench.ClassLadder()
	if err != nil {
		return "", err
	}
	out := tb.Render()
	shared, private, err := directives.FalseSharing(200)
	if err != nil {
		return "", err
	}
	out += fmt.Sprintf("\nFalse sharing (§3.2): 8 threads × 200 accumulations\n"+
		"  adjacent shared scalars: %v\n  thread-private scalars:  %v (%.1fx faster)\n",
		shared, private, float64(shared)/float64(private))
	return out, nil
}

// Names lists the paper artifacts in order; Extra lists the extension
// studies.
var (
	Names = []string{"fig2", "fig3", "fig4", "tab1", "fig6", "fig7", "fig8", "tab2"}
	Extra = []string{"ablate", "scale", "classes", "amr"}
)

// Run executes one experiment by name.
func Run(name string, o Options) (string, error) {
	switch name {
	case "fig2":
		return Fig2(o)
	case "fig3":
		return Fig3(o)
	case "fig4":
		return Fig4(o)
	case "tab1":
		return Tab1(o)
	case "fig6":
		return Fig6(o)
	case "fig7":
		return Fig7(o)
	case "fig8":
		return Fig8(o)
	case "tab2":
		return Tab2(o)
	case "ablate":
		return Ablate(o)
	case "scale":
		return Scale(o)
	case "classes":
		return Classes(o)
	case "amr":
		return AMR(o)
	}
	return "", fmt.Errorf("unknown experiment %q (have %v and %v)", name, Names, Extra)
}
