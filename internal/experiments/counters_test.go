package experiments

import (
	"fmt"
	"testing"

	"spp1000/internal/counters"
	"spp1000/internal/runner"
)

// TestCounterRatios is the acceptance check that the PMU counters alone
// carry the paper's §4 calibration: every headline figure re-derived in
// DeriveCounterRatios must land on its architectural value.
func TestCounterRatios(t *testing.T) {
	d, err := DeriveCounterRatios()
	if err != nil {
		t.Fatal(err)
	}
	// §4.1 miss ladder: local cold miss ≈60 cycles, global ≈432, and
	// their quotient is §6's "about eight times" (calibrated: 7.2).
	if d.LocalMissCycles < 55 || d.LocalMissCycles > 70 {
		t.Errorf("local miss latency %.1f cycles, want ~60 (§4.1)", d.LocalMissCycles)
	}
	if d.GlobalMissCycles < 400 || d.GlobalMissCycles > 470 {
		t.Errorf("global miss latency %.1f cycles, want ~432 (§4.1)", d.GlobalMissCycles)
	}
	if d.GlobalLocalRatio < 6 || d.GlobalLocalRatio > 10 {
		t.Errorf("global/local ratio %.2f, want ~8 (§6)", d.GlobalLocalRatio)
	}
	// §4.2 barrier release: the write reaches all n-1 = 15 spinners —
	// 7 local invalidations plus the 8 behind one SCI purge hop.
	if d.BarrierInvalidations != 15 {
		t.Errorf("barrier invalidations %d, want 15 (§4.2)", d.BarrierInvalidations)
	}
	if d.BarrierPurgeWalkMax != 1 {
		t.Errorf("barrier purge walk max %d, want 1 (§2.5 per-hypernode sharing)", d.BarrierPurgeWalkMax)
	}
	if d.BarrierAttaches != 1 {
		t.Errorf("barrier SCI attaches %d, want 1", d.BarrierAttaches)
	}
	// §2.5 global buffer: of two same-node readers only the first
	// crosses a ring; the second is served over the crossbar.
	if d.BufferGlobalMisses != 1 || d.BufferHypernodeMisses != 1 {
		t.Errorf("buffer misses global=%d hypernode=%d, want 1/1 (§2.5)",
			d.BufferGlobalMisses, d.BufferHypernodeMisses)
	}
	if d.BufferRingPackets != 2 {
		t.Errorf("buffer ring packets %d, want 2 (one round trip)", d.BufferRingPackets)
	}
	// Fig. 2 knee: a 9-thread team spills exactly one thread remote.
	if d.SpawnLocal != 8 || d.SpawnRemote != 1 || d.RuntimeInits != 1 {
		t.Errorf("fork boundary spawns local=%d remote=%d inits=%d, want 8/1/1 (Fig. 2)",
			d.SpawnLocal, d.SpawnRemote, d.RuntimeInits)
	}
}

// collectProbes runs the four probe simulations through the host worker
// pool with a collector attached and returns the merged snapshot,
// rendered. The render is the determinism witness: it must not depend
// on how the host scheduled the probes.
func collectProbes(t *testing.T, workers int) string {
	t.Helper()
	runner.SetWorkers(workers)
	defer runner.SetWorkers(0)
	col := counters.NewCollector()
	counters.Attach(col)
	defer counters.Detach(col)
	probes := []func() (counters.Snapshot, error){
		missLadder, barrierEpisode, globalBuffer, forkBoundary,
	}
	_, err := runner.Map(2*len(probes), func(i int) (struct{}, error) {
		_, err := probes[i%len(probes)]()
		return struct{}{}, err
	})
	if err != nil {
		t.Fatal(err)
	}
	return col.Snapshot().Render("probes")
}

// TestCounterDeterminismAcrossWorkers extends the PR 1 determinism
// guarantee to the counter subsystem: the collector's merged snapshot is
// byte-identical whether the simulations ran serially or on four host
// workers, because per-machine registries publish commutative deltas.
func TestCounterDeterminismAcrossWorkers(t *testing.T) {
	serial := collectProbes(t, 1)
	par := collectProbes(t, 4)
	if serial != par {
		t.Fatalf("collector snapshot differs serial vs 4 workers:\n--- serial ---\n%s\n--- par ---\n%s", serial, par)
	}
	if serial == "" || serial == "probes\n(no counters recorded)\n" {
		t.Fatal("collector snapshot empty")
	}
}

// TestCountersExperimentDeterministic pins the rendered experiment.
func TestCountersExperimentDeterministic(t *testing.T) {
	a, err := Run("counters", Quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("counters", Quick())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("counters report not deterministic")
	}
}

// TestProbeSnapshotsDisjointFromGlobalState guards the probes against
// leaking into each other: two back-to-back derivations agree exactly.
func TestProbeSnapshotsRepeatable(t *testing.T) {
	d1, err := DeriveCounterRatios()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := DeriveCounterRatios()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", d1) != fmt.Sprintf("%+v", d2) {
		t.Fatalf("counter derivation not repeatable:\n%+v\n%+v", d1, d2)
	}
}
