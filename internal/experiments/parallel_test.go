package experiments

import (
	"strings"
	"testing"

	"spp1000/internal/runner"
)

// TestParallelDeterminism is the engine's core invariant: the rendered
// output of the full paper suite must be byte-identical whether the
// independent simulations run serially or fanned out across host
// workers. Everything downstream (golden files, cross-PR perf
// trajectories, the paper comparison itself) leans on this.
func TestParallelDeterminism(t *testing.T) {
	o := Quick()

	runner.SetWorkers(1)
	serial, err := All(o)
	if err != nil {
		runner.SetWorkers(0)
		t.Fatal(err)
	}

	runner.SetWorkers(4)
	parallel, err := All(o)
	runner.SetWorkers(0)
	if err != nil {
		t.Fatal(err)
	}

	if serial != parallel {
		t.Fatalf("output differs between -par 1 and -par 4:\n--- serial (%d bytes) ---\n%.400s\n--- parallel (%d bytes) ---\n%.400s",
			len(serial), serial, len(parallel), parallel)
	}
	if len(serial) == 0 {
		t.Fatal("All produced no output")
	}
}

// TestParallelDeterminismPar8 pins the rng-audit contract: the
// experiments that consume internal/rng (fig6 drives the PIC app, fig7
// the N-body app) must render byte-identically at -par 1 and -par 8.
// Each worker count runs twice so the test also catches state leaking
// between runs, not just between fan-out widths.
func TestParallelDeterminismPar8(t *testing.T) {
	names := []string{"fig6", "fig7"}
	o := Quick()

	run := func(workers int) []string {
		t.Helper()
		runner.SetWorkers(workers)
		defer runner.SetWorkers(0)
		outs, err := RunMany(names, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return outs
	}

	par1a, par1b := run(1), run(1)
	par8a, par8b := run(8), run(8)

	for i, name := range names {
		if par1a[i] != par1b[i] {
			t.Errorf("%s: two -par 1 runs differ", name)
		}
		if par8a[i] != par8b[i] {
			t.Errorf("%s: two -par 8 runs differ", name)
		}
		if par1a[i] != par8a[i] {
			t.Errorf("%s: output differs between -par 1 and -par 8:\n--- par 1 (%d bytes) ---\n%.400s\n--- par 8 (%d bytes) ---\n%.400s",
				name, len(par1a[i]), par1a[i], len(par8a[i]), par8a[i])
		}
		if len(par1a[i]) == 0 {
			t.Errorf("%s produced no output", name)
		}
	}
}

// TestRunManyMatchesRun checks the pooled dispatch returns exactly what
// per-name Run calls return, in name order.
func TestRunManyMatchesRun(t *testing.T) {
	o := Quick()
	names := []string{"fig2", "tab1", "fig4"}
	runner.SetWorkers(4)
	outs, err := RunMany(names, o)
	runner.SetWorkers(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		want, err := Run(name, o)
		if err != nil {
			t.Fatal(err)
		}
		if outs[i] != want {
			t.Errorf("RunMany[%d] (%s) differs from serial Run", i, name)
		}
	}
}

// TestRunManyUnknownName surfaces the failing experiment.
func TestRunManyUnknownName(t *testing.T) {
	_, err := RunMany([]string{"fig2", "nope"}, Quick())
	if err == nil {
		t.Fatal("unknown name should error")
	}
	if !strings.Contains(err.Error(), "nope:") {
		t.Fatalf("error should name the failing experiment, got %v", err)
	}
}
