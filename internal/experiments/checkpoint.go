package experiments

import (
	"context"
	"fmt"

	"spp1000/internal/counters"
	"spp1000/internal/sim"
	"spp1000/internal/snapshot"
)

// RunCheckpointed executes the named experiments serially, saving a
// checkpoint after every `every` completed experiments (and after the
// last), so a killed run can resume from the completed prefix instead of
// recomputing it. prior is the checkpoint to resume from (nil to start
// fresh); save persists each checkpoint (nil to only build the final
// one). It returns the rendered outputs in name order plus the final
// checkpoint.
//
// Exactness contract: because every experiment is a pure deterministic
// function of (name, Options), a resumed run's outputs are byte-identical
// to an uninterrupted run's, its checkpointed sim-cycle/event totals are
// exactly the sum an uninterrupted run accumulates, and its PMU counter
// snapshot — seeded from the prior checkpoint and merged commutatively —
// is exactly equal as well. On a ctx cancellation or deadline the
// completed-prefix checkpoint is returned alongside the error: the
// in-flight experiment is one indivisible simulation, so its partial
// work is discarded, never serialized.
//
// Experiments run serially (not through the worker pool at the
// experiment level) so the sim-cycle/event deltas sampled around each
// one attribute to it alone; the sweep points inside an experiment still
// fan out through the pool as usual.
func RunCheckpointed(ctx context.Context, names []string, o Options, prior *snapshot.Checkpoint, every int, save func(*snapshot.Checkpoint) error) ([]string, *snapshot.Checkpoint, error) {
	key := Spec{Experiments: names, Options: o}.Key()
	if every < 1 {
		every = 1
	}
	cp := &snapshot.Checkpoint{SpecKey: key, Names: append([]string(nil), names...)}
	if prior != nil {
		if prior.SpecKey != key {
			return nil, nil, fmt.Errorf("experiments: checkpoint is for spec %.12s…, this run is spec %.12s…", prior.SpecKey, key)
		}
		if len(prior.Done) > len(names) {
			return nil, nil, fmt.Errorf("experiments: checkpoint holds %d completed experiments for a %d-experiment suite", len(prior.Done), len(names))
		}
		for i, r := range prior.Done {
			if r.Name != names[i] {
				return nil, nil, fmt.Errorf("experiments: checkpoint experiment %d is %q, suite wants %q", i, r.Name, names[i])
			}
		}
		cp.Done = append(cp.Done, prior.Done...)
		cp.SimCycles, cp.SimEvents = prior.SimCycles, prior.SimEvents
		cp.Counters = prior.Counters
		cp.Regions = append(cp.Regions, prior.Regions...)
	}

	outs := make([]string, 0, len(names))
	for _, r := range cp.Done {
		outs = append(outs, r.Output)
	}

	// One collector spans the whole run, seeded with the prior
	// checkpoint's totals: merging is commutative, so the snapshot taken
	// at each boundary equals what an uninterrupted run would hold there.
	coll := counters.NewCollector()
	coll.Merge(cp.Counters)
	counters.Attach(coll)
	defer counters.Detach(coll)

	for i := len(cp.Done); i < len(names); i++ {
		// A second, per-experiment collector isolates this experiment's
		// counter deltas for its region signature (docs/SAMPLING.md).
		expColl := counters.NewCollector()
		counters.Attach(expColl)
		c0, e0 := sim.TotalCycles(), sim.TotalEvents()
		out, err := RunCtx(ctx, names[i], o)
		dc, de := sim.TotalCycles()-c0, sim.TotalEvents()-e0
		counters.Detach(expColl)
		if err != nil {
			return outs, cp, fmt.Errorf("%s: %w", names[i], err)
		}
		outs = append(outs, out)
		cp.Done = append(cp.Done, snapshot.ExperimentResult{Name: names[i], Output: out})
		cp.SimCycles += dc
		cp.SimEvents += de
		cp.Counters = coll.Snapshot()
		cp.Regions = append(cp.Regions, snapshot.Signature(names[i], dc, de, expColl.Snapshot().Flatten()))
		if save != nil && (len(cp.Done)%every == 0 || len(cp.Done) == len(names)) {
			if err := save(cp); err != nil {
				return outs, cp, fmt.Errorf("experiments: checkpoint after %s: %w", names[i], err)
			}
		}
	}
	return outs, cp, nil
}
