package experiments

import (
	"context"
	"fmt"
	"strings"

	"spp1000/internal/apps/fem"
	"spp1000/internal/apps/pic"
	"spp1000/internal/runner"
	"spp1000/internal/stats"
	"spp1000/internal/topology"
)

// ScalePar sweeps the hypernode-partitioned (PDES) engine up to the
// full 128-CPU machine the paper's authors did not have: the PIC shared
// variant and the FEM gather-scatter coding, both on one share-nothing
// kernel per hypernode (internal/parsim). Every point is byte-identical
// at every -simpar worker count — that invariant is what the golden
// suite pins — so the rendering carries no host-side figures, only
// simulated results.
func ScalePar(ctx context.Context, o Options) (string, error) {
	procs := []int{8, 16, 32, 64, 128}
	type point struct {
		pic pic.Result
		fem fem.Result
	}
	pts, err := runner.MapCtx(ctx, len(procs), func(i int) (point, error) {
		p := procs[i]
		var pt point
		var err error
		pt.pic, err = pic.RunSharedPar(pic.Small, p, o.PICSteps)
		if err != nil {
			return pt, err
		}
		pt.fem, err = fem.RunPar(fem.LargeGrid, fem.GatherScatter, p, o.AppSteps)
		return pt, err
	})
	if err != nil {
		return "", err
	}
	picT := &stats.Series{Name: "pic time(s)"}
	picR := &stats.Series{Name: "pic Mflop/s"}
	femR := &stats.Series{Name: "fem useful Mflop/s"}
	scale := 500.0 / float64(o.PICSteps)
	for i, p := range procs {
		picT.Add(float64(p), pts[i].pic.Seconds*scale)
		picR.Add(float64(p), pts[i].pic.Mflops)
		femR.Add(float64(p), pts[i].fem.UsefulMflops)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s", stats.Render(
		"Partitioned scaling: PIC small + FEM large to 128 CPUs (PIC times scaled to 500 steps)",
		"procs", "see columns", picT, picR, femR))
	fmt.Fprintf(&b, "engine: one kernel per hypernode, conservative lookahead %d cycles\n",
		topology.DefaultParams().InterNodeLookahead())
	return b.String(), nil
}
