package experiments

import (
	"strings"
	"testing"
)

// Smoke tests: every experiment renders non-empty output with the
// expected landmarks at reduced scale.
func TestAllExperimentsRender(t *testing.T) {
	o := Quick()
	landmarks := map[string][]string{
		"fig2":    {"Fork-Join", "high locality", "uniform"},
		"fig3":    {"Barrier", "LIFO", "LILO"},
		"fig4":    {"Round Trip", "local", "global", "ratio"},
		"tab1":    {"C90", "294912", "1179648"},
		"fig6":    {"PIC", "shared", "pvm", "C90 reference"},
		"fig7":    {"FEM", "small1", "small2", "large", "C90"},
		"fig8":    {"N-body", "hypernode", "Mflop/s"},
		"tab2":    {"PPM", "4x16", "12x48", "240x960"},
		"ablate":  {"hardware", "buffer", "rings", "Contention"},
		"scale":   {"128", "tree code"},
		"classes": {"thread-private", "far-shared", "False sharing"},
		"amr":     {"AMR", "leaves", "zones saved"},
		"counters": {"Counter-derived", "global/local miss ratio",
			"barrier release invalidations", "Fig. 2 knee"},
	}
	for _, name := range append(append([]string{}, Names...), Extra...) {
		out, err := Run(name, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, want := range landmarks[name] {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q", name, want)
			}
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", Quick()); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestJSONReport(t *testing.T) {
	o := Quick()
	r, err := BuildReport(o)
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig2", "highLocality", "tab1", "mflops", "fig8", "tab2"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON missing %q", want)
		}
	}
	if len(r.Fig6) != 20 || len(r.Tab2) != 10 {
		t.Fatalf("report shape: fig6=%d tab2=%d", len(r.Fig6), len(r.Tab2))
	}
	// Determinism: identical bytes on a second run.
	r2, err := BuildReport(o)
	if err != nil {
		t.Fatal(err)
	}
	data2, _ := r2.JSON()
	if string(data) != string(data2) {
		t.Fatal("JSON report not deterministic")
	}
}

func TestDeterministicOutput(t *testing.T) {
	o := Quick()
	a, err := Run("fig3", o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig3", o)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("experiment output is not deterministic")
	}
}
