package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestCanonicalDeterministic is the cache-key correctness property:
// identical configurations always marshal to identical bytes, however
// the Spec was constructed.
func TestCanonicalDeterministic(t *testing.T) {
	a := Spec{Experiments: []string{"fig2", "fig6"}, Options: Defaults()}
	b := Spec{Experiments: []string{"fig2", "fig6"}, Options: Defaults()}
	if !bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Fatalf("identical specs encode differently:\n%q\n%q", a.Canonical(), b.Canonical())
	}
	if a.Key() != b.Key() {
		t.Fatalf("identical specs hash differently: %s vs %s", a.Key(), b.Key())
	}

	// A JSON round trip (how specs arrive over the sppd wire) must land
	// on the same canonical bytes.
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var c Spec
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Canonical(), c.Canonical()) {
		t.Fatalf("JSON round trip changed the canonical bytes:\n%q\n%q", a.Canonical(), c.Canonical())
	}
}

// TestCanonicalDistinguishesParams: any change to any configuration
// field must change the key — distinct seeds/params never collide.
func TestCanonicalDistinguishesParams(t *testing.T) {
	base := Spec{Experiments: []string{"fig2"}, Options: Defaults()}
	variants := map[string]Spec{}
	add := func(name string, mut func(*Spec)) {
		s := Spec{Experiments: append([]string{}, base.Experiments...), Options: base.Options}
		s.Options.NBodySizes = append([]int{}, base.Options.NBodySizes...)
		mut(&s)
		variants[name] = s
	}
	add("exp", func(s *Spec) { s.Experiments = []string{"fig3"} })
	add("exp-order", func(s *Spec) { s.Experiments = []string{"fig6", "fig2"} })
	add("exp-extra", func(s *Spec) { s.Experiments = []string{"fig2", "fig3"} })
	add("picsteps", func(s *Spec) { s.Options.PICSteps++ })
	add("nbodysizes", func(s *Spec) { s.Options.NBodySizes[0]++ })
	add("nbodysizes-len", func(s *Spec) { s.Options.NBodySizes = s.Options.NBodySizes[:2] })
	add("nbodysample", func(s *Spec) { s.Options.NBodySample++ })
	add("appsteps", func(s *Spec) { s.Options.AppSteps++ })
	add("seed", func(s *Spec) { s.Options.Seed++ })

	seen := map[string]string{base.Key(): "base"}
	for name, v := range variants {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q (key %s)", name, prev, k)
		}
		seen[k] = name
	}

	// Distinct seeds across a wide range never collide pairwise.
	keys := map[string]uint64{}
	for seed := uint64(0); seed < 500; seed++ {
		s := base
		s.Options.Seed = seed
		k := s.Key()
		if prev, dup := keys[k]; dup {
			t.Fatalf("seed %d collides with seed %d", seed, prev)
		}
		keys[k] = seed
	}
}

// TestCanonicalCoversOptions pins the canonical encoding to the Options
// struct: every field must appear as its own line, so adding a field to
// Options without extending Canonical fails here instead of silently
// aliasing distinct configurations onto one cache entry.
func TestCanonicalCoversOptions(t *testing.T) {
	lines := strings.Split(strings.TrimRight(string(DefaultSpec().Canonical()), "\n"), "\n")
	// version line + exp line + one line per Options field
	want := 2 + reflect.TypeOf(Options{}).NumField()
	if len(lines) != want {
		t.Fatalf("canonical encoding has %d lines, want %d (one per Options field plus version and exp):\n%s",
			len(lines), want, strings.Join(lines, "\n"))
	}
	if lines[0] != specVersion {
		t.Fatalf("first line %q, want version tag %q", lines[0], specVersion)
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, "=") {
			t.Fatalf("line %q is not key=value", l)
		}
	}
}

func TestSpecNormalize(t *testing.T) {
	s := Spec{Experiments: []string{" fig2", "tab2 "}, Options: Quick()}
	n, err := s.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Experiments[0] != "fig2" || n.Experiments[1] != "tab2" {
		t.Fatalf("Normalize did not trim: %v", n.Experiments)
	}
	if _, err := (Spec{Experiments: []string{"nope"}}).Normalize(); err == nil {
		t.Fatal("unknown experiment should fail Normalize")
	}
	if _, err := (Spec{}).Normalize(); err == nil {
		t.Fatal("empty experiment list should fail Normalize")
	}
}

func TestResolveNames(t *testing.T) {
	all, err := ResolveNames("all")
	if err != nil || len(all) != len(Names) {
		t.Fatalf("ResolveNames(all) = %v, %v", all, err)
	}
	everything, err := ResolveNames("everything")
	if err != nil || len(everything) != len(Names)+len(Extra) {
		t.Fatalf("ResolveNames(everything) = %v, %v", everything, err)
	}
	got, err := ResolveNames(" fig6 , tab2")
	if err != nil || len(got) != 2 || got[0] != "fig6" || got[1] != "tab2" {
		t.Fatalf("ResolveNames list = %v, %v", got, err)
	}
	for _, bad := range []string{"", "fig2,", "nope", "fig2,,tab2"} {
		if _, err := ResolveNames(bad); err == nil {
			t.Fatalf("ResolveNames(%q) should error", bad)
		}
	}
}
