package experiments

import (
	"fmt"

	"spp1000/internal/counters"
	"spp1000/internal/machine"
	"spp1000/internal/sim"
	"spp1000/internal/stats"
	"spp1000/internal/threads"
	"spp1000/internal/topology"
)

// CounterDerived holds machine-level ratios re-derived purely from the
// PMU counter subsystem — no access to simulator internals, timings, or
// Stats; only what `sppbench -counters` would expose. Each field maps to
// a §4 calibration point of the paper, so agreement here demonstrates
// that the counters alone carry enough signal to reproduce the
// evaluation's headline numbers.
type CounterDerived struct {
	// LocalMissCycles / GlobalMissCycles are the mean per-class miss
	// latencies (mem.*_miss_cycles / mem.*_misses); GlobalLocalRatio is
	// their quotient — the paper's §6 "global memory latency is about
	// eight times" claim (calibrated tables give ≈7.2).
	LocalMissCycles  float64
	GlobalMissCycles float64
	GlobalLocalRatio float64

	// Barrier release on a 16-thread, 2-hypernode team (§4.2): the
	// releasing write must reach the n-1 = 15 spinning copies — 7 by
	// local directory invalidation, 8 by the SCI purge of the remote
	// hypernode's buffered copy.
	BarrierInvalidations int64
	// Longest SCI purge walk: sharing is tracked per hypernode, so one
	// remote hypernode means a walk of length 1 no matter how many of
	// its CPUs spin.
	BarrierPurgeWalkMax int64
	// The 8 remote spinners share one global-buffer copy: one attach.
	BarrierAttaches int64

	// Global cache buffer (§2.5): two CPUs of a remote hypernode read
	// the same line; only the first crosses a ring.
	BufferGlobalMisses    int64
	BufferHypernodeMisses int64
	BufferAttaches        int64
	BufferRingPackets     int64

	// Fork-join runtime events for a 9-thread HighLocality team — the
	// Fig. 2 knee where the team first spills onto a second hypernode.
	SpawnLocal   int64
	SpawnRemote  int64
	RuntimeInits int64
}

// missLadder measures per-class miss latency from counters: a CPU on
// the hosting hypernode streams cold lines (local / crossbar misses),
// then a CPU on the other hypernode streams a disjoint set (global
// misses). The second thread is released only after the first finishes
// so neither class's mean is polluted by contention.
func missLadder() (counters.Snapshot, error) {
	m, err := machine.New(machine.Config{Hypernodes: 2, CacheLines: 4096})
	if err != nil {
		return counters.Snapshot{}, err
	}
	reg := m.EnableCounters()
	sp := m.Alloc("ladder", topology.NearShared, 0, 0)
	const lines = 256
	seq := m.K.NewSemaphore("seq", 0)
	m.Spawn("near", topology.MakeCPU(0, 0, 0), func(th *machine.Thread) {
		for i := 0; i < lines; i++ {
			th.Read(sp, topology.Addr(i*topology.CacheLineBytes))
		}
		seq.V()
	})
	m.Spawn("far", topology.MakeCPU(1, 0, 0), func(th *machine.Thread) {
		seq.P(th.P)
		for i := lines; i < 2*lines; i++ {
			th.Read(sp, topology.Addr(i*topology.CacheLineBytes))
		}
	})
	if err := m.Run(); err != nil {
		return counters.Snapshot{}, err
	}
	return reg.Snapshot(), nil
}

// barrierEpisode runs one 16-thread barrier on two hypernodes, staggered
// so the last arrival — the releasing writer — sits on the flag's home
// hypernode, reproducing the §4.2 release fan-out.
func barrierEpisode() (counters.Snapshot, error) {
	m, err := machine.New(machine.Config{Hypernodes: 2})
	if err != nil {
		return counters.Snapshot{}, err
	}
	reg := m.EnableCounters()
	const n = 16
	bar := threads.NewBarrier(m, n, 0)
	_, err = threads.RunTeam(m, n, threads.HighLocality, func(th *machine.Thread, tid int) {
		// Reverse stagger: thread 0 (hypernode 0, where the flag lives)
		// arrives last and performs the releasing write. The step must
		// dwarf the serialized fork dispatch (~20k cycles across 16
		// spawns) or the arrival order is the spawn order instead.
		th.Delay(sim.Cycles((n - 1 - tid) * 25000))
		bar.Wait(th)
	})
	if err != nil {
		return counters.Snapshot{}, err
	}
	return reg.Snapshot(), nil
}

// globalBuffer exercises §2.5's node-level cache of remote lines: two
// CPUs of hypernode 1 read the same hypernode-0 line back to back.
func globalBuffer() (counters.Snapshot, error) {
	m, err := machine.New(machine.Config{Hypernodes: 2})
	if err != nil {
		return counters.Snapshot{}, err
	}
	reg := m.EnableCounters()
	sp := m.Alloc("line", topology.NearShared, 0, 0)
	seq := m.K.NewSemaphore("seq", 0)
	m.Spawn("first", topology.MakeCPU(1, 0, 0), func(th *machine.Thread) {
		th.Read(sp, 0)
		seq.V()
	})
	// The buffered copy lives in the FU of the line's home ring (FU 0),
	// so a second reader on FU 1 pays exactly one crossbar traversal.
	m.Spawn("second", topology.MakeCPU(1, 1, 0), func(th *machine.Thread) {
		seq.P(th.P)
		th.Read(sp, 0)
	})
	if err := m.Run(); err != nil {
		return counters.Snapshot{}, err
	}
	return reg.Snapshot(), nil
}

// forkBoundary forks the first team size that spans two hypernodes.
func forkBoundary() (counters.Snapshot, error) {
	m, err := machine.New(machine.Config{Hypernodes: 2})
	if err != nil {
		return counters.Snapshot{}, err
	}
	reg := m.EnableCounters()
	_, err = threads.RunTeam(m, topology.CPUsPerNode+1, threads.HighLocality,
		func(th *machine.Thread, tid int) {})
	if err != nil {
		return counters.Snapshot{}, err
	}
	return reg.Snapshot(), nil
}

// DeriveCounterRatios runs the four probe workloads and reduces their
// counter snapshots to the paper-comparable figures. It is deterministic
// and independent of the host worker pool: every probe is a fresh
// single-machine simulation read through its own registry.
func DeriveCounterRatios() (CounterDerived, error) {
	var d CounterDerived

	s, err := missLadder()
	if err != nil {
		return d, err
	}
	lm := s.Counter("mem", "local_misses")
	gm := s.Counter("mem", "global_misses")
	if lm == 0 || gm == 0 {
		return d, fmt.Errorf("miss ladder produced no misses (local %d, global %d)", lm, gm)
	}
	d.LocalMissCycles = float64(s.Counter("mem", "local_miss_cycles")) / float64(lm)
	d.GlobalMissCycles = float64(s.Counter("mem", "global_miss_cycles")) / float64(gm)
	d.GlobalLocalRatio = d.GlobalMissCycles / d.LocalMissCycles

	if s, err = barrierEpisode(); err != nil {
		return d, err
	}
	d.BarrierInvalidations = s.GroupTotal("directory", "invalidations")
	if h, ok := s.Histogram("sci", "purge_walk"); ok {
		d.BarrierPurgeWalkMax = h.Max
	}
	d.BarrierAttaches = s.Counter("sci", "attaches")

	if s, err = globalBuffer(); err != nil {
		return d, err
	}
	d.BufferGlobalMisses = s.Counter("mem", "global_misses")
	d.BufferHypernodeMisses = s.Counter("mem", "hypernode_misses")
	d.BufferAttaches = s.Counter("sci", "attaches")
	for i := 0; i < topology.NumRings; i++ {
		d.BufferRingPackets += s.Counter("ring", fmt.Sprintf("r%d.packets", i))
	}

	if s, err = forkBoundary(); err != nil {
		return d, err
	}
	d.SpawnLocal = s.Counter("threads", "spawn_local")
	d.SpawnRemote = s.Counter("threads", "spawn_remote")
	d.RuntimeInits = s.Counter("threads", "runtime_inits")
	return d, nil
}

// CountersReport renders the counter-derived figures against the
// paper's calibration — the `counters` experiment of sppbench.
func CountersReport(o Options) (string, error) {
	d, err := DeriveCounterRatios()
	if err != nil {
		return "", err
	}
	tb := stats.NewTable("Counter-derived calibration checks (PMU counters only)",
		"quantity", "derived", "expected", "source")
	tb.AddRow("local miss latency (cycles)", fmt.Sprintf("%.1f", d.LocalMissCycles), "~60", "§4.1 calibration")
	tb.AddRow("global miss latency (cycles)", fmt.Sprintf("%.1f", d.GlobalMissCycles), "~432", "§4.1 calibration")
	tb.AddRow("global/local miss ratio", fmt.Sprintf("%.2f", d.GlobalLocalRatio), "~8", "§6 (\"about eight times\")")
	tb.AddRow("barrier release invalidations (16 thr)", d.BarrierInvalidations, 15, "§4.2 (n-1 spinners)")
	tb.AddRow("barrier SCI purge-walk max", d.BarrierPurgeWalkMax, 1, "§2.5 (per-hypernode sharing)")
	tb.AddRow("barrier SCI attaches", d.BarrierAttaches, 1, "§2.5 (one buffered copy)")
	tb.AddRow("global-buffer ring crossings (2 readers)", d.BufferGlobalMisses, 1, "§2.5 (second read hits buffer)")
	tb.AddRow("global-buffer crossbar hits", d.BufferHypernodeMisses, 1, "§2.5")
	tb.AddRow("9-thread fork: local spawns", d.SpawnLocal, topology.CPUsPerNode, "Fig. 2 knee")
	tb.AddRow("9-thread fork: remote spawns", d.SpawnRemote, 1, "Fig. 2 knee")
	tb.AddRow("9-thread fork: runtime inits", d.RuntimeInits, 1, "§4.1")
	return tb.Render(), nil
}
