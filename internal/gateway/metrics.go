package gateway

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// clusterSummed lists the sppd counters the merged view totals across
// backends, in emission order. Every name is an integral counter or
// gauge, so the cluster line is an exact sum, never a float estimate —
// the PR 5 tradition: totals that reconcile exactly. At quiescence the
// job-lifecycle sum obeys
//
//	jobs_submitted = jobs_deduplicated + jobs_rejected
//	              + jobs_done (cached hits + computed) + jobs_failed
//	              + jobs_canceled + jobs_timeout + jobs_checkpointed
//
// per backend and therefore for the cluster totals (the fault-matrix
// suite asserts it through a mid-sweep backend kill).
//
//simlint:metrics-writer
var clusterSummed = []string{
	"jobs_submitted_total",
	"jobs_deduplicated_total",
	"jobs_rejected_total",
	"jobs_queued",
	"jobs_running",
	"jobs_done_total",
	"jobs_done_cached_total",
	"jobs_failed_total",
	"jobs_canceled_total",
	"jobs_timeout_total",
	"jobs_checkpointed_total",
	"peer_hits_total",
	"cache_hits_total",
	"cache_misses_total",
	"cache_coalesced_total",
	"cache_evictions_total",
	"store_hits_total",
	"store_errors_total",
	"sim_cycles_total",
}

// handleMetrics renders the merged cluster view: the gateway's own
// counters, then every backend's sppd_* lines re-prefixed
// sppgw_backend_<id>_*, then sppgw_cluster_* exact totals summed over
// the backends that answered. A backend that fails its scrape is
// evicted and omitted — its counters die with it, and the totals
// remain internally consistent over the surviving set.
//
//simlint:metrics-writer
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	g.prune()
	uptime := g.cfg.Now().Sub(g.started).Seconds()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	p := func(name string, format string, v any) {
		fmt.Fprintf(w, "sppgw_%s "+format+"\n", name, v)
	}
	backends := g.liveSorted()
	p("backends", "%d", int64(len(backends)))
	p("requests_total", "%d", g.requests.Load())
	p("submits_total", "%d", g.submits.Load())
	p("bad_submits_total", "%d", g.badSubmits.Load())
	p("proxy_retries_total", "%d", g.proxyRetries.Load())
	p("backend_evictions_total", "%d", g.evictions.Load())
	p("unavailable_total", "%d", g.unavailable.Load())
	p("peer_requests_total", "%d", g.peerRequests.Load())
	p("peer_hits_total", "%d", g.peerHits.Load())
	p("peer_probe_retries_total", "%d", g.peerProbeRetries.Load())
	p("heartbeats_total", "%d", g.heartbeats.Load())
	p("uptime_seconds", "%.3f", uptime)

	totals := make(map[string]int64, len(clusterSummed))
	summed := make(map[string]bool, len(clusterSummed))
	for _, name := range clusterSummed {
		summed[name] = true
	}
	for _, b := range backends {
		resp, data, err := g.roundTrip(b, http.MethodGet, "/metrics", nil)
		if err != nil {
			g.evict(b.id)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			continue
		}
		sid := sanitizeID(b.id)
		for _, line := range strings.Split(string(data), "\n") {
			name, val, ok := strings.Cut(line, " ")
			if !ok {
				continue
			}
			bare, ok := strings.CutPrefix(name, "sppd_")
			if !ok {
				continue
			}
			fmt.Fprintf(w, "sppgw_backend_%s_%s %s\n", sid, bare, val)
			if summed[bare] {
				if n, err := strconv.ParseInt(val, 10, 64); err == nil {
					totals[bare] += n
				}
			}
		}
	}
	for _, name := range clusterSummed {
		p("cluster_"+name, "%d", totals[name])
	}
}

// sanitizeID folds a backend id into a metrics-safe token: letters and
// digits pass, everything else becomes '_' (ids commonly look like
// "127.0.0.1:8181").
func sanitizeID(id string) string {
	out := []byte(id)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
