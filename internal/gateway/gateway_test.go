package gateway

// Cluster test rig: real gateways and real sppd Servers wired over
// live httptest listeners, exactly the topology `make cluster`
// exercises from the shell — the only stubbing is the RunFunc where a
// test doesn't need paper-scale output. These tests import sim-core
// packages freely; simlint classifies the gateway by its non-test
// sources only, so the production package stays sim-independent.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spp1000/internal/experiments"
	"spp1000/internal/load"
	"spp1000/internal/service"
)

// fakeClock is a mutex-guarded manual clock for driving TTL evictions
// deterministically (handlers read it concurrently under -race).
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// newTestGateway wires a Gateway to a live HTTP listener with the real
// SubmitKey (the same derivation every backend uses).
func newTestGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	if cfg.SubmitKey == nil {
		cfg.SubmitKey = service.SubmitKey
	}
	g := New(cfg)
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

// testBackend is one in-process sppd joined to a gateway.
type testBackend struct {
	id   string
	srv  *service.Server
	ts   *httptest.Server
	runs atomic.Int64 // fresh executions of this backend's RunFunc
}

// kill simulates the backend dying: its listener closes, so the next
// gateway forward gets a connection error and evicts it.
func (b *testBackend) kill() { b.ts.CloseClientConnections(); b.ts.Close() }

// startBackend boots an in-process sppd wired the way `sppd -join`
// wires a real one — ID stamped into views, peer fetches through the
// gateway — and registers it. run may be nil for the real DefaultRun.
func startBackend(t *testing.T, g *Gateway, gwURL, id string, run service.RunFunc) *testBackend {
	t.Helper()
	b := &testBackend{id: id}
	if run == nil {
		run = service.DefaultRun
	}
	counted := func(ctx context.Context, spec experiments.Spec) (string, error) {
		b.runs.Add(1)
		return run(ctx, spec)
	}
	b.srv = service.New(service.Config{
		ID:        id,
		Run:       counted,
		PeerFetch: service.PeerFetchVia(gwURL, id),
	})
	b.ts = httptest.NewServer(b.srv.Handler())
	t.Cleanup(func() {
		b.ts.Close() // idempotent: kill() may have closed it already
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		b.srv.Shutdown(ctx)
	})
	g.Register(id, b.ts.URL)
	return b
}

// newSoloServer serves a standalone (non-clustered) daemon — the
// reference a sharded sweep must match byte for byte.
func newSoloServer(t *testing.T, s *service.Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return ts
}

// decodeViews parses a job-list response body.
func decodeViews(t *testing.T, r io.Reader) []jobView {
	t.Helper()
	var views []jobView
	if err := json.NewDecoder(r).Decode(&views); err != nil {
		t.Fatal(err)
	}
	return views
}

// jobView is the subset of sppd's job view the cluster tests assert on.
type jobView struct {
	ID      string `json:"id"`
	Status  string `json:"status"`
	Cached  bool   `json:"cached"`
	Backend string `json:"backend"`
	Error   string `json:"error"`
}

// seedBody builds a submit body whose content address is pinned by the
// seed — the cluster tests sweep seeds to scatter keys over the ring.
func seedBody(seed int) string {
	return fmt.Sprintf(`{"experiments":["tab1"],"options":{"seed":%d}}`, seed)
}

// seedKey derives the content address the gateway will route seedBody
// by (the same function the gateway itself is configured with).
func seedKey(t *testing.T, seed int) string {
	t.Helper()
	key, err := service.SubmitKey([]byte(seedBody(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// gwSubmit posts one job body to a gateway (or daemon) base URL.
func gwSubmit(t *testing.T, baseURL, body string) (jobView, *http.Response) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var v jobView
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(data, &v); err != nil {
			t.Fatalf("bad submit response %q: %v", data, err)
		}
	}
	return v, resp
}

// gwWait polls a job through the gateway until it reaches want.
func gwWait(t *testing.T, baseURL, id, want string) jobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.Status == want {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return jobView{}
}

// gwResult fetches a job's result body through the gateway.
func gwResult(t *testing.T, baseURL, id string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return string(data), resp
}

// gwMetrics scrapes and parses a /metrics endpoint into name → value,
// keeping full metric names (sppgw_… and sppgw_backend_… intact) via
// the load harness's shared parser.
func gwMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	m, err := load.Scrape(nil, baseURL, "")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// backendViews fetches the gateway's live-membership endpoint.
func backendViews(t *testing.T, baseURL string) []BackendView {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var views []BackendView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	return views
}

// TestJoinHeartbeatTTLEviction drives membership with an injected
// clock: a backend that keeps heartbeating stays, one that falls
// silent past the TTL is evicted lazily on the next request.
func TestJoinHeartbeatTTLEviction(t *testing.T) {
	clock := newFakeClock()
	_, ts := newTestGateway(t, Config{HeartbeatTTL: 5 * time.Second, Now: clock.Now})

	join := func(id, addr string) int {
		t.Helper()
		body := fmt.Sprintf(`{"id":%q,"addr":%q}`, id, addr)
		resp, err := http.Post(ts.URL+"/v1/backends", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var v struct {
			Backends int `json:"backends"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("join %s: code %d, err %v", id, resp.StatusCode, err)
		}
		return v.Backends
	}

	if n := join("a", "http://127.0.0.1:1"); n != 1 {
		t.Fatalf("first join reported %d backends, want 1", n)
	}
	if n := join("b", "http://127.0.0.1:2"); n != 2 {
		t.Fatalf("second join reported %d backends, want 2", n)
	}

	// a heartbeats at +3s; b stays silent. At +6s b is 6s stale (> TTL)
	// and a is 3s fresh.
	clock.Advance(3 * time.Second)
	join("a", "http://127.0.0.1:1")
	clock.Advance(3 * time.Second)

	views := backendViews(t, ts.URL)
	if len(views) != 1 || views[0].ID != "a" {
		t.Fatalf("membership after TTL = %+v, want just a", views)
	}
	if views[0].AgeSeconds != 3 {
		t.Fatalf("a's heartbeat age = %v, want 3s under the fake clock", views[0].AgeSeconds)
	}

	m := gwMetrics(t, ts.URL)
	if m["sppgw_backend_evictions_total"] != 1 {
		t.Fatalf("evictions = %v, want 1", m["sppgw_backend_evictions_total"])
	}
	if m["sppgw_heartbeats_total"] != 3 {
		t.Fatalf("heartbeats = %v, want 3", m["sppgw_heartbeats_total"])
	}

	// Graceful leave removes immediately, no TTL wait.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/backends/a", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("leave: %v, code %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	if views := backendViews(t, ts.URL); len(views) != 0 {
		t.Fatalf("membership after leave = %+v, want empty", views)
	}

	// Bad join bodies are rejected before touching the ring.
	for _, body := range []string{`{`, `{"id":"x"}`, `{"addr":"http://h"}`} {
		resp, err := http.Post(ts.URL+"/v1/backends", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("join %q: code %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestJoinerLifecycle round-trips the sppd side of membership: a real
// Joiner registers itself, heartbeats keep it live, and Close
// deregisters it immediately.
func TestJoinerLifecycle(t *testing.T) {
	g, ts := newTestGateway(t, Config{HeartbeatTTL: time.Hour})
	j := service.StartJoiner(ts.URL, "b1", "http://127.0.0.1:9", 20*time.Millisecond)

	deadline := time.Now().Add(5 * time.Second)
	for g.Backends() == nil || len(g.Backends()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("joiner never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	views := g.Backends()
	if views[0].ID != "b1" || views[0].Addr != "http://127.0.0.1:9" {
		t.Fatalf("registered view = %+v", views[0])
	}

	j.Close()
	if views := g.Backends(); len(views) != 0 {
		t.Fatalf("membership after Joiner.Close = %+v, want empty (graceful leave, not TTL)", views)
	}
}

// TestGatewaySubmitValidationAndUnavailable covers the gateway's own
// refusals: malformed bodies bounce 400 before costing a hop, and with
// no live backend submits answer 503 with a Retry-After that sppctl's
// backoff honors.
func TestGatewaySubmitValidationAndUnavailable(t *testing.T) {
	_, ts := newTestGateway(t, Config{})

	for _, body := range []string{`{`, `{"experiments":[]}`, `{"experiments":["tab1"],"nope":1}`} {
		_, resp := gwSubmit(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("submit %q: code %d, want 400", body, resp.StatusCode)
		}
	}

	_, resp := gwSubmit(t, ts.URL, seedBody(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with no backends: code %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("503 Retry-After = %q, want \"1\"", resp.Header.Get("Retry-After"))
	}

	m := gwMetrics(t, ts.URL)
	if m["sppgw_bad_submits_total"] != 3 {
		t.Fatalf("bad_submits = %v, want 3", m["sppgw_bad_submits_total"])
	}
	if m["sppgw_unavailable_total"] != 1 {
		t.Fatalf("unavailable = %v, want 1", m["sppgw_unavailable_total"])
	}

	// A gateway missing its SubmitKey wiring fails loudly, not quietly.
	bare := New(Config{})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader([]byte(seedBody(1))))
	bare.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("submit without SubmitKey: code %d, want 500", rec.Code)
	}
}

// TestMergedMetricsReconcile drives a 2-backend cluster through
// submits, dedups, and cache-served repeats, then demands the merged
// view add up exactly: per-backend lines re-sum to the cluster totals,
// and the cluster job-lifecycle equation balances.
func TestMergedMetricsReconcile(t *testing.T) {
	stub := func(ctx context.Context, spec experiments.Spec) (string, error) {
		return fmt.Sprintf("seed:%d", spec.Options.Seed), nil
	}
	g, ts := newTestGateway(t, Config{HeartbeatTTL: time.Hour})
	backs := []*testBackend{
		startBackend(t, g, ts.URL, "m1", stub),
		startBackend(t, g, ts.URL, "m2", stub),
	}

	const seeds = 8
	ids := make([]string, 0, seeds)
	for seed := 1; seed <= seeds; seed++ {
		v, resp := gwSubmit(t, ts.URL, seedBody(seed))
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit seed %d: %d", seed, resp.StatusCode)
		}
		if want := seedKey(t, seed); v.ID != want {
			t.Fatalf("seed %d routed under id %s, want its content key %s", seed, v.ID, want)
		}
		ids = append(ids, v.ID)
	}
	for _, id := range ids {
		gwWait(t, ts.URL, id, "done")
	}
	// Repeat the full sweep: every submission is now answered by a
	// finished job (dedup) without a new run.
	for seed := 1; seed <= seeds; seed++ {
		v, resp := gwSubmit(t, ts.URL, seedBody(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("repeat seed %d: code %d, want 200", seed, resp.StatusCode)
		}
		if v.Status != "done" {
			t.Fatalf("repeat seed %d: status %s", seed, v.Status)
		}
	}

	m := gwMetrics(t, ts.URL)

	// The gateway accepted every submission for routing.
	if got := m["sppgw_submits_total"]; got != 2*seeds {
		t.Fatalf("sppgw_submits_total = %v, want %d", got, 2*seeds)
	}
	// Every submit is an HTTP request the gateway served, so the request
	// counter bounds the submit counter from above.
	if got := m["sppgw_requests_total"]; got < 2*seeds {
		t.Fatalf("sppgw_requests_total = %v, want >= %d", got, 2*seeds)
	}
	// No backend failed a scrape in this test, so the eviction counter
	// is present and zero.
	if got, ok := m["sppgw_backend_evictions_total"]; !ok || got != 0 {
		t.Fatalf("sppgw_backend_evictions_total = %v (present=%v), want 0", got, ok)
	}
	// Per-backend lines re-sum to the cluster totals, name by name.
	for _, name := range clusterSummed {
		sum := 0.0
		for _, b := range backs {
			sum += m["sppgw_backend_"+b.id+"_"+name]
		}
		if got := m["sppgw_cluster_"+name]; got != sum {
			t.Errorf("sppgw_cluster_%s = %v, but backend lines sum to %v", name, got, sum)
		}
	}
	// The cluster lifecycle equation, exactly: every submission that
	// reached a backend was deduped, rejected, or ended terminal.
	sub := m["sppgw_cluster_jobs_submitted_total"]
	acc := m["sppgw_cluster_jobs_deduplicated_total"] + m["sppgw_cluster_jobs_rejected_total"] +
		m["sppgw_cluster_jobs_done_total"] + m["sppgw_cluster_jobs_failed_total"] +
		m["sppgw_cluster_jobs_canceled_total"] + m["sppgw_cluster_jobs_timeout_total"] +
		m["sppgw_cluster_jobs_checkpointed_total"]
	if sub != 2*seeds || sub != acc {
		t.Errorf("cluster lifecycle: submitted %v, accounted %v, want both %d", sub, acc, 2*seeds)
	}
	// Done splits into cached answers and fresh executions, and the
	// fresh executions are exactly the runs the stubs saw.
	runs := float64(backs[0].runs.Load() + backs[1].runs.Load())
	if runs != seeds {
		t.Errorf("stub runs = %v, want %d (dedup must not re-run)", runs, seeds)
	}
	if done, cached := m["sppgw_cluster_jobs_done_total"], m["sppgw_cluster_jobs_done_cached_total"]; done-cached != runs {
		t.Errorf("done %v - done_cached %v = %v computed, want %v runs", done, cached, done-cached, runs)
	}
	// Both backends took a share of the keyspace.
	for _, b := range backs {
		if m["sppgw_backend_"+b.id+"_jobs_submitted_total"] == 0 {
			t.Errorf("backend %s saw no submissions: ring not spreading keys", b.id)
		}
	}
}
