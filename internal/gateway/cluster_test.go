package gateway

// End-to-end cluster acceptance: a sweep through sppgw over sharded
// backends must be byte-identical to the same sweep against one
// standalone sppd (sharding is pure routing — it must never touch
// results), and a key re-homed onto a joining backend must become a
// warm hit via peer fetch instead of a recompute.

import (
	"io"
	"net/http"
	"testing"
	"time"

	"spp1000/internal/service"
	"spp1000/internal/store"
)

// TestClusterByteIdenticalToSingleDaemon runs the same seed sweep, with
// the real simulation RunFunc, against a gateway fronting two backends
// and against one standalone daemon, and compares every result byte
// for byte. It also pins the ownership surfaces: each job view names
// its backend, the X-Spp-Backend header matches it, and both backends
// take a share of the keyspace.
func TestClusterByteIdenticalToSingleDaemon(t *testing.T) {
	g, gwts := newTestGateway(t, Config{HeartbeatTTL: time.Hour})
	backs := map[string]*testBackend{
		"b1": startBackend(t, g, gwts.URL, "b1", nil),
		"b2": startBackend(t, g, gwts.URL, "b2", nil),
	}

	solo := service.New(service.Config{})
	sots := newSoloServer(t, solo)

	const seeds = 12
	type submitted struct {
		id      string
		backend string
	}
	cluster := make(map[int]submitted, seeds)
	for seed := 1; seed <= seeds; seed++ {
		v, resp := gwSubmit(t, gwts.URL, seedBody(seed))
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("cluster submit seed %d: %d", seed, resp.StatusCode)
		}
		hdr := resp.Header.Get("X-Spp-Backend")
		if _, ok := backs[hdr]; !ok {
			t.Fatalf("seed %d: X-Spp-Backend = %q, want b1 or b2", seed, hdr)
		}
		cluster[seed] = submitted{id: v.ID, backend: hdr}
		if sv, resp := gwSubmit(t, sots.URL, seedBody(seed)); resp.StatusCode >= 300 {
			t.Fatalf("solo submit seed %d: %d", seed, resp.StatusCode)
		} else if sv.ID != v.ID {
			t.Fatalf("seed %d keyed %s via gateway but %s solo", seed, v.ID, sv.ID)
		}
	}

	for seed := 1; seed <= seeds; seed++ {
		sub := cluster[seed]
		v := gwWait(t, gwts.URL, sub.id, "done")
		if v.Backend != sub.backend {
			t.Errorf("seed %d: view backend %q != routed backend %q", seed, v.Backend, sub.backend)
		}
		gwWait(t, sots.URL, sub.id, "done")

		cres, cresp := gwResult(t, gwts.URL, sub.id)
		sres, sresp := gwResult(t, sots.URL, sub.id)
		if cresp.StatusCode != http.StatusOK || sresp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d results: cluster %d, solo %d", seed, cresp.StatusCode, sresp.StatusCode)
		}
		if cres != sres {
			t.Errorf("seed %d: cluster result differs from standalone:\ncluster: %q\nsolo:    %q", seed, cres, sres)
		}
		if hdr := cresp.Header.Get("X-Spp-Backend"); hdr != sub.backend {
			t.Errorf("seed %d: result X-Spp-Backend = %q, want %q", seed, hdr, sub.backend)
		}
	}

	for id, b := range backs {
		if b.runs.Load() == 0 {
			t.Errorf("backend %s ran nothing: ring not spreading a %d-seed sweep", id, seeds)
		}
	}

	// The merged list fans out: all jobs visible through one endpoint,
	// each naming its owner.
	resp, err := http.Get(gwts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	views := decodeViews(t, resp.Body)
	if len(views) != seeds {
		t.Fatalf("merged list has %d jobs, want %d", len(views), seeds)
	}
	for _, v := range views {
		if _, ok := backs[v.Backend]; !ok {
			t.Errorf("merged list job %s names backend %q", v.ID, v.Backend)
		}
	}
}

// TestPeerFetchWarmMiss is the warm-migration property: a key computed
// on the only backend, then re-homed by a join, is served by the new
// owner from the previous owner's store entry — cached, zero fresh
// runs — through the gateway's peer endpoint.
func TestPeerFetchWarmMiss(t *testing.T) {
	g, gwts := newTestGateway(t, Config{HeartbeatTTL: time.Hour})
	p1 := startBackend(t, g, gwts.URL, "p1", nil)

	const seeds = 20
	orig := make(map[int]string, seeds)
	for seed := 1; seed <= seeds; seed++ {
		v, resp := gwSubmit(t, gwts.URL, seedBody(seed))
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit seed %d: %d", seed, resp.StatusCode)
		}
		gwWait(t, gwts.URL, v.ID, "done")
		// Capture every result now: after the join, a moved key's status
		// routes to p2, which won't know the job until it is resubmitted.
		orig[seed], _ = gwResult(t, gwts.URL, v.ID)
	}
	runsBefore := p1.runs.Load()
	if runsBefore != seeds {
		t.Fatalf("p1 ran %d jobs, want %d", runsBefore, seeds)
	}

	p2 := startBackend(t, g, gwts.URL, "p2", nil)

	// Find a seed whose key re-homes onto p2 (the ring is deterministic,
	// so mirror it: same vnode count, members p1+p2).
	mirror := NewRing(DefaultVNodes)
	mirror.Add("p1")
	mirror.Add("p2")
	moved := 0
	for seed := 1; seed <= seeds; seed++ {
		if owner, _ := mirror.Owner(seedKey(t, seed)); owner != "p2" {
			continue
		}
		moved++
		v, resp := gwSubmit(t, gwts.URL, seedBody(seed))
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("re-submit seed %d: %d", seed, resp.StatusCode)
		}
		if hdr := resp.Header.Get("X-Spp-Backend"); hdr != "p2" {
			t.Fatalf("re-homed seed %d routed to %q, want p2", seed, hdr)
		}
		done := gwWait(t, gwts.URL, v.ID, "done")
		if !done.Cached {
			t.Errorf("re-homed seed %d: cached = false, want a peer-warmed hit", seed)
		}
		if res, _ := gwResult(t, gwts.URL, v.ID); res != orig[seed] {
			t.Errorf("re-homed seed %d: result changed across the migration", seed)
		}
	}
	if moved == 0 {
		t.Fatal("no key re-homed onto p2; widen the seed sweep")
	}
	if got := p2.runs.Load(); got != 0 {
		t.Errorf("p2 ran %d jobs, want 0: every re-homed key should peer-fetch, not recompute", got)
	}
	if got := p1.runs.Load(); got != runsBefore {
		t.Errorf("p1 ran %d more jobs after the join", got-runsBefore)
	}

	m := gwMetrics(t, gwts.URL)
	// Every cold miss probes too (p1 asked during the initial sweep and
	// found no candidates), so requests = initial sweep + re-homed keys
	// while hits count only the warm migrations.
	if got := m["sppgw_peer_requests_total"]; got != float64(seeds+moved) {
		t.Errorf("sppgw_peer_requests_total = %v, want %d", got, seeds+moved)
	}
	if got := m["sppgw_peer_hits_total"]; got != float64(moved) {
		t.Errorf("sppgw_peer_hits_total = %v, want %d", got, moved)
	}
	if got := m["sppgw_backend_p2_peer_hits_total"]; got != float64(moved) {
		t.Errorf("p2 peer_hits_total = %v, want %d", got, moved)
	}
	if got := m["sppgw_cluster_peer_hits_total"]; got != float64(moved) {
		t.Errorf("cluster peer_hits_total = %v, want %d", got, moved)
	}
}

// TestStoreExportEndpoint pins the peer wire format end to end: the
// backend's export endpoint serves the CRC32-framed store encoding,
// the gateway's peer endpoint relays it intact, and both reject keys
// Spec.Key could never have minted.
func TestStoreExportEndpoint(t *testing.T) {
	g, gwts := newTestGateway(t, Config{HeartbeatTTL: time.Hour})
	b := startBackend(t, g, gwts.URL, "e1", nil)

	v, resp := gwSubmit(t, gwts.URL, seedBody(1))
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	gwWait(t, gwts.URL, v.ID, "done")
	want, _ := gwResult(t, gwts.URL, v.ID)

	// Direct export from the backend: a valid frame holding the result.
	eresp, err := http.Get(b.ts.URL + "/v1/store/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(eresp.Body)
	eresp.Body.Close()
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("store export: %d", eresp.StatusCode)
	}
	val, ok := store.Decode(data)
	if !ok || val != want {
		t.Fatalf("exported frame decodes (%v) to %q, want %q", ok, val, want)
	}

	// The gateway's peer endpoint relays the same frame (no exclusion:
	// the asker here is an outside observer).
	presp, err := http.Get(gwts.URL + "/v1/peer/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	pdata, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK || string(pdata) != string(data) {
		t.Fatalf("peer relay: code %d, frame match %v", presp.StatusCode, string(pdata) == string(data))
	}

	// Unknown-but-valid key: 404 from both layers.
	missing := seedKey(t, 999999)
	for _, url := range []string{b.ts.URL + "/v1/store/" + missing, gwts.URL + "/v1/peer/" + missing} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", url, resp.StatusCode)
		}
	}

	// Malformed keys: 400 from both layers, reusing store.ValidKey.
	for _, bad := range []string{"nope", "XYZ", "..%2F..%2Fetc%2Fpasswd"} {
		for _, url := range []string{b.ts.URL + "/v1/store/" + bad, gwts.URL + "/v1/peer/" + bad} {
			resp, err := http.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("GET %s: %d, want 400", url, resp.StatusCode)
			}
		}
	}
}
