package gateway

// The cluster half of the fault matrix: backends die mid-sweep, peer
// fetches fail, forwards hit simulated connection errors — and the
// cluster must still finish every job with correct results and exact
// accounting. Tests that arm faultinject hooks must not run in
// parallel (Arm panics on overlap).

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"spp1000/internal/experiments"
	"spp1000/internal/faultinject"
	"spp1000/internal/store"
)

// TestBackendKillMidSweep is the headline fault drill: a two-backend
// cluster takes a sweep, one backend is killed while every job is
// still in flight, and the driver — retrying on 404 by resubmitting
// the same body, exactly what a content-addressed client does — still
// collects a complete, correct result set from the survivor.
func TestBackendKillMidSweep(t *testing.T) {
	gate := make(chan struct{})
	released := false
	release := func() {
		if !released {
			released = true
			close(gate)
		}
	}
	defer release()
	blockedStub := func(ctx context.Context, spec experiments.Spec) (string, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return "", ctx.Err()
		}
		return fmt.Sprintf("seed:%d", spec.Options.Seed), nil
	}

	g, ts := newTestGateway(t, Config{HeartbeatTTL: time.Hour})
	startBackend(t, g, ts.URL, "k1", blockedStub)
	k2 := startBackend(t, g, ts.URL, "k2", blockedStub)

	const seeds = 10
	ids := make(map[int]string, seeds)
	victimHadWork := false
	for seed := 1; seed <= seeds; seed++ {
		v, resp := gwSubmit(t, ts.URL, seedBody(seed))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit seed %d: %d", seed, resp.StatusCode)
		}
		ids[seed] = v.ID
		if resp.Header.Get("X-Spp-Backend") == "k2" {
			victimHadWork = true
		}
	}
	if !victimHadWork {
		t.Fatal("no key routed to the victim backend; the kill would prove nothing")
	}

	// Kill k2 with its share of the sweep still queued or running, then
	// let the survivor's jobs finish.
	k2.kill()
	release()

	// Drive every job to done the way sppctl would: poll through the
	// gateway; a 404 means the key re-homed onto a backend that never
	// saw it, so resubmit the same body (pure jobs make this always
	// safe) and keep polling.
	deadline := time.Now().Add(10 * time.Second)
	for seed := 1; seed <= seeds; seed++ {
		for {
			if time.Now().After(deadline) {
				t.Fatalf("seed %d never completed after the kill", seed)
			}
			resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[seed])
			if err != nil {
				t.Fatal(err)
			}
			code := resp.StatusCode
			var v jobView
			if code == http.StatusOK {
				v = decodeView(t, resp)
			} else {
				resp.Body.Close()
			}
			if code == http.StatusNotFound {
				if _, rs := gwSubmit(t, ts.URL, seedBody(seed)); rs.StatusCode >= 300 {
					t.Fatalf("resubmit seed %d after kill: %d", seed, rs.StatusCode)
				}
				continue
			}
			if code != http.StatusOK {
				t.Fatalf("poll seed %d: %d", seed, code)
			}
			if v.Status == "done" {
				if v.Backend != "k1" {
					t.Fatalf("seed %d finished on %q, want the survivor k1", seed, v.Backend)
				}
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		res, rresp := gwResult(t, ts.URL, ids[seed])
		if rresp.StatusCode != http.StatusOK || res != fmt.Sprintf("seed:%d", seed) {
			t.Fatalf("seed %d result after kill = %d %q", seed, rresp.StatusCode, res)
		}
	}

	m := gwMetrics(t, ts.URL)
	if m["sppgw_backend_evictions_total"] < 1 {
		t.Errorf("evictions = %v, want >= 1 (the killed backend)", m["sppgw_backend_evictions_total"])
	}
	if m["sppgw_proxy_retries_total"] < 1 {
		t.Errorf("proxy_retries = %v, want >= 1 (forwards re-routed off the corpse)", m["sppgw_proxy_retries_total"])
	}
	if m["sppgw_backends"] != 1 {
		t.Errorf("live backends = %v, want 1", m["sppgw_backends"])
	}
	// The survivor's books still balance: every submission it saw is
	// deduped, rejected, or terminal. (The corpse's counters died with
	// it; the merged view only ever sums live backends.)
	sub := m["sppgw_cluster_jobs_submitted_total"]
	acc := m["sppgw_cluster_jobs_deduplicated_total"] + m["sppgw_cluster_jobs_rejected_total"] +
		m["sppgw_cluster_jobs_done_total"] + m["sppgw_cluster_jobs_failed_total"] +
		m["sppgw_cluster_jobs_canceled_total"] + m["sppgw_cluster_jobs_timeout_total"] +
		m["sppgw_cluster_jobs_checkpointed_total"]
	if sub == 0 || sub != acc {
		t.Errorf("survivor lifecycle: submitted %v, accounted %v", sub, acc)
	}
	if got := m["sppgw_cluster_jobs_done_total"]; got != seeds {
		t.Errorf("cluster done = %v, want %d (every seed completed on the survivor)", got, seeds)
	}
}

// decodeView reads one job view and closes the body.
func decodeView(t *testing.T, resp *http.Response) jobView {
	t.Helper()
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestPeerFetchFailureRecomputes proves the warm path is only an
// optimization: when the peer fetch is fault-injected to fail, the
// re-homed key is recomputed locally and the result is still correct.
func TestPeerFetchFailureRecomputes(t *testing.T) {
	g, ts := newTestGateway(t, Config{HeartbeatTTL: time.Hour})
	startBackend(t, g, ts.URL, "f1", nil)

	const seeds = 20
	orig := make(map[int]string, seeds)
	for seed := 1; seed <= seeds; seed++ {
		v, resp := gwSubmit(t, ts.URL, seedBody(seed))
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit seed %d: %d", seed, resp.StatusCode)
		}
		gwWait(t, ts.URL, v.ID, "done")
		orig[seed], _ = gwResult(t, ts.URL, v.ID)
	}

	disarm := faultinject.Arm(faultinject.PeerFetch, func(args ...string) error {
		return fmt.Errorf("injected: peer fetch of %s failed", args[0])
	})
	defer disarm()

	f2 := startBackend(t, g, ts.URL, "f2", nil)
	mirror := NewRing(DefaultVNodes)
	mirror.Add("f1")
	mirror.Add("f2")
	moved := 0
	for seed := 1; seed <= seeds; seed++ {
		if owner, _ := mirror.Owner(seedKey(t, seed)); owner != "f2" {
			continue
		}
		moved++
		v, resp := gwSubmit(t, ts.URL, seedBody(seed))
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("re-submit seed %d: %d", seed, resp.StatusCode)
		}
		done := gwWait(t, ts.URL, v.ID, "done")
		if done.Cached {
			t.Errorf("seed %d reported cached despite the peer-fetch fault: the warm path should have failed", seed)
		}
		if res, _ := gwResult(t, ts.URL, v.ID); res != orig[seed] {
			t.Errorf("seed %d: recomputed result differs from the original", seed)
		}
	}
	if moved == 0 {
		t.Fatal("no key re-homed onto f2; widen the seed sweep")
	}
	if got := f2.runs.Load(); got != int64(moved) {
		t.Errorf("f2 ran %d jobs, want %d (every failed peer fetch must fall back to a recompute)", got, moved)
	}
	m := gwMetrics(t, ts.URL)
	if got := m["sppgw_backend_f2_peer_hits_total"]; got != 0 {
		t.Errorf("f2 peer_hits_total = %v, want 0", got)
	}
}

// TestPeerProbeStaleWindowRetry drills the stale-candidates window in
// the peer-probe path: the candidate list is a snapshot of the ring, so
// a backend that dies between that lookup and its probe surfaces as a
// transport failure mid-pass, while the entry's real holder — rejoining
// inside that same window — is invisible to the pass. handlePeer must
// then retry exactly once against the re-resolved membership and serve
// the entry instead of answering a hard 404. The assertion on
// sppgw_peer_probe_retries_total here is also what keeps that metric on
// simlint's ledger reconcile surface.
func TestPeerProbeStaleWindowRetry(t *testing.T) {
	g, ts := newTestGateway(t, Config{HeartbeatTTL: time.Hour})

	// h1 computes the entry while joined, then leaves gracefully — its
	// HTTP server (and store export) stays up, but it is off the ring.
	h1 := startBackend(t, g, ts.URL, "h1", nil)
	v, resp := gwSubmit(t, ts.URL, seedBody(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	gwWait(t, ts.URL, v.ID, "done")
	want, rresp := gwResult(t, ts.URL, v.ID)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d", rresp.StatusCode)
	}
	g.Deregister("h1")

	// The ring now holds only a corpse. The armed hook makes probing it
	// fail like a refused connection — and re-registers h1 from inside
	// that failure window, the membership churn the retry exists for:
	// pass 1 sees only the corpse and comes back empty with a transport
	// failure; the retry resolves fresh and finds the holder.
	g.Register("stale", "http://127.0.0.1:1")
	disarm := faultinject.Arm(faultinject.GatewayPeerProbe, func(args ...string) error {
		if args[0] != "stale" {
			return nil
		}
		g.Register("h1", h1.ts.URL)
		return fmt.Errorf("injected: connection to %s refused", args[0])
	})
	defer disarm()

	presp, err := http.Get(ts.URL + "/v1/peer/" + seedKey(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("peer fetch = %d, want 200 served by the retry pass", presp.StatusCode)
	}
	frame, err := io.ReadAll(presp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := store.Decode(frame); !ok || got != want {
		t.Fatalf("peer entry decode ok=%v (%d frame bytes), want the original result intact", ok, len(frame))
	}

	m := gwMetrics(t, ts.URL)
	if m["sppgw_peer_probe_retries_total"] != 1 {
		t.Errorf("peer_probe_retries = %v, want exactly 1", m["sppgw_peer_probe_retries_total"])
	}
	// requests = 2: h1's own warm-miss lookup at submit time, then this
	// drill's fetch — of which only the drill's found a holder.
	if m["sppgw_peer_requests_total"] != 2 || m["sppgw_peer_hits_total"] != 1 {
		t.Errorf("peer requests/hits = %v/%v, want 2/1",
			m["sppgw_peer_requests_total"], m["sppgw_peer_hits_total"])
	}
	if m["sppgw_backends"] != 1 {
		t.Errorf("live backends = %v, want 1 (the corpse evicted, the holder back)", m["sppgw_backends"])
	}
}

// TestGatewayForwardFaultEvicts proves the faultinject hook behaves
// exactly like a refused connection: the targeted backend is evicted
// and the forward retries against the re-hashed owner, invisibly to
// the client.
func TestGatewayForwardFaultEvicts(t *testing.T) {
	stub := func(ctx context.Context, spec experiments.Spec) (string, error) {
		return fmt.Sprintf("seed:%d", spec.Options.Seed), nil
	}
	g, ts := newTestGateway(t, Config{HeartbeatTTL: time.Hour})
	startBackend(t, g, ts.URL, "g1", stub)
	startBackend(t, g, ts.URL, "g2", stub)

	// Find a seed owned by g2, then make every forward to g2 fail.
	mirror := NewRing(DefaultVNodes)
	mirror.Add("g1")
	mirror.Add("g2")
	seed := 0
	for s := 1; ; s++ {
		if owner, _ := mirror.Owner(seedKey(t, s)); owner == "g2" {
			seed = s
			break
		}
	}
	disarm := faultinject.Arm(faultinject.GatewayForward, func(args ...string) error {
		if args[0] == "g2" {
			return fmt.Errorf("injected: connection to %s refused", args[0])
		}
		return nil
	})
	defer disarm()

	v, resp := gwSubmit(t, ts.URL, seedBody(seed))
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if hdr := resp.Header.Get("X-Spp-Backend"); hdr != "g1" {
		t.Fatalf("submit answered by %q, want g1 after g2's eviction", hdr)
	}
	done := gwWait(t, ts.URL, v.ID, "done")
	if done.Backend != "g1" {
		t.Fatalf("job ran on %q, want g1", done.Backend)
	}
	if res, _ := gwResult(t, ts.URL, v.ID); res != fmt.Sprintf("seed:%d", seed) {
		t.Fatalf("result = %q", res)
	}

	m := gwMetrics(t, ts.URL)
	if m["sppgw_backend_evictions_total"] != 1 {
		t.Errorf("evictions = %v, want 1", m["sppgw_backend_evictions_total"])
	}
	if m["sppgw_proxy_retries_total"] != 1 {
		t.Errorf("proxy_retries = %v, want 1", m["sppgw_proxy_retries_total"])
	}
	if m["sppgw_backends"] != 1 {
		t.Errorf("live backends = %v, want 1 (g2 evicted)", m["sppgw_backends"])
	}
}
