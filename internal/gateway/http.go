package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"spp1000/internal/faultinject"
	"spp1000/internal/store"
)

// maxSubmitBody bounds a submit body read at the gateway; sppd bodies
// are a few hundred bytes, so 1 MiB is generous admission control.
const maxSubmitBody = 1 << 20

// Handler returns the gateway's HTTP API. The job-facing routes mirror
// sppd exactly — sppctl pointed at a gateway needs no new flags — plus
// the cluster-control routes backends and peers use:
//
//	POST   /v1/jobs             submit: route by content key to the owner
//	GET    /v1/jobs             list: fan out to every backend, merge
//	GET    /v1/jobs/{id}        status: route by id (the id IS the key)
//	GET    /v1/jobs/{id}/result result: route by id
//	DELETE /v1/jobs/{id}        cancel: route by id
//	POST   /v1/backends         backend join/heartbeat {id, addr}
//	DELETE /v1/backends/{id}    graceful leave (immediate re-hash)
//	GET    /v1/backends         live membership view
//	GET    /v1/peer/{key}       peer fetch: previous owner's store entry
//	GET    /metrics             merged per-backend + cluster-total view
//	GET    /healthz             gateway liveness probe
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", g.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", g.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", g.handleByID)
	mux.HandleFunc("GET /v1/jobs/{id}/result", g.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", g.handleByID)
	mux.HandleFunc("POST /v1/backends", g.handleJoin)
	mux.HandleFunc("DELETE /v1/backends/{id}", g.handleLeave)
	mux.HandleFunc("GET /v1/backends", g.handleBackends)
	mux.HandleFunc("GET /v1/peer/{key}", g.handlePeer)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.requests.Add(1)
		mux.ServeHTTP(w, r)
	})
}

func (g *Gateway) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID   string `json:"id"`
		Addr string `json:"addr"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, maxSubmitBody)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad join body: %w", err))
		return
	}
	if req.ID == "" || req.Addr == "" {
		writeErr(w, http.StatusBadRequest, errors.New("join needs both id and addr"))
		return
	}
	n := g.Register(req.ID, req.Addr)
	writeJSON(w, http.StatusOK, map[string]any{"id": req.ID, "backends": n})
}

func (g *Gateway) handleLeave(w http.ResponseWriter, r *http.Request) {
	g.Deregister(r.PathValue("id"))
	w.WriteHeader(http.StatusNoContent)
}

func (g *Gateway) handleBackends(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Backends())
}

func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSubmitBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if g.cfg.SubmitKey == nil {
		writeErr(w, http.StatusInternalServerError, errors.New("gateway has no SubmitKey configured"))
		return
	}
	// Admission control: a body no backend could accept is rejected
	// here, before it costs a hop — and the key it yields is the same
	// one the owning backend will derive, so routing and caching agree.
	key, err := g.cfg.SubmitKey(body)
	if err != nil {
		g.badSubmits.Add(1)
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	g.submits.Add(1)
	g.forward(w, key, http.MethodPost, "/v1/jobs", body)
}

func (g *Gateway) handleByID(w http.ResponseWriter, r *http.Request) {
	g.forward(w, r.PathValue("id"), r.Method, "/v1/jobs/"+r.PathValue("id"), nil)
}

func (g *Gateway) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	g.forward(w, id, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
}

// forward routes one request to key's owning backend and relays the
// response. A connection-level failure evicts the backend and retries
// against the re-hashed owner — safe for every routed verb, because
// jobs are pure and content-addressed (a re-sent submit can only
// rejoin or recompute the same job; after an eviction the new owner
// may answer a status poll 404, which clients fix by resubmitting the
// same body). With no live backend the gateway answers 503 with a
// Retry-After, which sppctl's backoff honors.
func (g *Gateway) forward(w http.ResponseWriter, key, method, path string, body []byte) {
	for {
		b, ok := g.ownerFor(key)
		if !ok {
			g.unavailable.Add(1)
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, errors.New("no live backends (start sppd -join, or wait for one to register)"))
			return
		}
		resp, data, err := g.roundTrip(b, method, path, body)
		if err != nil {
			g.evict(b.id)
			g.proxyRetries.Add(1)
			continue
		}
		for name, vals := range resp.Header {
			for _, v := range vals {
				w.Header().Add(name, v)
			}
		}
		if resp.StatusCode == http.StatusServiceUnavailable && w.Header().Get("Retry-After") == "" {
			// A backend's own overload answer (queue full, draining):
			// relay it, but teach pollers when to come back.
			w.Header().Set("Retry-After", "1")
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(data)
		return
	}
}

// roundTrip issues one backend request. The faultinject point lets the
// cluster fault matrix simulate a dead backend (its error is treated
// exactly like a refused connection) without killing a process.
func (g *Gateway) roundTrip(b backend, method, path string, body []byte) (*http.Response, []byte, error) {
	if err := faultinject.Fire(faultinject.GatewayForward, b.id, path); err != nil {
		return nil, nil, err
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, b.addr+path, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, data, nil
}

// handleList fans GET /v1/jobs out to every live backend and merges
// the tables into one view, sorted by submission time then id so the
// merged order is stable and meaningful. Backends are treated as
// opaque JSON (the "backend" field each job already carries names its
// owner); one that fails to answer is evicted and skipped — a partial
// list from the survivors beats a failed one.
func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	g.prune()
	type row struct {
		at  time.Time
		id  string
		raw json.RawMessage
	}
	var rows []row
	for _, b := range g.liveSorted() {
		resp, data, err := g.roundTrip(b, http.MethodGet, "/v1/jobs", nil)
		if err != nil {
			g.evict(b.id)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			continue
		}
		var views []json.RawMessage
		if json.Unmarshal(data, &views) != nil {
			continue
		}
		for _, v := range views {
			var meta struct {
				ID          string `json:"id"`
				SubmittedAt string `json:"submittedAt"`
			}
			json.Unmarshal(v, &meta)
			at, _ := time.Parse(time.RFC3339Nano, meta.SubmittedAt)
			rows = append(rows, row{at: at, id: meta.ID, raw: v})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if !rows[i].at.Equal(rows[j].at) {
			return rows[i].at.Before(rows[j].at)
		}
		return rows[i].id < rows[j].id
	})
	out := make([]json.RawMessage, len(rows))
	for i, r := range rows {
		out[i] = r.raw
	}
	writeJSON(w, http.StatusOK, out)
}

// handlePeer serves the warm-miss path: a backend that just inherited
// key asks here, and the gateway probes the other live backends in
// ring preference order — after a join, the first candidate past the
// asker is exactly the key's previous owner — relaying the first
// CRC-valid framed entry it finds. The candidate list is a snapshot of
// the ring, so a backend that vanishes between that lookup and its
// probe turns into a transport failure mid-pass; when that happens the
// pass is retried exactly once against the freshly re-resolved ring
// (the failed candidates were evicted, so the entry's current holder is
// now in preference position) instead of answering a hard 404. 404
// means nobody reachable has it and the asker should compute; malformed
// keys are 400 (reusing the store's key validation) because Spec.Key
// could never have minted them.
func (g *Gateway) handlePeer(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !store.ValidKey(key) {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("malformed result key %q: want the lowercase-hex content address", key))
		return
	}
	g.peerRequests.Add(1)
	exclude := r.URL.Query().Get("exclude")
	data, sawFailure := g.peerProbe(key, exclude)
	if data == nil && sawFailure {
		// The stale-candidates window: re-resolve and retry once.
		g.peerProbeRetries.Add(1)
		data, _ = g.peerProbe(key, exclude)
	}
	if data == nil {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no peer holds %s", key))
		return
	}
	g.peerHits.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// peerProbe runs one pass over key's candidate backends (resolved
// fresh from the ring) and returns the first CRC-valid store entry,
// plus whether any candidate failed at the transport level — the
// signal that the pass may have raced an eviction and deserves one
// retry. Failed candidates are evicted as a side effect, so a retry
// pass resolves against the corrected membership.
func (g *Gateway) peerProbe(key, exclude string) (data []byte, sawFailure bool) {
	for _, b := range g.candidatesFor(key, exclude) {
		if err := faultinject.Fire(faultinject.GatewayPeerProbe, b.id, key); err != nil {
			g.evict(b.id)
			sawFailure = true
			continue
		}
		resp, body, err := g.roundTrip(b, http.MethodGet, "/v1/store/"+key, nil)
		if err != nil {
			g.evict(b.id)
			sawFailure = true
			continue
		}
		if resp.StatusCode != http.StatusOK {
			continue
		}
		if _, ok := store.Decode(body); !ok {
			continue // corrupt in transit or at rest; let the asker recompute
		}
		return body, sawFailure
	}
	return nil, sawFailure
}

// liveSorted snapshots the live backends sorted by id (deterministic
// fan-out and metrics order).
func (g *Gateway) liveSorted() []backend {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]backend, 0, len(g.backends))
	for _, b := range g.backends {
		out = append(out, *b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
